// Package nic simulates the capture-relevant feature set of a modern 10GbE
// controller (modeled on the Intel 82599 the paper uses): multiple receive
// queues, Toeplitz receive-side scaling with a symmetric key, and a
// capacity-limited flow-director (FDIR) filter table whose filters can
// redirect flows to queues or drop packets before they are ever delivered
// to memory — the mechanism behind Scap's "subzero packet copy".
package nic

import "net/netip"

// RSSKeySize is the conventional RSS secret-key length in bytes.
const RSSKeySize = 40

// RSSKey is the Toeplitz secret key.
type RSSKey [RSSKeySize]byte

// SymmetricRSSKey returns a key consisting of a repeated 16-bit pattern.
// Woo & Park (KAIST TR 2012) observe that such keys make the Toeplitz hash
// symmetric for (srcIP,dstIP,srcPort,dstPort) swaps, so both directions of
// a TCP connection land on the same queue — a property Scap relies on to
// keep each connection's processing on one core.
func SymmetricRSSKey(pattern uint16) RSSKey {
	var k RSSKey
	for i := 0; i < RSSKeySize; i += 2 {
		k[i] = byte(pattern >> 8)
		k[i+1] = byte(pattern)
	}
	return k
}

// DefaultRSSKey is the Microsoft verification-suite key, used when symmetry
// is not required.
var DefaultRSSKey = RSSKey{
	0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2,
	0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
	0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4,
	0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
	0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
}

// Toeplitz computes the 32-bit Toeplitz hash of input under key, bit-exact
// with the RSS specification: for every set bit of the input (MSB first)
// the hash XORs the 32-bit key window starting at that bit position.
func Toeplitz(key *RSSKey, input []byte) uint32 {
	var hash uint32
	// window holds the key bits currently aligned with the input bit; it is
	// advanced one bit per input bit.
	window := uint32(key[0])<<24 | uint32(key[1])<<16 | uint32(key[2])<<8 | uint32(key[3])
	next := 4 // index of the next key byte to shift in
	bitsLeft := 8
	cur := key[next]
	for _, b := range input {
		for bit := 7; bit >= 0; bit-- {
			if b&(1<<uint(bit)) != 0 {
				hash ^= window
			}
			window = window<<1 | uint32(cur>>7)
			cur <<= 1
			bitsLeft--
			if bitsLeft == 0 {
				next++
				if next < RSSKeySize {
					cur = key[next]
				} else {
					cur = 0
				}
				bitsLeft = 8
			}
		}
	}
	return hash
}

// RSSHash computes the RSS hash over the tuple the 82599 uses for TCP/UDP
// over IPv4/IPv6: srcIP, dstIP, srcPort, dstPort in network order. For
// non-TCP/UDP packets the ports are omitted (L3-only hashing).
func RSSHash(key *RSSKey, srcIP, dstIP netip.Addr, srcPort, dstPort uint16, hasPorts bool) uint32 {
	var buf [36]byte
	n := 0
	put := func(a netip.Addr) {
		if a.Is4() {
			b := a.As4()
			n += copy(buf[n:], b[:])
		} else {
			b := a.As16()
			n += copy(buf[n:], b[:])
		}
	}
	put(srcIP)
	put(dstIP)
	if hasPorts {
		buf[n] = byte(srcPort >> 8)
		buf[n+1] = byte(srcPort)
		buf[n+2] = byte(dstPort >> 8)
		buf[n+3] = byte(dstPort)
		n += 4
	}
	return Toeplitz(key, buf[:n])
}
