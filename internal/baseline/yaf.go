package baseline

import (
	"scap/internal/pcapring"
	"scap/internal/pkt"
)

// YAFSnaplen is the 96-byte snaplen the paper configures YAF with: enough
// for headers, cheap to copy, no reassembly.
const YAFSnaplen = 96

// FlowRecord is one exported flow (the IPFIX-ish subset the paper's
// experiment needs).
type FlowRecord struct {
	Key        pkt.FlowKey
	Pkts       uint64
	Bytes      uint64
	Start, End int64
	FINClosed  bool

	// finSeen tracks the first FIN so the flow is exported when both
	// directions have closed (or on RST / inactivity).
	finSeen bool
}

// YAFCounters expose YAF's work for the cost model.
type YAFCounters struct {
	Packets       uint64
	RingBytesRead uint64
	FlowsExported uint64
}

// YAF is the flow-metering baseline: it reads (truncated) packets from the
// ring and maintains per-flow counters; no payload processing at all.
type YAF struct {
	flows   map[pkt.FlowKey]*FlowRecord
	timeout int64
	export  func(FlowRecord)
	cnt     YAFCounters
	dec     pkt.Packet
}

// NewYAF creates the meter; export may be nil.
func NewYAF(inactivityTimeout int64, export func(FlowRecord)) *YAF {
	if inactivityTimeout <= 0 {
		inactivityTimeout = 10e9
	}
	return &YAF{
		flows:   make(map[pkt.FlowKey]*FlowRecord),
		timeout: inactivityTimeout,
		export:  export,
	}
}

// Counters returns a snapshot.
func (y *YAF) Counters() YAFCounters { return y.cnt }

// Tracked returns the number of live flows.
func (y *YAF) Tracked() int { return len(y.flows) }

// ProcessFrame consumes one ring frame (already snaplen-truncated).
func (y *YAF) ProcessFrame(f pcapring.Frame) {
	y.cnt.Packets++
	y.cnt.RingBytesRead += uint64(len(f.Data))
	if err := pkt.Decode(f.Data, &y.dec); err != nil {
		return
	}
	p := &y.dec
	ck, _ := p.Key.Canonical()
	fr := y.flows[ck]
	if fr == nil {
		fr = &FlowRecord{Key: ck, Start: f.TS}
		y.flows[ck] = fr
	}
	fr.Pkts++
	fr.Bytes += uint64(f.WireLen)
	fr.End = f.TS
	if p.Key.Proto == pkt.ProtoTCP {
		switch {
		case p.TCPFlags&pkt.FlagRST != 0:
			fr.FINClosed = true
			y.exportFlow(ck, fr)
		case p.TCPFlags&pkt.FlagFIN != 0:
			if fr.finSeen {
				fr.FINClosed = true
				y.exportFlow(ck, fr)
			} else {
				fr.finSeen = true
			}
		}
	}
}

// Expire exports idle flows.
func (y *YAF) Expire(now int64) {
	for k, fr := range y.flows {
		if now-fr.End >= y.timeout {
			y.exportFlow(k, fr)
		}
	}
}

// Close exports everything.
func (y *YAF) Close() {
	for k, fr := range y.flows {
		y.exportFlow(k, fr)
	}
}

func (y *YAF) exportFlow(k pkt.FlowKey, fr *FlowRecord) {
	delete(y.flows, k)
	y.cnt.FlowsExported++
	if y.export != nil {
		y.export(*fr)
	}
}
