package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Ownership verifies goroutine-ownership contracts over the whole-program
// call graph. //scap:goroutine <role> marks goroutine entry points; the
// analyzer propagates each role over static call edges and checks that
// constrained functions are only reached from their allowed roles:
//
//   - methods of a //scap:owner <role> struct may only be reached from
//     that role (//scap:anyrole exempts individually audited methods);
//   - //scap:produce methods of a //scap:spsc type only from its producer
//     role, //scap:consume methods only from its consumer role;
//   - //scap:onlyrole <roles> functions only from the listed roles.
//
// Code not reachable from any marked entry point (setup paths, public
// API, cmd tools, the single-threaded simulator) carries no role and is
// never a violation: the contract restricts which *marked* goroutines may
// reach a function, and only whole-module runs see every entry point.
var Ownership = &Analyzer{
	Name:       "ownership",
	Doc:        "goroutine-ownership contracts: //scap:goroutine roles vs //scap:owner, //scap:spsc produce/consume, and //scap:onlyrole constraints",
	RunProgram: runOwnership,
}

// spscContract is one //scap:spsc-annotated type.
type spscContract struct {
	producer string
	consumer string
	pos      token.Position
}

// roleConstraint restricts one function to a set of roles.
type roleConstraint struct {
	allowed map[string]bool
	label   string // human form of the constraint for diagnostics
}

func runOwnership(prog *Program) []Diagnostic {
	roleg, diags := prog.propagateRoles()

	// Per-package spsc declarations, keyed by package then type name:
	// produce/consume markers resolve against the declaring package.
	spscByPkg := make(map[*Package]map[string]spscContract)
	for _, p := range prog.Pkgs {
		for _, ns := range structTypes(p) {
			args, ok := structMarkerArgs(p, ns, spscMarker)
			if !ok {
				continue
			}
			c := spscContract{pos: p.Fset.Position(ns.Spec.Pos())}
			for _, a := range args {
				switch {
				case cutValue(a, "producer=", &c.producer):
				case cutValue(a, "consumer=", &c.consumer):
				default:
					// First non key=value token starts trailing prose.
				}
			}
			if c.producer == "" || c.consumer == "" {
				diags = append(diags, Diagnostic{
					Pos:      c.pos,
					Analyzer: "ownership",
					Message:  fmt.Sprintf("//scap:spsc on %s needs producer=<role> and consumer=<role>", ns.Name),
				})
				continue
			}
			m := spscByPkg[p]
			if m == nil {
				m = make(map[string]spscContract)
				spscByPkg[p] = m
			}
			m[ns.Name] = c
		}
	}

	// Owner structs: every method is constrained unless //scap:anyrole.
	constraints := make(map[*types.Func]roleConstraint)
	addConstraint := func(fn *types.Func, roles []string, label string) {
		c, ok := constraints[fn]
		if !ok {
			c = roleConstraint{allowed: make(map[string]bool), label: label}
		}
		for _, r := range roles {
			c.allowed[r] = true
		}
		constraints[fn] = c
	}
	for _, p := range prog.Pkgs {
		for _, ns := range structTypes(p) {
			args, ok := structMarkerArgs(p, ns, ownerMarker)
			if !ok {
				continue
			}
			if len(args) == 0 {
				diags = append(diags, Diagnostic{
					Pos:      p.Fset.Position(ns.Spec.Pos()),
					Analyzer: "ownership",
					Message:  fmt.Sprintf("//scap:owner on %s is missing role name", ns.Name),
				})
				continue
			}
			role := args[0]
			for _, fd := range methodsOf(p, ns.Name) {
				if _, any := markerArgs(fd.Doc, anyroleMarker); any {
					continue
				}
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok && fn != nil {
					addConstraint(fn, []string{role},
						fmt.Sprintf("a method of %s (owned by role %s)", ns.Name, role))
				}
			}
		}
	}

	// produce/consume and onlyrole markers on individual functions.
	for _, n := range prog.funcs() {
		fd, p := n.decl, n.pkg
		for _, m := range []struct {
			marker string
			side   string
		}{{produceMarker, "producer"}, {consumeMarker, "consumer"}} {
			args, ok := markerArgs(fd.Doc, m.marker)
			if !ok {
				continue
			}
			typeName := receiverTypeNameOf(fd)
			if len(args) > 0 {
				typeName = args[0]
			}
			contract, ok := spscByPkg[p][typeName]
			if !ok {
				diags = append(diags, Diagnostic{
					Pos:      p.Fset.Position(fd.Pos()),
					Analyzer: "ownership",
					Message: fmt.Sprintf("//%s on %s references unknown //scap:spsc type %q",
						m.marker, fd.Name.Name, typeName),
				})
				continue
			}
			role := contract.producer
			if m.side == "consumer" {
				role = contract.consumer
			}
			addConstraint(n.fn, []string{role},
				fmt.Sprintf("%s-side of SPSC %s (role %s)", m.side, typeName, role))
		}
		if args, ok := markerArgs(fd.Doc, onlyroleMarker); ok {
			if len(args) == 0 {
				diags = append(diags, Diagnostic{
					Pos:      p.Fset.Position(fd.Pos()),
					Analyzer: "ownership",
					Message:  fmt.Sprintf("//scap:onlyrole on %s lists no roles", fd.Name.Name),
				})
				continue
			}
			addConstraint(n.fn, args, fmt.Sprintf("restricted to role(s) %v by //scap:onlyrole", args))
		}
	}

	// Every role a constraint names must have at least one entry point,
	// or the contract is unverifiable (and likely a typo).
	reported := make(map[string]bool)
	for _, n := range prog.funcs() {
		c, ok := constraints[n.fn]
		if !ok {
			continue
		}
		for _, role := range sortedKeys(c.allowed) {
			if roleg.roles[role] || reported[role] {
				continue
			}
			reported[role] = true
			diags = append(diags, Diagnostic{
				Pos:      n.pkg.Fset.Position(n.decl.Pos()),
				Analyzer: "ownership",
				Message:  fmt.Sprintf("role %q has no //scap:goroutine entry point in the analyzed packages (typo, or run scaplint on the whole module)", role),
			})
		}
	}

	// The check: every call edge that carries a disallowed role into a
	// constrained function is a violation, reported at the call site so
	// the offending call — not the contract — gets the finding.
	for _, n := range prog.funcs() {
		callerRoles := roleg.reach[n.fn]
		if len(callerRoles) == 0 {
			continue
		}
		for _, e := range n.out {
			if e.kind != edgeCall {
				continue
			}
			c, ok := constraints[e.callee]
			if !ok {
				continue
			}
			for _, role := range callerRoles.sorted() {
				if c.allowed[role] {
					continue
				}
				diags = append(diags, Diagnostic{
					Pos:      n.pkg.Fset.Position(e.pos),
					Analyzer: "ownership",
					Message: fmt.Sprintf("%s is %s, but goroutine role %s calls it here: %s → %s",
						shortFuncName(e.callee), c.label, role,
						roleg.chain(n.fn, role), shortFuncName(e.callee)),
				})
			}
		}
	}
	// An entry point that is itself constrained to a different role.
	for _, e := range roleg.entries {
		c, ok := constraints[e.node.fn]
		if !ok || c.allowed[e.role] {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      e.node.pkg.Fset.Position(e.node.decl.Pos()),
			Analyzer: "ownership",
			Message: fmt.Sprintf("%s is %s, but is itself a //scap:goroutine %s entry point",
				shortFuncName(e.node.fn), c.label, e.role),
		})
	}
	return diags
}

// structMarkerArgs honors a marker on the TypeSpec doc or, for a
// single-spec GenDecl, the GenDecl doc (mirroring structTypes' handling
// of //scap:shared).
func structMarkerArgs(p *Package, ns namedStruct, marker string) ([]string, bool) {
	if args, ok := markerArgs(ns.Spec.Doc, marker); ok {
		return args, true
	}
	if gd := enclosingGenDecl(p, ns.Spec); gd != nil && len(gd.Specs) == 1 {
		if args, ok := markerArgs(gd.Doc, marker); ok {
			return args, true
		}
	}
	return nil, false
}

func enclosingGenDecl(p *Package, ts *ast.TypeSpec) *ast.GenDecl {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.TYPE {
				for _, spec := range gd.Specs {
					if spec == ts {
						return gd
					}
				}
			}
		}
	}
	return nil
}

// receiverTypeNameOf is receiverTypeName tolerant of plain functions.
func receiverTypeNameOf(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	return receiverTypeName(fd)
}

func cutValue(tok, prefix string, dst *string) bool {
	if v, ok := strings.CutPrefix(tok, prefix); ok {
		*dst = v
		return true
	}
	return false
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
