// Classify: content-based traffic classification over stream heads — the
// second application family the paper motivates. A small cutoff captures
// just each stream's first bytes; the classifier identifies the protocol
// from content (ports are not trusted), extracts TLS SNI from ClientHellos,
// and logs DNS query names from UDP streams.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"scap"
	"scap/internal/classify"
	"scap/internal/trace"
)

func main() {
	h, err := scap.Create(scap.Config{ReassemblyMode: scap.TCPFast, Queues: 2})
	if err != nil {
		log.Fatal(err)
	}
	// Stream heads are enough to classify: 4 KB cutoff.
	if err := h.SetCutoff(4 << 10); err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	protoCount := map[classify.Protocol]int{}
	sniSeen := map[string]int{}
	dnsNames := map[string]int{}
	classified := map[uint64]bool{}

	h.DispatchData(func(sd *scap.Stream) {
		mu.Lock()
		defer mu.Unlock()
		if classified[sd.ID()] {
			return
		}
		classified[sd.ID()] = true
		if sd.Last {
			defer delete(classified, sd.ID())
		}

		if sd.Key().Proto == 17 { // UDP: try DNS
			if q, ok := classify.ParseDNSQuery(sd.Data); ok && q.Name != "" {
				protoCount[classify.DNS]++
				dnsNames[q.Name]++
				return
			}
			protoCount[classify.Unknown]++
			return
		}
		p := classify.Sniff(sd.Data, sd.Dir() == scap.DirServer)
		protoCount[p]++
		if p == classify.TLS {
			if ch, ok := classify.ParseClientHello(sd.Data); ok && ch.SNI != "" {
				sniSeen[ch.SNI]++
			}
		}
	})

	if err := h.StartCapture(); err != nil {
		log.Fatal(err)
	}
	// Embed realistic protocol heads at stream starts.
	heads := [][]byte{
		[]byte("GET /video/segment-001.ts HTTP/1.1\r\nHost: cdn.example\r\n\r\n"),
		[]byte("SSH-2.0-OpenSSH_9.6\r\n"),
		[]byte("EHLO relay.example.net\r\n"),
		[]byte("220 mx1.example.net ESMTP Postfix\r\n"),
		classify.BuildClientHello("shop.example.com", []string{"h2"}),
		classify.BuildClientHello("mail.example.org", []string{"http/1.1"}),
		classify.BuildDNSQuery(7, "api.example.io", classify.DNSTypeA),
		classify.BuildDNSQuery(9, "cdn.example", classify.DNSTypeAAAA),
	}
	gen := trace.NewGenerator(trace.GenConfig{
		Seed: 17, Flows: 1500, Concurrency: 64,
		MinFlowBytes: 600, MaxFlowBytes: 60 << 10,
		TCPFraction:   0.8,
		EmbedPatterns: heads, EmbedProb: 0.8,
	})
	if err := h.ReplaySource(gen, 1e9); err != nil {
		log.Fatal(err)
	}
	h.Close()

	mu.Lock()
	defer mu.Unlock()
	fmt.Println("protocol mix (stream directions classified by content):")
	protos := make([]classify.Protocol, 0, len(protoCount))
	for p := range protoCount {
		protos = append(protos, p)
	}
	sort.Slice(protos, func(i, j int) bool { return protoCount[protos[i]] > protoCount[protos[j]] })
	for _, p := range protos {
		fmt.Printf("  %-8s %5d\n", p, protoCount[p])
	}
	fmt.Println("\nTLS server names seen:")
	for sni, n := range sniSeen {
		fmt.Printf("  %-24s %d\n", sni, n)
	}
	fmt.Println("DNS names queried:")
	for name, n := range dnsNames {
		fmt.Printf("  %-24s %d\n", name, n)
	}
	stats, _ := h.GetStats()
	fmt.Printf("\ncaptured %d of %d payload bytes (%.1f%%) to classify everything\n",
		stats.StoredBytes, stats.PayloadBytes,
		float64(stats.StoredBytes)/float64(stats.PayloadBytes)*100)
}
