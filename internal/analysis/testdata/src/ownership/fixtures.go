// Package ownership exercises the goroutine-ownership analyzer: roles
// propagating from //scap:goroutine entry points over call edges, checked
// against //scap:owner, //scap:spsc produce/consume, and //scap:onlyrole
// contracts.
package ownership

// ring mirrors the shape of event.Queue: a single-producer single-
// consumer ring whose two sides belong to different goroutine roles.
//
//scap:spsc producer=producer consumer=consumer
type ring struct {
	buf        []int
	head, tail uint64
}

//scap:produce
func (r *ring) push(v int) { r.buf[r.tail%uint64(len(r.buf))] = v; r.tail++ }

//scap:consume
func (r *ring) pop() (int, bool) {
	if r.head == r.tail {
		return 0, false
	}
	v := r.buf[r.head%uint64(len(r.buf))]
	r.head++
	return v, true
}

// looper mirrors Engine: a single-writer struct owned by one role.
//
//scap:owner looper
type looper struct {
	n int
	r *ring
}

func (l *looper) step() { l.n++ }

// snapshot is individually audited for cross-goroutine access.
//
//scap:anyrole n is only read, staleness is acceptable
func (l *looper) snapshot() int { return l.n }

//scap:goroutine producer
func produceLoop(r *ring) {
	r.push(1)           // fine: the producer role produces
	go consumeLoop(r)   // go edges do not leak the producer role
	helperProduce(r, 2) // fine: still the producer role, one hop down
}

// helperProduce is unannotated; it inherits whatever roles reach it.
func helperProduce(r *ring, v int) { r.push(v) }

//scap:goroutine consumer
func consumeLoop(r *ring) {
	r.pop()       // fine: the consumer role consumes
	r.push(9)     // want ownership "producer-side of SPSC ring"
	helperPop(r)  // fine transitively
	helperPush(r) // the diagnostic lands inside helperPush, at the push call
}

func helperPop(r *ring) { r.pop() }

func helperPush(r *ring) {
	r.push(3) // want ownership "producer-side of SPSC ring"
}

//scap:goroutine looper
func ownerLoop(l *looper) {
	l.step() // fine: the owning role
}

//scap:goroutine consumer
func rogue(l *looper) {
	l.step()         // want ownership "owned by role looper"
	_ = l.snapshot() // fine: //scap:anyrole
}

// setup is not reachable from any //scap:goroutine entry point, so it
// carries no role and may touch anything (construction happens before
// the goroutines exist).
func setup() *looper {
	l := &looper{r: &ring{buf: make([]int, 8)}}
	l.step()
	l.r.push(0)
	return l
}

// registerOnly may only be reached from the producer role.
//
//scap:onlyrole producer
func registerOnly() {}

//scap:goroutine consumer
func consumeLoop2() {
	registerOnly() // want ownership "restricted to role"
}

// phantomOnly names a role that has no entry point anywhere.
//
//scap:onlyrole phantom
func phantomOnly() {} // want ownership "no //scap:goroutine entry point"

// orphan references an spsc type that is not declared.
//
//scap:produce ghostRing
func orphan() {} // want ownership "unknown //scap:spsc type"

// unowned is missing its role argument.
//
//scap:owner
type unowned struct{ n int } // want ownership "missing role"
