GO ?= go

.PHONY: build test test-short race vet lint fmt-check bench-quick serve-smoke flight-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -short -race ./...

vet:
	$(GO) vet ./...

# lint runs scaplint, the repo's own static-analysis suite: the
# per-package checks (hot-path allocation and locking, snapshot-getter,
# lock-discipline, metrics-registration, exported-doc invariants) plus
# the whole-program concurrency-contract analyzers (goroutine ownership,
# atomic-field discipline, hot-path blocking). -unusedignores also fails
# on stale or unjustified //scaplint:ignore directives.
lint:
	$(GO) run ./cmd/scaplint -unusedignores ./...

# bench-quick compiles and runs every benchmark for a single iteration —
# a smoke test that the bench harnesses stay buildable and terminate, not
# a measurement. Output is teed to bench-quick.txt so CI can upload it as
# a workflow artifact.
bench-quick:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./... | tee bench-quick.txt

# serve-smoke replays a small trace through a socket with the debug server
# enabled, scrapes /metrics over HTTP, and asserts nonzero packets_total —
# the end-to-end proof that the observability path works.
serve-smoke:
	$(GO) run ./cmd/scaptop -smoke

# flight-smoke replays a short trace with a low stream cutoff so the engines
# emit flight-recorder records, then asserts /debug/flight returns at least
# one record and a valid Chrome trace-event export.
flight-smoke:
	$(GO) run ./cmd/scaptop -flight-smoke

fmt-check:
	@out=$$(gofmt -l . | grep -v '^testdata/' || true); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# check is the full CI gate.
check: build vet lint fmt-check race serve-smoke flight-smoke
