package metrics

import (
	"math"
	"testing"
)

// TestWindowRates drives a Window with a synthetic clock and checks the rate
// arithmetic exactly.
func TestWindowRates(t *testing.T) {
	r := NewRegistry(2)
	clock := int64(1_000_000_000)
	r.SetClock(func() int64 { return clock })
	c := r.NewCounter(Desc{Name: "packets_total"})
	ext := uint64(0)
	r.NewCounterFunc(Desc{Name: "ext_total"}, func() uint64 { return ext })

	w := NewWindow(r)

	// First collect: no predecessor, zero rates.
	p := w.Collect()
	if p.WindowSeconds != 0 {
		t.Fatalf("first window seconds = %v, want 0", p.WindowSeconds)
	}
	if cp := p.Counter("packets_total"); cp == nil || cp.Rate != 0 {
		t.Fatalf("first rate = %+v, want 0", cp)
	}

	// Advance 2s of synthetic time; core 0 gains 100, core 1 gains 50.
	c.Cell(0).Add(100)
	c.Cell(1).Add(50)
	ext += 30
	clock += 2_000_000_000
	p = w.Collect()
	if p.WindowSeconds != 2 {
		t.Fatalf("window seconds = %v, want 2", p.WindowSeconds)
	}
	cp := p.Counter("packets_total")
	if cp == nil {
		t.Fatal("packets_total missing")
	}
	if cp.Rate != 75 {
		t.Fatalf("rate = %v, want 75", cp.Rate)
	}
	if len(cp.PerCoreRate) != 2 || cp.PerCoreRate[0] != 50 || cp.PerCoreRate[1] != 25 {
		t.Fatalf("per-core rates = %v, want [50 25]", cp.PerCoreRate)
	}
	if ep := p.Counter("ext_total"); ep.Rate != 15 {
		t.Fatalf("func counter rate = %v, want 15", ep.Rate)
	}

	// Half-second window with a fractional rate.
	c.Cell(0).Add(1)
	clock += 500_000_000
	p = w.Collect()
	cp = p.Counter("packets_total")
	if math.Abs(cp.Rate-2) > 1e-9 {
		t.Fatalf("rate = %v, want 2", cp.Rate)
	}

	// Clock stall: no elapsed time means no rates, not a division by zero.
	c.Cell(0).Add(10)
	p = w.Collect()
	if p.WindowSeconds != 0 || p.Counter("packets_total").Rate != 0 {
		t.Fatalf("stalled clock: window=%v rate=%v, want zeros",
			p.WindowSeconds, p.Counter("packets_total").Rate)
	}
}

func TestRateClampsOnReset(t *testing.T) {
	if got := rate(5, 10, 1); got != 0 {
		t.Fatalf("rate after reset = %v, want 0", got)
	}
}
