package core

import (
	"sync"

	"scap/internal/flowtab"
	"scap/internal/mem"
)

// CtrlOp is a runtime control operation a worker thread sends back to the
// engine that owns the stream. The paper passes these through the Scap
// socket (setsockopt); here a small per-core queue drained at the top of
// the packet path plays that role, preserving the single-writer discipline
// on stream records.
type CtrlOp uint8

const (
	// OpSetCutoff changes a stream's cutoff (scap_set_stream_cutoff).
	OpSetCutoff CtrlOp = iota
	// OpSetPriority changes a connection's PPL priority (both directions).
	OpSetPriority
	// OpDiscard stops all data collection for a stream
	// (scap_discard_stream).
	OpDiscard
	// OpKeepChunk gives a delivered chunk back to the engine so the next
	// delivery contains the previous and new data merged
	// (scap_keep_stream_chunk).
	OpKeepChunk
	// OpSetParam updates one per-stream parameter
	// (scap_set_stream_parameter).
	OpSetParam
	// OpSetDynCutoff sets the engine-wide dynamic cutoff clamp (Stream is
	// nil: the message targets the engine, not a record). Value >= 0 caps
	// every stream's effective cutoff at Value bytes; Value < 0 removes the
	// clamp. The adaptive control plane is the intended sender.
	OpSetDynCutoff
	// OpSetSketchFDIRBudget bounds how many sketch-nominated heavy flows may
	// hold NIC drop-filter pairs at once (Stream is nil). Value < 0 means
	// unlimited (the historical behavior); 0 stops new nominations while
	// installed filters age out on their own deadlines.
	OpSetSketchFDIRBudget
)

// StreamParam identifies per-stream parameters for OpSetParam.
type StreamParam uint8

const (
	ParamChunkSize StreamParam = iota
	ParamOverlapSize
	ParamFlushTimeout
	ParamInactivityTimeout
)

// Ctrl is one control message. Stream identity is validated against ID, so
// a message racing with stream termination is dropped instead of mutating a
// recycled record.
type Ctrl struct {
	Op     CtrlOp
	Stream *flowtab.Stream
	ID     uint64
	Param  StreamParam
	Value  int64
	// Data/Block/Accounted carry the kept chunk for OpKeepChunk. Block is
	// the chunk's arena block when the keeper got one from a data event —
	// ownership transfers back to the engine with the message. A handle-less
	// keep (NoBlock) carries foreign bytes in Data, which the engine copies
	// into a fresh block.
	Data      []byte
	Block     mem.Handle
	Accounted int
}

// ctrlQueue is a mutex-guarded MPSC queue (several worker threads may
// target the same engine; only the engine drains).
//
//scap:shared
type ctrlQueue struct {
	mu sync.Mutex
	// msgs is guarded by mu.
	msgs []Ctrl
}

func (q *ctrlQueue) push(c Ctrl) {
	q.mu.Lock()
	q.msgs = append(q.msgs, c)
	q.mu.Unlock()
}

// drain swaps out the pending messages; the caller processes them outside
// the lock. Only the owning engine drains.
//
//scap:onlyrole engine
func (q *ctrlQueue) drain(buf []Ctrl) []Ctrl {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.msgs) == 0 {
		return buf[:0]
	}
	buf = append(buf[:0], q.msgs...)
	q.msgs = q.msgs[:0]
	return buf
}

// Control enqueues a control message for this engine.
//
//scap:anyrole the control queue is mutex-guarded MPSC
func (e *Engine) Control(c Ctrl) { e.ctrl.push(c) }

// applyCtrl executes one validated control message.
func (e *Engine) applyCtrl(c Ctrl) {
	// Global ops target the engine itself, not a stream record.
	switch c.Op {
	case OpSetDynCutoff:
		v := c.Value
		if v < 0 {
			v = -1
		}
		e.dynCutoff = v
		return
	case OpSetSketchFDIRBudget:
		v := int(c.Value)
		if v < 0 {
			v = -1
		}
		e.sketchFDIRBudget = v
		return
	}
	s := c.Stream
	if s == nil || s.ID != c.ID || !s.InTable() {
		// Stream terminated before the message arrived: the kept chunk's
		// charge and block die with it.
		if c.Op == OpKeepChunk {
			if c.Accounted > 0 {
				e.mm.Release(c.Accounted)
			}
			if c.Block != mem.NoBlock {
				e.mm.FreeBlock(e.coreID, c.Block)
			}
		}
		return
	}
	x := ext(s)
	switch c.Op {
	case OpSetCutoff:
		s.Cutoff = c.Value
		if s.Cutoff >= 0 && int64(s.Stats.CapturedBytes) >= s.Cutoff && s.Status == flowtab.StatusActive {
			e.reachCutoff(s, x)
		}
	case OpSetPriority:
		s.Priority = int(c.Value)
		if s.Opposite != nil {
			s.Opposite.Priority = int(c.Value)
		}
	case OpDiscard:
		x.discard = true
		e.dropChunk(s, x)
		e.installFDIR(s, x)
	case OpKeepChunk:
		e.adoptKeptChunk(s, x, c.Data, c.Block, c.Accounted)
	case OpSetParam:
		switch c.Param {
		case ParamChunkSize:
			if c.Value > 0 {
				s.ChunkSize = int(c.Value)
			}
		case ParamOverlapSize:
			if c.Value >= 0 && int(c.Value) < s.ChunkSize {
				s.OverlapSize = int(c.Value)
			}
		case ParamFlushTimeout:
			s.FlushTimeout = c.Value
			// The flush scan only visits enrolled streams; enabling a
			// timeout after data buffered must enroll retroactively, and
			// disabling one drops the stream from the scan.
			if c.Value > 0 {
				e.markDirty(s, x)
			} else {
				delete(e.dirty, s)
			}
		case ParamInactivityTimeout:
			if c.Value > 0 {
				s.InactivityTimeout = c.Value
			}
		}
	}
}

// adoptKeptChunk merges a chunk the application kept back into the
// stream's current chunk so the next delivery includes both. The kept block
// is retained as the merged chunk's storage — no fresh buffer is allocated:
// the successor chunk's new bytes are appended into the kept block's
// remaining room, spilling through adoptBytes into a second block only when
// the kept block overflows.
func (e *Engine) adoptKeptChunk(s *flowtab.Stream, x *streamExt, data []byte, blk mem.Handle, accounted int) {
	cur := x.chunk
	// The successor chunk was seeded with the kept chunk's overlap tail;
	// drop that prefix to avoid duplicating bytes in the merge.
	var curNew []byte
	if cur.buf != nil {
		curNew = cur.buf[cur.overlapLen:]
	}
	chunkSize := s.ChunkSize
	if chunkSize <= 0 {
		chunkSize = e.cfg.ChunkSize
	}
	var store []byte
	if blk == mem.NoBlock {
		// Handle-less keep (foreign bytes, or a chunk that was itself built
		// on the heap fallback): copy into a fresh block, or — when the
		// arena is exhausted or the bytes exceed a block — into a heap
		// buffer with merge room, mirroring newChunkBuf's fallback.
		var nb mem.Handle
		var bs []byte
		nb, bs = e.mm.AllocBlock(e.coreID)
		if nb != mem.NoBlock && len(data) <= len(bs) {
			blk, store = nb, bs
		} else {
			if nb != mem.NoBlock {
				e.mm.FreeBlock(e.coreID, nb)
			} else {
				e.c.arenaExhausted.Add(1)
			}
			store = make([]byte, len(data)+chunkSize)
		}
		n := copy(store, data)
		data = store[:n]
	} else {
		store = e.mm.BlockBytes(blk)
	}
	fill := len(data) // data == store[:fill]
	take := len(curNew)
	if take > len(store)-fill {
		take = len(store) - fill
	}
	buf := store[:fill+take]
	copy(buf[fill:], curNew[:take])
	rest := curNew[take:]
	size := fill + chunkSize
	if size > len(store) {
		size = len(store)
	}
	if size < len(buf) {
		size = len(buf)
	}
	// The merged chunk keeps the successor's record slab (cur.pkts), which
	// recycles with cur's block; swap the two blocks' attachments so each
	// slab stays parked on the block whose chunk owns it. When the merge
	// landed on the heap, detach the slab instead so cur's recycled block
	// doesn't hand the same storage to a future chunk.
	if cur.blk != mem.NoBlock && cur.blk != blk {
		if blk != mem.NoBlock {
			ka := e.mm.BlockAttachment(blk)
			e.mm.SetBlockAttachment(blk, e.mm.BlockAttachment(cur.blk))
			e.mm.SetBlockAttachment(cur.blk, ka)
		} else {
			e.mm.SetBlockAttachment(cur.blk, nil)
		}
	}
	// Rebase accounting so accounted() equals the kept chunk's charge plus
	// whatever the successor chunk had charged for the bytes now in buf:
	//   accounted() = len(buf) + extraAcct'
	//               = fill + take + extraAcct'
	//   want        = accounted + take + cur.extraAcct
	// hence extraAcct' = accounted + cur.extraAcct - fill. The spilled rest
	// carries its own charge into the successor below (adoptBytes stores
	// without re-reserving, and accounted() counts stored bytes).
	x.chunk = chunkState{
		buf:        buf,
		blk:        blk,
		size:       size,
		overlapLen: 0,
		extraAcct:  accounted + cur.extraAcct - fill,
		holeBefore: cur.holeBefore,
		firstTS:    cur.firstTS,
		pkts:       cur.pkts,
	}
	if x.chunk.firstTS == 0 {
		x.chunk.firstTS = e.now
	}
	e.markDirty(s, x)
	if len(rest) > 0 {
		// The kept block is full: deliver it now and spill the remainder
		// into a fresh successor. rest still aliases cur's block, so the
		// copy happens before that block is freed.
		e.deliverChunk(s, x, false)
		e.adoptBytes(s, x, rest)
	}
	if cur.blk != mem.NoBlock && cur.blk != blk {
		e.mm.FreeBlock(e.coreID, cur.blk)
	}
}

// adoptBytes stores already-reserved bytes into the stream's current chunk:
// appendData without the cutoff checks and without re-charging — the bytes
// were charged when first captured, and accounted() counts them by their
// presence in the buffer.
func (e *Engine) adoptBytes(s *flowtab.Stream, x *streamExt, b []byte) {
	for len(b) > 0 {
		if x.chunk.buf == nil {
			x.chunk = e.newChunkBuf(s, x, nil, e.now)
			e.markDirty(s, x)
		}
		c := &x.chunk
		room := c.room()
		if room == 0 {
			e.deliverChunk(s, x, false)
			continue
		}
		take := len(b)
		if take > room {
			take = room
		}
		if c.fill() == c.overlapLen {
			c.firstTS = e.now
		}
		n := len(c.buf)
		c.buf = c.buf[:n+take]
		copy(c.buf[n:], b[:take])
		b = b[take:]
		e.markDirty(s, x)
	}
}
