package sim

import (
	"sync"
	"testing"

	"scap/internal/core"
	"scap/internal/match"
	"scap/internal/pkt"
	"scap/internal/reassembly"
	"scap/internal/trace"
)

// Shared workload for the anchor tests: generated once, replayed per run.
// Buffer sizes are scaled to the trace the way the paper's 512 MB ring and
// 1 GB stream memory relate to its 46 GB trace.
var (
	testWorkloadOnce sync.Once
	testFrames       *trace.SliceSource
	testGen          *trace.Generator
	testPatterns     [][]byte
	testMatcher      *match.Matcher
)

// Buffer sizes are scaled to the ~125 MB synthetic trace. The ring follows
// the paper's byte ratio (512 MB / 46 GB ≈ 1.1%). Stream memory is sized
// by the dimension that matters for it — how long a burst it can absorb:
// the paper's 1 GB holds ≈ 8 s of one worker's chunk throughput, far more
// than any burst in its 60 s replays, so memory never binds below
// saturation; 16 MB (≈ 140 ms) preserves that regime at our scale while
// still filling quickly under sustained overload (the PPL experiments).
const (
	testRing = 2 << 20
	testMem  = 16 << 20
)

func workload(t testing.TB) (*trace.SliceSource, *trace.Generator) {
	testWorkloadOnce.Do(func() {
		testPatterns = genPatterns(400)
		var err error
		testMatcher, err = match.New(testPatterns)
		if err != nil {
			panic(err)
		}
		testGen = trace.NewGenerator(trace.GenConfig{
			Seed:          77,
			Flows:         8000,
			Concurrency:   128,
			Alpha:         0.8, // heavy tail: ~18% of bytes within 10 KB cutoffs
			MinFlowBytes:  400,
			MaxFlowBytes:  20 << 20,
			EmbedPatterns: testPatterns,
			EmbedProb:     0.5,
		})
		testFrames = &trace.SliceSource{Frames: trace.Collect(testGen, 0)}
	})
	testFrames.Reset()
	return testFrames, testGen
}

func genPatterns(n int) [][]byte {
	// Deterministic pseudo-attack strings, >= 8 bytes so spontaneous
	// matches in random payload are vanishingly rare.
	out := make([][]byte, n)
	for i := range out {
		p := make([]byte, 8+i%12)
		x := uint32(i)*2654435761 + 12345
		for j := range p {
			x = x*1664525 + 1013904223
			p[j] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ#$%"[x%29]
		}
		out[i] = p
	}
	return out
}

const gbit = 1e9

func scapRun(t testing.TB, app AppKind, workers int, rate float64, mut func(*ScapConfig)) Metrics {
	src, _ := workload(t)
	cfg := ScapConfig{
		Engine: core.Config{
			Cutoff:            core.CutoffUnlimited,
			Mode:              reassembly.ModeFast, // the evaluation's SCAP_TCP_FAST
			InactivityTimeout: 10e9,
		},
		Workers:  workers,
		MemBytes: testMem,
		App:      app,
		Matcher:  testMatcher,
	}
	if app == AppFlowStats {
		cfg.Engine.Cutoff = 0
	}
	if mut != nil {
		mut(&cfg)
	}
	return NewScapSim(cfg).Run(src, rate)
}

func baselineRun(t testing.TB, kind BaselineKind, app AppKind, rate float64, mut func(*BaselineConfig)) Metrics {
	src, _ := workload(t)
	cfg := BaselineConfig{
		Kind:      kind,
		App:       app,
		Matcher:   testMatcher,
		RingBytes: testRing,
	}
	if mut != nil {
		mut(&cfg)
	}
	return NewBaselineSim(cfg).Run(src, rate)
}

// --- Figure 3 anchors: flow-statistics export ---

func TestFlowExportScapSurvives6G(t *testing.T) {
	m := scapRun(t, AppFlowStats, 1, 6*gbit, nil)
	if loss := m.PacketLossFraction(); loss > 0.01 {
		t.Errorf("Scap flow export at 6G: loss %.3f, want ~0", loss)
	}
	if m.CPUUser > 0.15 {
		t.Errorf("Scap flow export CPU = %.2f, want < 0.15", m.CPUUser)
	}
	if m.Softirq > 0.10 {
		t.Errorf("Scap flow export softirq = %.2f, want small (no payload copies)", m.Softirq)
	}
}

func TestFlowExportScapFDIRReducesSoftirq(t *testing.T) {
	plain := scapRun(t, AppFlowStats, 1, 6*gbit, nil)
	fdir := scapRun(t, AppFlowStats, 1, 6*gbit, func(c *ScapConfig) {
		c.Engine.UseFDIR = true
	})
	if fdir.DroppedAtNIC == 0 {
		t.Fatal("FDIR installed no drops")
	}
	if fdir.Softirq >= plain.Softirq {
		t.Errorf("FDIR softirq %.4f not below plain %.4f", fdir.Softirq, plain.Softirq)
	}
	if loss := fdir.PacketLossFraction(); loss > 0.01 {
		t.Errorf("FDIR flow export loss %.3f", loss)
	}
}

func TestFlowExportLibnidsSaturates(t *testing.T) {
	low := baselineRun(t, KindLibnids, AppFlowStats, 1.5*gbit, nil)
	if loss := low.PacketLossFraction(); loss > 0.02 {
		t.Errorf("libnids at 1.5G: loss %.3f, want ~0", loss)
	}
	high := baselineRun(t, KindLibnids, AppFlowStats, 4*gbit, nil)
	if loss := high.PacketLossFraction(); loss < 0.10 {
		t.Errorf("libnids at 4G: loss %.3f, want substantial", loss)
	}
	// The worker shares its core with that core's softirq load, so its
	// own utilization tops out below 1.
	if high.CPUUser < 0.75 {
		t.Errorf("libnids at 4G CPU = %.2f, want near-saturated", high.CPUUser)
	}
}

func TestFlowExportYAFBetweenLibnidsAndScap(t *testing.T) {
	y3 := baselineRun(t, KindYAF, AppFlowStats, 2.5*gbit, nil)
	if loss := y3.PacketLossFraction(); loss > 0.02 {
		t.Errorf("yaf at 2.5G: loss %.3f, want ~0", loss)
	}
	y6 := baselineRun(t, KindYAF, AppFlowStats, 6*gbit, nil)
	if loss := y6.PacketLossFraction(); loss < 0.05 {
		t.Errorf("yaf at 6G: loss %.3f, want loss (saturated)", loss)
	}
	n6 := baselineRun(t, KindLibnids, AppFlowStats, 6*gbit, nil)
	if y6.PacketLossFraction() >= n6.PacketLossFraction() {
		t.Errorf("yaf should lose less than libnids at 6G: %.3f vs %.3f",
			y6.PacketLossFraction(), n6.PacketLossFraction())
	}
}

// --- Figure 4 anchors: full stream delivery ---

func TestDeliveryScapTwiceBaselineRate(t *testing.T) {
	s4 := scapRun(t, AppDelivery, 1, 4*gbit, nil)
	if loss := s4.PacketLossFraction(); loss > 0.02 {
		t.Errorf("Scap delivery at 4G: loss %.3f, want ~0", loss)
	}
	n4 := baselineRun(t, KindLibnids, AppDelivery, 4*gbit, nil)
	if loss := n4.PacketLossFraction(); loss < 0.2 {
		t.Errorf("libnids delivery at 4G: loss %.3f, want heavy", loss)
	}
	n2 := baselineRun(t, KindLibnids, AppDelivery, 2*gbit, nil)
	if loss := n2.PacketLossFraction(); loss > 0.05 {
		t.Errorf("libnids delivery at 2G: loss %.3f, want ~0", loss)
	}
	// Snort behaves like libnids here.
	sn2 := baselineRun(t, KindSnort, AppDelivery, 2*gbit, nil)
	if loss := sn2.PacketLossFraction(); loss > 0.05 {
		t.Errorf("snort delivery at 2G: loss %.3f", loss)
	}
}

func TestDeliveryScapCheaperCPU(t *testing.T) {
	s2 := scapRun(t, AppDelivery, 1, 2*gbit, nil)
	n2 := baselineRun(t, KindLibnids, AppDelivery, 2*gbit, nil)
	if s2.CPUUser >= n2.CPUUser {
		t.Errorf("Scap user CPU %.2f not below libnids %.2f at 2G", s2.CPUUser, n2.CPUUser)
	}
	// The flip side: Scap does the reassembly in the kernel, so its
	// softirq share is higher than the baselines' simple ring copy.
	if s2.Softirq <= n2.Softirq {
		t.Errorf("Scap softirq %.3f should exceed libnids %.3f when delivering streams",
			s2.Softirq, n2.Softirq)
	}
}

// --- Figure 6 anchors: pattern matching ---

func TestMatchingScapHandlesHigherRate(t *testing.T) {
	s := scapRun(t, AppMatch, 1, 0.9*gbit, nil)
	if loss := s.PacketLossFraction(); loss > 0.02 {
		t.Errorf("Scap matching at 0.9G: loss %.3f, want ~0", loss)
	}
	n := baselineRun(t, KindLibnids, AppMatch, 0.9*gbit, nil)
	sn := baselineRun(t, KindSnort, AppMatch, 0.9*gbit, nil)
	if n.PacketLossFraction() < 0.01 && sn.PacketLossFraction() < 0.01 {
		t.Errorf("baselines at 0.9G should already drop: libnids %.3f snort %.3f",
			n.PacketLossFraction(), sn.PacketLossFraction())
	}
}

func TestMatchingAccuracyUnderOverload(t *testing.T) {
	_, gen := workload(t)
	s := scapRun(t, AppMatch, 1, 6*gbit, nil)
	n := baselineRun(t, KindLibnids, AppMatch, 6*gbit, nil)
	if s.MatchedFlows <= n.MatchedFlows {
		t.Errorf("at 6G Scap matched %d flows vs libnids %d — paper expects a large Scap lead",
			s.MatchedFlows, n.MatchedFlows)
	}
	if gen.Embedded > 0 {
		sr := float64(s.MatchedFlows) / float64(gen.Embedded)
		nr := float64(n.MatchedFlows) / float64(gen.Embedded)
		t.Logf("match recall at 6G: scap %.2f libnids %.2f (embedded %d)", sr, nr, gen.Embedded)
		// The paper sees 50% vs <10% (a 5× lead); our synthetic trace has
		// far smaller flows (patterns survive in fewer packets), so the
		// lead is smaller but must stay decisive.
		if sr < 1.4*nr {
			t.Errorf("Scap recall %.2f not clearly above libnids %.2f", sr, nr)
		}
		if sr < 0.35 {
			t.Errorf("Scap recall %.2f under heavy overload, want >= 0.35", sr)
		}
	}
}

func TestMatchingFullRecallAtLowRate(t *testing.T) {
	_, gen := workload(t)
	s := scapRun(t, AppMatch, 1, 0.25*gbit, nil)
	if gen.Embedded == 0 {
		t.Fatal("no embedded patterns")
	}
	recall := float64(s.MatchedFlows) / float64(gen.Embedded)
	if recall < 0.99 {
		t.Errorf("recall at idle rate = %.3f (matched %d of %d)", recall, s.MatchedFlows, gen.Embedded)
	}
}

// --- Figure 8 anchor: kernel cutoff eliminates loss, user cutoff does not ---

func TestCutoffPlacementMatters(t *testing.T) {
	const rate = 4 * gbit
	scap := scapRun(t, AppMatch, 1, rate, func(c *ScapConfig) {
		c.Engine.Cutoff = 10 << 10
	})
	if loss := scap.PacketLossFraction(); loss > 0.02 {
		t.Errorf("Scap 10KB cutoff at 4G: loss %.3f, want ~0", loss)
	}
	noCut := scapRun(t, AppMatch, 1, rate, nil)
	// The in-kernel cutoff must take the worker from saturation to
	// headroom (the paper sees 97% → 22%; our synthetic tail is lighter,
	// so the reduction is smaller but must still be decisive).
	if scap.CPUUser > 0.9 || scap.CPUUser >= noCut.CPUUser {
		t.Errorf("Scap 10KB cutoff CPU = %.2f (no cutoff %.2f), want clear relief",
			scap.CPUUser, noCut.CPUUser)
	}
	nids := baselineRun(t, KindLibnids, AppMatch, rate, func(c *BaselineConfig) {
		c.Cutoff = 10 << 10
	})
	if loss := nids.PacketLossFraction(); loss < 0.2 {
		t.Errorf("libnids with user-level cutoff at 4G: loss %.3f — cutoff should not save it", loss)
	}
}

// --- Figure 9 anchor: PPL protects high-priority streams ---

func TestPPLPrioritiesProtectHigh(t *testing.T) {
	// Port 22 carries ~5% of the synthetic flows, matching the paper's
	// choice of a minority class (port 80 is 8.4% of *their* trace but
	// 55% of ours): PPL can only protect a class whose own demand fits
	// the system's capacity.
	m := scapRun(t, AppMatch, 1, 5*gbit, func(c *ScapConfig) {
		c.Engine.Priorities = 2
		c.BaseThresh = 0.5
		c.Priority = func(k *pkt.FlowKey) int {
			if k.SrcPort == 22 || k.DstPort == 22 {
				return 1
			}
			return 0
		}
	})
	if m.PktsHigh == 0 || m.PktsLow == 0 {
		t.Fatalf("priority split missing: high=%d low=%d", m.PktsHigh, m.PktsLow)
	}
	lowLoss := float64(m.DroppedLow) / float64(m.PktsLow)
	highLoss := float64(m.DroppedHigh) / float64(m.PktsHigh)
	t.Logf("PPL at 5G: high loss %.4f low loss %.4f", highLoss, lowLoss)
	if lowLoss < 0.05 {
		t.Errorf("low-priority loss %.4f — overload not reached", lowLoss)
	}
	if highLoss > lowLoss/4 {
		t.Errorf("high-priority loss %.4f not well below low %.4f", highLoss, lowLoss)
	}
}

// TestOverloadCutoffPreservesStreamHeads validates the §2.2 overload
// cutoff: under the same overload, trimming streams beyond a byte position
// (instead of dropping whole packets blindly) preserves more stream heads —
// measured as pattern recall, since patterns sit near stream starts.
func TestOverloadCutoffPreservesStreamHeads(t *testing.T) {
	_, gen := workload(t)
	const rate = 4 * gbit
	plain := scapRun(t, AppMatch, 1, rate, func(c *ScapConfig) {
		c.BaseThresh = 0.5
	})
	trimmed := scapRun(t, AppMatch, 1, rate, func(c *ScapConfig) {
		c.BaseThresh = 0.5
		c.OverloadCutoff = 8 << 10
	})
	if gen.Embedded == 0 {
		t.Fatal("no embedded patterns")
	}
	pr := float64(plain.MatchedFlows) / float64(gen.Embedded)
	tr := float64(trimmed.MatchedFlows) / float64(gen.Embedded)
	t.Logf("recall at 4G: plain %.3f, overload-cutoff %.3f", pr, tr)
	if tr <= pr {
		t.Errorf("overload cutoff did not improve recall: %.3f <= %.3f", tr, pr)
	}
}

// --- Figure 10 anchor: multicore scaling ---

func TestMulticoreScaling(t *testing.T) {
	one := scapRun(t, AppMatch, 1, 3*gbit, nil)
	if loss := one.PacketLossFraction(); loss < 0.1 {
		t.Errorf("1 worker at 3G: loss %.3f, expected overload", loss)
	}
	eight := scapRun(t, AppMatch, 8, 3*gbit, nil)
	// Heavy-tailed flows make the per-queue load uneven (the paper's
	// motivation for FDIR-based rebalancing), so a small residual loss on
	// the hottest core is expected at our trace scale.
	if loss := eight.PacketLossFraction(); loss > 0.1 || loss > one.PacketLossFraction()/3 {
		t.Errorf("8 workers at 3G: loss %.3f (1 worker: %.3f), want a large improvement",
			loss, one.PacketLossFraction())
	}
}

// --- Figure 5 anchor: concurrent streams ---

func TestConcurrentStreamsTableLimits(t *testing.T) {
	mkSrc := func() *trace.SliceSource {
		g := trace.ConcurrentStreamsWorkload(9, 4000, 2000, 20, 1460)
		return &trace.SliceSource{Frames: trace.Collect(g, 0)}
	}
	// Baseline with a 1000-connection table loses most streams.
	nids := NewBaselineSim(BaselineConfig{
		Kind: KindLibnids, App: AppDelivery, RingBytes: testRing, MaxFlows: 1000,
	})
	nm := nids.Run(mkSrc(), 1*gbit)
	c := nids.Reassembler().Counters()
	if c.StreamsRefused == 0 {
		t.Errorf("libnids with 1000-flow table refused nothing: %+v", c)
	}
	_ = nm
	// Scap with dynamic tables tracks everything.
	scap := NewScapSim(ScapConfig{
		Engine:   core.Config{Cutoff: core.CutoffUnlimited, Mode: reassembly.ModeFast},
		Workers:  1,
		MemBytes: 64 << 20,
		App:      AppDelivery,
	})
	sm := scap.Run(mkSrc(), 1*gbit)
	if sm.StreamsCreated < 4000*2 {
		t.Errorf("Scap tracked %d directions, want %d", sm.StreamsCreated, 8000)
	}
	if loss := sm.PacketLossFraction(); loss > 0.02 {
		t.Errorf("Scap with 2000 concurrent streams at 1G: loss %.3f", loss)
	}
}
