package pkt

import (
	"math/rand"
	"testing"
)

// TestDecodeNeverPanics throws random and mutated frames at the decoder:
// any outcome is fine except a panic or an out-of-bounds slice.
func TestDecodeNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	var p Packet
	// Pure garbage of every small length.
	for n := 0; n < 128; n++ {
		for trial := 0; trial < 20; trial++ {
			b := make([]byte, n)
			r.Read(b)
			_ = Decode(b, &p)
		}
	}
	// Mutations of a valid frame: flip bytes, truncate at every offset.
	valid := BuildTCP(TCPSpec{
		Key: FlowKey{
			SrcIP: MustAddr("10.0.0.1"), DstIP: MustAddr("10.0.0.2"),
			SrcPort: 1234, DstPort: 80, Proto: ProtoTCP,
		},
		Seq: 7, Flags: FlagACK, Payload: make([]byte, 64),
	})
	for i := 0; i < len(valid); i++ {
		trunc := valid[:i]
		_ = Decode(trunc, &p)
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), valid...)
			mut[i] ^= 1 << bit
			_ = Decode(mut, &p)
		}
	}
	// IPv6 with hostile extension-header chains.
	v6 := BuildTCP(TCPSpec{
		Key: FlowKey{
			SrcIP: MustAddr("2001:db8::1"), DstIP: MustAddr("2001:db8::2"),
			SrcPort: 1, DstPort: 2, Proto: ProtoTCP,
		},
		Payload: make([]byte, 32),
	})
	for i := EthernetHeaderLen; i < len(v6); i++ {
		mut := append([]byte(nil), v6...)
		mut[i] = byte(r.Intn(256))
		_ = Decode(mut, &p)
	}
}

// TestDecodeTransportNeverPanics covers the defragmentation reparse path.
func TestDecodeTransportNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(100))
	var p Packet
	for n := 0; n < 64; n++ {
		for _, proto := range []uint8{ProtoTCP, ProtoUDP, ProtoICMP, 99} {
			b := make([]byte, n)
			r.Read(b)
			p.Key.Proto = proto
			_ = DecodeTransport(b, &p)
		}
	}
}
