// Package hotpathblock exercises the blocking-call analyzer: functions
// marked //scap:hotpath, and everything they transitively call, must not
// block.
package hotpathblock

import (
	"os"
	"sync"
	"time"
)

type q struct {
	ch   chan int
	wake chan struct{}
}

//scap:hotpath
func (s *q) push(v int) {
	s.ch <- v // want hotpathblock "channel send"
	s.wakeup()
}

// wakeup is the sanctioned non-blocking notify idiom: a select with a
// default case never parks, so neither the select nor its case send is
// flagged.
func (s *q) wakeup() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

//scap:hotpath
func (s *q) drainOne() int {
	return <-s.ch // want hotpathblock "channel receive"
}

// parkUntil is cold code that blocks; it becomes a finding only because
// poll below pulls it onto the hot path.
func (s *q) parkUntil() {
	time.Sleep(time.Millisecond) // want hotpathblock "time.Sleep"
	select {                     // want hotpathblock "blocking select"
	case <-s.ch:
	case <-s.wake:
	}
}

//scap:hotpath
func (s *q) poll() {
	if len(s.ch) == 0 {
		s.parkUntil()
	}
	s.persist()
}

func (s *q) persist() {
	_ = os.WriteFile("spill", nil, 0o644) // want hotpathblock "call into os"
}

//scap:hotpath
func (s *q) flushAll() {
	for v := range s.ch { // want hotpathblock "range over channel"
		_ = v
	}
}

//scap:hotpath
func barrier(wg *sync.WaitGroup) {
	wg.Wait() // want hotpathblock "sync.WaitGroup.Wait"
}

// cold is not reachable from any //scap:hotpath function, so its blocking
// receive is fine; spawn launching it with go does not pull it in.
func (s *q) cold() { <-s.wake }

//scap:hotpath
func (s *q) spawn() {
	go s.cold()
	go func() {
		<-s.wake // the goroutine body runs elsewhere: not a finding
	}()
}
