package metrics

import "encoding/json"

// Payload is the wire format served at /metrics and consumed by scaptop: a
// registry snapshot augmented with windowed rates. It marshals with
// encoding/json; ParsePayload is the inverse.
type Payload struct {
	TimeUnixNano  int64            `json:"time_unix_nano"`
	WindowSeconds float64          `json:"window_seconds"`
	Cores         int              `json:"cores"`
	Counters      []CounterPayload `json:"counters"`
	Gauges        []GaugeSnap      `json:"gauges"`
	Histograms    []HistogramSnap  `json:"histograms"`
	Events        []Event          `json:"events"`
	// Drops is the drop-attribution table: every counter registered with
	// Family "drops", one row per cause, duplicated out of Counters so
	// consumers can render the table without knowing the cause set.
	Drops []CounterPayload `json:"drops,omitempty"`
}

// CounterPayload is one counter's snapshot plus its windowed per-second rate
// (and the per-core rates for per-core counters). Rates are zero on the
// first collection of a window.
type CounterPayload struct {
	CounterSnap
	Rate        float64   `json:"rate"`
	PerCoreRate []float64 `json:"per_core_rate,omitempty"`
}

// Counter returns the named counter in the payload, or nil when absent.
func (p *Payload) Counter(name string) *CounterPayload {
	for i := range p.Counters {
		if p.Counters[i].Name == name {
			return &p.Counters[i]
		}
	}
	return nil
}

// Histogram returns the named histogram in the payload, or nil when absent.
func (p *Payload) Histogram(name string) *HistogramSnap {
	for i := range p.Histograms {
		if p.Histograms[i].Name == name {
			return &p.Histograms[i]
		}
	}
	return nil
}

// Gauge returns the named gauge in the payload, or nil when absent.
func (p *Payload) Gauge(name string) *GaugeSnap {
	for i := range p.Gauges {
		if p.Gauges[i].Name == name {
			return &p.Gauges[i]
		}
	}
	return nil
}

// ParsePayload decodes a /metrics response body.
func ParsePayload(b []byte) (*Payload, error) {
	var p Payload
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, err
	}
	return &p, nil
}
