package analysis

import "testing"

func TestStatsSnapshotFixtures(t *testing.T) {
	_, pkg := loadFixtures(t, "statssnapshot")
	diags := checkAnalyzer(t, StatsSnapshot, pkg)

	// Exact-position checks: the diagnostic anchors on the return statement
	// of the racy getter.
	if got, want := positionOf(t, diags, "BadEngine.Stats returns e.stats"), "fixtures.go:24:40"; got != want {
		t.Errorf("BadEngine diagnostic at %s, want %s", got, want)
	}
	if got, want := positionOf(t, diags, "HalfLocked.Stats returns h.stats"), "fixtures.go:65:2"; got != want {
		t.Errorf("HalfLocked diagnostic at %s, want %s", got, want)
	}
}

func TestStatsSnapshotFixtureShape(t *testing.T) {
	// Guard against fixture drift: the types the test names must exist.
	_, pkg := loadFixtures(t, "statssnapshot")
	for _, name := range []string{"BadEngine", "GoodEngine", "HalfLocked", "LockedHelper", "SingleOwner", "ReadOnly"} {
		found := false
		for _, st := range structTypes(pkg) {
			if st.Name == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fixture struct %s missing", name)
		}
	}
}
