// Package bench regenerates every table and figure of the paper's
// evaluation (§6, Figures 3–10) and analysis (§7, Figures 11–12): for each
// one it runs the corresponding experiment on the simulated pipeline and
// emits the same series the paper plots, as printable tables. The
// cmd/scapbench binary and the repository-level benchmarks both drive this
// package.
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Figure is one plot's worth of data: an X axis and named series.
type Figure struct {
	ID     string // "fig3a"
	Title  string
	XLabel string
	YLabel string
	Series []string
	points []point
	// Notes document deviations from the paper's setup for this figure.
	Notes []string
}

type point struct {
	x float64
	y map[string]float64
}

// Add records y values for one x position.
func (f *Figure) Add(x float64, values map[string]float64) {
	f.points = append(f.points, point{x: x, y: values})
	sort.SliceStable(f.points, func(i, j int) bool { return f.points[i].x < f.points[j].x })
}

// Value returns the recorded y for a series at x (NaN when absent).
func (f *Figure) Value(series string, x float64) float64 {
	for _, p := range f.points {
		if p.x == x {
			if v, ok := p.y[series]; ok {
				return v
			}
		}
	}
	return math.NaN()
}

// Xs returns the x positions.
func (f *Figure) Xs() []float64 {
	xs := make([]float64, len(f.points))
	for i, p := range f.points {
		xs[i] = p.x
	}
	return xs
}

// Print renders the figure as an aligned text table.
func (f *Figure) Print(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title)
	cols := append([]string{f.XLabel}, f.Series...)
	widths := make([]int, len(cols))
	rows := make([][]string, 0, len(f.points))
	for _, p := range f.points {
		row := make([]string, len(cols))
		row[0] = trimFloat(p.x)
		for i, s := range f.Series {
			v, ok := p.y[s]
			if !ok || math.IsNaN(v) {
				row[i+1] = "-"
			} else {
				row[i+1] = trimFloat(v)
			}
		}
		rows = append(rows, row)
	}
	for i, c := range cols {
		widths[i] = len(c)
		for _, r := range rows {
			if len(r[i]) > widths[i] {
				widths[i] = len(r[i])
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(cols)
	for _, r := range rows {
		printRow(r)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// trimFloat renders compactly: integers without decimals, small values
// with enough precision to be meaningful.
func trimFloat(v float64) string {
	av := math.Abs(v)
	switch {
	case v == math.Trunc(v) && av < 1e15:
		return fmt.Sprintf("%.0f", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	case av >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
