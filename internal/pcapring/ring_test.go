package pcapring

import (
	"math/rand"
	"testing"
)

func TestFIFOOrder(t *testing.T) {
	r := New(1<<20, 0)
	for i := 0; i < 100; i++ {
		if !r.Push([]byte{byte(i)}, int64(i)) {
			t.Fatalf("push %d failed", i)
		}
	}
	for i := 0; i < 100; i++ {
		f, ok := r.Pop()
		if !ok || f.Data[0] != byte(i) || f.TS != int64(i) {
			t.Fatalf("pop %d = %+v, %v", i, f, ok)
		}
	}
}

func TestByteCapacityAccounting(t *testing.T) {
	r := New(10*(100+slotOverhead), 0)
	frame := make([]byte, 100)
	for i := 0; i < 10; i++ {
		if !r.Push(frame, 0) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if r.Push(frame, 0) {
		t.Error("push above capacity accepted")
	}
	r.Pop()
	if !r.Push(frame, 0) {
		t.Error("push after pop rejected")
	}
	if r.UsedBytes() != 10*(100+slotOverhead) {
		t.Errorf("used = %d", r.UsedBytes())
	}
}

func TestSlotGrowthKeepsOrder(t *testing.T) {
	// Many tiny frames force the slot array (initially 1024) to grow while
	// wrapped around.
	r := New(64<<20, 0)
	const n = 5000
	popped := 0
	for i := 0; i < n; i++ {
		if !r.Push([]byte{byte(i), byte(i >> 8)}, int64(i)) {
			t.Fatalf("push %d failed", i)
		}
		// Interleave pops so head is mid-array when growth happens.
		if i%3 == 0 {
			f, ok := r.Pop()
			if !ok || f.TS != int64(popped) {
				t.Fatalf("pop %d = %+v", popped, f)
			}
			popped++
		}
	}
	for {
		f, ok := r.Pop()
		if !ok {
			break
		}
		if f.TS != int64(popped) {
			t.Fatalf("order broken at %d: ts=%d", popped, f.TS)
		}
		popped++
	}
	if popped != n {
		t.Errorf("popped %d of %d", popped, n)
	}
}

func TestRandomizedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	r := New(4096, 128)
	type mf struct {
		ts  int64
		cap int
	}
	var model []mf
	used := 0
	for op := 0; op < 20000; op++ {
		if rng.Intn(2) == 0 {
			n := 1 + rng.Intn(300)
			capLen := n
			if capLen > 128 {
				capLen = 128
			}
			ok := r.Push(make([]byte, n), int64(op))
			fits := used+capLen+slotOverhead <= 4096
			if ok != fits {
				t.Fatalf("op %d: push=%v fits=%v", op, ok, fits)
			}
			if ok {
				model = append(model, mf{int64(op), capLen})
				used += capLen + slotOverhead
			}
		} else {
			f, ok := r.Pop()
			if ok != (len(model) > 0) {
				t.Fatalf("op %d: pop=%v model=%d", op, ok, len(model))
			}
			if ok {
				if f.TS != model[0].ts || len(f.Data) != model[0].cap {
					t.Fatalf("op %d: got ts=%d len=%d want ts=%d len=%d",
						op, f.TS, len(f.Data), model[0].ts, model[0].cap)
				}
				used -= model[0].cap + slotOverhead
				model = model[1:]
			}
		}
	}
}
