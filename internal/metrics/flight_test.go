package metrics

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
)

// testFlight builds a recorder with a deterministic clock: each Note stamps
// the next nanosecond. The counter is atomic so concurrent-writer tests stay
// race-free in the test harness itself.
func testFlight(cores, capacity int) (*FlightRecorder, *atomic.Int64) {
	t := new(atomic.Int64)
	fn := func() int64 { return t.Add(1) }
	return newFlightRecorder(cores, capacity, &fn), t
}

func TestFlightNoteAndSnapshot(t *testing.T) {
	f, _ := testFlight(2, 8)
	f.Note(0, FlightCutoff, 42, 7)
	f.Note(1, FlightPPLEnter, 950, 0)
	f.Note(1, FlightPPLExit, 123, 0)

	recs := f.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("Snapshot returned %d records, want 3", len(recs))
	}
	if f.Total() != 3 {
		t.Fatalf("Total = %d, want 3", f.Total())
	}
	// Oldest first.
	for i := 1; i < len(recs); i++ {
		if recs[i].TimeUnixNano < recs[i-1].TimeUnixNano {
			t.Fatalf("records out of order: %v", recs)
		}
	}
	r := recs[0]
	if r.Kind != FlightCutoff || r.KindName != "cutoff" || r.Core != 0 || r.Value != 42 || r.Aux != 7 {
		t.Fatalf("first record = %+v, want cutoff core=0 value=42 aux=7", r)
	}
	if recs[1].Core != 1 || recs[1].Kind != FlightPPLEnter {
		t.Fatalf("second record = %+v, want ppl_enter core=1", recs[1])
	}
}

func TestFlightOutOfRangeCore(t *testing.T) {
	f, _ := testFlight(2, 8)
	f.Note(-1, FlightCutoff, 1, 0)
	f.Note(99, FlightCutoff, 2, 0)
	recs := f.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	for _, r := range recs {
		if r.Core != 0 {
			t.Fatalf("out-of-range core should fall back to ring 0, got %d", r.Core)
		}
	}
}

// TestFlightWraparound is the wraparound/ordering property test: writing
// many times the ring capacity must retain exactly the newest cap records,
// with strictly increasing sequence numbers ending at the claim total.
func TestFlightWraparound(t *testing.T) {
	const capacity = 16
	const writes = 3*capacity + 5
	f, _ := testFlight(1, capacity)
	for i := 0; i < writes; i++ {
		f.Note(0, FlightKind(uint8(i)%uint8(len(flightKindNames))), int64(i), 0)
	}
	recs := f.Snapshot()
	if len(recs) != capacity {
		t.Fatalf("after wraparound Snapshot returned %d records, want %d", len(recs), capacity)
	}
	if f.Total() != writes {
		t.Fatalf("Total = %d, want %d", f.Total(), writes)
	}
	for i, r := range recs {
		wantSeq := uint64(writes - capacity + 1 + i)
		if r.Seq != wantSeq {
			t.Fatalf("record %d has seq %d, want %d (survivors must be the newest %d, in order)", i, r.Seq, wantSeq, capacity)
		}
		// Value tracked the write index, so it must agree with the sequence.
		if r.Value != int64(wantSeq-1) {
			t.Fatalf("record %d: value %d does not match seq %d", i, r.Value, r.Seq)
		}
		if int(r.Kind) >= len(flightKindNames) || r.KindName == "unknown" {
			t.Fatalf("record %d has invalid kind %d", i, r.Kind)
		}
	}
}

// TestFlightConcurrent hammers the recorder from concurrent writers on every
// ring — including two writers lapping the same small ring — while readers
// snapshot continuously. Run under -race this is the data-race proof; the
// assertions check that readers only ever see intact records.
func TestFlightConcurrent(t *testing.T) {
	const (
		cores    = 4
		capacity = 32
		writers  = 8
		perW     = 2000
	)
	f, _ := testFlight(cores, capacity)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				f.Note(w%cores, FlightCutoff, int64(w), int64(i))
			}
		}(w)
	}
	var rg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, rec := range f.Snapshot() {
					if rec.Kind != FlightCutoff || rec.Value < 0 || rec.Value >= writers || rec.Aux < 0 || rec.Aux >= perW {
						t.Errorf("torn record leaked to a reader: %+v", rec)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	if f.Total() != writers*perW {
		t.Fatalf("Total = %d, want %d", f.Total(), writers*perW)
	}
	recs := f.Snapshot()
	if len(recs) == 0 || len(recs) > cores*capacity {
		t.Fatalf("quiescent Snapshot returned %d records, want (0, %d]", len(recs), cores*capacity)
	}
}

// TestFlightChromeTraceGolden pins the Chrome trace-event export shape: the
// exact JSON for a fixed record set, so Perfetto compatibility regressions
// show up as a diff here instead of a blank trace viewer.
func TestFlightChromeTraceGolden(t *testing.T) {
	recs := []FlightRecord{
		{Seq: 1, TimeUnixNano: 1_000_000, Core: 0, Kind: FlightPPLEnter, KindName: "ppl_enter", Value: 950},
		{Seq: 2, TimeUnixNano: 1_500_000, Core: 1, Kind: FlightCutoff, KindName: "cutoff", Value: 7, Aux: 4096},
		{Seq: 3, TimeUnixNano: 3_000_000, Core: 0, Kind: FlightPPLExit, KindName: "ppl_exit", Value: 2_000_000},
	}
	got, err := json.Marshal(ChromeTraceFromRecords(recs))
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"traceEvents":[` +
		`{"name":"ppl_enter","cat":"flight","ph":"i","ts":0,"pid":0,"tid":0,"s":"t","args":{"aux":0,"seq":1,"value":950}},` +
		`{"name":"cutoff","cat":"flight","ph":"i","ts":500,"pid":0,"tid":1,"s":"t","args":{"aux":4096,"seq":2,"value":7}},` +
		`{"name":"ppl_exit","cat":"flight","ph":"X","ts":0,"dur":2000,"pid":0,"tid":0,"args":{"aux":0,"seq":3,"value":2000000}}` +
		`],"displayTimeUnit":"ms"}`
	if string(got) != golden {
		t.Fatalf("Chrome trace drifted from the golden shape:\n got: %s\nwant: %s", got, golden)
	}

	// The export must always be a valid trace-event JSON object, also when
	// empty (Perfetto rejects a missing traceEvents array).
	empty, err := json.Marshal(ChromeTraceFromRecords(nil))
	if err != nil {
		t.Fatal(err)
	}
	if string(empty) != `{"traceEvents":[],"displayTimeUnit":"ms"}` {
		t.Fatalf("empty trace = %s", empty)
	}
}

// TestFlightChromeTraceValid decodes a real recorder's export back through
// encoding/json and checks the trace-event invariants Perfetto relies on.
func TestFlightChromeTraceValid(t *testing.T) {
	f, _ := testFlight(2, 16)
	f.Note(0, FlightPPLEnter, 900, 0)
	f.Note(1, FlightCutoff, 3, 128)
	f.Note(0, FlightPPLExit, 5, 0)
	raw, err := json.Marshal(ChromeTraceFromRecords(f.Snapshot()))
	if err != nil {
		t.Fatal(err)
	}
	var tr ChromeTrace
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("export does not round-trip: %v", err)
	}
	if len(tr.TraceEvents) != 3 {
		t.Fatalf("trace has %d events, want 3", len(tr.TraceEvents))
	}
	for _, ev := range tr.TraceEvents {
		if ev.Ph != "i" && ev.Ph != "X" {
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
		if ev.Ph == "i" && ev.Scope == "" {
			t.Fatalf("instant event missing scope: %+v", ev)
		}
		if ev.Name == "" || ev.TS < 0 {
			t.Fatalf("malformed event: %+v", ev)
		}
	}
}

func TestRegistryFlightSharesClock(t *testing.T) {
	r := NewRegistry(2)
	var tick int64 = 41
	r.SetClock(func() int64 { tick++; return tick })
	r.Flight().Note(1, FlightArenaFallback, 9000, 0)
	recs := r.Flight().Snapshot()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	if recs[0].TimeUnixNano != 42 {
		t.Fatalf("record stamped %d, want the injected clock's 42", recs[0].TimeUnixNano)
	}
	d := r.Flight().Dump()
	if d.Cores != 2 || d.Total != 1 || len(d.Records) != 1 || d.Capacity != defaultFlightCap {
		t.Fatalf("Dump = %+v", d)
	}
}

func TestNanotimeMonotonic(t *testing.T) {
	a := Nanotime()
	b := Nanotime()
	if a < 0 || b < a {
		t.Fatalf("Nanotime not monotonic: %d then %d", a, b)
	}
}
