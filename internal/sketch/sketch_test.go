package sketch

import (
	"math/rand"
	"testing"

	"scap/internal/pkt"
)

func skKey(i int) pkt.FlowKey {
	return pkt.FlowKey{
		SrcIP: pkt.MustAddr("10.0.0.1"), DstIP: pkt.MustAddr("10.0.0.2"),
		SrcPort: uint16(i), DstPort: uint16(i >> 16), Proto: pkt.ProtoTCP,
	}
}

func hash(i int) uint64 { return pkt.Mix64(uint64(i)*0x9e3779b97f4a7c15 + 1) }

func TestEstimateNeverUndercounts(t *testing.T) {
	sk := New(Config{Width: 1 << 10, Depth: 4})
	r := rand.New(rand.NewSource(1))
	truth := map[int]uint64{}
	for op := 0; op < 50000; op++ {
		f := r.Intn(4000)
		n := r.Intn(1460)
		sk.Observe(hash(f), skKey(f), 0, n)
		truth[f] += uint64(n)
	}
	for f, want := range truth {
		if got := sk.Estimate(hash(f)); got < want {
			t.Fatalf("flow %d estimated %d < true %d (count-min must be one-sided)", f, got, want)
		}
	}
}

func TestEstimateErrorBounded(t *testing.T) {
	// With load well under width, most flows should estimate exactly.
	sk := New(Config{Width: 1 << 12, Depth: 4})
	const flows = 256
	for f := 0; f < flows; f++ {
		sk.Observe(hash(f), skKey(f), 0, 1000+f)
	}
	exact := 0
	for f := 0; f < flows; f++ {
		if sk.Estimate(hash(f)) == uint64(1000+f) {
			exact++
		}
	}
	if exact < flows*9/10 {
		t.Errorf("only %d/%d flows estimated exactly at low load", exact, flows)
	}
}

func TestPerPriorityAccounting(t *testing.T) {
	sk := New(Config{Priorities: 3})
	sk.Observe(hash(1), skKey(1), 0, 100)
	sk.Observe(hash(2), skKey(2), 2, 50)
	sk.Observe(hash(2), skKey(2), 2, 50)
	sk.Observe(hash(3), skKey(3), 9, 1) // out of range: total only
	sk.Publish()
	s := sk.Snapshot()
	if s.ObservedPkts != 4 || s.ObservedBytes != 201 {
		t.Errorf("observed = %d pkts / %d bytes", s.ObservedPkts, s.ObservedBytes)
	}
	if s.PrioBytes[0] != 100 || s.PrioBytes[2] != 100 || s.PrioPkts[2] != 2 {
		t.Errorf("prio accounting = %+v / %+v", s.PrioBytes, s.PrioPkts)
	}
}

func TestHeavyHitterTracking(t *testing.T) {
	sk := New(Config{Width: 1 << 12, Depth: 4, TopK: 8})
	sk.SetHeavyMin(10000)
	// 100 mice, 5 elephants.
	for f := 0; f < 100; f++ {
		sk.Observe(hash(f), skKey(f), 0, 100)
	}
	for f := 100; f < 105; f++ {
		for i := 0; i < 20; i++ {
			sk.Observe(hash(f), skKey(f), 1, 1000)
		}
	}
	heavies := map[uint16]uint64{}
	sk.ForEachHeavy(func(h *Heavy) { heavies[h.Key.SrcPort] = h.Bytes })
	for f := 100; f < 105; f++ {
		if b := heavies[uint16(f)]; b < 10000 {
			t.Errorf("elephant %d not tracked (bytes=%d)", f, b)
		}
	}
	for p, b := range heavies {
		if p < 100 {
			t.Errorf("mouse %d tracked as heavy with %d bytes", p, b)
		}
	}
}

func TestHeavyDisplacementKeepsBigger(t *testing.T) {
	sk := New(Config{Width: 1 << 12, Depth: 4, TopK: 2})
	sk.SetHeavyMin(1)
	// Fill beyond capacity with ascending sizes; the biggest must survive.
	for f := 0; f < 32; f++ {
		for i := 0; i <= f; i++ {
			sk.Observe(hash(f), skKey(f), 0, 1000)
		}
	}
	var maxSeen uint64
	sk.ForEachHeavy(func(h *Heavy) {
		if h.Bytes > maxSeen {
			maxSeen = h.Bytes
		}
	})
	if maxSeen < 16000 {
		t.Errorf("largest surviving heavy entry only %d bytes", maxSeen)
	}
}

func TestFDIRMarkAndClear(t *testing.T) {
	sk := New(Config{TopK: 4})
	sk.SetHeavyMin(1)
	sk.Observe(hash(7), skKey(7), 0, 500)
	sk.ForEachHeavy(func(h *Heavy) { h.FDIR = true })
	marked := false
	sk.ForEachHeavy(func(h *Heavy) { marked = h.FDIR })
	if !marked {
		t.Fatal("FDIR mark lost")
	}
	sk.ClearFDIR(hash(7))
	sk.ForEachHeavy(func(h *Heavy) {
		if h.FDIR {
			t.Error("ClearFDIR did not unmark the entry")
		}
	})
}

func TestSnapshotIsolation(t *testing.T) {
	sk := New(Config{})
	sk.Observe(hash(1), skKey(1), 0, 10)
	sk.Publish()
	s1 := sk.Snapshot()
	sk.Observe(hash(1), skKey(1), 0, 10)
	sk.Publish()
	s2 := sk.Snapshot()
	if s1.ObservedPkts != 1 || s2.ObservedPkts != 2 {
		t.Errorf("snapshots not isolated: %d then %d", s1.ObservedPkts, s2.ObservedPkts)
	}
}
