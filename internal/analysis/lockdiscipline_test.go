package analysis

import (
	"strings"
	"testing"
)

func TestLockDisciplineFixtures(t *testing.T) {
	_, pkg := loadFixtures(t, "lockdiscipline")
	diags := checkAnalyzer(t, LockDiscipline, pkg)

	// Exact-position checks: the diagnostic anchors on the selector
	// expression of the first unguarded access.
	if got, want := positionOf(t, diags, "state.Bad accesses s.count"), "fixtures.go:29:9"; got != want {
		t.Errorf("state.Bad diagnostic at %s, want %s", got, want)
	}
	if got, want := positionOf(t, diags, "state.WrongLock"), "fixtures.go:35:2"; got != want {
		t.Errorf("state.WrongLock diagnostic at %s, want %s", got, want)
	}
}

func TestLockDisciplineSuppression(t *testing.T) {
	// The Suppressed method carries //scaplint:ignore lockdiscipline; the
	// raw run must find it, the filtered run must not.
	_, pkg := loadFixtures(t, "lockdiscipline")
	raw := LockDiscipline.Run(pkg)
	found := false
	for _, d := range raw {
		if d.Analyzer == "lockdiscipline" && strings.Contains(d.Message, "state.Suppressed") {
			found = true
		}
	}
	if !found {
		t.Fatal("raw run should flag state.Suppressed before suppression filtering")
	}
	filtered := RunAll([]*Package{pkg}, []*Analyzer{LockDiscipline})
	for _, d := range filtered {
		if strings.Contains(d.Message, "state.Suppressed") {
			t.Errorf("suppressed diagnostic survived filtering: %s", d)
		}
	}
}
