// Patternmatch: the paper's §3.3.2 application — Aho-Corasick signature
// matching over reassembled streams, with worker threads for parallel
// stream processing and chunk overlap so patterns spanning chunk
// boundaries are still found.
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	"scap"
	"scap/internal/bench"
	"scap/internal/match"
	"scap/internal/trace"
)

func main() {
	// The paper extracts 2,120 strings from Snort's web-attack rules; the
	// bench package synthesizes an equivalent deterministic set.
	patterns := bench.Patterns(2120)
	matcher, err := match.New(patterns)
	if err != nil {
		log.Fatal(err)
	}

	h, err := scap.Create(scap.Config{ReassemblyMode: scap.TCPFast, Queues: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := h.SetWorkerThreads(4); err != nil {
		log.Fatal(err)
	}
	// Overlap by the longest pattern so no boundary match is missed.
	longest := 0
	for _, p := range patterns {
		if len(p) > longest {
			longest = len(p)
		}
	}
	if err := h.SetParameter(scap.ParamOverlapSize, int64(longest-1)); err != nil {
		log.Fatal(err)
	}

	var matches, chunks, bytesScanned atomic.Uint64
	h.DispatchData(func(sd *scap.Stream) {
		chunks.Add(1)
		bytesScanned.Add(uint64(len(sd.Data)))
		matcher.Scan(sd.Data, func(m match.Match) bool {
			matches.Add(1)
			return true
		})
	})

	if err := h.StartCapture(); err != nil {
		log.Fatal(err)
	}
	gen := trace.NewGenerator(trace.GenConfig{
		Seed: 7, Flows: 1000, Concurrency: 64,
		EmbedPatterns: patterns, EmbedProb: 0.3,
	})
	if err := h.ReplaySource(gen, 1e9); err != nil {
		log.Fatal(err)
	}
	h.Close()

	fmt.Printf("scanned %d chunks (%d MB), %d pattern matches, %d flows embedded a pattern\n",
		chunks.Load(), bytesScanned.Load()>>20, matches.Load(), gen.Embedded)
}
