package metrics

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenPayload builds a deterministic registry (synthetic clock, fixed
// values) so the marshaled /metrics payload is byte-stable.
func goldenPayload() Payload {
	r := NewRegistry(2)
	clock := int64(1_700_000_000_000_000_000)
	r.SetClock(func() int64 { return clock })
	c := r.NewCounter(Desc{Name: "packets_total", Help: "packets processed", Unit: "packets", Paper: "Fig. 7"})
	r.NewCounterFunc(Desc{Name: "mem_admitted_total", Unit: "bytes"}, func() uint64 { return 4096 })
	g := r.NewGauge(Desc{Name: "memory_used_bytes", Unit: "bytes"})
	h := r.NewHistogram(Desc{Name: "event_batch_size", Unit: "events"}, 2)

	w := NewWindow(r)
	w.Collect() // establish the window baseline

	c.Cell(0).Add(200)
	c.Cell(1).Add(100)
	g.Set(1 << 20)
	h.Observe(0, 1)
	h.Observe(1, 3)
	h.Observe(0, 9)
	r.Events().Record(Event{Kind: EvPPLEnter, Core: 1, Value: 850})
	clock += 1_000_000_000
	return w.Collect()
}

func TestPayloadGolden(t *testing.T) {
	p := goldenPayload()
	got, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "payload.golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("payload drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestParsePayloadRoundTrip(t *testing.T) {
	p := goldenPayload()
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePayload(b)
	if err != nil {
		t.Fatal(err)
	}
	cp := back.Counter("packets_total")
	if cp == nil {
		t.Fatal("packets_total missing after round trip")
	}
	if cp.Total != 300 || cp.Rate != 300 {
		t.Fatalf("total=%d rate=%v, want 300/300", cp.Total, cp.Rate)
	}
	if len(cp.PerCore) != 2 || cp.PerCore[0] != 200 || cp.PerCore[1] != 100 {
		t.Fatalf("per-core = %v", cp.PerCore)
	}
	if gv := back.Gauge("memory_used_bytes"); gv == nil || gv.Value != 1<<20 {
		t.Fatalf("gauge = %+v", gv)
	}
	if len(back.Events) != 1 || back.Events[0].KindName != "ppl_enter" || back.Events[0].Value != 850 {
		t.Fatalf("events = %+v", back.Events)
	}
	if back.Counter("nope") != nil || back.Gauge("nope") != nil {
		t.Fatal("lookup of absent metric should return nil")
	}
	if _, err := ParsePayload([]byte("{not json")); err == nil {
		t.Fatal("ParsePayload accepted garbage")
	}
}
