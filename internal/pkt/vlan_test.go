package pkt

import (
	"bytes"
	"testing"
)

func TestDecodeVLANTagged(t *testing.T) {
	spec := TCPSpec{
		Key:     tcpKey(1234, 80),
		Seq:     42,
		Flags:   FlagACK | FlagPSH,
		Payload: []byte("tagged payload"),
	}
	plain := BuildTCP(spec)
	tagged := WrapVLAN(plain, 100)

	var p Packet
	if err := Decode(tagged, &p); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !p.HasVLAN || p.VLANID != 100 {
		t.Errorf("vlan = %v/%d", p.HasVLAN, p.VLANID)
	}
	if p.Key != spec.Key || p.Seq != 42 {
		t.Errorf("inner packet fields lost: %+v", p.Key)
	}
	if !bytes.Equal(p.Payload, spec.Payload) {
		t.Errorf("payload = %q", p.Payload)
	}

	// Untagged decodes report no VLAN.
	if err := Decode(plain, &p); err != nil {
		t.Fatal(err)
	}
	if p.HasVLAN {
		t.Error("untagged frame reported a VLAN")
	}
}

func TestDecodeQinQ(t *testing.T) {
	inner := BuildTCP(TCPSpec{Key: tcpKey(1, 2), Flags: FlagSYN})
	// Service tag (802.1ad) wrapping a customer tag.
	double := WrapVLAN(WrapVLAN(inner, 200), 300)
	// Rewrite the outer tag's TPID to 802.1ad.
	qinq := uint16(EtherTypeQinQ)
	double[12] = byte(qinq >> 8)
	double[13] = byte(qinq & 0xff)
	var p Packet
	if err := Decode(double, &p); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !p.HasVLAN || p.VLANID != 300 {
		t.Errorf("outer vlan = %v/%d, want 300", p.HasVLAN, p.VLANID)
	}
	if p.Key.Proto != ProtoTCP || p.TCPFlags != FlagSYN {
		t.Errorf("inner TCP lost: %+v", p)
	}
}

func TestVLANTruncated(t *testing.T) {
	plain := BuildTCP(TCPSpec{Key: tcpKey(1, 2)})
	tagged := WrapVLAN(plain, 5)
	var p Packet
	if err := Decode(tagged[:15], &p); err == nil {
		t.Error("truncated VLAN frame decoded")
	}
}
