//go:build linux && live

package nic

// Live AF_PACKET conformance: the same behavioral contract the hermetic
// suite (conformance_test.go) checks against sim and pcap replay, driven
// over a veth pair with real TPACKET_V3 rings. Needs root (CAP_NET_ADMIN
// to create the veth, CAP_NET_RAW for the sockets) and skips otherwise.
// CI invokes these as: sudo go test -tags live -run AFPacket ./...

import (
	"net"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

const (
	liveVethCap  = "scapve0" // capture end, the backend's Iface
	liveVethPeer = "scapve1" // send end, the test's injection point
)

// liveWait bounds how long a test waits for the kernel to deliver the
// frames it sent across the veth.
const liveWait = 10 * time.Second

// setupVeth creates the veth pair, brings both ends up, and returns a raw
// packet socket on the peer end for sending. Skips the test when the
// environment cannot provide the pair.
func setupVeth(t *testing.T) (fd, ifindex int) {
	t.Helper()
	if os.Geteuid() != 0 {
		t.Skip("live capture test needs root")
	}
	// Remove a stale pair from an aborted earlier run, then create fresh.
	_ = exec.Command("ip", "link", "del", liveVethCap).Run()
	if out, err := exec.Command("ip", "link", "add", liveVethCap, "type", "veth", "peer", "name", liveVethPeer).CombinedOutput(); err != nil {
		t.Skipf("cannot create veth pair (missing CAP_NET_ADMIN?): %v: %s", err, out)
	}
	t.Cleanup(func() { _ = exec.Command("ip", "link", "del", liveVethCap).Run() })
	for _, dev := range []string{liveVethCap, liveVethPeer} {
		if out, err := exec.Command("ip", "link", "set", dev, "up").CombinedOutput(); err != nil {
			t.Fatalf("ip link set %s up: %v: %s", dev, err, out)
		}
	}
	ifi, err := net.InterfaceByName(liveVethPeer)
	if err != nil {
		t.Fatalf("veth peer vanished: %v", err)
	}
	fd, err = syscall.Socket(syscall.AF_PACKET, syscall.SOCK_RAW, int(htons(ethPAll)))
	if err != nil {
		t.Skipf("cannot open raw packet socket (missing CAP_NET_RAW?): %v", err)
	}
	t.Cleanup(func() { syscall.Close(fd) })
	// Give the pair a moment to gain carrier before the first send.
	time.Sleep(100 * time.Millisecond)
	return fd, ifi.Index
}

// sendAll writes every frame onto the peer end, retrying transient
// kernel-buffer exhaustion.
func sendAll(t *testing.T, fd, ifindex int, frames []confFrame) {
	t.Helper()
	sa := &syscall.SockaddrLinklayer{Protocol: htons(ethPAll), Ifindex: ifindex, Halen: 6}
	for i, fr := range frames {
		for {
			err := syscall.Sendto(fd, fr.data, 0, sa)
			if err == syscall.ENOBUFS || err == syscall.EAGAIN {
				time.Sleep(time.Millisecond)
				continue
			}
			if err != nil {
				t.Fatalf("sendto frame %d: %v", i, err)
			}
			break
		}
	}
}

// isConfFrame reports whether a delivered frame is one of ours: confFlows
// payloads end with the fixed tail 3,4,5,6,7,8, which stray veth traffic
// (IPv6 neighbor discovery and friends) will not match.
func isConfFrame(f Frame) bool {
	n := len(f.Data)
	if n < 8 {
		return false
	}
	tail := f.Data[n-6:]
	for i, b := range []byte{3, 4, 5, 6, 7, 8} {
		if tail[i] != b {
			return false
		}
	}
	return true
}

// collectLive drains every queue until the backend closes, counting our
// frames as they arrive so the test can wait for delivery while the
// collectors are still running.
func collectLive(be Backend, count *atomic.Int64) <-chan [][]Frame {
	out := make(chan [][]Frame, 1)
	go func() {
		got := make([][]Frame, be.Queues())
		var wg sync.WaitGroup
		for q := 0; q < be.Queues(); q++ {
			wg.Add(1)
			go func(q int) {
				defer wg.Done()
				for batch := range be.Batches(q) {
					for _, f := range batch {
						if isConfFrame(f) {
							count.Add(1)
						}
					}
					got[q] = append(got[q], batch...)
				}
			}(q)
		}
		wg.Wait()
		out <- got
	}()
	return out
}

// waitDelivered spins until count reaches want or the deadline passes.
func waitDelivered(t *testing.T, be Backend, count *atomic.Int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(liveWait)
	for count.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d/%d frames within %v (stats %+v)", count.Load(), want, liveWait, be.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func openLive(t *testing.T, cfg AFPacketConfig) Backend {
	t.Helper()
	be, err := NewAFPacket(cfg)
	if err != nil {
		t.Fatalf("NewAFPacket: %v", err)
	}
	if err := be.Open(); err != nil {
		t.Skipf("cannot open AF_PACKET backend (missing CAP_NET_RAW?): %v", err)
	}
	return be
}

func TestAFPacketDelivery(t *testing.T) {
	fd, ifindex := setupVeth(t)
	const queues, flows, perFlow = 2, 23, 10
	be := openLive(t, AFPacketConfig{
		Iface: liveVethCap, Queues: queues,
		BlockBytes: 64 << 10, Blocks: 16, FanoutID: 41001,
	})
	caps := be.Capabilities()
	if caps.RSSQueues != queues {
		t.Errorf("Capabilities.RSSQueues = %d, want %d", caps.RSSQueues, queues)
	}
	if caps.HWFilters || caps.HWTimestamps {
		t.Error("AF_PACKET backend claims hardware offloads it does not have")
	}
	if !caps.HasFilters() {
		t.Error("Capabilities.HasFilters() = false; the software shim models a filter table")
	}

	var ours atomic.Int64
	results := collectLive(be, &ours)
	frames := confFlows(flows, perFlow)
	sendAll(t, fd, ifindex, frames)
	waitDelivered(t, be, &ours, int64(len(frames)))
	if err := be.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := be.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	got := <-results
	<-be.Done()

	// Flow affinity (PACKET_FANOUT_HASH keeps a flow on one socket) and
	// sane stamps, over our frames only — the veth also carries kernel
	// chatter we did not send.
	flowQueue := make(map[byte]int)
	total := 0
	for q, fs := range got {
		var lastIngest int64
		for _, f := range fs {
			if f.Ingest <= 0 {
				t.Fatalf("queue %d: Ingest = %d, want > 0", q, f.Ingest)
			}
			if f.Ingest < lastIngest {
				t.Fatalf("queue %d: Ingest went backwards (%d after %d)", q, f.Ingest, lastIngest)
			}
			lastIngest = f.Ingest
			if !isConfFrame(f) {
				continue
			}
			total++
			if f.TS <= 0 {
				t.Fatalf("queue %d: frame delivered with TS %d", q, f.TS)
			}
			flowID := f.Data[len(f.Data)-8]
			if prev, ok := flowQueue[flowID]; ok && prev != q {
				t.Fatalf("flow %d split across queues %d and %d", flowID, prev, q)
			}
			flowQueue[flowID] = q
		}
	}
	if total != len(frames) {
		t.Errorf("delivered %d of our frames, want %d", total, len(frames))
	}
	if s := be.Stats(); s.Received < uint64(len(frames)) {
		t.Errorf("Stats().Received = %d, want >= %d", s.Received, len(frames))
	}
}

func TestAFPacketFilters(t *testing.T) {
	fd, ifindex := setupVeth(t)
	const perFlow = 25
	be := openLive(t, AFPacketConfig{
		Iface: liveVethCap, Queues: 1,
		BlockBytes: 64 << 10, Blocks: 16, FanoutID: 41002,
	})
	dropKey := key4("10.1.0.1", 2000, "10.9.0.1", 80) // flow index 0 in confFlows
	if _, _, err := be.AddFilter(FilterSpec{Key: dropKey, Action: ActionDrop}); err != nil {
		t.Fatalf("AddFilter: %v", err)
	}
	if p, s := be.FilterCount(); p != 1 || s != 0 {
		t.Fatalf("FilterCount = (%d, %d), want (1, 0)", p, s)
	}

	var ours atomic.Int64
	results := collectLive(be, &ours)
	frames := confFlows(2, perFlow) // flows 0 (filtered) and 1
	sendAll(t, fd, ifindex, frames)
	// Only flow 1 may come through; the filtered flow shows up as drops.
	waitDelivered(t, be, &ours, perFlow)
	deadline := time.Now().Add(liveWait)
	for be.Stats().DroppedFilter < perFlow {
		if time.Now().After(deadline) {
			t.Fatalf("DroppedFilter = %d, want %d", be.Stats().DroppedFilter, perFlow)
		}
		time.Sleep(time.Millisecond)
	}
	be.Close()
	got := <-results
	<-be.Done()

	for _, fs := range got {
		for _, f := range fs {
			if isConfFrame(f) && f.Data[len(f.Data)-8] == 0 {
				t.Fatal("a filtered flow's frame was delivered")
			}
		}
	}
	if n := be.RemoveFilters(dropKey, false); n != 1 {
		t.Errorf("RemoveFilters = %d, want 1", n)
	}
	if p, s := be.FilterCount(); p != 0 || s != 0 {
		t.Errorf("FilterCount after removal = (%d, %d), want (0, 0)", p, s)
	}
}

func TestAFPacketCloseBeforeOpen(t *testing.T) {
	be, err := NewAFPacket(AFPacketConfig{Iface: "scapve-none", Queues: 2})
	if err != nil {
		t.Fatalf("NewAFPacket: %v", err)
	}
	if err := be.Close(); err != nil {
		t.Fatalf("Close before Open: %v", err)
	}
	select {
	case <-be.Done():
	default:
		t.Error("Done not closed after Close")
	}
	for q := 0; q < be.Queues(); q++ {
		if _, ok := <-be.Batches(q); ok {
			t.Errorf("queue %d channel still delivering after Close", q)
		}
	}
}

func TestAFPacketOpenMissingIface(t *testing.T) {
	if os.Geteuid() != 0 {
		t.Skip("live capture test needs root")
	}
	be, err := NewAFPacket(AFPacketConfig{Iface: "scapve-none", Queues: 1})
	if err != nil {
		t.Fatalf("NewAFPacket: %v", err)
	}
	if err := be.Open(); err == nil {
		t.Fatal("Open succeeded on a missing interface")
	}
	if err := be.Close(); err != nil {
		t.Fatalf("Close after failed Open: %v", err)
	}
}
