package mem

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// drainAll allocates until the arena reports exhaustion, returning every
// handle it got. Used to count how many blocks are reachable.
func drainAll(t *testing.T, m *Manager, core int) []Handle {
	t.Helper()
	var hs []Handle
	for {
		h, store := m.AllocBlock(core)
		if h == NoBlock {
			return hs
		}
		if len(store) != m.BlockSize() {
			t.Fatalf("block %d storage %d bytes, want %d", h, len(store), m.BlockSize())
		}
		hs = append(hs, h)
		if len(hs) > m.Blocks() {
			t.Fatalf("allocated %d blocks from an arena of %d", len(hs), m.Blocks())
		}
	}
}

// drainAllCores empties every core's free-list (a block parked in one
// core's cache is deliberately not reachable from another), verifying the
// arena's total block count survives whatever churn preceded the call.
func drainAllCores(t *testing.T, m *Manager, cores int) []Handle {
	t.Helper()
	var hs []Handle
	for core := 0; core < cores; core++ {
		hs = append(hs, drainAll(t, m, core)...)
	}
	return hs
}

// TestArenaNoDoubleHandout drives random alloc/free sequences across cores
// (testing/quick supplies the scripts) and asserts the allocator never
// hands out a block that is still outstanding.
func TestArenaNoDoubleHandout(t *testing.T) {
	const cores = 3
	f := func(script []uint16) bool {
		m := New(Config{Size: 32 * 1024, BlockSize: 1024, Cores: cores})
		out := make(map[Handle]int) // handle -> owning core
		var order []Handle          // insertion order, for deterministic frees
		for _, op := range script {
			core := int(op) % cores
			if op%3 != 0 && len(order) > 0 {
				// Free (or worker-return) the oldest outstanding block.
				h := order[0]
				order = order[1:]
				if op%2 == 0 {
					m.FreeBlock(out[h], h)
				} else {
					m.ReturnBlock(out[h], h)
				}
				delete(out, h)
				continue
			}
			h, _ := m.AllocBlock(core)
			if h == NoBlock {
				continue // exhaustion is legal; double hand-out is not
			}
			if _, dup := out[h]; dup {
				t.Logf("block %d handed out twice", h)
				return false
			}
			out[h] = core
			order = append(order, h)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestArenaRefillSpillConservation checks that arbitrary alloc/free churn —
// including the per-core cache refill and spill paths against the global
// pool — neither creates nor loses blocks: after everything is freed, the
// arena hands out exactly its full block count again.
func TestArenaRefillSpillConservation(t *testing.T) {
	const cores = 2
	f := func(script []uint8, seed int64) bool {
		m := New(Config{Size: 64 * 1024, BlockSize: 1024, Cores: cores})
		total := m.Blocks()
		rng := rand.New(rand.NewSource(seed))
		type owned struct {
			h    Handle
			core int
		}
		var out []owned
		for _, op := range script {
			core := int(op) % cores
			switch {
			case op%4 == 0 && len(out) > 0:
				i := rng.Intn(len(out))
				m.FreeBlock(out[i].core, out[i].h)
				out[i] = out[len(out)-1]
				out = out[:len(out)-1]
			case op%4 == 1 && len(out) > 0:
				i := rng.Intn(len(out))
				m.ReturnBlock(out[i].core, out[i].h)
				out[i] = out[len(out)-1]
				out = out[:len(out)-1]
			default:
				if h, _ := m.AllocBlock(core); h != NoBlock {
					out = append(out, owned{h, core})
				}
			}
		}
		if got := int(m.BlocksInUse()); got != len(out) {
			t.Logf("BlocksInUse %d, outstanding %d", got, len(out))
			return false
		}
		for _, o := range out {
			m.FreeBlock(o.core, o.h)
		}
		if got := m.BlocksInUse(); got != 0 {
			t.Logf("BlocksInUse %d after freeing everything", got)
			return false
		}
		hs := drainAllCores(t, m, cores)
		if len(hs) != total {
			t.Logf("recovered %d blocks, want %d", len(hs), total)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestArenaExhaustion pins the exhaustion contract: a fully drained arena
// answers NoBlock (and a nil store), and freeing any block makes the next
// allocation succeed again.
func TestArenaExhaustion(t *testing.T) {
	m := New(Config{Size: 8 * 1024, BlockSize: 1024, Cores: 1})
	hs := drainAll(t, m, 0)
	if len(hs) != m.Blocks() {
		t.Fatalf("drained %d blocks, arena has %d", len(hs), m.Blocks())
	}
	if h, store := m.AllocBlock(0); h != NoBlock || store != nil {
		t.Fatalf("exhausted arena returned handle %d store %d bytes", h, len(store))
	}
	m.FreeBlock(0, hs[0])
	if h, _ := m.AllocBlock(0); h == NoBlock {
		t.Fatal("allocation still failing after a free")
	}
}

// TestArenaOutOfRangeCore exercises the shared (cache-less) path used by
// callers outside the configured core range: it must be safe and conserve
// blocks like any other.
func TestArenaOutOfRangeCore(t *testing.T) {
	m := New(Config{Size: 8 * 1024, BlockSize: 1024, Cores: 1})
	h, store := m.AllocBlock(99)
	if h == NoBlock || len(store) != 1024 {
		t.Fatalf("out-of-range core alloc: handle %d store %d", h, len(store))
	}
	m.FreeBlock(99, h)
	if got := m.BlocksInUse(); got != 0 {
		t.Fatalf("BlocksInUse %d after free", got)
	}
}

// TestArenaConcurrentLifecycle reproduces the capture topology under -race:
// per core, one "engine" goroutine allocating and freeing (the single
// writer of the core's cache) and one "worker" goroutine returning consumed
// blocks through the SPSC ring, with a per-block owner bit catching any
// double hand-out across the whole arena.
func TestArenaConcurrentLifecycle(t *testing.T) {
	const cores = 4
	const opsPer = 20000
	m := New(Config{Size: 1 << 20, BlockSize: 4096, Cores: cores})
	owner := make([]int32, m.Blocks()+1) // 1-indexed by handle

	var wg sync.WaitGroup
	for core := 0; core < cores; core++ {
		ch := make(chan Handle, 256)
		wg.Add(2)
		// Engine: allocates, hands some blocks to the worker, frees the rest.
		go func(core int, ch chan<- Handle) {
			defer wg.Done()
			defer close(ch)
			rng := rand.New(rand.NewSource(int64(core)))
			var held []Handle
			for i := 0; i < opsPer; i++ {
				h, _ := m.AllocBlock(core)
				if h != NoBlock {
					if owner[h] != 0 {
						// Racy read is fine: any non-zero observation means
						// two goroutines held the block at once.
						t.Errorf("core %d: block %d already owned", core, h)
						return
					}
					owner[h] = int32(core + 1)
					held = append(held, h)
				}
				if len(held) > 0 && rng.Intn(2) == 0 {
					h := held[len(held)-1]
					held = held[:len(held)-1]
					owner[h] = 0
					if rng.Intn(2) == 0 {
						m.FreeBlock(core, h)
					} else {
						ch <- h
					}
				}
			}
			for _, h := range held {
				owner[h] = 0
				m.FreeBlock(core, h)
			}
		}(core, ch)
		// Worker: batches consumed blocks back to the core's return ring.
		go func(core int, ch <-chan Handle) {
			defer wg.Done()
			var batch []Handle
			for h := range ch {
				batch = append(batch, h)
				if len(batch) == 16 {
					m.ReturnBlocks(core, batch)
					batch = batch[:0]
				}
			}
			m.ReturnBlocks(core, batch)
		}(core, ch)
	}
	wg.Wait()
	if got := m.BlocksInUse(); got != 0 {
		t.Fatalf("BlocksInUse %d after all goroutines released everything", got)
	}
	if hs := drainAllCores(t, m, cores); len(hs) != m.Blocks() {
		t.Fatalf("recovered %d blocks, want %d", len(hs), m.Blocks())
	}
}
