package reassembly

// Flags records reassembly anomalies for a stream direction. Scap surfaces
// these through the stream descriptor's error field so applications can
// tell pristine chunks from best-effort ones (paper §2.3, §3.2).
type Flags uint8

const (
	// FlagHole is set when fast mode wrote through a sequence hole.
	FlagHole Flags = 1 << iota
	// FlagBufferOverflow is set when the out-of-order buffer budget was
	// exceeded and segments had to be dropped (strict) or a hole skipped
	// (fast).
	FlagBufferOverflow
	// FlagStrictDrop is set when strict mode discarded undeliverable
	// buffered data at flush time.
	FlagStrictDrop
	// FlagBadHandshake is set by the engine when data arrives on a TCP
	// stream whose three-way handshake was never observed.
	FlagBadHandshake
	// FlagBadSeq is set when a segment was unreasonably far from the
	// expected sequence window.
	FlagBadSeq
)

// Stats counts assembler activity for one stream direction.
type Stats struct {
	DeliveredBytes  uint64
	DuplicateBytes  uint64 // bytes at or below the delivery point, re-seen
	OverlapOldWins  uint64 // overlapped bytes resolved in favor of old data
	OverlapNewWins  uint64 // overlapped bytes resolved in favor of new data
	OutOfOrderSegs  uint64 // segments that had to be buffered
	HolesSkipped    uint64 // fast-mode write-throughs
	DroppedSegments uint64 // strict-mode buffer-overflow drops
}

// Config parametrizes an Assembler.
type Config struct {
	Mode   Mode
	Policy Policy
	// MaxBufferedBytes / MaxBufferedSegments bound the out-of-order
	// buffer. Zero selects the defaults (256 KiB / 128 segments).
	MaxBufferedBytes    int
	MaxBufferedSegments int
}

// Default out-of-order buffer budget.
const (
	DefaultMaxBufferedBytes    = 256 << 10
	DefaultMaxBufferedSegments = 128
)

// Emit receives reassembled in-order byte runs. holeBefore reports that the
// bytes follow a skipped sequence hole (fast mode only). The slice is valid
// only for the duration of the call.
type Emit func(data []byte, holeBefore bool)

// seg is one buffered out-of-order run in unwrapped sequence space.
// Invariant: the buffer is sorted by start and strictly non-overlapping,
// and every segment begins after the delivery point.
type seg struct {
	start int64
	data  []byte
}

func (s seg) end() int64 { return s.start + int64(len(s.data)) }

// Assembler reassembles one direction of one TCP connection. It is not
// safe for concurrent use; in Scap each stream belongs to exactly one core.
type Assembler struct {
	cfg   Config
	next  int64 // unwrapped seq of the next byte to deliver; -1 = uninitialized
	segs  []seg
	bufn  int // buffered bytes
	flags Flags
	stats Stats
}

// New creates an assembler.
func New(cfg Config) *Assembler {
	if cfg.MaxBufferedBytes <= 0 {
		cfg.MaxBufferedBytes = DefaultMaxBufferedBytes
	}
	if cfg.MaxBufferedSegments <= 0 {
		cfg.MaxBufferedSegments = DefaultMaxBufferedSegments
	}
	return &Assembler{cfg: cfg, next: -1}
}

// Init anchors the stream at a SYN with the given initial sequence number:
// the first data byte is isn+1.
func (a *Assembler) Init(isn uint32) {
	if a.next < 0 {
		a.next = int64(isn) + 1
	}
}

// Initialized reports whether the delivery point has been anchored.
func (a *Assembler) Initialized() bool { return a.next >= 0 }

// Flags returns the accumulated anomaly flags.
func (a *Assembler) Flags() Flags { return a.flags }

// Stats returns a snapshot of the counters.
func (a *Assembler) Stats() Stats { return a.stats }

// Overlaps returns the running overlapped-byte totals (old-data-wins,
// new-data-wins). Two loads — cheap enough for a per-segment transition
// check on the hot path, unlike copying the whole Stats value.
//
//scap:hotpath
func (a *Assembler) Overlaps() (oldWins, newWins uint64) {
	return a.stats.OverlapOldWins, a.stats.OverlapNewWins
}

// PendingBytes returns the currently buffered out-of-order byte count.
func (a *Assembler) PendingBytes() int { return a.bufn }

// NextSeq returns the 32-bit sequence number of the next byte to deliver.
func (a *Assembler) NextSeq() uint32 { return uint32(a.next) }

// unwrap maps a 32-bit sequence number to the unwrapped 64-bit value
// closest to the delivery point, handling sequence wraparound.
func (a *Assembler) unwrap(seq uint32) int64 {
	return a.next + int64(int32(seq-uint32(a.next)))
}

// Segment processes one TCP segment's payload. Any data that becomes
// deliverable is passed to emit in order. Zero-length segments are ignored.
// The in-order fast path is allocation-free; buffering an out-of-order run
// copies it in insert, which is deliberately off the hot path.
//
//scap:hotpath
func (a *Assembler) Segment(seq uint32, data []byte, emit Emit) {
	if len(data) == 0 {
		return
	}
	if a.next < 0 {
		// No SYN seen (mid-stream capture): anchor at this segment.
		a.next = int64(seq)
	}
	start := a.unwrap(seq)
	end := start + int64(len(data))

	// Trim the already-delivered prefix: delivered bytes are immutable,
	// every policy keeps them.
	if end <= a.next {
		a.stats.DuplicateBytes += uint64(len(data))
		return
	}
	if start < a.next {
		a.stats.DuplicateBytes += uint64(a.next - start)
		data = data[a.next-start:]
		start = a.next
	}

	// Fast path: in-order segment with an empty buffer delivers without
	// copying — the common case that makes kernel reassembly cheap.
	if start == a.next && len(a.segs) == 0 {
		a.stats.DeliveredBytes += uint64(len(data))
		a.next = end
		emit(data, false)
		return
	}

	if start > a.next {
		a.stats.OutOfOrderSegs++
	}
	a.insert(start, data)
	a.drain(emit, false)
	a.enforceBudget(emit)
}

// insert integrates [start, start+len(data)) into the buffer, resolving
// overlaps against existing segments with the configured policy. The new
// bytes are copied; buffered segments own their storage.
func (a *Assembler) insert(start int64, data []byte) {
	end := start + int64(len(data))
	// pieces tracks the sub-ranges of the new segment that survive
	// old-wins overlaps.
	type piece struct{ s, e int64 }
	pieces := []piece{{start, end}}
	// kept must not alias a.segs: an old-splits-into-two case would
	// otherwise overwrite segments not yet visited.
	kept := make([]seg, 0, len(a.segs)+2)
	for _, old := range a.segs {
		if old.end() <= start || old.start >= end {
			kept = append(kept, old)
			continue
		}
		// Overlap. Policy decides the overlapped byte range.
		if a.cfg.Policy.newWins(start, end, old.start, old.end()) {
			lo := max64(start, old.start)
			hi := min64(end, old.end())
			a.stats.OverlapNewWins += uint64(hi - lo)
			// Keep the old parts outside the new range.
			if old.start < start {
				left := seg{start: old.start, data: old.data[:start-old.start]}
				kept = append(kept, left)
			}
			if old.end() > end {
				right := seg{start: end, data: old.data[end-old.start:]}
				kept = append(kept, right)
			}
			a.bufn -= int(hi - lo)
		} else {
			lo := max64(start, old.start)
			hi := min64(end, old.end())
			a.stats.OverlapOldWins += uint64(hi - lo)
			kept = append(kept, old)
			// Subtract [old.start, old.end) from every pending new piece.
			var next []piece
			for _, p := range pieces {
				if p.e <= old.start || p.s >= old.end() {
					next = append(next, p)
					continue
				}
				if p.s < old.start {
					next = append(next, piece{p.s, old.start})
				}
				if p.e > old.end() {
					next = append(next, piece{old.end(), p.e})
				}
			}
			pieces = next
		}
	}
	a.segs = kept
	for _, p := range pieces {
		if p.e <= p.s {
			continue
		}
		cp := make([]byte, p.e-p.s)
		copy(cp, data[p.s-start:p.e-start])
		a.segs = append(a.segs, seg{start: p.s, data: cp})
		a.bufn += len(cp)
	}
	a.sortSegs()
}

// sortSegs restores start ordering (insertion sort: the buffer is small and
// nearly sorted).
func (a *Assembler) sortSegs() {
	for i := 1; i < len(a.segs); i++ {
		for j := i; j > 0 && a.segs[j].start < a.segs[j-1].start; j-- {
			a.segs[j], a.segs[j-1] = a.segs[j-1], a.segs[j]
		}
	}
}

// drain delivers every buffered segment that is now contiguous with the
// delivery point. holeBefore marks the first emission (used after a skip).
func (a *Assembler) drain(emit Emit, holeBefore bool) {
	for len(a.segs) > 0 && a.segs[0].start <= a.next {
		s := a.segs[0]
		a.segs = a.segs[1:]
		data := s.data
		if s.start < a.next { // partially delivered by a racing overlap
			if s.end() <= a.next {
				a.bufn -= len(data)
				continue
			}
			data = data[a.next-s.start:]
		}
		a.bufn -= len(s.data)
		a.stats.DeliveredBytes += uint64(len(data))
		a.next = s.start + int64(len(s.data))
		emit(data, holeBefore)
		holeBefore = false
	}
}

// enforceBudget applies the buffer limits after an insert.
func (a *Assembler) enforceBudget(emit Emit) {
	over := func() bool {
		return a.bufn > a.cfg.MaxBufferedBytes || len(a.segs) > a.cfg.MaxBufferedSegments
	}
	if !over() {
		return
	}
	a.flags |= FlagBufferOverflow
	if a.cfg.Mode == ModeFast {
		// Skip the hole: jump the delivery point to the first buffered
		// byte and write through, flagging the chunk.
		for over() && len(a.segs) > 0 {
			a.stats.HolesSkipped++
			a.flags |= FlagHole
			a.next = a.segs[0].start
			a.drain(emit, true)
		}
		return
	}
	// Strict mode never skips: shed the highest (farthest) segments.
	for over() && len(a.segs) > 0 {
		last := a.segs[len(a.segs)-1]
		a.segs = a.segs[:len(a.segs)-1]
		a.bufn -= len(last.data)
		a.stats.DroppedSegments++
	}
}

// Flush ends the stream direction (FIN, RST, or inactivity timeout). Fast
// mode delivers everything still buffered, marking holes; strict mode
// discards it with FlagStrictDrop, since delivering around a hole would
// violate its guarantees.
func (a *Assembler) Flush(emit Emit) {
	if len(a.segs) == 0 {
		return
	}
	if a.cfg.Mode == ModeStrict {
		for _, s := range a.segs {
			a.stats.DroppedSegments++
			a.bufn -= len(s.data)
		}
		a.segs = nil
		a.flags |= FlagStrictDrop
		return
	}
	for len(a.segs) > 0 {
		a.flags |= FlagHole
		a.stats.HolesSkipped++
		a.next = a.segs[0].start
		a.drain(emit, true)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
