// Command scaplint runs the repo's custom static analyzers over the
// module. The per-package suite checks racy snapshot getters
// (statssnapshot), allocation, locking, and blocking on the
// //scap:hotpath per-packet path (hotpathalloc, hotpathlock), "guarded
// by mu" field access outside the mutex (lockdiscipline), metrics
// registration discipline (metricreg), and doc comments on the public
// API (exporteddoc). The whole-program suite builds a module-wide call
// graph and verifies concurrency contracts: goroutine ownership of
// single-writer state and SPSC ring ends (ownership), mixed
// atomic/plain field access and 64-bit atomic alignment (atomicfield),
// and blocking operations reachable from the hot path (hotpathblock).
//
// Usage:
//
//	go run ./cmd/scaplint ./...          # whole module (the default)
//	go run ./cmd/scaplint ./internal/core ./internal/event
//	go run ./cmd/scaplint -list          # print the analyzer suite
//	go run ./cmd/scaplint -json ./...    # findings as a JSON array
//	go run ./cmd/scaplint -unusedignores ./...  # also flag stale/bare ignores
//
// scaplint exits 1 when it reports findings and 2 on usage or load errors.
// Suppress an individual finding with a justification:
//
//	x = append(x, y) //scaplint:ignore hotpathalloc appends into preallocated capacity
//
// With -unusedignores, a //scaplint:ignore that no longer suppresses
// anything, names an unknown analyzer, is missing its reason, or is bare
// (no analyzer name) becomes a finding itself, so suppressions cannot
// silently outlive the code they excused.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"scap/internal/analysis"
)

// jsonFinding is the -json wire shape of one diagnostic, one object per
// finding, matching the text output's file:line:col: analyzer: message.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	verbose := flag.Bool("v", false, "print progress and type-load warnings")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	unusedIgnores := flag.Bool("unusedignores", false, "flag stale, bare, unknown-analyzer, and unjustified //scaplint:ignore directives")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Packages(patterns...)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		for _, p := range pkgs {
			fmt.Fprintf(os.Stderr, "scaplint: loaded %s (%d files, %d type warnings)\n",
				p.Path, len(p.Files), len(p.TypeErrors))
			for _, te := range p.TypeErrors {
				fmt.Fprintf(os.Stderr, "scaplint: \ttype warning: %v\n", te)
			}
		}
	}
	suite := analysis.All()
	res := analysis.Run(pkgs, suite)
	diags := res.Diags
	if *unusedIgnores {
		diags = append(diags, analysis.UnusedIgnoreDiagnostics(res, suite)...)
	}
	if *jsonOut {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "scaplint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scaplint:", err)
	os.Exit(2)
}
