package core

import (
	"scap/internal/event"
	"scap/internal/flowtab"
)

// streamExt is the engine-private extension record hung off
// flowtab.Stream.Chunk: the current chunk under construction plus the
// engine bookkeeping the generic flow table does not know about.
type streamExt struct {
	chunk chunkState
	// chunksDelivered counts data events for this stream (sd->chunks).
	chunksDelivered uint64
	// filterTimeout is the current FDIR filter lifetime; it doubles on
	// every re-install so long-lived flows are evicted from the NIC only a
	// logarithmic number of times (paper §5.5).
	filterTimeout int64
	// ignored streams failed the socket filter: tracked for cheap
	// discarding but generating no events.
	ignored bool
	// discard set by scap_discard_stream.
	discard bool
	// finalDelivered guards against duplicate final data events.
	finalDelivered bool
}

// chunkState is one in-progress chunk of reassembled stream data.
type chunkState struct {
	buf        []byte // fill = len(buf); size bounds the chunk
	size       int    // the chunk's byte bound (the stream's chunk size)
	overlapLen int    // prefix carried from the previous chunk (not re-accounted)
	extraAcct  int    // accounted bytes adopted back via KeepChunk
	holeBefore bool
	firstTS    int64 // timestamp of the first byte (flush timeout anchor)
	pkts       []event.PacketRecord
}

// fill returns the number of bytes in the chunk.
func (c *chunkState) fill() int { return len(c.buf) }

// accounted returns how many of the chunk's bytes are charged to the
// memory budget.
func (c *chunkState) accounted() int { return len(c.buf) - c.overlapLen + c.extraAcct }

// room returns how many bytes the chunk may still take.
func (c *chunkState) room() int { return c.size - len(c.buf) }

// ext returns (allocating if needed) the engine extension of s.
func ext(s *flowtab.Stream) *streamExt {
	if e, ok := s.Chunk.(*streamExt); ok {
		return e
	}
	e := &streamExt{}
	s.Chunk = e
	return e
}

// chunkInitCap caps a chunk buffer's initial allocation. Most streams in a
// realistic mix never fill a whole chunk, so buffers start small and grow
// geometrically toward the chunk bound on demand instead of committing the
// full chunk size per stream up front (that preallocation dominated the
// allocation profile — and hence GC scan time — on chunk-sparse workloads).
const chunkInitCap = 2048

// newChunkBuf starts a chunk buffer bounded by the stream's chunk size,
// seeding it with the overlap tail of the previous chunk when configured.
func (e *Engine) newChunkBuf(s *flowtab.Stream, prev []byte, ts int64) chunkState {
	size := s.ChunkSize
	if size <= 0 {
		size = e.cfg.ChunkSize
	}
	initCap := size
	if initCap > chunkInitCap {
		initCap = chunkInitCap
	}
	overlap := s.OverlapSize
	c := chunkState{firstTS: ts, size: size}
	if overlap > 0 && len(prev) > 0 {
		if overlap > len(prev) {
			overlap = len(prev)
		}
		if overlap >= size {
			overlap = size - 1
		}
		if initCap < overlap {
			initCap = overlap
		}
		c.buf = make([]byte, overlap, initCap)
		copy(c.buf, prev[len(prev)-overlap:])
		c.overlapLen = overlap
	} else {
		c.buf = make([]byte, 0, initCap)
	}
	return c
}
