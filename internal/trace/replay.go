package trace

// Source yields frames in emission order; nil means exhausted.
// *Generator implements Source.
//
// Ownership: Next relinquishes the returned slice — the consumer (the
// capture path) may hold it without copying until the frame has been
// processed. The pipeline never mutates frame bytes, so a source may hand
// out the same read-only backing repeatedly (SliceSource does); it must
// not write into a slice after returning it.
type Source interface {
	Next() []byte
}

// Replay assigns virtual timestamps to src's frames for a constant target
// rate in bits per second, invoking fn for each frame until src is
// exhausted or fn returns false. It returns the number of frames emitted
// and the final virtual time.
//
// The timestamp model is the paper's replay setup: a sender pushing the
// trace at a fixed rate, so inter-arrival time is frame bits divided by
// the link rate (plus Ethernet framing overhead: preamble, IFG, FCS).
func Replay(src Source, bitsPerSec float64, fn func(frame []byte, ts int64) bool) (frames uint64, end int64) {
	// 24 bytes of per-frame overhead on the wire: 7 preamble + 1 SFD +
	// 4 FCS + 12 inter-frame gap.
	const frameOverhead = 24
	var ts float64
	for {
		frame := src.Next()
		if frame == nil {
			break
		}
		wireBits := float64(len(frame)+frameOverhead) * 8
		ts += wireBits / bitsPerSec * 1e9
		frames++
		if !fn(frame, int64(ts)) {
			break
		}
	}
	return frames, int64(ts)
}

// SliceSource replays a pre-built frame list.
type SliceSource struct {
	Frames [][]byte
	i      int
}

// Next implements Source.
func (s *SliceSource) Next() []byte {
	if s.i >= len(s.Frames) {
		return nil
	}
	f := s.Frames[s.i]
	s.i++
	return f
}

// Reset rewinds the source for another pass.
func (s *SliceSource) Reset() { s.i = 0 }

// Collect materializes up to max frames from a source (all if max <= 0).
func Collect(src Source, max int) [][]byte {
	var out [][]byte
	for {
		f := src.Next()
		if f == nil {
			break
		}
		out = append(out, f)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}
