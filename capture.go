package scap

import (
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"
	"sync"
	"time"

	"scap/internal/core"
	"scap/internal/event"
	"scap/internal/nic"
	"scap/internal/trace"
)

// captureState owns the running goroutines of a started socket: one kernel
// goroutine per NIC queue and the configured number of worker goroutines —
// the user-space equivalent of the paper's per-core kernel thread plus
// worker thread pairs.
//
// Concurrency model: each engine is owned by its kernel goroutine (frames
// reach it only through its frameCh); workers touch streams only via the
// per-engine ctrl queue; injectors serialize on injectMu; everything else
// a foreign goroutine may read (engine counters, NIC stats, memory
// accounting) is protected at its source.
type captureState struct {
	h *Handle

	mu sync.Mutex
	// frameCh hands frame batches from the NIC to the kernel goroutines.
	// It is written once in start, before any goroutine runs, and is
	// read-only afterwards (the channels themselves provide the
	// synchronization).
	frameCh []chan []nic.Frame
	// stopped is guarded by mu, making stop idempotent.
	stopped  bool
	kernelWG sync.WaitGroup
	workerWG sync.WaitGroup

	injectMu sync.Mutex
	// lastTS is guarded by injectMu: concurrent injectors and the timer
	// tick agree on a strictly increasing virtual clock through it.
	lastTS    int64
	timerStop chan struct{}
}

// injectBatchSize is how many frames the replay paths accumulate before
// handing them to the kernel goroutines in one batch.
const injectBatchSize = 64

func newCaptureState(h *Handle) *captureState {
	return &captureState{h: h, timerStop: make(chan struct{})}
}

func (c *captureState) start() {
	h := c.h
	c.frameCh = make([]chan []nic.Frame, h.cfg.Queues)
	for q := range c.frameCh {
		c.frameCh[q] = make(chan []nic.Frame, 256)
	}
	// Kernel goroutines: one per queue, each owning its engine.
	for q := 0; q < h.cfg.Queues; q++ {
		c.kernelWG.Add(1)
		go c.kernelLoop(q)
	}
	// Worker goroutines.
	for w := 0; w < h.workers; w++ {
		c.workerWG.Add(1)
		go c.workerLoop(w)
	}
}

// kernelLoop is one core's softirq-equivalent: it pulls frame batches for
// its queue and drives the engine, running timer work between batches.
func (c *captureState) kernelLoop(q int) {
	defer c.kernelWG.Done()
	eng := c.h.engines[q]
	ticker := time.NewTicker(50 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case batch, ok := <-c.frameCh[q]:
			if !ok {
				return
			}
			eng.HandleFrames(batch)
		case <-ticker.C:
			eng.CheckTimers(c.currentTS())
		}
	}
}

// workerBatch is how many events a worker drains from a ring per wakeup.
const workerBatch = 128

// workerState is one worker's scratch: per-stream bookkeeping, the reused
// Stream view handed to callbacks, and the batched memory-release
// accumulator. The worker goroutine owns it exclusively.
type workerState struct {
	procTime map[uint64]time.Duration
	kept     map[uint64][]byte
	view     Stream
	// pendingRelease accumulates delivered chunks' Accounted bytes; they
	// are returned to the memory manager in one Release per drained batch
	// (and before parking), not one per event.
	pendingRelease int
}

func (ws *workerState) forget(id uint64) {
	if len(ws.procTime) > 0 {
		delete(ws.procTime, id)
	}
	if len(ws.kept) > 0 {
		delete(ws.kept, id)
	}
}

// flushReleases returns the accumulated chunk bytes to the memory budget.
func (c *captureState) flushReleases(ws *workerState) {
	if ws.pendingRelease > 0 {
		c.h.mm.Release(ws.pendingRelease)
		ws.pendingRelease = 0
	}
}

// workerLoop drains the worker's event queues a batch at a time,
// dispatching callbacks (the Scap stub's event-dispatch loop, §5.8).
func (c *captureState) workerLoop(w int) {
	defer c.workerWG.Done()
	h := c.h
	ws := &workerState{
		procTime: make(map[uint64]time.Duration),
		kept:     make(map[uint64][]byte),
	}
	// The final flush covers events dispatched via Wait after the last
	// batch, so accounting reaches zero once the queues are drained.
	defer c.flushReleases(ws)
	var qs []*event.Queue
	var engs []*core.Engine
	for q := w; q < len(h.queues); q += h.workers {
		qs = append(qs, h.queues[q])
		engs = append(engs, h.engines[q])
	}
	if len(qs) == 0 {
		return
	}
	batch := make([]event.Event, workerBatch)
	live := len(qs)
	closed := make([]bool, len(qs))
	for live > 0 {
		progressed := false
		for i, q := range qs {
			if closed[i] {
				continue
			}
			n := q.PopBatch(batch)
			if n == 0 {
				continue
			}
			progressed = true
			h.workerBatchH.Observe(w, uint64(n))
			for j := range batch[:n] {
				c.dispatch(engs[i], &batch[j], ws)
			}
			// Drop chunk references so delivered buffers are collectable,
			// then return their memory in one release.
			clear(batch[:n])
			c.flushReleases(ws)
		}
		if !progressed {
			// Block on the first open queue; others are polled again
			// after it yields (single-queue-per-worker is the common
			// configuration, where Wait alone drives the loop). The
			// queues are empty here, so flush the accounting before
			// parking.
			i := firstOpen(closed)
			if i < 0 {
				return
			}
			c.flushReleases(ws)
			ev, ok := qs[i].Wait()
			if !ok {
				closed[i] = true
				live--
				continue
			}
			c.dispatch(engs[i], &ev, ws)
		}
	}
}

func firstOpen(closed []bool) int {
	for i, c := range closed {
		if !c {
			return i
		}
	}
	return -1
}

// dispatch runs one event's callback with a Stream view. The view struct
// is reused across events (callbacks must not retain it past their
// return), and per-stream map work is skipped entirely when no callback is
// registered for the event. Kept chunks are merged in the stub:
// scap_keep_stream_chunk promises that the next invocation receives the
// previous and the new chunk together, which the worker guarantees locally
// since it sees each stream's events in order.
func (c *captureState) dispatch(eng *core.Engine, ev *event.Event, ws *workerState) {
	h := c.h
	var fn Handler
	var kind appEventKind
	switch ev.Type {
	case event.Creation:
		fn, kind = h.onCreate, appEvCreation
	case event.Data:
		fn, kind = h.onData, appEvData
	case event.Termination:
		fn, kind = h.onClose, appEvTermination
	}
	if len(h.apps) > 0 || fn != nil {
		sd := &ws.view
		*sd = Stream{
			info:    ev.Info,
			handle:  h,
			engine:  eng,
			raw:     ev.Stream,
			procCum: ws.procTime[ev.Info.ID],
		}
		if ev.Type == event.Data {
			sd.Data = ev.Data
			if len(ws.kept) > 0 {
				if prev, ok := ws.kept[ev.Info.ID]; ok {
					sd.Data = append(prev, ev.Data...)
					delete(ws.kept, ev.Info.ID)
				}
			}
			sd.HoleBefore = ev.HoleBefore
			sd.Last = ev.Last
			sd.pkts = ev.Pkts
		}
		start := time.Now()
		if len(h.apps) > 0 {
			h.dispatchApps(kind, sd)
		} else {
			fn(sd)
		}
		ws.procTime[ev.Info.ID] = sd.procCum + time.Since(start)
		if ev.Type == event.Data && sd.keep && !ev.Last {
			// Stash a copy for the next delivery; the chunk's budget
			// reservation is released normally — the kept copy is the
			// application's memory, not stream memory.
			cp := make([]byte, len(sd.Data))
			copy(cp, sd.Data)
			ws.kept[ev.Info.ID] = cp
		}
	}
	switch ev.Type {
	case event.Data:
		if ev.Accounted > 0 {
			ws.pendingRelease += ev.Accounted
		}
		if ev.Last {
			ws.forget(ev.Info.ID)
		}
	case event.Termination:
		ws.forget(ev.Info.ID)
	}
}

func (c *captureState) currentTS() int64 {
	c.injectMu.Lock()
	defer c.injectMu.Unlock()
	return c.lastTS
}

// inject routes one frame through the NIC to its kernel goroutine. The
// injector owns data: it goes to the NIC ring and the engine without
// copying.
//
//scap:hotpath
func (c *captureState) inject(data []byte, ts int64) {
	c.injectMu.Lock() //scaplint:ignore hotpathlock audited: virtual-clock serialization point shared by concurrent injectors; two plain stores under an uncontended mutex
	if ts <= c.lastTS {
		ts = c.lastTS + 1
	}
	c.lastTS = ts
	c.injectMu.Unlock()
	q := c.h.nicDev.Receive(data, ts)
	if q < 0 {
		return
	}
	f, ok := c.h.nicDev.Poll(q)
	if !ok {
		return
	}
	c.frameCh[q] <- []nic.Frame{f} //scaplint:ignore hotpathalloc single-frame fallback; the replay paths batch through injectBatch instead
}

// injectBatch routes a burst of frames: the virtual-clock monotonicity
// fix-up runs once under injectMu for the whole burst (rewriting
// timestamps in place), then frames fan out through the NIC into one
// per-queue batch each, delivered with a single channel send per queue.
func (c *captureState) injectBatch(frames []RawFrame) {
	if len(frames) == 0 {
		return
	}
	c.injectMu.Lock()
	last := c.lastTS
	for i := range frames {
		if frames[i].TS <= last {
			frames[i].TS = last + 1
		}
		last = frames[i].TS
	}
	c.lastTS = last
	c.injectMu.Unlock()
	batches := make([][]nic.Frame, len(c.frameCh))
	for i := range frames {
		q := c.h.nicDev.Receive(frames[i].Data, frames[i].TS)
		if q < 0 {
			continue
		}
		f, ok := c.h.nicDev.Poll(q)
		if !ok {
			continue
		}
		batches[q] = append(batches[q], f)
	}
	for q, b := range batches {
		if len(b) > 0 {
			c.frameCh[q] <- b
		}
	}
}

// stop flushes everything and joins the goroutines.
func (c *captureState) stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	c.mu.Unlock()

	for _, ch := range c.frameCh {
		close(ch)
	}
	c.kernelWG.Wait()
	// Final flush: expire and terminate every stream, then close queues
	// so workers drain and exit.
	for _, eng := range c.h.engines {
		eng.Shutdown()
	}
	for _, q := range c.h.queues {
		q.Close()
	}
	c.workerWG.Wait()
}

// --- Frame input paths ---

// RawFrame is one frame for InjectBatch: raw Ethernet bytes plus a virtual
// timestamp in nanoseconds.
type RawFrame struct {
	Data []byte
	TS   int64
}

// InjectFrame feeds one raw Ethernet frame with a virtual timestamp
// (nanoseconds, strictly increasing per socket; non-increasing timestamps
// are bumped). Ownership of data transfers to the socket: the capture path
// holds the slice without copying until the frame has been processed, so
// the caller must not mutate it afterwards (handing out the same read-only
// backing repeatedly is fine). This is the lowest-level input path;
// ReplayPcap, ReplaySource, and InjectBatch are built on the same plumbing.
func (h *Handle) InjectFrame(data []byte, ts int64) error {
	if !h.started {
		return ErrNotStarted
	}
	h.capture.inject(data, ts)
	return nil
}

// InjectBatch feeds a burst of frames in one call: the virtual clock is
// fixed up under one lock acquisition (timestamps may be rewritten in
// place to stay strictly increasing) and each kernel goroutine receives
// its queue's frames as a single batch. As with InjectFrame, ownership of
// every Data slice transfers to the socket.
func (h *Handle) InjectBatch(frames []RawFrame) error {
	if !h.started {
		return ErrNotStarted
	}
	h.capture.injectBatch(frames)
	return nil
}

// ReplaySource feeds every frame from a workload source, pacing virtual
// timestamps at the given rate in bits/s (wall-clock runs as fast as the
// pipeline allows, like the paper's trace replay). It blocks until the
// source is exhausted. Frames are handed to the socket in batches without
// copying — Next relinquishes each returned slice per the trace.Source
// ownership contract.
func (h *Handle) ReplaySource(src trace.Source, bitsPerSec float64) error {
	if !h.started {
		return ErrNotStarted
	}
	batch := make([]RawFrame, 0, injectBatchSize)
	trace.Replay(src, bitsPerSec, func(frame []byte, ts int64) bool {
		batch = append(batch, RawFrame{Data: frame, TS: ts})
		if len(batch) == injectBatchSize {
			h.capture.injectBatch(batch)
			batch = batch[:0]
		}
		return true
	})
	h.capture.injectBatch(batch)
	return nil
}

// ReplayPcap feeds a pcap file, preserving its timestamps.
func (h *Handle) ReplayPcap(path string) error {
	if !h.started {
		return ErrNotStarted
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := trace.NewPcapReader(f)
	batch := make([]RawFrame, 0, injectBatchSize)
	for {
		frame, ts, err := r.Next()
		if errors.Is(err, io.EOF) {
			h.capture.injectBatch(batch)
			return nil
		}
		if err != nil {
			return err
		}
		batch = append(batch, RawFrame{Data: frame, TS: ts})
		if len(batch) == injectBatchSize {
			h.capture.injectBatch(batch)
			batch = batch[:0]
		}
	}
}

// parsePrefix parses a CIDR or bare address into a netip.Prefix.
func parsePrefix(s string) (netip.Prefix, error) {
	if p, err := netip.ParsePrefix(s); err == nil {
		return p, nil
	}
	a, err := netip.ParseAddr(s)
	if err != nil {
		return netip.Prefix{}, fmt.Errorf("scap: bad prefix %q: %w", s, err)
	}
	return a.Prefix(a.BitLen())
}
