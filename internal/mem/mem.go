// Package mem implements Scap's stream-memory accounting and Prioritized
// Packet Loss (paper §2.2 and §7): a fixed memory budget shared by all
// stream data, a base threshold below which nothing is dropped, and n+1
// equally spaced watermarks above it that shed low-priority traffic first,
// with an optional overload cutoff that trims streams beyond a byte
// position while memory is tight.
package mem

import (
	"fmt"
	"sync"
)

// Decision is the PPL admission result for one packet.
type Decision uint8

const (
	// Admit stores the packet's payload.
	Admit Decision = iota
	// DropPriority sheds the packet because memory is above its
	// priority's watermark.
	DropPriority
	// DropOverloadCutoff sheds the packet because memory is in the
	// pressure region and the packet lies beyond the overload cutoff in
	// its stream.
	DropOverloadCutoff
	// DropNoMemory sheds the packet because the budget is exhausted.
	DropNoMemory
)

func (d Decision) String() string {
	switch d {
	case Admit:
		return "admit"
	case DropPriority:
		return "drop-priority"
	case DropOverloadCutoff:
		return "drop-overload-cutoff"
	case DropNoMemory:
		return "drop-no-memory"
	}
	return fmt.Sprintf("decision(%d)", uint8(d))
}

// Config parametrizes a Manager.
type Config struct {
	// Size is the total stream-memory budget in bytes (the paper's
	// memory_size; 1 GB in the evaluation).
	Size int64
	// BaseThreshold is the fraction of Size below which PPL never drops.
	// Zero selects the default of 0.9.
	BaseThreshold float64
	// Priorities is the number of priority levels in use (the paper's n).
	// Zero selects 1.
	Priorities int
	// OverloadCutoff, when > 0, drops bytes beyond this position in their
	// stream while memory is inside the pressure region.
	OverloadCutoff int64
}

// Stats counts admission outcomes.
type Stats struct {
	Admitted        uint64
	DroppedPriority uint64
	DroppedCutoff   uint64
	DroppedNoMemory uint64
	HighWater       int64
}

// Manager tracks stream-memory usage and makes PPL decisions. It is a pure
// accounting object: callers reserve and release byte counts; the actual
// buffers live with the streams. One Manager is shared by every core of a
// Scap socket (the paper uses a single stream-memory buffer), so it is safe
// for concurrent use; the critical sections are a few arithmetic ops.
//
//scap:shared
type Manager struct {
	mu sync.Mutex
	// cfg is guarded by mu: SetPriorities and SetOverloadCutoff rewrite it
	// at runtime while every core consults it per packet.
	cfg Config
	// used is guarded by mu.
	used int64
	// stats is guarded by mu.
	stats Stats
}

// New creates a Manager. Invalid configuration values are normalized.
func New(cfg Config) *Manager {
	if cfg.Size <= 0 {
		cfg.Size = 1 << 30
	}
	if cfg.BaseThreshold <= 0 || cfg.BaseThreshold > 1 {
		cfg.BaseThreshold = 0.9
	}
	if cfg.Priorities <= 0 {
		cfg.Priorities = 1
	}
	return &Manager{cfg: cfg}
}

// Used returns the bytes currently reserved.
func (m *Manager) Used() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// Size returns the configured budget.
func (m *Manager) Size() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cfg.Size
}

// UsedFraction returns used/size.
func (m *Manager) UsedFraction() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return float64(m.used) / float64(m.cfg.Size)
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// SetOverloadCutoff updates the overload cutoff at runtime
// (scap_set_parameter(SCAP_OVERLOAD_CUTOFF, v)).
func (m *Manager) SetOverloadCutoff(v int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cfg.OverloadCutoff = v
}

// SetPriorities updates the number of priority levels in use.
func (m *Manager) SetPriorities(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n > 0 {
		m.cfg.Priorities = n
	}
}

// Watermark returns the memory fraction above which priority level p
// (0 = lowest) is dropped: watermark_{p+1} in the paper's numbering, where
// watermark_0 = base_threshold and watermark_n = 1.
func (m *Manager) Watermark(p int) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.watermarkLocked(p)
}

func (m *Manager) watermarkLocked(p int) float64 {
	n := m.cfg.Priorities
	if p >= n {
		p = n - 1
	}
	if p < 0 {
		p = 0
	}
	base := m.cfg.BaseThreshold
	return base + (1-base)*float64(p+1)/float64(n)
}

// Admit decides the fate of size payload bytes of a packet with the given
// priority (0 = lowest) whose first byte sits at streamPos within its
// stream. On Admit the bytes are reserved; every other decision reserves
// nothing.
func (m *Manager) Admit(priority int, streamPos int64, size int) Decision {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.decideLocked(priority, streamPos, size)
	if d == Admit {
		m.reserveLocked(size)
		m.stats.Admitted++
	}
	return d
}

// Decide is Admit without the reservation: the engine uses it to gate
// reassembly, then accounts the actual bytes stored in chunks via Reserve
// (duplicate and out-of-order bytes never hit the budget twice).
func (m *Manager) Decide(priority int, streamPos int64, size int) Decision {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.decideLocked(priority, streamPos, size)
}

func (m *Manager) decideLocked(priority int, streamPos int64, size int) Decision {
	if int64(size) > m.cfg.Size-m.used {
		m.stats.DroppedNoMemory++
		return DropNoMemory
	}
	frac := float64(m.used+int64(size)) / float64(m.cfg.Size)
	if frac > m.cfg.BaseThreshold {
		if frac > m.watermarkLocked(priority) {
			m.stats.DroppedPriority++
			return DropPriority
		}
		if m.cfg.OverloadCutoff > 0 && streamPos >= m.cfg.OverloadCutoff {
			m.stats.DroppedCutoff++
			return DropOverloadCutoff
		}
	}
	return Admit
}

// Reserve grabs size bytes unconditionally (used for bookkeeping that must
// not fail, e.g. handshake packets, which Scap always captures). It reports
// whether the budget could cover it; on false the reservation still happens
// so accounting stays truthful, and callers should shed load.
func (m *Manager) Reserve(size int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reserveLocked(size)
}

func (m *Manager) reserveLocked(size int) bool {
	m.used += int64(size)
	if m.used > m.stats.HighWater {
		m.stats.HighWater = m.used
	}
	return m.used <= m.cfg.Size
}

// Release returns size bytes to the budget (chunk consumed by the
// application, stream discarded, etc.).
func (m *Manager) Release(size int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.used -= int64(size)
	if m.used < 0 {
		panic(fmt.Sprintf("mem: released more than reserved (used=%d)", m.used))
	}
}
