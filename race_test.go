package scap

import (
	"sync"
	"testing"
	"time"
)

// TestGetStatsDuringInjection polls Handle.GetStats from separate
// goroutines while frames are being injected. Under `go test -race` this
// exercises the cross-goroutine snapshot paths — Engine.Stats (atomic
// counters), NIC.Stats (mutex), and the memory manager — and fails if any
// of them regresses to an unsynchronized read (e.g. reverting Engine.Stats
// to `return e.stats` with plain counter fields).
func TestGetStatsDuringInjection(t *testing.T) {
	h, err := Create(Config{Queues: 2, UseFDIR: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetCutoff(4 << 10); err != nil {
		t.Fatal(err)
	}
	h.DispatchData(func(sd *Stream) {})
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				st, err := h.GetStats()
				if err != nil {
					t.Errorf("GetStats: %v", err)
					return
				}
				if st.Packets > 0 && st.PayloadBytes == 0 {
					t.Error("packets counted but no payload bytes")
					return
				}
				time.Sleep(100 * time.Microsecond)
			}
		}()
	}

	gen := smallGen(7, 60)
	if err := h.ReplaySource(gen, 1e9); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := h.GetStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.FramesReceived == 0 || st.StreamsCreated == 0 {
		t.Errorf("workload did not run: frames=%d streams=%d", st.FramesReceived, st.StreamsCreated)
	}
}

// TestConcurrentInjectors drives InjectFrame from several goroutines at
// once while a poller reads statistics: the injectMu clock serialization
// and the NIC mutex are both on the line under -race.
func TestConcurrentInjectors(t *testing.T) {
	h, err := Create(Config{Queues: 2})
	if err != nil {
		t.Fatal(err)
	}
	h.DispatchData(func(sd *Stream) {})
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := h.GetStats(); err != nil {
				t.Errorf("GetStats: %v", err)
				return
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gen := smallGen(int64(100+g), 10)
			ts := int64(g) * int64(time.Millisecond)
			for {
				frame := gen.Next()
				if frame == nil {
					return
				}
				ts += int64(time.Microsecond)
				// The generator yields a fresh frame each Next (InjectFrame
				// takes ownership without copying) and the socket clock bumps
				// non-increasing timestamps, so concurrent injectors are fine.
				if err := h.InjectFrame(frame, ts); err != nil {
					t.Errorf("InjectFrame: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(done)
	pollWG.Wait()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}
