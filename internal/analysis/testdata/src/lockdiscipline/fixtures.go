// Package fixtures exercises the lockdiscipline analyzer: "guarded by mu"
// fields touched outside their mutex.
package fixtures

import "sync"

type state struct {
	mu sync.Mutex
	// count is guarded by mu.
	count int
	// pending is guarded by mu.
	pending []int

	injectMu sync.Mutex
	last     int64 // guarded by injectMu

	free int // unguarded: single-owner bookkeeping
}

// Good locks the right mutex before touching count.
func (s *state) Good() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Bad reads count without any lock.
func (s *state) Bad() int {
	return s.count // want lockdiscipline "state.Bad accesses s.count"
}

// WrongLock holds injectMu, but count is guarded by mu.
func (s *state) WrongLock() {
	s.injectMu.Lock()
	s.count++ // want lockdiscipline "guarded by mu"
	s.injectMu.Unlock()
}

// BadWrite mutates two guarded fields without locks: one finding each.
func (s *state) BadWrite(v int) {
	s.pending = append(s.pending, v) // want lockdiscipline "s.pending"
	s.last = int64(v)                // want lockdiscipline "guarded by injectMu"
}

// drainLocked follows the *Locked convention: callers hold mu.
func (s *state) drainLocked() []int {
	out := s.pending
	s.pending = nil
	return out
}

// Stamp uses the correct mutex for the injectMu-guarded field.
func (s *state) Stamp(v int64) {
	s.injectMu.Lock()
	s.last = v
	s.injectMu.Unlock()
}

// Free touches only unguarded state.
func (s *state) Free() int { return s.free }

// Suppressed documents an audited exception.
func (s *state) Suppressed() int {
	return s.count //scaplint:ignore lockdiscipline snapshot read audited for tests
}

// otherState must not inherit state's guards.
type otherState struct {
	count int
}

func (o *otherState) Bump() { o.count++ }
