package httpx

import (
	"math/rand"
	"strings"
	"testing"
)

func collect(p *Parser, chunks ...string) []Message {
	var out []Message
	for _, c := range chunks {
		p.Feed([]byte(c), func(m *Message) bool {
			cp := *m
			cp.Headers = append([]Header(nil), m.Headers...)
			out = append(out, cp)
			return true
		})
	}
	return out
}

const sampleReq = "GET /index.html?q=1 HTTP/1.1\r\nHost: example.com\r\nUser-Agent: test\r\n\r\n"
const sampleResp = "HTTP/1.1 200 OK\r\nContent-Length: 5\r\nContent-Type: text/plain\r\n\r\nhello"

func TestParseRequest(t *testing.T) {
	msgs := collect(&Parser{}, sampleReq)
	if len(msgs) != 1 {
		t.Fatalf("messages = %d", len(msgs))
	}
	m := msgs[0]
	if m.Kind != Request || m.Method != "GET" || m.Target != "/index.html?q=1" || m.Proto != "HTTP/1.1" {
		t.Errorf("parsed %+v", m)
	}
	if host, ok := m.Get("host"); !ok || host != "example.com" {
		t.Errorf("Host = %q, %v", host, ok)
	}
	if m.ContentLength != -1 {
		t.Errorf("ContentLength = %d", m.ContentLength)
	}
}

func TestParseResponse(t *testing.T) {
	msgs := collect(&Parser{}, sampleResp)
	if len(msgs) != 1 {
		t.Fatalf("messages = %d", len(msgs))
	}
	m := msgs[0]
	if m.Kind != Response || m.StatusCode != 200 || m.ContentLength != 5 {
		t.Errorf("parsed %+v", m)
	}
	if ct, _ := m.Get("CONTENT-TYPE"); ct != "text/plain" {
		t.Errorf("content-type = %q", ct)
	}
}

func TestChunkBoundaryEveryOffset(t *testing.T) {
	full := sampleReq + sampleResp + sampleReq
	for cut1 := 1; cut1 < len(full)-1; cut1 += 7 {
		for cut2 := cut1 + 1; cut2 < len(full); cut2 += 13 {
			p := &Parser{}
			msgs := collect(p, full[:cut1], full[cut1:cut2], full[cut2:])
			if len(msgs) != 3 {
				t.Fatalf("cuts (%d,%d): %d messages", cut1, cut2, len(msgs))
			}
			if msgs[1].Kind != Response || msgs[2].Method != "GET" {
				t.Fatalf("cuts (%d,%d): wrong messages %+v", cut1, cut2, msgs)
			}
		}
	}
}

func TestResyncAfterGarbage(t *testing.T) {
	garbage := strings.Repeat("\x00\xffbinary\r\n", 50)
	msgs := collect(&Parser{}, garbage+sampleReq+garbage, sampleResp)
	if len(msgs) != 2 {
		t.Fatalf("messages = %d", len(msgs))
	}
	if msgs[0].Kind != Request || msgs[1].Kind != Response {
		t.Errorf("kinds = %v %v", msgs[0].Kind, msgs[1].Kind)
	}
}

func TestPipelinedRequests(t *testing.T) {
	pipeline := strings.Repeat("POST /api HTTP/1.1\r\nContent-Length: 0\r\n\r\n", 5)
	msgs := collect(&Parser{}, pipeline)
	if len(msgs) != 5 {
		t.Fatalf("messages = %d, want 5", len(msgs))
	}
	for _, m := range msgs {
		if m.Method != "POST" || m.ContentLength != 0 {
			t.Errorf("msg %+v", m)
		}
	}
}

func TestMalformedLinesSkipped(t *testing.T) {
	bad := []string{
		"GET  HTTP/1.1\r\n\r\n",          // empty target
		"HTTP/1.1 xxx Bad\r\n\r\n",       // non-numeric status
		"HTTP/1.1 99 Too-Low\r\n\r\n",    // out-of-range status
		"FROBNICATE /x HTTP/1.1\r\n\r\n", // unknown method (not scanned)
		"GET /ok\r\n\r\n",                // missing protocol
	}
	for _, s := range bad {
		if msgs := collect(&Parser{}, s); len(msgs) != 0 {
			t.Errorf("accepted %q: %+v", s, msgs)
		}
	}
}

func TestOversizeHeadDropped(t *testing.T) {
	p := &Parser{}
	huge := "GET /x HTTP/1.1\r\n" + strings.Repeat("A", maxHeadBytes+1024)
	msgs := collect(p, huge)
	if len(msgs) != 0 {
		t.Errorf("oversize head parsed")
	}
	if p.Truncated != 1 {
		t.Errorf("Truncated = %d", p.Truncated)
	}
	// Parser must recover afterwards.
	if msgs := collect(p, sampleReq); len(msgs) != 1 {
		t.Errorf("no recovery after oversize head: %d", len(msgs))
	}
}

func TestHeaderLimit(t *testing.T) {
	var b strings.Builder
	b.WriteString("GET / HTTP/1.1\r\n")
	for i := 0; i < maxHeaders+50; i++ {
		b.WriteString("X-H: v\r\n")
	}
	b.WriteString("\r\n")
	msgs := collect(&Parser{}, b.String())
	if len(msgs) != 1 {
		t.Fatalf("messages = %d", len(msgs))
	}
	if len(msgs[0].Headers) > maxHeaders {
		t.Errorf("headers = %d", len(msgs[0].Headers))
	}
}

func TestFeedNeverPanicsOnRandomInput(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	p := &Parser{}
	for i := 0; i < 500; i++ {
		b := make([]byte, r.Intn(300))
		for j := range b {
			// Bias toward HTTP-ish bytes to exercise deep paths.
			if r.Intn(3) == 0 {
				b[j] = "GETPOST HTTP/1.\r\n: "[r.Intn(19)]
			} else {
				b[j] = byte(r.Intn(256))
			}
		}
		p.Feed(b, func(*Message) bool { return true })
	}
}

func TestEqualFold(t *testing.T) {
	if !equalFold("Content-Length", "content-length") || equalFold("a", "ab") || equalFold("a", "b") {
		t.Error("equalFold broken")
	}
}
