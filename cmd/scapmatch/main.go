// Command scapmatch is the paper's §3.3.2 pattern-matching application as
// a tool: it loads a set of patterns (one per line, like Snort content
// strings) and scans reassembled streams from a pcap file, reporting
// matches with their stream context — the use case NIDSs build on Scap.
//
// Usage:
//
//	scapmatch -patterns rules.txt trace.pcap
//	scapmatch trace.pcap              # built-in demo pattern set
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sync"

	"scap"
	"scap/internal/bench"
	"scap/internal/match"
)

func main() {
	patternsPath := flag.String("patterns", "", "file with one pattern per line")
	workers := flag.Int("workers", 4, "worker threads")
	verbose := flag.Bool("v", false, "print each match")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: scapmatch [-patterns file] [-workers n] <trace.pcap>")
		os.Exit(2)
	}

	patterns, err := loadPatterns(*patternsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scapmatch:", err)
		os.Exit(1)
	}
	matcher, err := match.New(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scapmatch:", err)
		os.Exit(1)
	}

	h, err := scap.Create(scap.Config{ReassemblyMode: scap.TCPFast, Queues: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "scapmatch:", err)
		os.Exit(1)
	}
	if err := h.SetWorkerThreads(*workers); err != nil {
		fmt.Fprintln(os.Stderr, "scapmatch:", err)
		os.Exit(1)
	}
	longest := 0
	for _, p := range patterns {
		if len(p) > longest {
			longest = len(p)
		}
	}
	h.SetParameter(scap.ParamOverlapSize, int64(longest-1))

	var mu sync.Mutex
	total := 0
	perPattern := map[int]int{}
	h.DispatchData(func(sd *scap.Stream) {
		matcher.Scan(sd.Data, func(m match.Match) bool {
			mu.Lock()
			total++
			perPattern[m.Pattern]++
			if *verbose {
				fmt.Printf("match %q in %s at chunk offset %d\n",
					matcher.Pattern(m.Pattern), sd.Key(), m.End)
			}
			mu.Unlock()
			return true
		})
	})

	if err := h.StartCapture(); err != nil {
		fmt.Fprintln(os.Stderr, "scapmatch:", err)
		os.Exit(1)
	}
	if err := h.ReplayPcap(flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "scapmatch:", err)
		os.Exit(1)
	}
	h.Close()

	stats, _ := h.GetStats()
	fmt.Printf("%d matches from %d distinct patterns across %d streams (%d packets scanned)\n",
		total, len(perPattern), stats.StreamsCreated, stats.Packets)
}

func loadPatterns(path string) ([][]byte, error) {
	if path == "" {
		return bench.Patterns(2120), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out [][]byte
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		out = append(out, append([]byte(nil), line...))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no patterns in %s", path)
	}
	return out, nil
}
