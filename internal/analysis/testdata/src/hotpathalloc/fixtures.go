// Package fixtures exercises the hotpathalloc analyzer: allocation,
// formatting, and wall-clock work inside //scap:hotpath functions.
package fixtures

import (
	"fmt"
	"time"
)

type engine struct {
	n   int
	buf []byte
	log []string
}

// handleBad commits every hot-path sin the analyzer knows about.
//
//scap:hotpath
func (e *engine) handleBad(data []byte) {
	fmt.Printf("pkt %d\n", e.n) // want hotpathalloc "fmt.Printf"
	ts := time.Now()            // want hotpathalloc "time.Now"
	_ = ts
	m := map[string]int{"a": 1} // want hotpathalloc "map literal"
	_ = m
	s := []int{1, 2} // want hotpathalloc "slice literal"
	_ = s
	f := func() int { return e.n } // want hotpathalloc "closure captures e"
	_ = f
	e.log = append(e.log, "x") // want hotpathalloc "append may grow"
	h := make(map[uint64]int)  // want hotpathalloc "make\\(map\\)"
	_ = h
	b := make([]byte, 64) // want hotpathalloc "make allocates"
	_ = b
	p := new(engine) // want hotpathalloc "new allocates"
	_ = p
	str := string(data) // want hotpathalloc "string conversion copies"
	_ = str
}

// handleGood does only the things the per-packet path is allowed to do.
//
//scap:hotpath
func (e *engine) handleGood(data []byte) {
	e.n++
	if len(data) > 0 {
		e.n += int(data[0])
	}
	g := nonCapturing // package-level func value: no per-call allocation
	e.n = g(e.n)
	e.buf = append(e.buf, data...) //scaplint:ignore hotpathalloc appends into preallocated capacity
}

// nonCapturing is a package-level closure; referencing it is free.
var nonCapturing = func(x int) int { return x + 1 }

// coldPath is not annotated: anything goes.
func (e *engine) coldPath() {
	fmt.Println("cold", time.Now(), map[int]int{})
	e.log = append(e.log, "cold")
}

// pureClosure shows a non-capturing literal inside a hot path: the
// compiler lifts it to a static function, so it is not flagged.
//
//scap:hotpath
func (e *engine) pureClosure() {
	f := func(x int) int { return x * 2 }
	e.n = f(e.n)
}

// slotWrite fills preallocated storage the way the arena-backed chunk path
// does — reslice within guaranteed capacity, then copy — which the analyzer
// accepts without any suppression.
//
//scap:hotpath
func (e *engine) slotWrite(data []byte) {
	n := len(e.buf)
	e.buf = e.buf[:n+len(data)]
	copy(e.buf[n:], data)
}
