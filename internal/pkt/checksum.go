package pkt

import "net/netip"

// Checksum computes the Internet checksum (RFC 1071) over data folded into
// an initial partial sum. Pass the result of PseudoHeaderSum as initial when
// checksumming TCP/UDP.
func Checksum(data []byte, initial uint32) uint16 {
	sum := initial
	n := len(data)
	i := 0
	for ; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if i < n {
		sum += uint32(data[i]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// PseudoHeaderSum returns the partial checksum of the IPv4/IPv6 pseudo
// header used by TCP and UDP: source, destination, protocol, and transport
// length.
func PseudoHeaderSum(src, dst netip.Addr, proto uint8, l4len int) uint32 {
	var sum uint32
	addAddr := func(a netip.Addr) {
		if a.Is4() {
			b := a.As4()
			sum += uint32(b[0])<<8 | uint32(b[1])
			sum += uint32(b[2])<<8 | uint32(b[3])
			return
		}
		b := a.As16()
		for i := 0; i < 16; i += 2 {
			sum += uint32(b[i])<<8 | uint32(b[i+1])
		}
	}
	addAddr(src)
	addAddr(dst)
	sum += uint32(proto)
	sum += uint32(l4len)
	return sum
}
