package analysis

import (
	"fmt"
	"go/ast"
)

// LockDiscipline enforces the "guarded by <mu>" field convention: a struct
// field annotated with a guard comment may only be read or written by
// methods that acquire that mutex on the same receiver (recv.mu.Lock or
// recv.mu.RLock anywhere in the body), or by *Locked helpers that document
// being called with the lock held. This is a lightweight, method-granular
// check — it does not prove the lock is held at the access — but it
// catches the common regression of adding an unlocked accessor.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "fields annotated 'guarded by mu' are only touched under that mutex",
	Run:  runLockDiscipline,
}

func runLockDiscipline(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, st := range structTypes(p) {
		guards := guardedFields(st.Struct)
		if len(guards) == 0 {
			continue
		}
		for _, m := range methodsOf(p, st.Name) {
			if m.Body == nil || methodAssumesLock(m) {
				continue
			}
			recv := receiverName(m)
			if recv == "" {
				continue
			}
			held := lockAcquisitions(m, recv)
			// One diagnostic per (method, field): the first access.
			reported := make(map[string]bool)
			ast.Inspect(m.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				base, ok := sel.X.(*ast.Ident)
				if !ok || base.Name != recv {
					return true
				}
				field := sel.Sel.Name
				mu, guarded := guards[field]
				if !guarded || held[mu] || reported[field] {
					return true
				}
				reported[field] = true
				diags = append(diags, Diagnostic{
					Pos:      p.Fset.Position(sel.Pos()),
					Analyzer: "lockdiscipline",
					Message: fmt.Sprintf(
						"%s.%s accesses %s.%s, guarded by %s, without acquiring it (lock %s.%s, or rename the method *Locked if callers hold it)",
						st.Name, m.Name.Name, recv, field, mu, recv, mu),
				})
				return true
			})
		}
	}
	return diags
}
