package streamscope

import (
	"net/netip"
	"testing"

	"scap/internal/pkt"
)

func testKey() pkt.FlowKey {
	return pkt.FlowKey{
		SrcIP:   netip.MustParseAddr("10.0.0.1"),
		DstIP:   netip.MustParseAddr("10.0.0.2"),
		SrcPort: 40000,
		DstPort: 80,
		Proto:   pkt.ProtoTCP,
	}
}

func testScope(t *testing.T) *Scope {
	t.Helper()
	now := func() int64 { return 12345 }
	return New(Options{Cores: 2, JournalsPerCore: 8, SampleEvery: 4, Now: &now})
}

func TestAcquireNoteSnapshot(t *testing.T) {
	s := testScope(t)
	j, gen := s.Acquire(0, Binding{
		ID: 7, Key: testKey(), Dir: 1, Priority: 2, Created: 100, Sampled: true,
	})
	if gen == 0 || gen&1 == 1 {
		t.Fatalf("Acquire returned gen %d, want even nonzero", gen)
	}
	if j.Gen() != gen {
		t.Fatalf("Gen() = %d, want %d", j.Gen(), gen)
	}
	j.Note(EvCreated, 100, 2, 1<<20)
	j.Note(EvFirstPayload, 150, 1460, 0)
	j.NoteAnomaly(AnomCutoff, EvCutoff, 900, 1<<20, 5<<20)

	snaps := s.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("Snapshot() returned %d journals, want 1", len(snaps))
	}
	js := snaps[0]
	if js.StreamID != 7 || !js.Sampled || js.Priority != 2 || js.Dir != 1 {
		t.Fatalf("identity mismatch: %+v", js)
	}
	if js.Key != testKey().String() {
		t.Fatalf("Key = %q, want %q", js.Key, testKey().String())
	}
	if js.AnomalyMask != AnomCutoff || len(js.Anomalies) != 1 || js.Anomalies[0] != "cutoff" {
		t.Fatalf("anomaly mismatch: mask=%d names=%v", js.AnomalyMask, js.Anomalies)
	}
	if len(js.Events) != 3 {
		t.Fatalf("got %d events, want 3", len(js.Events))
	}
	wantKinds := []EventKind{EvCreated, EvFirstPayload, EvCutoff}
	for i, ev := range js.Events {
		if ev.Kind != wantKinds[i] {
			t.Fatalf("event %d kind = %s, want %s", i, ev.KindName, wantKinds[i])
		}
	}
	if !j.Anomalous() {
		t.Fatal("journal should be anomalous after NoteAnomaly")
	}
	if s.Anomalies() != 0 {
		// CountAnomaly is the engine's explicit transition counter.
		t.Fatalf("Anomalies() = %d before CountAnomaly, want 0", s.Anomalies())
	}
	s.CountAnomaly(0)
	if s.Anomalies() != 1 || s.Sampled() != 1 {
		t.Fatalf("Anomalies()=%d Sampled()=%d, want 1,1", s.Anomalies(), s.Sampled())
	}
}

func TestIPv6Key(t *testing.T) {
	s := testScope(t)
	k := pkt.FlowKey{
		SrcIP:   netip.MustParseAddr("2001:db8::1"),
		DstIP:   netip.MustParseAddr("2001:db8::2"),
		SrcPort: 1234,
		DstPort: 443,
		Proto:   pkt.ProtoTCP,
	}
	s.Acquire(1, Binding{ID: 9, Key: k, Created: 5, Sampled: true})
	snaps := s.Snapshot()
	if len(snaps) != 1 || snaps[0].Key != k.String() {
		t.Fatalf("IPv6 key round-trip failed: %+v", snaps)
	}
}

func TestRebindDiscardsHistory(t *testing.T) {
	s := testScope(t)
	j1, gen1 := s.Acquire(0, Binding{ID: 1, Key: testKey(), Created: 10, Sampled: true})
	j1.Note(EvCreated, 10, 0, 0)
	// Wrap the whole pool so journal 0 is rebound.
	var last *Journal
	var lastGen uint64
	for i := 0; i < 8; i++ {
		last, lastGen = s.Acquire(0, Binding{ID: uint64(100 + i), Key: testKey(), Created: int64(20 + i), Sampled: true})
	}
	if last != j1 {
		t.Fatalf("pool of 8 should wrap back to the first journal")
	}
	if lastGen == gen1 {
		t.Fatal("rebind must advance the generation")
	}
	if j1.Gen() != lastGen {
		t.Fatalf("Gen() = %d, want %d", j1.Gen(), lastGen)
	}
	// The stale generation check is what the engine uses to drop writes.
	if gen1 == j1.Gen() {
		t.Fatal("stale gen must not match")
	}
	snaps := s.Snapshot()
	for _, js := range snaps {
		if js.StreamID == 1 {
			t.Fatal("rebound journal still reports the old stream")
		}
		if js.TotalEvents != 0 {
			t.Fatalf("rebound journal %d kept %d events", js.StreamID, js.TotalEvents)
		}
	}
}

func TestEventRingWraps(t *testing.T) {
	s := testScope(t)
	j, _ := s.Acquire(0, Binding{ID: 3, Key: testKey(), Sampled: true})
	for i := 0; i < slotsPerJournal+10; i++ {
		j.Note(EvChunkFlush, int64(i), int64(i), 0)
	}
	snaps := s.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("want 1 journal, got %d", len(snaps))
	}
	js := snaps[0]
	if js.TotalEvents != slotsPerJournal+10 {
		t.Fatalf("TotalEvents = %d, want %d", js.TotalEvents, slotsPerJournal+10)
	}
	if len(js.Events) != slotsPerJournal {
		t.Fatalf("decoded %d events, want %d", len(js.Events), slotsPerJournal)
	}
	// Oldest surviving event is seq 11; events must be in sequence order.
	if js.Events[0].Seq != 11 || js.Events[len(js.Events)-1].Seq != slotsPerJournal+10 {
		t.Fatalf("ring window wrong: first=%d last=%d", js.Events[0].Seq, js.Events[len(js.Events)-1].Seq)
	}
}

func TestSampleNewAndAdapt(t *testing.T) {
	s := testScope(t) // SampleEvery 4 => baseShift 2
	if got := s.SampleEvery(); got != 4 {
		t.Fatalf("SampleEvery = %d, want 4", got)
	}
	// Top 2 bits zero => sampled.
	if !s.SampleNew(0x0fff_ffff_ffff_ffff) {
		t.Fatal("hash with top bits clear should sample")
	}
	if s.SampleNew(0xffff_ffff_ffff_ffff) {
		t.Fatal("hash with top bits set should not sample")
	}
	s.Adapt(true)
	if got := s.SampleEvery(); got != 8 {
		t.Fatalf("after pressure step SampleEvery = %d, want 8", got)
	}
	for i := 0; i < 100; i++ {
		s.Adapt(true)
	}
	if got := s.SampleEvery(); got != 1<<defaultMaxShift {
		t.Fatalf("pressure ceiling SampleEvery = %d, want %d", got, 1<<defaultMaxShift)
	}
	for i := 0; i < 100; i++ {
		s.Adapt(false)
	}
	if got := s.SampleEvery(); got != 4 {
		t.Fatalf("recovery floor SampleEvery = %d, want 4", got)
	}
}

func TestSampleEveryOne(t *testing.T) {
	now := func() int64 { return 0 }
	s := New(Options{Cores: 1, SampleEvery: 1, Now: &now})
	for _, h := range []uint64{0, ^uint64(0), 0x8000_0000_0000_0000} {
		if !s.SampleNew(h) {
			t.Fatalf("SampleEvery 1 must sample every hash (h=%x)", h)
		}
	}
}

func TestSnapshotOrdersAnomaliesFirst(t *testing.T) {
	s := testScope(t)
	s.Acquire(0, Binding{ID: 1, Key: testKey(), Created: 10, Sampled: true})
	j2, _ := s.Acquire(0, Binding{ID: 2, Key: testKey(), Created: 20, Sampled: false})
	j2.NoteAnomaly(AnomGap, EvGap, 25, 100, 0)
	snaps := s.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("want 2 journals, got %d", len(snaps))
	}
	if snaps[0].StreamID != 2 {
		t.Fatalf("anomalous journal must sort first, got stream %d", snaps[0].StreamID)
	}
}

func TestChromeTrace(t *testing.T) {
	s := testScope(t)
	j, _ := s.Acquire(0, Binding{ID: 42, Key: testKey(), Created: 1000, Sampled: true})
	j.Note(EvCreated, 1000, 0, 0)
	j.Note(EvChunkFlush, 5000, 4096, 3000) // chunk opened at 2000, flushed at 5000
	j.NoteAnomaly(AnomCutoff, EvCutoff, 6000, 4096, 9000)

	tr := ChromeTrace(s.Snapshot())
	if tr.DisplayTimeUnit != "ms" {
		t.Fatalf("DisplayTimeUnit = %q", tr.DisplayTimeUnit)
	}
	// 1 thread_name metadata + 3 events.
	if len(tr.TraceEvents) != 4 {
		t.Fatalf("got %d trace events, want 4", len(tr.TraceEvents))
	}
	meta := tr.TraceEvents[0]
	if meta.Ph != "M" || meta.Name != "thread_name" {
		t.Fatalf("first event must be thread_name metadata: %+v", meta)
	}
	name, _ := meta.Args["name"].(string)
	if name == "" || name == "stream " {
		t.Fatalf("thread name empty: %+v", meta.Args)
	}
	var sawSpan bool
	for _, ev := range tr.TraceEvents[1:] {
		if ev.TID != meta.TID {
			t.Fatalf("event on wrong track: %+v", ev)
		}
		if ev.TS < 0 {
			t.Fatalf("negative timestamp: %+v", ev)
		}
		if ev.Ph == "X" {
			sawSpan = true
			if ev.Dur != 3000.0/1000 {
				t.Fatalf("span duration = %v µs, want 3", ev.Dur)
			}
		}
	}
	if !sawSpan {
		t.Fatal("chunk flush should render as a complete-event span")
	}
}
