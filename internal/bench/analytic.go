package bench

import (
	"fmt"

	"scap/internal/queueing"
	"scap/internal/sim"
)

// Fig7 — L2 cache misses per packet versus rate (paper §6.5.2): Snort ≈25,
// Libnids ≈21, Scap ≈10 at low rates. The counts are computed from the
// cache model applied to each run's measured per-packet payload: the
// baselines touch packet-interleaved data scattered across the ring, Scap
// touches consecutively stored stream bytes.
func (r *Runner) Fig7() *Figure {
	fig := &Figure{
		ID: "fig7", Title: "L2 cache misses per packet (modeled)",
		XLabel: "Gbit/s", YLabel: "misses/packet",
		Series: []string{sLibnids, sSnort, sScap},
		Notes:  []string{"modeled from delivered bytes with the calibrated per-byte miss rates (no hardware counters in simulation)"},
	}
	model := sim.DefaultCostModel()
	for _, rate := range r.rates() {
		ms := map[string]sim.Metrics{
			sLibnids: r.runBaseline(r.baselineConfig(sim.KindLibnids, sim.AppMatch), rate),
			sSnort:   r.runBaseline(r.baselineConfig(sim.KindSnort, sim.AppMatch), rate),
			sScap:    r.runScap(r.scapConfig(sim.AppMatch, 1), rate),
		}
		row := map[string]float64{}
		for name, m := range ms {
			perByte := model.MissPerByteScattered
			switch name {
			case sSnort:
				perByte = model.MissPerByteSnort
			case sScap:
				perByte = model.MissPerByteGrouped
			}
			// Bytes actually processed per packet processed: drops reduce
			// both, keeping the per-packet figure stable until saturation,
			// as in the paper.
			processedPkts := float64(m.OfferedPackets)
			lost := m.PacketLossFraction()
			processedPkts *= 1 - lost
			if processedPkts < 1 {
				processedPkts = 1
			}
			row[name] = model.MissBasePerPacket + perByte*float64(m.DeliveredBytes)/processedPkts
		}
		fig.Add(rate, row)
	}
	return fig
}

// Fig11 — analytic loss probability of high-priority packets in the
// M/M/1/N model versus the free-memory threshold N, for three offered
// loads (paper §7, equation 1).
func Fig11() *Figure {
	fig := &Figure{
		ID: "fig11", Title: "M/M/1/N loss probability of high-priority packets",
		XLabel: "N (packet slots)", YLabel: "P(loss)",
		Series: []string{"rho=0.1", "rho=0.5", "rho=0.9"},
	}
	for n := 10; n <= 200; n += 10 {
		row := map[string]float64{}
		for _, rho := range []float64{0.1, 0.5, 0.9} {
			row[fmt.Sprintf("rho=%.1f", rho)] = queueing.MM1NLoss(rho, n)
		}
		fig.Add(float64(n), row)
	}
	return fig
}

// Fig12 — analytic loss probability for three priority classes versus N
// (paper §7, Markov chain with 2N states; medium and high classes at
// ρ₁=ρ₂=0.3). The exact chain solution replaces the paper's closed forms
// (whose printed constants contain typesetting glitches); the tests
// cross-validate it against Monte-Carlo simulation.
func Fig12() *Figure {
	fig := &Figure{
		ID: "fig12", Title: "multi-priority loss probability (3 classes)",
		XLabel: "N (packet slots per region)", YLabel: "P(loss)",
		Series: []string{"Medium-priority", "High-priority"},
		Notes:  []string{"exact birth-death chain; the paper's printed closed forms are approximations"},
	}
	rhos := []float64{0.3, 0.3, 0.3} // low, medium, high
	for n := 2; n <= 40; n += 2 {
		loss, err := queueing.PriorityLoss(rhos, n)
		if err != nil {
			continue
		}
		fig.Add(float64(n), map[string]float64{
			"Medium-priority": loss[1],
			"High-priority":   loss[2],
		})
	}
	return fig
}

// All runs every figure in paper order. Fig11/Fig12 are analytic and
// workload-independent.
func (r *Runner) All() []*Figure {
	var figs []*Figure
	figs = append(figs, r.Fig3()...)
	figs = append(figs, r.Fig4()...)
	figs = append(figs, r.Fig5()...)
	figs = append(figs, r.Fig6()...)
	figs = append(figs, r.Fig7())
	figs = append(figs, r.Fig8()...)
	figs = append(figs, r.Fig9())
	figs = append(figs, r.Fig10()...)
	figs = append(figs, Fig11(), Fig12())
	return figs
}

// ByID runs a single figure family ("3".."12" or "fig3".."fig12").
func (r *Runner) ByID(id string) ([]*Figure, error) {
	switch id {
	case "3", "fig3":
		return r.Fig3(), nil
	case "4", "fig4":
		return r.Fig4(), nil
	case "5", "fig5":
		return r.Fig5(), nil
	case "6", "fig6":
		return r.Fig6(), nil
	case "7", "fig7":
		return []*Figure{r.Fig7()}, nil
	case "8", "fig8":
		return r.Fig8(), nil
	case "9", "fig9":
		return []*Figure{r.Fig9()}, nil
	case "10", "fig10":
		return r.Fig10(), nil
	case "11", "fig11":
		return []*Figure{Fig11()}, nil
	case "12", "fig12":
		return []*Figure{Fig12()}, nil
	}
	return nil, fmt.Errorf("bench: unknown figure %q (3..12)", id)
}
