// Package core implements the Scap kernel-path engine: the per-core
// equivalent of the paper's loadable kernel module (§4, §5). Each Engine
// owns one receive queue's traffic end to end — flow-table lookup, TCP/UDP
// reassembly, cutoff enforcement, PPL admission, chunk memory management,
// FDIR filter maintenance, and event generation — exactly the work the
// paper performs in the software-interrupt handler.
//
// The engine is driven externally: a live capture loop (package scap) or
// the virtual-time simulator (internal/sim) feeds it frames and clock
// ticks, so the same logic underlies both the functional library and the
// reproduction benchmarks.
package core

import (
	"net/netip"

	"scap/internal/bpf"
	"scap/internal/pkt"
	"scap/internal/reassembly"
)

// Defaults mirroring the paper's evaluation settings (§6.1).
const (
	DefaultChunkSize         = 16 << 10
	DefaultInactivityTimeout = int64(10e9) // 10 s
	DefaultFlushTimeout      = int64(0)    // disabled
	// CutoffUnlimited disables the stream-size cutoff.
	CutoffUnlimited = int64(-1)
)

// CutoffClass binds a cutoff to a traffic subset selected by a filter
// (scap_add_cutoff_class).
type CutoffClass struct {
	Filter *bpf.Filter
	Cutoff int64
}

// PriorityClass assigns an initial PPL priority to streams matching a
// filter, resolved inside the engine at stream creation so protection is
// in force from the first payload byte. (Applications can still adjust
// priorities per stream afterwards via scap_set_stream_priority.)
type PriorityClass struct {
	Filter   *bpf.Filter
	Priority int
}

// PolicyRule assigns a target-based reassembly policy to destination hosts
// within a prefix (the Snort target-based model: the policy of the host
// that will *receive* and interpret the bytes).
type PolicyRule struct {
	Prefix netip.Prefix
	Policy reassembly.Policy
}

// Config is the socket-level configuration shared by all engine cores. It
// must not be mutated after capture starts except through documented
// runtime setters.
type Config struct {
	// Filter selects which streams are processed; non-matching streams
	// are discarded inside the engine (or never tracked).
	Filter *bpf.Filter

	// Cutoff is the default per-stream cutoff in payload bytes;
	// CutoffUnlimited disables it, 0 discards all stream data.
	Cutoff int64
	// CutoffClient/CutoffServer override Cutoff per direction when the
	// corresponding Set flag is true (scap_add_cutoff_direction).
	CutoffClient    int64
	CutoffClientSet bool
	CutoffServer    int64
	CutoffServerSet bool
	// CutoffClasses are evaluated in order; the first matching class sets
	// the stream's cutoff.
	CutoffClasses []CutoffClass
	// PriorityClasses are evaluated in order; the first matching class
	// sets a new stream's PPL priority.
	PriorityClasses []PriorityClass

	ChunkSize    int
	OverlapSize  int
	FlushTimeout int64

	InactivityTimeout int64

	Mode          reassembly.Mode
	DefaultPolicy reassembly.Policy
	PolicyRules   []PolicyRule

	// NeedPkts enables per-packet record delivery alongside chunks.
	NeedPkts bool
	// UseFDIR enables subzero copy: installing NIC drop filters when a
	// stream's cutoff triggers.
	UseFDIR bool

	// Priorities is the number of PPL priority levels the application
	// uses.
	Priorities int

	// Sketch configures the per-core priority-aware sketch front-end that
	// answers cutoff decisions for flows that no longer need a stream
	// record (§5.5 subzero copy extended below the record level).
	Sketch SketchConfig
}

// SketchConfig enables and sizes the sketch front-end.
type SketchConfig struct {
	// Enabled turns the front-end on. With it off, the engine behaves
	// exactly as before (every flow gets a record).
	Enabled bool
	// Width/Depth/TopK size the count-min sketch and heavy-flow tracker;
	// zero takes the sketch package defaults.
	Width int
	Depth int
	TopK  int
	// SuppressMaxPriority bounds which priorities may be record-suppressed:
	// only flows with priority <= this value are answered from the sketch
	// once past their cutoff. High-priority flows always keep records.
	SuppressMaxPriority int
}

// blockHeadroom multiplies the chunk+overlap footprint when sizing arena
// blocks, leaving room for KeepChunk merges to grow in place before they
// spill. Two is the sweet spot: one full chunk of merge room, while keeping
// the arena's committed footprint (which must be zeroed) proportional to
// the chunks actually in flight — headroom 4 doubled the memclr bill for
// merge room that mostly sat idle.
const blockHeadroom = 2

// ArenaBlockSize returns the arena block granularity implied by this
// configuration: headroom times the default chunk-plus-overlap footprint,
// so a chunk (and a few KeepChunk merges of it) fits one block.
func (c Config) ArenaBlockSize() int {
	n := c.withDefaults()
	return blockHeadroom * (n.ChunkSize + n.OverlapSize)
}

// withDefaults returns a normalized copy.
func (c Config) withDefaults() Config {
	if c.ChunkSize <= 0 {
		c.ChunkSize = DefaultChunkSize
	}
	if c.OverlapSize < 0 {
		c.OverlapSize = 0
	}
	if c.OverlapSize >= c.ChunkSize {
		c.OverlapSize = c.ChunkSize - 1
	}
	if c.InactivityTimeout <= 0 {
		c.InactivityTimeout = DefaultInactivityTimeout
	}
	if c.Cutoff < 0 {
		c.Cutoff = CutoffUnlimited
	}
	if c.Priorities <= 0 {
		c.Priorities = 1
	}
	return c
}

// resolveCutoff picks the effective cutoff for a new stream.
func (c *Config) resolveCutoff(p *pkt.Packet, dir pkt.Direction) int64 {
	for _, cls := range c.CutoffClasses {
		if cls.Filter.Match(p) {
			return cls.Cutoff
		}
	}
	if dir == pkt.DirClient && c.CutoffClientSet {
		return c.CutoffClient
	}
	if dir == pkt.DirServer && c.CutoffServerSet {
		return c.CutoffServer
	}
	return c.Cutoff
}

// minCutoff returns the smallest non-negative cutoff configured anywhere
// (default, per-direction, or cutoff classes), or -1 when every path is
// unlimited. It is the sketch's heavy-flow threshold: any flow that could
// ever be suppressed must cross this volume first.
func (c *Config) minCutoff() int64 {
	min := int64(-1)
	take := func(v int64) {
		if v >= 0 && (min < 0 || v < min) {
			min = v
		}
	}
	take(c.Cutoff)
	if c.CutoffClientSet {
		take(c.CutoffClient)
	}
	if c.CutoffServerSet {
		take(c.CutoffServer)
	}
	for _, cls := range c.CutoffClasses {
		take(cls.Cutoff)
	}
	return min
}

// resolvePolicy picks the reassembly policy for a stream whose receiver is
// dst (longest matching prefix wins).
func (c *Config) resolvePolicy(dst netip.Addr) reassembly.Policy {
	best := -1
	policy := c.DefaultPolicy
	for _, r := range c.PolicyRules {
		if r.Prefix.Contains(dst) && r.Prefix.Bits() > best {
			best = r.Prefix.Bits()
			policy = r.Policy
		}
	}
	return policy
}
