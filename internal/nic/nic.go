package nic

import (
	"fmt"
	"sync"

	"scap/internal/metrics"
	"scap/internal/pkt"
	"scap/internal/reassembly"
)

// Hardware capacities of the modeled controller (Intel 82599).
const (
	DefaultPerfectFilters   = 8192
	DefaultSignatureFilters = 32768
	DefaultQueueDepth       = 4096
)

// Config configures the model controller (Intel 82599) at the core of
// the Sim backend. The other backends have their own configs
// (PcapReplayConfig, AFPacketConfig); what every backend shares is the
// Frame/Stats/Capabilities surface, not this struct.
type Config struct {
	// Queues is the number of receive queues (one per core in Scap).
	Queues int
	// QueueDepth is the ring size of each receive queue in packets.
	QueueDepth int
	// RSSKey is the Toeplitz key; zero value selects the symmetric key.
	RSSKey RSSKey
	// PerfectFilterCap / SignatureFilterCap bound the FDIR tables.
	PerfectFilterCap   int
	SignatureFilterCap int
	// DynamicBalance enables the paper's §2.4 load balancing: new
	// connections landing on a queue holding a disproportionate share of
	// the active streams are redirected (via FDIR queue filters) to the
	// least-loaded queue.
	DynamicBalance bool
	// Defragment reassembles IPv4 fragments before RSS steering. Real
	// hardware hashes fragments on addresses only (no ports), which would
	// scatter a flow's fragments and whole packets across queues; the
	// capture framework enables this in strict mode so each flow's entire
	// byte stream reaches one core. (Comparable in spirit to receive-side
	// coalescing offloads.)
	Defragment bool
}

func (c *Config) applyDefaults() {
	if c.Queues <= 0 {
		c.Queues = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.RSSKey == (RSSKey{}) {
		c.RSSKey = SymmetricRSSKey(0x6d5a)
	}
	if c.PerfectFilterCap <= 0 {
		c.PerfectFilterCap = DefaultPerfectFilters
	}
	if c.SignatureFilterCap <= 0 {
		c.SignatureFilterCap = DefaultSignatureFilters
	}
}

// Frame is one received frame with its capture timestamp, the unit every
// backend delivers in Batches. TS is the packet timestamp used by the
// protocol machinery — virtual time on the simulated backend, file time
// on pcap replay, kernel capture time on AF_PACKET; Ingest, when nonzero,
// is the capture-clock (metrics.Nanotime) stamp taken at backend ingest,
// carried to the engine so the ingest→engine stage latency can be
// measured on any backend.
type Frame struct {
	Data   []byte
	TS     int64
	Ingest int64
}

// ring is a fixed-capacity FIFO of frames.
type ring struct {
	buf  []Frame
	head int
	n    int
}

func (r *ring) push(f Frame) bool {
	if r.n == len(r.buf) {
		return false
	}
	r.buf[(r.head+r.n)%len(r.buf)] = f
	r.n++
	return true
}

func (r *ring) pop() (Frame, bool) {
	if r.n == 0 {
		return Frame{}, false
	}
	f := r.buf[r.head]
	r.buf[r.head] = Frame{}
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return f, true
}

// Stats aggregates capture-backend counters. Like real hardware, drop
// counts are only available in aggregate, not per filter — which is why
// Scap estimates per-flow statistics from FIN/RST sequence numbers. Every
// backend fills the same fields: DroppedFilter is an FDIR hardware drop on
// the simulated controller and a software-shim drop (cause "swfilter")
// elsewhere; DroppedRing is a full receive ring on the model NIC, a full
// PF_PACKET-style replay ring, or the kernel's tp_drops on AF_PACKET.
type Stats struct {
	Received       uint64 // frames offered to the backend
	DroppedFilter  uint64 // dropped by a drop filter (hardware FDIR or software shim)
	DroppedRing    uint64 // dropped because the destination ring was full
	Redirected     uint64 // steered by a queue filter (dynamic balancing)
	DecodeFailures uint64 // undecodable frames (delivered nowhere)
}

// NIC is the simulated multi-queue controller at the core of the Sim
// backend (the other backends replace it with a real socket or a file
// reader plus the software steering shim). A single mutex serializes all
// state-touching entry points: the delivery goroutine calls Receive/Poll
// while every core's kernel goroutine installs and removes FDIR filters
// (installFDIR on cutoff, expireFilters on deadlines) and any goroutine may
// read Stats — the software analogue of the hardware's register interface.
//
//scap:shared
type NIC struct {
	mu  sync.Mutex
	cfg Config // immutable after New
	// rings is guarded by mu.
	rings []ring
	// filters is guarded by mu.
	filters *filterTable
	// defrag is guarded by mu.
	defrag *reassembly.Defragmenter
	// lb is guarded by mu.
	lb *balancer
	// stats is guarded by mu.
	stats Stats
	// highwater tracks per-queue occupancy peaks for tests; guarded by mu.
	highwater []int
	// scratch is guarded by mu.
	scratch pkt.Packet

	// events (nil until PublishMetrics) receives ring-full episodes;
	// fullSince and fullDrops track each queue's open episode (virtual-time
	// start and frames dropped so far). All guarded by mu.
	events    *metrics.EventLog
	fullSince []int64
	fullDrops []uint64
	// flight (nil until PublishMetrics) records ring-full edges and balancer
	// redirects; guarded by mu.
	flight *metrics.FlightRecorder
	// ringDrops attributes ring-full losses per queue; guarded by mu.
	ringDrops []uint64
}

// New creates a NIC with cfg.
func New(cfg Config) *NIC {
	cfg.applyDefaults()
	n := &NIC{
		cfg:       cfg,
		rings:     make([]ring, cfg.Queues),
		filters:   newFilterTable(cfg.PerfectFilterCap, cfg.SignatureFilterCap),
		highwater: make([]int, cfg.Queues),
		fullSince: make([]int64, cfg.Queues),
		fullDrops: make([]uint64, cfg.Queues),
		ringDrops: make([]uint64, cfg.Queues),
	}
	for i := range n.rings {
		n.rings[i].buf = make([]Frame, cfg.QueueDepth)
	}
	if cfg.Defragment {
		n.defrag = reassembly.NewDefragmenter(0, 0)
	}
	if cfg.DynamicBalance && cfg.Queues > 1 {
		n.lb = newBalancer(cfg.Queues)
	}
	return n
}

// Queues returns the number of receive queues.
func (n *NIC) Queues() int { return n.cfg.Queues }

// Receive offers one frame to the NIC at virtual time ts. It returns the
// queue the frame was enqueued on, or -1 if the frame was dropped (by a
// filter, a full ring, or a decode failure).
func (n *NIC) Receive(data []byte, ts int64) int {
	return n.ReceiveAt(data, ts, 0)
}

// ReceiveAt is Receive with a capture-clock ingest stamp (metrics.Nanotime)
// carried on the enqueued frame; zero means unstamped and disables the
// ingest→engine latency observation for the frame.
func (n *NIC) ReceiveAt(data []byte, ts, ingest int64) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.Received++
	p := &n.scratch
	if err := pkt.Decode(data, p); err != nil {
		n.stats.DecodeFailures++
		return -1
	}
	p.Timestamp = ts

	if p.IsFragment() && n.defrag != nil && p.IPVersion == 4 {
		if n.stats.Received%4096 == 0 {
			n.defrag.Expire(ts)
		}
		whole := n.defrag.Add(p)
		if whole == nil {
			return -1 // held until the datagram completes
		}
		data = pkt.RebuildIPv4Frame(p, whole)
		if err := pkt.Decode(data, p); err != nil {
			n.stats.DecodeFailures++
			return -1
		}
		p.Timestamp = ts
	}

	queue := n.rssQueue(p)
	if f := n.filters.lookup(p); f != nil {
		switch f.Action {
		case ActionDrop:
			n.stats.DroppedFilter++
			return -1
		case ActionQueue:
			if f.Queue >= 0 && f.Queue < len(n.rings) {
				queue = f.Queue
				n.stats.Redirected++
			}
		}
	}
	if n.lb != nil && p.Key.Proto == pkt.ProtoTCP {
		switch {
		case p.TCPFlags&pkt.FlagRST != 0:
			n.lb.close(n, p.Key, true)
		case p.TCPFlags&pkt.FlagFIN != 0:
			n.lb.close(n, p.Key, false)
		case p.TCPFlags&pkt.FlagSYN != 0 && p.TCPFlags&pkt.FlagACK == 0:
			rssQ := queue
			queue = n.lb.admit(n, p.Key, rssQ, ts)
			if queue != rssQ && n.flight != nil {
				n.flight.Note(rssQ, metrics.FlightFDIRRebalance, int64(rssQ), int64(queue))
			}
		}
	}
	if !n.rings[queue].push(Frame{Data: data, TS: ts, Ingest: ingest}) {
		n.stats.DroppedRing++
		n.ringDrops[queue]++
		if n.events != nil {
			if n.fullSince[queue] == 0 {
				n.fullSince[queue] = ts
				n.events.Record(metrics.Event{Kind: metrics.EvRingFull, Core: queue})
				if n.flight != nil {
					n.flight.Note(queue, metrics.FlightNICRingFull, int64(len(n.rings[queue].buf)), 0)
				}
			}
			n.fullDrops[queue]++
		}
		return -1
	}
	if n.events != nil && n.fullSince[queue] != 0 {
		// The ring accepted a frame again: close the drop episode, with its
		// duration in virtual time and the frames lost during it.
		n.events.Record(metrics.Event{
			Kind:  metrics.EvRingFullEnd,
			Core:  queue,
			Dur:   ts - n.fullSince[queue],
			Value: int64(n.fullDrops[queue]),
		})
		if n.flight != nil {
			n.flight.Note(queue, metrics.FlightNICRingRecover, int64(n.fullDrops[queue]), ts-n.fullSince[queue])
		}
		n.fullSince[queue], n.fullDrops[queue] = 0, 0
	}
	if n.rings[queue].n > n.highwater[queue] {
		n.highwater[queue] = n.rings[queue].n
	}
	return queue
}

// rssQueue computes the RSS queue for a decoded packet.
func (n *NIC) rssQueue(p *pkt.Packet) int {
	hasPorts := p.Key.Proto == pkt.ProtoTCP || p.Key.Proto == pkt.ProtoUDP
	h := RSSHash(&n.cfg.RSSKey, p.Key.SrcIP, p.Key.DstIP, p.Key.SrcPort, p.Key.DstPort, hasPorts)
	// The 82599 indexes a 128-entry indirection table with the low 7 bits;
	// with an identity-style table this reduces to a modulo.
	return int(h&0x7f) % n.cfg.Queues
}

// QueueFor reports the queue RSS would choose for a flow key, letting the
// engine predict stream placement (e.g. for load-balance decisions).
func (n *NIC) QueueFor(key pkt.FlowKey) int {
	p := pkt.Packet{Key: key}
	return n.rssQueue(&p)
}

// Poll removes and returns the next frame of queue q.
func (n *NIC) Poll(q int) (Frame, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rings[q].pop()
}

// QueueLen returns the current occupancy of queue q.
func (n *NIC) QueueLen(q int) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rings[q].n
}

// AddFilter installs an FDIR filter. If the perfect table is full, the
// filter set with the earliest deadline is evicted first (the paper's
// policy: a filter with a small timeout does not correspond to a long-lived
// stream); the evicted key is returned so the caller can reconcile its
// bookkeeping. Filter churn is driven by the engine's cutoff/priority
// decisions, and only the owning engine goroutine reconciles evictions
// against its stream table, so installation is engine-only.
//
//scap:onlyrole engine
func (n *NIC) AddFilter(spec FilterSpec) (evicted pkt.FlowKey, didEvict bool, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := spec
	err = n.filters.add(&s)
	if err == nil || spec.Signature {
		return pkt.FlowKey{}, false, err
	}
	evicted, didEvict = n.filters.evictEarliest()
	if !didEvict {
		return pkt.FlowKey{}, false, err
	}
	if err := n.filters.add(&s); err != nil {
		return evicted, true, fmt.Errorf("nic: add after eviction: %w", err)
	}
	return evicted, true, nil
}

// RemoveFilters removes all filters for key and reports how many were
// removed. Engine-only, like AddFilter: removal mirrors the engine's
// stream-table bookkeeping.
//
//scap:onlyrole engine
func (n *NIC) RemoveFilters(key pkt.FlowKey, signature bool) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.filters.removeKey(key, signature)
}

// FilterCount returns the number of installed (perfect, signature) filters.
func (n *NIC) FilterCount() (perfect, signature int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.filters.nPerfect, n.filters.nSignature
}

// Stats returns a snapshot of the NIC counters.
func (n *NIC) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// PublishMetrics registers the NIC counters in reg as func-backed
// instruments (each read takes the NIC mutex briefly, like Stats) and
// routes ring-full episodes to the registry's event log. Call once per
// registry, before capture starts.
func (n *NIC) PublishMetrics(reg *metrics.Registry) {
	field := func(f func(*Stats) uint64) func() uint64 {
		return func() uint64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			return f(&n.stats)
		}
	}
	reg.NewCounterFunc(metrics.Desc{Name: "nic_frames_total", Help: "frames offered to the NIC", Unit: "frames", Paper: "Fig. 7 offered load"},
		field(func(s *Stats) uint64 { return s.Received }))
	reg.NewCounterFunc(metrics.Desc{Name: "nic_dropped_filter_total", Help: "frames dropped by FDIR drop filters", Unit: "frames", Paper: "§5.5 subzero copy", Family: "drops", Cause: "fdir"},
		field(func(s *Stats) uint64 { return s.DroppedFilter }))
	reg.NewCounterFuncPerCore(metrics.Desc{Name: "nic_dropped_ring_total", Help: "frames lost to full receive rings", Unit: "frames", Paper: "Fig. 7 dropped at NIC", Family: "drops", Cause: "ring_full"},
		field(func(s *Stats) uint64 { return s.DroppedRing }),
		func(dst []uint64) []uint64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			return append(dst, n.ringDrops...)
		})
	reg.NewCounterFunc(metrics.Desc{Name: "nic_redirected_total", Help: "frames steered by load-balancing filters", Unit: "frames", Paper: "§2.4 dynamic balance"},
		field(func(s *Stats) uint64 { return s.Redirected }))
	reg.NewCounterFunc(metrics.Desc{Name: "nic_decode_failures_total", Help: "undecodable frames delivered nowhere", Unit: "frames", Paper: ""},
		field(func(s *Stats) uint64 { return s.DecodeFailures }))
	n.mu.Lock()
	n.events = reg.Events()
	n.flight = reg.Flight()
	n.mu.Unlock()
}

// Highwater returns the maximum occupancy queue q has reached.
func (n *NIC) Highwater(q int) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.highwater[q]
}
