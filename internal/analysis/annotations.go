package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Source annotations recognized by the analyzers.
const (
	// hotpathMarker marks a function as part of the per-packet path.
	hotpathMarker = "scap:hotpath"
	// sharedMarker marks a type as accessed by more than one goroutine.
	sharedMarker = "scap:shared"
	// publicapiMarker marks a package (via any file) as audited public
	// API: every exported symbol must carry a doc comment.
	publicapiMarker = "scap:publicapi"
	// ignoreMarker suppresses diagnostics on its line or the line below.
	ignoreMarker = "scaplint:ignore"

	// goroutineMarker marks a function as a goroutine entry point running
	// under the named role: "//scap:goroutine <role> [prose]".
	goroutineMarker = "scap:goroutine"
	// ownerMarker marks a struct whose methods may only be reached from
	// the named role's goroutines: "//scap:owner <role>".
	ownerMarker = "scap:owner"
	// spscMarker marks a single-producer/single-consumer type:
	// "//scap:spsc producer=<role> consumer=<role>".
	spscMarker = "scap:spsc"
	// produceMarker marks a producer-side method of an spsc type:
	// "//scap:produce [TypeName]" (TypeName defaults to the receiver).
	produceMarker = "scap:produce"
	// consumeMarker marks a consumer-side method of an spsc type.
	consumeMarker = "scap:consume"
	// anyroleMarker exempts one method of an owned struct from the owner
	// constraint: "//scap:anyrole <why it is safe from any goroutine>".
	anyroleMarker = "scap:anyrole"
	// onlyroleMarker constrains a single function to the listed roles:
	// "//scap:onlyrole <role> [role...]".
	onlyroleMarker = "scap:onlyrole"
	// atomicsMarker marks a struct whose every field must be a sync/atomic
	// type (or padding, or a nested //scap:atomics struct).
	atomicsMarker = "scap:atomics"
)

// hasMarker reports whether any comment line of cg is "//<marker>" with
// optional trailing prose.
func hasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

// markerArgs returns the whitespace-separated tokens following marker on
// the first comment line of cg that carries it, and whether the marker was
// present at all. "//scap:goroutine engine one per queue" yields
// ["engine", "one", "per", "queue"]; callers decide how many leading
// tokens are arguments and treat the rest as prose.
func markerArgs(cg *ast.CommentGroup, marker string) ([]string, bool) {
	if cg == nil {
		return nil, false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		rest, ok := strings.CutPrefix(text, marker)
		if !ok {
			continue
		}
		if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
			continue // e.g. scap:hotpathx
		}
		return strings.Fields(rest), true
	}
	return nil, false
}

// hotpathFuncs returns the functions of p marked //scap:hotpath.
func hotpathFuncs(p *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && hasMarker(fd.Doc, hotpathMarker) {
				out = append(out, fd)
			}
		}
	}
	return out
}

// namedStruct is one struct type declaration together with its markers.
type namedStruct struct {
	Name   string
	Spec   *ast.TypeSpec
	Struct *ast.StructType
	Shared bool
}

// structTypes returns every struct type declared in p. The //scap:shared
// marker is honored on both the TypeSpec and its enclosing GenDecl doc.
func structTypes(p *Package) []namedStruct {
	var out []namedStruct
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				shared := hasMarker(ts.Doc, sharedMarker) ||
					(len(gd.Specs) == 1 && hasMarker(gd.Doc, sharedMarker))
				out = append(out, namedStruct{Name: ts.Name.Name, Spec: ts, Struct: st, Shared: shared})
			}
		}
	}
	return out
}

// guardedFields parses "guarded by <mutex>" annotations from a struct's
// field comments (doc comment above or line comment beside the field) and
// returns fieldName -> mutexFieldName.
func guardedFields(st *ast.StructType) map[string]string {
	guards := make(map[string]string)
	for _, field := range st.Fields.List {
		mu := guardName(field.Doc)
		if mu == "" {
			mu = guardName(field.Comment)
		}
		if mu == "" {
			continue
		}
		for _, name := range field.Names {
			guards[name.Name] = mu
		}
	}
	return guards
}

// guardName extracts the mutex name following "guarded by" in a comment
// group, or "" if absent.
func guardName(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		text := strings.ToLower(c.Text)
		idx := strings.Index(text, "guarded by ")
		if idx < 0 {
			continue
		}
		rest := c.Text[idx+len("guarded by "):]
		name := strings.FieldsFunc(rest, func(r rune) bool {
			return !isIdentRune(r)
		})
		if len(name) > 0 {
			return name[0]
		}
	}
	return ""
}

func isIdentRune(r rune) bool {
	return r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
}

// methodsOf returns the methods declared on type name (any receiver form).
func methodsOf(p *Package, name string) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			if receiverTypeName(fd) == name {
				out = append(out, fd)
			}
		}
	}
	return out
}

// receiverTypeName returns the bare type name of a method's receiver.
func receiverTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// receiverName returns the receiver variable's name, or "" for _ / unnamed.
func receiverName(fd *ast.FuncDecl) string {
	names := fd.Recv.List[0].Names
	if len(names) == 0 {
		return ""
	}
	return names[0].Name
}

// --- suppressions ---

// ignoreDirective is one parsed //scaplint:ignore comment. Analyzer is ""
// for a bare directive (which suppresses every analyzer); Reason is the
// free text after the analyzer name. used is set when the directive
// suppresses at least one diagnostic during a run.
type ignoreDirective struct {
	Pos      token.Position
	Analyzer string
	Reason   string
	used     bool
}

type suppressionSet struct {
	directives []*ignoreDirective
	// byLine maps filename -> line -> directives on that line.
	byLine map[string]map[int][]*ignoreDirective
}

func newSuppressionSet() *suppressionSet {
	return &suppressionSet{byLine: make(map[string]map[int][]*ignoreDirective)}
}

// collect adds every //scaplint:ignore comment of p to the set.
func (s *suppressionSet) collect(p *Package) {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, ignoreMarker)
				if !ok {
					continue
				}
				// A later "//" starts a new comment on the same line (the
				// fixture files pair directives with // want comments);
				// only the text before it belongs to the directive.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				dir := &ignoreDirective{Pos: p.Fset.Position(c.Pos())}
				if fields := strings.Fields(rest); len(fields) > 0 {
					dir.Analyzer = fields[0]
					dir.Reason = strings.TrimSpace(strings.Join(fields[1:], " "))
				}
				s.directives = append(s.directives, dir)
				lines := s.byLine[dir.Pos.Filename]
				if lines == nil {
					lines = make(map[int][]*ignoreDirective)
					s.byLine[dir.Pos.Filename] = lines
				}
				lines[dir.Pos.Line] = append(lines[dir.Pos.Line], dir)
			}
		}
	}
}

// suppressions collects every //scaplint:ignore comment in the package.
func (p *Package) suppressions() *suppressionSet {
	s := newSuppressionSet()
	s.collect(p)
	return s
}

// matches reports whether d is suppressed by an ignore comment on its own
// line or on the line directly above it, and marks every matching
// directive as used.
func (s *suppressionSet) matches(d Diagnostic) bool {
	lines := s.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range lines[line] {
			if dir.Analyzer == "" || dir.Analyzer == d.Analyzer {
				dir.used = true
				hit = true
			}
		}
	}
	return hit
}
