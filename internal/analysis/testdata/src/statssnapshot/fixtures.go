// Package fixtures exercises the statssnapshot analyzer: shared types
// whose snapshot getters race with counter mutations. Lines carrying a
// "want" comment must produce exactly one diagnostic; all other lines must
// stay clean.
package fixtures

import "sync"

// Counters mirrors an engine's statistics block.
type Counters struct {
	Frames uint64
	Bytes  uint64
}

// BadEngine reproduces the Engine.Stats() race: the kernel goroutine
// mutates the counters while readers copy them without synchronization.
//
//scap:shared
type BadEngine struct {
	stats Counters
}

// Stats returns a snapshot of the counters.
func (e *BadEngine) Stats() Counters { return e.stats } // want statssnapshot "returns e.stats by value"

func (e *BadEngine) handleFrame(n int) {
	e.stats.Frames++
	e.stats.Bytes += uint64(n)
}

// GoodEngine takes the same snapshot under a mutex on both sides.
//
//scap:shared
type GoodEngine struct {
	mu    sync.Mutex
	stats Counters
}

// Stats returns a snapshot of the counters.
func (e *GoodEngine) Stats() Counters {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

func (e *GoodEngine) handleFrame(n int) {
	e.mu.Lock()
	e.stats.Frames++
	e.stats.Bytes += uint64(n)
	e.mu.Unlock()
}

// HalfLocked locks the getter but not the writer: still a race.
//
//scap:shared
type HalfLocked struct {
	mu    sync.Mutex
	stats Counters
}

// Stats returns a snapshot of the counters.
func (h *HalfLocked) Stats() Counters {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats // want statssnapshot "mutates h.stats"
}

func (h *HalfLocked) handleFrame() {
	h.stats.Frames++
}

// LockedHelper writes through a *Locked helper, which documents that its
// callers hold the mutex: not flagged.
//
//scap:shared
type LockedHelper struct {
	mu    sync.Mutex
	stats Counters
}

// Stats returns a snapshot of the counters.
func (l *LockedHelper) Stats() Counters {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

func (l *LockedHelper) bumpLocked() { l.stats.Frames++ }

// SingleOwner is not marked //scap:shared: it belongs to one goroutine
// (like a per-core flow table) and unsynchronized snapshots are fine.
type SingleOwner struct {
	stats Counters
}

// Stats returns a snapshot of the counters.
func (s *SingleOwner) Stats() Counters { return s.stats }

func (s *SingleOwner) handleFrame() { s.stats.Frames++ }

// ReadOnly never mutates the struct it returns: a copy is always safe.
//
//scap:shared
type ReadOnly struct {
	limits Counters
}

// Limits returns the configured limits.
func (r *ReadOnly) Limits() Counters { return r.limits }
