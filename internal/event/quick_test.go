package event

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"scap/internal/flowtab"
)

func infoWithID(id uint64) flowtab.Info { return flowtab.Info{ID: id} }

// TestQueueMatchesReferenceFIFO drives the ring with random push/poll
// sequences and compares against a plain-slice FIFO model.
func TestQueueMatchesReferenceFIFO(t *testing.T) {
	type ops struct {
		Cap     int
		Actions []bool // true = push, false = poll
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(v []reflect.Value, r *rand.Rand) {
			o := ops{Cap: 1 + r.Intn(16), Actions: make([]bool, r.Intn(200))}
			for i := range o.Actions {
				o.Actions[i] = r.Intn(2) == 0
			}
			v[0] = reflect.ValueOf(o)
		},
	}
	seq := uint64(0)
	check := func(o ops) bool {
		q := NewQueue(o.Cap)
		// Capacities round up to a power of two; the model uses the
		// actual ring size.
		capacity := q.Cap()
		var model []uint64
		for _, push := range o.Actions {
			if push {
				seq++
				ev := Event{Info: infoWithID(seq)}
				ok := q.Push(ev)
				if ok != (len(model) < capacity) {
					return false
				}
				if ok {
					model = append(model, seq)
				}
			} else {
				ev, ok := q.Poll()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if ev.Info.ID != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}
