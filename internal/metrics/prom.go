package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus/OpenMetrics text exposition of a registry snapshot, so fleets
// can scrape /metrics?format=prom without speaking the custom JSON codec.
//
// Mapping choices:
//   - Per-core counters are exposed as one series per core with a core label
//     (summing at query time is the PromQL idiom); func-backed counters
//     without a per-core breakdown become a single unlabeled series.
//   - Power-of-two histograms become classic cumulative _bucket series with
//     le="2^i" bounds plus le="+Inf", _sum, and _count.
//   - A histogram's tail exemplar rides on its containing bucket in
//     OpenMetrics exemplar syntax (# {stream_id="..."} value timestamp),
//     linking a scrape's tail latency to a /debug/streams journal.

// PromContentType is the Content-Type of the exposition (OpenMetrics).
const PromContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteProm writes s in OpenMetrics text format, terminated by # EOF.
func WriteProm(w io.Writer, s Snapshot) error {
	bw := &promWriter{w: w}
	for _, c := range s.Counters {
		name := strings.TrimSuffix(c.Name, "_total")
		bw.header(name, c.Help, c.Unit, "counter")
		if len(c.PerCore) > 0 {
			for core, v := range c.PerCore {
				bw.line(name+"_total", fmt.Sprintf(`{core="%d"}`, core), float64(v), "")
			}
		} else {
			bw.line(name+"_total", "", float64(c.Total), "")
		}
	}
	for _, g := range s.Gauges {
		bw.header(g.Name, g.Help, g.Unit, "gauge")
		bw.line(g.Name, "", float64(g.Value), "")
	}
	for _, h := range s.Histograms {
		bw.histogram(h, s.TimeUnixNano)
	}
	if bw.err == nil {
		_, bw.err = io.WriteString(bw.w, "# EOF\n")
	}
	return bw.err
}

type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *promWriter) header(name, help, unit, typ string) {
	p.printf("# TYPE %s %s\n", name, typ)
	if unit != "" {
		p.printf("# UNIT %s %s\n", name, unit)
	}
	if help != "" {
		p.printf("# HELP %s %s\n", name, escapeHelp(help))
	}
}

// line writes one sample; exemplar, when non-empty, is appended after the
// value in OpenMetrics exemplar syntax.
func (p *promWriter) line(name, labels string, v float64, exemplar string) {
	p.printf("%s%s %s%s\n", name, labels, formatValue(v), exemplar)
}

func (p *promWriter) histogram(h HistogramSnap, snapNano int64) {
	p.header(h.Name, h.Help, h.Unit, "histogram")
	// Cumulative buckets in ascending le order; the overflow bucket (Le 0)
	// folds into +Inf.
	type bound struct {
		le    uint64 // 0 = +Inf
		count uint64
	}
	bounds := make([]bound, 0, len(h.Buckets))
	var overflow uint64
	for _, b := range h.Buckets {
		if b.Le == 0 {
			overflow += b.Count
			continue
		}
		bounds = append(bounds, bound{le: b.Le, count: b.Count})
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].le < bounds[j].le })

	exLabel, exStr := "", ""
	if h.Exemplar != nil {
		tsSec := float64(snapNano-h.Exemplar.AgeNano) / 1e9
		if tsSec < 0 {
			tsSec = 0
		}
		exLabel = fmt.Sprintf("%d", h.Exemplar.Le) // bucket carrying it; 0 = +Inf
		exStr = fmt.Sprintf(` # {stream_id="%d"} %s %s`,
			h.Exemplar.StreamID, formatValue(float64(h.Exemplar.Value)), formatValue(tsSec))
	}
	var cum uint64
	for _, b := range bounds {
		cum += b.count
		ex := ""
		if exStr != "" && exLabel == fmt.Sprintf("%d", b.le) {
			ex = exStr
		}
		p.line(h.Name+"_bucket", fmt.Sprintf(`{le="%d"}`, b.le), float64(cum), ex)
	}
	cum += overflow
	ex := ""
	if exStr != "" && exLabel == "0" {
		ex = exStr
	}
	p.line(h.Name+"_bucket", `{le="+Inf"}`, float64(cum), ex)
	p.line(h.Name+"_sum", "", float64(h.Sum), "")
	p.line(h.Name+"_count", "", float64(h.Count), "")
}

// formatValue renders floats the OpenMetrics way: integers without a
// fraction, everything else in shortest round-trip form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
