// Package mem implements Scap's stream-memory accounting and Prioritized
// Packet Loss (paper §2.2 and §7): a fixed memory budget shared by all
// stream data, a base threshold below which nothing is dropped, and n+1
// equally spaced watermarks above it that shed low-priority traffic first,
// with an optional overload cutoff that trims streams beyond a byte
// position while memory is tight.
package mem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"scap/internal/metrics"
)

// Decision is the PPL admission result for one packet.
type Decision uint8

const (
	// Admit stores the packet's payload.
	Admit Decision = iota
	// DropPriority sheds the packet because memory is above its
	// priority's watermark.
	DropPriority
	// DropOverloadCutoff sheds the packet because memory is in the
	// pressure region and the packet lies beyond the overload cutoff in
	// its stream.
	DropOverloadCutoff
	// DropNoMemory sheds the packet because the budget is exhausted.
	DropNoMemory
)

func (d Decision) String() string {
	switch d {
	case Admit:
		return "admit"
	case DropPriority:
		return "drop-priority"
	case DropOverloadCutoff:
		return "drop-overload-cutoff"
	case DropNoMemory:
		return "drop-no-memory"
	}
	return fmt.Sprintf("decision(%d)", uint8(d))
}

// Config parametrizes a Manager.
type Config struct {
	// Size is the total stream-memory budget in bytes (the paper's
	// memory_size; 1 GB in the evaluation).
	Size int64
	// BaseThreshold is the fraction of Size below which PPL never drops.
	// Zero selects the default of 0.9.
	BaseThreshold float64
	// Priorities is the number of priority levels in use (the paper's n).
	// Zero selects 1.
	Priorities int
	// OverloadCutoff, when > 0, drops bytes beyond this position in their
	// stream while memory is inside the pressure region.
	OverloadCutoff int64
	// Watermarks, when non-nil, replaces the equally spaced watermark
	// ladder with an explicit per-priority table (len == Priorities, each
	// value the usage fraction above which that priority is dropped). The
	// control plane derives it from per-priority sketch byte shares; nil
	// keeps the paper's equal spacing. Values are normalized by
	// SetWatermarks, the only writer.
	Watermarks []float64
	// BlockSize is the arena's block granularity in bytes — every chunk
	// lives in exactly one block, so it bounds chunk size (the engine sizes
	// it from ParamChunkSize + overlap headroom). Zero selects
	// DefaultBlockSize; values below the floor are clamped up.
	BlockSize int
	// Cores is the number of per-core block caches (one per capture queue).
	// Zero selects 1; cores beyond this index fall back to the shared
	// global free chain.
	Cores int
}

// Stats counts admission outcomes.
type Stats struct {
	Admitted        uint64
	DroppedPriority uint64
	DroppedCutoff   uint64
	DroppedNoMemory uint64
	HighWater       int64
}

// Manager tracks stream-memory usage and makes PPL decisions. It is a pure
// accounting object: callers reserve and release byte counts; the actual
// buffers live with the streams. One Manager is shared by every core of a
// Scap socket (the paper uses a single stream-memory buffer), so every core
// consults it per packet — the accounting is therefore lock-free: used is
// an atomic counter (Admit reserves with a CAS so a decision and its
// reservation are one atomic step against the budget), the stats are
// independent atomic counters, and the runtime-mutable configuration hangs
// off an atomic.Pointer that readers load once per decision. Only the Set*
// reconfiguration writers serialize, on cfgMu.
//
//scap:shared
type Manager struct {
	cfg atomic.Pointer[Config]
	// cfgMu serializes configuration writers (copy-on-write into cfg);
	// the per-packet paths never touch it.
	cfgMu sync.Mutex

	used atomic.Int64

	admitted        atomic.Uint64
	droppedPriority atomic.Uint64
	droppedCutoff   atomic.Uint64
	droppedNoMemory atomic.Uint64
	highWater       atomic.Int64

	// events (set once by PublishMetrics, before capture starts) receives
	// the PPL pressure-episode edges; underPPL and pplSince detect them.
	// Only the first drop of an episode and the release that ends it pay
	// more than one atomic load.
	events   atomic.Pointer[metrics.EventLog]
	flight   atomic.Pointer[metrics.FlightRecorder]
	underPPL atomic.Bool
	pplSince atomic.Int64

	// arena is the physical block store behind the byte accounting
	// (arena.go); built once by New, immutable afterwards.
	arena *arena
}

// New creates a Manager. Invalid configuration values are normalized.
func New(cfg Config) *Manager {
	if cfg.Size <= 0 {
		cfg.Size = 1 << 30
	}
	if cfg.BaseThreshold <= 0 || cfg.BaseThreshold > 1 {
		cfg.BaseThreshold = 0.9
	}
	if cfg.Priorities <= 0 {
		cfg.Priorities = 1
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	if cfg.BlockSize < minBlockSize {
		cfg.BlockSize = minBlockSize
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	// Watermark tables are installed only through SetWatermarks, which
	// normalizes them; a table smuggled in via the constructor is dropped.
	cfg.Watermarks = nil
	m := &Manager{}
	m.cfg.Store(&cfg)
	m.arena = newArena(cfg.Size, cfg.BlockSize, cfg.Cores)
	return m
}

// Close stops the arena's background segment committer and waits for it to
// exit. Idempotent. The Manager remains usable afterwards — segments still
// materialize inline on first touch — so late releases and metric reads are
// safe; Close only ends the proactive zeroing.
func (m *Manager) Close() { m.arena.shutdown() }

// Used returns the bytes currently reserved.
func (m *Manager) Used() int64 { return m.used.Load() }

// Size returns the configured budget.
func (m *Manager) Size() int64 { return m.cfg.Load().Size }

// BaseThreshold returns the PPL base threshold fraction in force (the floor
// of the watermark ladder). Safe from any goroutine.
func (m *Manager) BaseThreshold() float64 { return m.cfg.Load().BaseThreshold }

// UsedFraction returns used/size.
func (m *Manager) UsedFraction() float64 {
	return float64(m.used.Load()) / float64(m.cfg.Load().Size)
}

// ArenaUsedFraction returns the fraction of arena blocks currently held by
// chunks — the physical-occupancy companion to UsedFraction's byte
// accounting. Blocks are the binding resource under fragmentation (many
// part-filled chunks), so the control plane watches both.
func (m *Manager) ArenaUsedFraction() float64 {
	if m.arena.nblocks == 0 {
		return 0
	}
	return float64(m.arena.inUse.Load()) / float64(m.arena.nblocks)
}

// Stats returns a snapshot of the counters. Each counter is read
// atomically; the snapshot as a whole is not a consistent cut while
// admissions are in flight.
func (m *Manager) Stats() Stats {
	return Stats{
		Admitted:        m.admitted.Load(),
		DroppedPriority: m.droppedPriority.Load(),
		DroppedCutoff:   m.droppedCutoff.Load(),
		DroppedNoMemory: m.droppedNoMemory.Load(),
		HighWater:       m.highWater.Load(),
	}
}

// SetOverloadCutoff updates the overload cutoff at runtime
// (scap_set_parameter(SCAP_OVERLOAD_CUTOFF, v)).
func (m *Manager) SetOverloadCutoff(v int64) {
	m.cfgMu.Lock()
	defer m.cfgMu.Unlock()
	cfg := *m.cfg.Load()
	cfg.OverloadCutoff = v
	m.cfg.Store(&cfg)
}

// SetPriorities updates the number of priority levels in use.
func (m *Manager) SetPriorities(n int) {
	if n <= 0 {
		return
	}
	m.cfgMu.Lock()
	defer m.cfgMu.Unlock()
	cfg := *m.cfg.Load()
	cfg.Priorities = n
	m.cfg.Store(&cfg)
}

// Watermark returns the memory fraction above which priority level p
// (0 = lowest) is dropped: watermark_{p+1} in the paper's numbering, where
// watermark_0 = base_threshold and watermark_n = 1. When an explicit table
// was installed with SetWatermarks, it answers from that instead.
func (m *Manager) Watermark(p int) float64 {
	return watermark(m.cfg.Load(), p)
}

// Watermarks returns the effective per-priority watermark table (explicit
// table when installed, equal spacing otherwise). Cold path; the slice is a
// fresh copy.
func (m *Manager) Watermarks() []float64 {
	cfg := m.cfg.Load()
	w := make([]float64, cfg.Priorities)
	for p := range w {
		w[p] = watermark(cfg, p)
	}
	return w
}

// SetWatermarks installs an explicit per-priority watermark table, the
// control plane's actuation point for load-aware PPL (§7 follow-on: space
// the ladder by observed per-priority byte share instead of priority count).
// The table is normalized before install: values are clamped into
// (BaseThreshold, 1], forced monotone nondecreasing, and the top priority is
// pinned to 1 so the highest class is only ever shed by budget exhaustion.
// A nil or wrong-length table resets to the default equal spacing.
func (m *Manager) SetWatermarks(w []float64) {
	m.cfgMu.Lock()
	defer m.cfgMu.Unlock()
	cfg := *m.cfg.Load()
	if len(w) != cfg.Priorities {
		cfg.Watermarks = nil
		m.cfg.Store(&cfg)
		return
	}
	t := make([]float64, len(w))
	prev := cfg.BaseThreshold
	for p, v := range w {
		if v < prev {
			v = prev
		}
		if v > 1 {
			v = 1
		}
		t[p] = v
		prev = v
	}
	t[len(t)-1] = 1
	cfg.Watermarks = t
	m.cfg.Store(&cfg)
}

func watermark(cfg *Config, p int) float64 {
	n := cfg.Priorities
	if p >= n {
		p = n - 1
	}
	if p < 0 {
		p = 0
	}
	if len(cfg.Watermarks) == n {
		return cfg.Watermarks[p]
	}
	base := cfg.BaseThreshold
	return base + (1-base)*float64(p+1)/float64(n)
}

// Admit decides the fate of size payload bytes of a packet with the given
// priority (0 = lowest) whose first byte sits at streamPos within its
// stream. On Admit the bytes are reserved; every other decision reserves
// nothing. The decision and its reservation commit together via CAS on
// used, so concurrent admitters can never jointly overshoot the budget.
//
//scap:hotpath
func (m *Manager) Admit(priority int, streamPos int64, size int) Decision {
	cfg := m.cfg.Load()
	for {
		used := m.used.Load()
		d := decide(cfg, used, priority, streamPos, size)
		if d != Admit {
			m.countDrop(d)
			return d
		}
		if m.used.CompareAndSwap(used, used+int64(size)) {
			m.noteHighWater(used + int64(size))
			m.admitted.Add(1)
			return Admit
		}
		// Lost the race against another reservation or release; the
		// decision inputs changed, so re-decide against the new usage.
	}
}

// Decide is Admit without the reservation: the engine uses it to gate
// reassembly, then accounts the actual bytes stored in chunks via Reserve
// (duplicate and out-of-order bytes never hit the budget twice).
//
//scap:hotpath
func (m *Manager) Decide(priority int, streamPos int64, size int) Decision {
	d := decide(m.cfg.Load(), m.used.Load(), priority, streamPos, size)
	if d != Admit {
		m.countDrop(d)
	}
	return d
}

// decide is the pure PPL function: no state is touched, so callers can
// retry it inside a CAS loop without double-counting.
func decide(cfg *Config, used int64, priority int, streamPos int64, size int) Decision {
	if int64(size) > cfg.Size-used {
		return DropNoMemory
	}
	frac := float64(used+int64(size)) / float64(cfg.Size)
	if frac > cfg.BaseThreshold {
		if frac > watermark(cfg, priority) {
			return DropPriority
		}
		if cfg.OverloadCutoff > 0 && streamPos >= cfg.OverloadCutoff {
			return DropOverloadCutoff
		}
	}
	return Admit
}

func (m *Manager) countDrop(d Decision) {
	switch d {
	case DropPriority:
		m.droppedPriority.Add(1)
	case DropOverloadCutoff:
		m.droppedCutoff.Add(1)
	case DropNoMemory:
		m.droppedNoMemory.Add(1)
	}
	if !m.underPPL.Load() {
		m.pplEnter()
	}
}

// pplEnter opens a pressure episode on the first drop after calm. The CAS
// makes the edge fire once even with every core dropping concurrently.
func (m *Manager) pplEnter() {
	l := m.events.Load()
	if l == nil || !m.underPPL.CompareAndSwap(false, true) {
		return
	}
	ts := l.Now()
	m.pplSince.Store(ts)
	cfg := m.cfg.Load()
	perMille := m.used.Load() * 1000 / cfg.Size
	l.Record(metrics.Event{
		Kind:         metrics.EvPPLEnter,
		TimeUnixNano: ts,
		Value:        perMille,
	})
	if f := m.flight.Load(); f != nil {
		f.Note(0, metrics.FlightPPLEnter, perMille, 0)
	}
}

// pplExitCheck closes the episode once usage falls back below the base
// threshold, recording how long the pressure lasted.
func (m *Manager) pplExitCheck(used int64) {
	cfg := m.cfg.Load()
	if float64(used) >= cfg.BaseThreshold*float64(cfg.Size) {
		return
	}
	l := m.events.Load()
	if l == nil || !m.underPPL.CompareAndSwap(true, false) {
		return
	}
	ts := l.Now()
	dur := ts - m.pplSince.Load()
	l.Record(metrics.Event{Kind: metrics.EvPPLExit, TimeUnixNano: ts, Dur: dur})
	if f := m.flight.Load(); f != nil {
		f.Note(0, metrics.FlightPPLExit, dur, 0)
	}
}

// UnderPPL reports whether a PPL pressure episode is currently open — one
// atomic load, so hot-path callers can gate pressure-only bookkeeping on it.
//
//scap:hotpath
func (m *Manager) UnderPPL() bool { return m.underPPL.Load() }

// noteHighWater advances the high-water mark monotonically.
func (m *Manager) noteHighWater(used int64) {
	for {
		hw := m.highWater.Load()
		if used <= hw || m.highWater.CompareAndSwap(hw, used) {
			return
		}
	}
}

// Reserve grabs size bytes unconditionally (used for bookkeeping that must
// not fail, e.g. handshake packets, which Scap always captures). It reports
// whether the budget could cover it; on false the reservation still happens
// so accounting stays truthful, and callers should shed load.
//
//scap:hotpath
func (m *Manager) Reserve(size int) bool {
	used := m.used.Add(int64(size))
	m.noteHighWater(used)
	return used <= m.cfg.Load().Size
}

// Release returns size bytes to the budget (chunk consumed by the
// application, stream discarded, etc.).
//
//scap:hotpath
func (m *Manager) Release(size int) {
	used := m.used.Add(-int64(size))
	if used < 0 {
		//scaplint:ignore hotpathalloc panic path: only reached on an accounting bug, never in steady state
		panic(fmt.Sprintf("mem: released more than reserved (used=%d)", used))
	}
	// One atomic load in steady state; the episode-closing work only runs
	// while a PPL pressure episode is open.
	if m.underPPL.Load() {
		m.pplExitCheck(used)
	}
}

// PublishMetrics registers the manager's accounting in reg as func-backed
// instruments reading the existing atomics (no double bookkeeping) and
// routes PPL pressure-episode events to the registry's event log. Call once
// per registry, before capture starts.
func (m *Manager) PublishMetrics(reg *metrics.Registry) {
	reg.NewCounterFunc(metrics.Desc{Name: "mem_admitted_total", Help: "packet admissions by PPL", Unit: "packets", Paper: "§2.2"}, m.admitted.Load)
	reg.NewCounterFunc(metrics.Desc{Name: "mem_dropped_priority_total", Help: "admissions refused above a priority watermark", Unit: "packets", Paper: "Fig. 9 PPL drops"}, m.droppedPriority.Load)
	reg.NewCounterFunc(metrics.Desc{Name: "mem_dropped_cutoff_total", Help: "admissions refused by the overload cutoff", Unit: "packets", Paper: "§2.2 overload cutoff"}, m.droppedCutoff.Load)
	reg.NewCounterFunc(metrics.Desc{Name: "mem_dropped_nomem_total", Help: "admissions refused with the budget exhausted", Unit: "packets", Paper: "§2.2"}, m.droppedNoMemory.Load)
	reg.NewGaugeFunc(metrics.Desc{Name: "memory_used_bytes", Help: "stream memory currently reserved", Unit: "bytes", Paper: "§2.2 stream memory"}, m.used.Load)
	reg.NewGaugeFunc(metrics.Desc{Name: "memory_highwater_bytes", Help: "peak stream-memory usage", Unit: "bytes", Paper: "§2.2 stream memory"}, m.highWater.Load)
	reg.NewGaugeFunc(metrics.Desc{Name: "memory_size_bytes", Help: "configured stream-memory budget", Unit: "bytes", Paper: "§2.2 memory_size"}, func() int64 { return m.cfg.Load().Size })
	a := m.arena
	reg.NewGaugeFunc(metrics.Desc{Name: "arena_blocks_total", Help: "arena capacity in blocks", Unit: "blocks", Paper: "§2.2 memory blocks"}, func() int64 { return int64(a.nblocks) })
	reg.NewGaugeFunc(metrics.Desc{Name: "arena_block_size_bytes", Help: "arena block granularity", Unit: "bytes", Paper: "§2.2 memory blocks"}, func() int64 { return int64(a.blockSize) })
	reg.NewGaugeFunc(metrics.Desc{Name: "arena_blocks_inuse", Help: "arena blocks currently held by chunks", Unit: "blocks", Paper: "§2.2 memory blocks"}, a.inUse.Load)
	reg.NewGaugeFunc(metrics.Desc{Name: "arena_segments_committed", Help: "arena segments materialized (zeroed) so far", Unit: "segments", Paper: "§2.2 memory blocks"}, func() int64 { return int64(a.committed.Load()) })
	reg.NewGaugeFunc(metrics.Desc{Name: "arena_freelist_global", Help: "blocks on the shared global free chain", Unit: "blocks", Paper: "§2.2 memory blocks"}, a.gcount.Load)
	for i := range a.cores {
		c := &a.cores[i]
		reg.NewGaugeFunc(metrics.Desc{
			Name: fmt.Sprintf("arena_freelist_core%d", i),
			Help: fmt.Sprintf("free blocks cached by core %d (local stack + return ring)", i),
			Unit: "blocks", Paper: "§2.2 memory blocks",
		}, func() int64 { return int64(c.depth.Load()) + c.ringDepth() })
	}
	m.events.Store(reg.Events())
	m.flight.Store(reg.Flight())
}
