// Arena-backed block allocator: the physical half of the paper's stream
// memory (§2.2). The Manager's byte accounting (Admit/Reserve/Release) stays
// the PPL admission front-end; the arena is what makes MemorySize a real
// bound — every chunk's bytes live in one fixed-size block carved from a
// budget-sized arena, recycled through per-core free-lists instead of the
// garbage collector.
//
// Concurrency model (mirrors the engine/worker split):
//
//   - Each core's kernel-path engine is the single owner of that core's
//     local free-stack: AllocBlock and FreeBlock touch it without atomics.
//   - The worker draining a core's event ring is the single producer of
//     that core's SPSC return ring (ReturnBlocks); the owning engine is the
//     single consumer (refill during AllocBlock). Cursor atomics carry the
//     happens-before edges, exactly like the event ring.
//   - The global free chain is a tag-versioned Treiber stack shared by all
//     cores: refill pops a batch, spill pushes a batch, each one CAS.
//
// The arena itself is segmented and lazily committed: block descriptors and
// payload storage materialize one segment at a time as the frontier advances,
// so a 1 GiB budget does not cost 1 GiB of touched memory in short runs. A
// background committer keeps a window of segments zeroed ahead of the
// frontier (the paper's startup pre-allocation, made incremental), so in
// steady state the capture path never pays the commit cost itself.
package mem

import (
	"sync"
	"sync/atomic"
)

// Handle names one arena block. The zero value (NoBlock) means "no block",
// so zero-valued events and control messages are always safe to release.
// Internally a handle is the block index plus one.
type Handle int32

// NoBlock is the null block handle.
const NoBlock Handle = 0

const (
	// DefaultBlockSize is the block granularity when Config.BlockSize is
	// unset: headroom for the default 16 KiB chunk (see core.ArenaBlockSize).
	DefaultBlockSize = 32 << 10
	// minBlockSize floors the configured granularity so tiny chunk sizes do
	// not explode the block count.
	minBlockSize = 1 << 10
	// maxBlocks caps the descriptor table (4M blocks covers a 4 GiB budget
	// at the minimum block size).
	maxBlocks = 1 << 22

	// segShift/segBlocks size one lazily-committed arena segment.
	segShift  = 8
	segBlocks = 1 << segShift

	// localCap bounds a core's private free-stack; beyond it, half spills
	// to the global chain so idle cores do not hoard blocks.
	localCap = 128
	// xferBatch is how many blocks move between a core cache and the
	// global chain per refill or spill.
	xferBatch = 32
	// ringCap (a power of two) sizes the per-core SPSC return ring. A full
	// ring spills to the global chain, so capacity only bounds the fast path.
	ringCap = 1 << 10

	// commitAhead is how many segments the background committer keeps zeroed
	// beyond the frontier's segment, bounding both the startup commit of an
	// idle socket and the odds of the capture path ever committing inline.
	commitAhead = 4
)

// segment is one lazily-committed slice of the arena: payload storage plus
// the per-block descriptor columns.
type segment struct {
	data []byte
	// links holds each block's successor on the global free chain
	// (handle-encoded: index+1, 0 terminates). Atomic because a chain
	// walker may race a link's reuse; the chain head's tag invalidates the
	// walk, but the read itself must be well-defined.
	links []atomic.Int32
	// attach holds each block's recyclable attachment (SetBlockAttachment).
	// Only the block's current owner touches it; ownership transfer through
	// the free structures carries the happens-before edge.
	attach []any
}

// coreCache is one core's block cache: the engine-owned local stack and the
// worker-fed SPSC return ring. Padding keeps the two sides' cursors on
// separate cache lines.
//
//scap:spsc producer=worker consumer=engine
type coreCache struct {
	// local is the engine-private free-stack (single goroutine, no atomics);
	// depth mirrors len(local) for metrics readers.
	local []int32
	depth atomic.Int32
	// rhead is the return ring's consumer cursor (the engine).
	rhead atomic.Uint64
	_     [64]byte
	// rtail is the producer cursor (the worker returning blocks).
	rtail atomic.Uint64
	_     [64]byte
	ring  []int32
}

// arena is the block allocator state hanging off a Manager.
type arena struct {
	blockSize int
	nblocks   int32

	// segMu guards segment creation; segs entries flip nil→pointer once and
	// are then immutable, so readers go through the atomic pointer only.
	segMu sync.Mutex
	segs  []atomic.Pointer[segment]

	// frontier is the lowest never-handed-out block index; inUse counts
	// blocks currently held by callers (chunks in flight or under
	// construction).
	frontier atomic.Int32
	inUse    atomic.Int64

	// ghead is the global free chain: tag<<32 | head handle. The tag
	// increments on every successful push or pop, defusing ABA on the CAS.
	ghead  atomic.Uint64
	gcount atomic.Int64

	// committed counts materialized segments (for metrics; bumped under
	// segMu). kick wakes the background committer when the frontier nears
	// its window; stopped + kick ends it, done confirms exit.
	committed atomic.Int32
	kick      chan struct{}
	stopped   atomic.Bool
	done      chan struct{}

	cores []coreCache
}

func newArena(size int64, blockSize, cores int) *arena {
	nb := size / int64(blockSize)
	if nb < 1 {
		nb = 1
	}
	if nb > maxBlocks {
		nb = maxBlocks
	}
	if cores < 1 {
		cores = 1
	}
	a := &arena{blockSize: blockSize, nblocks: int32(nb)}
	a.segs = make([]atomic.Pointer[segment], (int(nb)+segBlocks-1)/segBlocks)
	a.cores = make([]coreCache, cores)
	for i := range a.cores {
		a.cores[i].local = make([]int32, 0, localCap)
		a.cores[i].ring = make([]int32, ringCap)
	}
	a.kick = make(chan struct{}, 1)
	a.done = make(chan struct{})
	go a.committer()
	return a
}

// committer is the background segment-zeroing goroutine: it keeps up to
// commitAhead segments materialized beyond the frontier's segment, then
// parks until takeFrontier kicks it (or the arena shuts down). The capture
// path only commits inline (seg → growSeg) if allocation outruns this
// goroutine.
//
//scap:goroutine committer
func (a *arena) committer() {
	defer close(a.done)
	si := 0
	for {
		if a.stopped.Load() {
			return
		}
		target := int(a.frontier.Load())>>segShift + 1 + commitAhead
		if target > len(a.segs) {
			target = len(a.segs)
		}
		for si < target {
			if a.stopped.Load() {
				return
			}
			a.growSeg(si)
			si++
		}
		if si >= len(a.segs) {
			return
		}
		<-a.kick
	}
}

// shutdown stops the background committer and waits for it to exit.
// Idempotent; safe concurrently with allocation (remaining commits just
// happen inline).
func (a *arena) shutdown() {
	a.stopped.Store(true)
	select {
	case a.kick <- struct{}{}:
	default:
	}
	<-a.done
}

// cache returns core's cache, or nil for out-of-range cores (standalone
// engines beyond Config.Cores fall back to the shared chain, which is safe
// from any goroutine).
func (a *arena) cache(core int) *coreCache {
	if core < 0 || core >= len(a.cores) {
		return nil
	}
	return &a.cores[core]
}

// seg returns the segment holding block idx, committing it on first touch.
func (a *arena) seg(idx int32) *segment {
	si := int(idx) >> segShift
	if s := a.segs[si].Load(); s != nil {
		return s
	}
	return a.growSeg(si)
}

func (a *arena) growSeg(si int) *segment {
	a.segMu.Lock()
	defer a.segMu.Unlock()
	if s := a.segs[si].Load(); s != nil {
		return s
	}
	// The last segment only covers the blocks the budget actually has.
	n := int(a.nblocks) - si*segBlocks
	if n > segBlocks {
		n = segBlocks
	}
	s := &segment{
		data:   make([]byte, n*a.blockSize),
		links:  make([]atomic.Int32, n),
		attach: make([]any, n),
	}
	a.segs[si].Store(s)
	a.committed.Add(1)
	return s
}

// bytes returns block idx's full-capacity storage view.
func (a *arena) bytes(idx int32) []byte {
	s := a.seg(idx)
	off := (int(idx) & (segBlocks - 1)) * a.blockSize
	return s.data[off : off+a.blockSize : off+a.blockSize]
}

func (a *arena) link(idx int32) *atomic.Int32 {
	return &a.seg(idx).links[int(idx)&(segBlocks-1)]
}

const handleBits = (1 << 32) - 1

// pushGlobal links the given block indices into a chain and prepends it to
// the global free chain with one tagged CAS.
func (a *arena) pushGlobal(blocks []int32) {
	n := len(blocks)
	if n == 0 {
		return
	}
	for i := 0; i < n-1; i++ {
		a.link(blocks[i]).Store(blocks[i+1] + 1)
	}
	last := a.link(blocks[n-1])
	first := uint64(uint32(blocks[0] + 1))
	for {
		old := a.ghead.Load()
		last.Store(int32(old & handleBits))
		if a.ghead.CompareAndSwap(old, (old>>32+1)<<32|first) {
			a.gcount.Add(int64(n))
			return
		}
	}
}

// popGlobal pops up to max block indices off the global chain into dst.
// A racing push or pop bumps the head's tag and fails the CAS, so a walk
// over links that were concurrently recycled is retried, never committed.
func (a *arena) popGlobal(dst []int32, max int) int {
	for {
		old := a.ghead.Load()
		cur := int32(old & handleBits)
		if cur == 0 {
			return 0
		}
		n := 0
		for n < max && cur != 0 {
			dst[n] = cur - 1
			n++
			cur = a.link(cur - 1).Load()
		}
		if a.ghead.CompareAndSwap(old, (old>>32+1)<<32|uint64(uint32(cur))) {
			a.gcount.Add(int64(-n))
			return n
		}
	}
}

// takeFrontier claims up to want never-used blocks, returning the first
// index and the count (0 when the arena is fully committed).
func (a *arena) takeFrontier(want int32) (int32, int32) {
	for {
		f := a.frontier.Load()
		if f >= a.nblocks {
			return 0, 0
		}
		take := want
		if f+take > a.nblocks {
			take = a.nblocks - f
		}
		if a.frontier.CompareAndSwap(f, f+take) {
			// Nudge the committer to keep its zeroed window ahead of the
			// new frontier. Non-blocking: a full kick channel means it is
			// already awake.
			select {
			case a.kick <- struct{}{}:
			default:
			}
			return f, take
		}
	}
}

// drainRing moves returned blocks from the core's SPSC ring into its local
// stack. Consumer side: only the engine owning core calls this.
//
//scap:consume coreCache
func (a *arena) drainRing(c *coreCache) {
	h := c.rhead.Load()
	t := c.rtail.Load()
	for h < t && len(c.local) < cap(c.local) {
		c.local = append(c.local, c.ring[h&(ringCap-1)])
		h++
	}
	c.rhead.Store(h)
	c.depth.Store(int32(len(c.local)))
}

// ringDepth reports how many returned blocks wait in the core's ring (for
// metrics; racy snapshot).
func (c *coreCache) ringDepth() int64 {
	t := c.rtail.Load()
	h := c.rhead.Load()
	if t <= h {
		return 0
	}
	return int64(t - h)
}

// AllocBlock grabs a free block for the given core and returns its handle
// plus the full-capacity storage view. It returns NoBlock when the arena is
// exhausted — the physical MemorySize bound. Only the engine owning core may
// call it (single-writer local stack); out-of-range cores use the shared
// chain.
//
//scap:hotpath
//scap:consume coreCache
func (m *Manager) AllocBlock(core int) (Handle, []byte) {
	a := m.arena
	c := a.cache(core)
	if c != nil {
		if n := len(c.local); n > 0 {
			idx := c.local[n-1]
			c.local = c.local[:n-1]
			c.depth.Store(int32(n - 1))
			a.inUse.Add(1)
			return Handle(idx + 1), a.bytes(idx)
		}
	}
	return m.allocSlow(c)
}

// allocSlow refills the core's stack from the return ring, the global chain,
// or the arena frontier, in that order. Cold: runs only on an empty stack.
func (m *Manager) allocSlow(c *coreCache) (Handle, []byte) {
	a := m.arena
	if c == nil {
		var one [1]int32
		if a.popGlobal(one[:], 1) == 0 {
			f, n := a.takeFrontier(1)
			if n == 0 {
				return NoBlock, nil
			}
			one[0] = f
		}
		a.inUse.Add(1)
		return Handle(one[0] + 1), a.bytes(one[0])
	}
	a.drainRing(c)
	if len(c.local) == 0 {
		if n := a.popGlobal(c.local[:xferBatch], xferBatch); n > 0 {
			c.local = c.local[:n]
		}
	}
	if len(c.local) == 0 {
		f, n := a.takeFrontier(xferBatch)
		if n == 0 {
			c.depth.Store(0)
			return NoBlock, nil
		}
		// Stack them high-to-low so allocation proceeds in address order.
		c.local = c.local[:n]
		for i := int32(0); i < n; i++ {
			c.local[i] = f + n - 1 - i
		}
	}
	n := len(c.local)
	idx := c.local[n-1]
	c.local = c.local[:n-1]
	c.depth.Store(int32(n - 1))
	a.inUse.Add(1)
	return Handle(idx + 1), a.bytes(idx)
}

// FreeBlock returns a block to the core's free-stack. Engine side only (the
// same single-writer rule as AllocBlock); the worker path uses ReturnBlocks.
//
//scap:hotpath
//scap:consume coreCache
func (m *Manager) FreeBlock(core int, h Handle) {
	if h == NoBlock {
		return
	}
	a := m.arena
	c := a.cache(core)
	if c == nil || len(c.local) == cap(c.local) {
		m.freeSlow(c, h)
		return
	}
	n := len(c.local)
	c.local = c.local[:n+1]
	c.local[n] = int32(h - 1)
	c.depth.Store(int32(n + 1))
	a.inUse.Add(-1)
}

// freeSlow spills half the core's stack to the global chain (or, with no
// cache, pushes the block straight there). Cold path.
func (m *Manager) freeSlow(c *coreCache, h Handle) {
	a := m.arena
	if c != nil {
		a.pushGlobal(c.local[:xferBatch])
		keep := copy(c.local, c.local[xferBatch:])
		c.local = c.local[:keep+1]
		c.local[keep] = int32(h - 1)
		c.depth.Store(int32(keep + 1))
		a.inUse.Add(-1)
		return
	}
	one := [1]int32{int32(h - 1)}
	a.pushGlobal(one[:])
	a.inUse.Add(-1)
}

// ReturnBlock hands one delivered block back from the worker side.
//
//scap:produce coreCache
func (m *Manager) ReturnBlock(core int, h Handle) {
	hs := [1]Handle{h}
	m.ReturnBlocks(core, hs[:])
}

// ReturnBlocks hands delivered blocks back to core's free pool from the
// worker side. The caller must be the single worker draining core's event
// queue (the ring is SPSC); a full ring spills to the global chain. One
// cursor publication covers the whole batch.
//
//scap:produce coreCache
func (m *Manager) ReturnBlocks(core int, hs []Handle) {
	a := m.arena
	c := a.cache(core)
	if c == nil {
		for _, h := range hs {
			if h == NoBlock {
				continue
			}
			one := [1]int32{int32(h - 1)}
			a.pushGlobal(one[:])
			a.inUse.Add(-1)
		}
		return
	}
	t := c.rtail.Load()
	head := c.rhead.Load()
	freed := int64(0)
	for _, h := range hs {
		if h == NoBlock {
			continue
		}
		if t-head >= ringCap {
			head = c.rhead.Load()
			if t-head >= ringCap {
				one := [1]int32{int32(h - 1)}
				a.pushGlobal(one[:])
				freed++
				continue
			}
		}
		c.ring[t&(ringCap-1)] = int32(h - 1)
		t++
		freed++
	}
	c.rtail.Store(t)
	a.inUse.Add(-freed)
}

// BlockSize returns the arena's block granularity in bytes — the hard upper
// bound on a chunk's size.
func (m *Manager) BlockSize() int { return m.arena.blockSize }

// Blocks returns the arena's total block count.
func (m *Manager) Blocks() int { return int(m.arena.nblocks) }

// BlocksInUse returns how many blocks are currently held by callers.
func (m *Manager) BlocksInUse() int64 { return m.arena.inUse.Load() }

// BlockBytes returns the full-capacity storage of a block (nil for NoBlock).
// Only the block's current owner may write through it.
func (m *Manager) BlockBytes(h Handle) []byte {
	if h == NoBlock {
		return nil
	}
	return m.arena.bytes(int32(h - 1))
}

// BlockAttachment returns the block's attachment (see SetBlockAttachment),
// or nil.
func (m *Manager) BlockAttachment(h Handle) any {
	if h == NoBlock {
		return nil
	}
	idx := int32(h - 1)
	return m.arena.seg(idx).attach[int(idx)&(segBlocks-1)]
}

// SetBlockAttachment stores an owner-defined sidecar on the block that
// recycles with it (the engine parks each chunk's packet-record slab here,
// so record storage is reused block-for-block instead of reallocated). Only
// the block's current owner may call it; ownership hand-off through the
// free structures orders the accesses.
func (m *Manager) SetBlockAttachment(h Handle, v any) {
	if h == NoBlock {
		return
	}
	idx := int32(h - 1)
	m.arena.seg(idx).attach[int(idx)&(segBlocks-1)] = v
}
