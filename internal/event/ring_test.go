package event

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestBatchOpsMatchReferenceFIFO drives the ring with a random mix of
// Push, PushBatch, Poll, and PopBatch across many small capacities (so the
// cursors wrap dozens of times) and compares every step against a
// plain-slice FIFO model, including the drop accounting for batch tails
// that exceed the free space.
func TestBatchOpsMatchReferenceFIFO(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		q := NewQueue(1 + r.Intn(16))
		capacity := q.Cap()
		var model []uint64
		var modelDropped uint64
		seq := uint64(0)
		dst := make([]Event, capacity+4)
		for op := 0; op < 300; op++ {
			switch r.Intn(4) {
			case 0: // Push
				seq++
				ok := q.Push(Event{Info: infoWithID(seq)})
				if ok != (len(model) < capacity) {
					t.Fatalf("trial %d op %d: Push ok=%v with %d/%d queued", trial, op, ok, len(model), capacity)
				}
				if ok {
					model = append(model, seq)
				} else {
					modelDropped++
				}
			case 1: // PushBatch, sometimes larger than the free space
				n := r.Intn(capacity + 3)
				batch := make([]Event, n)
				for i := range batch {
					seq++
					batch[i] = Event{Info: infoWithID(seq)}
				}
				acc := q.PushBatch(batch)
				want := capacity - len(model)
				if n < want {
					want = n
				}
				if acc != want {
					t.Fatalf("trial %d op %d: PushBatch(%d) accepted %d, want %d (%d/%d queued)",
						trial, op, n, acc, want, len(model), capacity)
				}
				for i := 0; i < acc; i++ {
					model = append(model, batch[i].Info.ID)
				}
				modelDropped += uint64(n - acc)
			case 2: // Poll
				ev, ok := q.Poll()
				if ok != (len(model) > 0) {
					t.Fatalf("trial %d op %d: Poll ok=%v with %d queued", trial, op, ok, len(model))
				}
				if ok {
					if ev.Info.ID != model[0] {
						t.Fatalf("trial %d op %d: Poll = %d, want %d", trial, op, ev.Info.ID, model[0])
					}
					model = model[1:]
				}
			case 3: // PopBatch into a random-size destination
				k := 1 + r.Intn(len(dst))
				n := q.PopBatch(dst[:k])
				want := len(model)
				if k < want {
					want = k
				}
				if n != want {
					t.Fatalf("trial %d op %d: PopBatch(%d) = %d, want %d", trial, op, k, n, want)
				}
				for i := 0; i < n; i++ {
					if dst[i].Info.ID != model[i] {
						t.Fatalf("trial %d op %d: PopBatch[%d] = %d, want %d", trial, op, i, dst[i].Info.ID, model[i])
					}
				}
				model = model[n:]
			}
			if q.Len() != len(model) {
				t.Fatalf("trial %d op %d: Len = %d, model %d", trial, op, q.Len(), len(model))
			}
			if q.Dropped() != modelDropped {
				t.Fatalf("trial %d op %d: Dropped = %d, model %d", trial, op, q.Dropped(), modelDropped)
			}
		}
	}
}

// TestCloseWhileParked races Close against a consumer entering the parking
// protocol. Every iteration must terminate: a lost wakeup here would hang
// the consumer forever.
func TestCloseWhileParked(t *testing.T) {
	for i := 0; i < 500; i++ {
		q := NewQueue(4)
		done := make(chan struct{})
		go func() {
			for {
				if _, ok := q.Wait(); !ok {
					close(done)
					return
				}
			}
		}()
		if i%2 == 0 {
			q.Push(Event{Type: Data})
		}
		runtime.Gosched()
		q.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("iteration %d: consumer never woke after Close", i)
		}
	}
}

// TestBatchProducerConsumerRace is the SPSC discipline under -race: one
// producer pushing random-size batches, one consumer draining with
// PopBatch and parking in Wait when the ring runs dry. Checks strict FIFO
// order and that accepted + dropped equals everything offered.
func TestBatchProducerConsumerRace(t *testing.T) {
	q := NewQueue(256)
	const total = 50000
	var wg sync.WaitGroup
	var received uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		dst := make([]Event, 64)
		var last uint64
		check := func(id uint64) {
			if id <= last {
				t.Errorf("order violation: %d after %d", id, last)
			}
			last = id
			received++
		}
		for {
			n := q.PopBatch(dst)
			for i := 0; i < n; i++ {
				check(dst[i].Info.ID)
			}
			if n == 0 {
				ev, ok := q.Wait()
				if !ok {
					return
				}
				check(ev.Info.ID)
			}
		}
	}()
	r := rand.New(rand.NewSource(2))
	batch := make([]Event, 128)
	seq := uint64(0)
	sent := uint64(0)
	for seq < total {
		n := 1 + r.Intn(len(batch))
		for i := 0; i < n; i++ {
			seq++
			batch[i] = Event{Info: infoWithID(seq)}
		}
		sent += uint64(q.PushBatch(batch[:n]))
	}
	q.Close()
	wg.Wait()
	if received != sent {
		t.Errorf("received %d, accepted %d", received, sent)
	}
	if sent+q.Dropped() != seq {
		t.Errorf("accepted %d + dropped %d != offered %d", sent, q.Dropped(), seq)
	}
}
