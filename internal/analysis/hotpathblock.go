package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathBlock verifies that //scap:hotpath functions and everything they
// transitively call (over static call edges) never block: no channel
// sends or receives, no select without a default case, no range over a
// channel, no time.Sleep, no sync.WaitGroup.Wait / sync.Cond.Wait, and no
// calls into syscall/I-O packages (os, net, net/http, syscall). A select
// with a default case is the sanctioned non-blocking notify idiom and is
// allowed; goroutines launched with "go" run elsewhere and are not
// walked. Lock acquisition is hotpathlock's domain and is not re-flagged
// here.
var HotPathBlock = &Analyzer{
	Name:       "hotpathblock",
	Doc:        "//scap:hotpath functions and their transitive callees must not block (channel ops, blocking select, time.Sleep, syscalls, I/O)",
	RunProgram: runHotPathBlock,
}

// blockingPkgs are packages whose calls mean a syscall or I/O.
var blockingPkgs = map[string]bool{
	"os":       true,
	"net":      true,
	"net/http": true,
	"syscall":  true,
}

// blockingFuncs are individual stdlib functions/methods that park the
// calling goroutine, keyed by types.Func.FullName.
var blockingFuncs = map[string]string{
	"time.Sleep":             "time.Sleep",
	"(*sync.WaitGroup).Wait": "sync.WaitGroup.Wait",
	"(*sync.Cond).Wait":      "sync.Cond.Wait",
	"(*sync.Once).Do":        "sync.Once.Do", // parks while another goroutine runs the init
}

func runHotPathBlock(prog *Program) []Diagnostic {
	// Multi-source BFS from every //scap:hotpath function over call
	// edges, recording one witness predecessor per reached function.
	roots := make(map[*types.Func]bool)
	pred := make(map[*types.Func]*types.Func)
	var queue []*funcNode
	for _, n := range prog.funcs() {
		if hasMarker(n.decl.Doc, hotpathMarker) {
			roots[n.fn] = true
			pred[n.fn] = nil
			queue = append(queue, n)
		}
	}
	reached := make([]*funcNode, 0, len(queue))
	seen := make(map[*types.Func]bool)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if seen[n.fn] {
			continue
		}
		seen[n.fn] = true
		reached = append(reached, n)
		for _, e := range n.out {
			if e.kind != edgeCall {
				continue
			}
			next := prog.node(e.callee)
			if next == nil || seen[next.fn] {
				continue
			}
			if _, ok := pred[next.fn]; !ok {
				pred[next.fn] = n.fn
			}
			queue = append(queue, next)
		}
	}

	var diags []Diagnostic
	for _, n := range reached {
		for _, site := range blockingSites(n) {
			diags = append(diags, Diagnostic{
				Pos:      n.pkg.Fset.Position(site.pos),
				Analyzer: "hotpathblock",
				Message:  fmt.Sprintf("%s on the hot path (%s)", site.what, witness(n.fn, roots, pred)),
			})
		}
	}
	return diags
}

// witness renders how the hot path reaches fn: the root alone when fn is
// itself marked, else the call chain from its witness root.
func witness(fn *types.Func, roots map[*types.Func]bool, pred map[*types.Func]*types.Func) string {
	var names []string
	for cur, hops := fn, 0; ; hops++ {
		names = append(names, shortFuncName(cur))
		p, ok := pred[cur]
		if !ok || p == nil || hops > 32 {
			break
		}
		cur = p
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	if len(names) == 1 {
		return "in //scap:hotpath " + names[0]
	}
	return "reached from //scap:hotpath " + strings.Join(names, " → ")
}

// blockSite is one blocking construct found in a function body.
type blockSite struct {
	pos  token.Pos
	what string
}

// blockingSites scans n's body for blocking constructs. Function literals
// launched with "go" are skipped (their bodies run on the new goroutine);
// other literals are scanned as part of the enclosing function, matching
// how the call graph attributes them.
func blockingSites(n *funcNode) []blockSite {
	if n.decl.Body == nil {
		return nil
	}
	info := n.pkg.Info
	goLit := make(map[*ast.FuncLit]bool)
	selectComm := make(map[ast.Node]bool)
	ast.Inspect(n.decl.Body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.GoStmt:
			if fl, ok := unparen(x.Call.Fun).(*ast.FuncLit); ok {
				goLit[fl] = true
			}
		case *ast.SelectStmt:
			// A select's case operations are attempted, not committed:
			// the select itself is the blocking (or not) construct, so
			// its comm statements and their channel ops are exempt from
			// individual send/receive flagging.
			for _, cl := range x.Body.List {
				cc, ok := cl.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				selectComm[cc.Comm] = true
				ast.Inspect(cc.Comm, func(inner ast.Node) bool {
					switch y := inner.(type) {
					case *ast.SendStmt:
						selectComm[y] = true
					case *ast.UnaryExpr:
						if y.Op == token.ARROW {
							selectComm[y] = true
						}
					}
					return true
				})
			}
		}
		return true
	})
	var sites []blockSite
	add := func(pos token.Pos, what string) {
		sites = append(sites, blockSite{pos: pos, what: what})
	}
	ast.Inspect(n.decl.Body, func(nd ast.Node) bool {
		if selectComm[nd] {
			switch nd.(type) {
			case *ast.SendStmt, *ast.UnaryExpr:
				return true // channel op owned by an enclosing select
			}
		}
		switch x := nd.(type) {
		case *ast.FuncLit:
			if goLit[x] {
				return false
			}
		case *ast.SendStmt:
			add(x.Arrow, "channel send")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				add(x.OpPos, "channel receive")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(x) {
				add(x.Select, "blocking select (no default case)")
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					add(x.For, "range over channel")
				}
			}
		case *ast.CallExpr:
			fn := calleeOf(info, x.Fun)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if what, listed := blockingFuncs[fn.FullName()]; listed {
				if what != "" {
					add(x.Lparen, what)
				}
				return true
			}
			if blockingPkgs[fn.Pkg().Path()] {
				add(x.Lparen, fmt.Sprintf("call into %s (syscall or I/O): %s.%s",
					fn.Pkg().Path(), fn.Pkg().Name(), fn.Name()))
			}
		}
		return true
	})
	return sites
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
