package scap

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"scap/internal/metrics"
	"scap/internal/streamscope"
)

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestServeMetricsEndpoint(t *testing.T) {
	h, err := Create(Config{Queues: 2})
	if err != nil {
		t.Fatal(err)
	}
	h.DispatchData(func(sd *Stream) {})
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}
	srv, err := h.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if err := h.ReplaySource(smallGen(11, 60), 1e9); err != nil {
		t.Fatal(err)
	}

	body := getBody(t, "http://"+srv.Addr()+"/metrics")
	p, err := metrics.ParsePayload(body)
	if err != nil {
		t.Fatalf("parse /metrics: %v\n%s", err, body)
	}
	if p.Cores != 2 {
		t.Fatalf("cores = %d, want 2", p.Cores)
	}
	pk := p.Counter("packets_total")
	if pk == nil || pk.Total == 0 {
		t.Fatalf("packets_total missing or zero: %+v", pk)
	}
	if len(pk.PerCore) != 2 || pk.PerCore[0]+pk.PerCore[1] != pk.Total {
		t.Fatalf("per-core %v does not sum to total %d", pk.PerCore, pk.Total)
	}
	if p.Counter("nic_frames_total") == nil || p.Counter("mem_admitted_total") == nil {
		t.Fatal("NIC/mem func counters missing from payload")
	}
	if p.Gauge("memory_size_bytes") == nil {
		t.Fatal("memory_size_bytes gauge missing")
	}
	var hasChunkHist bool
	for _, hs := range p.Histograms {
		if hs.Name == "chunk_bytes" && hs.Count > 0 {
			hasChunkHist = true
		}
	}
	if !hasChunkHist {
		t.Fatal("chunk_bytes histogram missing or empty")
	}

	// The pprof and expvar endpoints are wired in.
	if b := getBody(t, "http://"+srv.Addr()+"/debug/pprof/cmdline"); len(b) == 0 {
		t.Fatal("pprof cmdline empty")
	}
	if b := getBody(t, "http://"+srv.Addr()+"/debug/vars"); len(b) == 0 {
		t.Fatal("expvar payload empty")
	}

	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	// Totals stay scrapeable after Close (the frozen-stats contract extends
	// to the server).
	p2, err := metrics.ParsePayload(getBody(t, "http://"+srv.Addr()+"/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Counter("packets_total"); got == nil || got.Total < pk.Total {
		t.Fatalf("post-Close packets_total = %+v, want >= %d", got, pk.Total)
	}
}

// TestServeSketchEndpoint: /debug/sketch returns one published snapshot per
// core once the sketch front-end has seen traffic (snapshots publish from
// the engines' timer path, so the scrape polls briefly).
func TestServeSketchEndpoint(t *testing.T) {
	h, err := Create(Config{Queues: 2, Sketch: SketchConfig{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetCutoff(1000); err != nil {
		t.Fatal(err)
	}
	h.DispatchData(func(sd *Stream) {})
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}
	srv, err := h.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := h.ReplaySource(smallGen(13, 80), 1e9); err != nil {
		t.Fatal(err)
	}

	type snap struct {
		ObservedPkts uint64 `json:"observed_pkts"`
	}
	var snaps []*snap
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := json.Unmarshal(getBody(t, "http://"+srv.Addr()+"/debug/sketch"), &snaps); err != nil {
			t.Fatalf("parse /debug/sketch: %v", err)
		}
		total := uint64(0)
		for _, s := range snaps {
			if s != nil {
				total += s.ObservedPkts
			}
		}
		if len(snaps) == 2 && snaps[0] != nil && snaps[1] != nil && total > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sketch snapshots never published: %+v", snaps)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServeFlightEndpoint(t *testing.T) {
	h, err := Create(Config{Queues: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A low cutoff makes most generated flows hit their cutoff, which emits
	// FlightCutoff (and FDIR install) records deterministically.
	if err := h.SetCutoff(512); err != nil {
		t.Fatal(err)
	}
	h.DispatchData(func(sd *Stream) {})
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}
	srv, err := h.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer h.Close()

	if err := h.ReplaySource(smallGen(13, 50), 1e9); err != nil {
		t.Fatal(err)
	}

	var dump metrics.FlightDump
	if err := json.Unmarshal(getBody(t, "http://"+srv.Addr()+"/debug/flight"), &dump); err != nil {
		t.Fatalf("parse /debug/flight: %v", err)
	}
	if dump.Cores != 2 || dump.Capacity == 0 {
		t.Fatalf("dump header = %+v", dump)
	}
	if len(dump.Records) == 0 || dump.Total == 0 {
		t.Fatalf("no flight records after cutoff-heavy replay: %+v", dump)
	}
	var sawCutoff bool
	for i, r := range dump.Records {
		if r.KindName == "cutoff" {
			sawCutoff = true
		}
		if i > 0 && r.TimeUnixNano < dump.Records[i-1].TimeUnixNano {
			t.Fatal("records not ordered oldest first")
		}
	}
	if !sawCutoff {
		t.Fatalf("expected cutoff records, got %+v", dump.Records)
	}

	var tr metrics.ChromeTrace
	if err := json.Unmarshal(getBody(t, "http://"+srv.Addr()+"/debug/flight?format=chrome"), &tr); err != nil {
		t.Fatalf("parse chrome trace: %v", err)
	}
	if len(tr.TraceEvents) == 0 || tr.DisplayTimeUnit != "ms" {
		t.Fatalf("chrome trace = %+v", tr)
	}
	for _, ev := range tr.TraceEvents {
		if ev.Cat != "flight" || (ev.Ph != "i" && ev.Ph != "X") || ev.TS < 0 {
			t.Fatalf("malformed trace event: %+v", ev)
		}
	}

	// The drop-attribution table is present in /metrics and includes the
	// cutoff cause with a nonzero count.
	p, err := metrics.ParsePayload(getBody(t, "http://"+srv.Addr()+"/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	var cutoffDrops *metrics.CounterPayload
	for i := range p.Drops {
		if p.Drops[i].Cause == "cutoff" {
			cutoffDrops = &p.Drops[i]
		}
	}
	if cutoffDrops == nil || cutoffDrops.Total == 0 {
		t.Fatalf("drops table missing a nonzero cutoff row: %+v", p.Drops)
	}
}

// TestDebugServerGracefulClose verifies Close drains in-flight requests
// instead of severing them: a /debug/pprof/trace request that streams for a
// full second must complete its body while Close is underway.
func TestDebugServerGracefulClose(t *testing.T) {
	h, err := Create(Config{Queues: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	srv, err := h.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		n   int
		err error
	}
	got := make(chan result, 1)
	started := make(chan struct{})
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/trace?seconds=1")
		if err != nil {
			close(started)
			got <- result{0, err}
			return
		}
		close(started) // headers received: the request is in flight
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- result{len(b), err}
	}()
	<-started

	if err := srv.Close(); err != nil {
		t.Fatalf("graceful Close failed: %v", err)
	}
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight request was severed by Close: %v", r.err)
	}
	if r.n == 0 {
		t.Fatal("trace body empty")
	}
	// The listener is really gone.
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Fatal("server still accepting requests after Close")
	}
}

func TestGetStatsFrozenAfterClose(t *testing.T) {
	h, err := Create(Config{Queues: 2})
	if err != nil {
		t.Fatal(err)
	}
	h.DispatchTermination(func(sd *Stream) {})
	runSocket(t, h, smallGen(12, 40))

	st1, err := h.GetStats()
	if err != nil {
		t.Fatal(err)
	}
	if st1.Packets == 0 || st1.StreamsCreated == 0 {
		t.Fatalf("frozen stats empty: %+v", st1)
	}
	if st1.MemoryUsed != 0 {
		t.Fatalf("memory not fully released at close: %d", st1.MemoryUsed)
	}
	st2, err := h.GetStats()
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Fatalf("post-Close snapshots differ:\n%+v\n%+v", st1, st2)
	}
}

// TestServeMethodsAndContentTypes sweeps every route: GET answers 200 with
// the right Content-Type, and anything else is 405 with an Allow header —
// every endpoint is a read-only snapshot.
func TestServeMethodsAndContentTypes(t *testing.T) {
	h, err := Create(Config{Queues: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	srv, err := h.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	cases := []struct {
		path   string
		wantCT string // Content-Type prefix
	}{
		{"/metrics", "application/json"},
		{"/metrics?format=prom", "application/openmetrics-text"},
		{"/debug/flight", "application/json"},
		{"/debug/flight?format=chrome", "application/json"},
		{"/debug/streams", "application/json"},
		{"/debug/streams?format=chrome", "application/json"},
		{"/debug/history", "application/json"},
		{"/debug/sketch", "application/json"},
		{"/debug/ctlplane", "application/json"},
		{"/debug/pprof/cmdline", "text/plain"},
		{"/debug/vars", "application/json"},
	}
	for _, tc := range cases {
		resp, err := http.Get(base + tc.path)
		if err != nil {
			t.Fatalf("GET %s: %v", tc.path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %s", tc.path, resp.Status)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, tc.wantCT) {
			t.Errorf("GET %s Content-Type = %q, want prefix %q", tc.path, ct, tc.wantCT)
		}
		if len(body) == 0 {
			t.Errorf("GET %s: empty body", tc.path)
		}

		resp, err = http.Post(base+tc.path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatalf("POST %s: %v", tc.path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %s, want 405", tc.path, resp.Status)
		}
		if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
			t.Errorf("POST %s Allow = %q, want GET", tc.path, allow)
		}
	}
}

// TestServeStreamsEndpoint drives a cutoff-heavy replay with the sampler
// effectively off (a huge stride), so every journal present must have been
// promoted by an anomaly — the invariant that the interesting tail is never
// sampled away. The chrome export must carry one named track per journal.
func TestServeStreamsEndpoint(t *testing.T) {
	h, err := Create(Config{Queues: 2, Streams: StreamsConfig{SampleEvery: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetCutoff(512); err != nil {
		t.Fatal(err)
	}
	h.DispatchData(func(sd *Stream) {})
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	srv, err := h.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if err := h.ReplaySource(smallGen(13, 50), 1e9); err != nil {
		t.Fatal(err)
	}

	var dump streamscope.Dump
	if err := json.Unmarshal(getBody(t, "http://"+srv.Addr()+"/debug/streams"), &dump); err != nil {
		t.Fatalf("parse /debug/streams: %v", err)
	}
	if dump.Cores != 2 || dump.SampleEvery != 1<<20 {
		t.Fatalf("dump header = cores %d stride %d", dump.Cores, dump.SampleEvery)
	}
	if len(dump.Journals) == 0 || dump.Anomalies == 0 {
		t.Fatalf("no anomaly-promoted journals after cutoff-heavy replay: %+v", dump)
	}
	var cutoffJournal *streamscope.JournalSnap
	for i := range dump.Journals {
		js := &dump.Journals[i]
		if js.Sampled {
			t.Fatalf("journal claims sampler origin under a 1-in-%d stride: %+v", 1<<20, js)
		}
		for _, a := range js.Anomalies {
			if a == "cutoff" {
				cutoffJournal = js
			}
		}
	}
	if cutoffJournal == nil {
		t.Fatalf("no cutoff-promoted journal: %+v", dump.Journals)
	}
	if cutoffJournal.StreamID == 0 || cutoffJournal.Key == "" {
		t.Fatalf("cutoff journal identity empty: %+v", cutoffJournal)
	}
	var sawCutoffEvent bool
	for i, ev := range cutoffJournal.Events {
		if ev.KindName == "cutoff" {
			sawCutoffEvent = true
		}
		if i > 0 && ev.Seq <= cutoffJournal.Events[i-1].Seq {
			t.Fatal("journal events not in sequence order")
		}
	}
	if !sawCutoffEvent {
		t.Fatalf("cutoff journal has no cutoff event: %+v", cutoffJournal.Events)
	}

	var tr streamscope.Trace
	if err := json.Unmarshal(getBody(t, "http://"+srv.Addr()+"/debug/streams?format=chrome"), &tr); err != nil {
		t.Fatalf("parse chrome streams trace: %v", err)
	}
	tracks := 0
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			tracks++
			name, _ := ev.Args["name"].(string)
			if !strings.HasPrefix(name, "stream ") {
				t.Fatalf("track name %q lacks stream prefix", name)
			}
			if !strings.Contains(name, "[anomaly]") {
				t.Fatalf("anomaly-promoted track %q not marked", name)
			}
		}
		if ev.TS < 0 {
			t.Fatalf("negative trace timestamp: %+v", ev)
		}
	}
	if tracks != len(dump.Journals) {
		t.Fatalf("chrome export has %d named tracks, want %d", tracks, len(dump.Journals))
	}

	// The stream-journal counters surface in /metrics.
	p, err := metrics.ParsePayload(getBody(t, "http://"+srv.Addr()+"/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	if c := p.Counter("streams_anomaly_total"); c == nil || c.Total == 0 {
		t.Fatalf("streams_anomaly_total missing or zero: %+v", c)
	}
	if g := p.Gauge("streamscope_sample_every"); g == nil || g.Value != 1<<20 {
		t.Fatalf("streamscope_sample_every = %+v, want %d", g, 1<<20)
	}
}

// TestServeStreamsDisabled: Config.Streams.Disabled turns the endpoint into
// an {"enabled": false} stub.
func TestServeStreamsDisabled(t *testing.T) {
	h, err := Create(Config{Queues: 1, Streams: StreamsConfig{Disabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	srv, err := h.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var out map[string]bool
	if err := json.Unmarshal(getBody(t, "http://"+srv.Addr()+"/debug/streams"), &out); err != nil {
		t.Fatal(err)
	}
	if v, ok := out["enabled"]; !ok || v {
		t.Fatalf("disabled scope served %+v", out)
	}
}

// TestServeHistoryEndpoint: with a fast sampling cadence the history ring
// accumulates points carrying counter totals, rates, and gauges.
func TestServeHistoryEndpoint(t *testing.T) {
	h, err := Create(Config{Queues: 2, History: HistoryConfig{Interval: 10 * time.Millisecond, Depth: 32}})
	if err != nil {
		t.Fatal(err)
	}
	h.DispatchData(func(sd *Stream) {})
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	srv, err := h.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := h.ReplaySource(smallGen(11, 40), 1e9); err != nil {
		t.Fatal(err)
	}

	var dump metrics.HistoryDump
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := json.Unmarshal(getBody(t, "http://"+srv.Addr()+"/debug/history"), &dump); err != nil {
			t.Fatalf("parse /debug/history: %v", err)
		}
		if len(dump.Points) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("history never accumulated points: %+v", dump)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if dump.Depth != 32 {
		t.Fatalf("depth = %d, want 32", dump.Depth)
	}
	last := dump.Points[len(dump.Points)-1]
	var pk *metrics.HistoryCounter
	for i := range last.Counters {
		if last.Counters[i].Name == "packets_total" {
			pk = &last.Counters[i]
		}
	}
	if pk == nil || pk.Total == 0 {
		t.Fatalf("history point lacks packets_total: %+v", last)
	}
	if len(last.Gauges) == 0 {
		t.Fatalf("history point lacks gauges: %+v", last)
	}
	for i := 1; i < len(dump.Points); i++ {
		if dump.Points[i].TimeUnixNano < dump.Points[i-1].TimeUnixNano {
			t.Fatal("history points not oldest first")
		}
	}
}

// TestServeExemplarSurfaces: after a replay the chunk-size histogram carries
// an exemplar whose stream ID surfaces both in the /metrics JSON payload and
// in the OpenMetrics exposition's exemplar syntax.
func TestServeExemplarSurfaces(t *testing.T) {
	h, err := Create(Config{Queues: 1})
	if err != nil {
		t.Fatal(err)
	}
	h.DispatchData(func(sd *Stream) {})
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	srv, err := h.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := h.ReplaySource(smallGen(17, 40), 1e9); err != nil {
		t.Fatal(err)
	}

	p, err := metrics.ParsePayload(getBody(t, "http://"+srv.Addr()+"/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	var chunk *metrics.HistogramSnap
	for i := range p.Histograms {
		if p.Histograms[i].Name == "chunk_bytes" {
			chunk = &p.Histograms[i]
		}
	}
	if chunk == nil || chunk.Count == 0 {
		t.Fatal("chunk_bytes histogram missing or empty")
	}
	if chunk.Exemplar == nil || chunk.Exemplar.StreamID == 0 || chunk.Exemplar.Value == 0 {
		t.Fatalf("chunk_bytes exemplar = %+v, want nonzero stream ID", chunk.Exemplar)
	}

	prom := string(getBody(t, "http://"+srv.Addr()+"/metrics?format=prom"))
	if !strings.HasSuffix(prom, "# EOF\n") {
		t.Fatalf("prom exposition not EOF-terminated: ...%q", prom[max(0, len(prom)-40):])
	}
	if !strings.Contains(prom, "chunk_bytes_bucket{") {
		t.Fatal("prom exposition lacks chunk_bytes buckets")
	}
	if !strings.Contains(prom, `# {stream_id="`) {
		t.Fatal("prom exposition lacks an exemplar with a stream ID")
	}
}
