package metrics

import "testing"

func TestExemplarRatchet(t *testing.T) {
	h := newHistogram(Desc{Name: "h"}, 1, 10)
	if h.Snap().Exemplar != nil {
		t.Fatal("fresh histogram must have no exemplar")
	}

	h.ObserveEx(0, 100, 1) // bucket le=128
	h.ObserveEx(0, 10, 2)  // smaller bucket: must not displace
	s := h.Snap()
	if s.Exemplar == nil {
		t.Fatal("exemplar missing after ObserveEx")
	}
	if s.Exemplar.StreamID != 1 || s.Exemplar.Value != 100 || s.Exemplar.Le != 128 {
		t.Fatalf("exemplar = %+v, want stream 1 value 100 le 128", s.Exemplar)
	}
	if s.Count != 2 {
		t.Fatalf("ObserveEx must still count observations: count=%d", s.Count)
	}

	// Snap re-armed the ratchet: a smaller observation may now claim it.
	h.ObserveEx(0, 10, 3)
	s = h.Snap()
	if s.Exemplar == nil || s.Exemplar.StreamID != 3 || s.Exemplar.Le != 16 {
		t.Fatalf("re-armed exemplar = %+v, want stream 3 le 16", s.Exemplar)
	}

	// Without new observations the last exemplar stays visible.
	s = h.Snap()
	if s.Exemplar == nil || s.Exemplar.StreamID != 3 {
		t.Fatalf("exemplar must persist across scrapes, got %+v", s.Exemplar)
	}
}

func TestExemplarOverflowBucket(t *testing.T) {
	h := newHistogram(Desc{Name: "h"}, 1, 2) // buckets 1,2,4 + overflow
	h.ObserveEx(0, 1000, 9)
	s := h.Snap()
	if s.Exemplar == nil || s.Exemplar.Le != 0 {
		t.Fatalf("overflow exemplar = %+v, want Le 0", s.Exemplar)
	}
}

func TestObserveExMatchesObserveBuckets(t *testing.T) {
	a := newHistogram(Desc{Name: "a"}, 2, 8)
	b := newHistogram(Desc{Name: "b"}, 2, 8)
	vals := []uint64{0, 1, 2, 3, 7, 64, 300, 1 << 20}
	for i, v := range vals {
		a.Observe(i%2, v)
		b.ObserveEx(i%2, v, uint64(i))
	}
	sa, sb := a.Snap(), b.Snap()
	if sa.Count != sb.Count || sa.Sum != sb.Sum {
		t.Fatalf("count/sum diverge: %d/%d vs %d/%d", sa.Count, sa.Sum, sb.Count, sb.Sum)
	}
	for i := range sa.Buckets {
		if sa.Buckets[i] != sb.Buckets[i] {
			t.Fatalf("bucket %d diverges: %+v vs %+v", i, sa.Buckets[i], sb.Buckets[i])
		}
	}
}
