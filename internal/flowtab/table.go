package flowtab

import (
	"math/rand"

	"scap/internal/pkt"
)

// Table is the per-core flow table. It is not safe for concurrent use: in
// Scap every stream belongs to exactly one core, whose kernel thread owns
// that core's table.
type Table struct {
	seed    uint64
	buckets []*Stream
	count   int
	nextID  uint64

	// LRU access list: head is most recently touched (paper §5.2 keeps
	// the list sorted by moving streams to the front on each packet).
	lruHead *Stream
	lruTail *Stream

	// free is a pool of recycled records, mirroring Scap's pre-allocated
	// stream_t pools.
	free *Stream

	// Counters.
	Created uint64
	Expired uint64
	Evicted uint64
}

const (
	initialBuckets = 1024
	maxLoadFactor  = 0.75
)

// SetIDBase offsets the stream ID counter so that several tables (one per
// core) allocate from disjoint ID spaces; stream IDs are then unique
// socket-wide. Call before the first stream is created.
func (t *Table) SetIDBase(base uint64) { t.nextID = base }

// NewTable creates a table with a randomly seeded hash function, like the
// kernel module, to resist algorithmic-complexity attacks on the buckets.
func NewTable(rng *rand.Rand) *Table {
	var seed uint64
	if rng != nil {
		seed = rng.Uint64()
	} else {
		seed = rand.Uint64()
	}
	return &Table{
		seed:    seed,
		buckets: make([]*Stream, initialBuckets),
	}
}

// Len returns the number of tracked streams (directions).
func (t *Table) Len() int { return t.count }

// Lookup finds the stream for the exact (directional) key.
//
//scap:hotpath
func (t *Table) Lookup(key pkt.FlowKey) *Stream {
	idx := key.Hash(t.seed) & uint64(len(t.buckets)-1)
	for s := t.buckets[idx]; s != nil; s = s.hnext {
		if s.Key == key {
			return s
		}
	}
	return nil
}

// GetOrCreate returns the stream for key, creating (and cross-linking with
// the opposite direction, if tracked) on miss. created reports whether a
// new record was made. now updates the access list position. Allocation on
// a pool miss lives in alloc, off this function's fast path.
//
//scap:hotpath
func (t *Table) GetOrCreate(key pkt.FlowKey, now int64) (s *Stream, created bool) {
	if s = t.Lookup(key); s != nil {
		t.Touch(s, now)
		return s, false
	}
	s = t.alloc()
	t.nextID++
	s.ID = t.nextID
	s.Key = key
	s.Status = StatusActive
	s.Stats.Start = now
	s.Stats.End = now
	s.lastAccess = now
	s.Cutoff = -1 // inherit socket default

	if opp := t.Lookup(key.Reverse()); opp != nil {
		s.Opposite = opp
		opp.Opposite = s
		s.Dir = opp.Dir.Reverse()
	} else {
		s.Dir = pkt.DirClient
	}

	t.insert(s)
	t.lruPushFront(s)
	t.Created++
	return s, true
}

// Touch moves s to the front of the access list and stamps its access time.
//
//scap:hotpath
func (t *Table) Touch(s *Stream, now int64) {
	s.lastAccess = now
	if t.lruHead == s {
		return
	}
	t.lruUnlink(s)
	t.lruPushFront(s)
}

// Remove detaches s from the table and access list. The record stays valid
// (events may still reference it) until Recycle is called.
func (t *Table) Remove(s *Stream) {
	if !s.inTable {
		return
	}
	idx := s.Key.Hash(t.seed) & uint64(len(t.buckets)-1)
	pp := &t.buckets[idx]
	for *pp != nil {
		if *pp == s {
			*pp = s.hnext
			break
		}
		pp = &(*pp).hnext
	}
	s.hnext = nil
	t.lruUnlink(s)
	s.inTable = false
	t.count--
	if s.Opposite != nil {
		s.Opposite.Opposite = nil
		s.Opposite = nil
	}
}

// Recycle returns a detached record to the pool. Callers must not hold
// references past this point.
func (t *Table) Recycle(s *Stream) {
	if s.inTable {
		t.Remove(s)
	}
	*s = Stream{}
	s.hnext = t.free
	t.free = s
}

// ExpireBefore removes every stream whose last access is older than
// deadline, invoking fn for each before removal. It walks from the tail of
// the access list, so the scan stops at the first fresh stream — the
// paper's "periodically, starting from the end of the list" sweep.
func (t *Table) ExpireBefore(deadline int64, fn func(*Stream)) int {
	n := 0
	for t.lruTail != nil && t.lruTail.lastAccess < deadline {
		s := t.lruTail
		s.Status = StatusTimedOut
		if fn != nil {
			fn(s)
		}
		t.Remove(s)
		t.Expired++
		n++
	}
	return n
}

// EvictOldest removes the least recently touched stream to make room for a
// newer one (Scap "always stores newer streams" under memory exhaustion).
func (t *Table) EvictOldest(fn func(*Stream)) *Stream {
	s := t.lruTail
	if s == nil {
		return nil
	}
	s.Status = StatusEvicted
	if fn != nil {
		fn(s)
	}
	t.Remove(s)
	t.Evicted++
	return s
}

// Oldest returns the tail of the access list without removing it.
func (t *Table) Oldest() *Stream { return t.lruTail }

// Walk calls fn for every tracked stream until fn returns false. Iteration
// order is most- to least-recently accessed.
func (t *Table) Walk(fn func(*Stream) bool) {
	for s := t.lruHead; s != nil; s = s.lruNext {
		if !fn(s) {
			return
		}
	}
}

// TailWalk iterates from least- to most-recently accessed until fn returns
// false. Callers must not add or remove streams during the walk; expiry
// sweeps collect victims first and remove them afterwards.
func (t *Table) TailWalk(fn func(*Stream) bool) {
	for s := t.lruTail; s != nil; s = s.lruPrev {
		if !fn(s) {
			return
		}
	}
}

func (t *Table) alloc() *Stream {
	if s := t.free; s != nil {
		t.free = s.hnext
		*s = Stream{}
		return s
	}
	return &Stream{}
}

func (t *Table) insert(s *Stream) {
	if float64(t.count+1) > maxLoadFactor*float64(len(t.buckets)) {
		t.grow()
	}
	idx := s.Key.Hash(t.seed) & uint64(len(t.buckets)-1)
	s.hnext = t.buckets[idx]
	t.buckets[idx] = s
	s.inTable = true
	t.count++
}

func (t *Table) grow() {
	old := t.buckets
	t.buckets = make([]*Stream, len(old)*2)
	for _, head := range old {
		for s := head; s != nil; {
			next := s.hnext
			idx := s.Key.Hash(t.seed) & uint64(len(t.buckets)-1)
			s.hnext = t.buckets[idx]
			t.buckets[idx] = s
			s = next
		}
	}
}

func (t *Table) lruPushFront(s *Stream) {
	s.lruPrev = nil
	s.lruNext = t.lruHead
	if t.lruHead != nil {
		t.lruHead.lruPrev = s
	}
	t.lruHead = s
	if t.lruTail == nil {
		t.lruTail = s
	}
}

func (t *Table) lruUnlink(s *Stream) {
	if s.lruPrev != nil {
		s.lruPrev.lruNext = s.lruNext
	} else if t.lruHead == s {
		t.lruHead = s.lruNext
	}
	if s.lruNext != nil {
		s.lruNext.lruPrev = s.lruPrev
	} else if t.lruTail == s {
		t.lruTail = s.lruPrev
	}
	s.lruPrev, s.lruNext = nil, nil
}
