package metrics

import (
	"testing"
	"time"
)

func TestHistoryRing(t *testing.T) {
	r := NewRegistry(1)
	clock := int64(1_000_000_000)
	r.SetClock(func() int64 { return clock })
	c := r.NewCounter(Desc{Name: "frames_total"})
	g := r.NewGauge(Desc{Name: "arena_blocks_inuse"})
	hst := r.NewHistogram(Desc{Name: "lat_ns", Unit: "ns"}, 20)

	h := NewHistory(r, time.Second, 4)
	for i := 0; i < 6; i++ {
		c.Cell(0).Add(100)
		g.Set(int64(i))
		hst.Observe(0, 1000)
		clock += 1_000_000_000
		h.Tick()
	}

	pts := h.Points()
	if len(pts) != 4 {
		t.Fatalf("depth-4 ring kept %d points, want 4", len(pts))
	}
	// Oldest surviving tick is #3 (totals 300..600), each window 1s.
	for i, pt := range pts {
		wantTotal := uint64(300 + 100*i)
		var got *HistoryCounter
		for k := range pt.Counters {
			if pt.Counters[k].Name == "frames_total" {
				got = &pt.Counters[k]
			}
		}
		if got == nil || got.Total != wantTotal {
			t.Fatalf("point %d frames_total = %+v, want total %d", i, got, wantTotal)
		}
		if got.Rate != 100 {
			t.Fatalf("point %d rate = %v, want 100/s", i, got.Rate)
		}
		if pt.WindowSeconds != 1 {
			t.Fatalf("point %d window = %v, want 1s", i, pt.WindowSeconds)
		}
		if len(pt.Gauges) != 1 || pt.Gauges[0].Value != int64(2+i) {
			t.Fatalf("point %d gauges = %+v", i, pt.Gauges)
		}
		if len(pt.Quantiles) != 1 || pt.Quantiles[0].P99 == 0 {
			t.Fatalf("point %d quantiles = %+v", i, pt.Quantiles)
		}
	}
	if pts[0].TimeUnixNano >= pts[3].TimeUnixNano {
		t.Fatal("points must be oldest first")
	}

	d := h.Dump()
	if d.Depth != 4 || d.IntervalSeconds != 1 || len(d.Points) != 4 {
		t.Fatalf("dump shape wrong: %+v", d)
	}
}

func TestHistoryStartStop(t *testing.T) {
	r := NewRegistry(1)
	h := NewHistory(r, time.Millisecond, 8)
	h.Start()
	deadline := time.After(2 * time.Second)
	for len(h.Points()) == 0 {
		select {
		case <-deadline:
			t.Fatal("history goroutine never sampled")
		case <-time.After(time.Millisecond):
		}
	}
	h.Stop()
	n := len(h.Points())
	time.Sleep(5 * time.Millisecond)
	if got := len(h.Points()); got != n {
		t.Fatalf("history kept sampling after Stop: %d -> %d", n, got)
	}
}
