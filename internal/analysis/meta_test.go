package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestEveryAnalyzerHasFixtures asserts the suite stays testable: every
// analyzer registered in All() (what cmd/scaplint runs) must have a
// testdata/src/<name> fixture directory containing at least one
// "// want <name>" expectation, so a new analyzer cannot land without an
// exact-position fixture test.
func TestEveryAnalyzerHasFixtures(t *testing.T) {
	for _, a := range All() {
		if a.Name == "" {
			t.Fatal("analyzer with empty name registered")
		}
		if (a.Run == nil) == (a.RunProgram == nil) {
			t.Errorf("analyzer %s must set exactly one of Run and RunProgram", a.Name)
		}
		dir := filepath.Join("testdata", "src", a.Name)
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Errorf("analyzer %s has no fixture directory %s: %v", a.Name, dir, err)
			continue
		}
		wantRe := regexp.MustCompile(`//\s*want\s+` + regexp.QuoteMeta(a.Name) + `\s+"`)
		found := false
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if wantRe.Match(data) {
				found = true
			}
		}
		if !found {
			t.Errorf("analyzer %s has no \"// want %s\" expectation under %s", a.Name, a.Name, dir)
		}
	}
}
