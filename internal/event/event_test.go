package event

import (
	"sync"
	"testing"
	"time"

	"scap/internal/flowtab"
)

func TestPushPollFIFO(t *testing.T) {
	q := NewQueue(8)
	s := &flowtab.Stream{}
	for i, typ := range []Type{Creation, Data, Termination} {
		if !q.Push(Event{Type: typ, Stream: s, Data: []byte{byte(i)}}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.Len() != 3 {
		t.Errorf("len = %d", q.Len())
	}
	for i, want := range []Type{Creation, Data, Termination} {
		e, ok := q.Poll()
		if !ok || e.Type != want || e.Data[0] != byte(i) {
			t.Fatalf("poll %d = %+v, %v", i, e, ok)
		}
	}
	if _, ok := q.Poll(); ok {
		t.Error("poll on empty queue succeeded")
	}
}

func TestOverflowCountsDrops(t *testing.T) {
	q := NewQueue(2)
	for i := 0; i < 5; i++ {
		q.Push(Event{Type: Data})
	}
	if q.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", q.Dropped())
	}
}

func TestWaitBlocksUntilPush(t *testing.T) {
	q := NewQueue(4)
	var wg sync.WaitGroup
	wg.Add(1)
	var got Event
	go func() {
		defer wg.Done()
		got, _ = q.Wait()
	}()
	time.Sleep(10 * time.Millisecond)
	q.Push(Event{Type: Termination})
	wg.Wait()
	if got.Type != Termination {
		t.Errorf("got %+v", got)
	}
}

func TestCloseWakesWaiter(t *testing.T) {
	q := NewQueue(4)
	done := make(chan bool)
	go func() {
		_, ok := q.Wait()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case ok := <-done:
		if ok {
			t.Error("Wait returned an event after Close on empty queue")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not wake on Close")
	}
	if q.Push(Event{}) {
		t.Error("push after close succeeded")
	}
}

func TestCloseDrainsPending(t *testing.T) {
	q := NewQueue(4)
	q.Push(Event{Type: Data})
	q.Close()
	if e, ok := q.Wait(); !ok || e.Type != Data {
		t.Error("pending event lost on close")
	}
	if _, ok := q.Wait(); ok {
		t.Error("spurious event after drain")
	}
}

func TestWraparound(t *testing.T) {
	q := NewQueue(4)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			if !q.Push(Event{Data: []byte{byte(round), byte(i)}}) {
				t.Fatal("push failed")
			}
		}
		for i := 0; i < 3; i++ {
			e, ok := q.Poll()
			if !ok || e.Data[1] != byte(i) {
				t.Fatalf("round %d poll %d: %+v %v", round, i, e, ok)
			}
		}
	}
}

func TestProducerConsumerStress(t *testing.T) {
	q := NewQueue(64)
	const total = 10000
	var wg sync.WaitGroup
	wg.Add(1)
	received := 0
	go func() {
		defer wg.Done()
		for {
			if _, ok := q.Wait(); !ok {
				return
			}
			received++
		}
	}()
	sent := 0
	for i := 0; i < total; i++ {
		if q.Push(Event{Type: Data}) {
			sent++
		}
	}
	q.Close()
	wg.Wait()
	if received != sent {
		t.Errorf("received %d, sent %d (dropped %d)", received, sent, q.Dropped())
	}
}
