package bpf

import "scap/internal/pkt"

// Filter is a parsed and compiled packet filter. The zero value of *Filter
// (nil) matches every packet, so callers can hold an optional filter without
// nil checks at every site.
type Filter struct {
	expr string
	ast  node
	prog Program
}

// Parse parses and compiles a filter expression. An empty expression yields
// a filter that matches everything.
func Parse(expr string) (*Filter, error) {
	ast, err := parse(expr)
	if err != nil {
		return nil, err
	}
	return &Filter{expr: expr, ast: ast, prog: compile(ast)}, nil
}

// MustParse is Parse for known-good literals; it panics on error.
func MustParse(expr string) *Filter {
	f, err := Parse(expr)
	if err != nil {
		panic(err)
	}
	return f
}

// Match reports whether the packet satisfies the filter. A nil filter
// matches everything.
func (f *Filter) Match(p *pkt.Packet) bool {
	if f == nil {
		return true
	}
	return f.prog.Match(p)
}

// MatchInterpreted evaluates the filter by walking the AST. It exists as the
// reference semantics for differential tests against the compiled program.
func (f *Filter) MatchInterpreted(p *pkt.Packet) bool {
	if f == nil {
		return true
	}
	return f.ast.eval(p)
}

// Expr returns the original expression text.
func (f *Filter) Expr() string {
	if f == nil {
		return ""
	}
	return f.expr
}

// String renders the parsed form (fully parenthesized).
func (f *Filter) String() string {
	if f == nil {
		return "true"
	}
	return f.ast.String()
}

// Len returns the number of compiled instructions (useful for tests and for
// cost models that charge per instruction).
func (f *Filter) Len() int {
	if f == nil {
		return 0
	}
	return len(f.prog)
}
