package flowtab

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"scap/internal/pkt"
)

// model_test drives the open-addressing table and a trivially-correct
// map-based reference model with the same random operation sequence and
// asserts identical visible behavior: membership, stream IDs, direction
// assignment, opposite-direction cross-links, expiry sets, and eviction
// eligibility by age class.

type modelStream struct {
	id         uint64
	dir        pkt.Direction
	lastAccess int64
}

type model struct {
	live   map[pkt.FlowKey]*modelStream
	nextID uint64
}

func (m *model) getOrCreate(k pkt.FlowKey, now int64) (*modelStream, bool) {
	if s, ok := m.live[k]; ok {
		s.lastAccess = now
		return s, false
	}
	m.nextID++
	s := &modelStream{id: m.nextID, lastAccess: now, dir: pkt.DirClient}
	if opp, ok := m.live[k.Reverse()]; ok {
		s.dir = opp.dir.Reverse()
	}
	m.live[k] = s
	return s, true
}

// minClass returns the oldest populated age class (lastAccess >> genShift).
// The op generator keeps the driven time span well under the 255-generation
// alias horizon, so no clamping is involved.
func (m *model) minClass() uint64 {
	first := true
	var min uint64
	for _, s := range m.live {
		if c := uint64(s.lastAccess) >> genShift; first || c < min {
			min, first = c, false
		}
	}
	return min
}

// modelOps decodes one op per word: low 3 bits select the operation, the
// next 7 bits a key, the rest a time increment.
const (
	opCreate = iota
	opCreateReverse
	opTouch
	opExpire
	opEvict
	opRemove
	opSweep
	opModulo
)

func runModelSequence(t *testing.T, ops []uint64) bool {
	tab := newT()
	m := &model{live: map[pkt.FlowKey]*modelStream{}}
	now := int64(1)

	key := func(w uint64) pkt.FlowKey {
		k := tk(uint16(1000+(w>>3)&0x3f), 80)
		if w>>3&0x40 != 0 {
			k = k.Reverse()
		}
		return k
	}

	for _, w := range ops {
		// Advance time by < 1/16 generation per op, so a sequence stays
		// far inside the alias horizon and age classes are exact.
		now += int64(w>>10) % (1 << (genShift - 4))
		switch w % opModulo {
		case opCreate, opCreateReverse:
			k := key(w)
			if w%opModulo == opCreateReverse {
				k = k.Reverse()
			}
			wantS, wantNew := m.getOrCreate(k, now)
			s, created := tab.GetOrCreate(k, now)
			if created != wantNew {
				t.Errorf("GetOrCreate(%v) created=%v, model says %v", k, created, wantNew)
				return false
			}
			if s.ID != wantS.id {
				t.Errorf("GetOrCreate(%v) ID=%d, model says %d", k, s.ID, wantS.id)
				return false
			}
			if s.Dir != wantS.dir {
				t.Errorf("GetOrCreate(%v) dir=%v, model says %v", k, s.Dir, wantS.dir)
				return false
			}
		case opTouch:
			k := key(w)
			s := tab.Lookup(k)
			ms := m.live[k]
			if (s != nil) != (ms != nil) {
				t.Errorf("Lookup(%v)=%v, model membership %v", k, s != nil, ms != nil)
				return false
			}
			if s != nil {
				tab.Touch(s, now)
				ms.lastAccess = now
			}
		case opExpire:
			deadline := now - int64(w>>10)%(1<<genShift)
			want := map[pkt.FlowKey]bool{}
			for k, ms := range m.live {
				if ms.lastAccess < deadline {
					want[k] = true
				}
			}
			n := tab.ExpireBefore(deadline, func(s *Stream) {
				if !want[s.Key] {
					t.Errorf("expired %v, not stale in model", s.Key)
				}
			})
			if n != len(want) {
				t.Errorf("ExpireBefore removed %d, model says %d", n, len(want))
				return false
			}
			for k := range want {
				delete(m.live, k)
			}
		case opEvict:
			ev := tab.EvictOldest(nil)
			if ev == nil {
				if len(m.live) != 0 {
					t.Errorf("EvictOldest=nil with %d live streams", len(m.live))
					return false
				}
				continue
			}
			ms := m.live[ev.Key]
			if ms == nil {
				t.Errorf("evicted %v, unknown to model", ev.Key)
				return false
			}
			if c := uint64(ms.lastAccess) >> genShift; c != m.minClass() {
				t.Errorf("evicted %v from class %d, oldest class is %d", ev.Key, c, m.minClass())
				return false
			}
			delete(m.live, ev.Key)
		case opRemove:
			k := key(w)
			if s := tab.Lookup(k); s != nil {
				tab.Remove(s)
				tab.Recycle(s)
			}
			delete(m.live, k)
		case opSweep:
			tab.Sweep(now, int(w>>10)%64, nil)
		}
		if tab.Len() != len(m.live) {
			t.Errorf("Len=%d, model has %d", tab.Len(), len(m.live))
			return false
		}
	}

	// Full final audit: membership, IDs, access times, cross-links.
	for k, ms := range m.live {
		s := tab.Lookup(k)
		if s == nil {
			t.Errorf("model stream %v missing from table", k)
			return false
		}
		if s.ID != ms.id || s.LastAccess() != ms.lastAccess {
			t.Errorf("stream %v: id/access %d/%d, model %d/%d",
				k, s.ID, s.LastAccess(), ms.id, ms.lastAccess)
			return false
		}
		if _, revLive := m.live[k.Reverse()]; revLive {
			opp := tab.Lookup(k.Reverse())
			if opp == nil || s.Opposite != opp || opp.Opposite != s {
				t.Errorf("stream %v not cross-linked with live reverse", k)
				return false
			}
		} else if s.Opposite != nil {
			t.Errorf("stream %v linked to a dead reverse", k)
			return false
		}
	}
	count := 0
	tab.Walk(func(*Stream) bool { count++; return true })
	if count != len(m.live) {
		t.Errorf("walk count %d, model %d", count, len(m.live))
		return false
	}
	return true
}

func TestModelEquivalence(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 40,
		Rand:     rand.New(rand.NewSource(7)),
		Values: func(args []reflect.Value, r *rand.Rand) {
			n := 200 + r.Intn(1800)
			ops := make([]uint64, n)
			for i := range ops {
				ops[i] = r.Uint64()
			}
			args[0] = reflect.ValueOf(ops)
		},
	}
	if err := quick.Check(func(ops []uint64) bool {
		return runModelSequence(t, ops)
	}, cfg); err != nil {
		t.Fatal(err)
	}
}
