package mem

import (
	"math"
	"testing"
)

func TestSetWatermarksNormalizes(t *testing.T) {
	m := New(Config{Size: 1000, BaseThreshold: 0.5, Priorities: 3})

	// Default ladder: equal spacing above the base threshold.
	def := m.Watermarks()
	want := []float64{0.5 + 0.5/3, 0.5 + 1.0/3, 1}
	for i := range want {
		if math.Abs(def[i]-want[i]) > 1e-9 {
			t.Fatalf("default watermarks = %v, want %v", def, want)
		}
	}

	// An explicit table is clamped into [base, 1], forced monotone, and the
	// top is pinned to 1.
	m.SetWatermarks([]float64{0.2, 0.6, 0.9})
	got := m.Watermarks()
	want = []float64{0.5, 0.6, 1} // 0.2 < base → base; top pinned
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("watermarks = %v, want %v", got, want)
		}
	}
	if w := m.Watermark(1); math.Abs(w-0.6) > 1e-9 {
		t.Fatalf("Watermark(1) = %v, want 0.6", w)
	}

	// Non-monotone input is raised to the running maximum.
	m.SetWatermarks([]float64{0.8, 0.6, 0.7})
	got = m.Watermarks()
	want = []float64{0.8, 0.8, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("non-monotone normalized = %v, want %v", got, want)
		}
	}

	// Wrong length or nil resets to the default spacing.
	m.SetWatermarks([]float64{0.9})
	got = m.Watermarks()
	for i := range def {
		if math.Abs(got[i]-def[i]) > 1e-9 {
			t.Fatalf("after wrong-length reset = %v, want default %v", got, def)
		}
	}
	m.SetWatermarks([]float64{0.8, 0.9, 0.95})
	m.SetWatermarks(nil)
	got = m.Watermarks()
	for i := range def {
		if math.Abs(got[i]-def[i]) > 1e-9 {
			t.Fatalf("after nil reset = %v, want default %v", got, def)
		}
	}
}

func TestDecideUsesExplicitWatermarks(t *testing.T) {
	m := New(Config{Size: 1000, BaseThreshold: 0.5, Priorities: 2})
	// Fill to 70%: above base, below the default priority-0 watermark 0.75.
	if !m.Reserve(700) {
		t.Fatal("reserve failed")
	}
	if d := m.Decide(0, 0, 10); d != Admit {
		t.Fatalf("default ladder: priority 0 at 71%% = %v, want Admit", d)
	}

	// Lower priority 0's drop point to 0.6: the same packet now drops,
	// while priority 1 (pinned at 1) is still admitted.
	m.SetWatermarks([]float64{0.6, 1})
	if d := m.Decide(0, 0, 10); d != DropPriority {
		t.Fatalf("explicit ladder: priority 0 at 71%% = %v, want DropPriority", d)
	}
	if d := m.Decide(1, 0, 10); d != Admit {
		t.Fatalf("explicit ladder: priority 1 = %v, want Admit", d)
	}

	// Restoring the default ladder re-admits priority 0.
	m.SetWatermarks(nil)
	if d := m.Decide(0, 0, 10); d != Admit {
		t.Fatalf("restored ladder: priority 0 = %v, want Admit", d)
	}
}

func TestArenaUsedFraction(t *testing.T) {
	m := New(Config{Size: 1 << 20})
	if f := m.ArenaUsedFraction(); f != 0 {
		t.Fatalf("fresh arena fraction = %v, want 0", f)
	}
	h, _ := m.AllocBlock(0)
	if h == NoBlock {
		t.Fatal("no block")
	}
	if f := m.ArenaUsedFraction(); f <= 0 || f > 1 {
		t.Fatalf("fraction with one block held = %v", f)
	}
	m.FreeBlock(0, h)
}
