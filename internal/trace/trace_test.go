package trace

import (
	"bytes"
	"io"
	"math"
	"sort"
	"testing"

	"scap/internal/pkt"
)

func TestGeneratorProducesDecodableFrames(t *testing.T) {
	g := NewGenerator(GenConfig{Seed: 1, Flows: 50, Concurrency: 8})
	var p pkt.Packet
	n := 0
	for {
		f := g.Next()
		if f == nil {
			break
		}
		if err := pkt.Decode(f, &p); err != nil {
			t.Fatalf("frame %d undecodable: %v", n, err)
		}
		n++
		if n > 1<<20 {
			t.Fatal("generator did not terminate")
		}
	}
	if g.FlowsMade != 50 {
		t.Errorf("flows made = %d", g.FlowsMade)
	}
	if uint64(n) != g.Packets {
		t.Errorf("packet count mismatch: %d vs %d", n, g.Packets)
	}
}

// TestGeneratorStreamsReassemble drives every generated flow through a map
// of per-direction expectations: sequence-contiguous payload bytes.
func TestGeneratorStreamsReassemble(t *testing.T) {
	g := NewGenerator(GenConfig{Seed: 2, Flows: 30, Concurrency: 4, MaxFlowBytes: 50000})
	type flowState struct {
		sawSYN, sawFIN bool
		payload        int
	}
	flows := map[pkt.FlowKey]*flowState{}
	var p pkt.Packet
	for {
		f := g.Next()
		if f == nil {
			break
		}
		if err := pkt.Decode(f, &p); err != nil {
			t.Fatal(err)
		}
		fs := flows[p.Key]
		if fs == nil {
			fs = &flowState{}
			flows[p.Key] = fs
		}
		if p.TCPFlags&pkt.FlagSYN != 0 {
			fs.sawSYN = true
		}
		if p.TCPFlags&pkt.FlagFIN != 0 {
			fs.sawFIN = true
		}
		fs.payload += len(p.Payload)
	}
	tcpFlows, udpFlows := 0, 0
	for k, fs := range flows {
		if k.Proto == pkt.ProtoTCP {
			tcpFlows++
			// Every TCP direction with a SYN eventually got a FIN.
			if fs.sawSYN && !fs.sawFIN {
				t.Errorf("flow %v: SYN without FIN", k)
			}
		} else {
			udpFlows++
		}
	}
	if tcpFlows == 0 {
		t.Error("no TCP flows generated")
	}
}

func TestParetoHeavyTail(t *testing.T) {
	g := NewGenerator(GenConfig{Seed: 3, Flows: 1, Concurrency: 1})
	sizes := make([]int, 5000)
	for i := range sizes {
		sizes[i] = g.paretoSize()
	}
	sort.Ints(sizes)
	median := sizes[len(sizes)/2]
	p99 := sizes[len(sizes)*99/100]
	if p99 < 20*median {
		t.Errorf("distribution not heavy-tailed: median=%d p99=%d", median, p99)
	}
	for _, s := range sizes {
		if s < g.cfg.MinFlowBytes || s > g.cfg.MaxFlowBytes {
			t.Fatalf("size %d outside bounds", s)
		}
	}
	// Mass concentration: the top 10% of flows must carry most bytes (the
	// property that makes cutoffs effective).
	var total, top float64
	for i, s := range sizes {
		total += float64(s)
		if i >= len(sizes)*90/100 {
			top += float64(s)
		}
	}
	if top/total < 0.5 {
		t.Errorf("top decile carries only %.0f%% of bytes", 100*top/total)
	}
}

func TestEmbeddedPatterns(t *testing.T) {
	pattern := []byte("ATTACK-SIGNATURE-XYZ")
	g := NewGenerator(GenConfig{
		Seed: 4, Flows: 40, Concurrency: 4,
		EmbedPatterns: [][]byte{pattern}, EmbedProb: 1.0,
		MinFlowBytes: 500, MaxFlowBytes: 2000,
	})
	found := 0
	for {
		f := g.Next()
		if f == nil {
			break
		}
		if bytes.Contains(f, pattern) {
			found++
		}
	}
	if found < 30 {
		t.Errorf("pattern embedded in %d flows, want ~40", found)
	}
}

func TestConcurrentStreamsWorkload(t *testing.T) {
	g := ConcurrentStreamsWorkload(5, 20, 10, 5, 1000)
	var p pkt.Packet
	open := map[pkt.FlowKey]bool{}
	maxOpen := 0
	for {
		f := g.Next()
		if f == nil {
			break
		}
		if err := pkt.Decode(f, &p); err != nil {
			t.Fatal(err)
		}
		k, _ := p.Key.Canonical()
		if p.TCPFlags&pkt.FlagSYN != 0 && p.TCPFlags&pkt.FlagACK == 0 {
			open[k] = true
			if len(open) > maxOpen {
				maxOpen = len(open)
			}
		}
		if p.TCPFlags&pkt.FlagFIN != 0 {
			delete(open, k)
		}
	}
	if maxOpen > 11 {
		t.Errorf("concurrency exceeded: %d", maxOpen)
	}
	if g.FlowsMade != 20 {
		t.Errorf("flows = %d", g.FlowsMade)
	}
}

func TestPcapRoundTrip(t *testing.T) {
	g := NewGenerator(GenConfig{Seed: 6, Flows: 10, Concurrency: 2, MaxFlowBytes: 5000})
	var frames [][]byte
	var stamps []int64
	var buf bytes.Buffer
	w := NewPcapWriter(&buf, 0)
	Replay(g, 1e9, func(f []byte, ts int64) bool {
		cp := append([]byte(nil), f...)
		frames = append(frames, cp)
		stamps = append(stamps, ts)
		if err := w.Write(f, ts); err != nil {
			t.Fatal(err)
		}
		return true
	})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewPcapReader(&buf)
	for i := range frames {
		f, ts, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(f, frames[i]) {
			t.Fatalf("record %d data mismatch", i)
		}
		if ts != stamps[i] {
			t.Fatalf("record %d ts = %d, want %d", i, ts, stamps[i])
		}
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestPcapSnaplenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewPcapWriter(&buf, 96)
	frame := make([]byte, 1500)
	for i := range frame {
		frame[i] = byte(i)
	}
	w.Write(frame, 42)
	w.Flush()
	r := NewPcapReader(&buf)
	f, _, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 96 || !bytes.Equal(f, frame[:96]) {
		t.Errorf("snaplen truncation failed: %d bytes", len(f))
	}
}

func TestPcapBadMagic(t *testing.T) {
	r := NewPcapReader(bytes.NewReader(make([]byte, 64)))
	if _, _, err := r.Next(); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReplayRateTiming(t *testing.T) {
	g := NewGenerator(GenConfig{Seed: 7, Flows: 200, Concurrency: 16})
	var bits float64
	var last int64
	frames, end := Replay(g, 1e9, func(f []byte, ts int64) bool { // 1 Gbit/s
		if ts < last {
			t.Fatal("timestamps not monotonic")
		}
		last = ts
		bits += float64(len(f)+24) * 8
		return true
	})
	if frames == 0 {
		t.Fatal("no frames")
	}
	// end ≈ bits / rate.
	wantNs := bits / 1e9 * 1e9
	if math.Abs(float64(end)-wantNs) > wantNs*0.01 {
		t.Errorf("end = %d ns, want ≈ %.0f", end, wantNs)
	}
}

func TestSliceSourceReset(t *testing.T) {
	src := &SliceSource{Frames: [][]byte{{1}, {2}}}
	if len(Collect(src, 0)) != 2 {
		t.Fatal("collect failed")
	}
	if src.Next() != nil {
		t.Error("exhausted source returned a frame")
	}
	src.Reset()
	if f := src.Next(); f == nil || f[0] != 1 {
		t.Error("reset failed")
	}
}

func TestDuplicatesAndReordering(t *testing.T) {
	g := NewGenerator(GenConfig{
		Seed: 8, Flows: 50, Concurrency: 1,
		DuplicateProb: 0.2, ReorderProb: 0.2,
		MinFlowBytes: 10000, MaxFlowBytes: 20000,
	})
	var p pkt.Packet
	seen := map[string]int{}
	ooo := 0
	lastSeq := map[pkt.FlowKey]uint32{}
	for {
		f := g.Next()
		if f == nil {
			break
		}
		if err := pkt.Decode(f, &p); err != nil {
			t.Fatal(err)
		}
		if len(p.Payload) > 0 {
			sig := string(f[:54])
			seen[sig]++
			if prev, ok := lastSeq[p.Key]; ok && int32(p.Seq-prev) < 0 {
				ooo++
			}
			lastSeq[p.Key] = p.Seq
		}
	}
	dups := 0
	for _, n := range seen {
		if n > 1 {
			dups++
		}
	}
	if dups == 0 {
		t.Error("no duplicate segments generated")
	}
	if ooo == 0 {
		t.Error("no reordered segments generated")
	}
}
