package core

import (
	"sync"

	"scap/internal/flowtab"
)

// CtrlOp is a runtime control operation a worker thread sends back to the
// engine that owns the stream. The paper passes these through the Scap
// socket (setsockopt); here a small per-core queue drained at the top of
// the packet path plays that role, preserving the single-writer discipline
// on stream records.
type CtrlOp uint8

const (
	// OpSetCutoff changes a stream's cutoff (scap_set_stream_cutoff).
	OpSetCutoff CtrlOp = iota
	// OpSetPriority changes a connection's PPL priority (both directions).
	OpSetPriority
	// OpDiscard stops all data collection for a stream
	// (scap_discard_stream).
	OpDiscard
	// OpKeepChunk gives a delivered chunk back to the engine so the next
	// delivery contains the previous and new data merged
	// (scap_keep_stream_chunk).
	OpKeepChunk
	// OpSetParam updates one per-stream parameter
	// (scap_set_stream_parameter).
	OpSetParam
)

// StreamParam identifies per-stream parameters for OpSetParam.
type StreamParam uint8

const (
	ParamChunkSize StreamParam = iota
	ParamOverlapSize
	ParamFlushTimeout
	ParamInactivityTimeout
)

// Ctrl is one control message. Stream identity is validated against ID, so
// a message racing with stream termination is dropped instead of mutating a
// recycled record.
type Ctrl struct {
	Op     CtrlOp
	Stream *flowtab.Stream
	ID     uint64
	Param  StreamParam
	Value  int64
	// Data/Accounted carry the kept chunk for OpKeepChunk.
	Data      []byte
	Accounted int
}

// ctrlQueue is a mutex-guarded MPSC queue (several worker threads may
// target the same engine; only the engine drains).
//
//scap:shared
type ctrlQueue struct {
	mu sync.Mutex
	// msgs is guarded by mu.
	msgs []Ctrl
}

func (q *ctrlQueue) push(c Ctrl) {
	q.mu.Lock()
	q.msgs = append(q.msgs, c)
	q.mu.Unlock()
}

// drain swaps out the pending messages; the caller processes them outside
// the lock.
func (q *ctrlQueue) drain(buf []Ctrl) []Ctrl {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.msgs) == 0 {
		return buf[:0]
	}
	buf = append(buf[:0], q.msgs...)
	q.msgs = q.msgs[:0]
	return buf
}

// Control enqueues a control message for this engine.
func (e *Engine) Control(c Ctrl) { e.ctrl.push(c) }

// applyCtrl executes one validated control message.
func (e *Engine) applyCtrl(c Ctrl) {
	s := c.Stream
	if s == nil || s.ID != c.ID || !s.InTable() {
		// Stream terminated before the message arrived.
		if c.Op == OpKeepChunk && c.Accounted > 0 {
			e.mm.Release(c.Accounted)
		}
		return
	}
	x := ext(s)
	switch c.Op {
	case OpSetCutoff:
		s.Cutoff = c.Value
		if s.Cutoff >= 0 && int64(s.Stats.CapturedBytes) >= s.Cutoff && s.Status == flowtab.StatusActive {
			e.reachCutoff(s, x)
		}
	case OpSetPriority:
		s.Priority = int(c.Value)
		if s.Opposite != nil {
			s.Opposite.Priority = int(c.Value)
		}
	case OpDiscard:
		x.discard = true
		e.dropChunk(s, x)
		e.installFDIR(s, x)
	case OpKeepChunk:
		e.adoptKeptChunk(s, x, c.Data, c.Accounted)
	case OpSetParam:
		switch c.Param {
		case ParamChunkSize:
			if c.Value > 0 {
				s.ChunkSize = int(c.Value)
			}
		case ParamOverlapSize:
			if c.Value >= 0 && int(c.Value) < s.ChunkSize {
				s.OverlapSize = int(c.Value)
			}
		case ParamFlushTimeout:
			s.FlushTimeout = c.Value
		case ParamInactivityTimeout:
			if c.Value > 0 {
				s.InactivityTimeout = c.Value
				if c.Value < e.minInactivity {
					e.minInactivity = c.Value
				}
			}
		}
	}
}

// adoptKeptChunk merges a chunk the application kept back into the
// stream's current chunk so the next delivery includes both.
func (e *Engine) adoptKeptChunk(s *flowtab.Stream, x *streamExt, data []byte, accounted int) {
	cur := &x.chunk
	// The successor chunk was seeded with the kept chunk's overlap tail;
	// drop that prefix to avoid duplicating bytes in the merge.
	newData := []byte(nil)
	if cur.buf != nil {
		newData = cur.buf[cur.overlapLen:]
	}
	chunkSize := s.ChunkSize
	if chunkSize <= 0 {
		chunkSize = e.cfg.ChunkSize
	}
	merged := make([]byte, 0, len(data)+len(newData))
	merged = append(merged, data...)
	merged = append(merged, newData...)
	// Rebase accounting so accounted() equals the kept chunk's charge plus
	// whatever the successor chunk had charged:
	//   accounted() = len(merged) + extraAcct'
	//               = len(data) + len(newData) + extraAcct'
	//   want        = accounted + len(newData) + cur.extraAcct
	// hence extraAcct' = accounted + cur.extraAcct - len(data).
	x.chunk = chunkState{
		buf:        merged,
		size:       len(merged) + chunkSize,
		overlapLen: 0,
		extraAcct:  accounted + cur.extraAcct - len(data),
		holeBefore: cur.holeBefore,
		firstTS:    cur.firstTS,
		pkts:       cur.pkts,
	}
	if x.chunk.firstTS == 0 {
		x.chunk.firstTS = e.now
	}
	e.markDirty(s, x)
}
