package metrics

import (
	"sync"
	"time"
)

// History is a bounded in-process ring of periodic registry snapshots in
// compact form: per tick it keeps every counter's total and windowed rate,
// every gauge, and the p50/p99 of every histogram — enough for scaptop
// sparklines and for replaying a ctlplane episode against the metric
// trajectory that caused it, without retaining per-core breakdowns or full
// bucket vectors. Memory is bounded by depth regardless of uptime.
type History struct {
	reg      *Registry
	win      *Window
	interval time.Duration
	depth    int

	mu    sync.Mutex
	ring  []HistoryPoint
	next  int
	count int

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// HistoryCounter is one counter's compact history sample.
type HistoryCounter struct {
	Name  string  `json:"name"`
	Total uint64  `json:"total"`
	Rate  float64 `json:"rate"`
}

// HistoryQuantiles is one histogram's compact history sample.
type HistoryQuantiles struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
}

// HistoryPoint is one periodic sample of the whole registry.
type HistoryPoint struct {
	TimeUnixNano  int64              `json:"time_unix_nano"`
	WindowSeconds float64            `json:"window_seconds"`
	Counters      []HistoryCounter   `json:"counters"`
	Gauges        []GaugeSnap        `json:"gauges"`
	Quantiles     []HistoryQuantiles `json:"quantiles,omitempty"`
}

// Default history cadence: one sample per second, three minutes retained —
// enough for 60-sample sparklines at any poll rate and for episode replay.
const (
	DefaultHistoryInterval = time.Second
	DefaultHistoryDepth    = 180
)

// NewHistory builds a history ring over reg. interval <= 0 and depth <= 0
// select the defaults. The ring has its own Window, so its rates are
// windowed over the history cadence, independent of /metrics pollers.
func NewHistory(reg *Registry, interval time.Duration, depth int) *History {
	if interval <= 0 {
		interval = DefaultHistoryInterval
	}
	if depth <= 0 {
		depth = DefaultHistoryDepth
	}
	return &History{
		reg:      reg,
		win:      NewWindow(reg),
		interval: interval,
		depth:    depth,
		ring:     make([]HistoryPoint, depth),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the sampling goroutine. Call Stop to halt it; Start is
// idempotent per History (a second call panics on the closed channel model,
// so call it once).
func (h *History) Start() {
	go h.run()
}

//scap:goroutine history
func (h *History) run() {
	defer close(h.done)
	t := time.NewTicker(h.interval)
	defer t.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-t.C:
			h.Tick()
		}
	}
}

// Stop halts the sampling goroutine and waits for it to exit.
func (h *History) Stop() {
	h.once.Do(func() { close(h.stop) })
	<-h.done
}

// Tick takes one sample immediately. The ticker goroutine calls it each
// interval; tests call it directly for deterministic histories.
func (h *History) Tick() {
	p := h.win.Collect()
	pt := HistoryPoint{
		TimeUnixNano:  p.TimeUnixNano,
		WindowSeconds: p.WindowSeconds,
		Gauges:        p.Gauges,
	}
	for i := range p.Counters {
		c := &p.Counters[i]
		pt.Counters = append(pt.Counters, HistoryCounter{
			Name: c.Name, Total: c.Total, Rate: c.Rate,
		})
	}
	for i := range p.Histograms {
		hs := &p.Histograms[i]
		pt.Quantiles = append(pt.Quantiles, HistoryQuantiles{
			Name:  hs.Name,
			Count: hs.Count,
			P50:   QuantileFromSnap(*hs, 0.50),
			P99:   QuantileFromSnap(*hs, 0.99),
		})
	}
	h.mu.Lock()
	h.ring[h.next] = pt
	h.next = (h.next + 1) % h.depth
	if h.count < h.depth {
		h.count++
	}
	h.mu.Unlock()
}

// Points returns the retained samples, oldest first.
func (h *History) Points() []HistoryPoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]HistoryPoint, 0, h.count)
	start := h.next - h.count
	if start < 0 {
		start += h.depth
	}
	for i := 0; i < h.count; i++ {
		out = append(out, h.ring[(start+i)%h.depth])
	}
	return out
}

// HistoryDump is the /debug/history JSON wire format.
type HistoryDump struct {
	TimeUnixNano    int64          `json:"time_unix_nano"`
	IntervalSeconds float64        `json:"interval_seconds"`
	Depth           int            `json:"depth"`
	Points          []HistoryPoint `json:"points"`
}

// Dump packages the retained samples for serving.
func (h *History) Dump() HistoryDump {
	return HistoryDump{
		TimeUnixNano:    h.reg.now(),
		IntervalSeconds: h.interval.Seconds(),
		Depth:           h.depth,
		Points:          h.Points(),
	}
}
