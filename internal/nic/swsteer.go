package nic

import (
	"sync"

	"scap/internal/metrics"
	"scap/internal/pkt"
)

// swSteer is the software stand-in for the 82599's steering silicon, used
// by backends without hardware tables (pcap replay, AF_PACKET): a Toeplitz
// RSS hash picks the queue and a capacity-bounded filter table emulates
// FDIR drop filters on the delivery path. Unlike the hardware model, a
// matching frame here has already been copied once — the shim saves
// stream-memory and pipeline work, not the copy — so its drops are
// attributed to cause "swfilter" rather than "fdir".
//
// Queue-steering filters (ActionQueue) are accepted but ignored: software
// backends have no rebalancing fabric, and Capabilities advertises
// DynamicBalance=false so the engine never installs them.
//
// A single mutex serializes route (backend source goroutines) against
// filter installs (engine goroutines) and Stats readers, mirroring the
// model NIC's register-interface locking.
//
//scap:shared
type swSteer struct {
	mu sync.Mutex
	// key, queues are immutable after newSwSteer.
	key    RSSKey
	queues int
	// filters is guarded by mu.
	filters *filterTable
	// stats is guarded by mu.
	stats Stats
	// scratch is guarded by mu.
	scratch pkt.Packet
}

// swFilterCap bounds the software perfect-filter table. The shim is not
// constrained by TCAM silicon, but an unbounded table would hide the
// engine's eviction logic; size it like the hardware default.
const swFilterCap = DefaultPerfectFilters

func newSwSteer(queues int) *swSteer {
	if queues <= 0 {
		queues = 1
	}
	return &swSteer{
		key:     SymmetricRSSKey(0x6d5a),
		queues:  queues,
		filters: newFilterTable(swFilterCap, DefaultSignatureFilters),
	}
}

// route decodes one frame and answers where it goes: the destination
// queue, or ok=false when the frame is consumed here (undecodable, or
// matched by a software drop filter). Counters are updated under the lock.
func (s *swSteer) route(data []byte) (queue int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Received++
	p := &s.scratch
	if err := pkt.Decode(data, p); err != nil {
		s.stats.DecodeFailures++
		return 0, false
	}
	if f := s.filters.lookup(p); f != nil && f.Action == ActionDrop {
		s.stats.DroppedFilter++
		return 0, false
	}
	hasPorts := p.Key.Proto == pkt.ProtoTCP || p.Key.Proto == pkt.ProtoUDP
	h := RSSHash(&s.key, p.Key.SrcIP, p.Key.DstIP, p.Key.SrcPort, p.Key.DstPort, hasPorts)
	return int(h&0x7f) % s.queues, true
}

// dropRing charges one frame lost to a full delivery ring on queue q.
func (s *swSteer) dropRing() {
	s.mu.Lock()
	s.stats.DroppedRing++
	s.mu.Unlock()
}

// addRing folds externally counted ring losses (the kernel's tp_drops on
// AF_PACKET) into the aggregate; delta may be zero.
func (s *swSteer) addRing(delta uint64) {
	if delta == 0 {
		return
	}
	s.mu.Lock()
	s.stats.DroppedRing += delta
	s.mu.Unlock()
}

// addFilter installs a software filter with the model NIC's eviction
// contract: a full perfect table evicts the earliest-deadline filter set
// and retries, returning the evicted key for the engine to reconcile.
func (s *swSteer) addFilter(spec FilterSpec) (evicted pkt.FlowKey, didEvict bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := spec
	err = s.filters.add(&sp)
	if err == nil || spec.Signature {
		return pkt.FlowKey{}, false, err
	}
	evicted, didEvict = s.filters.evictEarliest()
	if !didEvict {
		return pkt.FlowKey{}, false, err
	}
	if err := s.filters.add(&sp); err != nil {
		return evicted, true, err
	}
	return evicted, true, nil
}

// removeFilters removes every filter for key and reports how many.
func (s *swSteer) removeFilters(key pkt.FlowKey, signature bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.filters.removeKey(key, signature)
}

// filterCount returns the installed (perfect, signature) filter counts.
func (s *swSteer) filterCount() (perfect, signature int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.filters.nPerfect, s.filters.nSignature
}

// snapshot returns the counters.
func (s *swSteer) snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// capabilities describes the shim: software RSS over queues, software
// filter tables, no hardware timestamps, no dynamic balancing.
func (s *swSteer) capabilities() Capabilities {
	return Capabilities{
		RSSQueues:        s.queues,
		PerfectFilters:   swFilterCap,
		SignatureFilters: DefaultSignatureFilters,
	}
}

// publishSwMetrics registers the shared backend counters for a software
// backend under the same metric names the model NIC uses — the Stats view,
// scaptop, and the control plane's drops table read these names on every
// backend — with filter drops attributed to cause "swfilter".
func publishSwMetrics(reg *metrics.Registry, s *swSteer, ringPerQueue func(dst []uint64) []uint64) {
	field := func(f func(*Stats) uint64) func() uint64 {
		return func() uint64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return f(&s.stats)
		}
	}
	reg.NewCounterFunc(metrics.Desc{Name: "nic_frames_total", Help: "frames offered to the capture backend", Unit: "frames", Paper: "Fig. 7 offered load"},
		field(func(st *Stats) uint64 { return st.Received }))
	reg.NewCounterFunc(metrics.Desc{Name: "nic_dropped_filter_total", Help: "frames dropped by the software filter shim", Unit: "frames", Paper: "§5.5 subzero copy (software emulation)", Family: "drops", Cause: "swfilter"},
		field(func(st *Stats) uint64 { return st.DroppedFilter }))
	reg.NewCounterFuncPerCore(metrics.Desc{Name: "nic_dropped_ring_total", Help: "frames lost to full receive rings", Unit: "frames", Paper: "Fig. 7 dropped at NIC", Family: "drops", Cause: "ring_full"},
		field(func(st *Stats) uint64 { return st.DroppedRing }),
		ringPerQueue)
	reg.NewCounterFunc(metrics.Desc{Name: "nic_redirected_total", Help: "frames steered by load-balancing filters (always zero on software backends)", Unit: "frames", Paper: "§2.4 dynamic balance"},
		field(func(st *Stats) uint64 { return st.Redirected }))
	reg.NewCounterFunc(metrics.Desc{Name: "nic_decode_failures_total", Help: "undecodable frames delivered nowhere", Unit: "frames", Paper: ""},
		field(func(st *Stats) uint64 { return st.DecodeFailures }))
}
