// Package reassembly implements Scap's transport-layer reassembly engines:
// the strict and fast ("best-effort") TCP modes described in paper §2.3,
// target-based overlapping-segment policies in the style of Snort's Stream5
// (Novak & Sturges 2007) and Shankar & Paxson's Active Mapping, and an IPv4
// defragmenter used by strict-mode protocol normalization.
package reassembly

import "fmt"

// Mode selects the TCP reassembly discipline (paper §2.3).
type Mode uint8

const (
	// ModeStrict reassembles according to the published guidelines: data
	// is only delivered in sequence, holes are never skipped, and evasion
	// attempts based on IP/TCP fragmentation are normalized away. Segments
	// that cannot be ordered within the buffer budget are dropped with an
	// error flag.
	ModeStrict Mode = iota
	// ModeFast is best-effort: it follows strict semantics while it can
	// (retransmissions, reordering, overlaps) but when a sequence hole
	// cannot be filled within the buffer budget it writes through,
	// flagging the chunk instead of stalling — the resilience-to-loss
	// behaviour Scap needs under overload.
	ModeFast
)

func (m Mode) String() string {
	switch m {
	case ModeStrict:
		return "strict"
	case ModeFast:
		return "fast"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Policy selects the target-based overlap resolution: which bytes win when
// a new segment overlaps data that is buffered but not yet delivered.
// Different operating systems resolve overlaps differently, and a NIDS must
// mirror the monitored host's stack or an attacker can desynchronize it
// (Ptacek & Newsham 1998). The policies here follow the Stream5 model; see
// each constant for the exact rule implemented.
type Policy uint8

const (
	// PolicyFirst keeps the bytes that arrived first, everywhere.
	PolicyFirst Policy = iota
	// PolicyLast always prefers the newest copy of every byte.
	PolicyLast
	// PolicyBSD keeps old data, except that a new segment beginning
	// strictly before the old one wins for the whole overlapped range.
	PolicyBSD
	// PolicyLinux keeps old data, except that a new segment beginning at
	// or before the old one's start wins for the overlapped range.
	PolicyLinux
	// PolicyWindows behaves like PolicyBSD (the Stream5 table groups
	// Windows with BSD for this case); kept distinct so per-host policy
	// configuration reads naturally.
	PolicyWindows
	// PolicySolaris keeps old data unless the new segment completely
	// covers the old one, in which case the new copy wins.
	PolicySolaris
)

func (p Policy) String() string {
	switch p {
	case PolicyFirst:
		return "first"
	case PolicyLast:
		return "last"
	case PolicyBSD:
		return "bsd"
	case PolicyLinux:
		return "linux"
	case PolicyWindows:
		return "windows"
	case PolicySolaris:
		return "solaris"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// newWins reports whether the new segment's bytes win the overlapped range
// against an existing buffered segment, given the relative geometry:
// newStart/newEnd and oldStart/oldEnd in unwrapped sequence space.
func (p Policy) newWins(newStart, newEnd, oldStart, oldEnd int64) bool {
	switch p {
	case PolicyFirst:
		return false
	case PolicyLast:
		return true
	case PolicyBSD, PolicyWindows:
		return newStart < oldStart
	case PolicyLinux:
		return newStart <= oldStart
	case PolicySolaris:
		return newStart <= oldStart && newEnd >= oldEnd
	}
	return false
}
