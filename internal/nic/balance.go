package nic

import "scap/internal/pkt"

// balancer implements the paper's dynamic load balancing (§2.4): RSS's
// static hash can leave cores with uneven stream counts, so when a new
// connection lands on a queue that holds a disproportionate share of the
// active streams, an FDIR queue filter redirects the connection (both
// directions) to the least-loaded queue.
type flowAssign struct {
	queue int8
	fins  uint8
}

type balancer struct {
	counts []int                      // active connections per queue
	flows  map[pkt.FlowKey]flowAssign // canonical key -> assignment
	// imbalanceFactor: a queue is overloaded when its active-stream count
	// exceeds factor × average (plus slack for small counts).
	factor float64
	slack  int
	// Redirects counts installed redirections (stats/tests).
	Redirects uint64
}

func newBalancer(queues int) *balancer {
	return &balancer{
		counts: make([]int, queues),
		flows:  make(map[pkt.FlowKey]flowAssign),
		factor: 1.25,
		slack:  8,
	}
}

// admit records a new connection headed for queue q (after RSS and any
// redirect filter) and returns the queue it should use. If q is overloaded
// it picks the coldest queue and installs redirect filters via n.
func (b *balancer) admit(n *NIC, key pkt.FlowKey, q int, ts int64) int {
	ck, _ := key.Canonical()
	if prev, ok := b.flows[ck]; ok {
		return int(prev.queue)
	}
	total := 0
	coldest := 0
	for i, c := range b.counts {
		total += c
		if c < b.counts[coldest] {
			coldest = i
		}
	}
	avg := float64(total) / float64(len(b.counts))
	if float64(b.counts[q]) > b.factor*avg+float64(b.slack) && coldest != q {
		// Redirect the whole connection to the coldest queue. If the
		// filter table is full the add fails silently and the stream
		// stays where RSS put it.
		spec := FilterSpec{Key: key, Action: ActionQueue, Queue: coldest, Deadline: ts + int64(60e9)}
		if _, _, err := n.filters.addPair(spec); err == nil {
			b.Redirects++
			q = coldest
		}
	}
	b.counts[q]++
	b.flows[ck] = flowAssign{queue: int8(q)}
	return q
}

// close releases a connection's accounting. A connection ends at its RST
// or its second FIN (both directions closed); removing the redirect on the
// first FIN would split the remaining half-connection back onto the RSS
// queue mid-stream.
func (b *balancer) close(n *NIC, key pkt.FlowKey, rst bool) {
	ck, _ := key.Canonical()
	fa, ok := b.flows[ck]
	if !ok {
		return
	}
	if !rst {
		fa.fins++
		if fa.fins < 2 {
			b.flows[ck] = fa
			return
		}
	}
	delete(b.flows, ck)
	if b.counts[fa.queue] > 0 {
		b.counts[fa.queue]--
	}
	n.removeRedirectsLocked(key)
}

// addPair installs queue-redirect filters for both directions of key.
func (t *filterTable) addPair(spec FilterSpec) (pkt.FlowKey, bool, error) {
	s1 := spec
	if err := t.add(&s1); err != nil {
		return pkt.FlowKey{}, false, err
	}
	s2 := spec
	s2.Key = spec.Key.Reverse()
	if err := t.add(&s2); err != nil {
		t.removeKey(s1.Key, false)
		return pkt.FlowKey{}, false, err
	}
	return pkt.FlowKey{}, false, nil
}

// removeRedirectsLocked drops ActionQueue filters for both directions of
// key, leaving any drop filters (cutoff) in place. Callers hold n.mu (the
// balancer runs inside Receive).
func (n *NIC) removeRedirectsLocked(key pkt.FlowKey) {
	for _, k := range []pkt.FlowKey{key, key.Reverse()} {
		specs := n.filters.perfect[k]
		kept := specs[:0]
		removed := 0
		for _, s := range specs {
			if s.Action == ActionQueue {
				removed++
			} else {
				kept = append(kept, s)
			}
		}
		if len(kept) == 0 {
			delete(n.filters.perfect, k)
		} else {
			n.filters.perfect[k] = kept
		}
		n.filters.nPerfect -= removed
	}
}
