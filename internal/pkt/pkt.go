// Package pkt provides the packet model shared by every Scap subsystem:
// a zero-allocation decoder for Ethernet/IPv4/IPv6/TCP/UDP frames, frame
// builders used by the workload generator, the 5-tuple FlowKey, and the
// Internet checksum.
//
// The decoder follows the gopacket DecodingLayerParser philosophy: it parses
// into a caller-owned Packet value and keeps payload references as sub-slices
// of the input frame, so the hot capture path performs no heap allocation.
package pkt

import (
	"fmt"
	"net/netip"
)

// IP protocol numbers understood by the framework.
const (
	ProtoICMP   = 1
	ProtoTCP    = 6
	ProtoUDP    = 17
	ProtoICMPv6 = 58
)

// TCP header flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
	FlagURG = 1 << 5
)

// EtherTypes of interest.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeIPv6 = 0x86DD
	EtherTypeVLAN = 0x8100 // 802.1Q
	EtherTypeQinQ = 0x88A8 // 802.1ad service tag
)

// Header sizes.
const (
	EthernetHeaderLen = 14
	IPv4MinHeaderLen  = 20
	IPv6HeaderLen     = 40
	TCPMinHeaderLen   = 20
	UDPHeaderLen      = 8
)

// Direction of a packet relative to the stream that owns it. The initiator
// of a connection (the sender of the SYN, or of the first packet seen) sends
// in the client direction.
type Direction uint8

const (
	DirClient Direction = 0 // initiator -> responder
	DirServer Direction = 1 // responder -> initiator
)

// Reverse returns the opposite direction.
func (d Direction) Reverse() Direction { return d ^ 1 }

func (d Direction) String() string {
	if d == DirClient {
		return "client"
	}
	return "server"
}

// Packet is the decoded view of one captured frame. Data always aliases the
// frame the packet was decoded from; Payload aliases Data. A Packet is valid
// only as long as the underlying frame buffer is.
type Packet struct {
	// Timestamp is the capture time in nanoseconds of virtual time.
	Timestamp int64
	// Data is the full frame starting at the Ethernet header.
	Data []byte
	// WireLen is the original length on the wire (>= len(Data) when the
	// capture was truncated by a snaplen).
	WireLen int

	// Key is the 5-tuple as it appears in this packet (src = sender).
	Key FlowKey

	EtherType uint16
	IPVersion uint8
	TTL       uint8
	IPID      uint16

	// HasVLAN/VLANID report the outermost 802.1Q tag, if any.
	HasVLAN bool
	VLANID  uint16

	// FragOffset is the IPv4 fragment offset in bytes; MoreFrags reports
	// the MF bit. A packet is a fragment iff FragOffset > 0 || MoreFrags.
	FragOffset int
	MoreFrags  bool

	// L4Offset is the byte offset of the transport header within Data.
	L4Offset int

	// TCP/UDP fields. For UDP only Payload is meaningful beyond the ports.
	Seq      uint32
	Ack      uint32
	TCPFlags uint8
	Window   uint16

	// Payload is the transport payload (TCP segment data / UDP datagram
	// data), aliasing Data. Empty for pure-ACK packets.
	Payload []byte
}

// IsFragment reports whether the packet is a non-first or first IPv4 fragment.
func (p *Packet) IsFragment() bool { return p.FragOffset > 0 || p.MoreFrags }

// HasFlag reports whether all TCP flag bits in mask are set.
func (p *Packet) HasFlag(mask uint8) bool { return p.TCPFlags&mask == mask }

// FlagString renders the TCP flags in the conventional compact form.
func FlagString(flags uint8) string {
	buf := make([]byte, 0, 6)
	names := []struct {
		bit uint8
		ch  byte
	}{
		{FlagSYN, 'S'}, {FlagFIN, 'F'}, {FlagRST, 'R'},
		{FlagPSH, 'P'}, {FlagACK, 'A'}, {FlagURG, 'U'},
	}
	for _, n := range names {
		if flags&n.bit != 0 {
			buf = append(buf, n.ch)
		}
	}
	if len(buf) == 0 {
		return "."
	}
	return string(buf)
}

// SeqLen is the amount of TCP sequence space the packet consumes: payload
// bytes plus one for SYN and one for FIN.
func (p *Packet) SeqLen() uint32 {
	n := uint32(len(p.Payload))
	if p.TCPFlags&FlagSYN != 0 {
		n++
	}
	if p.TCPFlags&FlagFIN != 0 {
		n++
	}
	return n
}

func (p *Packet) String() string {
	switch p.Key.Proto {
	case ProtoTCP:
		return fmt.Sprintf("%s [%s] seq=%d ack=%d len=%d",
			p.Key, FlagString(p.TCPFlags), p.Seq, p.Ack, len(p.Payload))
	default:
		return fmt.Sprintf("%s len=%d", p.Key, len(p.Payload))
	}
}

// MustAddr parses an address, panicking on failure. Intended for tests and
// generators with literal addresses.
func MustAddr(s string) netip.Addr {
	a, err := netip.ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}
