package metrics

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// promSnapshot is a hand-built deterministic snapshot exercising every
// exposition branch: per-core counter, func counter, gauge, histogram with
// overflow, and a histogram carrying a tail exemplar.
func promSnapshot() Snapshot {
	return Snapshot{
		TimeUnixNano: 1_700_000_010_000_000_000,
		Counters: []CounterSnap{
			{Desc: Desc{Name: "packets_total", Help: "packets processed", Unit: "packets"}, Total: 300, PerCore: []uint64{200, 100}},
			{Desc: Desc{Name: "mem_admitted_total", Unit: "bytes"}, Total: 4096},
		},
		Gauges: []GaugeSnap{
			{Desc: Desc{Name: "memory_used_bytes", Unit: "bytes"}, Value: 1 << 20},
		},
		Histograms: []HistogramSnap{
			{
				Desc:  Desc{Name: "event_batch_size", Unit: "events"},
				Count: 3,
				Sum:   13,
				Buckets: []BucketSnap{
					{Le: 1, Count: 1},
					{Le: 2, Count: 0},
					{Le: 4, Count: 1},
					{Le: 0, Count: 1}, // overflow
				},
			},
			{
				Desc:  Desc{Name: "stage_ring_worker_ns", Unit: "ns"},
				Count: 2,
				Sum:   5000,
				Buckets: []BucketSnap{
					{Le: 1024, Count: 1},
					{Le: 4096, Count: 1},
					{Le: 0, Count: 0},
				},
				Exemplar: &ExemplarSnap{Value: 3000, StreamID: 42, Le: 4096, AgeNano: 2_000_000_000},
			},
		},
	}
}

func TestWritePromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProm(&buf, promSnapshot()); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	path := filepath.Join("testdata", "metrics.prom.golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("prom exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestWritePromShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProm(&buf, promSnapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE packets counter",
		`packets_total{core="0"} 200`,
		`packets_total{core="1"} 100`,
		"mem_admitted_total 4096",
		"# TYPE memory_used_bytes gauge",
		"memory_used_bytes 1048576",
		// Cumulative buckets: 1, then 1+0, 1+0+1, then +Inf includes overflow.
		`event_batch_size_bucket{le="1"} 1`,
		`event_batch_size_bucket{le="2"} 1`,
		`event_batch_size_bucket{le="4"} 2`,
		`event_batch_size_bucket{le="+Inf"} 3`,
		"event_batch_size_sum 13",
		"event_batch_size_count 3",
		// Exemplar rides on its containing bucket, timestamp = snap - age.
		`stage_ring_worker_ns_bucket{le="4096"} 2 # {stream_id="42"} 3000 1700000008`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("exposition must end with # EOF, got tail %q", out[len(out)-20:])
	}
}

// TestPromLiveRegistry runs the writer over a real registry snapshot to make
// sure nothing in the real pipeline (desc fields, per-core layout) trips it.
func TestPromLiveRegistry(t *testing.T) {
	r := NewRegistry(2)
	c := r.NewCounter(Desc{Name: "frames_total"})
	c.Cell(0).Add(5)
	h := r.NewHistogram(Desc{Name: "chunk_bytes", Unit: "bytes"}, 4)
	h.ObserveEx(0, 9, 7)
	var buf bytes.Buffer
	if err := WriteProm(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `frames_total{core="0"} 5`) {
		t.Errorf("missing per-core counter:\n%s", out)
	}
	if !strings.Contains(out, `# {stream_id="7"} 9`) {
		t.Errorf("missing exemplar from live registry:\n%s", out)
	}
}
