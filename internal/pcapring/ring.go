// Package pcapring models the PF_PACKET shared ring buffer that Libpcap
// (and therefore YAF, Libnids, and Snort) uses on Linux: the kernel copies
// every frame — truncated to the snaplen — into a fixed-size memory-mapped
// ring, and the application consumes frames from it at user level. When
// the application falls behind and the ring fills, arriving frames are
// dropped, which is exactly the loss mechanism the paper measures for the
// user-level baselines.
package pcapring

// Frame is one captured frame in the ring.
type Frame struct {
	Data    []byte
	TS      int64
	WireLen int
}

// Stats counts ring activity.
type Stats struct {
	Received uint64 // frames offered
	Dropped  uint64 // frames lost to a full ring
	Bytes    uint64 // bytes stored (after snaplen truncation)
}

// Ring is the shared buffer. Like the kernel ring it is bounded in bytes,
// not frames; each stored frame also pays a fixed per-slot header overhead.
type Ring struct {
	capBytes int
	snaplen  int
	used     int
	frames   []Frame
	head     int
	n        int
	stats    Stats
}

// slotOverhead approximates tpacket's per-frame header + alignment.
const slotOverhead = 64

// New creates a ring of capBytes total capacity (default 512 MB, the
// paper's setting) and the given snaplen (0 = full frames).
func New(capBytes, snaplen int) *Ring {
	if capBytes <= 0 {
		capBytes = 512 << 20
	}
	if snaplen <= 0 {
		snaplen = 1 << 16
	}
	return &Ring{
		capBytes: capBytes,
		snaplen:  snaplen,
		frames:   make([]Frame, 1024),
	}
}

// Push copies one frame into the ring; false means the ring was full and
// the frame was dropped. The input slice is copied (the kernel's copy into
// the mmap area), so callers may reuse it.
func (r *Ring) Push(data []byte, ts int64) bool {
	r.stats.Received++
	capLen := len(data)
	if capLen > r.snaplen {
		capLen = r.snaplen
	}
	need := capLen + slotOverhead
	if r.used+need > r.capBytes {
		r.stats.Dropped++
		return false
	}
	if r.n == len(r.frames) {
		r.growSlots()
	}
	cp := make([]byte, capLen)
	copy(cp, data[:capLen])
	r.frames[(r.head+r.n)%len(r.frames)] = Frame{Data: cp, TS: ts, WireLen: len(data)}
	r.n++
	r.used += need
	r.stats.Bytes += uint64(capLen)
	return true
}

// Pop removes the oldest frame.
func (r *Ring) Pop() (Frame, bool) {
	if r.n == 0 {
		return Frame{}, false
	}
	f := r.frames[r.head]
	r.frames[r.head] = Frame{}
	r.head = (r.head + 1) % len(r.frames)
	r.n--
	r.used -= len(f.Data) + slotOverhead
	return f, true
}

// Len returns the number of queued frames.
func (r *Ring) Len() int { return r.n }

// UsedBytes returns current occupancy.
func (r *Ring) UsedBytes() int { return r.used }

// Stats returns a snapshot of the counters.
func (r *Ring) Stats() Stats { return r.stats }

func (r *Ring) growSlots() {
	bigger := make([]Frame, len(r.frames)*2)
	for i := 0; i < r.n; i++ {
		bigger[i] = r.frames[(r.head+i)%len(r.frames)]
	}
	r.frames = bigger
	r.head = 0
}
