package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEngineHotPathAllocZeroExceptions loads the real scap/internal/core
// package and runs hotpathalloc RAW — without the //scaplint:ignore
// suppression filtering — so the arena-backed chunk path is held to the
// strictest standard: the per-packet engine must need no allocations and
// no audited exceptions at all.
func TestEngineHotPathAllocZeroExceptions(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Packages("scap/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded for scap/internal/core")
	}
	for _, p := range pkgs {
		for _, d := range HotPathAlloc.Run(p) {
			t.Errorf("hot-path allocation in %s: %s", d.Pos, d.Message)
		}
	}
	// The two audited pragmas the arena refactor deleted must not creep
	// back in: a clean run above plus zero suppressions below means the
	// claim "zero steady-state allocations" is enforced, not waived.
	src, err := os.ReadFile(filepath.Join(root, "internal", "core", "engine.go"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(src), "scaplint:ignore hotpathalloc") {
		t.Error("internal/core/engine.go carries a hotpathalloc suppression; the arena path is supposed to need none")
	}
}
