package bpf

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"scap/internal/pkt"
)

// parser is a recursive-descent parser over the token stream with one token
// of lookahead.
type parser struct {
	lex lexer
	tok token
	err error
}

func (ps *parser) advance() {
	if ps.err != nil {
		return
	}
	ps.tok, ps.err = ps.lex.next()
}

func (ps *parser) fail(format string, args ...any) {
	if ps.err == nil {
		ps.err = fmt.Errorf("bpf: "+format, args...)
	}
}

// parse parses a full expression. An empty expression matches everything,
// matching libpcap's behaviour for an empty filter string.
func parse(expr string) (node, error) {
	ps := &parser{lex: lexer{input: expr}}
	ps.advance()
	if ps.err != nil {
		return nil, ps.err
	}
	if ps.tok.kind == tokEOF {
		return trueNode{}, nil
	}
	n := ps.parseOr()
	if ps.err != nil {
		return nil, ps.err
	}
	if ps.tok.kind != tokEOF {
		return nil, fmt.Errorf("bpf: trailing %s at offset %d", ps.tok, ps.tok.pos)
	}
	return n, nil
}

func (ps *parser) parseOr() node {
	left := ps.parseAnd()
	for ps.err == nil && (ps.tok.kind == tokOrOr || ps.isWord("or")) {
		ps.advance()
		right := ps.parseAnd()
		left = &orNode{left, right}
	}
	return left
}

func (ps *parser) parseAnd() node {
	left := ps.parseUnary()
	for ps.err == nil && (ps.tok.kind == tokAndAnd || ps.isWord("and")) {
		ps.advance()
		right := ps.parseUnary()
		left = &andNode{left, right}
	}
	return left
}

func (ps *parser) parseUnary() node {
	switch {
	case ps.tok.kind == tokBang || ps.isWord("not"):
		ps.advance()
		return &notNode{ps.parseUnary()}
	case ps.tok.kind == tokLParen:
		ps.advance()
		n := ps.parseOr()
		if ps.tok.kind != tokRParen {
			ps.fail("expected ) at offset %d, found %s", ps.tok.pos, ps.tok)
			return trueNode{}
		}
		ps.advance()
		return n
	}
	return ps.parsePrimitive()
}

func (ps *parser) isWord(w string) bool {
	return ps.tok.kind == tokWord && ps.tok.text == w
}

// parsePrimitive parses one primitive, handling protocol qualifiers
// ("tcp port 80") and direction qualifiers ("src host 10.0.0.1").
func (ps *parser) parsePrimitive() node {
	if ps.err != nil {
		return trueNode{}
	}
	if ps.tok.kind != tokWord {
		ps.fail("expected primitive at offset %d, found %s", ps.tok.pos, ps.tok)
		return trueNode{}
	}

	// Optional protocol qualifier.
	var protoQual node
	switch ps.tok.text {
	case "tcp", "udp", "icmp", "icmp6":
		name := ps.tok.text
		protoQual = &protoNode{protoByName(name)}
		ps.advance()
		if ps.tok.kind == tokLBracket {
			layer := layerTCP
			if name == "udp" {
				layer = layerUDP
			}
			if name == "icmp" || name == "icmp6" {
				ps.fail("byte expressions support ip, tcp, and udp only")
				return trueNode{}
			}
			return ps.parseByteExpr(layer)
		}
		// Bare protocol name is a complete primitive.
		if !ps.startsDirOrPrim() {
			return protoQual
		}
	case "ip":
		ps.advance()
		if ps.tok.kind == tokLBracket {
			return ps.parseByteExpr(layerIP)
		}
		if ps.isWord("proto") {
			ps.advance()
			v := ps.parseNumber(255)
			return &protoNode{uint8(v)}
		}
		return &ipVersionNode{4}
	case "ip6":
		ps.advance()
		return &ipVersionNode{6}
	case "proto":
		ps.advance()
		v := ps.parseNumber(255)
		return &protoNode{uint8(v)}
	case "less":
		ps.advance()
		return &lenNode{less: true, limit: ps.parseNumber(1 << 30)}
	case "greater":
		ps.advance()
		return &lenNode{less: false, limit: ps.parseNumber(1 << 30)}
	case "vlan":
		ps.advance()
		if ps.tok.kind == tokNumber {
			return &vlanNode{id: ps.parseNumber(4095)}
		}
		return &vlanNode{id: -1}
	}

	dir := dirAny
	switch {
	case ps.isWord("src"):
		dir = dirSrc
		ps.advance()
	case ps.isWord("dst"):
		dir = dirDst
		ps.advance()
	}

	var prim node
	switch {
	case ps.isWord("host"):
		ps.advance()
		prim = &hostNode{dir: dir, addr: ps.parseAddr()}
	case ps.isWord("net"):
		ps.advance()
		prim = &netNode{dir: dir, prefix: ps.parsePrefix()}
	case ps.isWord("port"):
		ps.advance()
		v := ps.parseNumber(65535)
		prim = &portNode{dir: dir, lo: uint16(v), hi: uint16(v)}
	case ps.isWord("portrange"):
		ps.advance()
		lo := ps.parseNumber(65535)
		if ps.tok.kind != tokDash {
			ps.fail("expected - in portrange at offset %d", ps.tok.pos)
			return trueNode{}
		}
		ps.advance()
		hi := ps.parseNumber(65535)
		if hi < lo {
			ps.fail("portrange %d-%d is inverted", lo, hi)
			return trueNode{}
		}
		prim = &portNode{dir: dir, lo: uint16(lo), hi: uint16(hi)}
	default:
		ps.fail("expected primitive at offset %d, found %s", ps.tok.pos, ps.tok)
		return trueNode{}
	}
	if protoQual != nil {
		return &andNode{protoQual, prim}
	}
	return prim
}

// startsDirOrPrim reports whether the current token begins a qualified
// sub-primitive (so "tcp port 80" groups, while "tcp and ..." does not).
func (ps *parser) startsDirOrPrim() bool {
	if ps.tok.kind != tokWord {
		return false
	}
	switch ps.tok.text {
	case "src", "dst", "port", "portrange", "host", "net":
		return true
	}
	return false
}

// parseByteExpr parses "[off]" or "[off:2]", an optional "& mask", a
// comparison operator, and a value; the opening bracket is current.
func (ps *parser) parseByteExpr(layer byteLayer) node {
	ps.advance() // consume '['
	off, size := -1, 1
	switch {
	case ps.tok.kind == tokNumber:
		off = ps.parseNumber(1 << 16)
		if ps.tok.kind != tokRBracket {
			ps.fail("expected ] at offset %d, found %s", ps.tok.pos, ps.tok)
			return trueNode{}
		}
	case ps.tok.kind == tokWord:
		// "off:size" lexes as one word because ':' is an address rune.
		var ok bool
		off, size, ok = splitIndex(ps.tok.text)
		if !ok {
			ps.fail("bad byte index %q", ps.tok.text)
			return trueNode{}
		}
		ps.advance()
		if ps.tok.kind != tokRBracket {
			ps.fail("expected ] at offset %d, found %s", ps.tok.pos, ps.tok)
			return trueNode{}
		}
	default:
		ps.fail("expected byte offset at offset %d, found %s", ps.tok.pos, ps.tok)
		return trueNode{}
	}
	ps.advance() // consume ']'

	n := &byteExprNode{layer: layer, off: off, size: size}
	if ps.tok.kind == tokAmp {
		ps.advance()
		m, ok := ps.parseValue()
		if !ok {
			return trueNode{}
		}
		n.mask = m
	}
	if ps.tok.kind != tokCmp {
		ps.fail("expected comparison at offset %d, found %s", ps.tok.pos, ps.tok)
		return trueNode{}
	}
	switch ps.tok.text {
	case "=", "==":
		n.op = cmpEq
	case "!=":
		n.op = cmpNe
	case "<":
		n.op = cmpLt
	case "<=":
		n.op = cmpLe
	case ">":
		n.op = cmpGt
	case ">=":
		n.op = cmpGe
	}
	ps.advance()
	v, ok := ps.parseValue()
	if !ok {
		return trueNode{}
	}
	n.val = v
	return n
}

// splitIndex parses "off:size" with size 1 or 2.
func splitIndex(s string) (off, size int, ok bool) {
	i := strings.IndexByte(s, ':')
	if i <= 0 || i == len(s)-1 {
		return 0, 0, false
	}
	o, err1 := strconv.Atoi(s[:i])
	z, err2 := strconv.Atoi(s[i+1:])
	if err1 != nil || err2 != nil || o < 0 || (z != 1 && z != 2) {
		return 0, 0, false
	}
	return o, z, true
}

// parseValue accepts decimal or 0x-hex numeric literals.
func (ps *parser) parseValue() (uint32, bool) {
	if ps.tok.kind != tokNumber && ps.tok.kind != tokWord {
		ps.fail("expected value at offset %d, found %s", ps.tok.pos, ps.tok)
		return 0, false
	}
	v, err := strconv.ParseUint(ps.tok.text, 0, 32)
	if err != nil {
		ps.fail("bad value %q", ps.tok.text)
		return 0, false
	}
	ps.advance()
	return uint32(v), true
}

func (ps *parser) parseNumber(max int) int {
	if ps.tok.kind != tokNumber {
		ps.fail("expected number at offset %d, found %s", ps.tok.pos, ps.tok)
		return 0
	}
	v, err := strconv.Atoi(ps.tok.text)
	if err != nil || v < 0 || v > max {
		ps.fail("number %q out of range [0,%d]", ps.tok.text, max)
		return 0
	}
	ps.advance()
	return v
}

func (ps *parser) parseAddr() netip.Addr {
	if ps.tok.kind != tokWord && ps.tok.kind != tokNumber {
		ps.fail("expected address at offset %d, found %s", ps.tok.pos, ps.tok)
		return netip.Addr{}
	}
	a, err := netip.ParseAddr(ps.tok.text)
	if err != nil {
		ps.fail("bad address %q: %v", ps.tok.text, err)
		return netip.Addr{}
	}
	ps.advance()
	return a
}

// parsePrefix parses ADDR/len; a bare address becomes a full-length prefix.
func (ps *parser) parsePrefix() netip.Prefix {
	a := ps.parseAddr()
	if ps.err != nil {
		return netip.Prefix{}
	}
	bits := a.BitLen()
	if ps.tok.kind == tokSlash {
		ps.advance()
		bits = ps.parseNumber(a.BitLen())
	}
	p, err := a.Prefix(bits)
	if err != nil {
		ps.fail("bad prefix: %v", err)
		return netip.Prefix{}
	}
	return p
}

func protoByName(name string) uint8 {
	switch name {
	case "tcp":
		return pkt.ProtoTCP
	case "udp":
		return pkt.ProtoUDP
	case "icmp":
		return pkt.ProtoICMP
	case "icmp6":
		return pkt.ProtoICMPv6
	}
	panic("bpf: unknown protocol name " + name)
}
