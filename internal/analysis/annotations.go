package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Source annotations recognized by the analyzers.
const (
	// hotpathMarker marks a function as part of the per-packet path.
	hotpathMarker = "scap:hotpath"
	// sharedMarker marks a type as accessed by more than one goroutine.
	sharedMarker = "scap:shared"
	// publicapiMarker marks a package (via any file) as audited public
	// API: every exported symbol must carry a doc comment.
	publicapiMarker = "scap:publicapi"
	// ignoreMarker suppresses diagnostics on its line or the line below.
	ignoreMarker = "scaplint:ignore"
)

// hasMarker reports whether any comment line of cg is "//<marker>" with
// optional trailing prose.
func hasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

// hotpathFuncs returns the functions of p marked //scap:hotpath.
func hotpathFuncs(p *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && hasMarker(fd.Doc, hotpathMarker) {
				out = append(out, fd)
			}
		}
	}
	return out
}

// namedStruct is one struct type declaration together with its markers.
type namedStruct struct {
	Name   string
	Spec   *ast.TypeSpec
	Struct *ast.StructType
	Shared bool
}

// structTypes returns every struct type declared in p. The //scap:shared
// marker is honored on both the TypeSpec and its enclosing GenDecl doc.
func structTypes(p *Package) []namedStruct {
	var out []namedStruct
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				shared := hasMarker(ts.Doc, sharedMarker) ||
					(len(gd.Specs) == 1 && hasMarker(gd.Doc, sharedMarker))
				out = append(out, namedStruct{Name: ts.Name.Name, Spec: ts, Struct: st, Shared: shared})
			}
		}
	}
	return out
}

// guardedFields parses "guarded by <mutex>" annotations from a struct's
// field comments (doc comment above or line comment beside the field) and
// returns fieldName -> mutexFieldName.
func guardedFields(st *ast.StructType) map[string]string {
	guards := make(map[string]string)
	for _, field := range st.Fields.List {
		mu := guardName(field.Doc)
		if mu == "" {
			mu = guardName(field.Comment)
		}
		if mu == "" {
			continue
		}
		for _, name := range field.Names {
			guards[name.Name] = mu
		}
	}
	return guards
}

// guardName extracts the mutex name following "guarded by" in a comment
// group, or "" if absent.
func guardName(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		text := strings.ToLower(c.Text)
		idx := strings.Index(text, "guarded by ")
		if idx < 0 {
			continue
		}
		rest := c.Text[idx+len("guarded by "):]
		name := strings.FieldsFunc(rest, func(r rune) bool {
			return !isIdentRune(r)
		})
		if len(name) > 0 {
			return name[0]
		}
	}
	return ""
}

func isIdentRune(r rune) bool {
	return r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
}

// methodsOf returns the methods declared on type name (any receiver form).
func methodsOf(p *Package, name string) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			if receiverTypeName(fd) == name {
				out = append(out, fd)
			}
		}
	}
	return out
}

// receiverTypeName returns the bare type name of a method's receiver.
func receiverTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// receiverName returns the receiver variable's name, or "" for _ / unnamed.
func receiverName(fd *ast.FuncDecl) string {
	names := fd.Recv.List[0].Names
	if len(names) == 0 {
		return ""
	}
	return names[0].Name
}

// --- suppressions ---

type suppressionSet struct {
	// byLine maps filename -> line -> analyzer names (or "all").
	byLine map[string]map[int]map[string]bool
}

// suppressions collects every //scaplint:ignore comment in the package.
func (p *Package) suppressions() suppressionSet {
	s := suppressionSet{byLine: make(map[string]map[int]map[string]bool)}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, ignoreMarker)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				pos := p.Fset.Position(c.Pos())
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					s.byLine[pos.Filename] = lines
				}
				names := lines[pos.Line]
				if names == nil {
					names = make(map[string]bool)
					lines[pos.Line] = names
				}
				if len(fields) == 0 {
					names["all"] = true
				} else {
					names[fields[0]] = true
				}
			}
		}
	}
	return s
}

// matches reports whether d is suppressed by an ignore comment on its own
// line or on the line directly above it.
func (s suppressionSet) matches(d Diagnostic) bool {
	lines := s.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if names := lines[line]; names != nil {
			if names["all"] || names[d.Analyzer] {
				return true
			}
		}
	}
	return false
}
