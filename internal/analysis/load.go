package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("scap/internal/core") or, for directories
	// loaded outside the module (testdata fixtures), the directory path.
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker complaints. The analyzers run on
	// best-effort type information, so these are warnings, not fatal.
	TypeErrors []error
}

// Loader parses and type-checks packages of one module without shelling
// out to the go tool: module-internal imports are resolved from source,
// everything else goes through the stdlib source importer (GOROOT).
type Loader struct {
	Fset    *token.FileSet
	root    string // module root directory
	modPath string // module path from go.mod
	dirFor  map[string]string
	cache   map[string]*Package
	loading map[string]bool
	std     types.Importer
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// NewLoader indexes the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	modData, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(modData), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		root:    root,
		modPath: modPath,
		dirFor:  make(map[string]string),
		cache:   make(map[string]*Package),
		loading: make(map[string]bool),
		std:     importer.ForCompiler(fset, "source", nil),
	}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == ".git" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			ip := modPath
			if rel != "." {
				ip = modPath + "/" + filepath.ToSlash(rel)
			}
			l.dirFor[ip] = path
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return l, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if goSource(e) {
			return true
		}
	}
	return false
}

func goSource(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".")
}

// Packages resolves patterns to loaded packages. Supported patterns:
// "./..." (every package of the module), an import path within the module,
// or a directory path (absolute or ./relative).
func (l *Loader) Packages(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var paths []string
	seen := make(map[string]bool)
	add := func(ip string) {
		if !seen[ip] {
			seen[ip] = true
			paths = append(paths, ip)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "all" || pat == l.modPath+"/...":
			all := make([]string, 0, len(l.dirFor))
			for ip := range l.dirFor {
				all = append(all, ip)
			}
			sort.Strings(all)
			for _, ip := range all {
				add(ip)
			}
		default:
			if _, ok := l.dirFor[pat]; ok {
				add(pat)
				continue
			}
			// Directory form: ./internal/core or an absolute path.
			dir := pat
			if !filepath.IsAbs(dir) {
				dir = filepath.Join(l.root, dir)
			}
			rel, err := filepath.Rel(l.root, dir)
			if err != nil || strings.HasPrefix(rel, "..") {
				return nil, fmt.Errorf("analysis: pattern %q is outside module %s", pat, l.modPath)
			}
			ip := l.modPath
			if rel != "." {
				ip = l.modPath + "/" + filepath.ToSlash(rel)
			}
			if _, ok := l.dirFor[ip]; !ok {
				// Not in the module index (e.g. a testdata fixture dir):
				// load it standalone when it holds Go files.
				if hasGoFiles(dir) {
					p, err := l.LoadDir(dir)
					if err != nil {
						return nil, err
					}
					if !seen[p.Path] {
						seen[p.Path] = true
						l.cache[p.Path] = p
						paths = append(paths, p.Path)
					}
					continue
				}
				return nil, fmt.Errorf("analysis: no package for pattern %q", pat)
			}
			add(ip)
		}
	}
	pkgs := make([]*Package, 0, len(paths))
	for _, ip := range paths {
		p, err := l.load(ip)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// load type-checks one module package by import path, memoized.
func (l *Loader) load(ip string) (*Package, error) {
	if p, ok := l.cache[ip]; ok {
		return p, nil
	}
	if l.loading[ip] {
		return nil, fmt.Errorf("analysis: import cycle through %s", ip)
	}
	dir, ok := l.dirFor[ip]
	if !ok {
		return nil, fmt.Errorf("analysis: unknown package %s", ip)
	}
	l.loading[ip] = true
	defer delete(l.loading, ip)
	p, err := l.check(ip, dir)
	if err != nil {
		return nil, err
	}
	l.cache[ip] = p
	return p, nil
}

// LoadDir loads a directory outside the module index (testdata fixtures).
// Its imports may only reference the standard library or module packages.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.check(dir, dir)
}

func (l *Loader) check(path, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset}
	for _, e := range ents {
		if !goSource(e) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		p.Files = append(p.Files, f)
	}
	if len(p.Files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: importerFunc(l.importPkg),
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	// Check returns a usable (if incomplete) package even on type errors;
	// the analyzers degrade gracefully on missing type info.
	p.Types, _ = conf.Check(path, l.Fset, p.Files, p.Info)
	return p, nil
}

func (l *Loader) importPkg(ipath string) (*types.Package, error) {
	if ipath == "unsafe" {
		return types.Unsafe, nil
	}
	if ipath == l.modPath || strings.HasPrefix(ipath, l.modPath+"/") {
		p, err := l.load(ipath)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(ipath)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
