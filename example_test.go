package scap_test

import (
	"fmt"
	"sort"
	"sync"

	"scap"
	"scap/internal/pkt"
)

// mkFrames builds one complete TCP conversation for the runnable examples.
func mkFrames() [][]byte {
	key := pkt.FlowKey{
		SrcIP: pkt.MustAddr("10.0.0.1"), DstIP: pkt.MustAddr("192.0.2.80"),
		SrcPort: 44000, DstPort: 80, Proto: pkt.ProtoTCP,
	}
	req := []byte("GET / HTTP/1.1\r\n\r\n")
	resp := []byte("HTTP/1.1 200 OK\r\n\r\n")
	return [][]byte{
		pkt.BuildTCP(pkt.TCPSpec{Key: key, Seq: 100, Flags: pkt.FlagSYN}),
		pkt.BuildTCP(pkt.TCPSpec{Key: key.Reverse(), Seq: 500, Ack: 101, Flags: pkt.FlagSYN | pkt.FlagACK}),
		pkt.BuildTCP(pkt.TCPSpec{Key: key, Seq: 101, Ack: 501, Flags: pkt.FlagACK | pkt.FlagPSH, Payload: req}),
		pkt.BuildTCP(pkt.TCPSpec{Key: key.Reverse(), Seq: 501, Ack: 101 + uint32(len(req)), Flags: pkt.FlagACK | pkt.FlagPSH, Payload: resp}),
		pkt.BuildTCP(pkt.TCPSpec{Key: key, Seq: 101 + uint32(len(req)), Ack: 501 + uint32(len(resp)), Flags: pkt.FlagFIN | pkt.FlagACK}),
		pkt.BuildTCP(pkt.TCPSpec{Key: key.Reverse(), Seq: 501 + uint32(len(resp)), Ack: 102 + uint32(len(req)), Flags: pkt.FlagFIN | pkt.FlagACK}),
	}
}

// Example demonstrates the stream-oriented capture flow: create a socket,
// register callbacks, start, inject traffic, close.
func Example() {
	h, _ := scap.Create(scap.Config{ReassemblyMode: scap.TCPFast, Queues: 1})

	var mu sync.Mutex
	var lines []string
	h.DispatchData(func(sd *scap.Stream) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf("%s %d bytes", sd.Dir(), len(sd.Data)))
		mu.Unlock()
	})

	h.StartCapture()
	for i, f := range mkFrames() {
		h.InjectFrame(f, int64(i+1)*1000)
	}
	h.Close()

	mu.Lock()
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	mu.Unlock()
	// Output:
	// client 18 bytes
	// server 19 bytes
}

// ExampleHandle_SetCutoff shows flow-statistics-only capture: with cutoff
// zero the capture core discards every payload byte after accounting, so
// no data events fire at all (paper §3.3.1).
func ExampleHandle_SetCutoff() {
	h, _ := scap.Create(scap.Config{Queues: 1})
	h.SetCutoff(0)

	var mu sync.Mutex
	dataEvents := 0
	var closed []string
	h.DispatchData(func(*scap.Stream) { mu.Lock(); dataEvents++; mu.Unlock() })
	h.DispatchTermination(func(sd *scap.Stream) {
		mu.Lock()
		closed = append(closed, fmt.Sprintf("%s closed after %d packets", sd.Dir(), sd.Stats().Pkts))
		mu.Unlock()
	})

	h.StartCapture()
	for i, f := range mkFrames() {
		h.InjectFrame(f, int64(i+1)*1000)
	}
	h.Close()

	mu.Lock()
	sort.Strings(closed)
	for _, l := range closed {
		fmt.Println(l)
	}
	fmt.Println("data events:", dataEvents)
	mu.Unlock()
	// Output:
	// client closed after 3 packets
	// server closed after 3 packets
	// data events: 0
}
