// Package baseline reimplements the evaluation's comparison systems on top
// of the PF_PACKET-style ring (internal/pcapring): a Libnids-like and a
// Snort-Stream5-like user-level TCP reassembler, and a YAF-like flow meter.
// They reproduce the properties the paper measures the baselines by:
//
//   - every packet is copied into the shared ring by the kernel and read
//     by the application, even packets the application then discards;
//   - TCP reassembly happens at user level with a second copy from the
//     ring buffer into per-stream buffers;
//   - the connection table has a fixed capacity (Figure 5's lost streams);
//   - a connection is only tracked if its SYN was seen, so handshake
//     packets lost in the ring lose the whole stream (Figure 6c).
package baseline

import (
	"scap/internal/pcapring"
	"scap/internal/pkt"
	"scap/internal/reassembly"
)

// TableFullPolicy says what a reassembler does when its connection table
// is full and a new connection arrives.
type TableFullPolicy uint8

const (
	// RejectNew drops the new connection (Libnids behaviour).
	RejectNew TableFullPolicy = iota
	// EvictOldest prunes the least recently active connection (Snort's
	// pruning under memcap pressure).
	EvictOldest
)

// UserConfig parametrizes a user-level reassembler.
type UserConfig struct {
	// MaxFlows bounds the connection table (connections, not directions).
	MaxFlows int
	// Policy is the overlap policy (Libnids emulates Linux; Stream5 is
	// target-based, defaulting to BSD).
	Policy reassembly.Policy
	// OnFull selects the table-full behaviour.
	OnFull TableFullPolicy
	// ChunkSize batches delivered stream data (Snort's flush point); 0
	// delivers per segment like Libnids' data callbacks.
	ChunkSize int
	// Cutoff, when >= 0, stops collecting a stream's data after that many
	// bytes (the user-level cutoff patch of Figure 8). CutoffUnlimited
	// (-1) disables it.
	Cutoff int64
	// InactivityTimeout expires idle connections.
	InactivityTimeout int64
	// RequireHandshake: only track connections whose SYN was observed.
	RequireHandshake bool
}

// CutoffUnlimited disables the user-level cutoff.
const CutoffUnlimited = int64(-1)

// UserStream is one tracked direction.
type UserStream struct {
	Key      pkt.FlowKey
	Asm      *reassembly.Assembler
	Buf      []byte // current pending chunk
	Bytes    uint64 // payload bytes seen
	Captured uint64 // bytes collected before the cutoff
	Closed   bool
}

// conn is one tracked connection.
type conn struct {
	client, server *UserStream
	lastAccess     int64
	finC, finS     bool
}

// Counters expose the work done, which the simulator prices.
type Counters struct {
	Packets        uint64
	RingBytesRead  uint64 // bytes read out of the ring (copy 1 happens at Push)
	ReassemblyCopy uint64 // bytes copied into stream buffers (the extra copy)
	DeliveredBytes uint64
	StreamsTracked uint64
	StreamsRefused uint64 // table full (RejectNew)
	StreamsEvicted uint64 // table full (EvictOldest)
	StreamsNoSYN   uint64 // data for untracked connections (lost handshake)
	Expired        uint64
}

// DataFunc receives reassembled stream data at user level.
type DataFunc func(s *UserStream, data []byte)

// UserReassembler is the Libnids/Stream5 core.
type UserReassembler struct {
	cfg    UserConfig
	conns  map[pkt.FlowKey]*conn // keyed by canonical key
	onData DataFunc
	cnt    Counters
	now    int64
	dec    pkt.Packet
}

// NewUserReassembler builds a reassembler; onData may be nil.
func NewUserReassembler(cfg UserConfig, onData DataFunc) *UserReassembler {
	if cfg.MaxFlows <= 0 {
		cfg.MaxFlows = 1 << 20 // the "about one million" internal limit
	}
	if cfg.InactivityTimeout <= 0 {
		cfg.InactivityTimeout = 10e9
	}
	if cfg.Cutoff < 0 {
		cfg.Cutoff = CutoffUnlimited
	}
	return &UserReassembler{
		cfg:    cfg,
		conns:  make(map[pkt.FlowKey]*conn),
		onData: onData,
	}
}

// Counters returns a snapshot.
func (u *UserReassembler) Counters() Counters { return u.cnt }

// Tracked returns the number of live connections.
func (u *UserReassembler) Tracked() int { return len(u.conns) }

// ProcessFrame consumes one ring frame.
func (u *UserReassembler) ProcessFrame(f pcapring.Frame) {
	u.cnt.Packets++
	u.cnt.RingBytesRead += uint64(len(f.Data))
	if f.TS > u.now {
		u.now = f.TS
	}
	if err := pkt.Decode(f.Data, &u.dec); err != nil {
		return
	}
	p := &u.dec
	p.Timestamp = f.TS
	if p.Key.Proto != pkt.ProtoTCP || p.IsFragment() {
		return
	}
	ck, _ := p.Key.Canonical()
	c := u.conns[ck]

	if c == nil {
		isSYN := p.TCPFlags&pkt.FlagSYN != 0 && p.TCPFlags&pkt.FlagACK == 0
		if u.cfg.RequireHandshake && !isSYN {
			u.cnt.StreamsNoSYN++
			return
		}
		if len(u.conns) >= u.cfg.MaxFlows {
			if u.cfg.OnFull == RejectNew {
				u.cnt.StreamsRefused++
				return
			}
			u.evictOldest()
		}
		c = u.newConn(p)
		u.conns[ck] = c
		u.cnt.StreamsTracked++
	}
	c.lastAccess = f.TS

	dir := c.client
	if p.Key == c.server.Key {
		dir = c.server
	}

	switch {
	case p.TCPFlags&pkt.FlagSYN != 0:
		dir.Asm.Init(p.Seq)
	case p.TCPFlags&pkt.FlagRST != 0:
		u.closeConn(ck, c)
		return
	}

	if len(p.Payload) > 0 && !dir.Closed {
		dir.Bytes += uint64(len(p.Payload))
		dir.Asm.Segment(p.Seq, p.Payload, func(b []byte, _ bool) {
			u.collect(dir, b)
		})
	}

	if p.TCPFlags&pkt.FlagFIN != 0 {
		if p.Key == c.client.Key {
			c.finC = true
		} else {
			c.finS = true
		}
		if c.finC && c.finS {
			u.closeConn(ck, c)
		}
	}
}

// newConn tracks a connection whose first observed packet is p; that
// packet's sender is the client direction.
func (u *UserReassembler) newConn(p *pkt.Packet) *conn {
	clientKey := p.Key
	mk := func(k pkt.FlowKey) *UserStream {
		return &UserStream{
			Key: k,
			Asm: reassembly.New(reassembly.Config{Mode: reassembly.ModeFast, Policy: u.cfg.Policy}),
		}
	}
	return &conn{client: mk(clientKey), server: mk(clientKey.Reverse())}
}

// collect appends reassembled bytes to the stream buffer (the extra
// user-level copy) and flushes chunks.
func (u *UserReassembler) collect(s *UserStream, b []byte) {
	if u.cfg.Cutoff >= 0 {
		remain := u.cfg.Cutoff - int64(s.Captured)
		if remain <= 0 {
			return
		}
		if int64(len(b)) > remain {
			b = b[:remain]
		}
	}
	u.cnt.ReassemblyCopy += uint64(len(b))
	s.Captured += uint64(len(b))
	if u.cfg.ChunkSize <= 0 {
		u.deliver(s, b)
		return
	}
	s.Buf = append(s.Buf, b...)
	for len(s.Buf) >= u.cfg.ChunkSize {
		u.deliver(s, s.Buf[:u.cfg.ChunkSize])
		s.Buf = s.Buf[:copy(s.Buf, s.Buf[u.cfg.ChunkSize:])]
	}
}

func (u *UserReassembler) deliver(s *UserStream, b []byte) {
	u.cnt.DeliveredBytes += uint64(len(b))
	if u.onData != nil {
		u.onData(s, b)
	}
}

func (u *UserReassembler) closeConn(ck pkt.FlowKey, c *conn) {
	for _, s := range []*UserStream{c.client, c.server} {
		s.Asm.Flush(func(b []byte, _ bool) { u.collect(s, b) })
		if len(s.Buf) > 0 {
			u.deliver(s, s.Buf)
			s.Buf = nil
		}
		s.Closed = true
	}
	delete(u.conns, ck)
}

// Expire closes idle connections.
func (u *UserReassembler) Expire(now int64) {
	for ck, c := range u.conns {
		if now-c.lastAccess >= u.cfg.InactivityTimeout {
			u.closeConn(ck, c)
			u.cnt.Expired++
		}
	}
}

// Close flushes every connection.
func (u *UserReassembler) Close() {
	for ck, c := range u.conns {
		u.closeConn(ck, c)
	}
}

func (u *UserReassembler) evictOldest() {
	var oldK pkt.FlowKey
	var old *conn
	for k, c := range u.conns {
		if old == nil || c.lastAccess < old.lastAccess {
			old, oldK = c, k
		}
	}
	if old != nil {
		u.closeConn(oldK, old)
		u.cnt.StreamsEvicted++
	}
}

// NewLibnids builds the Libnids-equivalent: Linux overlap policy,
// per-segment delivery, handshake required, new connections rejected when
// the table is full.
func NewLibnids(maxFlows int, cutoff int64, onData DataFunc) *UserReassembler {
	return NewUserReassembler(UserConfig{
		MaxFlows:         maxFlows,
		Policy:           reassembly.PolicyLinux,
		OnFull:           RejectNew,
		Cutoff:           cutoff,
		RequireHandshake: true,
	}, onData)
}

// NewStream5 builds the Snort Stream5-equivalent: target-based (BSD
// default) policy, flush-point chunking, oldest-pruned-first under table
// pressure.
func NewStream5(maxFlows, chunkSize int, cutoff int64, onData DataFunc) *UserReassembler {
	return NewUserReassembler(UserConfig{
		MaxFlows:         maxFlows,
		Policy:           reassembly.PolicyBSD,
		OnFull:           EvictOldest,
		ChunkSize:        chunkSize,
		Cutoff:           cutoff,
		RequireHandshake: true,
	}, onData)
}
