package scap

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"scap/internal/metrics"
)

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestServeMetricsEndpoint(t *testing.T) {
	h, err := Create(Config{Queues: 2})
	if err != nil {
		t.Fatal(err)
	}
	h.DispatchData(func(sd *Stream) {})
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}
	srv, err := h.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if err := h.ReplaySource(smallGen(11, 60), 1e9); err != nil {
		t.Fatal(err)
	}

	body := getBody(t, "http://"+srv.Addr()+"/metrics")
	p, err := metrics.ParsePayload(body)
	if err != nil {
		t.Fatalf("parse /metrics: %v\n%s", err, body)
	}
	if p.Cores != 2 {
		t.Fatalf("cores = %d, want 2", p.Cores)
	}
	pk := p.Counter("packets_total")
	if pk == nil || pk.Total == 0 {
		t.Fatalf("packets_total missing or zero: %+v", pk)
	}
	if len(pk.PerCore) != 2 || pk.PerCore[0]+pk.PerCore[1] != pk.Total {
		t.Fatalf("per-core %v does not sum to total %d", pk.PerCore, pk.Total)
	}
	if p.Counter("nic_frames_total") == nil || p.Counter("mem_admitted_total") == nil {
		t.Fatal("NIC/mem func counters missing from payload")
	}
	if p.Gauge("memory_size_bytes") == nil {
		t.Fatal("memory_size_bytes gauge missing")
	}
	var hasChunkHist bool
	for _, hs := range p.Histograms {
		if hs.Name == "chunk_bytes" && hs.Count > 0 {
			hasChunkHist = true
		}
	}
	if !hasChunkHist {
		t.Fatal("chunk_bytes histogram missing or empty")
	}

	// The pprof and expvar endpoints are wired in.
	if b := getBody(t, "http://"+srv.Addr()+"/debug/pprof/cmdline"); len(b) == 0 {
		t.Fatal("pprof cmdline empty")
	}
	if b := getBody(t, "http://"+srv.Addr()+"/debug/vars"); len(b) == 0 {
		t.Fatal("expvar payload empty")
	}

	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	// Totals stay scrapeable after Close (the frozen-stats contract extends
	// to the server).
	p2, err := metrics.ParsePayload(getBody(t, "http://"+srv.Addr()+"/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Counter("packets_total"); got == nil || got.Total < pk.Total {
		t.Fatalf("post-Close packets_total = %+v, want >= %d", got, pk.Total)
	}
}

// TestServeSketchEndpoint: /debug/sketch returns one published snapshot per
// core once the sketch front-end has seen traffic (snapshots publish from
// the engines' timer path, so the scrape polls briefly).
func TestServeSketchEndpoint(t *testing.T) {
	h, err := Create(Config{Queues: 2, Sketch: SketchConfig{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetCutoff(1000); err != nil {
		t.Fatal(err)
	}
	h.DispatchData(func(sd *Stream) {})
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}
	srv, err := h.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := h.ReplaySource(smallGen(13, 80), 1e9); err != nil {
		t.Fatal(err)
	}

	type snap struct {
		ObservedPkts uint64 `json:"observed_pkts"`
	}
	var snaps []*snap
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := json.Unmarshal(getBody(t, "http://"+srv.Addr()+"/debug/sketch"), &snaps); err != nil {
			t.Fatalf("parse /debug/sketch: %v", err)
		}
		total := uint64(0)
		for _, s := range snaps {
			if s != nil {
				total += s.ObservedPkts
			}
		}
		if len(snaps) == 2 && snaps[0] != nil && snaps[1] != nil && total > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sketch snapshots never published: %+v", snaps)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServeFlightEndpoint(t *testing.T) {
	h, err := Create(Config{Queues: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A low cutoff makes most generated flows hit their cutoff, which emits
	// FlightCutoff (and FDIR install) records deterministically.
	if err := h.SetCutoff(512); err != nil {
		t.Fatal(err)
	}
	h.DispatchData(func(sd *Stream) {})
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}
	srv, err := h.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer h.Close()

	if err := h.ReplaySource(smallGen(13, 50), 1e9); err != nil {
		t.Fatal(err)
	}

	var dump metrics.FlightDump
	if err := json.Unmarshal(getBody(t, "http://"+srv.Addr()+"/debug/flight"), &dump); err != nil {
		t.Fatalf("parse /debug/flight: %v", err)
	}
	if dump.Cores != 2 || dump.Capacity == 0 {
		t.Fatalf("dump header = %+v", dump)
	}
	if len(dump.Records) == 0 || dump.Total == 0 {
		t.Fatalf("no flight records after cutoff-heavy replay: %+v", dump)
	}
	var sawCutoff bool
	for i, r := range dump.Records {
		if r.KindName == "cutoff" {
			sawCutoff = true
		}
		if i > 0 && r.TimeUnixNano < dump.Records[i-1].TimeUnixNano {
			t.Fatal("records not ordered oldest first")
		}
	}
	if !sawCutoff {
		t.Fatalf("expected cutoff records, got %+v", dump.Records)
	}

	var tr metrics.ChromeTrace
	if err := json.Unmarshal(getBody(t, "http://"+srv.Addr()+"/debug/flight?format=chrome"), &tr); err != nil {
		t.Fatalf("parse chrome trace: %v", err)
	}
	if len(tr.TraceEvents) == 0 || tr.DisplayTimeUnit != "ms" {
		t.Fatalf("chrome trace = %+v", tr)
	}
	for _, ev := range tr.TraceEvents {
		if ev.Cat != "flight" || (ev.Ph != "i" && ev.Ph != "X") || ev.TS < 0 {
			t.Fatalf("malformed trace event: %+v", ev)
		}
	}

	// The drop-attribution table is present in /metrics and includes the
	// cutoff cause with a nonzero count.
	p, err := metrics.ParsePayload(getBody(t, "http://"+srv.Addr()+"/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	var cutoffDrops *metrics.CounterPayload
	for i := range p.Drops {
		if p.Drops[i].Cause == "cutoff" {
			cutoffDrops = &p.Drops[i]
		}
	}
	if cutoffDrops == nil || cutoffDrops.Total == 0 {
		t.Fatalf("drops table missing a nonzero cutoff row: %+v", p.Drops)
	}
}

// TestDebugServerGracefulClose verifies Close drains in-flight requests
// instead of severing them: a /debug/pprof/trace request that streams for a
// full second must complete its body while Close is underway.
func TestDebugServerGracefulClose(t *testing.T) {
	h, err := Create(Config{Queues: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	srv, err := h.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		n   int
		err error
	}
	got := make(chan result, 1)
	started := make(chan struct{})
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/trace?seconds=1")
		if err != nil {
			close(started)
			got <- result{0, err}
			return
		}
		close(started) // headers received: the request is in flight
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- result{len(b), err}
	}()
	<-started

	if err := srv.Close(); err != nil {
		t.Fatalf("graceful Close failed: %v", err)
	}
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight request was severed by Close: %v", r.err)
	}
	if r.n == 0 {
		t.Fatal("trace body empty")
	}
	// The listener is really gone.
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Fatal("server still accepting requests after Close")
	}
}

func TestGetStatsFrozenAfterClose(t *testing.T) {
	h, err := Create(Config{Queues: 2})
	if err != nil {
		t.Fatal(err)
	}
	h.DispatchTermination(func(sd *Stream) {})
	runSocket(t, h, smallGen(12, 40))

	st1, err := h.GetStats()
	if err != nil {
		t.Fatal(err)
	}
	if st1.Packets == 0 || st1.StreamsCreated == 0 {
		t.Fatalf("frozen stats empty: %+v", st1)
	}
	if st1.MemoryUsed != 0 {
		t.Fatalf("memory not fully released at close: %d", st1.MemoryUsed)
	}
	st2, err := h.GetStats()
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Fatalf("post-Close snapshots differ:\n%+v\n%+v", st1, st2)
	}
}
