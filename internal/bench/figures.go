package bench

import (
	"fmt"

	"scap/internal/bpf"
	"scap/internal/core"
	"scap/internal/reassembly"
	"scap/internal/sim"
	"scap/internal/trace"
)

// Series names, matching the paper's legends.
const (
	sLibnids  = "Libnids"
	sYAF      = "yaf"
	sSnort    = "Snort"
	sScap     = "Scap"
	sScapNoFD = "Scap w/o FDIR"
	sScapFDIR = "Scap with FDIR"
	sScapPkts = "Scap with packets"
	sHighPrio = "High-priority streams"
	sLowPrio  = "Low-priority streams"
)

func (r *Runner) scapConfig(app sim.AppKind, workers int) sim.ScapConfig {
	cfg := sim.ScapConfig{
		Engine: core.Config{
			Cutoff:            core.CutoffUnlimited,
			Mode:              reassembly.ModeFast,
			InactivityTimeout: 10e9,
		},
		Workers:  workers,
		MemBytes: r.cfg.MemBytes,
		App:      app,
		Matcher:  r.matcher,
	}
	return cfg
}

func (r *Runner) baselineConfig(kind sim.BaselineKind, app sim.AppKind) sim.BaselineConfig {
	return sim.BaselineConfig{
		Kind:      kind,
		App:       app,
		Matcher:   r.matcher,
		RingBytes: r.cfg.RingBytes,
	}
}

func (r *Runner) runScap(cfg sim.ScapConfig, rate float64) sim.Metrics {
	return sim.NewScapSim(cfg).Run(r.Source(), rate*gbit)
}

func (r *Runner) runBaseline(cfg sim.BaselineConfig, rate float64) sim.Metrics {
	return sim.NewBaselineSim(cfg).Run(r.Source(), rate*gbit)
}

// newRateFigures builds the (a) loss, (b) CPU, (c) softirq triple used by
// Figures 3, 4, and 6.
func newRateFigures(id, what string, series []string) (loss, cpu, softirq *Figure) {
	loss = &Figure{
		ID: id + "a", Title: what + ": packets dropped",
		XLabel: "Gbit/s", YLabel: "% packets dropped", Series: series,
	}
	cpu = &Figure{
		ID: id + "b", Title: what + ": CPU utilization",
		XLabel: "Gbit/s", YLabel: "% CPU (application core)", Series: series,
	}
	softirq = &Figure{
		ID: id + "c", Title: what + ": software interrupt load",
		XLabel: "Gbit/s", YLabel: "% softirq (all cores)", Series: series,
	}
	return
}

// Fig3 — flow-based statistics export (paper §6.2): YAF, Libnids, and Scap
// with/without FDIR at cutoff 0, single worker.
func (r *Runner) Fig3() []*Figure {
	series := []string{sLibnids, sYAF, sScapNoFD, sScapFDIR}
	loss, cpu, softirq := newRateFigures("fig3", "flow statistics export", series)
	for _, rate := range r.rates() {
		row := map[string]map[string]float64{}
		record := func(name string, m sim.Metrics) {
			row[name] = map[string]float64{
				"loss": m.PacketLossFraction() * 100,
				"cpu":  m.CPUUser * 100,
				"irq":  m.Softirq * 100,
			}
		}
		record(sLibnids, r.runBaseline(r.baselineConfig(sim.KindLibnids, sim.AppFlowStats), rate))
		record(sYAF, r.runBaseline(r.baselineConfig(sim.KindYAF, sim.AppFlowStats), rate))

		sc := r.scapConfig(sim.AppFlowStats, 1)
		sc.Engine.Cutoff = 0
		record(sScapNoFD, r.runScap(sc, rate))

		scf := r.scapConfig(sim.AppFlowStats, 1)
		scf.Engine.Cutoff = 0
		scf.Engine.UseFDIR = true
		record(sScapFDIR, r.runScap(scf, rate))

		pick := func(metric string) map[string]float64 {
			out := map[string]float64{}
			for name, vals := range row {
				out[name] = vals[metric]
			}
			return out
		}
		loss.Add(rate, pick("loss"))
		cpu.Add(rate, pick("cpu"))
		softirq.Add(rate, pick("irq"))
	}
	return []*Figure{loss, cpu, softirq}
}

// Fig4 — delivering reassembled streams to user level without further
// processing (paper §6.3): Libnids, Snort, Scap; no cutoff, single worker.
func (r *Runner) Fig4() []*Figure {
	series := []string{sLibnids, sSnort, sScap}
	loss, cpu, softirq := newRateFigures("fig4", "stream delivery", series)
	for _, rate := range r.rates() {
		ms := map[string]sim.Metrics{
			sLibnids: r.runBaseline(r.baselineConfig(sim.KindLibnids, sim.AppDelivery), rate),
			sSnort:   r.runBaseline(r.baselineConfig(sim.KindSnort, sim.AppDelivery), rate),
			sScap:    r.runScap(r.scapConfig(sim.AppDelivery, 1), rate),
		}
		loss.Add(rate, pickMetric(ms, func(m sim.Metrics) float64 { return m.PacketLossFraction() * 100 }))
		cpu.Add(rate, pickMetric(ms, func(m sim.Metrics) float64 { return m.CPUUser * 100 }))
		softirq.Add(rate, pickMetric(ms, func(m sim.Metrics) float64 { return m.Softirq * 100 }))
	}
	return []*Figure{loss, cpu, softirq}
}

func pickMetric(ms map[string]sim.Metrics, f func(sim.Metrics) float64) map[string]float64 {
	out := map[string]float64{}
	for name, m := range ms {
		out[name] = f(m)
	}
	return out
}

// Fig5 — concurrent streams (paper §6.4): streams lost, CPU, and softirq
// versus the number of concurrent connections at a fixed 1 Gbit/s. The
// paper sweeps 10¹–10⁷ against libraries capped near 10⁶; we sweep
// 10¹–10⁵ against a proportionally scaled cap of 10⁴, preserving the
// crossover one decade below the sweep's end.
func (r *Runner) Fig5() []*Figure {
	series := []string{sLibnids, sSnort, sScap}
	lost := &Figure{
		ID: "fig5a", Title: "concurrent streams: streams lost",
		XLabel: "concurrent streams", YLabel: "% streams lost", Series: series,
		Notes: []string{"scaled: baselines capped at 1e4 connections (paper: ~1e6), sweep to 1e5 (paper: 1e7)"},
	}
	cpu := &Figure{
		ID: "fig5b", Title: "concurrent streams: CPU utilization",
		XLabel: "concurrent streams", YLabel: "% CPU", Series: series,
	}
	softirq := &Figure{
		ID: "fig5c", Title: "concurrent streams: software interrupt load",
		XLabel: "concurrent streams", YLabel: "% softirq", Series: series,
	}
	const tableCap = 10_000
	counts := []int{10, 100, 1000, 10_000, 100_000}
	if r.cfg.Quick {
		counts = []int{10, 1000, 30_000}
	}
	for _, n := range counts {
		total := n * 2
		if total < 2000 {
			total = 2000
		}
		mk := func() (*trace.SliceSource, int) {
			g := trace.ConcurrentStreamsWorkload(r.cfg.Seed, total, n, 8, 1000)
			return &trace.SliceSource{Frames: trace.Collect(g, 0)}, g.FlowsMade
		}
		results := map[string]sim.Metrics{}
		flowsOffered := 0

		{
			src, flows := mk()
			cfg := r.baselineConfig(sim.KindLibnids, sim.AppDelivery)
			cfg.MaxFlows = tableCap
			b := sim.NewBaselineSim(cfg)
			results[sLibnids] = b.Run(src, 1*gbit)
			flowsOffered = flows
		}
		{
			src, _ := mk()
			cfg := r.baselineConfig(sim.KindSnort, sim.AppDelivery)
			cfg.MaxFlows = tableCap
			results[sSnort] = sim.NewBaselineSim(cfg).Run(src, 1*gbit)
		}
		{
			src, _ := mk()
			cfg := r.scapConfig(sim.AppDelivery, 1)
			cfg.MemBytes = r.cfg.MemBytes * 4 // stream records grow, data is tiny
			results[sScap] = sim.NewScapSim(cfg).Run(src, 1*gbit)
		}

		lostRow := map[string]float64{}
		for name, m := range results {
			lostRow[name] = lostStreamsPercent(m, flowsOffered)
		}
		lost.Add(float64(n), lostRow)
		cpu.Add(float64(n), pickMetric(results, func(m sim.Metrics) float64 { return m.CPUUser * 100 }))
		softirq.Add(float64(n), pickMetric(results, func(m sim.Metrics) float64 { return m.Softirq * 100 }))
	}
	return []*Figure{lost, cpu, softirq}
}

func lostStreamsPercent(m sim.Metrics, flowsOffered int) float64 {
	if flowsOffered == 0 {
		return 0
	}
	lost := flowsOffered - m.FlowsWithData
	if lost < 0 {
		lost = 0
	}
	return float64(lost) / float64(flowsOffered) * 100
}

// Fig6 — pattern matching (paper §6.5): drops, match accuracy, and lost
// streams versus rate for Libnids, Snort, Scap, and Scap with per-packet
// delivery enabled.
func (r *Runner) Fig6() []*Figure {
	series := []string{sLibnids, sSnort, sScap, sScapPkts}
	loss := &Figure{
		ID: "fig6a", Title: "pattern matching: packets dropped",
		XLabel: "Gbit/s", YLabel: "% packets dropped", Series: series,
	}
	matched := &Figure{
		ID: "fig6b", Title: "pattern matching: patterns successfully matched",
		XLabel: "Gbit/s", YLabel: "% patterns matched", Series: series,
	}
	lostStreams := &Figure{
		ID: "fig6c", Title: "pattern matching: lost streams",
		XLabel: "Gbit/s", YLabel: "% streams lost", Series: series,
	}
	embedded := r.gen.Embedded
	flows := r.gen.FlowsMade
	for _, rate := range r.rates() {
		ms := map[string]sim.Metrics{
			sLibnids: r.runBaseline(r.baselineConfig(sim.KindLibnids, sim.AppMatch), rate),
			sSnort:   r.runBaseline(r.baselineConfig(sim.KindSnort, sim.AppMatch), rate),
			sScap:    r.runScap(r.scapConfig(sim.AppMatch, 1), rate),
		}
		pktCfg := r.scapConfig(sim.AppMatch, 1)
		pktCfg.Engine.NeedPkts = true
		ms[sScapPkts] = r.runScap(pktCfg, rate)

		loss.Add(rate, pickMetric(ms, func(m sim.Metrics) float64 { return m.PacketLossFraction() * 100 }))
		matched.Add(rate, pickMetric(ms, func(m sim.Metrics) float64 {
			if embedded == 0 {
				return 0
			}
			return float64(m.MatchedFlows) / float64(embedded) * 100
		}))
		lostStreams.Add(rate, pickMetric(ms, func(m sim.Metrics) float64 {
			return lostStreamsPercent(m, flows)
		}))
	}
	return []*Figure{loss, matched, lostStreams}
}

// Fig8 — stream size cutoff sweep at 4 Gbit/s (paper §6.6): user-level
// cutoffs (Libnids, Snort) versus Scap's kernel cutoff with and without
// FDIR, running the pattern-matching application.
func (r *Runner) Fig8() []*Figure {
	series := []string{sLibnids, sSnort, sScapNoFD, sScapFDIR}
	loss, cpu, softirq := newRateFigures("fig8", "cutoff sweep at 4 Gbit/s", series)
	loss.XLabel, cpu.XLabel, softirq.XLabel = "cutoff KB", "cutoff KB", "cutoff KB"
	cutoffsKB := []float64{0, 0.1, 1, 10, 100, 1000, 10000}
	if r.cfg.Quick {
		cutoffsKB = []float64{0, 1, 10, 1000}
	}
	const rate = 4.0
	for _, cKB := range cutoffsKB {
		cutoff := int64(cKB * 1024)
		ms := map[string]sim.Metrics{}

		nc := r.baselineConfig(sim.KindLibnids, sim.AppMatch)
		nc.Cutoff = cutoff
		ms[sLibnids] = r.runBaseline(nc, rate)

		snc := r.baselineConfig(sim.KindSnort, sim.AppMatch)
		snc.Cutoff = cutoff
		ms[sSnort] = r.runBaseline(snc, rate)

		sc := r.scapConfig(sim.AppMatch, 1)
		sc.Engine.Cutoff = cutoff
		ms[sScapNoFD] = r.runScap(sc, rate)

		scf := r.scapConfig(sim.AppMatch, 1)
		scf.Engine.Cutoff = cutoff
		scf.Engine.UseFDIR = true
		ms[sScapFDIR] = r.runScap(scf, rate)

		loss.Add(cKB, pickMetric(ms, func(m sim.Metrics) float64 { return m.PacketLossFraction() * 100 }))
		cpu.Add(cKB, pickMetric(ms, func(m sim.Metrics) float64 { return m.CPUUser * 100 }))
		softirq.Add(cKB, pickMetric(ms, func(m sim.Metrics) float64 { return m.Softirq * 100 }))
	}
	return []*Figure{loss, cpu, softirq}
}

// Fig9 — prioritized packet loss (paper §6.7): drop rate of high- versus
// low-priority streams as the rate grows, single matching worker. The
// paper marks port-80 streams (8.4% of its trace) high priority; our
// synthetic mix is web-heavy, so port 22 (≈5% of flows) plays that role.
func (r *Runner) Fig9() *Figure {
	fig := &Figure{
		ID: "fig9", Title: "PPL: high- vs low-priority packet loss",
		XLabel: "Gbit/s", YLabel: "% packets dropped",
		Series: []string{sHighPrio, sLowPrio},
		Notes:  []string{"high priority = port 22 (~5% of flows); the paper used port 80 = 8.4% of its trace"},
	}
	for _, rate := range r.rates() {
		cfg := r.scapConfig(sim.AppMatch, 1)
		cfg.Engine.Priorities = 2
		cfg.BaseThresh = 0.5
		// PPL lives at the memory watermarks; give the event queues enough
		// headroom that stream memory is always the binding constraint
		// (a full event queue drops chunks blindly to priority).
		cfg.EventQCap = 1 << 18
		// Kernel-level priority class: protection holds from the first
		// byte. (A creation-callback SetPriority lags under backlog —
		// exactly when PPL matters.)
		cfg.Engine.PriorityClasses = []core.PriorityClass{
			{Filter: bpf.MustParse("port 22"), Priority: 1},
		}
		m := r.runScap(cfg, rate)
		row := map[string]float64{sHighPrio: 0, sLowPrio: 0}
		if m.PktsHigh > 0 {
			row[sHighPrio] = float64(m.DroppedHigh) / float64(m.PktsHigh) * 100
		}
		if m.PktsLow > 0 {
			row[sLowPrio] = float64(m.DroppedLow) / float64(m.PktsLow) * 100
		}
		fig.Add(rate, row)
	}
	return fig
}

// Fig10 — multicore scaling (paper §6.8): (a) loss versus worker count at
// three rates; (b) maximum loss-free rate versus worker count.
func (r *Runner) Fig10() []*Figure {
	workers := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if r.cfg.Quick {
		workers = []int{1, 2, 4, 8}
	}
	rates := []float64{2, 4, 6}
	lossFig := &Figure{
		ID: "fig10a", Title: "multicore: packet loss vs workers",
		XLabel: "workers", YLabel: "% packets dropped",
	}
	for _, rate := range rates {
		lossFig.Series = append(lossFig.Series, fmt.Sprintf("%g Gbit/s", rate))
	}
	for _, w := range workers {
		row := map[string]float64{}
		for _, rate := range rates {
			m := r.runScap(r.scapConfig(sim.AppMatch, w), rate)
			row[fmt.Sprintf("%g Gbit/s", rate)] = m.PacketLossFraction() * 100
		}
		lossFig.Add(float64(w), row)
	}

	maxRate := &Figure{
		ID: "fig10b", Title: "multicore: maximum loss-free rate",
		XLabel: "workers", YLabel: "Gbit/s", Series: []string{"Max loss-free rate"},
	}
	probe := []float64{0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5, 5.5, 6}
	if r.cfg.Quick {
		probe = []float64{0.5, 1, 2, 3, 4, 5, 6}
	}
	for _, w := range workers {
		best := 0.0
		for _, rate := range probe {
			m := r.runScap(r.scapConfig(sim.AppMatch, w), rate)
			if m.PacketLossFraction() <= 0.01 {
				best = rate
			} else {
				break
			}
		}
		maxRate.Add(float64(w), map[string]float64{"Max loss-free rate": best})
	}
	return []*Figure{lossFig, maxRate}
}
