package nic

import (
	"math/rand"
	"net/netip"
	"testing"

	"scap/internal/pkt"
)

func key4(a string, ap uint16, b string, bp uint16) pkt.FlowKey {
	return pkt.FlowKey{
		SrcIP: pkt.MustAddr(a), DstIP: pkt.MustAddr(b),
		SrcPort: ap, DstPort: bp, Proto: pkt.ProtoTCP,
	}
}

// TestToeplitzKnownVectors checks the hash against the Microsoft RSS
// verification suite values for the default key.
func TestToeplitzKnownVectors(t *testing.T) {
	cases := []struct {
		src  string
		sp   uint16
		dst  string
		dp   uint16
		want uint32
	}{
		{"66.9.149.187", 2794, "161.142.100.80", 1766, 0x51ccc178},
		{"199.92.111.2", 14230, "65.69.140.83", 4739, 0xc626b0ea},
		{"24.19.198.95", 12898, "12.22.207.184", 38024, 0x5c2b394a},
		{"38.27.205.30", 48228, "209.142.163.6", 2217, 0xafc7327f},
		{"153.39.163.191", 44251, "202.188.127.2", 1303, 0x10e828a2},
	}
	for _, c := range cases {
		got := RSSHash(&DefaultRSSKey, pkt.MustAddr(c.src), pkt.MustAddr(c.dst), c.sp, c.dp, true)
		if got != c.want {
			t.Errorf("RSSHash(%s:%d > %s:%d) = %#08x, want %#08x",
				c.src, c.sp, c.dst, c.dp, got, c.want)
		}
	}
}

func TestSymmetricKeyProperty(t *testing.T) {
	k := SymmetricRSSKey(0x6d5a)
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		var a, b [4]byte
		r.Read(a[:])
		r.Read(b[:])
		sp, dp := uint16(r.Uint32()), uint16(r.Uint32())
		h1 := RSSHash(&k, netip.AddrFrom4(a), netip.AddrFrom4(b), sp, dp, true)
		h2 := RSSHash(&k, netip.AddrFrom4(b), netip.AddrFrom4(a), dp, sp, true)
		if h1 != h2 {
			t.Fatalf("symmetric key not symmetric: %v:%d <-> %v:%d (%#x vs %#x)",
				a, sp, b, dp, h1, h2)
		}
	}
}

func TestDefaultKeyIsNotSymmetric(t *testing.T) {
	// Sanity check that symmetry is a property of the key, not the hash.
	h1 := RSSHash(&DefaultRSSKey, pkt.MustAddr("1.2.3.4"), pkt.MustAddr("5.6.7.8"), 100, 200, true)
	h2 := RSSHash(&DefaultRSSKey, pkt.MustAddr("5.6.7.8"), pkt.MustAddr("1.2.3.4"), 200, 100, true)
	if h1 == h2 {
		t.Skip("coincidental symmetry for this tuple")
	}
}

func TestBothDirectionsSameQueue(t *testing.T) {
	n := New(Config{Queues: 8})
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		var a, b [4]byte
		r.Read(a[:])
		r.Read(b[:])
		k := pkt.FlowKey{
			SrcIP: netip.AddrFrom4(a), DstIP: netip.AddrFrom4(b),
			SrcPort: uint16(r.Uint32()), DstPort: uint16(r.Uint32()),
			Proto: pkt.ProtoTCP,
		}
		if n.QueueFor(k) != n.QueueFor(k.Reverse()) {
			t.Fatalf("directions of %v map to different queues", k)
		}
	}
}

func TestReceiveAndPoll(t *testing.T) {
	n := New(Config{Queues: 4})
	frame := pkt.BuildTCP(pkt.TCPSpec{Key: key4("10.0.0.1", 1234, "10.0.0.2", 80), Flags: pkt.FlagSYN})
	q := n.Receive(frame, 42)
	if q < 0 {
		t.Fatal("frame dropped unexpectedly")
	}
	f, ok := n.Poll(q)
	if !ok || f.TS != 42 {
		t.Fatalf("Poll = %v, %v", f, ok)
	}
	if _, ok := n.Poll(q); ok {
		t.Error("queue should be empty")
	}
	if s := n.Stats(); s.Received != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRingOverflowDrops(t *testing.T) {
	n := New(Config{Queues: 1, QueueDepth: 4})
	frame := pkt.BuildTCP(pkt.TCPSpec{Key: key4("10.0.0.1", 1, "10.0.0.2", 2)})
	for i := 0; i < 10; i++ {
		n.Receive(frame, int64(i))
	}
	if s := n.Stats(); s.DroppedRing != 6 {
		t.Errorf("DroppedRing = %d, want 6", s.DroppedRing)
	}
	if n.Highwater(0) != 4 {
		t.Errorf("highwater = %d, want 4", n.Highwater(0))
	}
}

func TestDecodeFailureCounted(t *testing.T) {
	n := New(Config{Queues: 1})
	if q := n.Receive([]byte{1, 2, 3}, 0); q != -1 {
		t.Error("garbage frame accepted")
	}
	if s := n.Stats(); s.DecodeFailures != 1 {
		t.Errorf("DecodeFailures = %d", s.DecodeFailures)
	}
}

func TestDropFilterSubzeroCopy(t *testing.T) {
	n := New(Config{Queues: 2})
	k := key4("10.0.0.1", 5555, "10.0.0.2", 80)

	// Install the paper's per-stream pair: drop ACK-only and ACK|PSH data
	// packets, let RST/FIN through.
	for _, flags := range []uint8{pkt.FlagACK, pkt.FlagACK | pkt.FlagPSH} {
		if _, _, err := n.AddFilter(FilterSpec{Key: k, Flex: FlexOnlyFlags(flags), Action: ActionDrop}); err != nil {
			t.Fatal(err)
		}
	}

	ack := pkt.BuildTCP(pkt.TCPSpec{Key: k, Flags: pkt.FlagACK})
	data := pkt.BuildTCP(pkt.TCPSpec{Key: k, Flags: pkt.FlagACK | pkt.FlagPSH, Payload: []byte("body")})
	fin := pkt.BuildTCP(pkt.TCPSpec{Key: k, Flags: pkt.FlagFIN | pkt.FlagACK})
	rst := pkt.BuildTCP(pkt.TCPSpec{Key: k, Flags: pkt.FlagRST})
	rev := pkt.BuildTCP(pkt.TCPSpec{Key: k.Reverse(), Flags: pkt.FlagACK})

	if q := n.Receive(ack, 0); q != -1 {
		t.Error("ACK-only packet not dropped at NIC")
	}
	if q := n.Receive(data, 0); q != -1 {
		t.Error("ACK|PSH data packet not dropped at NIC")
	}
	if q := n.Receive(fin, 0); q < 0 {
		t.Error("FIN packet dropped — stream termination would be lost")
	}
	if q := n.Receive(rst, 0); q < 0 {
		t.Error("RST packet dropped")
	}
	if q := n.Receive(rev, 0); q < 0 {
		t.Error("reverse direction dropped without a filter")
	}
	if s := n.Stats(); s.DroppedFilter != 2 {
		t.Errorf("DroppedFilter = %d, want 2", s.DroppedFilter)
	}
}

func TestQueueRedirectFilter(t *testing.T) {
	n := New(Config{Queues: 8})
	k := key4("10.9.9.9", 1000, "10.8.8.8", 80)
	natural := n.QueueFor(k)
	target := (natural + 3) % 8
	if _, _, err := n.AddFilter(FilterSpec{Key: k, Action: ActionQueue, Queue: target}); err != nil {
		t.Fatal(err)
	}
	frame := pkt.BuildTCP(pkt.TCPSpec{Key: k, Flags: pkt.FlagACK})
	if q := n.Receive(frame, 0); q != target {
		t.Errorf("redirect landed on queue %d, want %d", q, target)
	}
	if s := n.Stats(); s.Redirected != 1 {
		t.Errorf("Redirected = %d", s.Redirected)
	}
}

func TestFilterRemoval(t *testing.T) {
	n := New(Config{Queues: 1})
	k := key4("1.1.1.1", 1, "2.2.2.2", 2)
	n.AddFilter(FilterSpec{Key: k, Flex: FlexOnlyFlags(pkt.FlagACK), Action: ActionDrop})
	n.AddFilter(FilterSpec{Key: k, Flex: FlexOnlyFlags(pkt.FlagACK | pkt.FlagPSH), Action: ActionDrop})
	if p, _ := n.FilterCount(); p != 2 {
		t.Fatalf("perfect count = %d", p)
	}
	if removed := n.RemoveFilters(k, false); removed != 2 {
		t.Errorf("removed = %d, want 2", removed)
	}
	frame := pkt.BuildTCP(pkt.TCPSpec{Key: k, Flags: pkt.FlagACK})
	if q := n.Receive(frame, 0); q < 0 {
		t.Error("packet dropped after filter removal")
	}
}

func TestFilterTableEviction(t *testing.T) {
	n := New(Config{Queues: 1, PerfectFilterCap: 4})
	keys := make([]pkt.FlowKey, 5)
	for i := range keys {
		keys[i] = key4("10.0.0.1", uint16(1000+i), "10.0.0.2", 80)
	}
	for i := 0; i < 4; i++ {
		if _, evicted, err := n.AddFilter(FilterSpec{Key: keys[i], Action: ActionDrop, Deadline: int64(100 + i)}); err != nil || evicted {
			t.Fatalf("add %d: err=%v evicted=%v", i, err, evicted)
		}
	}
	ev, evicted, err := n.AddFilter(FilterSpec{Key: keys[4], Action: ActionDrop, Deadline: 500})
	if err != nil || !evicted {
		t.Fatalf("expected eviction, err=%v evicted=%v", err, evicted)
	}
	if ev != keys[0] {
		t.Errorf("evicted %v, want earliest-deadline %v", ev, keys[0])
	}
	// The evicted flow's packets now pass; the new filter drops its flow.
	if q := n.Receive(pkt.BuildTCP(pkt.TCPSpec{Key: keys[0], Flags: pkt.FlagACK}), 0); q < 0 {
		t.Error("evicted filter still dropping")
	}
	if q := n.Receive(pkt.BuildTCP(pkt.TCPSpec{Key: keys[4], Flags: pkt.FlagACK}), 0); q != -1 {
		t.Error("new filter not installed")
	}
}

func TestSignatureFilterCollisions(t *testing.T) {
	n := New(Config{Queues: 1, SignatureFilterCap: 16})
	k := key4("10.0.0.1", 1111, "10.0.0.2", 80)
	if _, _, err := n.AddFilter(FilterSpec{Key: k, Action: ActionDrop, Signature: true}); err != nil {
		t.Fatal(err)
	}
	// The flow itself matches via its signature.
	if q := n.Receive(pkt.BuildTCP(pkt.TCPSpec{Key: k, Flags: pkt.FlagACK}), 0); q != -1 {
		t.Error("signature filter did not match its own flow")
	}
	if _, sig := n.FilterCount(); sig != 1 {
		t.Errorf("signature count = %d", sig)
	}
	if removed := n.RemoveFilters(k, true); removed != 1 {
		t.Errorf("signature removal = %d", removed)
	}
}

func TestRSSDistribution(t *testing.T) {
	n := New(Config{Queues: 8})
	r := rand.New(rand.NewSource(77))
	counts := make([]int, 8)
	const flows = 8000
	for i := 0; i < flows; i++ {
		var a, b [4]byte
		r.Read(a[:])
		r.Read(b[:])
		k := pkt.FlowKey{
			SrcIP: netip.AddrFrom4(a), DstIP: netip.AddrFrom4(b),
			SrcPort: uint16(r.Uint32()), DstPort: uint16(r.Uint32()),
			Proto: pkt.ProtoTCP,
		}
		counts[n.QueueFor(k)]++
	}
	for q, c := range counts {
		if c < flows/8/2 || c > flows/8*2 {
			t.Errorf("queue %d got %d of %d flows — severe RSS imbalance", q, c, flows)
		}
	}
}

func BenchmarkReceive(b *testing.B) {
	n := New(Config{Queues: 8, QueueDepth: 64})
	frame := pkt.BuildTCP(pkt.TCPSpec{
		Key:     key4("10.1.2.3", 4444, "10.3.2.1", 80),
		Flags:   pkt.FlagACK,
		Payload: make([]byte, 1400),
	})
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if q := n.Receive(frame, int64(i)); q >= 0 {
			n.Poll(q)
		}
	}
}
