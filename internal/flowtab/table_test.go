package flowtab

import (
	"math/rand"
	"net/netip"
	"testing"

	"scap/internal/pkt"
)

func tk(sp, dp uint16) pkt.FlowKey {
	return pkt.FlowKey{
		SrcIP: pkt.MustAddr("10.0.0.1"), DstIP: pkt.MustAddr("10.0.0.2"),
		SrcPort: sp, DstPort: dp, Proto: pkt.ProtoTCP,
	}
}

func newT() *Table { return NewTable(rand.New(rand.NewSource(1))) }

func TestGetOrCreateAndLookup(t *testing.T) {
	tab := newT()
	k := tk(1000, 80)
	s, created := tab.GetOrCreate(k, 100)
	if !created || s == nil {
		t.Fatal("first GetOrCreate should create")
	}
	if s.Dir != pkt.DirClient || s.Status != StatusActive || s.Stats.Start != 100 {
		t.Errorf("new stream = %+v", s)
	}
	s2, created := tab.GetOrCreate(k, 200)
	if created || s2 != s {
		t.Error("second GetOrCreate should find the same record")
	}
	if s.LastAccess() != 200 {
		t.Errorf("lastAccess = %d", s.LastAccess())
	}
	if tab.Lookup(tk(1000, 81)) != nil {
		t.Error("lookup of unknown key succeeded")
	}
}

func TestOppositeDirectionLinking(t *testing.T) {
	tab := newT()
	k := tk(1000, 80)
	c, _ := tab.GetOrCreate(k, 1)
	srv, created := tab.GetOrCreate(k.Reverse(), 2)
	if !created {
		t.Fatal("reverse direction should be a distinct record")
	}
	if c.Opposite != srv || srv.Opposite != c {
		t.Error("directions not cross-linked")
	}
	if srv.Dir != pkt.DirServer {
		t.Errorf("server dir = %v", srv.Dir)
	}
	if c.ID == srv.ID {
		t.Error("directions share an ID")
	}
	tab.Remove(c)
	if srv.Opposite != nil {
		t.Error("removing one direction left a dangling Opposite")
	}
}

func TestLRUExpiry(t *testing.T) {
	tab := newT()
	for i := 0; i < 10; i++ {
		tab.GetOrCreate(tk(uint16(1000+i), 80), int64(i))
	}
	// Touch stream 0 so it becomes the freshest.
	tab.Touch(tab.Lookup(tk(1000, 80)), 100)
	var expired []*Stream
	n := tab.ExpireBefore(5, func(s *Stream) { expired = append(expired, s) })
	if n != 4 { // streams created at t=1..4 (stream 0 was touched at 100)
		t.Fatalf("expired %d, want 4", n)
	}
	for _, s := range expired {
		if s.Status != StatusTimedOut {
			t.Errorf("expired stream status = %v", s.Status)
		}
		if s.Key == tk(1000, 80) {
			t.Error("freshly touched stream expired")
		}
	}
	if tab.Len() != 6 {
		t.Errorf("len = %d, want 6", tab.Len())
	}
}

func TestExpirySweepStopsAtFreshStream(t *testing.T) {
	tab := newT()
	for i := 0; i < 1000; i++ {
		tab.GetOrCreate(tk(uint16(i), 80), int64(i))
	}
	// Nothing is older than deadline 0: sweep must do no work and remove
	// nothing.
	if n := tab.ExpireBefore(0, nil); n != 0 {
		t.Errorf("expired %d, want 0", n)
	}
}

// TestExpiryNeverKillsFresh is the property test for the access-list sweep:
// after arbitrary interleaved creates and touches, no stream accessed within
// the timeout window is ever expired.
func TestExpiryNeverKillsFresh(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tab := newT()
	const timeout = 50
	now := int64(0)
	live := map[pkt.FlowKey]bool{}
	for step := 0; step < 5000; step++ {
		now++
		switch r.Intn(3) {
		case 0, 1:
			k := tk(uint16(r.Intn(500)), 80)
			tab.GetOrCreate(k, now)
			live[k] = true
		case 2:
			tab.ExpireBefore(now-timeout, func(s *Stream) {
				if now-s.LastAccess() <= timeout {
					t.Fatalf("expired stream %v accessed %d ago", s.Key, now-s.LastAccess())
				}
				delete(live, s.Key)
			})
		}
	}
	// Every live key must still be resident.
	for k := range live {
		if s := tab.Lookup(k); s != nil && now-s.LastAccess() <= timeout {
			continue
		} else if s == nil {
			// Expired legitimately only if stale.
			continue
		}
	}
}

func TestEvictOldest(t *testing.T) {
	tab := newT()
	// One generation (~268 ms) apart, so every stream sits in its own age
	// class and oldest-first eviction is exact.
	for i := 0; i < 5; i++ {
		tab.GetOrCreate(tk(uint16(2000+i), 80), int64(i)<<genShift)
	}
	ev := tab.EvictOldest(nil)
	if ev == nil || ev.Key != tk(2000, 80) {
		t.Fatalf("evicted %v, want oldest", ev)
	}
	if ev.Status != StatusEvicted {
		t.Errorf("status = %v", ev.Status)
	}
	if tab.Evicted != 1 || tab.Len() != 4 {
		t.Errorf("Evicted=%d Len=%d", tab.Evicted, tab.Len())
	}
	// Draining the table keeps yielding the oldest remaining class.
	for want := 2001; want <= 2004; want++ {
		ev = tab.EvictOldest(nil)
		if ev == nil || ev.Key.SrcPort != uint16(want) {
			t.Fatalf("evicted %v, want port %d", ev, want)
		}
	}
	if tab.EvictOldest(nil) != nil {
		t.Error("eviction from empty table returned a stream")
	}
}

// TestEvictOldestWithinClass: streams created inside the same generation are
// all eviction-eligible regardless of creation order — the age classes are
// coarse by design.
func TestEvictOldestWithinClass(t *testing.T) {
	tab := newT()
	old := map[uint16]bool{}
	for i := 0; i < 3; i++ { // same generation: all age-equivalent
		tab.GetOrCreate(tk(uint16(3000+i), 80), int64(i))
		old[uint16(3000+i)] = true
	}
	// A later class that must survive while the old class drains.
	tab.GetOrCreate(tk(4000, 80), 10<<genShift)
	for i := 0; i < 3; i++ {
		ev := tab.EvictOldest(nil)
		if ev == nil || !old[ev.Key.SrcPort] {
			t.Fatalf("evicted %v, want a member of the oldest class", ev)
		}
		delete(old, ev.Key.SrcPort)
	}
	if s := tab.Lookup(tk(4000, 80)); s == nil {
		t.Error("fresh stream evicted before the oldest class drained")
	}
}

func TestDynamicGrowthMillionsOfStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("million-stream growth run; skipped in -short runs")
	}
	if testing.Short() {
		t.Skip("large table test")
	}
	tab := newT()
	const n = 1 << 20 // ~1M directions; Fig 5's point is there is no cap
	mk := func(i int) pkt.FlowKey {
		return pkt.FlowKey{
			SrcIP:   netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}),
			DstIP:   pkt.MustAddr("10.255.0.2"),
			SrcPort: uint16(i), DstPort: 80, Proto: pkt.ProtoTCP,
		}
	}
	for i := 0; i < n; i++ {
		tab.GetOrCreate(mk(i), int64(i))
	}
	if tab.Len() != n {
		t.Fatalf("len = %d, want %d", tab.Len(), n)
	}
	// All streams remain findable (no silent cap).
	if tab.Lookup(mk(1)) == nil {
		t.Error("early stream lost after growth")
	}
}

func TestRecycleReuse(t *testing.T) {
	tab := newT()
	s, _ := tab.GetOrCreate(tk(1, 2), 0)
	s.User = "cookie"
	tab.Remove(s)
	tab.Recycle(s)
	s2, _ := tab.GetOrCreate(tk(3, 4), 0)
	if s2 != s {
		t.Log("allocator did not reuse record (allowed, but pool expected)")
	}
	if s2.User != nil {
		t.Error("recycled record leaked state")
	}
}

func TestWalkCoversEveryStream(t *testing.T) {
	tab := newT()
	for i := 0; i < 5; i++ {
		tab.GetOrCreate(tk(uint16(100+i), 80), int64(i))
	}
	seen := map[uint16]bool{}
	tab.Walk(func(s *Stream) bool {
		if seen[s.Key.SrcPort] {
			t.Fatalf("stream %v visited twice", s.Key)
		}
		seen[s.Key.SrcPort] = true
		return true
	})
	if len(seen) != 5 {
		t.Fatalf("walk visited %d streams, want 5", len(seen))
	}
	// Early termination is honored.
	n := 0
	tab.Walk(func(*Stream) bool { n++; return false })
	if n != 1 {
		t.Errorf("walk after false continued: %d visits", n)
	}
}

func TestSweepVisitsWholeTableIncrementally(t *testing.T) {
	tab := newT()
	const streams = 100
	for i := 0; i < streams; i++ {
		tab.GetOrCreate(tk(uint16(i), 80), int64(i))
	}
	groups := tab.Cap() / slotsPerGroup
	seen := map[uint16]int{}
	visited := 0
	// Quarter-table budget per call: four calls must cover every group
	// exactly once.
	for visited < groups {
		visited += tab.Sweep(100, groups/4, func(s *Stream) { seen[s.Key.SrcPort]++ })
	}
	if len(seen) != streams {
		t.Fatalf("sweeps visited %d distinct streams, want %d", len(seen), streams)
	}
	for p, n := range seen {
		if n != 1 {
			t.Fatalf("stream %d visited %d times in one full cycle", p, n)
		}
	}
	if tab.SweptGroups != uint64(groups) {
		t.Errorf("SweptGroups = %d, want %d", tab.SweptGroups, groups)
	}
}

// TestSweepRepairsAliasedGenerations: a stream idle past the uint8
// generation span aliases to a young class; one full sweep cycle re-stamps
// it into the oldest representable class so eviction targets it again.
func TestSweepRepairsAliasedGenerations(t *testing.T) {
	tab := newT()
	idle, _ := tab.GetOrCreate(tk(1, 80), 0)
	// 300 generations later: uint8(300)=44, so without repair the idle
	// stream's stamp (0) looks newer than a gen-44-created fresh stream
	// would... create fresh streams now.
	now := int64(300) << genShift
	fresh, _ := tab.GetOrCreate(tk(2, 80), now)
	groups := tab.Cap() / slotsPerGroup
	tab.Sweep(now, groups, nil)
	ev := tab.EvictOldest(nil)
	if ev != idle {
		t.Fatalf("evicted %v, want the ancient idle stream", ev.Key)
	}
	if !fresh.InTable() {
		t.Error("fresh stream evicted")
	}
}

func TestSetIDBaseGuard(t *testing.T) {
	tab := newT()
	tab.SetIDBase(1 << 48) // before first stream: fine
	s, _ := tab.GetOrCreate(tk(1, 2), 0)
	if s.ID != 1<<48+1 {
		t.Fatalf("ID = %#x, want base+1", s.ID)
	}
	defer func() {
		if recover() == nil {
			t.Error("SetIDBase after stream creation did not panic")
		}
	}()
	tab.SetIDBase(2 << 48)
}

func TestTombstoneReuseAndRehash(t *testing.T) {
	tab := newT()
	// Fill well past several growths with interleaved removals so slots
	// cycle through tombstone and empty states, then verify membership.
	live := map[uint16]*Stream{}
	for i := 0; i < 20000; i++ {
		p := uint16(i)
		s, created := tab.GetOrCreate(tk(p, 80), int64(i))
		if !created {
			t.Fatalf("key %d collided", i)
		}
		live[p] = s
		if i%3 == 0 {
			victim := uint16(i / 2)
			if v, ok := live[victim]; ok {
				tab.Remove(v)
				tab.Recycle(v)
				delete(live, victim)
			}
		}
	}
	if tab.Len() != len(live) {
		t.Fatalf("len = %d, want %d", tab.Len(), len(live))
	}
	for p, want := range live {
		if got := tab.Lookup(tk(p, 80)); got != want {
			t.Fatalf("key %d resolved to %v, want its record", p, got)
		}
	}
	// Removed keys stay gone.
	if tab.Lookup(tk(3, 80)) != nil && live[3] == nil {
		t.Error("removed key still resolves")
	}
}

// TestPointerStabilityAcrossGrowth pins the slab contract: records handed
// out before growth remain the same *Stream (and findable) after the table
// rehashes many times.
func TestPointerStabilityAcrossGrowth(t *testing.T) {
	tab := newT()
	first, _ := tab.GetOrCreate(tk(9999, 80), 0)
	for i := 0; i < 100000; i++ {
		tab.GetOrCreate(tk(uint16(i), uint16(8000+i>>16)), int64(i))
	}
	if got := tab.Lookup(tk(9999, 80)); got != first {
		t.Fatalf("record moved across growth: %p != %p", got, first)
	}
	if first.Key != tk(9999, 80) || !first.InTable() {
		t.Error("record corrupted across growth")
	}
}

func TestRandomizedSeedDiffers(t *testing.T) {
	t1 := NewTable(rand.New(rand.NewSource(1)))
	t2 := NewTable(rand.New(rand.NewSource(2)))
	if t1.seed == t2.seed {
		t.Error("different RNGs produced identical seeds")
	}
}

func TestEstimatedBytesFromFIN(t *testing.T) {
	tab := newT()
	s, _ := tab.GetOrCreate(tk(1, 2), 0)
	s.Stats.PayloadBytes = 100
	if s.EstimatedBytes() != 100 {
		t.Errorf("EstimatedBytes = %d", s.EstimatedBytes())
	}
}
