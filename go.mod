module scap

go 1.22
