package analysis

import (
	"strings"
	"testing"
)

func TestExportedDocFixtures(t *testing.T) {
	_, pkg := loadFixtures(t, "exporteddoc")
	checkAnalyzer(t, ExportedDoc, pkg)
}

func TestExportedDocUnmarkedPackage(t *testing.T) {
	// Without the //scap:publicapi marker the analyzer must stay silent,
	// even on undocumented exported symbols.
	_, pkg := loadFixtures(t, "exporteddocoff")
	if diags := ExportedDoc.Run(pkg); len(diags) != 0 {
		t.Fatalf("unmarked package produced diagnostics: %v", diags)
	}
}

func TestExportedDocSuppression(t *testing.T) {
	_, pkg := loadFixtures(t, "exporteddoc")
	raw := ExportedDoc.Run(pkg)
	found := false
	for _, d := range raw {
		if strings.Contains(d.Message, "function Audited") {
			found = true
		}
	}
	if !found {
		t.Fatal("raw run should flag Audited before suppression filtering")
	}
	for _, d := range RunAll([]*Package{pkg}, []*Analyzer{ExportedDoc}) {
		if strings.Contains(d.Message, "Audited") {
			t.Errorf("suppressed diagnostic survived filtering: %s", d)
		}
	}
}
