package analysis

import (
	"strings"
	"testing"
)

func TestHotPathBlock(t *testing.T) {
	_, pkg := loadFixtures(t, "hotpathblock")
	diags := checkAnalyzer(t, HotPathBlock, pkg)

	// A blocking site inside a marked function reports the function
	// itself; a transitive site reports the witness chain from the root.
	if got := positionOf(t, diags, "channel send"); got != "fixtures.go:19:7" {
		t.Errorf("send finding at %s, want fixtures.go:19:7", got)
	}
	sleep := messageOf(t, diags, "time.Sleep")
	if !strings.Contains(sleep, "reached from //scap:hotpath q.poll → q.parkUntil") {
		t.Errorf("transitive finding lacks the witness chain: %s", sleep)
	}
	direct := messageOf(t, diags, "channel receive")
	if !strings.Contains(direct, "in //scap:hotpath q.drainOne") {
		t.Errorf("direct finding misattributed: %s", direct)
	}
}
