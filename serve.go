package scap

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"scap/internal/core"
	"scap/internal/ctlplane"
	"scap/internal/metrics"
	"scap/internal/sketch"
	"scap/internal/streamscope"
)

// DebugServer is the optional observability endpoint of one socket, started
// with Handle.Serve. It has no counterpart in the paper's API — it exposes
// the same counters scap_get_stats reads, but live, with per-core
// breakdowns, windowed rates, and the Go runtime's profiling endpoints.
type DebugServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
	// win and reg back the handler methods; net/http invokes those from its
	// per-connection goroutines, so they carry the debugserver role and may
	// touch capture state only through the any-goroutine-safe read paths.
	win *metrics.Window
	reg *metrics.Registry
	// engines is the per-core engine list captured at Serve time; the
	// sketch handler reads only their atomic snapshot pointers.
	engines []*core.Engine
	// ctl is the adaptive controller, nil when disabled; its handler reads
	// only the atomic snapshot pointer.
	ctl *ctlplane.Controller
	// scope holds the stream journals, nil when disabled; its handler uses
	// only the seqlock read protocol. hist is the metrics history ring, nil
	// when disabled; its handler reads under the ring's own mutex.
	scope *streamscope.Scope
	hist  *metrics.History
}

// allowGet gates a handler to read methods: everything on this server is a
// read-only snapshot, so anything but GET or HEAD is answered with 405 and
// an Allow header rather than silently treated as a read.
func allowGet(next http.HandlerFunc) http.HandlerFunc {
	return func(rw http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			rw.Header().Set("Allow", "GET, HEAD")
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		next(rw, req)
	}
}

// handleMetrics serves /metrics: the registry as JSON with rates windowed
// since the previous scrape, or — with ?format=prom — as OpenMetrics text
// exposition (totals, per-core series, histogram buckets with exemplars).
//
//scap:goroutine debugserver per-request handler on net/http's connection goroutines
func (s *DebugServer) handleMetrics(rw http.ResponseWriter, req *http.Request) {
	if req.URL.Query().Get("format") == "prom" {
		rw.Header().Set("Content-Type", metrics.PromContentType)
		_ = metrics.WriteProm(rw, s.reg.Snapshot())
		return
	}
	p := s.win.Collect()
	rw.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	_ = enc.Encode(p)
}

// handleFlight serves /debug/flight: the flight recorder's records as plain
// or Chrome trace-event JSON.
//
//scap:goroutine debugserver per-request handler on net/http's connection goroutines
func (s *DebugServer) handleFlight(rw http.ResponseWriter, req *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	if req.URL.Query().Get("format") == "chrome" {
		_ = enc.Encode(metrics.ChromeTraceFromRecords(s.reg.Flight().Snapshot()))
		return
	}
	_ = enc.Encode(s.reg.Flight().Dump())
}

// handleStreams serves /debug/streams: the sampled and anomaly-promoted
// stream lifecycle journals as JSON (anomalous streams first), or — with
// ?format=chrome — as Chrome trace-event JSON with one named track per
// journaled stream, loadable in Perfetto. Serves {"enabled": false} when
// stream journaling is disabled.
//
//scap:goroutine debugserver per-request handler on net/http's connection goroutines
func (s *DebugServer) handleStreams(rw http.ResponseWriter, req *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	if s.scope == nil {
		_ = enc.Encode(map[string]bool{"enabled": false})
		return
	}
	if req.URL.Query().Get("format") == "chrome" {
		_ = enc.Encode(streamscope.ChromeTrace(s.scope.Snapshot()))
		return
	}
	_ = enc.Encode(s.scope.DumpState())
}

// handleHistory serves /debug/history: the bounded ring of periodic metrics
// snapshots (counter totals and rates, gauges, histogram quantiles), oldest
// first — the data behind scaptop's sparklines and ctlplane episode replay.
// Serves {"enabled": false} when the history ring is disabled.
//
//scap:goroutine debugserver per-request handler on net/http's connection goroutines
func (s *DebugServer) handleHistory(rw http.ResponseWriter, req *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	if s.hist == nil {
		_ = enc.Encode(map[string]bool{"enabled": false})
		return
	}
	_ = enc.Encode(s.hist.Dump())
}

// handleSketch serves /debug/sketch: each engine's most recently published
// sketch snapshot — observed totals, per-priority byte/packet breakdowns,
// and the tracked heavy-hitter flows with their FDIR state. Entries are null
// for cores without a sketch (front-end disabled).
//
//scap:goroutine debugserver per-request handler on net/http's connection goroutines
func (s *DebugServer) handleSketch(rw http.ResponseWriter, req *http.Request) {
	out := make([]*sketch.Snapshot, len(s.engines))
	for i, e := range s.engines {
		if sk := e.Sketch(); sk != nil {
			out[i] = sk.Snapshot()
		}
	}
	rw.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

// handleCtlplane serves /debug/ctlplane: the adaptive controller's last
// published snapshot — mode, live pressure signals, the active cutoff clamp
// and FDIR budget, the installed watermark ladder, and the recent decision
// ring with its evidence. Serves {"enabled": false} when the controller is
// disabled.
//
//scap:goroutine debugserver per-request handler on net/http's connection goroutines
func (s *DebugServer) handleCtlplane(rw http.ResponseWriter, req *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	if s.ctl == nil {
		_ = enc.Encode(&ctlplane.Snapshot{Enabled: false, Mode: "disabled", DynCutoff: -1, FDIRBudget: -1})
		return
	}
	_ = enc.Encode(s.ctl.Snapshot())
}

// Serve starts a debug HTTP server for the socket on addr (host:port; use
// port 0 for an ephemeral port, then read Addr). It serves:
//
//   - /metrics — the metrics registry as JSON: every counter with its total
//     and per-core values, per-second rates windowed between scrapes,
//     gauges, histograms with exemplars, and the recent overload events
//     (PPL pressure episodes, ring-full episodes, FDIR churn).
//     /metrics?format=prom returns the same registry as OpenMetrics text
//     exposition for Prometheus-compatible scrapers.
//   - /debug/flight — the flight recorder's per-core decision records as
//     JSON (oldest first); /debug/flight?format=chrome returns the same
//     records as Chrome trace-event JSON, loadable in chrome://tracing or
//     Perfetto (ui.perfetto.dev).
//   - /debug/streams — the sampled per-stream lifecycle journals: every
//     Nth stream plus every anomalous stream, each with its recent
//     lifecycle events (creation, first payload, chunk flushes, gaps,
//     overlaps, PPL drops, cutoff, close). /debug/streams?format=chrome
//     returns them as Chrome trace-event JSON with one named track per
//     stream. {"enabled": false} when Config.Streams.Disabled.
//   - /debug/history — the bounded ring of periodic metrics snapshots
//     (totals, rates, gauges, histogram p50/p99), oldest first.
//     {"enabled": false} when Config.History.Disabled.
//   - /debug/sketch — each core's sketch front-end snapshot (observed
//     totals, per-priority breakdowns, heavy-hitter flows). Call Serve
//     after StartCapture so the engines exist; entries are null when the
//     sketch is disabled.
//   - /debug/ctlplane — the adaptive overload controller's state: mode,
//     pressure signals, active cutoff clamp and FDIR budget, watermark
//     ladder, and the recent decisions with evidence. {"enabled": false}
//     when Config.Control is off.
//   - /debug/pprof/ — the standard net/http/pprof profiling endpoints.
//   - /debug/vars — expvar's process-wide variables.
//
// Every endpoint is a read-only snapshot: non-GET requests are answered
// with 405 Method Not Allowed.
//
// The rate window is shared by all scrapers of this server: each /metrics
// request reports rates since the previous request. Run one poller (e.g.
// cmd/scaptop) per server for meaningful rates. The server runs until
// Close; it does not stop when the Handle is closed, so totals remain
// scrapeable after capture ends.
func (h *Handle) Serve(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	w := metrics.NewWindow(h.reg)
	w.Collect() // prime: the first scrape then has a real window
	s := &DebugServer{
		ln:      ln,
		done:    make(chan struct{}),
		win:     w,
		reg:     h.reg,
		engines: append([]*core.Engine(nil), h.engines...),
		ctl:     h.ctl,
		scope:   h.scope,
		hist:    h.hist,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", allowGet(s.handleMetrics))
	mux.HandleFunc("/debug/flight", allowGet(s.handleFlight))
	mux.HandleFunc("/debug/streams", allowGet(s.handleStreams))
	mux.HandleFunc("/debug/history", allowGet(s.handleHistory))
	mux.HandleFunc("/debug/sketch", allowGet(s.handleSketch))
	mux.HandleFunc("/debug/ctlplane", allowGet(s.handleCtlplane))
	mux.HandleFunc("/debug/pprof/", allowGet(pprof.Index))
	mux.HandleFunc("/debug/pprof/cmdline", allowGet(pprof.Cmdline))
	mux.HandleFunc("/debug/pprof/profile", allowGet(pprof.Profile))
	mux.HandleFunc("/debug/pprof/symbol", allowGet(pprof.Symbol))
	mux.HandleFunc("/debug/pprof/trace", allowGet(pprof.Trace))
	mux.HandleFunc("/debug/vars", allowGet(expvar.Handler().ServeHTTP))
	s.srv = &http.Server{Handler: mux}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the server's listen address (resolving port 0 to the bound
// port).
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// closeGrace bounds how long Close waits for in-flight requests to finish
// before severing their connections.
const closeGrace = 2 * time.Second

// Close shuts the server down and waits for its goroutine. It first attempts
// a graceful Shutdown with a short deadline, so an in-flight /metrics scrape
// or flight dump completes its response body instead of being truncated
// mid-write; only if requests are still running at the deadline are their
// connections closed.
func (s *DebugServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), closeGrace)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Deadline hit with requests still in flight: sever them.
		if cerr := s.srv.Close(); cerr != nil && err == context.DeadlineExceeded {
			err = cerr
		}
	}
	<-s.done
	return err
}
