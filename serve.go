package scap

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"scap/internal/core"
	"scap/internal/ctlplane"
	"scap/internal/metrics"
	"scap/internal/sketch"
)

// DebugServer is the optional observability endpoint of one socket, started
// with Handle.Serve. It has no counterpart in the paper's API — it exposes
// the same counters scap_get_stats reads, but live, with per-core
// breakdowns, windowed rates, and the Go runtime's profiling endpoints.
type DebugServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
	// win and reg back the handler methods; net/http invokes those from its
	// per-connection goroutines, so they carry the debugserver role and may
	// touch capture state only through the any-goroutine-safe read paths.
	win *metrics.Window
	reg *metrics.Registry
	// engines is the per-core engine list captured at Serve time; the
	// sketch handler reads only their atomic snapshot pointers.
	engines []*core.Engine
	// ctl is the adaptive controller, nil when disabled; its handler reads
	// only the atomic snapshot pointer.
	ctl *ctlplane.Controller
}

// handleMetrics serves /metrics: the registry as JSON with rates windowed
// since the previous scrape.
//
//scap:goroutine debugserver per-request handler on net/http's connection goroutines
func (s *DebugServer) handleMetrics(rw http.ResponseWriter, req *http.Request) {
	p := s.win.Collect()
	rw.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	_ = enc.Encode(p)
}

// handleFlight serves /debug/flight: the flight recorder's records as plain
// or Chrome trace-event JSON.
//
//scap:goroutine debugserver per-request handler on net/http's connection goroutines
func (s *DebugServer) handleFlight(rw http.ResponseWriter, req *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	if req.URL.Query().Get("format") == "chrome" {
		_ = enc.Encode(metrics.ChromeTraceFromRecords(s.reg.Flight().Snapshot()))
		return
	}
	_ = enc.Encode(s.reg.Flight().Dump())
}

// handleSketch serves /debug/sketch: each engine's most recently published
// sketch snapshot — observed totals, per-priority byte/packet breakdowns,
// and the tracked heavy-hitter flows with their FDIR state. Entries are null
// for cores without a sketch (front-end disabled).
//
//scap:goroutine debugserver per-request handler on net/http's connection goroutines
func (s *DebugServer) handleSketch(rw http.ResponseWriter, req *http.Request) {
	out := make([]*sketch.Snapshot, len(s.engines))
	for i, e := range s.engines {
		if sk := e.Sketch(); sk != nil {
			out[i] = sk.Snapshot()
		}
	}
	rw.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

// handleCtlplane serves /debug/ctlplane: the adaptive controller's last
// published snapshot — mode, live pressure signals, the active cutoff clamp
// and FDIR budget, the installed watermark ladder, and the recent decision
// ring with its evidence. Serves {"enabled": false} when the controller is
// disabled.
//
//scap:goroutine debugserver per-request handler on net/http's connection goroutines
func (s *DebugServer) handleCtlplane(rw http.ResponseWriter, req *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	if s.ctl == nil {
		_ = enc.Encode(&ctlplane.Snapshot{Enabled: false, Mode: "disabled", DynCutoff: -1, FDIRBudget: -1})
		return
	}
	_ = enc.Encode(s.ctl.Snapshot())
}

// Serve starts a debug HTTP server for the socket on addr (host:port; use
// port 0 for an ephemeral port, then read Addr). It serves:
//
//   - /metrics — the metrics registry as JSON: every counter with its total
//     and per-core values, per-second rates windowed between scrapes,
//     gauges, histograms, and the recent overload events (PPL pressure
//     episodes, ring-full episodes, FDIR churn).
//   - /debug/flight — the flight recorder's per-core decision records as
//     JSON (oldest first); /debug/flight?format=chrome returns the same
//     records as Chrome trace-event JSON, loadable in chrome://tracing or
//     Perfetto (ui.perfetto.dev).
//   - /debug/sketch — each core's sketch front-end snapshot (observed
//     totals, per-priority breakdowns, heavy-hitter flows). Call Serve
//     after StartCapture so the engines exist; entries are null when the
//     sketch is disabled.
//   - /debug/ctlplane — the adaptive overload controller's state: mode,
//     pressure signals, active cutoff clamp and FDIR budget, watermark
//     ladder, and the recent decisions with evidence. {"enabled": false}
//     when Config.Control is off.
//   - /debug/pprof/ — the standard net/http/pprof profiling endpoints.
//   - /debug/vars — expvar's process-wide variables.
//
// The rate window is shared by all scrapers of this server: each /metrics
// request reports rates since the previous request. Run one poller (e.g.
// cmd/scaptop) per server for meaningful rates. The server runs until
// Close; it does not stop when the Handle is closed, so totals remain
// scrapeable after capture ends.
func (h *Handle) Serve(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	w := metrics.NewWindow(h.reg)
	w.Collect() // prime: the first scrape then has a real window
	s := &DebugServer{
		ln:      ln,
		done:    make(chan struct{}),
		win:     w,
		reg:     h.reg,
		engines: append([]*core.Engine(nil), h.engines...),
		ctl:     h.ctl,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/flight", s.handleFlight)
	mux.HandleFunc("/debug/sketch", s.handleSketch)
	mux.HandleFunc("/debug/ctlplane", s.handleCtlplane)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	s.srv = &http.Server{Handler: mux}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the server's listen address (resolving port 0 to the bound
// port).
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// closeGrace bounds how long Close waits for in-flight requests to finish
// before severing their connections.
const closeGrace = 2 * time.Second

// Close shuts the server down and waits for its goroutine. It first attempts
// a graceful Shutdown with a short deadline, so an in-flight /metrics scrape
// or flight dump completes its response body instead of being truncated
// mid-write; only if requests are still running at the deadline are their
// connections closed.
func (s *DebugServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), closeGrace)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Deadline hit with requests still in flight: sever them.
		if cerr := s.srv.Close(); cerr != nil && err == context.DeadlineExceeded {
			err = cerr
		}
	}
	<-s.done
	return err
}
