package core

import (
	"scap/internal/event"
	"scap/internal/flowtab"
	"scap/internal/mem"
	"scap/internal/metrics"
	"scap/internal/streamscope"
)

// streamExt is the engine-private extension record hung off
// flowtab.Stream.Chunk: the current chunk under construction plus the
// engine bookkeeping the generic flow table does not know about.
type streamExt struct {
	chunk chunkState
	// chunksDelivered counts data events for this stream (sd->chunks).
	chunksDelivered uint64
	// filterTimeout is the current FDIR filter lifetime; it doubles on
	// every re-install so long-lived flows are evicted from the NIC only a
	// logarithmic number of times (paper §5.5).
	filterTimeout int64
	// ignored streams failed the socket filter: tracked for cheap
	// discarding but generating no events.
	ignored bool
	// discard set by scap_discard_stream.
	discard bool
	// finalDelivered guards against duplicate final data events.
	finalDelivered bool

	// j is the stream's lifecycle journal (nil for un-journaled streams);
	// jGen is the journal generation observed at bind time — a mismatch
	// means the pool rebound the journal to a newer stream and writes must
	// stop. jFirst marks the first-payload event as emitted; jOldWins and
	// jNewWins remember the assembler's overlap totals at the last overlap
	// check so only transitions emit events.
	j        *streamscope.Journal
	jGen     uint64
	jFirst   bool
	jOldWins uint64
	jNewWins uint64
}

// chunkState is one in-progress chunk of reassembled stream data. Its bytes
// live in one arena block (blk): buf is a length-limited view of the block's
// storage, so filling the chunk is a copy into preallocated memory, never a
// heap allocation. A nil buf with blk == NoBlock marks "no chunk yet" — the
// state after delivery, and after a failed block grab under arena
// exhaustion (the next packet retries the allocation).
type chunkState struct {
	buf        []byte     // fill = len(buf); a view into blk's storage
	blk        mem.Handle // the arena block backing buf
	size       int        // the chunk's byte bound (stream chunk size, capped by the block)
	overlapLen int        // prefix carried from the previous chunk (not re-accounted)
	extraAcct  int        // accounted bytes adopted back via KeepChunk
	holeBefore bool
	firstTS    int64 // timestamp of the first byte (flush timeout anchor)
	pkts       []event.PacketRecord
}

// fill returns the number of bytes in the chunk.
func (c *chunkState) fill() int { return len(c.buf) }

// accounted returns how many of the chunk's bytes are charged to the
// memory budget.
func (c *chunkState) accounted() int { return len(c.buf) - c.overlapLen + c.extraAcct }

// room returns how many bytes the chunk may still take.
func (c *chunkState) room() int { return c.size - len(c.buf) }

// ext returns (allocating if needed) the engine extension of s.
func ext(s *flowtab.Stream) *streamExt {
	if e, ok := s.Chunk.(*streamExt); ok {
		return e
	}
	e := &streamExt{}
	s.Chunk = e
	return e
}

// newChunkBuf starts a chunk in a fresh arena block, bounded by the
// stream's chunk size (capped by the block's capacity), seeding it with the
// overlap tail of the previous chunk when configured. When the arena has no
// free block — stream concurrency times block size exceeding the physical
// pool — the chunk falls back to a transient heap buffer: the byte
// accounting (PPL watermarks) stays the authoritative admission bound, the
// arena is the zero-alloc fast path for it.
//
//scap:hotpath
func (e *Engine) newChunkBuf(s *flowtab.Stream, x *streamExt, prev []byte, ts int64) chunkState {
	size := s.ChunkSize
	if size <= 0 {
		size = e.cfg.ChunkSize
	}
	h, store := e.mm.AllocBlock(e.coreID)
	if h == mem.NoBlock {
		store = e.heapChunkStore(size)
		e.janomaly(s, x, streamscope.AnomArenaFallback, streamscope.EvArenaFallback, int64(size), 0)
	} else if size > len(store) {
		size = len(store)
	}
	c := chunkState{firstTS: ts, size: size, blk: h}
	overlap := s.OverlapSize
	if overlap > len(prev) {
		overlap = len(prev)
	}
	if overlap >= size {
		overlap = size - 1
	}
	if overlap > 0 {
		c.buf = store[:overlap]
		copy(c.buf, prev[len(prev)-overlap:])
		c.overlapLen = overlap
	} else {
		c.buf = store[:0]
	}
	if e.cfg.NeedPkts && h != mem.NoBlock {
		// Reuse the record slab that recycles with the block (see
		// growPktRecords); first use of a block starts with none. Heap
		// chunks grow their own slab lazily in growPktRecords.
		if recs, ok := e.mm.BlockAttachment(h).([]event.PacketRecord); ok {
			c.pkts = recs[:0]
		}
	}
	return c
}

// heapChunkStore allocates the arena-exhaustion fallback buffer. Cold by
// construction: it runs only when every block is pinned by a concurrent
// stream, and the counter makes that visible so the operator can raise
// MemorySize (or shrink chunks) instead.
func (e *Engine) heapChunkStore(size int) []byte {
	e.c.arenaExhausted.Add(1)
	e.m.flight.Note(e.coreID, metrics.FlightArenaFallback, int64(size), 0)
	return make([]byte, size)
}
