package nic

import "errors"

// AFPacketConfig configures the live Linux AF_PACKET/TPACKET_V3 backend.
type AFPacketConfig struct {
	// Iface is the network interface to capture from (e.g. "veth0").
	Iface string
	// Queues is the number of fanout sockets: the kernel's
	// PACKET_FANOUT_HASH spreads flows over them, standing in for
	// hardware RSS. Default 1.
	Queues int
	// BlockBytes is the size of one TPACKET_V3 ring block. Default 1 MB.
	BlockBytes int
	// Blocks is the number of ring blocks per queue socket. Default 64.
	Blocks int
	// Snaplen truncates frames copied out of the ring (0 = full frames).
	Snaplen int
	// FanoutID identifies the fanout group; sockets with the same ID on
	// the same interface share flows. 0 picks an ID from the process PID.
	FanoutID uint16
}

// ErrLiveUnsupported is returned by NewAFPacket when the binary was built
// without the live backend (any build lacking the "live" tag, or a
// non-Linux target): the AF_PACKET transport compiles out so tier-1 stays
// hermetic.
var ErrLiveUnsupported = errors.New("nic: AF_PACKET backend not built in (need GOOS=linux and -tags live)")

// afpacketOpen is installed by the build-tagged implementation's init;
// nil means the transport was compiled out.
var afpacketOpen func(AFPacketConfig) (Backend, error)

// NewAFPacket builds the live AF_PACKET capture backend, or returns
// ErrLiveUnsupported when it was compiled out. The sockets and rings are
// created by Open, which requires CAP_NET_RAW and an existing interface.
func NewAFPacket(cfg AFPacketConfig) (Backend, error) {
	if afpacketOpen == nil {
		return nil, ErrLiveUnsupported
	}
	return afpacketOpen(cfg)
}
