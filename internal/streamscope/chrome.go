package streamscope

import "time"

// Chrome trace-event export: each journaled stream becomes one named track
// (thread) so a /debug/streams?format=chrome dump opens in Perfetto or
// chrome://tracing with the stream's lifecycle laid out on its own lane.
// Chunk flushes carry their age as a duration and render as complete ("X")
// spans ending at the flush; everything else is an instant ("i") event.

// TraceEvent is one event of the Chrome trace-event format. It mirrors
// metrics.ChromeTraceEvent but allows string args (the stream key) in
// thread-name metadata.
type TraceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Trace is the JSON-object form of the trace-event format.
type Trace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// ChromeTrace converts a set of journal snapshots into a Chrome trace with
// one named track per journal. Timestamps are rebased to the earliest event
// so the trace starts at zero regardless of the capture clock's epoch.
func ChromeTrace(snaps []JournalSnap) Trace {
	tr := Trace{DisplayTimeUnit: "ms", TraceEvents: []TraceEvent{}}
	base := int64(0)
	have := false
	for _, js := range snaps {
		for _, ev := range js.Events {
			ts := ev.TimeUnixNano
			if ev.Kind == EvChunkFlush && ev.B > 0 {
				ts -= ev.B // span starts when the chunk was opened
			}
			if !have || ts < base {
				base, have = ts, true
			}
		}
	}
	usec := func(ns int64) float64 { return float64(ns) / float64(time.Microsecond) }
	for i, js := range snaps {
		tid := i + 1
		name := "stream " + js.Key
		if js.AnomalyMask != 0 {
			name += " [anomaly]"
		}
		tr.TraceEvents = append(tr.TraceEvents, TraceEvent{
			Name: "thread_name",
			Ph:   "M",
			TID:  tid,
			Args: map[string]any{"name": name},
		})
		for _, ev := range js.Events {
			te := TraceEvent{
				Name: ev.KindName,
				Cat:  "stream",
				TID:  tid,
				Args: map[string]any{
					"a":         ev.A,
					"b":         ev.B,
					"seq":       int64(ev.Seq),
					"stream_id": int64(js.StreamID),
				},
			}
			if ev.Kind == EvChunkFlush && ev.B > 0 {
				// B is the chunk's age at flush: render the chunk's whole
				// residency as a complete event ending at the flush.
				te.Ph = "X"
				te.TS = usec(ev.TimeUnixNano - base - ev.B)
				if te.TS < 0 {
					te.TS = 0
				}
				te.Dur = usec(ev.B)
			} else {
				te.Ph = "i"
				te.Scope = "t"
				te.TS = usec(ev.TimeUnixNano - base)
			}
			tr.TraceEvents = append(tr.TraceEvents, te)
		}
	}
	return tr
}
