// Package scap is a stream-oriented network traffic capture and analysis
// library: a Go reproduction of the Scap framework (Papadogiannakis,
// Polychronakis, Markatos — "Scap: Stream-Oriented Network Traffic Capture
// and Analysis for High-Speed Networks", IMC 2013).
//
// Scap elevates the transport-layer stream to a first-class captured
// object: applications register callbacks for stream creation, data
// availability, and termination, and receive reassembled TCP/UDP stream
// chunks instead of raw packets. Flow tracking, TCP reassembly, per-stream
// cutoffs, prioritized packet loss, and NIC flow-director filter
// management all happen in the capture core ("kernel path"), before data
// is handed to the application — the paper's central design point.
//
// The original system is a Linux kernel module driving an Intel 82599.
// This library reproduces the full architecture in user-space Go: the
// kernel path runs on per-core capture goroutines fed by a simulated
// multi-queue NIC (internal/nic) with RSS and FDIR filters, and frames
// enter the system from pcap files, synthetic workload generators
// (internal/trace), or direct injection.
//
// A minimal flow-statistics exporter (paper §3.3.1):
//
//	h, _ := scap.Create(scap.Config{ReassemblyMode: scap.TCPFast})
//	h.SetCutoff(0) // statistics only, discard all payload
//	h.DispatchTermination(func(sd *scap.Stream) {
//		fmt.Println(sd.Key(), sd.Stats().Bytes, "bytes")
//	})
//	h.StartCapture()
//	h.ReplayPcap("trace.pcap")
//	h.Close()
package scap

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"scap/internal/bpf"
	"scap/internal/core"
	"scap/internal/ctlplane"
	"scap/internal/event"
	"scap/internal/mem"
	"scap/internal/metrics"
	"scap/internal/nic"
	"scap/internal/reassembly"
	"scap/internal/streamscope"
)

// ReassemblyMode selects the TCP reassembly discipline.
type ReassemblyMode = reassembly.Mode

// Reassembly modes (paper §2.3).
const (
	// TCPStrict reassembles strictly in sequence with full normalization
	// (IP defragmentation, no write-through on holes).
	TCPStrict = reassembly.ModeStrict
	// TCPFast is best-effort: resilient to loss, flags holes.
	TCPFast = reassembly.ModeFast
)

// OverlapPolicy selects target-based overlapping-segment resolution.
type OverlapPolicy = reassembly.Policy

// Target-based reassembly policies.
const (
	PolicyFirst   = reassembly.PolicyFirst
	PolicyLast    = reassembly.PolicyLast
	PolicyBSD     = reassembly.PolicyBSD
	PolicyLinux   = reassembly.PolicyLinux
	PolicyWindows = reassembly.PolicyWindows
	PolicySolaris = reassembly.PolicySolaris
)

// CutoffUnlimited disables the stream-size cutoff.
const CutoffUnlimited = core.CutoffUnlimited

// Parameter names for SetParameter (scap_set_parameter).
type Parameter uint8

const (
	// ParamInactivityTimeout (ns) expires idle streams.
	ParamInactivityTimeout Parameter = iota
	// ParamChunkSize (bytes) sets the default chunk size.
	ParamChunkSize
	// ParamOverlapSize (bytes) carries the tail of each chunk into the
	// next one, for patterns spanning chunk boundaries.
	ParamOverlapSize
	// ParamFlushTimeout (ns) delivers partial chunks after this delay.
	ParamFlushTimeout
	// ParamBaseThreshold (per-mille of memory) sets the PPL base
	// threshold.
	ParamBaseThreshold
	// ParamOverloadCutoff (bytes) trims streams under memory pressure.
	ParamOverloadCutoff
	// ParamPriorities sets the number of PPL priority levels in use.
	ParamPriorities
)

// Config configures a capture socket at creation (scap_create).
type Config struct {
	// MemorySize is the stream-memory budget in bytes (default 1 GiB). It
	// is a physical bound: the budget is carved into one arena of
	// fixed-size blocks (sized from the chunk size plus overlap headroom)
	// that hold every chunk under construction and in flight; when no block
	// is free, payload is shed like a DropNoMemory PPL decision.
	MemorySize int64
	// ReassemblyMode selects strict or fast TCP reassembly.
	ReassemblyMode ReassemblyMode
	// NeedPkts additionally delivers per-packet records with each chunk
	// (scap_next_stream_packet).
	NeedPkts bool
	// Queues is the number of NIC receive queues (default: GOMAXPROCS).
	Queues int
	// UseFDIR enables subzero copy: NIC drop filters for cutoff streams.
	UseFDIR bool
	// DefaultPolicy is the overlap policy when no PolicyRule matches.
	DefaultPolicy OverlapPolicy
	// Sketch enables the per-core priority-aware sketch front-end: flows
	// past their cutoff (and flows the socket filter rejects) are answered
	// from a count-min summary instead of holding a stream record, so the
	// flow table tracks only the flows that still need per-stream state.
	Sketch SketchConfig
	// Control enables the adaptive overload control plane: a feedback
	// controller that tightens the effective stream cutoff under memory
	// pressure, gates sketch→NIC drop filters to overload episodes, and
	// retargets PPL watermarks from observed per-priority byte shares.
	Control ControlConfig
	// Backend selects the capture transport built at StartCapture. The
	// zero value is the simulated NIC, which the injection APIs
	// (InjectFrame, InjectBatch, ReplayPcap, ReplaySource) feed.
	Backend BackendConfig
	// Streams configures the sampled per-stream lifecycle journals served
	// at /debug/streams. The zero value enables them at the default
	// 1-in-64 sampling stride.
	Streams StreamsConfig
	// History configures the bounded ring of periodic metrics snapshots
	// served at /debug/history. The zero value enables it at one sample
	// per second, three minutes retained.
	History HistoryConfig
}

// StreamsConfig configures the sampled per-stream lifecycle journals
// (/debug/streams): every Nth new stream — plus every stream that hits an
// anomaly (cutoff clamp, arena-exhausted fallback, reassembly gap/overlap,
// PPL payload drop, FDIR install) — gets a fixed-size, alloc-free journal
// of lifecycle events. Under PPL pressure the sampling stride adaptively
// backs off; anomalous streams are journaled regardless of the stride.
type StreamsConfig struct {
	// Disabled turns stream journaling off entirely.
	Disabled bool
	// SampleEvery is the base sampling stride: one in SampleEvery new
	// streams gets a journal (rounded up to a power of two; 1 journals
	// every new stream; 0 selects the default, 64).
	SampleEvery int
	// JournalsPerCore bounds each core's journal pool (power of two;
	// 0 selects the default, 128). Older journals are rebound
	// oldest-first when the pool wraps.
	JournalsPerCore int
}

// HistoryConfig configures the metrics history ring (/debug/history).
type HistoryConfig struct {
	// Disabled turns the history ring off.
	Disabled bool
	// Interval is the sampling cadence (0 selects the default, 1s).
	Interval time.Duration
	// Depth is the ring capacity in samples (0 selects the default, 180).
	Depth int
}

// BackendConfig selects StartCapture's frame transport. The zero value is
// the simulated 82599 NIC; setting PcapPath selects the file-backed pcap
// replay backend; setting Iface selects the live Linux AF_PACKET backend
// (GOOS=linux, built with -tags live). At most one of PcapPath and Iface
// may be set. Source-driven backends do not accept injected frames — the
// injection APIs return ErrNotInjectable — and deliver on their own: use
// WaitBackend to block until a replay file is exhausted.
type BackendConfig struct {
	// PcapPath replays this classic-pcap trace file through a software
	// RSS/filter shim and per-queue bounded rings (the PF_PACKET loss
	// model), then closes the backend's Done channel at EOF.
	PcapPath string
	// PcapPasses replays the file this many times with monotonic
	// timestamps; values below 1 mean one pass.
	PcapPasses int
	// RingBytes bounds each pcap-replay staging ring in bytes (default
	// 512 MB split across queues).
	RingBytes int
	// Snaplen truncates frames on the pcap replay and AF_PACKET backends
	// (0 = full frames).
	Snaplen int
	// Iface is the interface the AF_PACKET backend captures from.
	Iface string
	// BlockBytes and Blocks size each AF_PACKET TPACKET_V3 ring
	// (per-queue ring memory is BlockBytes×Blocks; defaults 1 MB × 64).
	BlockBytes int
	Blocks     int
	// FanoutID identifies the AF_PACKET fanout group (0 derives one from
	// the process ID).
	FanoutID uint16
}

// SketchConfig configures the sketch front-end (see core.SketchConfig).
type SketchConfig = core.SketchConfig

// Handler is a stream event callback. The *Stream argument is only valid
// for the duration of the call.
type Handler func(sd *Stream)

// Errors returned by the public API.
var (
	ErrStarted    = errors.New("scap: capture already started")
	ErrNotStarted = errors.New("scap: capture not started")
	ErrClosed     = errors.New("scap: socket closed")
	ErrStale      = errors.New("scap: stream no longer exists")
	// ErrNotInjectable is returned by the injection APIs when the socket
	// runs a source-driven backend (pcap replay, AF_PACKET): frames come
	// from the backend's own source, not from the caller.
	ErrNotInjectable = errors.New("scap: backend does not accept injected frames")
)

// Handle is an Scap socket (scap_t). Configure it, register dispatch
// callbacks, call StartCapture, then feed frames via ReplayPcap,
// ReplaySource, or InjectFrame.
type Handle struct {
	cfg          Config
	engCfg       core.Config
	workers      int
	started      bool
	closed       bool
	basePerMille int64
	overload     int64
	prios        int

	mm *mem.Manager
	// backend is the capture transport selected by Config.Backend; sim is
	// the same backend downcast when it is the simulated NIC (nil
	// otherwise), for the injection paths.
	backend nic.Backend
	sim     *nic.Sim
	engines []*core.Engine
	queues  []*event.Queue

	// reg is the socket's metrics registry (created with the Handle); em is
	// the engine instrument bundle registered in it, and workerBatchH
	// tracks worker drain batch sizes. stageWorkerH and callbackH are the
	// worker-side stage-latency histograms (event-ring publish to worker
	// pop, and application callback duration). final freezes the last
	// statistics snapshot at Close, so GetStats never races engine teardown.
	reg          *metrics.Registry
	em           *core.Metrics
	workerBatchH *metrics.Histogram
	stageWorkerH *metrics.Histogram
	callbackH    *metrics.Histogram
	final        *Stats

	// ctl is the adaptive overload controller, nil unless
	// Config.Control.Enabled. Started after the engines exist, stopped
	// before the capture path tears down.
	ctl *ctlplane.Controller

	// scope holds the sampled per-stream lifecycle journals (nil when
	// Config.Streams.Disabled); each engine writes only its own core's
	// pool. hist is the periodic metrics-history ring (nil when
	// Config.History.Disabled), started with capture and stopped at Close.
	scope *streamscope.Scope
	hist  *metrics.History

	onCreate Handler
	onData   Handler
	onClose  Handler
	// apps, when non-empty, replace the socket-level callbacks (§5.6
	// multi-application sharing).
	apps []*App

	capture *captureState
}

// Create opens a capture socket.
func Create(cfg Config) (*Handle, error) {
	if cfg.MemorySize <= 0 {
		cfg.MemorySize = 1 << 30
	}
	if cfg.Queues <= 0 {
		cfg.Queues = runtime.GOMAXPROCS(0)
	}
	h := &Handle{
		cfg:     cfg,
		workers: cfg.Queues,
		prios:   1,
		engCfg: core.Config{
			Cutoff:        CutoffUnlimited,
			Mode:          cfg.ReassemblyMode,
			DefaultPolicy: cfg.DefaultPolicy,
			NeedPkts:      cfg.NeedPkts,
			UseFDIR:       cfg.UseFDIR,
			Sketch:        cfg.Sketch,
		},
	}
	h.reg = metrics.NewRegistry(cfg.Queues)
	h.em = core.NewMetrics(h.reg)
	h.workerBatchH = h.reg.NewHistogram(metrics.Desc{
		Name: "worker_batch_size",
		Help: "events a worker drained from a ring per wakeup",
		Unit: "events",
	}, 7)
	h.stageWorkerH = h.reg.NewHistogram(metrics.Desc{
		Name: "stage_ring_worker_ns",
		Help: "latency from event-ring publish to worker dispatch",
		Unit: "ns",
	}, 38)
	h.callbackH = h.reg.NewHistogram(metrics.Desc{
		Name: "callback_ns",
		Help: "application callback duration",
		Unit: "ns",
	}, 38)
	if !cfg.Streams.Disabled {
		nowFn := metrics.Nanotime
		h.scope = streamscope.New(streamscope.Options{
			Cores:           cfg.Queues,
			JournalsPerCore: cfg.Streams.JournalsPerCore,
			SampleEvery:     cfg.Streams.SampleEvery,
			Now:             &nowFn,
		})
		scope := h.scope
		h.reg.NewCounterFunc(metrics.Desc{
			Name: "streams_sampled_total",
			Help: "streams picked for a lifecycle journal by the sampler",
			Unit: "streams",
		}, scope.Sampled)
		h.reg.NewCounterFunc(metrics.Desc{
			Name: "streams_anomaly_total",
			Help: "journaled streams promoted or flagged by an anomaly",
			Unit: "streams",
		}, scope.Anomalies)
		h.reg.NewGaugeFunc(metrics.Desc{
			Name: "streamscope_sample_every",
			Help: "current journal sampling stride (1 = every new stream)",
			Unit: "streams",
		}, func() int64 { return int64(scope.SampleEvery()) })
	}
	if !cfg.History.Disabled {
		h.hist = metrics.NewHistory(h.reg, cfg.History.Interval, cfg.History.Depth)
	}
	return h, nil
}

// SetFilter applies a BPF-style filter expression; streams not matching it
// are discarded inside the capture core (scap_set_filter).
func (h *Handle) SetFilter(expr string) error {
	if h.started {
		return ErrStarted
	}
	f, err := bpf.Parse(expr)
	if err != nil {
		return err
	}
	h.engCfg.Filter = f
	return nil
}

// SetCutoff sets the default per-stream cutoff in bytes; 0 discards all
// stream data (statistics only) and CutoffUnlimited disables the cutoff
// (scap_set_cutoff).
func (h *Handle) SetCutoff(cutoff int64) error {
	if h.started {
		return ErrStarted
	}
	h.engCfg.Cutoff = cutoff
	return nil
}

// Direction selects a traffic direction for AddCutoffDirection.
type Direction uint8

// Stream directions relative to the connection initiator.
const (
	DirClient Direction = 0
	DirServer Direction = 1
)

// String names the direction ("client" or "server") for logs and errors.
func (d Direction) String() string {
	if d == DirClient {
		return "client"
	}
	return "server"
}

// AddCutoffDirection sets a different cutoff for one direction
// (scap_add_cutoff_direction).
func (h *Handle) AddCutoffDirection(cutoff int64, dir Direction) error {
	if h.started {
		return ErrStarted
	}
	switch dir {
	case DirClient:
		h.engCfg.CutoffClient, h.engCfg.CutoffClientSet = cutoff, true
	case DirServer:
		h.engCfg.CutoffServer, h.engCfg.CutoffServerSet = cutoff, true
	default:
		return fmt.Errorf("scap: bad direction %d", dir)
	}
	return nil
}

// AddCutoffClass sets a cutoff for the subset of traffic matching a filter
// expression (scap_add_cutoff_class). Classes are evaluated in the order
// added; the first match wins.
func (h *Handle) AddCutoffClass(cutoff int64, expr string) error {
	if h.started {
		return ErrStarted
	}
	f, err := bpf.Parse(expr)
	if err != nil {
		return err
	}
	h.engCfg.CutoffClasses = append(h.engCfg.CutoffClasses, core.CutoffClass{Filter: f, Cutoff: cutoff})
	return nil
}

// AddPriorityClass assigns an initial PPL priority to streams matching a
// filter expression, resolved in the capture core at stream creation —
// guaranteeing protection from the first payload byte, unlike a
// creation-callback SetPriority, which is applied asynchronously.
func (h *Handle) AddPriorityClass(priority int, expr string) error {
	if h.started {
		return ErrStarted
	}
	if priority < 0 {
		return fmt.Errorf("scap: bad priority %d", priority)
	}
	f, err := bpf.Parse(expr)
	if err != nil {
		return err
	}
	h.engCfg.PriorityClasses = append(h.engCfg.PriorityClasses, core.PriorityClass{Filter: f, Priority: priority})
	return nil
}

// AddPolicyRule assigns a target-based reassembly policy to destinations
// within a CIDR prefix (Snort-style target-based reassembly).
func (h *Handle) AddPolicyRule(prefix string, policy OverlapPolicy) error {
	if h.started {
		return ErrStarted
	}
	p, err := parsePrefix(prefix)
	if err != nil {
		return err
	}
	h.engCfg.PolicyRules = append(h.engCfg.PolicyRules, core.PolicyRule{Prefix: p, Policy: policy})
	return nil
}

// SetWorkerThreads sets how many worker goroutines process stream events
// (scap_set_worker_threads). Default: one per queue.
func (h *Handle) SetWorkerThreads(n int) error {
	if h.started {
		return ErrStarted
	}
	if n <= 0 {
		return fmt.Errorf("scap: bad worker count %d", n)
	}
	h.workers = n
	return nil
}

// SetParameter changes a socket default (scap_set_parameter).
func (h *Handle) SetParameter(p Parameter, value int64) error {
	if h.started {
		return ErrStarted
	}
	switch p {
	case ParamInactivityTimeout:
		h.engCfg.InactivityTimeout = value
	case ParamChunkSize:
		h.engCfg.ChunkSize = int(value)
	case ParamOverlapSize:
		h.engCfg.OverlapSize = int(value)
	case ParamFlushTimeout:
		h.engCfg.FlushTimeout = value
	case ParamBaseThreshold:
		if value <= 0 || value > 1000 {
			return fmt.Errorf("scap: base threshold %d out of (0,1000]", value)
		}
		h.basePerMille = value
	case ParamOverloadCutoff:
		h.overload = value
	case ParamPriorities:
		if value < 1 {
			return fmt.Errorf("scap: priorities %d < 1", value)
		}
		h.prios = int(value)
	default:
		return fmt.Errorf("scap: unknown parameter %d", p)
	}
	return nil
}

// DispatchCreation registers the stream-creation callback
// (scap_dispatch_creation).
func (h *Handle) DispatchCreation(fn Handler) { h.onCreate = fn }

// DispatchData registers the stream-data callback (scap_dispatch_data).
func (h *Handle) DispatchData(fn Handler) { h.onData = fn }

// DispatchTermination registers the stream-termination callback
// (scap_dispatch_termination).
func (h *Handle) DispatchTermination(fn Handler) { h.onClose = fn }

// StartCapture builds the kernel path and worker threads and begins
// processing (scap_start_capture). Frames are then fed with ReplayPcap,
// ReplaySource, or InjectFrame.
func (h *Handle) StartCapture() error {
	if h.closed {
		return ErrClosed
	}
	if h.started {
		return ErrStarted
	}
	if err := h.resolveApps(); err != nil {
		return err
	}
	h.engCfg.Priorities = h.prios
	base := 0.0
	if h.basePerMille > 0 {
		base = float64(h.basePerMille) / 1000
	}
	h.mm = mem.New(mem.Config{
		Size:           h.cfg.MemorySize,
		BaseThreshold:  base,
		Priorities:     h.prios,
		OverloadCutoff: h.overload,
		BlockSize:      h.engCfg.ArenaBlockSize(),
		Cores:          h.cfg.Queues,
	})
	backend, err := h.newBackend()
	if err != nil {
		h.mm.Close()
		h.mm = nil
		return err
	}
	h.backend = backend
	if sim, ok := backend.(*nic.Sim); ok {
		h.sim = sim
	}
	h.mm.PublishMetrics(h.reg)
	h.backend.PublishMetrics(h.reg)
	rng := rand.New(rand.NewSource(rand.Int63()))
	for q := 0; q < h.cfg.Queues; q++ {
		eq := event.NewQueue(0)
		h.queues = append(h.queues, eq)
		h.engines = append(h.engines, core.NewEngine(core.Options{
			Config:  h.engCfg,
			Mem:     h.mm,
			NIC:     h.backend,
			Queue:   eq,
			CoreID:  q,
			Rand:    rng,
			Metrics: h.em,
			Scope:   h.scope,
		}))
	}
	h.capture = newCaptureState(h)
	h.capture.start()
	// Open after the kernel goroutines are consuming: a fast source can
	// start delivering immediately and the batch channels bound the
	// run-ahead either way.
	if err := h.backend.Open(); err != nil {
		h.capture.stop()
		h.mm.Close()
		h.backend, h.sim, h.capture = nil, nil, nil
		h.engines, h.queues = nil, nil
		h.mm = nil
		return err
	}
	h.startControl()
	if h.hist != nil {
		// Started only on the success path: Stop (in Close) waits on the
		// sampling goroutine, which must therefore exist by then.
		h.hist.Start()
	}
	h.started = true
	return nil
}

// newBackend builds the capture transport Config.Backend selects, sized
// to the socket's queue count.
func (h *Handle) newBackend() (nic.Backend, error) {
	b := h.cfg.Backend
	switch {
	case b.PcapPath != "" && b.Iface != "":
		return nil, fmt.Errorf("scap: Backend.PcapPath and Backend.Iface are mutually exclusive")
	case b.PcapPath != "":
		return nic.NewPcapReplay(nic.PcapReplayConfig{
			Path:      b.PcapPath,
			Queues:    h.cfg.Queues,
			RingBytes: b.RingBytes,
			Snaplen:   b.Snaplen,
			Passes:    b.PcapPasses,
		}), nil
	case b.Iface != "":
		return nic.NewAFPacket(nic.AFPacketConfig{
			Iface:      b.Iface,
			Queues:     h.cfg.Queues,
			BlockBytes: b.BlockBytes,
			Blocks:     b.Blocks,
			Snaplen:    b.Snaplen,
			FanoutID:   b.FanoutID,
		})
	default:
		// Strict mode normalizes IP fragmentation before RSS steering, so
		// a flow's fragments and whole packets land on the same core;
		// dynamic balancing redirects streams away from overloaded queues
		// (§2.4).
		return nic.NewSim(nic.Config{
			Queues:         h.cfg.Queues,
			Defragment:     h.engCfg.Mode == reassembly.ModeStrict,
			DynamicBalance: true,
		}), nil
	}
}

// WaitBackend blocks until the capture backend has stopped delivering:
// for the pcap replay backend that is end-of-file (all passes), and the
// error it returns is any trace decode failure the reader hit. For the
// simulated and AF_PACKET backends delivery only stops at Close, so
// WaitBackend blocks until then.
func (h *Handle) WaitBackend() error {
	if !h.started {
		return ErrNotStarted
	}
	backend := h.backend
	<-backend.Done()
	if pr, ok := backend.(*nic.PcapReplay); ok {
		return pr.Err()
	}
	return nil
}

// Close flushes all streams, delivers final events, stops the workers, and
// releases the socket (scap_close). It is safe to call once. The final
// statistics are frozen just after the capture path stops, so GetStats
// keeps returning them after Close (see GetStats for the post-Close
// contract).
func (h *Handle) Close() error {
	if h.closed {
		return ErrClosed
	}
	h.closed = true
	if !h.started {
		return nil
	}
	if h.ctl != nil {
		// Stop the controller first so no actuation races teardown.
		h.ctl.Stop()
	}
	if h.hist != nil {
		h.hist.Stop()
	}
	h.capture.stop()
	h.mm.Close()
	st := h.statsFromRegistry()
	h.final = &st
	h.started = false
	return nil
}
