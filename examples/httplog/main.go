// Httplog: an application-layer monitor — the class of tool the paper's
// introduction motivates ("applications increasingly need to reason about
// higher-level entities ... HTTP headers"). Reassembled stream chunks from
// the Scap socket feed a streaming HTTP/1.x parser whose state survives
// chunk boundaries; requests are joined with their responses and logged
// access-log style. A 64 KB per-direction cutoff keeps the capture cheap:
// HTTP heads live in the first bytes of each stream.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"sort"
	"strings"
	"sync"

	"scap"
	"scap/internal/httpx"
	"scap/internal/pkt"
	"scap/internal/trace"
)

func main() {
	h, err := scap.Create(scap.Config{ReassemblyMode: scap.TCPFast, Queues: 2})
	if err != nil {
		log.Fatal(err)
	}
	if err := h.SetFilter("tcp port 80"); err != nil {
		log.Fatal(err)
	}
	if err := h.SetCutoff(64 << 10); err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	parsers := map[uint64]*httpx.Parser{}
	type txn struct{ method, target string }
	type resp struct {
		status int
		length int64
	}
	// Pairing is keyed by the connection (canonical flow key): both
	// directions of a conversation share it regardless of delivery order.
	pendingReq := map[scap.FlowKey][]txn{}
	pendingResp := map[scap.FlowKey][]resp{}
	methods := map[string]int{}
	statuses := map[int]int{}
	logged := 0
	emit := func(q txn, r resp) {
		if logged < 12 {
			fmt.Printf("  %-6s %-30s -> %d (len %d)\n", q.method, q.target, r.status, r.length)
		}
		logged++
	}

	h.DispatchData(func(sd *scap.Stream) {
		mu.Lock()
		defer mu.Unlock()
		p := parsers[sd.ID()]
		if p == nil {
			p = &httpx.Parser{}
			parsers[sd.ID()] = p
		}
		conn, _ := sd.Key().Canonical()
		p.Feed(sd.Data, func(m *httpx.Message) bool {
			switch m.Kind {
			case httpx.Request:
				methods[m.Method]++
				// Either pair with an already-seen response from the
				// opposite direction (chunk delivery order is not
				// guaranteed across directions) or queue the request.
				if rs := pendingResp[conn]; len(rs) > 0 {
					emit(txn{m.Method, m.Target}, rs[0])
					pendingResp[conn] = rs[1:]
				} else {
					pendingReq[conn] = append(pendingReq[conn], txn{m.Method, m.Target})
				}
			case httpx.Response:
				statuses[m.StatusCode]++
				if q := pendingReq[conn]; len(q) > 0 {
					emit(q[0], resp{m.StatusCode, m.ContentLength})
					pendingReq[conn] = q[1:]
				} else {
					pendingResp[conn] = append(pendingResp[conn], resp{m.StatusCode, m.ContentLength})
				}
			}
			return true
		})
		if sd.Last {
			delete(parsers, sd.ID())
		}
	})

	if err := h.StartCapture(); err != nil {
		log.Fatal(err)
	}
	// Synthesize proper HTTP conversations: each connection carries a
	// request in the client direction and a matching response in the
	// server direction, interleaved with generator background noise.
	if err := h.ReplaySource(&trace.SliceSource{Frames: buildConversations(300)}, 1e9); err != nil {
		log.Fatal(err)
	}
	h.Close()

	mu.Lock()
	defer mu.Unlock()
	fmt.Println("\nrequest methods:")
	for _, m := range sortedKeys(methods) {
		fmt.Printf("  %-8s %d\n", m, methods[m])
	}
	fmt.Println("response statuses:")
	for code, n := range statuses {
		fmt.Printf("  %d      %d\n", code, n)
	}
	fmt.Printf("paired transactions logged: %d\n", logged)
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// buildConversations synthesizes n complete HTTP/1.1 transactions, each on
// its own TCP connection: handshake, request, response, teardown.
func buildConversations(n int) [][]byte {
	requests := []string{
		"GET /index.html HTTP/1.1\r\nHost: a.example\r\nUser-Agent: demo\r\n\r\n",
		"GET /static/logo.png HTTP/1.1\r\nHost: a.example\r\n\r\n",
		"POST /api/v1/items HTTP/1.1\r\nHost: b.example\r\nContent-Length: 11\r\n\r\nhello=world",
		"DELETE /api/v1/items/7 HTTP/1.1\r\nHost: b.example\r\n\r\n",
	}
	responses := []string{
		"HTTP/1.1 200 OK\r\nContent-Length: 120\r\nContent-Type: text/html\r\n\r\n" + strings.Repeat("x", 120),
		"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n",
		"HTTP/1.1 301 Moved Permanently\r\nLocation: /new\r\nContent-Length: 0\r\n\r\n",
	}
	var frames [][]byte
	for i := 0; i < n; i++ {
		key := pkt.FlowKey{
			SrcIP:   netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 5}),
			DstIP:   netip.AddrFrom4([4]byte{203, 0, 113, byte(1 + i%200)}),
			SrcPort: uint16(20000 + i),
			DstPort: 80,
			Proto:   pkt.ProtoTCP,
		}
		req := []byte(requests[i%len(requests)])
		resp := []byte(responses[i%len(responses)])
		cseq, sseq := uint32(1000), uint32(9000)
		add := func(f []byte) { frames = append(frames, f) }
		add(pkt.BuildTCP(pkt.TCPSpec{Key: key, Seq: cseq, Flags: pkt.FlagSYN}))
		cseq++
		add(pkt.BuildTCP(pkt.TCPSpec{Key: key.Reverse(), Seq: sseq, Ack: cseq, Flags: pkt.FlagSYN | pkt.FlagACK}))
		sseq++
		add(pkt.BuildTCP(pkt.TCPSpec{Key: key, Seq: cseq, Ack: sseq, Flags: pkt.FlagACK | pkt.FlagPSH, Payload: req}))
		cseq += uint32(len(req))
		add(pkt.BuildTCP(pkt.TCPSpec{Key: key.Reverse(), Seq: sseq, Ack: cseq, Flags: pkt.FlagACK | pkt.FlagPSH, Payload: resp}))
		sseq += uint32(len(resp))
		add(pkt.BuildTCP(pkt.TCPSpec{Key: key, Seq: cseq, Ack: sseq, Flags: pkt.FlagFIN | pkt.FlagACK}))
		cseq++
		add(pkt.BuildTCP(pkt.TCPSpec{Key: key.Reverse(), Seq: sseq, Ack: cseq, Flags: pkt.FlagFIN | pkt.FlagACK}))
	}
	return frames
}
