// Package streamscope keeps sampled per-stream lifecycle journals: a small,
// fixed pool of alloc-free event rings, one per journaled stream, recording
// the stream's life (created → first payload → chunk flushes with latencies →
// gaps/overlaps → cutoff/expiry cause) via the same seqlock-slot discipline
// as the flight recorder.
//
// Two populations land in the pool:
//
//   - Sampled streams: every Nth new stream, chosen by the top bits of the
//     flow hash the engine already computed (so the choice is deterministic
//     per 5-tuple and free on the hot path). The rate adapts under PPL
//     pressure — Adapt doubles the sampling stride while the arena is above
//     the watermark and halves it back afterwards — following Braun et al.'s
//     load-adaptive flow sampling.
//   - Anomalous streams: a stream that hits a cutoff clamp, arena-exhausted
//     fallback, reassembly gap/overlap, PPL payload drop, or FDIR install is
//     promoted into the pool at the moment of the anomaly regardless of the
//     sampling decision, so the interesting tail is never sampled away.
//
// The writer side is engine-only: a journal belongs to the engine goroutine
// that owns its stream (streams never migrate cores), so there is exactly one
// writer per journal and the write path is a claim plus a handful of atomic
// stores — no locks, no allocation. Readers (/debug/streams) reconstruct
// journals best-effort under the generation/sequence protocol and lose at
// most records that were being overwritten while read.
package streamscope

import (
	"net/netip"
	"sync/atomic"

	"scap/internal/pkt"
)

// EventKind discriminates journal events.
type EventKind uint8

// Journal event kinds, in rough lifecycle order.
const (
	EvCreated       EventKind = iota // stream created; A = priority, B = cutoff bytes
	EvFirstPayload                   // first payload byte admitted; A = payload len
	EvChunkFlush                     // chunk delivered; A = chunk bytes, B = chunk age (ns)
	EvGap                            // reassembly hole: chunk flushed around missing data; A = chunk bytes
	EvOverlap                        // overlapping segment resolved; A = old-wins total, B = new-wins total
	EvPPLDrop                        // payload dropped by the priority ladder; A = payload len, B = priority
	EvCutoff                         // cutoff clamp hit; A = captured bytes, B = stream bytes
	EvArenaFallback                  // arena exhausted, chunk fell back to heap; A = requested bytes
	EvFDIRInstall                    // hardware drop filter installed; A = filter ID
	EvClose                          // stream closed/expired; A = close status, B = captured bytes
)

var eventKindNames = [...]string{
	EvCreated:       "created",
	EvFirstPayload:  "first_payload",
	EvChunkFlush:    "chunk_flush",
	EvGap:           "gap",
	EvOverlap:       "overlap",
	EvPPLDrop:       "ppl_drop",
	EvCutoff:        "cutoff",
	EvArenaFallback: "arena_fallback",
	EvFDIRInstall:   "fdir_install",
	EvClose:         "close",
}

// String returns the kind's wire name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// Anomaly bits. A journal's anom word records which anomaly classes the
// stream hit; any nonzero value marks the journal as anomalous (pinned into
// top-offender views and counted by the anomaly gauge).
const (
	AnomCutoff        = 1 << iota // cutoff clamp fired
	AnomArenaFallback             // chunk allocation fell back to the heap
	AnomGap                       // reassembly hole flushed around
	AnomOverlap                   // overlapping segment resolved
	AnomPPLDrop                   // payload dropped under PPL pressure
	AnomFDIR                      // hardware drop filter installed
)

var anomalyNames = []string{"cutoff", "arena_fallback", "gap", "overlap", "ppl_drop", "fdir_install"}

// AnomalyNames expands an anomaly bitmask into wire names.
func AnomalyNames(mask uint64) []string {
	var out []string
	for i, n := range anomalyNames {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, n)
		}
	}
	return out
}

// slotsPerJournal is each journal's event capacity (power of two). A stream's
// early life (created, first payload) stays resident because slots 0..1 are
// written once; later events wrap within the remaining ring.
const slotsPerJournal = 32

// slot is one journal event's storage, a seqlock in miniature exactly like
// the flight recorder's: seq doubles as the publication flag.
//
//scap:atomics
type slot struct {
	seq  atomic.Uint64 // per-journal event sequence (1-based); 0 = empty or mid-write
	ts   atomic.Int64  // capture-clock timestamp (virtual ns)
	kind atomic.Uint64
	a    atomic.Int64
	b    atomic.Int64
}

// Journal is one stream's event ring plus its identity. Identity fields are
// guarded by gen (a journal-level seqlock): Acquire bumps gen to an odd value,
// rewrites identity, then publishes the next even value. The engine keeps the
// even gen it observed at bind time and drops writes if the journal was
// rebound to a newer stream meanwhile — exact, not best-effort, because the
// pool is per-core and rebinding happens on the same goroutine that writes.
//
//scap:atomics
type Journal struct {
	gen  atomic.Uint64 // even = stable, odd = identity rewrite in progress
	id   atomic.Uint64 // stream ID
	meta atomic.Uint64 // packed ports/proto/dir/v4/priority, see packMeta
	// Flow endpoints as the big-endian halves of the 16-byte addresses
	// (IPv4 mapped), split so every field stays a plain atomic word.
	srcHi, srcLo atomic.Uint64
	dstHi, dstLo atomic.Uint64
	created      atomic.Int64  // stream creation timestamp (virtual ns)
	anom         atomic.Uint64 // anomaly bitmask; nonzero pins the journal
	sampled      atomic.Uint64 // 1 = picked by the sampler, 0 = anomaly promotion
	next         atomic.Uint64 // events ever claimed on this journal
	slots        [slotsPerJournal]slot
}

// Gen returns the journal's current identity generation (even when stable).
func (j *Journal) Gen() uint64 { return j.gen.Load() }

// Anomalous reports whether the journal's stream has hit any anomaly.
func (j *Journal) Anomalous() bool { return j.anom.Load() != 0 }

// Note records one event: a claim plus a handful of atomic stores on a
// pre-claimed slot. Caller must be the journal's owning engine goroutine.
//
//scap:hotpath
func (j *Journal) Note(kind EventKind, ts int64, a, b int64) {
	n := j.next.Add(1) // 1-based sequence; slot index is (n-1) & mask
	s := &j.slots[(n-1)&(slotsPerJournal-1)]
	s.seq.Store(0)
	s.ts.Store(ts)
	s.kind.Store(uint64(kind))
	s.a.Store(a)
	s.b.Store(b)
	s.seq.Store(n)
}

// NoteAnomaly sets an anomaly bit and records the matching event. The
// load-or-store is race-free because the owning engine is the only writer.
//
//scap:hotpath
func (j *Journal) NoteAnomaly(bit uint64, kind EventKind, ts int64, a, b int64) {
	if cur := j.anom.Load(); cur&bit == 0 {
		j.anom.Store(cur | bit)
	}
	j.Note(kind, ts, a, b)
}

// Binding is the stream identity Acquire stamps into a journal.
type Binding struct {
	ID       uint64
	Key      pkt.FlowKey
	Dir      uint8
	Priority int
	Created  int64 // virtual ns
	Sampled  bool  // false = anomaly promotion
}

// packMeta packs the non-address identity into one word:
// ports in the top 32 bits, then proto, then dir/v4 flag bits, then the
// priority in the low 16 (offset by 1 so negative/zero are distinguishable).
func packMeta(b Binding, v4 bool) uint64 {
	m := uint64(b.Key.SrcPort)<<48 | uint64(b.Key.DstPort)<<32 | uint64(b.Key.Proto)<<24
	if b.Dir != 0 {
		m |= 1 << 23
	}
	if v4 {
		m |= 1 << 22
	}
	p := b.Priority + 1
	if p < 0 {
		p = 0
	}
	if p > 0xffff {
		p = 0xffff
	}
	return m | uint64(p)
}

// pool is one core's journal ring. The cursor and counters sit alone on
// their cache line so claims never contend with neighbouring cores.
//
//scap:atomics
type pool struct {
	_         [64]byte
	cursor    atomic.Uint64 // journals ever acquired on this core
	sampled   atomic.Uint64 // acquired via the sampler
	anomalies atomic.Uint64 // journals promoted or flagged by an anomaly
	_         [64]byte
	journals  []Journal
}

// defaultJournalsPerCore is each core's pool size. At ~1.8 KiB a journal
// this is ~230 KiB per core — bounded and cheap enough to leave always on.
const defaultJournalsPerCore = 128

// Default sampling stride bounds: start at 1-in-64 new streams, back off to
// 1-in-4096 under sustained PPL pressure.
const (
	defaultBaseShift = 6
	defaultMaxShift  = 12
)

// Scope is the set of per-core journal pools plus the adaptive sampler.
// SampleNew/Acquire/Note*/Adapt are the engine-side paths; Snapshot/Dump are
// cold read paths for /debug/streams.
type Scope struct {
	pools     []pool
	mask      uint64        // journals-per-core - 1
	rateShift atomic.Uint32 // current stride: sample when top shift bits of hash are zero
	baseShift uint32
	maxShift  uint32
	now       *func() int64
}

// Options configures a Scope.
type Options struct {
	Cores           int
	JournalsPerCore int // power of two; 0 = default (128)
	SampleEvery     int // 1<<k stride floor; 0 = default (64), 1 = every stream
	Now             *func() int64
}

// New builds a Scope with one journal pool per core.
func New(o Options) *Scope {
	cores := o.Cores
	if cores < 1 {
		cores = 1
	}
	jpc := o.JournalsPerCore
	if jpc < 2 || jpc&(jpc-1) != 0 {
		jpc = defaultJournalsPerCore
	}
	base := uint32(defaultBaseShift)
	if o.SampleEvery > 0 {
		base = 0
		for 1<<base < o.SampleEvery && base < 63 {
			base++
		}
	}
	maxShift := uint32(defaultMaxShift)
	if maxShift < base {
		maxShift = base
	}
	now := o.Now
	if now == nil {
		var zero = func() int64 { return 0 }
		now = &zero
	}
	s := &Scope{
		pools:     make([]pool, cores),
		mask:      uint64(jpc - 1),
		baseShift: base,
		maxShift:  maxShift,
		now:       now,
	}
	for i := range s.pools {
		s.pools[i].journals = make([]Journal, jpc)
	}
	s.rateShift.Store(base)
	return s
}

// SampleEvery returns the current sampling stride (1 = every new stream).
func (s *Scope) SampleEvery() uint64 { return 1 << uint(s.rateShift.Load()) }

// SampleNew decides whether a new stream with flow hash h is journal-sampled.
// The top bits of the (already mixed) hash are compared against the stride,
// so the decision is one load, one shift, one compare on the hot path.
//
//scap:hotpath
func (s *Scope) SampleNew(h uint64) bool {
	shift := s.rateShift.Load()
	if shift == 0 {
		return true
	}
	return h>>(64-shift) == 0
}

// Adapt moves the sampling stride one step toward its pressure target:
// doubling while under PPL pressure, halving back toward the configured base
// otherwise. Called from the engine's timer tick, so steps are paced by the
// timer cadence rather than packet arrival.
func (s *Scope) Adapt(underPressure bool) {
	for {
		cur := s.rateShift.Load()
		next := cur
		if underPressure && cur < s.maxShift {
			next = cur + 1
		} else if !underPressure && cur > s.baseShift {
			next = cur - 1
		}
		if next == cur || s.rateShift.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Acquire binds the next journal slot on core's pool to a stream and returns
// the journal plus the even generation the engine must present on writes.
// The previous occupant's history is discarded (oldest-rebound-first), which
// keeps the pool bounded: anomalous journals are not immortal, merely pinned
// in read-side views while they survive.
//
// Not annotated //scap:hotpath: it runs once per *journaled* stream (1-in-N
// plus anomalies), but it is still alloc-free and lock-free by construction.
func (s *Scope) Acquire(core int, b Binding) (*Journal, uint64) {
	if core < 0 || core >= len(s.pools) {
		core = 0
	}
	p := &s.pools[core]
	n := p.cursor.Add(1)
	j := &p.journals[(n-1)&s.mask]

	j.gen.Add(1) // odd: identity rewrite in progress
	src, dst := b.Key.SrcIP.As16(), b.Key.DstIP.As16()
	j.id.Store(b.ID)
	j.meta.Store(packMeta(b, b.Key.SrcIP.Is4()))
	j.srcHi.Store(beUint64(src[:8]))
	j.srcLo.Store(beUint64(src[8:]))
	j.dstHi.Store(beUint64(dst[:8]))
	j.dstLo.Store(beUint64(dst[8:]))
	j.created.Store(b.Created)
	j.anom.Store(0)
	if b.Sampled {
		j.sampled.Store(1)
		p.sampled.Add(1)
	} else {
		j.sampled.Store(0)
	}
	j.next.Store(0)
	for i := range j.slots {
		j.slots[i].seq.Store(0)
	}
	gen := j.gen.Add(1) // even: published
	return j, gen
}

// CountAnomaly bumps core's promoted/flagged-journal counter. The engine
// calls it on a journal's first anomaly (anom 0 → nonzero transition).
//
//scap:hotpath
func (s *Scope) CountAnomaly(core int) {
	if core < 0 || core >= len(s.pools) {
		core = 0
	}
	s.pools[core].anomalies.Add(1)
}

// beUint64 reads 8 bytes big-endian. Local so the hot-path packages don't
// grow an encoding/binary dependency in their call graph.
func beUint64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

func putBeUint64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

// Sampled returns how many journals were acquired via the sampler, and
// Anomalies how many journals were promoted or flagged by an anomaly,
// across all cores (including journals since rebound).
func (s *Scope) Sampled() uint64 {
	var t uint64
	for i := range s.pools {
		t += s.pools[i].sampled.Load()
	}
	return t
}

// Anomalies returns the total anomaly-flagged journal count across cores.
func (s *Scope) Anomalies() uint64 {
	var t uint64
	for i := range s.pools {
		t += s.pools[i].anomalies.Load()
	}
	return t
}

// JournalEvent is one decoded journal event.
type JournalEvent struct {
	Seq          uint64    `json:"seq"`
	TimeUnixNano int64     `json:"time_unix_nano"`
	Kind         EventKind `json:"kind"`
	KindName     string    `json:"kind_name"`
	A            int64     `json:"a"`
	B            int64     `json:"b,omitempty"`
}

// JournalSnap is one decoded journal: stream identity plus its event ring,
// oldest event first.
type JournalSnap struct {
	Core        int            `json:"core"`
	Index       int            `json:"index"`
	StreamID    uint64         `json:"stream_id"`
	Key         string         `json:"key"`
	Dir         uint8          `json:"dir"`
	Priority    int            `json:"priority"`
	CreatedNano int64          `json:"created_unix_nano"`
	Sampled     bool           `json:"sampled"`
	Anomalies   []string       `json:"anomalies,omitempty"`
	AnomalyMask uint64         `json:"anomaly_mask,omitempty"`
	TotalEvents uint64         `json:"total_events"`
	Events      []JournalEvent `json:"events"`
}

// snapJournal decodes one journal under the generation protocol: the identity
// is accepted only when gen reads the same even value before and after, and
// each event slot only when its seq is stable. Returns ok=false for empty
// journals or journals mid-rebind.
func snapJournal(j *Journal, core, idx int) (JournalSnap, bool) {
	for attempt := 0; attempt < 3; attempt++ {
		g := j.gen.Load()
		if g == 0 || g&1 == 1 {
			return JournalSnap{}, false
		}
		js := JournalSnap{
			Core:        core,
			Index:       idx,
			StreamID:    j.id.Load(),
			CreatedNano: j.created.Load(),
			Sampled:     j.sampled.Load() == 1,
			AnomalyMask: j.anom.Load(),
			TotalEvents: j.next.Load(),
		}
		meta := j.meta.Load()
		var src, dst [16]byte
		putBeUint64(src[:8], j.srcHi.Load())
		putBeUint64(src[8:], j.srcLo.Load())
		putBeUint64(dst[:8], j.dstHi.Load())
		putBeUint64(dst[8:], j.dstLo.Load())
		if j.gen.Load() != g {
			continue
		}
		key := unpackKey(meta, src, dst)
		js.Key = key.String()
		js.Dir = uint8(meta >> 23 & 1)
		js.Priority = int(meta&0xffff) - 1
		js.Anomalies = AnomalyNames(js.AnomalyMask)

		for i := range j.slots {
			sl := &j.slots[i]
			for sa := 0; sa < 3; sa++ {
				n := sl.seq.Load()
				if n == 0 {
					break
				}
				ev := JournalEvent{
					Seq:          n,
					TimeUnixNano: sl.ts.Load(),
					Kind:         EventKind(sl.kind.Load()),
					A:            sl.a.Load(),
					B:            sl.b.Load(),
				}
				if sl.seq.Load() != n {
					continue
				}
				ev.KindName = ev.Kind.String()
				js.Events = append(js.Events, ev)
				break
			}
		}
		if j.gen.Load() != g {
			continue
		}
		sortEvents(js.Events)
		return js, true
	}
	return JournalSnap{}, false
}

func unpackKey(meta uint64, src, dst [16]byte) pkt.FlowKey {
	var srcIP, dstIP netip.Addr
	if meta&(1<<22) != 0 {
		var s4, d4 [4]byte
		copy(s4[:], src[12:])
		copy(d4[:], dst[12:])
		srcIP, dstIP = netip.AddrFrom4(s4), netip.AddrFrom4(d4)
	} else {
		srcIP, dstIP = netip.AddrFrom16(src), netip.AddrFrom16(dst)
	}
	return pkt.FlowKey{
		SrcIP:   srcIP,
		DstIP:   dstIP,
		SrcPort: uint16(meta >> 48),
		DstPort: uint16(meta >> 32),
		Proto:   uint8(meta >> 24),
	}
}

func sortEvents(evs []JournalEvent) {
	// Events are nearly ordered already (ring order); a small insertion sort
	// restores sequence order without pulling in package sort.
	for i := 1; i < len(evs); i++ {
		for k := i; k > 0 && evs[k-1].Seq > evs[k].Seq; k-- {
			evs[k-1], evs[k] = evs[k], evs[k-1]
		}
	}
}

// Snapshot decodes every bound journal, anomalous journals first, then by
// creation time. Journals mid-rebind are skipped.
func (s *Scope) Snapshot() []JournalSnap {
	var out []JournalSnap
	for core := range s.pools {
		p := &s.pools[core]
		for i := range p.journals {
			if js, ok := snapJournal(&p.journals[i], core, i); ok {
				out = append(out, js)
			}
		}
	}
	sortSnaps(out)
	return out
}

func sortSnaps(out []JournalSnap) {
	less := func(a, b JournalSnap) bool {
		aa, ba := a.AnomalyMask != 0, b.AnomalyMask != 0
		if aa != ba {
			return aa
		}
		if a.CreatedNano != b.CreatedNano {
			return a.CreatedNano < b.CreatedNano
		}
		if a.Core != b.Core {
			return a.Core < b.Core
		}
		return a.Index < b.Index
	}
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && less(out[k], out[k-1]); k-- {
			out[k-1], out[k] = out[k], out[k-1]
		}
	}
}

// Dump is the /debug/streams JSON wire format.
type Dump struct {
	TimeUnixNano    int64         `json:"time_unix_nano"`
	Cores           int           `json:"cores"`
	JournalsPerCore int           `json:"journals_per_core"`
	SampleEvery     uint64        `json:"sample_every"`
	Sampled         uint64        `json:"sampled_total"`
	Anomalies       uint64        `json:"anomaly_total"`
	Journals        []JournalSnap `json:"journals"`
}

// DumpState packages a snapshot for serving.
func (s *Scope) DumpState() Dump {
	return Dump{
		TimeUnixNano:    (*s.now)(),
		Cores:           len(s.pools),
		JournalsPerCore: int(s.mask + 1),
		SampleEvery:     s.SampleEvery(),
		Sampled:         s.Sampled(),
		Anomalies:       s.Anomalies(),
		Journals:        s.Snapshot(),
	}
}
