package scap

import (
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"
	"sync"
	"time"

	"scap/internal/core"
	"scap/internal/event"
	"scap/internal/mem"
	"scap/internal/metrics"
	"scap/internal/nic"
	"scap/internal/trace"
)

// captureState owns the running goroutines of a started socket: one kernel
// goroutine per backend queue and the configured number of worker
// goroutines — the user-space equivalent of the paper's per-core kernel
// thread plus worker thread pairs.
//
// Concurrency model: each engine is owned by its kernel goroutine (frames
// reach it only through its queue's backend Batches channel); workers
// touch streams only via the per-engine ctrl queue; injectors serialize
// on injectMu; everything else a foreign goroutine may read (engine
// counters, backend stats, memory accounting) is protected at its source.
type captureState struct {
	h *Handle

	mu sync.Mutex
	// stopped is guarded by mu, making stop idempotent.
	stopped  bool
	kernelWG sync.WaitGroup
	workerWG sync.WaitGroup

	injectMu sync.Mutex
	// lastTS is guarded by injectMu: concurrent injectors, the backend's
	// delivered batches, and the timer tick agree on a monotonic virtual
	// clock through it.
	lastTS    int64
	timerStop chan struct{}
}

// injectBatchSize is how many frames the replay paths accumulate before
// handing them to the kernel goroutines in one batch.
const injectBatchSize = 64

func newCaptureState(h *Handle) *captureState {
	return &captureState{h: h, timerStop: make(chan struct{})}
}

func (c *captureState) start() {
	h := c.h
	// Kernel goroutines: one per backend queue, each owning its engine.
	for q := 0; q < h.backend.Queues(); q++ {
		c.kernelWG.Add(1)
		go c.kernelLoop(q)
	}
	// Worker goroutines.
	for w := 0; w < h.workers; w++ {
		c.workerWG.Add(1)
		go c.workerLoop(w)
	}
}

// kernelLoop is one core's softirq-equivalent: it pulls frame batches for
// its queue from the capture backend and drives the engine, running timer
// work between batches. One runs per backend queue, and it is the sole
// goroutine driving that queue's Engine — the producer side of the
// engine's event ring and the consumer side of its arena free pool. After
// each batch it folds the last frame timestamp into the virtual clock, so
// source-driven backends (pcap replay, AF_PACKET) advance timer time the
// way the injection paths do on the simulated NIC.
//
//scap:goroutine engine
func (c *captureState) kernelLoop(q int) {
	defer c.kernelWG.Done()
	eng := c.h.engines[q]
	batches := c.h.backend.Batches(q)
	ticker := time.NewTicker(50 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case batch, ok := <-batches:
			if !ok {
				return
			}
			eng.HandleFrames(batch)
			if n := len(batch); n > 0 {
				c.noteTS(batch[n-1].TS)
			}
		case <-ticker.C:
			eng.CheckTimers(c.currentTS())
		}
	}
}

// workerBatch is how many events a worker drains from a ring per wakeup.
const workerBatch = 128

// workerState is one worker's scratch: per-stream bookkeeping, the reused
// Stream view handed to callbacks, and the batched memory-release
// accumulators. The worker goroutine owns it exclusively.
type workerState struct {
	procTime map[uint64]time.Duration
	// kept holds chunks the application asked to keep
	// (scap_keep_stream_chunk), keyed by stream ID: the merged bytes so far,
	// still charged to stream memory, backed by the retained arena block.
	kept map[uint64]keptChunk
	view Stream
	// pendingRelease accumulates delivered chunks' Accounted bytes; they
	// are returned to the memory manager in one Release per drained batch
	// (and before parking), not one per event.
	pendingRelease int
	// blocks accumulates consumed chunks' arena blocks, all owed to
	// blockCore's free pool; they ride the same batched flush. A worker
	// drains each queue's events in order, so the batch naturally groups by
	// core — switching queues flushes the previous core's batch.
	blocks    []mem.Handle
	blockCore int
}

// keptChunk is one kept chunk between deliveries: data is the merged bytes,
// a prefix view of blk's storage (blk is NoBlock once the merge outgrew the
// block and moved to the heap), acct the stream-memory charge the bytes
// carry, and core the engine that owns both the block and the charge.
type keptChunk struct {
	data []byte
	blk  mem.Handle
	acct int
	core int
}

// forget drops a terminated stream's worker-side bookkeeping, releasing any
// kept chunk's charge and block.
func (c *captureState) forget(ws *workerState, id uint64) {
	if len(ws.kept) > 0 {
		if k, ok := ws.kept[id]; ok {
			delete(ws.kept, id)
			ws.pendingRelease += k.acct
			c.returnBlock(ws, k.core, k.blk)
		}
	}
	if len(ws.procTime) > 0 {
		delete(ws.procTime, id)
	}
}

// flushReleases returns the accumulated chunk bytes to the memory budget
// and the accumulated blocks to their core's free pool.
func (c *captureState) flushReleases(ws *workerState) {
	if ws.pendingRelease > 0 {
		c.h.mm.Release(ws.pendingRelease)
		ws.pendingRelease = 0
	}
	if len(ws.blocks) > 0 {
		c.h.mm.ReturnBlocks(ws.blockCore, ws.blocks)
		ws.blocks = ws.blocks[:0]
	}
}

// returnBlock queues one consumed block for the batched return. This worker
// is the only goroutine draining core's event queue, so it is also the only
// producer of that core's SPSC return ring.
func (c *captureState) returnBlock(ws *workerState, core int, h mem.Handle) {
	if h == mem.NoBlock {
		return
	}
	if core != ws.blockCore && len(ws.blocks) > 0 {
		c.h.mm.ReturnBlocks(ws.blockCore, ws.blocks)
		ws.blocks = ws.blocks[:0]
	}
	ws.blockCore = core
	ws.blocks = append(ws.blocks, h)
}

// workerLoop drains the worker's event queues a batch at a time,
// dispatching callbacks (the Scap stub's event-dispatch loop, §5.8). It is
// the consumer side of its queues' event rings and the producer side of
// the corresponding cores' arena return rings.
//
//scap:goroutine worker
func (c *captureState) workerLoop(w int) {
	defer c.workerWG.Done()
	h := c.h
	ws := &workerState{
		procTime: make(map[uint64]time.Duration),
		kept:     make(map[uint64]keptChunk),
	}
	// The final flush covers events dispatched via Wait after the last
	// batch, so accounting reaches zero once the queues are drained.
	defer c.flushReleases(ws)
	// Kept chunks normally die with their stream's termination event; if
	// that event was lost to a full ring, settle the leftovers here so the
	// charge and the block still return to the pools.
	defer func() {
		for _, k := range ws.kept {
			ws.pendingRelease += k.acct
			c.returnBlock(ws, k.core, k.blk)
		}
		clear(ws.kept)
	}()
	var qs []*event.Queue
	var engs []*core.Engine
	for q := w; q < len(h.queues); q += h.workers {
		qs = append(qs, h.queues[q])
		engs = append(engs, h.engines[q])
	}
	if len(qs) == 0 {
		return
	}
	batch := make([]event.Event, workerBatch)
	live := len(qs)
	closed := make([]bool, len(qs))
	for live > 0 {
		progressed := false
		for i, q := range qs {
			if closed[i] {
				continue
			}
			n := q.PopBatch(batch)
			if n == 0 {
				continue
			}
			progressed = true
			h.workerBatchH.Observe(w, uint64(n))
			popNow := metrics.Nanotime()
			for j := range batch[:n] {
				ev := &batch[j]
				if ev.EnqueueNS > 0 && popNow >= ev.EnqueueNS {
					h.stageWorkerH.ObserveEx(engs[i].CoreID(), uint64(popNow-ev.EnqueueNS), ev.Info.ID)
				}
				c.dispatch(engs[i], ev, ws)
			}
			// Drop chunk references so delivered buffers are collectable,
			// then return their memory in one release.
			clear(batch[:n])
			c.flushReleases(ws)
		}
		if !progressed {
			// Block on the first open queue; others are polled again
			// after it yields (single-queue-per-worker is the common
			// configuration, where Wait alone drives the loop). The
			// queues are empty here, so flush the accounting before
			// parking.
			i := firstOpen(closed)
			if i < 0 {
				return
			}
			c.flushReleases(ws)
			ev, ok := qs[i].Wait()
			if !ok {
				closed[i] = true
				live--
				continue
			}
			if ev.EnqueueNS > 0 {
				if popNow := metrics.Nanotime(); popNow >= ev.EnqueueNS {
					h.stageWorkerH.ObserveEx(engs[i].CoreID(), uint64(popNow-ev.EnqueueNS), ev.Info.ID)
				}
			}
			c.dispatch(engs[i], &ev, ws)
		}
	}
}

func firstOpen(closed []bool) int {
	for i, c := range closed {
		if !c {
			return i
		}
	}
	return -1
}

// dispatch runs one event's callback with a Stream view. The view struct
// is reused across events (callbacks must not retain it past their
// return), and per-stream map work is skipped entirely when no callback is
// registered for the event. A kept chunk (scap_keep_stream_chunk) is
// retained by the worker — block, bytes, and budget charge — and the next
// data event is merged into the kept block's free room before the callback
// sees it, so the invocation receives the previous and the new data
// together without a fresh allocation.
func (c *captureState) dispatch(eng *core.Engine, ev *event.Event, ws *workerState) {
	h := c.h
	var fn Handler
	var kind appEventKind
	switch ev.Type {
	case event.Creation:
		fn, kind = h.onCreate, appEvCreation
	case event.Data:
		fn, kind = h.onData, appEvData
	case event.Termination:
		fn, kind = h.onClose, appEvTermination
	}
	// cur is the chunk this event presents and, afterwards, must dispose of:
	// the event's own chunk, or the kept chunk with the event's bytes merged
	// in.
	var cur keptChunk
	kept := false
	if ev.Type == event.Data {
		cur = keptChunk{data: ev.Data, blk: ev.Block, acct: ev.Accounted, core: eng.CoreID()}
		if len(ws.kept) > 0 {
			if prev, ok := ws.kept[ev.Info.ID]; ok {
				delete(ws.kept, ev.Info.ID)
				cur = c.mergeKept(ws, prev, ev)
			}
		}
	}
	if len(h.apps) > 0 || fn != nil {
		sd := &ws.view
		*sd = Stream{
			info:    ev.Info,
			handle:  h,
			engine:  eng,
			raw:     ev.Stream,
			procCum: ws.procTime[ev.Info.ID],
		}
		if ev.Type == event.Data {
			sd.Data = cur.data
			sd.HoleBefore = ev.HoleBefore
			sd.Last = ev.Last
			sd.pkts = ev.Pkts
		}
		start := time.Now()
		if len(h.apps) > 0 {
			h.dispatchApps(kind, sd)
		} else {
			fn(sd)
		}
		dur := time.Since(start)
		ws.procTime[ev.Info.ID] = sd.procCum + dur
		h.callbackH.ObserveEx(eng.CoreID(), uint64(dur), ev.Info.ID)
		kept = ev.Type == event.Data && sd.keep && !ev.Last
	}
	switch ev.Type {
	case event.Data:
		if kept {
			// The chunk stays charged to stream memory and its block stays
			// out of the free pool until the merged delivery is consumed.
			ws.kept[ev.Info.ID] = cur
		} else {
			if cur.acct > 0 {
				ws.pendingRelease += cur.acct
			}
			c.returnBlock(ws, cur.core, cur.blk)
			if ev.Last {
				c.forget(ws, ev.Info.ID)
			}
		}
	case event.Termination:
		c.forget(ws, ev.Info.ID)
	}
}

// mergeKept appends a data event's bytes onto the kept chunk in place: into
// the kept block's free room when they fit (blocks are sized with headroom
// above the chunk size for exactly this), spilling the merge onto the heap
// only when it outgrows the block. The event's own block is returned once
// its bytes are copied out; the combined charge rides the merged chunk.
func (c *captureState) mergeKept(ws *workerState, k keptChunk, ev *event.Event) keptChunk {
	if m := len(ev.Data); m > 0 {
		n := len(k.data)
		if k.blk != mem.NoBlock {
			if store := c.h.mm.BlockBytes(k.blk); n+m <= len(store) {
				k.data = store[:n+m]
				copy(k.data[n:], ev.Data)
			} else {
				grown := make([]byte, n+m)
				copy(grown, k.data)
				copy(grown[n:], ev.Data)
				c.returnBlock(ws, k.core, k.blk)
				k.blk = mem.NoBlock
				k.data = grown
			}
		} else {
			k.data = append(k.data, ev.Data...)
		}
	}
	k.acct += ev.Accounted
	c.returnBlock(ws, k.core, ev.Block)
	return k
}

func (c *captureState) currentTS() int64 {
	c.injectMu.Lock()
	defer c.injectMu.Unlock()
	return c.lastTS
}

// noteTS folds a backend-delivered timestamp into the virtual clock
// (max-update), so timer work keys off source time on every backend.
func (c *captureState) noteTS(ts int64) {
	c.injectMu.Lock()
	if ts > c.lastTS {
		c.lastTS = ts
	}
	c.injectMu.Unlock()
}

// inject routes one frame through the simulated NIC to its kernel
// goroutine — the single-frame veneer over injectBatch. The injector owns
// data: it goes to the NIC ring and the engine without copying. The
// one-element array stays on the stack (injectBatch does not retain its
// argument), so the fallback costs a batch fan-out but no allocation.
//
//scap:hotpath
func (c *captureState) inject(data []byte, ts int64) {
	var one [1]RawFrame
	one[0] = RawFrame{Data: data, TS: ts}
	c.injectBatch(one[:])
}

// injectBatch routes a burst of frames: the virtual-clock monotonicity
// fix-up runs once under injectMu for the whole burst (rewriting
// timestamps in place), then frames fan out through the simulated NIC
// into one per-queue batch each, delivered with a single Deliver per
// queue. Callers must only reach here when the backend is the sim (the
// public injection APIs gate on ErrNotInjectable).
func (c *captureState) injectBatch(frames []RawFrame) {
	if len(frames) == 0 {
		return
	}
	sim := c.h.sim
	c.injectMu.Lock()
	last := c.lastTS
	for i := range frames {
		if frames[i].TS <= last {
			frames[i].TS = last + 1
		}
		last = frames[i].TS
	}
	c.lastTS = last
	c.injectMu.Unlock()
	batches := make([][]nic.Frame, sim.Queues())
	// One capture-clock read stamps the whole burst: the ingest→engine
	// latency histogram needs batch granularity, not a syscall per frame.
	ingest := metrics.Nanotime()
	for i := range frames {
		q := sim.ReceiveAt(frames[i].Data, frames[i].TS, ingest)
		if q < 0 {
			continue
		}
		f, ok := sim.Poll(q)
		if !ok {
			continue
		}
		batches[q] = append(batches[q], f)
	}
	for q, b := range batches {
		if len(b) > 0 {
			sim.Deliver(q, b)
		}
	}
}

// stop flushes everything and joins the goroutines.
func (c *captureState) stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	c.mu.Unlock()

	// Closing the backend closes every Batches channel, so the kernel
	// goroutines drain whatever is buffered and exit.
	c.h.backend.Close()
	c.kernelWG.Wait()
	// Final flush: expire and terminate every stream, then close queues
	// so workers drain and exit.
	for _, eng := range c.h.engines {
		eng.Shutdown()
	}
	for _, q := range c.h.queues {
		q.Close()
	}
	c.workerWG.Wait()
	// Reap control messages the workers sent during the final drain
	// (cutoffs, discards, keeps aimed at streams that are gone): the
	// stale-message path releases anything they carried, so accounting and
	// the block pool both settle at zero.
	for _, eng := range c.h.engines {
		eng.DrainControls()
	}
}

// --- Frame input paths ---

// RawFrame is one frame for InjectBatch: raw Ethernet bytes plus a virtual
// timestamp in nanoseconds.
type RawFrame struct {
	Data []byte
	TS   int64
}

// InjectFrame feeds one raw Ethernet frame with a virtual timestamp
// (nanoseconds, strictly increasing per socket; non-increasing timestamps
// are bumped). Ownership of data transfers to the socket: the capture path
// holds the slice without copying until the frame has been processed, so
// the caller must not mutate it afterwards (handing out the same read-only
// backing repeatedly is fine). This is the lowest-level input path;
// ReplayPcap, ReplaySource, and InjectBatch are built on the same plumbing.
func (h *Handle) InjectFrame(data []byte, ts int64) error {
	if !h.started {
		return ErrNotStarted
	}
	if h.sim == nil {
		return ErrNotInjectable
	}
	h.capture.inject(data, ts)
	return nil
}

// InjectBatch feeds a burst of frames in one call: the virtual clock is
// fixed up under one lock acquisition (timestamps may be rewritten in
// place to stay strictly increasing) and each kernel goroutine receives
// its queue's frames as a single batch. As with InjectFrame, ownership of
// every Data slice transfers to the socket.
func (h *Handle) InjectBatch(frames []RawFrame) error {
	if !h.started {
		return ErrNotStarted
	}
	if h.sim == nil {
		return ErrNotInjectable
	}
	h.capture.injectBatch(frames)
	return nil
}

// ReplaySource feeds every frame from a workload source, pacing virtual
// timestamps at the given rate in bits/s (wall-clock runs as fast as the
// pipeline allows, like the paper's trace replay). It blocks until the
// source is exhausted. Frames are handed to the socket in batches without
// copying — Next relinquishes each returned slice per the trace.Source
// ownership contract.
func (h *Handle) ReplaySource(src trace.Source, bitsPerSec float64) error {
	if !h.started {
		return ErrNotStarted
	}
	if h.sim == nil {
		return ErrNotInjectable
	}
	batch := make([]RawFrame, 0, injectBatchSize)
	trace.Replay(src, bitsPerSec, func(frame []byte, ts int64) bool {
		batch = append(batch, RawFrame{Data: frame, TS: ts})
		if len(batch) == injectBatchSize {
			h.capture.injectBatch(batch)
			batch = batch[:0]
		}
		return true
	})
	h.capture.injectBatch(batch)
	return nil
}

// ReplayPcap feeds a pcap file, preserving its timestamps.
func (h *Handle) ReplayPcap(path string) error {
	if !h.started {
		return ErrNotStarted
	}
	if h.sim == nil {
		return ErrNotInjectable
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := trace.NewPcapReader(f)
	batch := make([]RawFrame, 0, injectBatchSize)
	for {
		frame, ts, err := r.Next()
		if errors.Is(err, io.EOF) {
			h.capture.injectBatch(batch)
			return nil
		}
		if err != nil {
			return err
		}
		batch = append(batch, RawFrame{Data: frame, TS: ts})
		if len(batch) == injectBatchSize {
			h.capture.injectBatch(batch)
			batch = batch[:0]
		}
	}
}

// parsePrefix parses a CIDR or bare address into a netip.Prefix.
func parsePrefix(s string) (netip.Prefix, error) {
	if p, err := netip.ParsePrefix(s); err == nil {
		return p, nil
	}
	a, err := netip.ParseAddr(s)
	if err != nil {
		return netip.Prefix{}, fmt.Errorf("scap: bad prefix %q: %w", s, err)
	}
	return a.Prefix(a.BitLen())
}
