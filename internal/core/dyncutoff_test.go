package core

import (
	"bytes"
	"testing"

	"scap/internal/event"
	"scap/internal/nic"
	"scap/internal/pkt"
)

// setDyn delivers an OpSetDynCutoff through the control queue the way the
// control plane does, then runs a timer tick so the engine drains it.
func (h *harness) setDyn(v int64) {
	h.e.Control(Ctrl{Op: OpSetDynCutoff, Value: v})
	h.ts += 1000
	h.e.CheckTimers(h.ts)
	h.drain()
}

func TestDynCutoffClampsNewStreams(t *testing.T) {
	h := newHarness(Config{Cutoff: CutoffUnlimited, ChunkSize: 64})
	h.setDyn(100)
	ss := newSession(45001, 80)
	h.feed(ss.syn(), ss.synack())
	h.feed(ss.data(bytes.Repeat([]byte("a"), 80)))
	h.feed(ss.data(bytes.Repeat([]byte("b"), 80))) // crosses the clamp at 100
	h.feed(ss.fin(), ss.srvFin())

	var clientID uint64
	for _, ev := range h.byType(event.Creation) {
		if ev.Info.Dir == pkt.DirClient {
			clientID = ev.Info.ID
		}
	}
	if got := h.dataFor(clientID); len(got) != 100 {
		t.Errorf("captured %d bytes, want clamp=100", len(got))
	}
}

func TestDynCutoffCatchesExistingStreams(t *testing.T) {
	h := newHarness(Config{Cutoff: CutoffUnlimited, ChunkSize: 64})
	ss := newSession(45002, 80)
	h.feed(ss.syn(), ss.synack())
	h.feed(ss.data(bytes.Repeat([]byte("a"), 80))) // unlimited: all captured

	// Tighten below what the stream already captured: its next payload
	// packet must retire it without capturing more.
	h.setDyn(50)
	h.feed(ss.data(bytes.Repeat([]byte("b"), 80)))
	h.feed(ss.fin(), ss.srvFin())

	var clientID uint64
	for _, ev := range h.byType(event.Creation) {
		if ev.Info.Dir == pkt.DirClient {
			clientID = ev.Info.ID
		}
	}
	if got := h.dataFor(clientID); len(got) != 80 {
		t.Errorf("captured %d bytes, want the pre-clamp 80", len(got))
	}
	if st := h.e.Stats(); st.CutoffBytes != 80 {
		t.Errorf("cutoff bytes = %d, want 80", st.CutoffBytes)
	}
}

func TestDynCutoffRelaxRestoresConfigured(t *testing.T) {
	h := newHarness(Config{Cutoff: CutoffUnlimited, ChunkSize: 64})
	h.setDyn(100)
	h.setDyn(-1) // clamp removed: back to the configured unlimited cutoff
	ss := newSession(45003, 80)
	h.feed(ss.syn(), ss.synack())
	h.feed(ss.data(bytes.Repeat([]byte("a"), 200)))
	h.feed(ss.fin(), ss.srvFin())

	var clientID uint64
	for _, ev := range h.byType(event.Creation) {
		if ev.Info.Dir == pkt.DirClient {
			clientID = ev.Info.ID
		}
	}
	if got := h.dataFor(clientID); len(got) != 200 {
		t.Errorf("captured %d bytes, want all 200", len(got))
	}
}

func TestDynCutoffTighterStaticWins(t *testing.T) {
	// A static cutoff below the clamp stays in force: the clamp only ever
	// tightens, never loosens.
	h := newHarness(Config{Cutoff: 60, ChunkSize: 64})
	h.setDyn(1 << 20)
	ss := newSession(45004, 80)
	h.feed(ss.syn(), ss.synack())
	h.feed(ss.data(bytes.Repeat([]byte("a"), 200)))
	h.feed(ss.fin(), ss.srvFin())

	var clientID uint64
	for _, ev := range h.byType(event.Creation) {
		if ev.Info.Dir == pkt.DirClient {
			clientID = ev.Info.ID
		}
	}
	if got := h.dataFor(clientID); len(got) != 60 {
		t.Errorf("captured %d bytes, want static cutoff=60", len(got))
	}
}

// TestSketchFDIRBudgetBoundsNominations: the budget gates how many
// sketch-owned drop-filter pairs installSketchFDIR may keep live at once;
// raising it admits more, -1 restores the unconditional historical behavior.
func TestSketchFDIRBudgetBoundsNominations(t *testing.T) {
	dev := nic.New(nic.Config{Queues: 1})
	h := newHarnessOpts(Options{
		Config: Config{
			Cutoff:            20,
			UseFDIR:           true,
			InactivityTimeout: 1e9,
			Sketch:            SketchConfig{Enabled: true},
		},
		NIC: dev,
	})
	h.e.Control(Ctrl{Op: OpSetSketchFDIRBudget, Value: 0})
	h.e.CheckTimers(h.ts)

	// Three flows cross the cutoff, retire, and hand their record-installed
	// filter pairs to the sketch.
	for i := 0; i < 3; i++ {
		ss := newSession(uint16(45100+i), 80)
		h.feed(ss.syn(), ss.synack(), ss.data(bytes.Repeat([]byte("z"), 50)))
	}
	if p, _ := dev.FilterCount(); p != 6 {
		t.Fatalf("filters after retirement = %d, want 6", p)
	}

	// All record-installed pairs expire; with a zero budget the sketch
	// re-nominates none of the still-heavy flows.
	h.ts += 2e9
	h.e.CheckTimers(h.ts)
	h.drain()
	if p, _ := dev.FilterCount(); p != 0 {
		t.Fatalf("filters with budget 0 = %d, want 0", p)
	}

	// Budget 1: exactly one flow gets its pair back.
	h.e.Control(Ctrl{Op: OpSetSketchFDIRBudget, Value: 1})
	h.ts += 1000
	h.e.CheckTimers(h.ts)
	if p, _ := dev.FilterCount(); p != 2 {
		t.Fatalf("filters with budget 1 = %d, want 2", p)
	}

	// Unlimited: the remaining heavies are nominated too.
	h.e.Control(Ctrl{Op: OpSetSketchFDIRBudget, Value: -1})
	h.ts += 1000
	h.e.CheckTimers(h.ts)
	if p, _ := dev.FilterCount(); p != 6 {
		t.Fatalf("filters with unlimited budget = %d, want 6", p)
	}
}
