package metrics

import (
	"sort"
	"sync/atomic"
	"time"
)

// The flight recorder is the registry's always-on incident log: a fixed-size
// per-core ring of compact binary records for notable engine decisions (PPL
// transitions, cutoff truncation, FDIR churn, ring overflow, arena fallback,
// stream churn under pressure). Unlike the EventLog it is written from
// //scap:hotpath code, so the write path — Note — is a handful of atomic
// stores on a pre-claimed slot: no locks, no allocation, no formatting.
// Readers reconstruct a best-effort timeline on demand (/debug/flight), and
// can export it as Chrome trace-event JSON for chrome://tracing / Perfetto.
//
// Each slot is a seqlock in miniature: the writer claims a per-core sequence
// number, zeroes the slot's seq, stores the record fields, then publishes the
// sequence. A reader accepts a slot only when seq reads the same nonzero
// value before and after copying the fields, so a record torn by a concurrent
// writer lapping the ring is detected and skipped rather than misreported.

// FlightKind discriminates flight-recorder records.
type FlightKind uint8

// Flight record kinds, in rough pipeline order.
const (
	FlightPPLEnter       FlightKind = iota // memory crossed the PPL watermark; Value = usage per-mille
	FlightPPLExit                          // pressure released; Value = episode duration (ns)
	FlightCutoff                           // stream hit its cutoff; Value = stream ID, Aux = captured bytes
	FlightFDIRInstall                      // hardware drop filter installed; Value = filter ID
	FlightFDIRRemove                       // hardware filter removed/expired; Value = filter ID
	FlightFDIRRebalance                    // balancer redirected a flow; Value = from queue, Aux = to queue
	FlightRingOverflow                     // event ring full, events lost; Value = events lost in the batch
	FlightNICRingFull                      // NIC ring full episode began; Value = ring capacity
	FlightNICRingRecover                   // NIC ring drained; Value = frames dropped, Aux = episode duration (virtual ns)
	FlightArenaFallback                    // arena exhausted, chunk fell back to heap; Value = requested bytes
	FlightStreamCreate                     // stream created while under PPL pressure; Value = stream ID, Aux = priority
	FlightStreamExpire                     // stream timed out/evicted while under PPL pressure; Value = stream ID

	// Control-plane decisions (internal/ctlplane). The controller notes one
	// record per actuation so an overload episode replays end to end:
	// signal (PPL/arena records above) → decision (these) → recovery.
	FlightCtlTighten    // controller lowered the dynamic cutoff; Value = new cutoff bytes, Aux = memory per-mille
	FlightCtlRelax      // controller raised/restored the cutoff; Value = new cutoff (-1 = restored), Aux = memory per-mille
	FlightCtlFDIRBudget // controller resized the sketch-FDIR budget; Value = filters per core, Aux = tracked heavies
	FlightCtlWatermarks // controller retargeted PPL watermarks; Value = watermark_0 per-mille, Aux = priority levels
)

var flightKindNames = [...]string{
	FlightPPLEnter:       "ppl_enter",
	FlightPPLExit:        "ppl_exit",
	FlightCutoff:         "cutoff",
	FlightFDIRInstall:    "fdir_install",
	FlightFDIRRemove:     "fdir_remove",
	FlightFDIRRebalance:  "fdir_rebalance",
	FlightRingOverflow:   "event_ring_overflow",
	FlightNICRingFull:    "nic_ring_full",
	FlightNICRingRecover: "nic_ring_recover",
	FlightArenaFallback:  "arena_fallback",
	FlightStreamCreate:   "stream_create",
	FlightStreamExpire:   "stream_expire",
	FlightCtlTighten:     "ctl_tighten",
	FlightCtlRelax:       "ctl_relax",
	FlightCtlFDIRBudget:  "ctl_fdir_budget",
	FlightCtlWatermarks:  "ctl_watermarks",
}

// String returns the kind's wire name.
func (k FlightKind) String() string {
	if int(k) < len(flightKindNames) {
		return flightKindNames[k]
	}
	return "unknown"
}

// defaultFlightCap is each core's ring capacity (power of two). At 48 bytes a
// slot this is ~48 KiB per core — cheap enough to leave always on.
const defaultFlightCap = 1024

// flightSlot is one record's storage. Every field is atomic so concurrent
// writer/reader access is race-free; seq doubles as the publication flag.
//
//scap:atomics
type flightSlot struct {
	seq  atomic.Uint64 // per-core record sequence (1-based); 0 = empty or being written
	ts   atomic.Int64  // capture-clock timestamp (unix ns)
	kind atomic.Uint64
	val  atomic.Int64
	aux  atomic.Int64
}

// flightRing is one core's ring. The cursor sits alone on its cache line so
// writer claims never contend with neighbouring cores' cursors.
//
//scap:atomics
type flightRing struct {
	_     [64]byte
	next  atomic.Uint64 // records ever claimed on this ring
	_     [64]byte
	slots []flightSlot
}

// FlightRecorder is the per-core flight-recorder ring set of one registry.
// Note is the only method legal in //scap:hotpath code (the metricreg
// analyzer enforces this); Snapshot/Dump/Total are cold read paths.
type FlightRecorder struct {
	rings []flightRing
	mask  uint64
	now   *func() int64
}

func newFlightRecorder(cores, capacity int, now *func() int64) *FlightRecorder {
	if cores < 1 {
		cores = 1
	}
	if capacity < 2 || capacity&(capacity-1) != 0 {
		capacity = defaultFlightCap
	}
	f := &FlightRecorder{
		rings: make([]flightRing, cores),
		mask:  uint64(capacity - 1),
		now:   now,
	}
	for i := range f.rings {
		f.rings[i].slots = make([]flightSlot, capacity)
	}
	return f
}

// Note records one flight record on core's ring, overwriting the oldest slot
// when the ring is full. It is the fixed-size no-alloc encoder: a claim plus
// five atomic stores, safe from //scap:hotpath code. An out-of-range core
// falls back to ring 0.
//
//scap:hotpath
func (f *FlightRecorder) Note(core int, kind FlightKind, value, aux int64) {
	if core < 0 || core >= len(f.rings) {
		core = 0
	}
	r := &f.rings[core]
	n := r.next.Add(1) // 1-based sequence; slot index is (n-1) & mask
	s := &r.slots[(n-1)&f.mask]
	s.seq.Store(0)
	s.ts.Store((*f.now)())
	s.kind.Store(uint64(kind))
	s.val.Store(value)
	s.aux.Store(aux)
	s.seq.Store(n)
}

// FlightRecord is one decoded flight-recorder record.
type FlightRecord struct {
	Seq          uint64     `json:"seq"`
	TimeUnixNano int64      `json:"time_unix_nano"`
	Core         int        `json:"core"`
	Kind         FlightKind `json:"kind"`
	KindName     string     `json:"kind_name"`
	Value        int64      `json:"value"`
	Aux          int64      `json:"aux,omitempty"`
}

// Snapshot decodes every readable record, oldest first (by timestamp, then
// core, then sequence). Records being overwritten concurrently are skipped.
func (f *FlightRecorder) Snapshot() []FlightRecord {
	var out []FlightRecord
	for core := range f.rings {
		r := &f.rings[core]
		for i := range r.slots {
			s := &r.slots[i]
			// A couple of retries ride out a writer mid-store; a slot
			// being lapped repeatedly is simply dropped.
			for attempt := 0; attempt < 3; attempt++ {
				n := s.seq.Load()
				if n == 0 {
					break
				}
				rec := FlightRecord{
					Seq:          n,
					TimeUnixNano: s.ts.Load(),
					Core:         core,
					Kind:         FlightKind(s.kind.Load()),
					Value:        s.val.Load(),
					Aux:          s.aux.Load(),
				}
				if s.seq.Load() != n {
					continue
				}
				rec.KindName = rec.Kind.String()
				out = append(out, rec)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TimeUnixNano != out[j].TimeUnixNano {
			return out[i].TimeUnixNano < out[j].TimeUnixNano
		}
		if out[i].Core != out[j].Core {
			return out[i].Core < out[j].Core
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Total returns how many records were ever written across all cores
// (including records since overwritten).
func (f *FlightRecorder) Total() uint64 {
	var t uint64
	for i := range f.rings {
		t += f.rings[i].next.Load()
	}
	return t
}

// FlightDump is the /debug/flight JSON wire format.
type FlightDump struct {
	TimeUnixNano int64          `json:"time_unix_nano"`
	Cores        int            `json:"cores"`
	Capacity     int            `json:"capacity_per_core"`
	Total        uint64         `json:"total_recorded"`
	Records      []FlightRecord `json:"records"`
}

// Dump packages a snapshot for serving.
func (f *FlightRecorder) Dump() FlightDump {
	return FlightDump{
		TimeUnixNano: (*f.now)(),
		Cores:        len(f.rings),
		Capacity:     int(f.mask + 1),
		Total:        f.Total(),
		Records:      f.Snapshot(),
	}
}

// ChromeTraceEvent is one event of the Chrome trace-event format
// (chrome://tracing, Perfetto). Timestamps and durations are microseconds.
type ChromeTraceEvent struct {
	Name  string           `json:"name"`
	Cat   string           `json:"cat"`
	Ph    string           `json:"ph"`
	TS    float64          `json:"ts"`
	Dur   float64          `json:"dur,omitempty"`
	PID   int              `json:"pid"`
	TID   int              `json:"tid"`
	Scope string           `json:"s,omitempty"`
	Args  map[string]int64 `json:"args,omitempty"`
}

// ChromeTrace is the JSON-object form of the trace-event format.
type ChromeTrace struct {
	TraceEvents     []ChromeTraceEvent `json:"traceEvents"`
	DisplayTimeUnit string             `json:"displayTimeUnit"`
}

// ChromeTraceFromRecords converts flight records into a Chrome trace.
// Timestamps are rebased to the earliest record; each core becomes a thread
// (tid). Episode-closing kinds that carry a duration (PPL exit) become
// complete ("X") events spanning the episode; everything else is an instant
// ("i") event with the record's payload in args.
func ChromeTraceFromRecords(recs []FlightRecord) ChromeTrace {
	tr := ChromeTrace{DisplayTimeUnit: "ms", TraceEvents: []ChromeTraceEvent{}}
	if len(recs) == 0 {
		return tr
	}
	base := recs[0].TimeUnixNano
	for _, r := range recs {
		if r.TimeUnixNano < base {
			base = r.TimeUnixNano
		}
	}
	usec := func(ns int64) float64 { return float64(ns) / float64(time.Microsecond) }
	for _, r := range recs {
		ev := ChromeTraceEvent{
			Name: r.KindName,
			Cat:  "flight",
			TID:  r.Core,
			Args: map[string]int64{"value": r.Value, "aux": r.Aux, "seq": int64(r.Seq)},
		}
		if r.Kind == FlightPPLExit && r.Value > 0 {
			// Value is the episode duration: render the whole episode as a
			// complete event ending at the record's timestamp.
			ev.Ph = "X"
			ev.TS = usec(r.TimeUnixNano - base - r.Value)
			if ev.TS < 0 {
				ev.TS = 0
			}
			ev.Dur = usec(r.Value)
		} else {
			ev.Ph = "i"
			ev.Scope = "t"
			ev.TS = usec(r.TimeUnixNano - base)
		}
		tr.TraceEvents = append(tr.TraceEvents, ev)
	}
	return tr
}
