package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// HotPathLock flags sync.Mutex/sync.RWMutex acquisition inside functions
// marked //scap:hotpath. The paper's per-packet path shares state through
// single-writer structures and atomics (per-core engines, SPSC event
// rings, atomic memory accounting); a mutex on that path reintroduces the
// cross-core serialization the design removes. Audited exceptions carry
// //scaplint:ignore hotpathlock with a justification.
var HotPathLock = &Analyzer{
	Name: "hotpathlock",
	Doc:  "no sync.Mutex/RWMutex acquisition in //scap:hotpath functions",
	Run:  runHotPathLock,
}

// lockMethods are the acquisition entry points; Unlock is not flagged
// separately (an unlock without an acquire is already broken code).
var lockMethods = map[string]bool{
	"Lock":     true,
	"RLock":    true,
	"TryLock":  true,
	"TryRLock": true,
}

func runHotPathLock(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, fd := range hotpathFuncs(p) {
		if fd.Body == nil {
			continue
		}
		fname := fd.Name.Name
		if fd.Recv != nil && len(fd.Recv.List) > 0 {
			if tn := receiverTypeName(fd); tn != "" {
				fname = tn + "." + fname
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !lockMethods[sel.Sel.Name] {
				return true
			}
			mt := mutexTypeName(p, sel)
			if mt == "" {
				return true
			}
			site := sel.Sel.Name
			if base := exprText(sel.X); base != "" {
				site = base + "." + site
			}
			diags = append(diags, Diagnostic{
				Pos:      p.Fset.Position(call.Pos()),
				Analyzer: "hotpathlock",
				Message: fmt.Sprintf(
					"%s: %s acquires a %s in a hot path (the per-packet path is lock-free by design; vet and //scaplint:ignore audited exceptions)",
					fname, site, mt),
			})
			return true
		})
	}
	return diags
}

// mutexTypeName resolves the method's receiver type through the selection
// (covering both direct fields and embedded/promoted mutexes) and returns
// "sync.Mutex" / "sync.RWMutex", or "" when the callee is not one of them.
func mutexTypeName(p *Package, sel *ast.SelectorExpr) string {
	s, ok := p.Info.Selections[sel]
	if !ok {
		return ""
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	if n := obj.Name(); n == "Mutex" || n == "RWMutex" {
		return "sync." + n
	}
	return ""
}

// exprText renders simple identifier/selector chains ("c.injectMu"); other
// expression forms yield "" and the caller falls back to the method name.
func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if base := exprText(x.X); base != "" {
			return base + "." + x.Sel.Name
		}
	}
	return ""
}
