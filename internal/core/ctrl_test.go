package core

import (
	"bytes"
	"testing"

	"scap/internal/event"
	"scap/internal/mem"
)

func TestControlSetCutoffTriggersImmediately(t *testing.T) {
	h := newHarness(Config{Cutoff: CutoffUnlimited})
	ss := newSession(45000, 80)
	h.feed(ss.syn(), ss.synack(), ss.data(bytes.Repeat([]byte("a"), 500)))
	s := h.e.Table().Lookup(ss.key)
	if s == nil {
		t.Fatal("stream missing")
	}
	// Lower the cutoff below what's already captured: the stream must
	// transition to cutoff state on the next control drain.
	h.e.Control(Ctrl{Op: OpSetCutoff, Stream: s, ID: s.ID, Value: 100})
	h.feed(ss.data([]byte("more")))
	if s.Status.String() != "cutoff" {
		t.Errorf("status = %v, want cutoff", s.Status)
	}
	if st := h.e.Stats(); st.CutoffPkts == 0 {
		t.Error("no packets discarded after retroactive cutoff")
	}
}

func TestControlSetParams(t *testing.T) {
	h := newHarness(Config{Cutoff: CutoffUnlimited})
	ss := newSession(45001, 80)
	h.feed(ss.syn(), ss.synack(), ss.data([]byte("x")))
	s := h.e.Table().Lookup(ss.key)
	h.e.Control(Ctrl{Op: OpSetParam, Stream: s, ID: s.ID, Param: ParamChunkSize, Value: 2048})
	h.e.Control(Ctrl{Op: OpSetParam, Stream: s, ID: s.ID, Param: ParamOverlapSize, Value: 64})
	h.e.Control(Ctrl{Op: OpSetParam, Stream: s, ID: s.ID, Param: ParamFlushTimeout, Value: 5e6})
	h.e.Control(Ctrl{Op: OpSetParam, Stream: s, ID: s.ID, Param: ParamInactivityTimeout, Value: 1e9})
	h.feed(ss.data([]byte("y"))) // drain controls
	if s.ChunkSize != 2048 || s.OverlapSize != 64 || s.FlushTimeout != 5e6 || s.InactivityTimeout != 1e9 {
		t.Errorf("params = %d/%d/%d/%d", s.ChunkSize, s.OverlapSize, s.FlushTimeout, s.InactivityTimeout)
	}
	// Invalid values are rejected silently.
	h.e.Control(Ctrl{Op: OpSetParam, Stream: s, ID: s.ID, Param: ParamChunkSize, Value: -5})
	h.e.Control(Ctrl{Op: OpSetParam, Stream: s, ID: s.ID, Param: ParamOverlapSize, Value: 99999})
	h.feed(ss.data([]byte("z")))
	if s.ChunkSize != 2048 || s.OverlapSize != 64 {
		t.Errorf("invalid values applied: %d/%d", s.ChunkSize, s.OverlapSize)
	}
}

func TestPerStreamInactivityTimeout(t *testing.T) {
	h := newHarness(Config{Cutoff: CutoffUnlimited, InactivityTimeout: 10e9})
	fast := newSession(45002, 80)
	slow := newSession(45003, 80)
	h.feed(fast.syn(), fast.synack(), slow.syn(), slow.synack())
	fs := h.e.Table().Lookup(fast.key)
	h.e.Control(Ctrl{Op: OpSetParam, Stream: fs, ID: fs.ID, Param: ParamInactivityTimeout, Value: 1e9})
	h.feed(fast.data([]byte("a")), slow.data([]byte("b")))
	// After 2 virtual seconds: the fast-timeout stream expires, the slow
	// one survives.
	h.e.CheckTimers(h.ts + 2e9)
	h.drain()
	if h.e.Table().Lookup(fast.key) != nil {
		t.Error("short-timeout stream still tracked")
	}
	if h.e.Table().Lookup(slow.key) == nil {
		t.Error("default-timeout stream expired early")
	}
}

func TestEventQueueOverflowReleasesMemory(t *testing.T) {
	mm := mem.New(mem.Config{Size: 64 << 20})
	q := event.NewQueue(2) // tiny: force overflow
	e := NewEngine(Options{Config: Config{Cutoff: CutoffUnlimited, ChunkSize: 256}, Mem: mm, Queue: q})
	ss := newSession(45004, 80)
	ts := int64(0)
	feed := func(f []byte) {
		ts += 1000
		e.HandleFrame(f, ts)
	}
	feed(ss.syn())
	feed(ss.synack())
	for i := 0; i < 50; i++ {
		feed(ss.data(bytes.Repeat([]byte("q"), 256)))
	}
	feed(ss.fin())
	feed(ss.srvFin())
	st := e.Stats()
	if st.EventsLost == 0 || st.EventsLostBytes == 0 {
		t.Fatalf("expected event losses: %+v", st)
	}
	// Drain the two events that fit and release their memory.
	for {
		ev, ok := q.Poll()
		if !ok {
			break
		}
		if ev.Accounted > 0 {
			mm.Release(ev.Accounted)
		}
	}
	if mm.Used() != 0 {
		t.Errorf("memory leak after overflow: %d bytes", mm.Used())
	}
}

func TestIgnoredStreamsProduceNoEvents(t *testing.T) {
	h := newHarnessOpts(Options{Config: Config{
		Cutoff: CutoffUnlimited,
		Filter: mustFilter(t, "port 9999"),
	}})
	ss := newSession(45005, 80) // does not match
	h.feed(ss.syn(), ss.synack(), ss.data([]byte("ignored")), ss.fin(), ss.srvFin())
	if n := len(h.events); n != 0 {
		t.Errorf("%d events for an ignored stream", n)
	}
	// The stream record exists for cheap discarding but is ignored.
	if st := h.e.Stats(); st.FilterIgnoredPkts == 0 {
		t.Error("ignored packets not counted")
	}
	if h.mm.Used() != 0 {
		t.Errorf("memory used for ignored stream: %d", h.mm.Used())
	}
}

func TestOppositeDirectionInheritsPriority(t *testing.T) {
	h := newHarness(Config{Cutoff: CutoffUnlimited, Priorities: 2})
	ss := newSession(45006, 80)
	h.feed(ss.syn())
	s := h.e.Table().Lookup(ss.key)
	h.e.Control(Ctrl{Op: OpSetPriority, Stream: s, ID: s.ID, Value: 1})
	h.feed(ss.synack()) // creates the opposite direction
	opp := h.e.Table().Lookup(ss.key.Reverse())
	if opp == nil || opp.Priority != 1 {
		t.Errorf("opposite priority = %+v", opp)
	}
}

func TestPriorityClassAppliesAtCreation(t *testing.T) {
	h := newHarnessOpts(Options{Config: Config{
		Cutoff:     CutoffUnlimited,
		Priorities: 2,
		PriorityClasses: []PriorityClass{
			{Filter: mustFilter(t, "port 443"), Priority: 1},
		},
	}})
	tls := newSession(45007, 443)
	web := newSession(45008, 80)
	h.feed(tls.syn(), web.syn())
	if s := h.e.Table().Lookup(tls.key); s == nil || s.Priority != 1 {
		t.Errorf("tls stream priority = %+v", s)
	}
	if s := h.e.Table().Lookup(web.key); s == nil || s.Priority != 0 {
		t.Errorf("web stream priority = %+v", s)
	}
}

func TestStaleKeepChunkReleasesMemory(t *testing.T) {
	h := newHarness(Config{Cutoff: CutoffUnlimited, ChunkSize: 8})
	ss := newSession(45009, 80)
	h.feedNoRelease(ss.syn(), ss.synack(), ss.data([]byte("ABCDEFGH")))
	var ev event.Event
	for _, e := range h.events {
		if e.Type == event.Data {
			ev = e
		}
	}
	if ev.Accounted == 0 {
		t.Fatal("no accounted data event")
	}
	h.feed(ss.rst()) // stream gone, record recycled
	before := h.mm.Used()
	h.e.Control(Ctrl{
		Op: OpKeepChunk, Stream: ev.Stream, ID: ev.Info.ID,
		Data: append([]byte(nil), ev.Data...), Accounted: ev.Accounted,
	})
	h.feed(newSession(45010, 80).syn()) // drain controls
	if got := h.mm.Used(); got != before-int64(ev.Accounted) {
		t.Errorf("stale keep-chunk: used %d, want %d", got, before-int64(ev.Accounted))
	}
}
