package scap

import (
	"os"
	"sync"
	"testing"
	"time"

	"scap/internal/metrics"
	"scap/internal/trace"
)

// The adaptive-vs-fixed-cutoff overload replay (EXPERIMENTS.md, "Adaptive
// overload control"). Every variant runs the same three-phase workload —
// calm, burst overload, calm — through a socket with the same tiny memory
// budget and the same deliberately slow consumers. Fixed variants pin the
// stream cutoff for the whole run; the adaptive variant starts unlimited and
// lets the controller clamp and release it.
//
// Two scores per run:
//
//   - p99 ring→worker latency (stage_ring_worker_ns): how far the pipeline
//     fell behind at the tail.
//   - useful bytes: per stream, the intact delivered prefix — bytes
//     delivered before the first reassembly hole, capped at usefulWindow.
//     An analysis application needs a contiguous prefix (protocol headers,
//     handshakes, first request); once overload drops punch a hole, the
//     bytes dribbling in behind it are worthless. A tight fixed cutoff
//     forfeits prefix bytes in the calm phases too; a loose one lets
//     overload shred the prefixes of everything in flight.
//
// Structural assertions always run. The comparative claims — adaptive beats
// every fixed cutoff on p99 latency and delivers at least the useful bytes
// of the best fixed cutoff — are asserted when SCAP_CTLPLANE_STRICT=1
// (set by `make bench-ctlplane`), so ordinary `go test ./...` stays immune
// to scheduler noise on loaded CI machines.

// usefulWindow is the per-stream analysis prefix scored by the experiment.
// It matches the controller's CutoffStart in ctlTestConfig: under calm load
// the adaptive run captures the full window.
const usefulWindow = 64 << 10

// spinFor burns d of CPU in a busy loop. Go's async preemption keeps other
// goroutines scheduled even on a single-core runner.
func spinFor(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

type ctlExpResult struct {
	name        string
	p99Ns       float64
	usefulBytes int64
	streams     int
	tightens    int
	restores    int
}

// runCtlExperiment replays the phased workload through one variant and
// scores it. cutoff < 0 with adaptive=false is the unlimited baseline.
func runCtlExperiment(t *testing.T, name string, cutoff int64, adaptive bool) ctlExpResult {
	t.Helper()
	cfg := Config{
		Queues:     2,
		MemorySize: 2 << 20,
		Sketch:     SketchConfig{Enabled: true},
	}
	if adaptive {
		cfg.Control = ctlTestConfig()
	}
	h, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetCutoff(cutoff); err != nil {
		t.Fatal(err)
	}

	type streamScore struct {
		intact int64
		holed  bool
	}
	var mu sync.Mutex
	delivered := map[uint64]*streamScore{}
	// The consumer models a DPI application: a fixed per-record overhead
	// (flow lookup, dispatch, logging — 20µs) plus a per-byte inspection
	// cost (10ns/B; one full 16K chunk adds ~164µs). The cost is burned as
	// a busy-wait, not time.Sleep: sleep has a scheduler granularity floor
	// that makes a 100-byte fragment as expensive as a 16K chunk, which
	// would erase exactly the byte-shedding effect the cutoff exists for.
	h.DispatchData(func(sd *Stream) {
		n := len(sd.Data)
		mu.Lock()
		sc := delivered[sd.ID()]
		if sc == nil {
			sc = &streamScore{}
			delivered[sd.ID()] = sc
		}
		if sd.HoleBefore {
			sc.holed = true
		}
		if !sc.holed {
			sc.intact += int64(n)
		}
		mu.Unlock()
		spinFor(20*time.Microsecond + time.Duration(n)*10)
	})
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}

	// Phases are injected at a wall-clock byte rate: frames batch up and a
	// short sleep per batch holds the target rate, so overload is sustained
	// rather than a single instantaneous enqueue.
	phase := func(seed int64, total, concurrent int, bytesPerSec float64) {
		// 70 full-MSS segments ≈ 100K per stream: well past the 64K analysis
		// window, so loose cutoffs spend capture budget on bytes the scoring
		// never credits.
		gen := trace.ConcurrentStreamsWorkload(seed, total, concurrent, 70, 1460)
		batch := make([]RawFrame, 0, 64)
		batchBytes := 0
		flush := func() {
			if len(batch) == 0 {
				return
			}
			if err := h.InjectBatch(batch); err != nil {
				t.Fatal(err)
			}
			time.Sleep(time.Duration(float64(batchBytes) / bytesPerSec * 1e9))
			batch = batch[:0]
			batchBytes = 0
		}
		trace.Replay(gen, 1e9, func(frame []byte, ts int64) bool {
			batch = append(batch, RawFrame{Data: frame, TS: ts})
			batchBytes += len(frame)
			if len(batch) == cap(batch) {
				flush()
			}
			return true
		})
		flush()
	}
	score := func() int64 {
		mu.Lock()
		defer mu.Unlock()
		var sum int64
		for _, sc := range delivered {
			n := sc.intact
			if n > usefulWindow {
				n = usefulWindow
			}
			sum += n
		}
		return sum
	}
	// Phase 1 — calm: light concurrency at a rate every variant sustains.
	phase(21, 24, 4, 50e6)
	time.Sleep(150 * time.Millisecond) // drain; adaptive controller sees calm
	u1 := score()
	// Phase 2 — burst: a sustained line-rate flood far beyond what the
	// memory budget and the consumers sustain.
	phase(22, 384, 128, 400e6)
	time.Sleep(300 * time.Millisecond) // recovery window
	u2 := score()
	// Phase 3 — calm again: the clamp must be gone to capture full windows.
	phase(23, 24, 4, 50e6)
	time.Sleep(150 * time.Millisecond)
	t.Logf("  %s useful by phase: calm1=%d burst=%d calm2=%d", name, u1, u2-u1, score()-u2)

	res := ctlExpResult{name: name}
	if adaptive {
		cs := h.ControlState()
		if cs == nil {
			t.Fatal("adaptive run has no control state")
		}
		var t0 int64
		for _, d := range cs.Decisions {
			if t0 == 0 {
				t0 = d.TimeUnixNano
			}
			t.Logf("  ctl +%6.1fms %-12s v=%-8d mem=%d‰ %s",
				float64(d.TimeUnixNano-t0)/1e6, d.Action, d.Value, d.MemPerMille, d.Evidence)
			switch d.Action {
			case "tighten":
				res.tightens++
			case "restore":
				res.restores++
			}
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	res.p99Ns = metrics.QuantileFromSnap(h.stageWorkerH.Snap(), 0.99)
	mu.Lock()
	for _, sc := range delivered {
		n := sc.intact
		if n > usefulWindow {
			n = usefulWindow
		}
		res.usefulBytes += n
	}
	res.streams = len(delivered)
	mu.Unlock()
	return res
}

func TestAdaptiveVsFixedCutoff(t *testing.T) {
	if testing.Short() {
		t.Skip("overload replay experiment; run via make bench-ctlplane")
	}
	strict := os.Getenv("SCAP_CTLPLANE_STRICT") == "1"

	fixed := []struct {
		name   string
		cutoff int64
	}{
		{"fixed-unlimited", -1},
		{"fixed-256K", 256 << 10},
		{"fixed-64K", 64 << 10},
		{"fixed-16K", 16 << 10},
	}
	var results []ctlExpResult
	for _, f := range fixed {
		results = append(results, runCtlExperiment(t, f.name, f.cutoff, false))
	}
	adaptiveRes := runCtlExperiment(t, "adaptive", -1, true)
	results = append(results, adaptiveRes)

	t.Logf("%-16s %14s %14s %8s", "variant", "p99 ring→worker", "useful bytes", "streams")
	for _, r := range results {
		t.Logf("%-16s %13.3fms %14d %8d", r.name, r.p99Ns/1e6, r.usefulBytes, r.streams)
	}
	t.Logf("adaptive decisions: tightens=%d restores=%d", adaptiveRes.tightens, adaptiveRes.restores)

	// Structural: every variant processed the workload.
	for _, r := range results {
		if r.streams == 0 || r.usefulBytes == 0 {
			t.Errorf("%s: no delivered data (streams=%d useful=%d)", r.name, r.streams, r.usefulBytes)
		}
		if r.p99Ns <= 0 {
			t.Errorf("%s: no latency samples", r.name)
		}
	}

	if !strict {
		// Episode shape and the comparative claims depend on the box's CPU
		// budget (the overload point moves with worker throughput), so they
		// are asserted only under SCAP_CTLPLANE_STRICT=1 — the mode
		// `make bench-ctlplane` runs in. TestCtlplaneOverloadEpisode covers
		// the episode invariants machine-independently.
		t.Log("SCAP_CTLPLANE_STRICT unset: skipping comparative assertions")
		return
	}
	// The adaptive controller must have run one full episode: clamped during
	// the burst, restored after it.
	if adaptiveRes.tightens == 0 {
		t.Error("adaptive run never tightened during the burst")
	}
	if adaptiveRes.restores == 0 {
		t.Error("adaptive run never restored the cutoff after the burst")
	}
	var bestFixedUseful int64
	for _, r := range results[:len(results)-1] {
		if adaptiveRes.p99Ns >= r.p99Ns {
			t.Errorf("adaptive p99 %.3fms not better than %s p99 %.3fms",
				adaptiveRes.p99Ns/1e6, r.name, r.p99Ns/1e6)
		}
		if r.usefulBytes > bestFixedUseful {
			bestFixedUseful = r.usefulBytes
		}
	}
	if adaptiveRes.usefulBytes < bestFixedUseful {
		t.Errorf("adaptive useful bytes %d below best fixed %d",
			adaptiveRes.usefulBytes, bestFixedUseful)
	}
}
