package bpf

import (
	"fmt"
	"net/netip"

	"scap/internal/pkt"
)

// dirQual selects which endpoint(s) a host/port primitive applies to.
type dirQual uint8

const (
	dirAny dirQual = iota // either endpoint
	dirSrc
	dirDst
)

func (d dirQual) String() string {
	switch d {
	case dirSrc:
		return "src "
	case dirDst:
		return "dst "
	}
	return ""
}

// node is an AST node. Eval is the reference semantics; the compiler emits
// an equivalent instruction sequence.
type node interface {
	eval(p *pkt.Packet) bool
	String() string
}

type andNode struct{ left, right node }

func (n *andNode) eval(p *pkt.Packet) bool { return n.left.eval(p) && n.right.eval(p) }
func (n *andNode) String() string          { return fmt.Sprintf("(%s and %s)", n.left, n.right) }

type orNode struct{ left, right node }

func (n *orNode) eval(p *pkt.Packet) bool { return n.left.eval(p) || n.right.eval(p) }
func (n *orNode) String() string          { return fmt.Sprintf("(%s or %s)", n.left, n.right) }

type notNode struct{ inner node }

func (n *notNode) eval(p *pkt.Packet) bool { return !n.inner.eval(p) }
func (n *notNode) String() string          { return fmt.Sprintf("not %s", n.inner) }

type protoNode struct{ proto uint8 }

func (n *protoNode) eval(p *pkt.Packet) bool { return p.Key.Proto == n.proto }
func (n *protoNode) String() string {
	switch n.proto {
	case pkt.ProtoTCP:
		return "tcp"
	case pkt.ProtoUDP:
		return "udp"
	case pkt.ProtoICMP:
		return "icmp"
	case pkt.ProtoICMPv6:
		return "icmp6"
	}
	return fmt.Sprintf("proto %d", n.proto)
}

type ipVersionNode struct{ version uint8 }

func (n *ipVersionNode) eval(p *pkt.Packet) bool { return p.IPVersion == n.version }
func (n *ipVersionNode) String() string {
	if n.version == 4 {
		return "ip"
	}
	return "ip6"
}

type portNode struct {
	dir dirQual
	lo  uint16
	hi  uint16
}

func (n *portNode) eval(p *pkt.Packet) bool {
	if p.Key.Proto != pkt.ProtoTCP && p.Key.Proto != pkt.ProtoUDP {
		return false
	}
	srcOK := p.Key.SrcPort >= n.lo && p.Key.SrcPort <= n.hi
	dstOK := p.Key.DstPort >= n.lo && p.Key.DstPort <= n.hi
	switch n.dir {
	case dirSrc:
		return srcOK
	case dirDst:
		return dstOK
	}
	return srcOK || dstOK
}

func (n *portNode) String() string {
	if n.lo == n.hi {
		return fmt.Sprintf("%sport %d", n.dir, n.lo)
	}
	return fmt.Sprintf("%sportrange %d-%d", n.dir, n.lo, n.hi)
}

type hostNode struct {
	dir  dirQual
	addr netip.Addr
}

func (n *hostNode) eval(p *pkt.Packet) bool {
	switch n.dir {
	case dirSrc:
		return p.Key.SrcIP == n.addr
	case dirDst:
		return p.Key.DstIP == n.addr
	}
	return p.Key.SrcIP == n.addr || p.Key.DstIP == n.addr
}

func (n *hostNode) String() string { return fmt.Sprintf("%shost %s", n.dir, n.addr) }

type netNode struct {
	dir    dirQual
	prefix netip.Prefix
}

func (n *netNode) eval(p *pkt.Packet) bool {
	switch n.dir {
	case dirSrc:
		return n.prefix.Contains(p.Key.SrcIP)
	case dirDst:
		return n.prefix.Contains(p.Key.DstIP)
	}
	return n.prefix.Contains(p.Key.SrcIP) || n.prefix.Contains(p.Key.DstIP)
}

func (n *netNode) String() string { return fmt.Sprintf("%snet %s", n.dir, n.prefix) }

type lenNode struct {
	less  bool // true: len <= limit, false: len >= limit (tcpdump semantics)
	limit int
}

func (n *lenNode) eval(p *pkt.Packet) bool {
	if n.less {
		return p.WireLen <= n.limit
	}
	return p.WireLen >= n.limit
}

func (n *lenNode) String() string {
	if n.less {
		return fmt.Sprintf("less %d", n.limit)
	}
	return fmt.Sprintf("greater %d", n.limit)
}

// cmpOp is a byte-expression comparison operator.
type cmpOp uint8

const (
	cmpEq cmpOp = iota
	cmpNe
	cmpLt
	cmpLe
	cmpGt
	cmpGe
)

func (o cmpOp) String() string {
	return [...]string{"=", "!=", "<", "<=", ">", ">="}[o]
}

func (o cmpOp) apply(a, b uint32) bool {
	switch o {
	case cmpEq:
		return a == b
	case cmpNe:
		return a != b
	case cmpLt:
		return a < b
	case cmpLe:
		return a <= b
	case cmpGt:
		return a > b
	case cmpGe:
		return a >= b
	}
	return false
}

// byteLayer names the header a byte expression indexes into.
type byteLayer uint8

const (
	layerIP byteLayer = iota
	layerTCP
	layerUDP
)

func (l byteLayer) String() string {
	return [...]string{"ip", "tcp", "udp"}[l]
}

// byteExprNode is the tcpdump-style accessor "proto[off:size] & mask OP
// value" — e.g. "tcp[13] & 0x12 = 0x12" matches SYN|ACK segments. A packet
// of the wrong protocol, or too short for the access, does not match.
type byteExprNode struct {
	layer byteLayer
	off   int
	size  int // 1 or 2
	mask  uint32
	op    cmpOp
	val   uint32
}

func (n *byteExprNode) eval(p *pkt.Packet) bool {
	v, ok := n.load(p)
	if !ok {
		return false
	}
	if n.mask != 0 {
		v &= n.mask
	}
	return n.op.apply(v, n.val)
}

func (n *byteExprNode) load(p *pkt.Packet) (uint32, bool) {
	var base int
	switch n.layer {
	case layerIP:
		if p.IPVersion == 0 {
			return 0, false
		}
		base = pkt.EthernetHeaderLen
	case layerTCP:
		if p.Key.Proto != pkt.ProtoTCP || p.L4Offset == 0 {
			return 0, false
		}
		base = p.L4Offset
	case layerUDP:
		if p.Key.Proto != pkt.ProtoUDP || p.L4Offset == 0 {
			return 0, false
		}
		base = p.L4Offset
	}
	i := base + n.off
	if i < 0 || i+n.size > len(p.Data) {
		return 0, false
	}
	if n.size == 2 {
		return uint32(p.Data[i])<<8 | uint32(p.Data[i+1]), true
	}
	return uint32(p.Data[i]), true
}

func (n *byteExprNode) String() string {
	idx := fmt.Sprintf("%d", n.off)
	if n.size == 2 {
		idx = fmt.Sprintf("%d:2", n.off)
	}
	s := fmt.Sprintf("%s[%s]", n.layer, idx)
	if n.mask != 0 {
		s += fmt.Sprintf(" & %d", n.mask)
	}
	return fmt.Sprintf("%s %s %d", s, n.op, n.val)
}

// vlanNode matches 802.1Q-tagged packets; id < 0 matches any tag.
type vlanNode struct{ id int }

func (n *vlanNode) eval(p *pkt.Packet) bool {
	if !p.HasVLAN {
		return false
	}
	return n.id < 0 || p.VLANID == uint16(n.id)
}

func (n *vlanNode) String() string {
	if n.id < 0 {
		return "vlan"
	}
	return fmt.Sprintf("vlan %d", n.id)
}

type trueNode struct{}

func (trueNode) eval(*pkt.Packet) bool { return true }
func (trueNode) String() string        { return "true" }
