// Priorities: prioritized packet loss under deliberate overload (paper
// §2.2, §6.7). Web streams are marked high priority at creation; a slow
// consumer plus a small stream-memory budget force the capture core past
// its base threshold, and PPL sheds low-priority traffic first. The
// per-class drop counters printed at the end reproduce Figure 9's effect.
package main

import (
	"fmt"
	"log"
	"sync"

	"scap"
	"scap/internal/trace"
)

func main() {
	h, err := scap.Create(scap.Config{
		ReassemblyMode: scap.TCPFast,
		MemorySize:     8 << 20, // deliberately small: force overload
		Queues:         2,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := h.SetParameter(scap.ParamPriorities, 2); err != nil {
		log.Fatal(err)
	}
	if err := h.SetParameter(scap.ParamBaseThreshold, 500); err != nil { // 50%
		log.Fatal(err)
	}
	// Under pressure, also trim every stream beyond 64 KB before dropping
	// whole packets of high-priority streams (overload cutoff).
	if err := h.SetParameter(scap.ParamOverloadCutoff, 64<<10); err != nil {
		log.Fatal(err)
	}
	// Small chunks give PPL fine-grained control over the memory level.
	if err := h.SetParameter(scap.ParamChunkSize, 4<<10); err != nil {
		log.Fatal(err)
	}

	// Kernel-level priority class: TLS streams are protected from their
	// first byte (a creation-callback SetPriority would race the flood).
	if err := h.AddPriorityClass(1, "port 443"); err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	type class struct{ pkts, dropped uint64 }
	classes := map[string]*class{"high (443)": {}, "low (rest)": {}}
	h.DispatchTermination(func(sd *scap.Stream) {
		st := sd.Stats()
		name := "low (rest)"
		if sd.Priority() > 0 {
			name = "high (443)"
		}
		mu.Lock()
		classes[name].pkts += st.Pkts
		classes[name].dropped += st.DroppedPkts
		mu.Unlock()
	})
	// A deliberately slow consumer keeps chunks (and their memory) alive.
	h.DispatchData(func(sd *scap.Stream) {
		sum := byte(0)
		for i := 0; i < 300; i++ { // burn time proportional to chunk size
			for _, b := range sd.Data {
				sum += b
			}
		}
		_ = sum
	})

	if err := h.StartCapture(); err != nil {
		log.Fatal(err)
	}
	gen := trace.NewGenerator(trace.GenConfig{
		Seed: 3, Flows: 2000, Concurrency: 128,
		MinFlowBytes: 1000, MaxFlowBytes: 4 << 20, Alpha: 0.9,
		ServerPorts: []trace.PortWeight{
			{Port: 443, Weight: 0.1},
			{Port: 80, Weight: 0.6},
			{Port: 8080, Weight: 0.3},
		},
	})
	// Materialize the workload up front: frame synthesis must not throttle
	// the replay, or the pipeline never experiences overload.
	src := &trace.SliceSource{Frames: trace.Collect(gen, 0)}
	if err := h.ReplaySource(src, 5e9); err != nil {
		log.Fatal(err)
	}
	h.Close()

	fmt.Println("per-class packet loss under overload:")
	mu.Lock()
	for name, c := range classes {
		pct := 0.0
		if c.pkts > 0 {
			pct = float64(c.dropped) / float64(c.pkts) * 100
		}
		fmt.Printf("  %-12s %9d pkts %9d dropped (%.1f%%)\n", name, c.pkts, c.dropped, pct)
	}
	mu.Unlock()
	stats, _ := h.GetStats()
	fmt.Printf("\nPPL dropped %d packets total; memory budget %d bytes\n",
		stats.PPLDroppedPkts, stats.MemorySize)
}
