// Command flowstats is the paper's §3.3.1 application as a tool: it runs
// the Scap flow-statistics exporter over a pcap file (cutoff 0: all stream
// data is discarded in the capture core; only per-flow statistics reach
// user level) and prints one line per stream direction.
//
// Usage:
//
//	flowstats trace.pcap
package main

import (
	"fmt"
	"os"
	"sync"

	"scap"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: flowstats <trace.pcap>")
		os.Exit(2)
	}
	h, err := scap.Create(scap.Config{ReassemblyMode: scap.TCPFast})
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowstats:", err)
		os.Exit(1)
	}
	if err := h.SetCutoff(0); err != nil {
		fmt.Fprintln(os.Stderr, "flowstats:", err)
		os.Exit(1)
	}
	var mu sync.Mutex
	var flows int
	h.DispatchTermination(func(sd *scap.Stream) {
		st := sd.Stats()
		mu.Lock()
		flows++
		fmt.Printf("%-50s %8d pkts %12d bytes %8.3fs %s\n",
			sd.Key(), st.Pkts, st.Bytes,
			float64(st.End-st.Start)/1e9, sd.Status())
		mu.Unlock()
	})
	if err := h.StartCapture(); err != nil {
		fmt.Fprintln(os.Stderr, "flowstats:", err)
		os.Exit(1)
	}
	if err := h.ReplayPcap(os.Args[1]); err != nil {
		fmt.Fprintln(os.Stderr, "flowstats:", err)
		os.Exit(1)
	}
	h.Close()
	stats, _ := h.GetStats()
	fmt.Printf("\n%d stream directions; %d packets, %d payload bytes, %d decode errors\n",
		flows, stats.Packets, stats.PayloadBytes, stats.DecodeErrors)
}
