// Package fixtures is the exporteddoc control: no //scap:publicapi marker,
// so undocumented exported symbols are not flagged here.
package fixtures

type Undocumented struct{ n int }

func Orphan() int { return 0 }

var Limit = 10
