package pkt

import (
	"encoding/binary"
	"fmt"
)

// TCPSpec describes one TCP segment to synthesize.
type TCPSpec struct {
	Key     FlowKey
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16
	TTL     uint8 // 0 means 64
	IPID    uint16
	Payload []byte
}

// UDPSpec describes one UDP datagram to synthesize.
type UDPSpec struct {
	Key     FlowKey
	TTL     uint8
	IPID    uint16
	Payload []byte
}

// BuildTCP serializes a complete Ethernet/IP/TCP frame with valid lengths
// and checksums.
func BuildTCP(s TCPSpec) []byte {
	return AppendTCP(nil, s)
}

// AppendTCP appends the frame for s to dst and returns the extended slice.
// Reusing dst across calls lets generators build frames without per-packet
// allocation.
func AppendTCP(dst []byte, s TCPSpec) []byte {
	l4len := TCPMinHeaderLen + len(s.Payload)
	start := len(dst)
	dst = appendEthIP(dst, s.Key, s.TTL, s.IPID, l4len)
	l4 := len(dst)
	var hdr [TCPMinHeaderLen]byte
	binary.BigEndian.PutUint16(hdr[0:2], s.Key.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:4], s.Key.DstPort)
	binary.BigEndian.PutUint32(hdr[4:8], s.Seq)
	binary.BigEndian.PutUint32(hdr[8:12], s.Ack)
	hdr[12] = (TCPMinHeaderLen / 4) << 4
	hdr[13] = s.Flags & 0x3f
	win := s.Window
	if win == 0 {
		win = 65535
	}
	binary.BigEndian.PutUint16(hdr[14:16], win)
	dst = append(dst, hdr[:]...)
	dst = append(dst, s.Payload...)
	csum := Checksum(dst[l4:], PseudoHeaderSum(s.Key.SrcIP, s.Key.DstIP, ProtoTCP, l4len))
	binary.BigEndian.PutUint16(dst[l4+16:l4+18], csum)
	_ = start
	return dst
}

// BuildUDP serializes a complete Ethernet/IP/UDP frame.
func BuildUDP(s UDPSpec) []byte {
	return AppendUDP(nil, s)
}

// AppendUDP appends the frame for s to dst and returns the extended slice.
func AppendUDP(dst []byte, s UDPSpec) []byte {
	l4len := UDPHeaderLen + len(s.Payload)
	dst = appendEthIP(dst, s.Key, s.TTL, s.IPID, l4len)
	l4 := len(dst)
	var hdr [UDPHeaderLen]byte
	binary.BigEndian.PutUint16(hdr[0:2], s.Key.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:4], s.Key.DstPort)
	binary.BigEndian.PutUint16(hdr[4:6], uint16(l4len))
	dst = append(dst, hdr[:]...)
	dst = append(dst, s.Payload...)
	csum := Checksum(dst[l4:], PseudoHeaderSum(s.Key.SrcIP, s.Key.DstIP, ProtoUDP, l4len))
	if csum == 0 {
		csum = 0xffff
	}
	binary.BigEndian.PutUint16(dst[l4+6:l4+8], csum)
	return dst
}

// appendEthIP appends the Ethernet and IP headers for a frame whose
// transport header+payload is l4len bytes. The key's proto selects the IP
// protocol field.
func appendEthIP(dst []byte, key FlowKey, ttl uint8, ipid uint16, l4len int) []byte {
	if ttl == 0 {
		ttl = 64
	}
	v4 := key.SrcIP.Is4()
	if v4 != key.DstIP.Is4() {
		panic(fmt.Sprintf("pkt: mixed address families in %v", key))
	}
	var eth [EthernetHeaderLen]byte
	// Locally administered MACs derived from the ports keep frames
	// distinguishable in pcap dumps without mattering to any consumer.
	eth[0], eth[5] = 0x02, byte(key.SrcPort)
	eth[6], eth[11] = 0x02, byte(key.DstPort)
	if v4 {
		binary.BigEndian.PutUint16(eth[12:14], EtherTypeIPv4)
	} else {
		binary.BigEndian.PutUint16(eth[12:14], EtherTypeIPv6)
	}
	dst = append(dst, eth[:]...)
	if v4 {
		var ip [IPv4MinHeaderLen]byte
		ip[0] = 0x45
		binary.BigEndian.PutUint16(ip[2:4], uint16(IPv4MinHeaderLen+l4len))
		binary.BigEndian.PutUint16(ip[4:6], ipid)
		ip[8] = ttl
		ip[9] = key.Proto
		src, dstAddr := key.SrcIP.As4(), key.DstIP.As4()
		copy(ip[12:16], src[:])
		copy(ip[16:20], dstAddr[:])
		binary.BigEndian.PutUint16(ip[10:12], Checksum(ip[:], 0))
		return append(dst, ip[:]...)
	}
	var ip [IPv6HeaderLen]byte
	ip[0] = 0x60
	binary.BigEndian.PutUint16(ip[4:6], uint16(l4len))
	ip[6] = key.Proto
	ip[7] = ttl
	src, dstAddr := key.SrcIP.As16(), key.DstIP.As16()
	copy(ip[8:24], src[:])
	copy(ip[24:40], dstAddr[:])
	return append(dst, ip[:]...)
}

// WrapVLAN inserts an 802.1Q tag with the given VLAN ID into a built
// Ethernet frame (after the MAC addresses).
func WrapVLAN(frame []byte, vid uint16) []byte {
	if len(frame) < EthernetHeaderLen {
		panic("pkt: frame too short for a VLAN tag")
	}
	out := make([]byte, 0, len(frame)+4)
	out = append(out, frame[:12]...)
	out = binary.BigEndian.AppendUint16(out, EtherTypeVLAN)
	out = binary.BigEndian.AppendUint16(out, vid&0x0fff)
	return append(out, frame[12:]...)
}

// RebuildIPv4Frame reconstructs a whole Ethernet+IPv4 frame from a decoded
// fragment's network-layer fields and a fully reassembled IP payload
// (transport header + data). Used by the NIC-level defragmenter to hand
// unfragmented frames to RSS steering.
func RebuildIPv4Frame(p *Packet, ipPayload []byte) []byte {
	frame := make([]byte, 0, EthernetHeaderLen+IPv4MinHeaderLen+len(ipPayload))
	var eth [EthernetHeaderLen]byte
	if len(p.Data) >= EthernetHeaderLen {
		copy(eth[:], p.Data[:EthernetHeaderLen])
	}
	binary.BigEndian.PutUint16(eth[12:14], EtherTypeIPv4)
	frame = append(frame, eth[:]...)
	var ip [IPv4MinHeaderLen]byte
	ip[0] = 0x45
	binary.BigEndian.PutUint16(ip[2:4], uint16(IPv4MinHeaderLen+len(ipPayload)))
	binary.BigEndian.PutUint16(ip[4:6], p.IPID)
	ip[8] = p.TTL
	ip[9] = p.Key.Proto
	src, dst := p.Key.SrcIP.As4(), p.Key.DstIP.As4()
	copy(ip[12:16], src[:])
	copy(ip[16:20], dst[:])
	binary.BigEndian.PutUint16(ip[10:12], Checksum(ip[:], 0))
	frame = append(frame, ip[:]...)
	return append(frame, ipPayload...)
}

// FragmentIPv4 splits a built IPv4 frame into fragments whose payloads are at
// most mtu-20 bytes (rounded down to a multiple of 8 except for the last).
// Used by evasion tests against strict-mode reassembly. Panics if the frame
// is not IPv4.
func FragmentIPv4(frame []byte, mtu int) [][]byte {
	if len(frame) < EthernetHeaderLen+IPv4MinHeaderLen {
		panic("pkt: frame too short to fragment")
	}
	if binary.BigEndian.Uint16(frame[12:14]) != EtherTypeIPv4 {
		panic("pkt: FragmentIPv4 on non-IPv4 frame")
	}
	ip := frame[EthernetHeaderLen:]
	ihl := int(ip[0]&0x0f) * 4
	payload := ip[ihl:]
	maxFrag := (mtu - ihl) &^ 7
	if maxFrag <= 0 {
		panic("pkt: mtu too small")
	}
	var frags [][]byte
	for off := 0; off < len(payload); off += maxFrag {
		end := off + maxFrag
		more := true
		if end >= len(payload) {
			end = len(payload)
			more = false
		}
		frag := make([]byte, 0, EthernetHeaderLen+ihl+end-off)
		frag = append(frag, frame[:EthernetHeaderLen]...)
		frag = append(frag, ip[:ihl]...)
		frag = append(frag, payload[off:end]...)
		h := frag[EthernetHeaderLen:]
		binary.BigEndian.PutUint16(h[2:4], uint16(ihl+end-off))
		fragField := uint16(off / 8)
		if more {
			fragField |= 0x2000
		}
		binary.BigEndian.PutUint16(h[6:8], fragField)
		binary.BigEndian.PutUint16(h[10:12], 0)
		binary.BigEndian.PutUint16(h[10:12], Checksum(h[:ihl], 0))
		frags = append(frags, frag)
	}
	return frags
}
