package pkt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// FlowKey identifies one direction of a transport-layer conversation.
type FlowKey struct {
	SrcIP   netip.Addr
	DstIP   netip.Addr
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Reverse returns the key of the opposite direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{
		SrcIP: k.DstIP, DstIP: k.SrcIP,
		SrcPort: k.DstPort, DstPort: k.SrcPort,
		Proto: k.Proto,
	}
}

// Canonical returns a direction-independent form of the key (the
// lexicographically smaller endpoint first) and reports whether the key was
// swapped to produce it. Both directions of a connection canonicalize to the
// same value, which makes the canonical key usable as a connection map key.
func (k FlowKey) Canonical() (FlowKey, bool) {
	if k.less() {
		return k, false
	}
	return k.Reverse(), true
}

// less reports whether (SrcIP, SrcPort) sorts before (DstIP, DstPort).
func (k FlowKey) less() bool {
	switch c := k.SrcIP.Compare(k.DstIP); {
	case c < 0:
		return true
	case c > 0:
		return false
	}
	return k.SrcPort <= k.DstPort
}

// Hash returns a direction-sensitive 64-bit hash of the key mixed with seed.
// It is an FNV-1a variant over the tuple bytes; the seed randomizes the
// table layout the way the Scap kernel module picks a random hash function
// at initialization to resist algorithmic-complexity attacks.
func (k FlowKey) Hash(seed uint64) uint64 {
	h := fnvOffset ^ seed
	h = hashAddr(h, k.SrcIP)
	h = hashAddr(h, k.DstIP)
	h = hashU16(h, k.SrcPort)
	h = hashU16(h, k.DstPort)
	h = hashByte(h, k.Proto)
	return h
}

// SymHash returns a direction-independent hash: both directions of a
// connection produce the same value. Used for flow-table bucketing so a
// lookup can find the connection regardless of packet direction.
func (k FlowKey) SymHash(seed uint64) uint64 {
	c, _ := k.Canonical()
	return c.Hash(seed)
}

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// Mix64 finalizes a 64-bit hash with a splitmix64-style avalanche so that
// every output bit depends on every input bit. FNV-1a mixes low bits well
// but leaves the high bits weak; open-addressing tables consume the low
// bits as a group index and the *high* bits as a control fingerprint, so
// both ends must be uniformly distributed.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashSplit splits a mixed 64-bit hash into the two parts an open-addressing
// flow table consumes: the full index word (the table masks off the group
// bits it needs) and a 7-bit control fingerprint. The fingerprint comes from
// the top bits, so it stays independent of the low index bits any
// power-of-two table uses, and 0x80 is OR-ed in so an occupied control byte
// can never collide with the empty (0x00) or tombstone (0x01) markers.
func HashSplit(h uint64) (idx uint64, fp uint8) {
	return h, uint8(h>>57) | 0x80
}

func hashByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime
}

func hashU16(h uint64, v uint16) uint64 {
	h = hashByte(h, byte(v>>8))
	return hashByte(h, byte(v))
}

func hashAddr(h uint64, a netip.Addr) uint64 {
	if a.Is4() {
		b := a.As4()
		for _, x := range b {
			h = hashByte(h, x)
		}
		return h
	}
	b := a.As16()
	for _, x := range b {
		h = hashByte(h, x)
	}
	return h
}

// AppendBytes appends a fixed-width binary form of the key (used by
// signature FDIR filters and tests). IPv4 addresses are widened to 16 bytes.
func (k FlowKey) AppendBytes(dst []byte) []byte {
	s := k.SrcIP.As16()
	d := k.DstIP.As16()
	dst = append(dst, s[:]...)
	dst = append(dst, d[:]...)
	dst = binary.BigEndian.AppendUint16(dst, k.SrcPort)
	dst = binary.BigEndian.AppendUint16(dst, k.DstPort)
	return append(dst, k.Proto)
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%s:%d > %s:%d/%s",
		k.SrcIP, k.SrcPort, k.DstIP, k.DstPort, protoName(k.Proto))
}

func protoName(p uint8) string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	case ProtoICMP:
		return "icmp"
	case ProtoICMPv6:
		return "icmp6"
	}
	return fmt.Sprintf("proto-%d", p)
}
