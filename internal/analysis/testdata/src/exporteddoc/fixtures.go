// Package fixtures exercises the exporteddoc analyzer: exported symbols
// of //scap:publicapi packages must carry doc comments.
package fixtures

//scap:publicapi

// Documented carries a doc comment: fine.
type Documented struct{ n int }

type Bare struct{ n int } // want exporteddoc "exported type Bare has no doc comment"

// internal types are exempt regardless of docs.
type hidden struct{ n int }

// Get is documented: fine.
func (d *Documented) Get() int { return d.n }

func (d *Documented) Peek() int { return d.n } // want exporteddoc "exported method Documented.Peek has no doc comment"

// Exported methods on unexported types are not godoc surface: exempt.
func (h *hidden) Touch() {}

// unexported functions are exempt.
func helper() int { return 0 }

func Orphan() int { return helper() } // want exporteddoc "exported function Orphan has no doc comment"

// Grouped declarations are satisfied by the group doc.
const (
	ModeFast = iota
	ModeSafe
)

var (
	Limit   = 10 // want exporteddoc "exported var Limit has no doc comment"
	padding = 0
)

// A spec-level doc inside an otherwise undocumented group also counts.

var (
	// MaxStreams bounds the tracked stream count.
	MaxStreams = 1 << 20
)

const Cutoff = 4096 // want exporteddoc "exported const Cutoff has no doc comment"

func Audited() {} //scaplint:ignore exporteddoc audited: exported test hook, doc intentionally omitted
