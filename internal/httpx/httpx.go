// Package httpx is a streaming HTTP/1.x message-head parser designed for
// Scap's chunk-oriented delivery: it consumes reassembled stream bytes
// incrementally (state survives across chunks), emitting request and
// response heads as they complete. It exists for the class of monitoring
// applications the paper's introduction motivates — tools that reason
// about "HTTP headers, SQL arguments, email messages" rather than packets
// — and is used by the examples.
//
// The parser is deliberately tolerant: it scans for plausible message
// heads and resynchronizes after garbage, since monitored streams may be
// truncated by cutoffs or have best-effort reassembly holes.
package httpx

import (
	"bytes"
	"strconv"
)

// Kind discriminates parsed message heads.
type Kind uint8

// Message kinds.
const (
	Request Kind = iota
	Response
)

// Message is one parsed HTTP/1.x message head.
type Message struct {
	Kind Kind

	// Request fields.
	Method string
	Target string

	// Response fields.
	StatusCode int

	Proto   string // "HTTP/1.1"
	Headers []Header

	// ContentLength is parsed from the headers; -1 when absent.
	ContentLength int64
}

// Header is one header field (name preserved as sent; Name comparison
// helpers fold case).
type Header struct {
	Name  string
	Value string
}

// Get returns the first value of a header, case-insensitively.
func (m *Message) Get(name string) (string, bool) {
	for _, h := range m.Headers {
		if equalFold(h.Name, name) {
			return h.Value, true
		}
	}
	return "", false
}

// methods the scanner recognizes as the start of a request line.
var methods = [][]byte{
	[]byte("GET "), []byte("POST "), []byte("PUT "), []byte("DELETE "),
	[]byte("HEAD "), []byte("OPTIONS "), []byte("PATCH "), []byte("CONNECT "),
	[]byte("TRACE "),
}

var respPrefix = []byte("HTTP/1.")

// Limits protecting against hostile input.
const (
	maxHeadBytes  = 64 << 10
	maxHeaderLine = 8 << 10
	maxHeaders    = 100
)

// Parser incrementally extracts message heads from one direction of a
// stream. The zero value is ready to use.
type Parser struct {
	buf     []byte
	scanned int // bytes of buf already known not to start a message
	// Truncated counts message heads abandoned for exceeding limits.
	Truncated int
}

// Feed consumes the next chunk of stream bytes, invoking fn for every
// complete message head found. Parsing state carries over between calls;
// fn's Message is only valid during the call.
func (p *Parser) Feed(data []byte, fn func(*Message) bool) {
	p.buf = append(p.buf, data...)
	for {
		start := p.findStart()
		if start < 0 {
			// No plausible head: keep only a small tail (a prefix of a
			// method or "HTTP/" may be split across chunks).
			if len(p.buf) > 16 {
				p.buf = append(p.buf[:0], p.buf[len(p.buf)-16:]...)
			}
			p.scanned = 0
			return
		}
		if start > 0 {
			p.buf = append(p.buf[:0], p.buf[start:]...)
		}
		p.scanned = 0
		end := bytes.Index(p.buf, []byte("\r\n\r\n"))
		if end < 0 {
			if len(p.buf) > maxHeadBytes {
				// Hostile or binary: drop and resynchronize.
				p.Truncated++
				p.buf = p.buf[:0]
			}
			return
		}
		head := p.buf[:end]
		var msg Message
		ok := parseHead(head, &msg)
		// Consume the head regardless; body bytes are skipped by the
		// scanner when looking for the next head.
		p.buf = append(p.buf[:0], p.buf[end+4:]...)
		if ok && !fn(&msg) {
			return
		}
	}
}

// findStart locates the next offset in buf that looks like a message head.
func (p *Parser) findStart() int {
	limit := len(p.buf)
	for i := p.scanned; i < limit; i++ {
		rest := p.buf[i:]
		if rest[0] == 'H' && bytes.HasPrefix(rest, respPrefix) {
			return i
		}
		for _, m := range methods {
			if rest[0] == m[0] && bytes.HasPrefix(rest, m) {
				return i
			}
		}
	}
	p.scanned = limit
	return -1
}

// parseHead parses "request-line/status-line CRLF *(header CRLF)".
func parseHead(head []byte, msg *Message) bool {
	lineEnd := bytes.Index(head, []byte("\r\n"))
	firstLine := head
	rest := []byte(nil)
	if lineEnd >= 0 {
		firstLine = head[:lineEnd]
		rest = head[lineEnd+2:]
	}
	if !parseFirstLine(firstLine, msg) {
		return false
	}
	msg.ContentLength = -1
	for len(rest) > 0 && len(msg.Headers) < maxHeaders {
		var line []byte
		if i := bytes.Index(rest, []byte("\r\n")); i >= 0 {
			line, rest = rest[:i], rest[i+2:]
		} else {
			line, rest = rest, nil
		}
		if len(line) == 0 || len(line) > maxHeaderLine {
			continue
		}
		colon := bytes.IndexByte(line, ':')
		if colon <= 0 {
			continue
		}
		h := Header{
			Name:  string(line[:colon]),
			Value: string(bytes.TrimSpace(line[colon+1:])),
		}
		msg.Headers = append(msg.Headers, h)
		if equalFold(h.Name, "Content-Length") {
			if n, err := strconv.ParseInt(h.Value, 10, 64); err == nil && n >= 0 {
				msg.ContentLength = n
			}
		}
	}
	return true
}

func parseFirstLine(line []byte, msg *Message) bool {
	if bytes.HasPrefix(line, respPrefix) {
		// HTTP/1.x SP status SP reason
		sp := bytes.IndexByte(line, ' ')
		if sp < 0 || len(line) < sp+4 {
			return false
		}
		code, err := strconv.Atoi(string(line[sp+1 : sp+4]))
		if err != nil || code < 100 || code > 599 {
			return false
		}
		msg.Kind = Response
		msg.Proto = string(line[:sp])
		msg.StatusCode = code
		return true
	}
	// METHOD SP target SP HTTP/1.x
	sp1 := bytes.IndexByte(line, ' ')
	if sp1 <= 0 {
		return false
	}
	sp2 := bytes.LastIndexByte(line, ' ')
	if sp2 <= sp1 {
		return false
	}
	proto := line[sp2+1:]
	if !bytes.HasPrefix(proto, []byte("HTTP/")) {
		return false
	}
	msg.Kind = Request
	msg.Method = string(line[:sp1])
	msg.Target = string(bytes.TrimSpace(line[sp1+1 : sp2]))
	msg.Proto = string(proto)
	return msg.Target != ""
}

// equalFold is ASCII case-insensitive comparison (header names are ASCII).
func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
