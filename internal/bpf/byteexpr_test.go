package bpf

import (
	"testing"

	"scap/internal/pkt"
)

// frameFor builds and decodes a real frame so byte expressions index real
// header bytes.
func frameFor(t *testing.T, spec pkt.TCPSpec) *pkt.Packet {
	t.Helper()
	frame := pkt.BuildTCP(spec)
	p := &pkt.Packet{}
	if err := pkt.Decode(frame, p); err != nil {
		t.Fatal(err)
	}
	return p
}

func udpFrameFor(t *testing.T, spec pkt.UDPSpec) *pkt.Packet {
	t.Helper()
	frame := pkt.BuildUDP(spec)
	p := &pkt.Packet{}
	if err := pkt.Decode(frame, p); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestByteExprTCPFlags(t *testing.T) {
	key := pkt.FlowKey{
		SrcIP: pkt.MustAddr("10.0.0.1"), DstIP: pkt.MustAddr("10.0.0.2"),
		SrcPort: 1000, DstPort: 80, Proto: pkt.ProtoTCP,
	}
	syn := frameFor(t, pkt.TCPSpec{Key: key, Flags: pkt.FlagSYN})
	synack := frameFor(t, pkt.TCPSpec{Key: key, Flags: pkt.FlagSYN | pkt.FlagACK})
	ack := frameFor(t, pkt.TCPSpec{Key: key, Flags: pkt.FlagACK})

	cases := []struct {
		expr string
		p    *pkt.Packet
		want bool
	}{
		// Byte 13 of the TCP header is the flags byte; 0x02=SYN 0x10=ACK.
		{"tcp[13] & 0x02 != 0", syn, true},
		{"tcp[13] & 0x02 != 0", ack, false},
		{"tcp[13] = 0x12", synack, true},
		{"tcp[13] = 0x12", syn, false},
		{"tcp[13] & 0x12 = 0x12", synack, true},
		{"tcp[13] & 0x12 = 0x12", ack, false},
		// Two-byte load: bytes 0:2 are the source port (1000 = 0x03e8).
		{"tcp[0:2] = 1000", syn, true},
		{"tcp[0:2] = 1001", syn, false},
		{"tcp[2:2] >= 80", syn, true},
		{"tcp[2:2] > 80", syn, false},
		// IP header: byte 9 is the protocol (6 = TCP); byte 8 the TTL.
		{"ip[9] = 6", syn, true},
		{"ip[9] = 17", syn, false},
		{"ip[8] > 0", syn, true},
		// Combined with other primitives.
		{"tcp[13] & 0x02 != 0 and dst port 80", syn, true},
		{"not (tcp[13] & 0x10 != 0)", syn, true},
		// Out-of-range access never matches.
		{"tcp[5000] = 0", syn, false},
	}
	for _, c := range cases {
		f, err := Parse(c.expr)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.expr, err)
			continue
		}
		if got := f.Match(c.p); got != c.want {
			t.Errorf("Match(%q) = %v, want %v", c.expr, got, c.want)
		}
		if got := f.MatchInterpreted(c.p); got != c.want {
			t.Errorf("MatchInterpreted(%q) = %v, want %v", c.expr, got, c.want)
		}
		// The printed form must reparse with identical semantics.
		f2, err := Parse(f.String())
		if err != nil {
			t.Errorf("reparse of %q (%q): %v", c.expr, f.String(), err)
			continue
		}
		if f2.Match(c.p) != c.want {
			t.Errorf("reparse of %q changed semantics", c.expr)
		}
	}
}

func TestByteExprWrongProtocol(t *testing.T) {
	key := pkt.FlowKey{
		SrcIP: pkt.MustAddr("10.0.0.1"), DstIP: pkt.MustAddr("10.0.0.2"),
		SrcPort: 5353, DstPort: 53, Proto: pkt.ProtoUDP,
	}
	dns := udpFrameFor(t, pkt.UDPSpec{Key: key, Payload: []byte("q")})
	if MustParse("tcp[13] & 2 != 0").Match(dns) {
		t.Error("tcp[] matched a UDP packet")
	}
	if !MustParse("udp[2:2] = 53").Match(dns) {
		t.Error("udp[] destination port access failed")
	}
}

func TestByteExprParseErrors(t *testing.T) {
	bad := []string{
		"tcp[13]",       // no comparison
		"tcp[13 = 2",    // missing ]
		"tcp[] = 1",     // missing offset
		"tcp[1:3] = 1",  // unsupported width
		"tcp[13] & = 1", // missing mask value
		"tcp[13] = zzz", // bad value
		"icmp[0] = 8",   // unsupported layer
		"tcp[13] ~ 2",   // bad operator
		"tcp[-1] = 0",   // negative offset
	}
	for _, expr := range bad {
		if _, err := Parse(expr); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", expr)
		}
	}
}

func TestVLANPrimitive(t *testing.T) {
	key := pkt.FlowKey{
		SrcIP: pkt.MustAddr("10.0.0.1"), DstIP: pkt.MustAddr("10.0.0.2"),
		SrcPort: 1000, DstPort: 80, Proto: pkt.ProtoTCP,
	}
	plain := pkt.BuildTCP(pkt.TCPSpec{Key: key, Flags: pkt.FlagACK})
	tagged := pkt.WrapVLAN(plain, 42)
	var pp, tp pkt.Packet
	if err := pkt.Decode(plain, &pp); err != nil {
		t.Fatal(err)
	}
	if err := pkt.Decode(tagged, &tp); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		expr string
		p    *pkt.Packet
		want bool
	}{
		{"vlan", &tp, true},
		{"vlan", &pp, false},
		{"vlan 42", &tp, true},
		{"vlan 43", &tp, false},
		{"vlan 42 and tcp port 80", &tp, true},
		{"not vlan", &pp, true},
	}
	for _, c := range cases {
		f := MustParse(c.expr)
		if got := f.Match(c.p); got != c.want {
			t.Errorf("Match(%q) = %v, want %v", c.expr, got, c.want)
		}
		if got := f.MatchInterpreted(c.p); got != c.want {
			t.Errorf("MatchInterpreted(%q) = %v, want %v", c.expr, got, c.want)
		}
	}
	if _, err := Parse("vlan 5000"); err == nil {
		t.Error("vlan id out of range accepted")
	}
}
