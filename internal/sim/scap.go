package sim

import (
	"math/rand"

	"scap/internal/core"
	"scap/internal/event"
	"scap/internal/match"
	"scap/internal/mem"
	"scap/internal/nic"
	"scap/internal/pkt"
	"scap/internal/reassembly"
	"scap/internal/trace"
)

// AppKind selects the user-level application the workers run.
type AppKind uint8

const (
	// AppFlowStats consumes creation/termination events only (the §3.3.1
	// flow-export application; used with cutoff 0).
	AppFlowStats AppKind = iota
	// AppDelivery receives every chunk and only touches the bytes.
	AppDelivery
	// AppMatch runs Aho-Corasick over every delivered chunk (§3.3.2).
	AppMatch
)

// PrioritySetter assigns a PPL priority to new streams (Figure 9); nil
// leaves every stream at priority 0.
type PrioritySetter func(info *pkt.FlowKey) int

// ScapConfig describes one Scap run under the simulator.
type ScapConfig struct {
	Model          CostModel
	Engine         core.Config
	Workers        int
	Queues         int   // NIC queues; 0 = Model.Cores
	MemBytes       int64 // stream memory budget
	EventQCap      int
	Matcher        *match.Matcher // for AppMatch
	App            AppKind
	Priority       PrioritySetter
	BaseThresh     float64
	OverloadCutoff int64
}

// Metrics is the measured outcome of one simulated run, with fields for
// every series the paper's figures plot.
type Metrics struct {
	OfferedPackets uint64
	OfferedBytes   uint64
	ElapsedNs      int64

	// Loss accounting.
	DroppedRing       uint64 // NIC ring overflow (capture loss)
	DroppedPPL        uint64 // PPL sheds under memory pressure
	DroppedEvents     uint64 // chunks lost to a full event queue
	DroppedEventBytes uint64 // payload bytes in those chunks
	DroppedAtNIC      uint64 // FDIR drop filters (intentional, not loss)
	// AvgPayload is payload bytes per packet seen by the engines, used to
	// convert chunk losses to packet equivalents.
	AvgPayload float64

	// Work accounting.
	KernelBusyNs int64
	WorkerBusyNs int64
	CPUUser      float64 // busiest worker's utilization
	Softirq      float64 // kernel cycles over all-cores capacity

	DeliveredBytes uint64
	Matches        uint64
	MatchedFlows   int
	// FlowsWithData counts connections for which at least one chunk
	// reached the application — the complement of the paper's "lost
	// streams" metric (Figures 5c, 6c).
	FlowsWithData int

	StreamsCreated uint64 // directions
	StreamsLost    int    // connections never tracked or fully dropped

	// High/low priority split (Figure 9).
	DroppedHigh, DroppedLow uint64
	PktsHigh, PktsLow       uint64
}

// PacketLossFraction returns lost packets / offered, counting involuntary
// losses only: ring overflow, PPL sheds, and event-queue chunk losses
// converted to packet equivalents via the average payload size.
func (m *Metrics) PacketLossFraction() float64 {
	if m.OfferedPackets == 0 {
		return 0
	}
	lost := float64(m.DroppedRing + m.DroppedPPL)
	if m.AvgPayload > 0 {
		lost += float64(m.DroppedEventBytes) / m.AvgPayload
	} else {
		lost += float64(m.DroppedEvents)
	}
	if lost > float64(m.OfferedPackets) {
		lost = float64(m.OfferedPackets)
	}
	return lost / float64(m.OfferedPackets)
}

// ScapSim drives the real engine pipeline under virtual time.
type ScapSim struct {
	cfg     ScapConfig
	nicDev  *nic.NIC
	engines []*core.Engine
	queues  []*event.Queue
	// cores are the shared per-core timelines: queue q's kernel thread
	// runs on cores[q], worker w on cores[w] — collocated like Scap's
	// kernel/worker thread pairs.
	cores       []Server
	kernelBusy  []int64
	workerBusy  []int64
	workerCount int
	mm          *mem.Manager

	matchStates map[uint64]match.State
	matchedFlow map[uint64]bool
	dataFlows   map[pkt.FlowKey]struct{}
	met         Metrics
	lastTS      int64
	lastTimer   int64
}

// NewScapSim builds the pipeline.
func NewScapSim(cfg ScapConfig) *ScapSim {
	if cfg.Model.CoreHz == 0 {
		cfg.Model = DefaultCostModel()
	}
	if cfg.Queues <= 0 {
		cfg.Queues = cfg.Model.Cores
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MemBytes <= 0 {
		cfg.MemBytes = 1 << 30
	}
	if cfg.EventQCap <= 0 {
		cfg.EventQCap = 1 << 14
	}
	nCores := cfg.Queues
	if cfg.Workers > nCores {
		nCores = cfg.Workers
	}
	s := &ScapSim{
		cfg: cfg,
		nicDev: nic.New(nic.Config{
			Queues:         cfg.Queues,
			Defragment:     cfg.Engine.Mode == reassembly.ModeStrict,
			DynamicBalance: true,
		}),
		cores:       make([]Server, nCores),
		kernelBusy:  make([]int64, nCores),
		workerBusy:  make([]int64, nCores),
		workerCount: cfg.Workers,
		matchStates: make(map[uint64]match.State),
		matchedFlow: make(map[uint64]bool),
		dataFlows:   make(map[pkt.FlowKey]struct{}),
	}
	s.mm = mem.New(mem.Config{
		Size:           cfg.MemBytes,
		BaseThreshold:  cfg.BaseThresh,
		Priorities:     cfg.Engine.Priorities,
		OverloadCutoff: cfg.OverloadCutoff,
		BlockSize:      cfg.Engine.ArenaBlockSize(),
		Cores:          cfg.Queues,
	})
	rng := rand.New(rand.NewSource(12345))
	for q := 0; q < cfg.Queues; q++ {
		eq := event.NewQueue(cfg.EventQCap)
		s.queues = append(s.queues, eq)
		s.engines = append(s.engines, core.NewEngine(core.Options{
			Config: cfg.Engine,
			Mem:    s.mm,
			NIC:    s.nicDev,
			Queue:  eq,
			CoreID: q,
			Rand:   rng,
		}))
	}
	return s
}

// Run replays the source at the given rate and returns the metrics.
func (s *ScapSim) Run(src trace.Source, bitsPerSec float64) Metrics {
	frames, end := trace.Replay(src, bitsPerSec, func(frame []byte, ts int64) bool {
		s.met.OfferedBytes += uint64(len(frame))
		s.arrive(frame, ts)
		return true
	})
	s.met.OfferedPackets = frames
	s.finish(end)
	return s.met
}

// timerPeriod is how often (virtual ns) the kernel timer work runs, like
// the kernel module's periodic sweep.
const timerPeriod = int64(10e6)

// arrive processes one frame arrival at virtual time ts.
func (s *ScapSim) arrive(frame []byte, ts int64) {
	s.lastTS = ts
	// Let every stage catch up to the new arrival time first.
	if ts-s.lastTimer >= timerPeriod {
		s.lastTimer = ts
		s.drainKernels(ts)
	}
	s.drainWorkers(ts)

	q := s.nicDev.Receive(frame, ts)
	if q < 0 {
		return // dropped at NIC (filter, ring, or undecodable)
	}
	// Kernel thread for queue q picks the frame up when free.
	s.serveQueue(q, ts)
}

// serveQueue runs the kernel stage for everything currently in NIC queue q
// that the kernel server can start before blocking the simulation's
// causality (it may run ahead of ts; that just means backlog).
func (s *ScapSim) serveQueue(q int, now int64) {
	eng := s.engines[q]
	for {
		f, ok := s.nicDev.Poll(q)
		if !ok {
			return
		}
		before := eng.Stats()
		eng.HandleFrame(f.Data, f.TS)
		after := eng.Stats()
		stored := after.StoredBytes - before.StoredBytes
		cycles := s.cfg.Model.ScapPerPacket + s.cfg.Model.ScapPerByte*float64(stored)
		s.kernelBusy[q] += s.cores[q].Work(now, cycles, s.cfg.Model.CoreHz)
	}
}

func (s *ScapSim) drainKernels(ts int64) {
	// Periodic timer work: expiry, flush timeouts, filter deadlines.
	for _, eng := range s.engines {
		eng.CheckTimers(ts)
	}
}

// workerQueues lists the queues worker w polls (round-robin assignment
// when workers < queues).
func (s *ScapSim) workerQueues(w int) []int {
	var qs []int
	for q := w; q < len(s.queues); q += s.workerCount {
		qs = append(qs, q)
	}
	return qs
}

// drainWorkers lets each worker consume events until its virtual clock
// passes ts.
func (s *ScapSim) drainWorkers(ts int64) {
	for w := 0; w < s.workerCount; w++ {
		s.drainWorker(w, ts)
	}
}

func (s *ScapSim) drainWorker(w int, until int64) {
	srv := &s.cores[w]
	qs := s.workerQueues(w)
	for srv.FreeAt() <= until {
		progressed := false
		for _, q := range qs {
			ev, ok := s.queues[q].Poll()
			if !ok {
				continue
			}
			progressed = true
			cycles := s.consumeEvent(w, q, &ev)
			s.workerBusy[w] += srv.Work(max64(srv.FreeAt(), ev.Info.Stats.End), cycles, s.cfg.Model.CoreHz)
			if srv.FreeAt() > until {
				break
			}
		}
		if !progressed {
			return
		}
	}
}

// consumeEvent is the user-level application: it prices the callback and
// performs the real app work (matching), then releases chunk memory.
func (s *ScapSim) consumeEvent(w, q int, ev *event.Event) float64 {
	cycles := s.cfg.Model.EventPerChunk
	switch ev.Type {
	case event.Creation:
		if s.cfg.Priority != nil {
			if p := s.cfg.Priority(&ev.Info.Key); p != 0 {
				s.engines[q].Control(core.Ctrl{
					Op: core.OpSetPriority, Stream: ev.Stream, ID: ev.Info.ID, Value: int64(p),
				})
			}
		}
	case event.Data:
		s.met.DeliveredBytes += uint64(len(ev.Data))
		if len(ev.Data) > 0 {
			ck, _ := ev.Info.Key.Canonical()
			s.dataFlows[ck] = struct{}{}
		}
		switch s.cfg.App {
		case AppDelivery:
			cycles += s.cfg.Model.TouchPerByte * float64(len(ev.Data))
		case AppMatch:
			cycles += s.cfg.Model.MatchPerByte * float64(len(ev.Data))
			if s.cfg.Matcher != nil {
				st := s.matchStates[ev.Info.ID]
				st = s.cfg.Matcher.Resume(st, ev.Data, func(match.Match) bool {
					s.met.Matches++
					if !s.matchedFlow[ev.Info.ID] {
						s.matchedFlow[ev.Info.ID] = true
						s.met.MatchedFlows++
					}
					return true
				})
				s.matchStates[ev.Info.ID] = st
			}
		}
		if ev.Accounted > 0 {
			s.mm.Release(ev.Accounted)
		}
		// The simulator runs in virtual time on one goroutine, so the
		// engine-side free is safe here and keeps the block pool settled.
		s.mm.FreeBlock(q, ev.Block)
		if ev.Last {
			delete(s.matchStates, ev.Info.ID)
		}
	case event.Termination:
		// Per-priority loss split (Figure 9).
		if ev.Info.Priority > 0 {
			s.met.PktsHigh += ev.Info.Stats.Pkts
			s.met.DroppedHigh += ev.Info.Stats.DroppedPkts
		} else {
			s.met.PktsLow += ev.Info.Stats.Pkts
			s.met.DroppedLow += ev.Info.Stats.DroppedPkts
		}
		delete(s.matchStates, ev.Info.ID)
	}
	return cycles
}

// finish drains all queues and computes the final metrics.
func (s *ScapSim) finish(end int64) {
	for _, eng := range s.engines {
		eng.CheckTimers(end + int64(60e9))
		eng.Shutdown()
	}
	const horizon = int64(1) << 62
	s.drainWorkers(horizon)

	nicStats := s.nicDev.Stats()
	s.met.DroppedRing = nicStats.DroppedRing
	s.met.DroppedAtNIC = nicStats.DroppedFilter

	var kernelBusy int64
	for _, b := range s.kernelBusy {
		kernelBusy += b
	}
	s.met.KernelBusyNs = kernelBusy
	elapsed := end
	if elapsed <= 0 {
		elapsed = 1
	}
	s.met.ElapsedNs = elapsed
	s.met.Softirq = float64(kernelBusy) / (float64(elapsed) * float64(s.cfg.Model.Cores))
	var maxU float64
	var workerBusy int64
	for w := 0; w < s.workerCount; w++ {
		workerBusy += s.workerBusy[w]
		if u := utilization(s.workerBusy[w], elapsed); u > maxU {
			maxU = u
		}
	}
	s.met.WorkerBusyNs = workerBusy
	s.met.CPUUser = maxU

	var payload, packets uint64
	for _, eng := range s.engines {
		st := eng.Stats()
		s.met.DroppedPPL += st.PPLDroppedPkts
		s.met.DroppedEvents += st.EventsLost
		s.met.DroppedEventBytes += st.EventsLostBytes
		s.met.StreamsCreated += st.StreamsCreated
		payload += st.PayloadBytes
		packets += st.Packets
	}
	if packets > 0 {
		s.met.AvgPayload = float64(payload) / float64(packets)
	}
	s.met.FlowsWithData = len(s.dataFlows)
}

// Engines exposes the engines (for priority counters in Figure 9 runs).
func (s *ScapSim) Engines() []*core.Engine { return s.engines }

// Mem exposes the shared memory manager.
func (s *ScapSim) Mem() *mem.Manager { return s.mm }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
