package reassembly

import (
	"bytes"
	"math/rand"
	"testing"
)

// collector gathers emissions for assertions.
type collector struct {
	buf   []byte
	holes int
}

func (c *collector) emit(data []byte, hole bool) {
	if hole {
		c.holes++
	}
	c.buf = append(c.buf, data...)
}

func newFast() *Assembler { return New(Config{Mode: ModeFast}) }

func TestInOrderDelivery(t *testing.T) {
	a := newFast()
	a.Init(999) // first byte at seq 1000
	var c collector
	a.Segment(1000, []byte("hello "), c.emit)
	a.Segment(1006, []byte("world"), c.emit)
	if string(c.buf) != "hello world" || c.holes != 0 {
		t.Errorf("buf=%q holes=%d", c.buf, c.holes)
	}
	if a.NextSeq() != 1011 {
		t.Errorf("NextSeq = %d", a.NextSeq())
	}
	if s := a.Stats(); s.DeliveredBytes != 11 {
		t.Errorf("stats = %+v", s)
	}
}

func TestOutOfOrderReordering(t *testing.T) {
	a := newFast()
	a.Init(0)
	var c collector
	a.Segment(6, []byte("world"), c.emit) // ooo, buffered
	if len(c.buf) != 0 {
		t.Fatalf("premature delivery %q", c.buf)
	}
	a.Segment(1, []byte("hello"), c.emit)
	if string(c.buf) != "helloworld" || c.holes != 0 {
		t.Errorf("buf=%q holes=%d", c.buf, c.holes)
	}
	if s := a.Stats(); s.OutOfOrderSegs != 1 {
		t.Errorf("OutOfOrderSegs = %d", s.OutOfOrderSegs)
	}
}

func TestRetransmissionDiscarded(t *testing.T) {
	a := newFast()
	a.Init(0)
	var c collector
	a.Segment(1, []byte("abcde"), c.emit)
	a.Segment(1, []byte("abcde"), c.emit) // full retransmit
	a.Segment(3, []byte("cdefg"), c.emit) // partial: only "fg" is new
	if string(c.buf) != "abcdefg" {
		t.Errorf("buf=%q", c.buf)
	}
	if s := a.Stats(); s.DuplicateBytes != 8 {
		t.Errorf("DuplicateBytes = %d, want 8", s.DuplicateBytes)
	}
}

func TestSequenceWraparound(t *testing.T) {
	a := newFast()
	isn := uint32(0xffffff00)
	a.Init(isn)
	var c collector
	payload := bytes.Repeat([]byte("x"), 0x200)
	a.Segment(isn+1, payload, c.emit) // crosses 2^32
	a.Segment(isn+1+0x200, []byte("tail"), c.emit)
	if len(c.buf) != 0x204 {
		t.Errorf("delivered %d bytes, want %d", len(c.buf), 0x204)
	}
	if a.NextSeq() != isn+1+0x204 {
		t.Errorf("NextSeq = %#x", a.NextSeq())
	}
}

func TestFastModeWritesThroughHole(t *testing.T) {
	a := New(Config{Mode: ModeFast, MaxBufferedBytes: 16, MaxBufferedSegments: 2})
	a.Init(0)
	var c collector
	a.Segment(1, []byte("begin-"), c.emit)
	// Lost segment at seq 7..17; later data keeps arriving until the
	// buffer budget forces a write-through.
	a.Segment(17, []byte("after1-"), c.emit)
	a.Segment(24, []byte("after2-"), c.emit)
	a.Segment(31, []byte("after3-"), c.emit)
	if c.holes == 0 {
		t.Fatal("no hole reported despite budget overflow")
	}
	if !bytes.Contains(c.buf, []byte("after1-after2-")) {
		t.Errorf("post-hole data not contiguous: %q", c.buf)
	}
	if a.Flags()&FlagHole == 0 || a.Flags()&FlagBufferOverflow == 0 {
		t.Errorf("flags = %b", a.Flags())
	}
}

func TestStrictModeNeverSkips(t *testing.T) {
	a := New(Config{Mode: ModeStrict, MaxBufferedBytes: 16, MaxBufferedSegments: 2})
	a.Init(0)
	var c collector
	a.Segment(1, []byte("begin-"), c.emit)
	a.Segment(17, []byte("after1-"), c.emit)
	a.Segment(24, []byte("after2-"), c.emit)
	a.Segment(31, []byte("after3-"), c.emit) // exceeds budget, dropped
	if c.holes != 0 {
		t.Error("strict mode reported a hole")
	}
	if string(c.buf) != "begin-" {
		t.Errorf("delivered %q beyond the hole", c.buf)
	}
	if a.Stats().DroppedSegments == 0 {
		t.Error("no segments dropped despite overflow")
	}
	a.Flush(c.emit)
	if string(c.buf) != "begin-" {
		t.Errorf("strict flush delivered data: %q", c.buf)
	}
	if a.Flags()&FlagStrictDrop == 0 {
		t.Errorf("flags = %b", a.Flags())
	}
}

func TestFastFlushDeliversWithHoles(t *testing.T) {
	a := newFast()
	a.Init(0)
	var c collector
	a.Segment(1, []byte("one"), c.emit)
	a.Segment(10, []byte("two"), c.emit)
	a.Segment(20, []byte("three"), c.emit)
	a.Flush(c.emit)
	if string(c.buf) != "onetwothree" {
		t.Errorf("buf = %q", c.buf)
	}
	if c.holes != 2 {
		t.Errorf("holes = %d, want 2", c.holes)
	}
	if a.PendingBytes() != 0 {
		t.Errorf("pending = %d after flush", a.PendingBytes())
	}
}

func TestMidStreamAnchor(t *testing.T) {
	a := newFast() // no Init: capture started mid-connection
	var c collector
	a.Segment(5000, []byte("midstream"), c.emit)
	if string(c.buf) != "midstream" {
		t.Errorf("buf = %q", c.buf)
	}
}

// TestOverlapPolicies exercises the target-based matrix on the canonical
// case: buffered old data [10,20), then a new overlapping segment in three
// geometries (starting before, at, and after the old segment's start).
func TestOverlapPolicies(t *testing.T) {
	oldData := []byte("OOOOOOOOOO") // seq 10..20, buffered (delivery point at 1)
	cases := []struct {
		name     string
		policy   Policy
		newSeq   uint32
		newData  []byte
		wantWins string // which bytes survive in the overlap region
	}{
		{"first/before", PolicyFirst, 5, []byte("NNNNNNNNNN"), "old"}, // new [5,15)
		{"last/before", PolicyLast, 5, []byte("NNNNNNNNNN"), "new"},   // new [5,15)
		{"bsd/before", PolicyBSD, 5, []byte("NNNNNNNNNN"), "new"},     // starts before -> new wins
		{"bsd/same", PolicyBSD, 10, []byte("NNNNN"), "old"},           // same start -> old wins
		{"linux/same", PolicyLinux, 10, []byte("NNNNN"), "new"},       // same start -> new wins
		{"linux/after", PolicyLinux, 12, []byte("NNNNN"), "old"},      // starts inside -> old wins
		{"windows/before", PolicyWindows, 5, []byte("NNNNNNNNNN"), "new"},
		{"solaris/cover", PolicySolaris, 8, []byte("NNNNNNNNNNNNNN"), "new"}, // [8,22) covers [10,20)
		{"solaris/partial", PolicySolaris, 12, []byte("NNNNN"), "old"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := New(Config{Mode: ModeFast, Policy: tc.policy})
			a.Init(0) // delivery point 1
			var c collector
			a.Segment(10, oldData, c.emit) // buffered: hole at [1,10)
			a.Segment(tc.newSeq, tc.newData, c.emit)
			a.Segment(1, bytes.Repeat([]byte("-"), 9), c.emit) // fill [1,10), drain all
			a.Flush(c.emit)
			// Inspect the overlap region bytes in the final stream.
			lo := int(tc.newSeq)
			if lo < 10 {
				lo = 10
			}
			hi := int(tc.newSeq) + len(tc.newData)
			if hi > 20 {
				hi = 20
			}
			streamStart := 1 // seq of first byte in c.buf
			region := c.buf[lo-streamStart : hi-streamStart]
			wantByte := byte('O')
			if tc.wantWins == "new" {
				wantByte = 'N'
			}
			for i, b := range region {
				if b != wantByte {
					t.Fatalf("byte %d of overlap = %q, want %q (stream %q)", i, b, wantByte, c.buf)
				}
			}
		})
	}
}

// TestPermutationProperty: for any permutation of the segments of a stream
// (no loss), fast mode with any policy reproduces the original bytes,
// provided the buffer budget is not exceeded.
func TestPermutationProperty(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	orig := make([]byte, 4096)
	r.Read(orig)
	for trial := 0; trial < 60; trial++ {
		// Split into random segments.
		var segs []struct {
			seq  uint32
			data []byte
		}
		pos := 0
		for pos < len(orig) {
			n := 1 + r.Intn(600)
			if pos+n > len(orig) {
				n = len(orig) - pos
			}
			segs = append(segs, struct {
				seq  uint32
				data []byte
			}{uint32(pos + 1), orig[pos : pos+n]})
			pos += n
		}
		r.Shuffle(len(segs), func(i, j int) { segs[i], segs[j] = segs[j], segs[i] })
		policy := Policy(r.Intn(6))
		a := New(Config{Mode: ModeFast, Policy: policy})
		a.Init(0)
		var c collector
		for _, s := range segs {
			a.Segment(s.seq, s.data, c.emit)
		}
		a.Flush(c.emit)
		if !bytes.Equal(c.buf, orig) {
			t.Fatalf("trial %d (policy %v): reassembly mismatch (%d vs %d bytes)",
				trial, policy, len(c.buf), len(orig))
		}
		if c.holes != 0 {
			t.Fatalf("trial %d: unexpected holes", trial)
		}
	}
}

// TestRetransmitWithDifferentData is the Ptacek-Newsham evasion scenario:
// two copies of the same sequence range with different content must resolve
// per policy, deterministically.
func TestRetransmitWithDifferentData(t *testing.T) {
	for _, policy := range []Policy{PolicyFirst, PolicyLast} {
		a := New(Config{Mode: ModeFast, Policy: policy})
		a.Init(0)
		var c collector
		// Hold delivery back so the conflicting copies meet in the buffer.
		a.Segment(10, []byte("ATTACK"), c.emit)
		a.Segment(10, []byte("attack"), c.emit)
		a.Segment(1, bytes.Repeat([]byte("x"), 9), c.emit)
		a.Flush(c.emit)
		got := string(c.buf[9:])
		want := "ATTACK"
		if policy == PolicyLast {
			want = "attack"
		}
		if got != want {
			t.Errorf("policy %v: got %q want %q", policy, got, want)
		}
	}
}

func TestZeroLengthSegmentIgnored(t *testing.T) {
	a := newFast()
	a.Init(0)
	var c collector
	a.Segment(1, nil, c.emit)
	a.Segment(500, []byte{}, c.emit)
	if len(c.buf) != 0 || a.PendingBytes() != 0 {
		t.Error("zero-length segment had effect")
	}
}

func TestEmitSliceNotRetained(t *testing.T) {
	// The in-order fast path emits the caller's slice; mutating the source
	// afterwards must not corrupt buffered state (nothing is retained).
	a := newFast()
	a.Init(0)
	frame := []byte("abcdef")
	var got []byte
	a.Segment(1, frame, func(d []byte, _ bool) { got = append(got, d...) })
	frame[0] = 'Z'
	if string(got) != "abcdef" {
		t.Errorf("emitted data = %q", got)
	}
	// Out-of-order data must be copied: mutate after buffering.
	ooo := []byte("OUTOFORDER")
	a.Segment(100, ooo, func(d []byte, _ bool) {})
	for i := range ooo {
		ooo[i] = '!'
	}
	var c collector
	a.Flush(c.emit)
	if !bytes.Contains(c.buf, []byte("OUTOFORDER")) {
		t.Errorf("buffered segment was not copied: %q", c.buf)
	}
}

func BenchmarkInOrderSegments(b *testing.B) {
	a := newFast()
	a.Init(0)
	data := make([]byte, 1460)
	emit := func([]byte, bool) {}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	seq := uint32(1)
	for i := 0; i < b.N; i++ {
		a.Segment(seq, data, emit)
		seq += uint32(len(data))
	}
}

func BenchmarkReorderedSegments(b *testing.B) {
	data := make([]byte, 1460)
	emit := func([]byte, bool) {}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	a := New(Config{Mode: ModeFast})
	a.Init(0)
	seq := uint32(1)
	for i := 0; i < b.N; i += 2 {
		// Swap every pair: 2nd, 1st, 4th, 3rd, ...
		a.Segment(seq+uint32(len(data)), data, emit)
		a.Segment(seq, data, emit)
		seq += 2 * uint32(len(data))
	}
}
