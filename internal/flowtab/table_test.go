package flowtab

import (
	"math/rand"
	"net/netip"
	"testing"

	"scap/internal/pkt"
)

func tk(sp, dp uint16) pkt.FlowKey {
	return pkt.FlowKey{
		SrcIP: pkt.MustAddr("10.0.0.1"), DstIP: pkt.MustAddr("10.0.0.2"),
		SrcPort: sp, DstPort: dp, Proto: pkt.ProtoTCP,
	}
}

func newT() *Table { return NewTable(rand.New(rand.NewSource(1))) }

func TestGetOrCreateAndLookup(t *testing.T) {
	tab := newT()
	k := tk(1000, 80)
	s, created := tab.GetOrCreate(k, 100)
	if !created || s == nil {
		t.Fatal("first GetOrCreate should create")
	}
	if s.Dir != pkt.DirClient || s.Status != StatusActive || s.Stats.Start != 100 {
		t.Errorf("new stream = %+v", s)
	}
	s2, created := tab.GetOrCreate(k, 200)
	if created || s2 != s {
		t.Error("second GetOrCreate should find the same record")
	}
	if s.LastAccess() != 200 {
		t.Errorf("lastAccess = %d", s.LastAccess())
	}
	if tab.Lookup(tk(1000, 81)) != nil {
		t.Error("lookup of unknown key succeeded")
	}
}

func TestOppositeDirectionLinking(t *testing.T) {
	tab := newT()
	k := tk(1000, 80)
	c, _ := tab.GetOrCreate(k, 1)
	srv, created := tab.GetOrCreate(k.Reverse(), 2)
	if !created {
		t.Fatal("reverse direction should be a distinct record")
	}
	if c.Opposite != srv || srv.Opposite != c {
		t.Error("directions not cross-linked")
	}
	if srv.Dir != pkt.DirServer {
		t.Errorf("server dir = %v", srv.Dir)
	}
	if c.ID == srv.ID {
		t.Error("directions share an ID")
	}
	tab.Remove(c)
	if srv.Opposite != nil {
		t.Error("removing one direction left a dangling Opposite")
	}
}

func TestLRUExpiry(t *testing.T) {
	tab := newT()
	for i := 0; i < 10; i++ {
		tab.GetOrCreate(tk(uint16(1000+i), 80), int64(i))
	}
	// Touch stream 0 so it becomes the freshest.
	tab.Touch(tab.Lookup(tk(1000, 80)), 100)
	var expired []*Stream
	n := tab.ExpireBefore(5, func(s *Stream) { expired = append(expired, s) })
	if n != 4 { // streams created at t=1..4 (stream 0 was touched at 100)
		t.Fatalf("expired %d, want 4", n)
	}
	for _, s := range expired {
		if s.Status != StatusTimedOut {
			t.Errorf("expired stream status = %v", s.Status)
		}
		if s.Key == tk(1000, 80) {
			t.Error("freshly touched stream expired")
		}
	}
	if tab.Len() != 6 {
		t.Errorf("len = %d, want 6", tab.Len())
	}
}

func TestExpirySweepStopsAtFreshStream(t *testing.T) {
	tab := newT()
	for i := 0; i < 1000; i++ {
		tab.GetOrCreate(tk(uint16(i), 80), int64(i))
	}
	// Nothing is older than deadline 0: sweep must do no work and remove
	// nothing.
	if n := tab.ExpireBefore(0, nil); n != 0 {
		t.Errorf("expired %d, want 0", n)
	}
}

// TestExpiryNeverKillsFresh is the property test for the access-list sweep:
// after arbitrary interleaved creates and touches, no stream accessed within
// the timeout window is ever expired.
func TestExpiryNeverKillsFresh(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tab := newT()
	const timeout = 50
	now := int64(0)
	live := map[pkt.FlowKey]bool{}
	for step := 0; step < 5000; step++ {
		now++
		switch r.Intn(3) {
		case 0, 1:
			k := tk(uint16(r.Intn(500)), 80)
			tab.GetOrCreate(k, now)
			live[k] = true
		case 2:
			tab.ExpireBefore(now-timeout, func(s *Stream) {
				if now-s.LastAccess() <= timeout {
					t.Fatalf("expired stream %v accessed %d ago", s.Key, now-s.LastAccess())
				}
				delete(live, s.Key)
			})
		}
	}
	// Every live key must still be resident.
	for k := range live {
		if s := tab.Lookup(k); s != nil && now-s.LastAccess() <= timeout {
			continue
		} else if s == nil {
			// Expired legitimately only if stale.
			continue
		}
	}
}

func TestEvictOldest(t *testing.T) {
	tab := newT()
	for i := 0; i < 5; i++ {
		tab.GetOrCreate(tk(uint16(2000+i), 80), int64(i))
	}
	ev := tab.EvictOldest(nil)
	if ev == nil || ev.Key != tk(2000, 80) {
		t.Fatalf("evicted %v, want oldest", ev)
	}
	if ev.Status != StatusEvicted {
		t.Errorf("status = %v", ev.Status)
	}
	if tab.Evicted != 1 || tab.Len() != 4 {
		t.Errorf("Evicted=%d Len=%d", tab.Evicted, tab.Len())
	}
}

func TestDynamicGrowthMillionsOfStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("million-stream growth run; skipped in -short runs")
	}
	if testing.Short() {
		t.Skip("large table test")
	}
	tab := newT()
	const n = 1 << 20 // ~1M directions; Fig 5's point is there is no cap
	mk := func(i int) pkt.FlowKey {
		return pkt.FlowKey{
			SrcIP:   netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}),
			DstIP:   pkt.MustAddr("10.255.0.2"),
			SrcPort: uint16(i), DstPort: 80, Proto: pkt.ProtoTCP,
		}
	}
	for i := 0; i < n; i++ {
		tab.GetOrCreate(mk(i), int64(i))
	}
	if tab.Len() != n {
		t.Fatalf("len = %d, want %d", tab.Len(), n)
	}
	// All streams remain findable (no silent cap).
	if tab.Lookup(mk(1)) == nil {
		t.Error("early stream lost after growth")
	}
}

func TestRecycleReuse(t *testing.T) {
	tab := newT()
	s, _ := tab.GetOrCreate(tk(1, 2), 0)
	s.User = "cookie"
	tab.Remove(s)
	tab.Recycle(s)
	s2, _ := tab.GetOrCreate(tk(3, 4), 0)
	if s2 != s {
		t.Log("allocator did not reuse record (allowed, but pool expected)")
	}
	if s2.User != nil {
		t.Error("recycled record leaked state")
	}
}

func TestWalkOrder(t *testing.T) {
	tab := newT()
	for i := 0; i < 5; i++ {
		tab.GetOrCreate(tk(uint16(100+i), 80), int64(i))
	}
	var ports []uint16
	tab.Walk(func(s *Stream) bool {
		ports = append(ports, s.Key.SrcPort)
		return true
	})
	// Most recent first.
	for i := 0; i < 5; i++ {
		if ports[i] != uint16(104-i) {
			t.Fatalf("walk order = %v", ports)
		}
	}
}

func TestRandomizedSeedDiffers(t *testing.T) {
	t1 := NewTable(rand.New(rand.NewSource(1)))
	t2 := NewTable(rand.New(rand.NewSource(2)))
	if t1.seed == t2.seed {
		t.Error("different RNGs produced identical seeds")
	}
}

func TestEstimatedBytesFromFIN(t *testing.T) {
	tab := newT()
	s, _ := tab.GetOrCreate(tk(1, 2), 0)
	s.Stats.PayloadBytes = 100
	if s.EstimatedBytes() != 100 {
		t.Errorf("EstimatedBytes = %d", s.EstimatedBytes())
	}
}
