package core

import (
	"bytes"
	"testing"

	"scap/internal/event"
	"scap/internal/flowtab"
	"scap/internal/nic"
	"scap/internal/pkt"
)

func udpKey(i int) pkt.FlowKey {
	return pkt.FlowKey{
		SrcIP: pkt.MustAddr("10.1.0.1"), DstIP: pkt.MustAddr("10.1.0.2"),
		SrcPort: uint16(20000 + i), DstPort: 9000, Proto: pkt.ProtoUDP,
	}
}

// TestSketchSuppressesBeyondCutoff drives many UDP flows past a byte cutoff
// and verifies the million-flow contract end to end: every flow's record is
// retired at its cutoff, later packets are answered from the sketch alone
// (no record, drop-attributed to "sketch"), and the table's occupancy stays
// near zero while the sketch's observed totals keep counting.
func TestSketchSuppressesBeyondCutoff(t *testing.T) {
	const (
		flows     = 50
		pktBytes  = 500
		pktsPer   = 6
		cutoff    = 1000 // two packets captured, the rest suppressed
		wantSuppr = flows * 3
	)
	h := newHarness(Config{
		Cutoff: cutoff,
		Sketch: SketchConfig{Enabled: true},
	})
	payload := bytes.Repeat([]byte("u"), pktBytes)
	for p := 0; p < pktsPer; p++ {
		for i := 0; i < flows; i++ {
			h.feed(pkt.BuildUDP(pkt.UDPSpec{Key: udpKey(i), Payload: payload}))
		}
	}
	h.e.CheckTimers(h.ts)
	h.drain()

	if n := h.e.Table().Len(); n != 0 {
		t.Errorf("table holds %d records, want 0 (all flows past cutoff)", n)
	}
	terms := h.byType(event.Termination)
	if len(terms) != flows {
		t.Fatalf("terminations = %d, want %d", len(terms), flows)
	}
	for _, ev := range terms {
		if ev.Info.Status != flowtab.StatusCutoff {
			t.Errorf("retired stream status = %v, want StatusCutoff", ev.Info.Status)
		}
	}
	st := h.e.Stats()
	if st.SketchSuppressedPkts != wantSuppr {
		t.Errorf("suppressed pkts = %d, want %d", st.SketchSuppressedPkts, wantSuppr)
	}
	if st.SketchSuppressedBytes != wantSuppr*pktBytes {
		t.Errorf("suppressed bytes = %d, want %d", st.SketchSuppressedBytes, wantSuppr*pktBytes)
	}
	if st.SketchObservedPkts != flows*pktsPer {
		t.Errorf("observed pkts = %d, want %d", st.SketchObservedPkts, flows*pktsPer)
	}
	// Every flow crossed the cutoff, so the sketch's heavy tracker (capped
	// at the default top-k) must be populated.
	if h.e.Sketch().HeavyCount() == 0 {
		t.Error("no heavy-flow entries after elephants crossed the cutoff")
	}
	// Captured data stops exactly at the cutoff per flow.
	if want := uint64(flows * cutoff); st.StoredBytes != want {
		t.Errorf("stored bytes = %d, want %d", st.StoredBytes, want)
	}
}

// TestSketchRetirementHandsFiltersToSketch verifies the FDIR hand-off: a TCP
// stream reaches its cutoff, installs NIC drop filters, and is retired — the
// filters survive the record, and when they expire the sketch's heavy entry
// re-nominates the still-untracked flow through installSketchFDIR.
func TestSketchRetirementHandsFiltersToSketch(t *testing.T) {
	dev := nic.New(nic.Config{Queues: 1})
	h := newHarnessOpts(Options{
		Config: Config{
			Cutoff:            10,
			UseFDIR:           true,
			InactivityTimeout: 1e9,
			Sketch:            SketchConfig{Enabled: true},
		},
		NIC: dev,
	})
	ss := newSession(42000, 80)
	clientKey := ss.key
	h.feed(ss.syn(), ss.synack(), ss.data(bytes.Repeat([]byte("y"), 50)))

	// Cutoff reached: the client record is retired but its filter pair must
	// stay installed, now owned by the sketch's heavy entry.
	if s := h.e.Table().Lookup(clientKey); s != nil {
		t.Fatal("client record still tracked after cutoff retirement")
	}
	if p, _ := dev.FilterCount(); p != 2 {
		t.Fatalf("filters after retirement = %d, want 2", p)
	}
	if st := h.e.Stats(); st.FDIRInstalled != 1 {
		t.Errorf("FDIRInstalled = %d, want 1", st.FDIRInstalled)
	}

	// More data for the suppressed flow is answered by the sketch, without
	// resurrecting a record.
	h.feed(ss.data([]byte("more-data")))
	if s := h.e.Table().Lookup(clientKey); s != nil {
		t.Error("suppressed packet resurrected a record")
	}
	if st := h.e.Stats(); st.SketchSuppressedPkts == 0 {
		t.Error("no sketch suppression counted")
	}

	// Let the filter deadline pass: expireFilters removes the pair and
	// clears the sketch's FDIR mark; installSketchFDIR then re-nominates
	// the still-heavy, still-untracked flow in the same timer call.
	h.ts += 2e9
	h.e.CheckTimers(h.ts)
	if p, _ := dev.FilterCount(); p != 2 {
		t.Fatalf("filters after sketch re-nomination = %d, want 2", p)
	}
	if st := h.e.Stats(); st.FDIRInstalled != 2 {
		t.Errorf("FDIRInstalled = %d, want 2 (record install + sketch install)", st.FDIRInstalled)
	}

	// The published snapshot carries the heavy entry with its FDIR mark.
	snap := h.e.Sketch().Snapshot()
	marked := false
	for _, hf := range snap.Heavies {
		if hf.Key == clientKey && hf.FDIR {
			marked = true
		}
	}
	if !marked {
		t.Error("snapshot missing FDIR-marked heavy entry for the retired flow")
	}
}

// TestSketchAnswersFilteredFlows: with the sketch in front, flows rejected
// by the socket filter never get a record at all (previously each one cost a
// stream record just to remember the rejection).
func TestSketchAnswersFilteredFlows(t *testing.T) {
	h := newHarnessOpts(Options{Config: Config{
		Cutoff: CutoffUnlimited,
		Filter: mustFilter(t, "port 80"),
		Sketch: SketchConfig{Enabled: true},
	}})
	ss80 := newSession(42010, 80)
	ss443 := newSession(42011, 443)
	h.feed(ss80.syn(), ss80.synack(), ss80.data([]byte("http")))
	h.feed(ss443.syn(), ss443.synack(), ss443.data([]byte("tls!")))

	if n := len(h.byType(event.Creation)); n != 2 {
		t.Errorf("creations = %d, want 2 (only the port-80 pair)", n)
	}
	if n := h.e.Table().Len(); n != 2 {
		t.Errorf("table len = %d, want 2 — filtered flows must not be tracked", n)
	}
	st := h.e.Stats()
	if st.FilterIgnoredPkts != 3 {
		t.Errorf("filter-ignored pkts = %d, want 3", st.FilterIgnoredPkts)
	}
	// The kept pair still delivers its data on termination.
	id := h.byType(event.Creation)[0].Info.ID
	h.feed(ss80.fin(), ss80.srvFin())
	if string(h.dataFor(id)) != "http" {
		t.Error("port-80 stream data lost")
	}
}

// TestSketchKeepsHighPriorityRecords: flows above SuppressMaxPriority must
// keep their records past the cutoff (PPL protection extends to record
// retention).
func TestSketchKeepsHighPriorityRecords(t *testing.T) {
	h := newHarnessOpts(Options{Config: Config{
		Cutoff:     8,
		Priorities: 2,
		PriorityClasses: []PriorityClass{
			{Filter: mustFilter(t, "port 443"), Priority: 1},
		},
		Sketch: SketchConfig{Enabled: true, SuppressMaxPriority: 0},
	}})
	ssLow := newSession(42020, 80)
	ssHigh := newSession(42021, 443)
	for _, ss := range []*session{ssLow, ssHigh} {
		h.feed(ss.syn(), ss.synack())
		h.feed(ss.data(bytes.Repeat([]byte("z"), 40)))
		h.feed(ss.data(bytes.Repeat([]byte("z"), 40)))
	}
	if s := h.e.Table().Lookup(ssLow.key); s != nil {
		t.Error("low-priority flow kept its record past the cutoff")
	}
	s := h.e.Table().Lookup(ssHigh.key)
	if s == nil {
		t.Fatal("high-priority flow lost its record")
	}
	if s.Status != flowtab.StatusCutoff {
		t.Errorf("high-priority flow status = %v, want StatusCutoff", s.Status)
	}
	// Its packets keep updating the record (stats survive past cutoff):
	// SYN + both data packets.
	if s.Stats.Pkts != 3 {
		t.Errorf("high-priority stats stopped: %d pkts, want 3", s.Stats.Pkts)
	}
}

// TestSketchDisabledUnchanged pins the default path: without the sketch the
// engine tracks every flow, including beyond-cutoff and filtered ones.
func TestSketchDisabledUnchanged(t *testing.T) {
	h := newHarness(Config{Cutoff: 4})
	ss := newSession(42030, 80)
	h.feed(ss.syn(), ss.synack())
	h.feed(ss.data(bytes.Repeat([]byte("q"), 100)))
	h.feed(ss.data(bytes.Repeat([]byte("q"), 100)))
	if s := h.e.Table().Lookup(ss.key); s == nil {
		t.Fatal("record retired with sketch disabled")
	}
	if st := h.e.Stats(); st.SketchSuppressedPkts != 0 || st.SketchObservedPkts != 0 {
		t.Errorf("sketch counters moved while disabled: %+v", st)
	}
	if h.e.Sketch() != nil {
		t.Error("Sketch() non-nil while disabled")
	}
}
