package core

import (
	"fmt"

	"scap/internal/metrics"
)

// Metrics bundles the engine-side instruments of one capture socket. A
// single Metrics is shared by every engine; each engine binds its own core's
// cells once in NewEngine, so per-packet accounting stays a single atomic
// add on a core-local cache line while the registry serves totals, per-core
// breakdowns, and windowed rates to any reader.
type Metrics struct {
	reg *metrics.Registry

	frames       *metrics.Counter
	decodeErrors *metrics.Counter
	fragsHeld    *metrics.Counter
	fragsDropped *metrics.Counter
	packets      *metrics.Counter
	payloadBytes *metrics.Counter
	storedBytes  *metrics.Counter

	filterIgnoredPkts *metrics.Counter
	cutoffPkts        *metrics.Counter
	cutoffBytes       *metrics.Counter
	pplDroppedPkts    *metrics.Counter
	pplDroppedBytes   *metrics.Counter
	eventsLost        *metrics.Counter
	eventsLostBytes   *metrics.Counter
	arenaExhausted    *metrics.Counter

	streamsCreated *metrics.Counter
	streamsClosed  *metrics.Counter
	streamsExpired *metrics.Counter
	streamsEvicted *metrics.Counter

	asmDuplicateBytes *metrics.Counter
	asmDeliveredBytes *metrics.Counter
	asmHolesSkipped   *metrics.Counter
	asmOutOfOrder     *metrics.Counter
	asmDroppedSegs    *metrics.Counter

	fdirInstalled *metrics.Counter
	fdirRemoved   *metrics.Counter

	// Flow-table cost counters (probe work, sweep work) and sketch
	// front-end counters; the owning engine copies the table's plain
	// counters into these cells from its timer path, never per packet.
	flowtabLookups *metrics.Counter
	flowtabProbes  *metrics.Counter
	flowtabSwept   *metrics.Counter
	flowtabGrows   *metrics.Counter

	sketchObservedPkts    *metrics.Counter
	sketchObservedBytes   *metrics.Counter
	sketchSuppressedPkts  *metrics.Counter
	sketchSuppressedBytes *metrics.Counter

	// Per-core occupancy gauges, Set by each owning engine from its timer
	// path (index = core).
	flowtabOccupancy  []*metrics.Gauge
	flowtabCapacity   []*metrics.Gauge
	flowtabTombstones []*metrics.Gauge
	sketchHeavies     []*metrics.Gauge

	// eventBatch and chunkBytes are observed at flush/delivery time (per
	// burst and per chunk, never per packet).
	eventBatch *metrics.Histogram
	chunkBytes *metrics.Histogram

	// stageIngest and stageRing are the kernel-side stage-latency
	// histograms: capture-clock nanoseconds from NIC ingest stamp to engine
	// pickup, and from engine batch entry to event-ring publish.
	stageIngest *metrics.Histogram
	stageRing   *metrics.Histogram

	events *metrics.EventLog
	flight *metrics.FlightRecorder
}

// NewMetrics registers the engine instrument set in reg. Call it once per
// socket, at setup time; it panics if reg already holds these names.
func NewMetrics(reg *metrics.Registry) *Metrics {
	d := func(name, help, unit, paper string) metrics.Desc {
		return metrics.Desc{Name: name, Help: help, Unit: unit, Paper: paper}
	}
	// drop tags a counter into the drops{cause} attribution family.
	drop := func(name, help, unit, paper, cause string) metrics.Desc {
		return metrics.Desc{Name: name, Help: help, Unit: unit, Paper: paper, Family: "drops", Cause: cause}
	}
	m := &Metrics{reg: reg}
	m.frames = reg.NewCounter(d("frames_total", "frames handled by the kernel path", "frames", ""))
	m.decodeErrors = reg.NewCounter(d("decode_errors_total", "undecodable frames", "frames", ""))
	m.fragsHeld = reg.NewCounter(d("frags_held_total", "IP fragments absorbed by the defragmenter", "frames", "§2.3 strict mode"))
	m.fragsDropped = reg.NewCounter(d("frags_dropped_total", "IP fragments dropped (fast mode)", "frames", "§2.3 fast mode"))
	m.packets = reg.NewCounter(d("packets_total", "packets processed by the engines", "packets", "Fig. 7 processed packets"))
	m.payloadBytes = reg.NewCounter(d("payload_bytes_total", "transport payload seen", "bytes", ""))
	m.storedBytes = reg.NewCounter(d("stored_bytes_total", "payload written into stream memory", "bytes", "§4 cost model stored bytes"))
	m.filterIgnoredPkts = reg.NewCounter(drop("filter_ignored_pkts_total", "packets of streams rejected by the BPF filter", "packets", "Table 1 scap_set_filter", "filter"))
	m.cutoffPkts = reg.NewCounter(drop("cutoff_pkts_total", "packets discarded beyond stream cutoffs", "packets", "Fig. 8 cutoff savings", "cutoff"))
	m.cutoffBytes = reg.NewCounter(d("cutoff_bytes_total", "bytes discarded beyond stream cutoffs", "bytes", "Fig. 8 cutoff savings"))
	m.pplDroppedPkts = reg.NewCounter(drop("ppl_dropped_pkts_total", "packets shed by prioritized packet loss", "packets", "Fig. 9 PPL drops", "ppl"))
	m.pplDroppedBytes = reg.NewCounter(d("ppl_dropped_bytes_total", "bytes shed by prioritized packet loss", "bytes", "Fig. 9 PPL drops"))
	m.eventsLost = reg.NewCounter(drop("events_lost_total", "events lost to full event rings", "events", "", "event_ring"))
	m.eventsLostBytes = reg.NewCounter(d("events_lost_bytes_total", "chunk bytes lost with dropped events", "bytes", ""))
	m.arenaExhausted = reg.NewCounter(drop("arena_exhausted_total", "chunks diverted to transient heap buffers because no arena block was free", "chunks", "§2.2 memory blocks", "arena_exhausted"))
	m.streamsCreated = reg.NewCounter(d("streams_created_total", "stream directions tracked", "streams", "Table 1 scap_dispatch_creation"))
	m.streamsClosed = reg.NewCounter(d("streams_closed_total", "streams terminated by FIN/RST", "streams", ""))
	m.streamsExpired = reg.NewCounter(d("streams_expired_total", "streams expired by inactivity", "streams", "§5.2 expiry sweep"))
	m.streamsEvicted = reg.NewCounter(d("streams_evicted_total", "streams evicted under table pressure", "streams", ""))
	m.asmDuplicateBytes = reg.NewCounter(d("asm_duplicate_bytes_total", "retransmitted bytes the assembler discarded", "bytes", ""))
	m.asmDeliveredBytes = reg.NewCounter(d("asm_delivered_bytes_total", "bytes the assembler delivered in order", "bytes", ""))
	m.asmHolesSkipped = reg.NewCounter(d("asm_holes_skipped_total", "sequence holes skipped (fast mode)", "holes", "§2.3 fast mode"))
	m.asmOutOfOrder = reg.NewCounter(d("asm_out_of_order_total", "out-of-order segments buffered", "segments", ""))
	m.asmDroppedSegs = reg.NewCounter(d("asm_dropped_segs_total", "segments the assembler dropped", "segments", ""))
	m.fdirInstalled = reg.NewCounter(d("fdir_installed_total", "NIC drop-filter installs for cutoff streams", "filters", "§5.5 subzero copy"))
	m.fdirRemoved = reg.NewCounter(d("fdir_removed_total", "NIC drop-filter removals", "filters", "§5.5 subzero copy"))
	m.flowtabLookups = reg.NewCounter(d("flowtab_lookups_total", "flow-table lookups (incl. create fast path)", "lookups", "§5.2 flow table"))
	m.flowtabProbes = reg.NewCounter(d("flowtab_probe_groups_total", "slot groups examined by lookups", "groups", "§5.2 flow table"))
	m.flowtabSwept = reg.NewCounter(d("flowtab_swept_groups_total", "slot groups visited by expiry sweeps", "groups", "§5.2 expiry sweep"))
	m.flowtabGrows = reg.NewCounter(d("flowtab_grows_total", "flow-table rehashes (growth or tombstone purge)", "rehashes", ""))
	m.sketchObservedPkts = reg.NewCounter(d("sketch_observed_pkts_total", "packets accounted by the sketch front-end", "packets", "§5.5 + PSketch"))
	m.sketchObservedBytes = reg.NewCounter(d("sketch_observed_bytes_total", "payload bytes accounted by the sketch front-end", "bytes", "§5.5 + PSketch"))
	m.sketchSuppressedPkts = reg.NewCounter(drop("sketch_suppressed_pkts_total", "packets answered by the sketch without a stream record", "packets", "§5.5 + PSketch", "sketch"))
	m.sketchSuppressedBytes = reg.NewCounter(d("sketch_suppressed_bytes_total", "payload bytes suppressed via the sketch", "bytes", "§5.5 + PSketch"))
	for core := 0; core < reg.Cores(); core++ {
		m.flowtabOccupancy = append(m.flowtabOccupancy, reg.NewGauge(d(fmt.Sprintf("flowtab_occupancy_core%d", core), "tracked streams in this core's flow table", "streams", "")))
		m.flowtabCapacity = append(m.flowtabCapacity, reg.NewGauge(d(fmt.Sprintf("flowtab_capacity_core%d", core), "slot capacity of this core's flow table", "slots", "")))
		m.flowtabTombstones = append(m.flowtabTombstones, reg.NewGauge(d(fmt.Sprintf("flowtab_tombstones_core%d", core), "tombstoned slots awaiting rehash", "slots", "")))
		m.sketchHeavies = append(m.sketchHeavies, reg.NewGauge(d(fmt.Sprintf("sketch_heavies_core%d", core), "live heavy-flow entries in this core's sketch", "flows", "")))
	}
	m.eventBatch = reg.NewHistogram(d("event_batch_size", "events published to a ring per flush", "events", ""), 8)
	m.chunkBytes = reg.NewHistogram(d("chunk_bytes", "delivered chunk sizes", "bytes", "Table 1 scap_set_chunk_size"), 20)
	m.stageIngest = reg.NewHistogram(d("stage_ingest_engine_ns", "latency from NIC ingest stamp to kernel-goroutine pickup", "ns", ""), stageMaxPow)
	m.stageRing = reg.NewHistogram(d("stage_engine_ring_ns", "latency from kernel-goroutine batch entry to event-ring publish", "ns", ""), stageMaxPow)
	m.events = reg.Events()
	m.flight = reg.Flight()
	return m
}

// stageMaxPow bounds the stage-latency histograms: 2^38 ns ≈ 275 s, far past
// any plausible pipeline latency, so the overflow bucket stays empty in
// practice while the rows remain a few hundred bytes per core.
const stageMaxPow = 38

// Registry returns the registry the instruments live in.
func (m *Metrics) Registry() *metrics.Registry { return m.reg }

// cells is one engine's bound view of the per-core counters: exactly the
// old private atomic counter block, now living in the registry's slab for
// this core. The owning kernel goroutine is the only writer.
type cells struct {
	frames       *metrics.Cell
	decodeErrors *metrics.Cell
	fragsHeld    *metrics.Cell
	fragsDropped *metrics.Cell
	packets      *metrics.Cell
	payloadBytes *metrics.Cell
	storedBytes  *metrics.Cell

	filterIgnoredPkts *metrics.Cell
	cutoffPkts        *metrics.Cell
	cutoffBytes       *metrics.Cell
	pplDroppedPkts    *metrics.Cell
	pplDroppedBytes   *metrics.Cell
	eventsLost        *metrics.Cell
	eventsLostBytes   *metrics.Cell
	arenaExhausted    *metrics.Cell

	streamsCreated *metrics.Cell
	streamsClosed  *metrics.Cell
	streamsExpired *metrics.Cell
	streamsEvicted *metrics.Cell

	asmDuplicateBytes *metrics.Cell
	asmDeliveredBytes *metrics.Cell
	asmHolesSkipped   *metrics.Cell
	asmOutOfOrder     *metrics.Cell
	asmDroppedSegs    *metrics.Cell

	fdirInstalled *metrics.Cell
	fdirRemoved   *metrics.Cell

	flowtabLookups *metrics.Cell
	flowtabProbes  *metrics.Cell
	flowtabSwept   *metrics.Cell
	flowtabGrows   *metrics.Cell

	sketchObservedPkts    *metrics.Cell
	sketchObservedBytes   *metrics.Cell
	sketchSuppressedPkts  *metrics.Cell
	sketchSuppressedBytes *metrics.Cell

	// This core's occupancy gauges (indexed from the Metrics slices).
	flowtabOccupancy  *metrics.Gauge
	flowtabCapacity   *metrics.Gauge
	flowtabTombstones *metrics.Gauge
	sketchHeavies     *metrics.Gauge
}

// bind resolves the engine's cells for one core. Registration-time only.
func (m *Metrics) bind(core int) cells {
	return cells{
		frames:       m.frames.Cell(core),
		decodeErrors: m.decodeErrors.Cell(core),
		fragsHeld:    m.fragsHeld.Cell(core),
		fragsDropped: m.fragsDropped.Cell(core),
		packets:      m.packets.Cell(core),
		payloadBytes: m.payloadBytes.Cell(core),
		storedBytes:  m.storedBytes.Cell(core),

		filterIgnoredPkts: m.filterIgnoredPkts.Cell(core),
		cutoffPkts:        m.cutoffPkts.Cell(core),
		cutoffBytes:       m.cutoffBytes.Cell(core),
		pplDroppedPkts:    m.pplDroppedPkts.Cell(core),
		pplDroppedBytes:   m.pplDroppedBytes.Cell(core),
		eventsLost:        m.eventsLost.Cell(core),
		eventsLostBytes:   m.eventsLostBytes.Cell(core),
		arenaExhausted:    m.arenaExhausted.Cell(core),

		streamsCreated: m.streamsCreated.Cell(core),
		streamsClosed:  m.streamsClosed.Cell(core),
		streamsExpired: m.streamsExpired.Cell(core),
		streamsEvicted: m.streamsEvicted.Cell(core),

		asmDuplicateBytes: m.asmDuplicateBytes.Cell(core),
		asmDeliveredBytes: m.asmDeliveredBytes.Cell(core),
		asmHolesSkipped:   m.asmHolesSkipped.Cell(core),
		asmOutOfOrder:     m.asmOutOfOrder.Cell(core),
		asmDroppedSegs:    m.asmDroppedSegs.Cell(core),

		fdirInstalled: m.fdirInstalled.Cell(core),
		fdirRemoved:   m.fdirRemoved.Cell(core),

		flowtabLookups: m.flowtabLookups.Cell(core),
		flowtabProbes:  m.flowtabProbes.Cell(core),
		flowtabSwept:   m.flowtabSwept.Cell(core),
		flowtabGrows:   m.flowtabGrows.Cell(core),

		sketchObservedPkts:    m.sketchObservedPkts.Cell(core),
		sketchObservedBytes:   m.sketchObservedBytes.Cell(core),
		sketchSuppressedPkts:  m.sketchSuppressedPkts.Cell(core),
		sketchSuppressedBytes: m.sketchSuppressedBytes.Cell(core),

		flowtabOccupancy:  m.flowtabOccupancy[core],
		flowtabCapacity:   m.flowtabCapacity[core],
		flowtabTombstones: m.flowtabTombstones[core],
		sketchHeavies:     m.sketchHeavies[core],
	}
}
