package nic

import (
	"errors"
	"fmt"

	"scap/internal/pkt"
)

// FilterAction is what happens to a packet matching an FDIR filter.
type FilterAction uint8

const (
	// ActionDrop discards the packet at the NIC: it is never written to
	// host memory (subzero copy).
	ActionDrop FilterAction = iota
	// ActionQueue steers the packet to a specific receive queue,
	// overriding RSS (used for dynamic load balancing).
	ActionQueue
)

// FlexMatch matches a big-endian 16-bit value at a byte offset within the
// first 64 bytes of the frame — the 82599's "flexible 2-byte tuple". Scap's
// modified driver points it at the TCP data-offset/flags bytes so that
// pure-ACK and ACK|PSH data packets can be dropped while RST/FIN packets
// still reach the host for stream termination.
type FlexMatch struct {
	Offset int    // byte offset within the frame, must be <= 62
	Value  uint16 // value to compare
	Mask   uint16 // 0 means exact match on all 16 bits
}

// TCPFlagsFlexOffset is the offset of the TCP data-offset/flags 2-byte
// tuple for an IPv4 packet without IP options.
const TCPFlagsFlexOffset = pkt.EthernetHeaderLen + pkt.IPv4MinHeaderLen + 12

// FlexOnlyFlags returns the FlexMatch for "TCP packets whose header is 20
// bytes and whose flag byte equals flags" — the pair Scap installs per
// stream uses flags=ACK and flags=ACK|PSH.
func FlexOnlyFlags(flags uint8) FlexMatch {
	return FlexMatch{
		Offset: TCPFlagsFlexOffset,
		Value:  uint16(pkt.TCPMinHeaderLen/4)<<12 | uint16(flags),
	}
}

func (f FlexMatch) matches(frame []byte) bool {
	if f.Offset == 0 && f.Value == 0 && f.Mask == 0 {
		return true // zero FlexMatch means "no flex constraint"
	}
	if f.Offset < 0 || f.Offset+2 > len(frame) || f.Offset > 62 {
		return false
	}
	v := uint16(frame[f.Offset])<<8 | uint16(frame[f.Offset+1])
	mask := f.Mask
	if mask == 0 {
		mask = 0xffff
	}
	return v&mask == f.Value&mask
}

// FilterSpec describes one flow-director filter. Perfect filters match the
// exact 5-tuple; signature filters match a hash of it (and can therefore
// collide, like the hardware's hash-based table).
type FilterSpec struct {
	Key       pkt.FlowKey
	Flex      FlexMatch
	Action    FilterAction
	Queue     int   // destination for ActionQueue
	Signature bool  // use the signature (hash) table
	Deadline  int64 // virtual-time eviction hint maintained by the caller
}

// Filter-table errors.
var (
	ErrFilterTableFull = errors.New("nic: filter table full")
	ErrFilterNotFound  = errors.New("nic: filter not found")
)

// filterTable holds perfect and signature filters with hardware-like
// capacity limits. Multiple filters per key are allowed (Scap installs two
// per stream, differing in flex value).
type filterTable struct {
	perfectCap int
	sigCap     int
	perfect    map[pkt.FlowKey][]*FilterSpec
	signature  map[uint64][]*FilterSpec
	nPerfect   int
	nSignature int
}

func newFilterTable(perfectCap, sigCap int) *filterTable {
	return &filterTable{
		perfectCap: perfectCap,
		sigCap:     sigCap,
		perfect:    make(map[pkt.FlowKey][]*FilterSpec),
		signature:  make(map[uint64][]*FilterSpec),
	}
}

// sigHash mimics the signature table's hash: it deliberately ignores part
// of the tuple resolution by folding to 15 bits, so distinct flows can
// collide like in the hardware table.
func sigHash(k pkt.FlowKey) uint64 { return k.Hash(0x82599) & 0x7fff }

func (t *filterTable) add(spec *FilterSpec) error {
	if spec.Signature {
		if t.nSignature >= t.sigCap {
			return fmt.Errorf("%w: %d signature filters", ErrFilterTableFull, t.nSignature)
		}
		h := sigHash(spec.Key)
		t.signature[h] = append(t.signature[h], spec)
		t.nSignature++
		return nil
	}
	if t.nPerfect >= t.perfectCap {
		return fmt.Errorf("%w: %d perfect filters", ErrFilterTableFull, t.nPerfect)
	}
	t.perfect[spec.Key] = append(t.perfect[spec.Key], spec)
	t.nPerfect++
	return nil
}

// removeKey removes every filter installed for key in the given table and
// returns how many were removed.
func (t *filterTable) removeKey(key pkt.FlowKey, signature bool) int {
	if signature {
		h := sigHash(key)
		kept := t.signature[h][:0]
		removed := 0
		for _, s := range t.signature[h] {
			if s.Key == key {
				removed++
			} else {
				kept = append(kept, s)
			}
		}
		if len(kept) == 0 {
			delete(t.signature, h)
		} else {
			t.signature[h] = kept
		}
		t.nSignature -= removed
		return removed
	}
	removed := len(t.perfect[key])
	delete(t.perfect, key)
	t.nPerfect -= removed
	return removed
}

// lookup returns the first filter matching the packet. Perfect filters are
// consulted before signature filters, mirroring the hardware's precedence.
func (t *filterTable) lookup(p *pkt.Packet) *FilterSpec {
	if specs, ok := t.perfect[p.Key]; ok {
		for _, s := range specs {
			if s.Flex.matches(p.Data) {
				return s
			}
		}
	}
	if t.nSignature > 0 {
		if specs, ok := t.signature[sigHash(p.Key)]; ok {
			for _, s := range specs {
				// Signature filters still verify flex bytes, but not the
				// full tuple — that is the source of hash collisions.
				if s.Flex.matches(p.Data) {
					return s
				}
			}
		}
	}
	return nil
}

// evictEarliest removes the filter set (all flex variants of one key) with
// the smallest deadline from the perfect table and returns its key. Used
// when the table is full: the paper evicts a filter with a small timeout
// because it does not correspond to a long-lived stream.
func (t *filterTable) evictEarliest() (pkt.FlowKey, bool) {
	var bestKey pkt.FlowKey
	best := int64(1<<63 - 1)
	found := false
	for k, specs := range t.perfect {
		for _, s := range specs {
			if s.Deadline < best {
				best = s.Deadline
				bestKey = k
				found = true
			}
		}
	}
	if found {
		t.removeKey(bestKey, false)
	}
	return bestKey, found
}
