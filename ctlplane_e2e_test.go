package scap

import (
	"strings"
	"sync"
	"testing"
	"time"

	"scap/internal/metrics"
	"scap/internal/trace"
)

// ctlTestConfig is an aggressive controller tuning for tests: millisecond
// ticks, a low entry threshold, and a short cooldown so a sub-second replay
// produces a full episode (tighten → floor → relax → restore).
func ctlTestConfig() ControlConfig {
	return ControlConfig{
		Enabled:        true,
		Interval:       250 * time.Microsecond,
		EnterFraction:  0.5,
		ExitFraction:   0.3,
		SevereFraction: 0.6,
		Cooldown:       25 * time.Millisecond,
		HoldTicks:      250,
		CutoffStart:    64 << 10,
		CutoffFloor:    12 << 10,
		TightenFactor:  0.25,
	}
}

// TestCtlplaneOverloadEpisode is the end-to-end control-plane check, run
// under -race in CI: a socket with a deliberately tiny memory budget and
// slow consumers is overloaded by a burst replay, and the adaptive
// controller must tighten the cutoff during the burst and relax it back to
// unlimited once the backlog drains — with matching ctl_tighten/ctl_relax
// records in the flight recorder.
func TestCtlplaneOverloadEpisode(t *testing.T) {
	h, err := Create(Config{
		Queues:     2,
		MemorySize: 2 << 20,
		Sketch:     SketchConfig{Enabled: true},
		Control:    ctlTestConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Slow consumers hold arena blocks so in-flight memory builds up ahead
	// of the replay.
	h.DispatchData(func(sd *Stream) { time.Sleep(200 * time.Microsecond) })
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}
	if cs := h.ControlState(); cs == nil || !cs.Enabled {
		t.Fatal("controller not running after StartCapture")
	}

	gen := trace.ConcurrentStreamsWorkload(11, 300, 64, 60, 1460)
	if err := h.ReplaySource(gen, 1e9); err != nil {
		t.Fatal(err)
	}

	// The replay has ended, so pressure can only fall from here; wait for
	// the controller to walk the clamp back to unlimited.
	var tightens, relaxes, restores int
	deadline := time.Now().Add(10 * time.Second)
	for {
		cs := h.ControlState()
		if cs == nil {
			t.Fatal("ControlState returned nil with controller enabled")
		}
		tightens, relaxes, restores = 0, 0, 0
		for _, d := range cs.Decisions {
			switch d.Action {
			case "tighten":
				tightens++
			case "relax":
				relaxes++
			case "restore":
				restores++
			}
		}
		if tightens > 0 && restores > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no full episode after replay: mode=%s tightens=%d relaxes=%d restores=%d mem=%.2f decisions=%+v",
				cs.Mode, tightens, relaxes, restores, cs.MemFraction, cs.Decisions)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if tightens >= 2 && relaxes < 1 {
		// A multi-step tighten staircase must be walked back step by step.
		t.Fatalf("restore without relax decisions after %d tightens", tightens)
	}

	// Final state: clamp fully removed, NIC drop filters gated again.
	cs := h.ControlState()
	if cs.DynCutoff != -1 {
		t.Errorf("clamp not restored: DynCutoff=%d", cs.DynCutoff)
	}
	if cs.FDIRBudget != 0 {
		t.Errorf("FDIR budget not re-gated after episode: %d", cs.FDIRBudget)
	}

	// The same episode must be reconstructible from the flight recorder.
	var flightTighten, flightRelax bool
	for _, r := range h.reg.Flight().Snapshot() {
		switch r.Kind {
		case metrics.FlightCtlTighten:
			flightTighten = true
		case metrics.FlightCtlRelax:
			flightRelax = true
		}
	}
	if !flightTighten || !flightRelax {
		t.Errorf("flight recorder missing episode: tighten=%v relax=%v", flightTighten, flightRelax)
	}

	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	// Snapshot stays readable after Stop.
	if cs := h.ControlState(); cs == nil || cs.Ticks == 0 {
		t.Error("snapshot unreadable after Close")
	}
}

// TestCtlplaneSnapshotDuringReplay hammers ControlState and Serve's
// /debug/ctlplane path from separate goroutines while the controller is
// actuating — the atomic snapshot pointer and the ctrl-queue fan-out are on
// the line under -race.
func TestCtlplaneSnapshotDuringReplay(t *testing.T) {
	h, err := Create(Config{
		Queues:     2,
		MemorySize: 2 << 20,
		Sketch:     SketchConfig{Enabled: true},
		Control:    ctlTestConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	h.DispatchData(func(sd *Stream) { time.Sleep(100 * time.Microsecond) })
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				cs := h.ControlState()
				if cs == nil {
					t.Error("nil snapshot while enabled")
					return
				}
				if m := cs.Mode; m != "calm" && m != "pressure" && m != "recovery" {
					t.Errorf("bad mode %q", m)
					return
				}
				for _, d := range cs.Decisions {
					if d.Action == "" || !strings.Contains("tighten relax restore fdir_budget watermarks", d.Action) {
						t.Errorf("bad decision action %q", d.Action)
						return
					}
				}
				time.Sleep(500 * time.Microsecond)
			}
		}()
	}

	gen := trace.ConcurrentStreamsWorkload(12, 200, 48, 60, 1460)
	if err := h.ReplaySource(gen, 1e9); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}
