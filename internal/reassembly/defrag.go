package reassembly

import (
	"net/netip"

	"scap/internal/pkt"
)

// fragKey identifies an IPv4 datagram under reassembly (RFC 791: source,
// destination, protocol, identification).
type fragKey struct {
	src, dst netip.Addr
	proto    uint8
	id       uint16
}

// fragBuf accumulates fragments of one datagram.
type fragBuf struct {
	parts    []seg // byte ranges within the reassembled datagram
	total    int   // length once the last fragment is seen, -1 until then
	bytes    int
	firstTS  int64
	deadline int64
}

// Defragmenter reassembles IPv4 fragments. Strict-mode Scap normalizes
// fragmented traffic before TCP reassembly, closing the classic
// fragmentation evasion channels. Overlapping fragments are resolved with
// PolicyFirst (first copy wins), the conservative normalization choice of
// Handley, Paxson & Kreibich.
type Defragmenter struct {
	flows   map[fragKey]*fragBuf
	timeout int64 // virtual ns a partial datagram may wait
	maxMem  int
	mem     int
	// Stats
	Reassembled  uint64
	TimedOut     uint64
	OverLimit    uint64
	OverlapBytes uint64
}

// DefaultFragTimeout is how long a partial datagram may wait for its
// missing fragments (30 virtual seconds, matching Linux's ipfrag_time).
const DefaultFragTimeout = int64(30e9)

// NewDefragmenter creates a defragmenter bounded to maxMem buffered bytes
// (0 selects 4 MiB).
func NewDefragmenter(timeout int64, maxMem int) *Defragmenter {
	if timeout <= 0 {
		timeout = DefaultFragTimeout
	}
	if maxMem <= 0 {
		maxMem = 4 << 20
	}
	return &Defragmenter{
		flows:   make(map[fragKey]*fragBuf),
		timeout: timeout,
		maxMem:  maxMem,
	}
}

// Add offers a fragment. If it completes its datagram, the reassembled IP
// payload (transport header + data) is returned; otherwise nil. Non-final
// fragments whose payload length is not a multiple of 8 are discarded as
// malformed.
func (d *Defragmenter) Add(p *pkt.Packet) []byte {
	if !p.IsFragment() {
		return p.Payload
	}
	if p.MoreFrags && len(p.Payload)%8 != 0 {
		return nil
	}
	k := fragKey{src: p.Key.SrcIP, dst: p.Key.DstIP, proto: p.Key.Proto, id: p.IPID}
	fb := d.flows[k]
	if fb == nil {
		fb = &fragBuf{total: -1, firstTS: p.Timestamp, deadline: p.Timestamp + d.timeout}
		d.flows[k] = fb
	}
	start := int64(p.FragOffset)
	end := start + int64(len(p.Payload))
	if !p.MoreFrags {
		fb.total = int(end)
	}
	// First-wins overlap: subtract existing coverage from the new piece.
	type piece struct{ s, e int64 }
	pieces := []piece{{start, end}}
	for _, old := range fb.parts {
		var next []piece
		for _, pc := range pieces {
			if pc.e <= old.start || pc.s >= old.end() {
				next = append(next, pc)
				continue
			}
			d.OverlapBytes += uint64(min64(pc.e, old.end()) - max64(pc.s, old.start))
			if pc.s < old.start {
				next = append(next, piece{pc.s, old.start})
			}
			if pc.e > old.end() {
				next = append(next, piece{old.end(), pc.e})
			}
		}
		pieces = next
	}
	for _, pc := range pieces {
		cp := make([]byte, pc.e-pc.s)
		copy(cp, p.Payload[pc.s-start:pc.e-start])
		fb.parts = append(fb.parts, seg{start: pc.s, data: cp})
		fb.bytes += len(cp)
		d.mem += len(cp)
	}
	if d.mem > d.maxMem {
		d.shed()
	}
	if done := d.tryComplete(k, fb); done != nil {
		return done
	}
	return nil
}

// tryComplete checks contiguous coverage of [0, total) and returns the
// reassembled payload when complete.
func (d *Defragmenter) tryComplete(k fragKey, fb *fragBuf) []byte {
	if fb.total < 0 {
		return nil
	}
	// Sort parts (insertion sort; fragment counts are small).
	for i := 1; i < len(fb.parts); i++ {
		for j := i; j > 0 && fb.parts[j].start < fb.parts[j-1].start; j-- {
			fb.parts[j], fb.parts[j-1] = fb.parts[j-1], fb.parts[j]
		}
	}
	pos := int64(0)
	for _, s := range fb.parts {
		if s.start > pos {
			return nil // hole
		}
		if s.end() > pos {
			pos = s.end()
		}
	}
	if pos < int64(fb.total) {
		return nil
	}
	out := make([]byte, fb.total)
	for _, s := range fb.parts {
		copy(out[s.start:], s.data)
	}
	d.mem -= fb.bytes
	delete(d.flows, k)
	d.Reassembled++
	return out
}

// Expire drops partial datagrams whose deadline has passed.
func (d *Defragmenter) Expire(now int64) {
	for k, fb := range d.flows {
		if fb.deadline <= now {
			d.mem -= fb.bytes
			delete(d.flows, k)
			d.TimedOut++
		}
	}
}

// shed evicts the oldest partial datagram to get back under the memory
// budget.
func (d *Defragmenter) shed() {
	for d.mem > d.maxMem && len(d.flows) > 0 {
		var oldestK fragKey
		var oldest *fragBuf
		for k, fb := range d.flows {
			if oldest == nil || fb.firstTS < oldest.firstTS {
				oldest, oldestK = fb, k
			}
		}
		d.mem -= oldest.bytes
		delete(d.flows, oldestK)
		d.OverLimit++
	}
}

// Pending returns the number of incomplete datagrams held.
func (d *Defragmenter) Pending() int { return len(d.flows) }
