package metrics

import "sync"

// EventKind discriminates overload telemetry events.
type EventKind uint8

// Overload event kinds recorded by the capture path.
const (
	// EvPPLEnter: stream memory crossed above the PPL base threshold and
	// admission control began shedding; Value is the usage in per-mille.
	EvPPLEnter EventKind = iota
	// EvPPLExit: memory fell back below the threshold; Dur is how long the
	// pressure episode lasted (wall ns).
	EvPPLExit
	// EvRingFull: a NIC receive ring started dropping frames; Core is the
	// queue.
	EvRingFull
	// EvRingFullEnd: the ring accepted frames again; Dur is the episode
	// length in virtual ns, Value the frames dropped during it.
	EvRingFullEnd
	// EvEventRingOverflow: an engine's event ring refused part of a batch;
	// Value is the number of events lost.
	EvEventRingOverflow
	// EvFDIRInstall: a cutoff stream's drop-filter pair was installed at
	// the NIC.
	EvFDIRInstall
	// EvFDIRRemove: a stream's filters were removed (termination or
	// deadline expiry).
	EvFDIRRemove
)

var eventKindNames = [...]string{
	EvPPLEnter:          "ppl_enter",
	EvPPLExit:           "ppl_exit",
	EvRingFull:          "ring_full",
	EvRingFullEnd:       "ring_full_end",
	EvEventRingOverflow: "event_ring_overflow",
	EvFDIRInstall:       "fdir_install",
	EvFDIRRemove:        "fdir_remove",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// Event is one typed overload occurrence. TimeUnixNano is stamped from the
// registry clock at record time; Value and Dur are kind-specific (see the
// kind constants).
type Event struct {
	Kind         EventKind `json:"-"`
	KindName     string    `json:"kind"`
	TimeUnixNano int64     `json:"time_unix_nano"`
	Core         int       `json:"core"`
	Value        int64     `json:"value,omitempty"`
	Dur          int64     `json:"dur_ns,omitempty"`
}

// defaultEventCap is the event ring size: enough to hold a burst of overload
// transitions between scrapes without unbounded growth.
const defaultEventCap = 256

// EventLog is a fixed-capacity ring of overload events. Recording takes a
// mutex — overload events are edge-triggered (pressure transitions, episode
// boundaries, filter churn), not per-packet, so the lock is off the fast
// path by construction.
type EventLog struct {
	now *func() int64

	mu    sync.Mutex
	ring  []Event
	next  int
	total uint64
}

func newEventLog(capacity int, now *func() int64) *EventLog {
	return &EventLog{ring: make([]Event, 0, capacity), now: now}
}

// Now reads the log's clock (the registry clock) — for callers that need
// the same timestamp in an event and their own episode bookkeeping.
func (l *EventLog) Now() int64 { return (*l.now)() }

// Record appends an event, stamping its time from the registry clock when
// unset. The oldest event is overwritten once the ring is full.
func (l *EventLog) Record(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e.TimeUnixNano == 0 {
		e.TimeUnixNano = (*l.now)()
	}
	e.KindName = e.Kind.String()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
	} else {
		l.ring[l.next] = e
	}
	l.next = (l.next + 1) % cap(l.ring)
	l.total++
}

// Total returns how many events have ever been recorded (including ones the
// ring has since overwritten).
func (l *EventLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns the buffered events, oldest first.
func (l *EventLog) Snapshot() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.ring))
	if len(l.ring) < cap(l.ring) {
		return append(out, l.ring...)
	}
	out = append(out, l.ring[l.next:]...)
	return append(out, l.ring[:l.next]...)
}
