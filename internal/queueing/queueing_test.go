package queueing

import (
	"math"
	"testing"
)

func TestMM1NLossKnownValues(t *testing.T) {
	cases := []struct {
		rho  float64
		n    int
		want float64
	}{
		// Hand-computed: ρ=0.5,N=2: (0.5·0.25)/(1−0.125)=0.142857…
		{0.5, 2, 0.125 / 0.875},
		// ρ=1 limit: uniform over N+1 states.
		{1.0, 4, 0.2},
		// N=0: always full.
		{0.5, 0, 1},
	}
	for _, c := range cases {
		if got := MM1NLoss(c.rho, c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MM1NLoss(%v,%d) = %v, want %v", c.rho, c.n, got, c.want)
		}
	}
}

func TestMM1NLossMonotonicInN(t *testing.T) {
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		prev := 1.0
		for n := 1; n <= 200; n++ {
			p := MM1NLoss(rho, n)
			if p > prev+1e-15 {
				t.Fatalf("loss not decreasing at rho=%v n=%d", rho, n)
			}
			prev = p
		}
	}
}

// TestFig11Anchors reproduces the paper's qualitative Figure 11 claims:
// ρ=0.1 needs <10 slots for ~zero loss; ρ=0.5 a bit over 20; ρ=0.9 about
// 150 slots to reach ~1e-8.
func TestFig11Anchors(t *testing.T) {
	if p := MM1NLoss(0.1, 10); p > 1e-8 {
		t.Errorf("rho=0.1 N=10: loss %v, want < 1e-8", p)
	}
	if p := MM1NLoss(0.5, 25); p > 1e-7 {
		t.Errorf("rho=0.5 N=25: loss %v, want < 1e-7", p)
	}
	if p := MM1NLoss(0.9, 150); p > 1e-6 {
		t.Errorf("rho=0.9 N=150: loss %v", p)
	}
	if p := MM1NLoss(0.9, 20); p < 1e-3 {
		t.Errorf("rho=0.9 N=20 should still lose packets: %v", p)
	}
}

func TestPriorityLossSinglePriorityMatchesMM1N(t *testing.T) {
	for _, rho := range []float64{0.2, 0.6, 0.95, 1.3} {
		for _, n := range []int{1, 5, 20, 100} {
			got, err := PriorityLoss([]float64{rho}, n)
			if err != nil {
				t.Fatal(err)
			}
			want := MM1NLoss(rho, n)
			if math.Abs(got[0]-want) > 1e-9*math.Max(want, 1e-30) && math.Abs(got[0]-want) > 1e-15 {
				t.Errorf("rho=%v n=%d: chain %v vs closed form %v", rho, n, got[0], want)
			}
		}
	}
}

func TestPriorityLossOrdering(t *testing.T) {
	// Higher priorities always lose less.
	rhos := []float64{0.3, 0.3, 0.3}
	for n := 1; n <= 40; n++ {
		loss, err := PriorityLoss(rhos, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(loss); i++ {
			if loss[i] > loss[i-1]+1e-15 {
				t.Fatalf("n=%d: priority %d loses more than %d: %v", n, i, i-1, loss)
			}
		}
	}
}

// TestFig12Anchors: with ρ1=ρ2=0.3 (medium, high), a few tens of slots
// drive both loss probabilities to practically zero.
func TestFig12Anchors(t *testing.T) {
	// Paper Figure 12 has three classes: low (not plotted), medium ρ=0.3,
	// high ρ=0.3. Model them with a low class of load 0.3 as well.
	rhos := []float64{0.3, 0.3, 0.3}
	loss, err := PriorityLoss(rhos, 40)
	if err != nil {
		t.Fatal(err)
	}
	if loss[1] > 1e-8 || loss[2] > 1e-10 {
		t.Errorf("N=40 losses = %v, want practically zero", loss)
	}
	lossSmall, _ := PriorityLoss(rhos, 3)
	if lossSmall[1] < 1e-6 {
		t.Errorf("N=3 medium loss = %v, should be visible", lossSmall[1])
	}
}

func TestPriorityLossInvalid(t *testing.T) {
	if _, err := PriorityLoss(nil, 5); err == nil {
		t.Error("nil rhos accepted")
	}
	if _, err := PriorityLoss([]float64{0.5}, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := PriorityLoss([]float64{math.NaN()}, 5); err == nil {
		t.Error("NaN accepted")
	}
}

func TestPriorityLossOverloadApproachesOne(t *testing.T) {
	loss, err := PriorityLoss([]float64{5, 5}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if loss[0] < 0.5 {
		t.Errorf("low priority under 10x overload loses only %v", loss[0])
	}
	if loss[1] >= loss[0] {
		t.Errorf("priority inversion: %v", loss)
	}
}

func TestPriorityLossLargeNNoOverflow(t *testing.T) {
	loss, err := PriorityLoss([]float64{1.5, 1.2}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range loss {
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Errorf("loss[%d] = %v", i, p)
		}
	}
}

// TestTwoPriorityClosedFormMatchesChain: the closed form and the generic
// chain solver are independent derivations and must agree.
func TestTwoPriorityClosedFormMatchesChain(t *testing.T) {
	for _, tc := range []struct {
		r1, r2 float64
		n      int
	}{
		{0.3, 0.3, 5}, {0.8, 0.1, 10}, {0.1, 0.8, 3}, {1.2, 0.5, 7},
	} {
		low, high := TwoPriorityLoss(tc.r1, tc.r2, tc.n)
		chain, err := PriorityLoss([]float64{tc.r1, tc.r2}, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(low-chain[0]) > 1e-12 || math.Abs(high-chain[1]) > 1e-12 {
			t.Errorf("rho=(%v,%v) n=%d: closed form (%g,%g) vs chain (%g,%g)",
				tc.r1, tc.r2, tc.n, low, high, chain[0], chain[1])
		}
	}
}

// TestChainMatchesSimulation is the Monte-Carlo cross-validation of the
// exact solver.
func TestChainMatchesSimulation(t *testing.T) {
	cases := [][]float64{
		{0.7},
		{0.4, 0.4},
		{0.3, 0.3, 0.3},
		{0.8, 0.1},
	}
	for _, rhos := range cases {
		n := 4
		exact, err := PriorityLoss(rhos, n)
		if err != nil {
			t.Fatal(err)
		}
		sim := SimulatePriorityLoss(rhos, n, 2_000_000, 1)
		for i := range exact {
			diff := math.Abs(exact[i] - sim[i])
			tol := 0.15*exact[i] + 5e-4
			if diff > tol {
				t.Errorf("rhos=%v class %d: exact %v sim %v", rhos, i, exact[i], sim[i])
			}
		}
	}
}
