package nic

// Backend conformance suite: the behavioral contract every capture
// backend must satisfy — batch delivery with payloads and timestamps
// intact, flow-affine queue steering, monotonic ingest stamps, filter
// add/remove semantics, drop accounting that balances against offered
// frames, and idempotent shutdown. Runs against the sim and pcap replay
// backends here (tier-1, hermetic); the AF_PACKET backend runs the same
// checks over a veth pair in afpacket_live_test.go under the "live" tag.

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"scap/internal/metrics"
	"scap/internal/pkt"
	"scap/internal/trace"
)

// confFrame is one offered frame: raw bytes at a source timestamp.
type confFrame struct {
	data []byte
	ts   int64
}

// confFlows builds per-flow TCP data frames: flows distinct 5-tuples,
// perFlow frames each, timestamps increasing across the whole set.
func confFlows(flows, perFlow int) []confFrame {
	var out []confFrame
	ts := int64(1)
	for i := 0; i < perFlow; i++ {
		for f := 0; f < flows; f++ {
			key := key4(fmt.Sprintf("10.1.%d.%d", f/250, f%250+1), uint16(2000+f), "10.9.0.1", 80)
			out = append(out, confFrame{
				data: pkt.BuildTCP(pkt.TCPSpec{Key: key, Seq: uint32(i * 8), Flags: pkt.FlagACK | pkt.FlagPSH, Payload: []byte{byte(f), byte(i), 3, 4, 5, 6, 7, 8}}),
				ts:   ts,
			})
			ts += 1000
		}
	}
	return out
}

// writeConfPcap writes frames as a classic pcap file and returns its path.
func writeConfPcap(t *testing.T, frames []confFrame) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "conf.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewPcapWriter(f, 0)
	for _, fr := range frames {
		if err := w.Write(fr.data, fr.ts); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// confBackendCase adapts one backend to the suite.
type confBackendCase struct {
	name string
	// dropsOnOverflow: a stalled consumer overflows a bounded ring and
	// drops (pcap replay, AF_PACKET); the sim instead backpressures the
	// feeder, so the overflow test does not apply.
	dropsOnOverflow bool
	// build returns an unopened backend that will deliver frames, plus a
	// run function to invoke after Open (it feeds source-less backends
	// and ends delivery: the sim is fed and closed; file backends stream
	// and hit EOF on their own).
	build func(t *testing.T, queues int, frames []confFrame) (Backend, func())
}

// feedSim drives the sim backend's injection surface the way the capture
// layer does: steer, poll, deliver, one frame per batch.
func feedSim(s *Sim, frames []confFrame) {
	for _, fr := range frames {
		q := s.ReceiveAt(fr.data, fr.ts, metrics.Nanotime())
		if q < 0 {
			continue
		}
		f, ok := s.Poll(q)
		if !ok {
			continue
		}
		s.Deliver(q, []Frame{f})
	}
}

func conformanceCases() []confBackendCase {
	return []confBackendCase{
		{
			name: "sim",
			build: func(t *testing.T, queues int, frames []confFrame) (Backend, func()) {
				s := NewSim(Config{Queues: queues})
				return s, func() {
					feedSim(s, frames)
					s.Close()
				}
			},
		},
		{
			name:            "pcapreplay",
			dropsOnOverflow: true,
			build: func(t *testing.T, queues int, frames []confFrame) (Backend, func()) {
				path := writeConfPcap(t, frames)
				return NewPcapReplay(PcapReplayConfig{Path: path, Queues: queues}), func() {}
			},
		},
	}
}

// collectAll drains every Batches channel until closed, returning the
// delivered frames per queue in delivery order.
func collectAll(t *testing.T, be Backend) [][]Frame {
	t.Helper()
	got := make([][]Frame, be.Queues())
	var wg sync.WaitGroup
	for q := 0; q < be.Queues(); q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for batch := range be.Batches(q) {
				if len(batch) == 0 {
					t.Error("empty batch delivered")
				}
				got[q] = append(got[q], batch...)
			}
		}(q)
	}
	wg.Wait()
	return got
}

// openAndRun opens the backend, runs the feeder concurrently with the
// collectors, and waits for Done.
func openAndRun(t *testing.T, be Backend, run func()) [][]Frame {
	t.Helper()
	if err := be.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	go run()
	got := collectAll(t, be)
	<-be.Done()
	return got
}

func TestConformanceDelivery(t *testing.T) {
	for _, c := range conformanceCases() {
		t.Run(c.name, func(t *testing.T) {
			const queues, flows, perFlow = 4, 37, 10
			frames := confFlows(flows, perFlow)
			be, run := c.build(t, queues, frames)
			if got := be.Queues(); got != queues {
				t.Fatalf("Queues() = %d, want %d", got, queues)
			}
			caps := be.Capabilities()
			if caps.RSSQueues != queues {
				t.Errorf("Capabilities.RSSQueues = %d, want %d", caps.RSSQueues, queues)
			}
			if !caps.HasFilters() {
				t.Error("Capabilities.HasFilters() = false; every backend models a filter table")
			}
			got := openAndRun(t, be, run)
			total := 0
			// Flow affinity: every frame of a flow must land on one queue.
			// The first payload byte is the flow index.
			flowQueue := make(map[byte]int)
			for q, fs := range got {
				total += len(fs)
				for _, f := range fs {
					if len(f.Data) < pkt.EthernetHeaderLen {
						t.Fatalf("queue %d delivered a truncated frame (%d bytes)", q, len(f.Data))
					}
					flowID := f.Data[len(f.Data)-8]
					if prev, ok := flowQueue[flowID]; ok && prev != q {
						t.Fatalf("flow %d split across queues %d and %d", flowID, prev, q)
					}
					flowQueue[flowID] = q
					if f.TS <= 0 {
						t.Fatalf("frame delivered with TS %d", f.TS)
					}
				}
			}
			if want := flows * perFlow; total != want {
				t.Fatalf("delivered %d frames, want %d (stats %+v)", total, want, be.Stats())
			}
			if s := be.Stats(); s.Received != uint64(flows*perFlow) {
				t.Errorf("Stats().Received = %d, want %d", s.Received, flows*perFlow)
			}
			if err := be.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
			if err := be.Close(); err != nil {
				t.Errorf("second Close: %v", err)
			}
		})
	}
}

func TestConformanceIngestMonotone(t *testing.T) {
	for _, c := range conformanceCases() {
		t.Run(c.name, func(t *testing.T) {
			frames := confFlows(11, 20)
			be, run := c.build(t, 2, frames)
			got := openAndRun(t, be, run)
			for q, fs := range got {
				var last int64
				for i, f := range fs {
					if f.Ingest <= 0 {
						t.Fatalf("queue %d frame %d: Ingest = %d, want > 0", q, i, f.Ingest)
					}
					if f.Ingest < last {
						t.Fatalf("queue %d frame %d: Ingest went backwards (%d after %d)", q, i, f.Ingest, last)
					}
					last = f.Ingest
				}
			}
			be.Close()
		})
	}
}

func TestConformanceFilters(t *testing.T) {
	for _, c := range conformanceCases() {
		t.Run(c.name, func(t *testing.T) {
			const perFlow = 25
			dropKey := key4("10.1.0.1", 2000, "10.9.0.1", 80) // flow index 0 in confFlows
			frames := confFlows(2, perFlow)                   // flows 0 and 1
			be, run := c.build(t, 1, frames)
			if _, _, err := be.AddFilter(FilterSpec{Key: dropKey, Action: ActionDrop}); err != nil {
				t.Fatalf("AddFilter: %v", err)
			}
			if p, s := be.FilterCount(); p != 1 || s != 0 {
				t.Fatalf("FilterCount = (%d, %d), want (1, 0)", p, s)
			}
			got := openAndRun(t, be, run)
			total := 0
			for _, fs := range got {
				total += len(fs)
				for _, f := range fs {
					if f.Data[len(f.Data)-8] == 0 {
						t.Fatal("a filtered flow's frame was delivered")
					}
				}
			}
			if total != perFlow {
				t.Errorf("delivered %d frames, want %d (only the unfiltered flow)", total, perFlow)
			}
			st := be.Stats()
			if st.DroppedFilter != perFlow {
				t.Errorf("Stats().DroppedFilter = %d, want %d", st.DroppedFilter, perFlow)
			}
			if st.Received != 2*perFlow {
				t.Errorf("Stats().Received = %d, want %d", st.Received, 2*perFlow)
			}
			if n := be.RemoveFilters(dropKey, false); n != 1 {
				t.Errorf("RemoveFilters = %d, want 1", n)
			}
			if p, s := be.FilterCount(); p != 0 || s != 0 {
				t.Errorf("FilterCount after removal = (%d, %d), want (0, 0)", p, s)
			}
			be.Close()
		})
	}
}

func TestConformanceOverflowDrops(t *testing.T) {
	for _, c := range conformanceCases() {
		if !c.dropsOnOverflow {
			continue
		}
		t.Run(c.name, func(t *testing.T) {
			// A tiny staging ring with no consumer: the source must drop
			// rather than block or grow without bound, and the accounting
			// must balance once everything is drained.
			const offered = 30000
			frames := confFlows(5, offered/5)
			path := writeConfPcap(t, frames)
			be := NewPcapReplay(PcapReplayConfig{Path: path, Queues: 1, RingBytes: 4096})
			if err := be.Open(); err != nil {
				t.Fatalf("Open: %v", err)
			}
			// Wait until the reader has offered every frame (it never
			// blocks: full rings drop), then drain.
			for be.Stats().Received < offered {
				runtime.Gosched()
			}
			got := collectAll(t, be)
			<-be.Done()
			st := be.Stats()
			if st.DroppedRing == 0 {
				t.Fatal("no ring-overflow drops with a 4 KB ring and a stalled consumer")
			}
			delivered := uint64(len(got[0]))
			if sum := delivered + st.DroppedRing + st.DroppedFilter + st.DecodeFailures; sum != st.Received {
				t.Errorf("accounting imbalance: delivered %d + drops %d+%d+%d != received %d",
					delivered, st.DroppedRing, st.DroppedFilter, st.DecodeFailures, st.Received)
			}
			if err := be.Err(); err != nil {
				t.Errorf("Err: %v", err)
			}
			be.Close()
		})
	}
}

func TestConformanceCloseBeforeOpen(t *testing.T) {
	for _, c := range conformanceCases() {
		t.Run(c.name, func(t *testing.T) {
			be, _ := c.build(t, 2, nil)
			if err := be.Close(); err != nil {
				t.Fatalf("Close before Open: %v", err)
			}
			select {
			case <-be.Done():
			default:
				t.Error("Done not closed after Close")
			}
			for q := 0; q < be.Queues(); q++ {
				if _, ok := <-be.Batches(q); ok {
					t.Errorf("queue %d channel still delivering after Close", q)
				}
			}
		})
	}
}

func TestPcapReplayPasses(t *testing.T) {
	frames := confFlows(3, 4)
	path := writeConfPcap(t, frames)
	be := NewPcapReplay(PcapReplayConfig{Path: path, Queues: 2, Passes: 3})
	got := openAndRun(t, be, func() {})
	total := 0
	for _, fs := range got {
		total += len(fs)
		var last int64
		for _, f := range fs {
			if f.TS <= last {
				t.Fatal("timestamps not monotonic across passes")
			}
			last = f.TS
		}
	}
	if want := 3 * len(frames); total != want {
		t.Fatalf("delivered %d frames over 3 passes, want %d", total, want)
	}
	if err := be.Err(); err != nil {
		t.Errorf("Err: %v", err)
	}
	be.Close()
}

func TestPcapReplayMissingFile(t *testing.T) {
	be := NewPcapReplay(PcapReplayConfig{Path: filepath.Join(t.TempDir(), "absent.pcap")})
	if err := be.Open(); err == nil {
		t.Fatal("Open succeeded on a missing file")
	}
	if err := be.Close(); err != nil {
		t.Fatalf("Close after failed Open: %v", err)
	}
}
