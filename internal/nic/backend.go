// Package nic is the capture-backend layer: the transport-agnostic
// Backend interface the kernel goroutines drive, plus its three
// implementations — the simulated Intel 82599 model (Sim over NIC), a
// file-backed pcap replay modeled on the PF_PACKET shared ring
// (PcapReplay), and a real Linux AF_PACKET/TPACKET_V3 socket backend
// (built with the "live" tag). Backends differ in where frames come from
// and in what the hardware can do (Capabilities); everything downstream —
// engines, arena, flow table, control plane — sees only Frame batches and
// the filter surface.
//
// This package is part of the audited public API surface inside the
// module: scaplint's exporteddoc analyzer requires a doc comment on every
// exported symbol of packages carrying this marker.
//
//scap:publicapi
package nic

import (
	"scap/internal/metrics"
	"scap/internal/pkt"
)

// Capabilities describes what a capture backend's hardware (or its
// software stand-in) can do, so the engine can negotiate instead of
// assuming the 82599 model. Capacities of zero mean the facility is
// absent entirely; HWFilters / HWTimestamps distinguish a real hardware
// implementation from the software shim that emulates it.
type Capabilities struct {
	// RSSQueues is the number of receive queues frames are spread over:
	// hardware RSS on the simulated 82599, PACKET_FANOUT_HASH on
	// AF_PACKET, and a software Toeplitz hash for pcap replay.
	RSSQueues int
	// PerfectFilters is the capacity of the exact-5-tuple filter table
	// (FDIR perfect filters on the 82599; the software shim's bound
	// elsewhere). Zero means per-flow filters cannot be installed at all.
	PerfectFilters int
	// SignatureFilters is the capacity of the hash-based (collision-prone)
	// filter table. Zero means no signature table.
	SignatureFilters int
	// HWFilters is true when filters are evaluated before frames reach
	// host memory (the paper's subzero copy). False means the backend
	// emulates them in software on the delivery path: matching frames are
	// still dropped before the engines see them, but they were already
	// copied once, and the drops are attributed to cause "swfilter"
	// instead of "fdir".
	HWFilters bool
	// HWTimestamps is true when frame timestamps are stamped by the
	// capture hardware model itself rather than read from a file or the
	// kernel's software clock.
	HWTimestamps bool
	// DynamicBalance is true when the backend can re-steer flows between
	// queues at runtime (the §2.4 FDIR queue-filter load balancing).
	DynamicBalance bool
}

// HasFilters reports whether any per-flow filter table exists — hardware
// or software — so the engine knows installs can succeed at all.
func (c Capabilities) HasFilters() bool {
	return c.PerfectFilters > 0 || c.SignatureFilters > 0
}

// FilterSink is the slice of a Backend the engines drive directly: filter
// install and removal for subzero copy (paper §5.5), plus the
// capabilities that tell the engine whether installing is worthwhile.
// Implementations must allow concurrent calls from every engine goroutine.
type FilterSink interface {
	// Capabilities describes the backend's filter and steering facilities.
	Capabilities() Capabilities
	// AddFilter installs a per-flow filter; see NIC.AddFilter for the
	// eviction contract.
	AddFilter(FilterSpec) (evicted pkt.FlowKey, didEvict bool, err error)
	// RemoveFilters removes all filters for key and reports how many were
	// removed.
	RemoveFilters(key pkt.FlowKey, signature bool) int
}

// Backend is one capture transport: the source of frames for a socket's
// kernel goroutines. Lifecycle: construct, Open (starts any source
// goroutines), consume Batches(q) per queue, Close. The batch channels
// are the backend's poll surface — each receive is one poll-batch, and a
// closed channel means the source is exhausted or the backend closed.
//
// Frames delivered on Batches carry the transport timestamp in TS
// (virtual time for the simulated NIC, file time for pcap replay, kernel
// time for AF_PACKET) and a capture-clock metrics.Nanotime stamp in
// Ingest, so the stage_ingest_engine_ns latency histogram works on every
// backend.
type Backend interface {
	FilterSink
	// Open activates the backend: source goroutines start and Batches
	// channels begin delivering. Open must be called exactly once, before
	// any PollBatch/Batches consumer runs.
	Open() error
	// Queues returns the number of receive queues (len of the Batches set).
	Queues() int
	// Batches returns queue q's delivery channel. The per-queue kernel
	// goroutine is the only consumer; the channel is closed when the
	// backend's source is exhausted or the backend is closed.
	Batches(q int) <-chan []Frame
	// Done is closed when the backend has stopped delivering on every
	// queue — a source-driven backend (pcap replay) closes it at EOF, the
	// simulated and AF_PACKET backends at Close.
	Done() <-chan struct{}
	// FilterCount returns the number of installed (perfect, signature)
	// filters, hardware or software.
	FilterCount() (perfect, signature int)
	// Stats returns a snapshot of the backend counters.
	Stats() Stats
	// PublishMetrics registers the backend counters in reg. Call once per
	// registry, before capture starts.
	PublishMetrics(reg *metrics.Registry)
	// Close stops delivery, closes every Batches channel, and releases
	// transport resources. It is idempotent.
	Close() error
}

// backendBatchCap is the per-queue delivery channel depth, in batches.
// It bounds how far a backend source can run ahead of a kernel goroutine
// before the send parks (sim) or the backend's own ring absorbs the
// overrun (pcap replay, AF_PACKET).
const backendBatchCap = 256
