package flowtab

import (
	"math/bits"
	"math/rand"

	"scap/internal/pkt"
)

const (
	// slotsPerGroup is the probe granularity: one control word's worth of
	// slots, scanned with a single SWAR fingerprint match.
	slotsPerGroup = 8
	// initialGroups gives the empty table 1024 slots, matching the old
	// chained table's initial bucket count.
	initialGroups = 128

	// Control byte values. Occupied slots hold fingerprint|0x80 (see
	// pkt.HashSplit), so they can never collide with these markers.
	ctrlEmpty     = 0x00
	ctrlTombstone = 0x01

	loBits = 0x0101010101010101
	hiBits = 0x8080808080808080

	// Record pages hold pageSize stream records each and never move, so
	// *Stream pointers stay valid across table growth.
	pageBits = 12
	pageSize = 1 << pageBits
	pageMask = pageSize - 1

	// genShift derives a stream's coarse age class from its last-access
	// time: one generation per 2^28 ns ≈ 268 ms, so the uint8 generation
	// space spans ~68 s. Expiry never depends on generations (it reads the
	// exact lastAccess); they only rank eviction victims, and Sweep
	// re-derives drifted stamps, so aliasing past the span degrades the
	// oldest-first approximation without affecting correctness.
	genShift = 28
	// maxAge is the oldest representable age class; sweeps clamp streams
	// idle past maxAge generations to it.
	maxAge = 255
)

// group is one probe unit: eight control bytes packed into a word (0x00
// empty, 0x01 tombstone, fingerprint|0x80 occupied), eight generation
// stamps, and eight record indices — 48 bytes of metadata, so a negative
// lookup touches one or two cache lines of the group array and no records;
// record cache lines are touched only on a fingerprint match.
type group struct {
	ctrl uint64
	gen  [slotsPerGroup]uint8
	ref  [slotsPerGroup]uint32
}

// matchByte returns a mask with bit 7 set in every lane whose byte in w
// equals b. The SWAR zero-scan can set a false-positive lane directly above
// a true match (callers re-check candidates against the full key), but it
// never misses a true match, and as a boolean ("any lane equals b") it is
// exact.
func matchByte(w uint64, b uint8) uint64 {
	x := w ^ (loBits * uint64(b))
	return (x - loBits) &^ x & hiBits
}

func ctrlGet(w uint64, lane uint) uint8 { return uint8(w >> (lane * 8)) }

func ctrlSet(w uint64, lane uint, b uint8) uint64 {
	sh := lane * 8
	return w&^(0xff<<sh) | uint64(b)<<sh
}

// recordPage is one fixed slab of stream records.
type recordPage [pageSize]Stream

// Table is the per-core flow table. It is not safe for concurrent use: in
// Scap every stream belongs to exactly one core, whose kernel thread owns
// that core's table.
//
//scap:owner engine
type Table struct {
	seed   uint64
	groups []group
	mask   uint64
	count  int
	tombs  int
	nextID uint64

	// pages is the record store; nextRec indexes the next never-used slot.
	// free holds recycled records, mirroring Scap's pre-allocated stream_t
	// pools.
	pages   []*recordPage
	nextRec uint32
	free    []*Stream

	// now is the latest timestamp the table has seen; genCounts tracks
	// live records per generation stamp so eviction can locate the oldest
	// populated age class without scanning.
	now       int64
	genCounts [256]uint32

	// sweepCursor and evictCursor rove so incremental sweeps and repeated
	// evictions cover the group array fairly.
	sweepCursor uint64
	evictCursor uint64

	// Counters, read by the owning engine (copied into metrics off the
	// hot path).
	Created     uint64
	Expired     uint64
	Evicted     uint64
	Lookups     uint64 // LookupH calls (including the GetOrCreate fast path)
	Probes      uint64 // groups examined by those lookups
	SweptGroups uint64
	Grows       uint64
}

// NewTable creates a table with a randomly seeded hash function, like the
// kernel module, to resist algorithmic-complexity attacks on the groups.
func NewTable(rng *rand.Rand) *Table {
	var seed uint64
	if rng != nil {
		seed = rng.Uint64()
	} else {
		seed = rand.Uint64()
	}
	return &Table{
		seed:   seed,
		groups: make([]group, initialGroups),
		mask:   initialGroups - 1,
	}
}

// SetIDBase offsets the stream ID counter so that several tables (one per
// core) allocate from disjoint ID spaces; stream IDs are then unique
// socket-wide. It panics if a stream was already created: rebasing then
// would re-issue IDs that identify live or in-flight records.
func (t *Table) SetIDBase(base uint64) {
	if t.Created > 0 {
		panic("flowtab: SetIDBase called after streams were created")
	}
	t.nextID = base
}

// Len returns the number of tracked streams (directions).
func (t *Table) Len() int { return t.count }

// Cap returns the table's current slot capacity.
func (t *Table) Cap() int { return len(t.groups) * slotsPerGroup }

// Tombstones returns the number of slots pinned by deleted entries (they
// are reclaimed by the next rehash).
func (t *Table) Tombstones() int { return t.tombs }

// Hash returns the table's mixed 64-bit hash of key. Compute it once per
// packet and share it between LookupH/GetOrCreateH and the sketch
// front-end; the low bits index the group array and the high bits form the
// control fingerprint (pkt.HashSplit).
//
//scap:hotpath
func (t *Table) Hash(key pkt.FlowKey) uint64 { return pkt.Mix64(key.Hash(t.seed)) }

func (t *Table) record(ref uint32) *Stream {
	return &t.pages[ref>>pageBits][ref&pageMask]
}

// Lookup finds the stream for the exact (directional) key.
//
//scap:hotpath
func (t *Table) Lookup(key pkt.FlowKey) *Stream {
	return t.LookupH(t.Hash(key), key)
}

// LookupH is Lookup with the hash already computed.
//
//scap:hotpath
func (t *Table) LookupH(h uint64, key pkt.FlowKey) *Stream {
	_, fp := pkt.HashSplit(h)
	gi := h & t.mask
	t.Lookups++
	for step := uint64(0); ; step++ {
		t.Probes++
		g := &t.groups[gi]
		for m := matchByte(g.ctrl, fp); m != 0; m &= m - 1 {
			lane := uint(bits.TrailingZeros64(m)) / 8
			s := t.record(g.ref[lane])
			if s.hash == h && s.Key == key {
				return s
			}
		}
		// A never-used slot terminates every probe chain: an insert would
		// have taken it.
		if matchByte(g.ctrl, ctrlEmpty) != 0 {
			return nil
		}
		gi = (gi + step + 1) & t.mask
	}
}

// GetOrCreate returns the stream for key, creating (and cross-linking with
// the opposite direction, if tracked) on miss. created reports whether a
// new record was made; now stamps the record's access time and age class.
//
//scap:hotpath
func (t *Table) GetOrCreate(key pkt.FlowKey, now int64) (s *Stream, created bool) {
	return t.GetOrCreateH(t.Hash(key), key, now)
}

// GetOrCreateH is GetOrCreate with the hash already computed. Record
// allocation on a pool miss lives in alloc, off this function's fast path.
//
//scap:hotpath
func (t *Table) GetOrCreateH(h uint64, key pkt.FlowKey, now int64) (s *Stream, created bool) {
	if s = t.LookupH(h, key); s != nil {
		t.Touch(s, now)
		return s, false
	}
	return t.CreateH(h, key, now), true
}

// CreateH inserts a new stream for key without probing for an existing one.
// It is the engine's miss path: LookupH already ran on the shared per-packet
// hash, so re-probing would double the lookup work. The key must be absent.
//
//scap:hotpath
func (t *Table) CreateH(h uint64, key pkt.FlowKey, now int64) (s *Stream) {
	if now > t.now {
		t.now = now
	}
	s = t.alloc()
	t.nextID++
	s.ID = t.nextID
	s.Key = key
	s.Status = StatusActive
	s.Stats.Start = now
	s.Stats.End = now
	s.lastAccess = now
	s.Cutoff = -1 // inherit socket default

	if opp := t.Lookup(key.Reverse()); opp != nil {
		s.Opposite = opp
		opp.Opposite = s
		s.Dir = opp.Dir.Reverse()
	} else {
		s.Dir = pkt.DirClient
	}

	t.insert(s, h)
	t.Created++
	return s
}

// Touch stamps the stream's access time and refreshes its age class. Unlike
// the old LRU list there is nothing to re-link: the common case (same
// 268 ms generation) writes one record field and compares one byte in the
// group the stream already occupies.
//
//scap:hotpath
func (t *Table) Touch(s *Stream, now int64) {
	s.lastAccess = now
	if !s.inTable {
		return
	}
	if now > t.now {
		t.now = now
	}
	gen := uint8(uint64(now) >> genShift)
	g := &t.groups[s.slot/slotsPerGroup]
	lane := s.slot % slotsPerGroup
	if old := g.gen[lane]; old != gen {
		t.genCounts[old]--
		t.genCounts[gen]++
		g.gen[lane] = gen
	}
}

// Remove detaches s from the table. The record stays valid (events may
// still reference it) until Recycle is called.
func (t *Table) Remove(s *Stream) {
	if !s.inTable {
		return
	}
	gi := s.slot / slotsPerGroup
	lane := uint(s.slot % slotsPerGroup)
	g := &t.groups[gi]
	t.genCounts[g.gen[lane]]--
	// A group holding a never-used slot terminates probe chains already,
	// so no chain can be relying on this slot to keep going: reopen it as
	// empty. A full group's slot must become a tombstone instead, keeping
	// lookups probing past it.
	if matchByte(g.ctrl, ctrlEmpty) != 0 {
		g.ctrl = ctrlSet(g.ctrl, lane, ctrlEmpty)
	} else {
		g.ctrl = ctrlSet(g.ctrl, lane, ctrlTombstone)
		t.tombs++
	}
	s.inTable = false
	t.count--
	if s.Opposite != nil {
		s.Opposite.Opposite = nil
		s.Opposite = nil
	}
}

// Recycle returns a detached record to the pool. Callers must not hold
// references past this point.
func (t *Table) Recycle(s *Stream) {
	if s.inTable {
		t.Remove(s)
	}
	ref := s.ref
	*s = Stream{}
	s.ref = ref
	t.free = append(t.free, s)
}

// ExpireBefore removes every stream whose last access is older than
// deadline, invoking fn for each before removal — the paper's periodic
// full-table sweep. fn must not add or remove streams; incremental callers
// use Sweep and collect victims instead.
func (t *Table) ExpireBefore(deadline int64, fn func(*Stream)) int {
	n := 0
	for gi := range t.groups {
		g := &t.groups[gi]
		for m := g.ctrl & hiBits; m != 0; m &= m - 1 {
			lane := uint(bits.TrailingZeros64(m)) / 8
			s := t.record(g.ref[lane])
			if s.lastAccess < deadline {
				s.Status = StatusTimedOut
				if fn != nil {
					fn(s)
				}
				t.Remove(s)
				t.Expired++
				n++
			}
		}
	}
	return n
}

// Sweep visits the streams of up to maxGroups slot groups, resuming from a
// roving cursor, and returns the number of groups examined (fewer when the
// table is smaller). fn must not add or remove streams — expiry collects
// victims during the sweep and finishes them after the call. Sweeping also
// repairs generation stamps whose coarse age drifted from the record's
// exact last access (stamps alias after ~68 s idle; the sweep re-derives
// them and clamps ancient streams to the oldest representable class), so
// regular sweeps keep eviction's oldest-first approximation honest.
func (t *Table) Sweep(now int64, maxGroups int, fn func(*Stream)) int {
	if now > t.now {
		t.now = now
	}
	if n := len(t.groups); maxGroups > n {
		maxGroups = n
	}
	cur := uint8(uint64(t.now) >> genShift)
	for i := 0; i < maxGroups; i++ {
		gi := t.sweepCursor & t.mask
		t.sweepCursor++
		g := &t.groups[gi]
		for m := g.ctrl & hiBits; m != 0; m &= m - 1 {
			lane := uint(bits.TrailingZeros64(m)) / 8
			s := t.record(g.ref[lane])
			want := cur - maxAge
			if age := uint64(t.now-s.lastAccess) >> genShift; age < maxAge {
				want = uint8(uint64(s.lastAccess) >> genShift)
			}
			if old := g.gen[lane]; old != want {
				t.genCounts[old]--
				t.genCounts[want]++
				g.gen[lane] = want
			}
			if fn != nil {
				fn(s)
			}
		}
	}
	t.SweptGroups += uint64(maxGroups)
	return maxGroups
}

// findOldest locates a stream in the oldest populated age class: first the
// class via the generation counts, then a lane of that class via the roving
// eviction cursor. The scan is amortized by the cursor — successive
// evictions drain a class group by group instead of restarting.
func (t *Table) findOldest() *Stream {
	if t.count == 0 {
		return nil
	}
	cur := uint8(uint64(t.now) >> genShift)
	target := cur
	for age := maxAge; age >= 0; age-- {
		if g := cur - uint8(age); t.genCounts[g] > 0 {
			target = g
			break
		}
	}
	n := uint64(len(t.groups))
	gi := t.evictCursor & t.mask
	for scanned := uint64(0); scanned < n; scanned++ {
		g := &t.groups[gi]
		for m := g.ctrl & hiBits; m != 0; m &= m - 1 {
			lane := uint(bits.TrailingZeros64(m)) / 8
			if g.gen[lane] == target {
				t.evictCursor = gi
				return t.record(g.ref[lane])
			}
		}
		gi = (gi + 1) & t.mask
	}
	return nil
}

// EvictOldest removes a stream from the oldest populated age class to make
// room for a newer one (Scap "always stores newer streams" under memory
// exhaustion, approximated by ~268 ms age classes instead of an exact LRU).
func (t *Table) EvictOldest(fn func(*Stream)) *Stream {
	s := t.findOldest()
	if s == nil {
		return nil
	}
	s.Status = StatusEvicted
	if fn != nil {
		fn(s)
	}
	t.Remove(s)
	t.Evicted++
	return s
}

// Oldest returns a stream from the oldest populated age class without
// removing it.
func (t *Table) Oldest() *Stream { return t.findOldest() }

// Walk calls fn for every tracked stream until fn returns false. Iteration
// order is unspecified. fn must not add or remove streams; shutdown paths
// collect first and finish afterwards.
func (t *Table) Walk(fn func(*Stream) bool) {
	for gi := range t.groups {
		g := &t.groups[gi]
		for m := g.ctrl & hiBits; m != 0; m &= m - 1 {
			lane := uint(bits.TrailingZeros64(m)) / 8
			if !fn(t.record(g.ref[lane])) {
				return
			}
		}
	}
}

func (t *Table) alloc() *Stream {
	if n := len(t.free); n > 0 {
		s := t.free[n-1]
		t.free[n-1] = nil
		t.free = t.free[:n-1]
		return s
	}
	return t.newRecord()
}

// newRecord extends the paged record store. Pages never move or free, so
// every *Stream handed out stays valid for the table's lifetime — the
// invariant events, control messages, and engine maps rely on.
func (t *Table) newRecord() *Stream {
	idx := t.nextRec
	if int(idx>>pageBits) == len(t.pages) {
		t.pages = append(t.pages, new(recordPage))
	}
	t.nextRec++
	s := &t.pages[idx>>pageBits][idx&pageMask]
	s.ref = idx
	return s
}

// insert places a new record, growing or purging tombstones first when the
// load bound (7/8 of slots, counting tombstones) would be exceeded.
func (t *Table) insert(s *Stream, h uint64) {
	if (t.count+t.tombs+1)*8 > len(t.groups)*slotsPerGroup*7 {
		t.rehash()
	}
	gen := uint8(uint64(s.lastAccess) >> genShift)
	t.place(s, h, gen)
	t.genCounts[gen]++
	t.count++
}

// place probes for the first free lane along h's group chain and writes the
// slot. It maintains slot metadata only; callers own the live-count and
// generation-count bookkeeping.
func (t *Table) place(s *Stream, h uint64, gen uint8) {
	_, fp := pkt.HashSplit(h)
	gi := h & t.mask
	for step := uint64(0); ; step++ {
		g := &t.groups[gi]
		// Free lanes (empty or tombstone) are exactly those without the
		// occupied bit.
		if free := ^g.ctrl & hiBits; free != 0 {
			lane := uint(bits.TrailingZeros64(free)) / 8
			if ctrlGet(g.ctrl, lane) == ctrlTombstone {
				t.tombs--
			}
			g.ctrl = ctrlSet(g.ctrl, lane, fp)
			g.gen[lane] = gen
			g.ref[lane] = s.ref
			s.slot = gi*slotsPerGroup + uint64(lane)
			s.hash = h
			s.inTable = true
			return
		}
		gi = (gi + step + 1) & t.mask
	}
}

// rehash rebuilds the group array: doubled when live entries approach the
// load bound, same-sized when tombstones are what crowded it out. Only the
// 48-byte groups are rewritten — records never move, so held *Stream
// pointers survive every growth (the property behind Figure 5's "dynamic
// growth" with live references outstanding).
func (t *Table) rehash() {
	newLen := len(t.groups)
	if (t.count+1)*16 > newLen*slotsPerGroup*7 {
		newLen *= 2
	}
	old := t.groups
	t.groups = make([]group, newLen)
	t.mask = uint64(newLen - 1)
	t.tombs = 0
	t.Grows++
	for gi := range old {
		g := &old[gi]
		for m := g.ctrl & hiBits; m != 0; m &= m - 1 {
			lane := uint(bits.TrailingZeros64(m)) / 8
			s := t.record(g.ref[lane])
			t.place(s, s.hash, g.gen[lane])
		}
	}
}
