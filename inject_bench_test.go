package scap

// End-to-end injection throughput: frames enter through the public replay
// API, cross the simulated NIC, the per-queue kernel goroutines, the event
// rings, and the worker dispatch loop. This is the wall-clock benchmark the
// hot-path synchronization work is judged against (the figure benchmarks in
// bench_test.go run the *modeled* pipeline in internal/sim; this one runs
// the real goroutines).
//
//	go test -bench=InjectThroughput -benchtime=2s .

import (
	"fmt"
	"sync"
	"testing"

	"scap/internal/trace"
)

var (
	injectOnce   sync.Once
	injectFrames [][]byte
	injectBytes  int64

	millionOnce   sync.Once
	millionFrames [][]byte
	millionBytes  int64
)

func injectWorkload() [][]byte {
	injectOnce.Do(func() {
		g := trace.NewGenerator(trace.GenConfig{Seed: 11, Flows: 1 << 30, Concurrency: 128})
		injectFrames = trace.Collect(g, 8192)
		for _, f := range injectFrames {
			injectBytes += int64(len(f))
		}
	})
	return injectFrames
}

// millionFlowWorkload synthesizes a capture slice with ~2^20 flows live at
// once: the generator interleaves Concurrency flows, so the first ~1M frames
// open ~1M distinct streams before any of them completes. Flows are kept
// tiny (64–512 bytes) so the workload stresses flow-table scale — per-packet
// lookup, insert, and expiry cost at a million concurrent entries — rather
// than payload storage. The slice is built once and reused across
// benchmarks; it only materializes under -bench.
func millionFlowWorkload() [][]byte {
	millionOnce.Do(func() {
		g := trace.NewGenerator(trace.GenConfig{
			Seed:         17,
			Flows:        1 << 22,
			Concurrency:  1 << 20,
			MinFlowBytes: 64,
			MaxFlowBytes: 512,
		})
		millionFrames = trace.Collect(g, 1<<21)
		for _, f := range millionFrames {
			millionBytes += int64(len(f))
		}
	})
	return millionFrames
}

// BenchmarkInjectThroughput replays a synthetic workload through a running
// socket at several queue counts. One b.N unit is one frame.
func BenchmarkInjectThroughput(b *testing.B) {
	frames := injectWorkload()
	for _, queues := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("queues=%d", queues), func(b *testing.B) {
			h, err := Create(Config{Queues: queues, MemorySize: 1 << 30})
			if err != nil {
				b.Fatal(err)
			}
			h.DispatchData(func(sd *Stream) {})
			if err := h.StartCapture(); err != nil {
				b.Fatal(err)
			}
			src := &trace.SliceSource{Frames: frames}
			b.SetBytes(injectBytes / int64(len(frames)))
			b.ResetTimer()
			done := 0
			for done < b.N {
				src.Reset()
				if err := h.ReplaySource(src, 40e9); err != nil {
					b.Fatal(err)
				}
				done += len(frames)
			}
			b.StopTimer()
			if err := h.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkInject1MFlows replays the million-concurrent-flow workload end to
// end. Unlike BenchmarkInjectThroughput (128 live flows — table fits in L2),
// here ~2^20 streams are simultaneously resident, so the run is dominated by
// flow-table behavior at scale: probe length, record locality, and the
// incremental expiry sweep. One b.N unit is one frame; a single pass over
// the slice is ~2M frames, so quick runs (-benchtime=100x) do one pass.
func BenchmarkInject1MFlows(b *testing.B) {
	frames := millionFlowWorkload()
	for _, queues := range []int{1, 4} {
		b.Run(fmt.Sprintf("queues=%d", queues), func(b *testing.B) {
			h, err := Create(Config{Queues: queues, MemorySize: 1 << 30})
			if err != nil {
				b.Fatal(err)
			}
			// Flows carry ≤ 512 payload bytes; the 16 KiB default chunk
			// would make per-flow buffer zeroing, not table work, the cost.
			if err := h.SetParameter(ParamChunkSize, 2048); err != nil {
				b.Fatal(err)
			}
			h.DispatchData(func(sd *Stream) {})
			if err := h.StartCapture(); err != nil {
				b.Fatal(err)
			}
			src := &trace.SliceSource{Frames: frames}
			b.SetBytes(millionBytes / int64(len(frames)))
			b.ResetTimer()
			done := 0
			for done < b.N {
				src.Reset()
				if err := h.ReplaySource(src, 400e9); err != nil {
					b.Fatal(err)
				}
				done += len(frames)
			}
			b.StopTimer()
			if err := h.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkInjectThroughputScope replays the same workload with stream
// journaling off, at the shipping default (1-in-64 sampling), and at its
// worst case (every new stream journaled), so the journals' hot-path cost —
// the per-stream hash sample check plus seqlock event notes on every
// journaled stream — is measurable as an A/B delta. The off-vs-default delta
// is the acceptance budget; scope=all bounds the cost of turning the stride
// all the way up. Run interleaved for stable medians:
//
//	for i in $(seq 6); do go test -run '^$' -bench InjectThroughputScope -count 1 .; done
func BenchmarkInjectThroughputScope(b *testing.B) {
	frames := injectWorkload()
	for _, cfg := range []struct {
		name    string
		streams StreamsConfig
	}{
		{"scope=off", StreamsConfig{Disabled: true}},
		{"scope=1in64", StreamsConfig{}}, // default SampleEvery
		{"scope=all", StreamsConfig{SampleEvery: 1}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			h, err := Create(Config{
				Queues:     4,
				MemorySize: 1 << 30,
				Streams:    cfg.streams,
				History:    HistoryConfig{Disabled: true},
			})
			if err != nil {
				b.Fatal(err)
			}
			h.DispatchData(func(sd *Stream) {})
			if err := h.StartCapture(); err != nil {
				b.Fatal(err)
			}
			src := &trace.SliceSource{Frames: frames}
			b.SetBytes(injectBytes / int64(len(frames)))
			b.ResetTimer()
			done := 0
			for done < b.N {
				src.Reset()
				if err := h.ReplaySource(src, 40e9); err != nil {
					b.Fatal(err)
				}
				done += len(frames)
			}
			b.StopTimer()
			if err := h.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
