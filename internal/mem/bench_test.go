package mem

import "testing"

func BenchmarkAdmitUncontended(b *testing.B) {
	m := New(Config{Size: 1 << 30, Priorities: 2})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if m.Admit(1, 0, 1024) == Admit {
			m.Release(1024)
		}
	}
}

// BenchmarkMemAdmitParallel contends Admit/Release across GOMAXPROCS — the
// per-packet PPL decision every core makes against the one shared Manager.
func BenchmarkMemAdmitParallel(b *testing.B) {
	m := New(Config{Size: 1 << 30, Priorities: 2})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if m.Admit(1, 0, 1460) == Admit {
				m.Release(1460)
			}
		}
	})
}

func BenchmarkDecideUnderPressure(b *testing.B) {
	m := New(Config{Size: 1 << 20, BaseThreshold: 0.5, Priorities: 4, OverloadCutoff: 1 << 14})
	m.Reserve(900 << 10) // ~86%: inside the watermark region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Decide(i&3, int64(i)<<6, 1460)
	}
}
