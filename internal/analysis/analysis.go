// Package analysis implements scaplint, a repo-specific static-analysis
// suite for the capture path's hot-path and concurrency invariants.
//
// The paper's performance claims rest on a disciplined split between the
// per-core kernel path (one goroutine owning each engine) and user threads
// reading snapshots. Go's race detector only checks the interleavings tests
// happen to execute; these analyzers enforce the invariants statically:
//
//   - statssnapshot: exported snapshot getters on shared types must not
//     return structs whose fields are mutated elsewhere without
//     synchronization (the Engine.Stats data-race shape).
//   - hotpathalloc: functions marked //scap:hotpath must not allocate
//     (fmt formatting, time.Now, map/slice literals, make, new, capturing
//     closures, unvetted append) on the per-packet path.
//   - hotpathlock: functions marked //scap:hotpath must not acquire a
//     sync.Mutex or sync.RWMutex — the per-packet path shares state
//     through single-writer structures and atomics, not locks.
//   - lockdiscipline: struct fields annotated "guarded by <mu>" must only
//     be touched by methods that acquire that mutex (or are *Locked
//     helpers called with it held).
//   - metricreg: functions marked //scap:hotpath may only use the
//     internal/metrics atomic fast path (Add/Inc/Set/Observe/Record/Load);
//     metric registration and snapshot assembly belong in setup code.
//   - exporteddoc: packages carrying a //scap:publicapi file marker must
//     document every exported symbol.
//
// Everything is built on the stdlib go/ast + go/types + go/parser stack;
// the module stays dependency-free. Findings can be suppressed line-by-line
// with "//scaplint:ignore <analyzer> [reason]" on the flagged line or the
// line above it.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check applied to a loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package) []Diagnostic
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{StatsSnapshot, HotPathAlloc, HotPathLock, LockDiscipline, MetricReg, ExportedDoc}
}

// RunAll applies the analyzers to every package, drops suppressed
// diagnostics, and sorts the rest by position.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		sup := p.suppressions()
		for _, a := range analyzers {
			for _, d := range a.Run(p) {
				if sup.matches(d) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
