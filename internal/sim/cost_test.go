package sim

import "testing"

func TestServerWorkSerializes(t *testing.T) {
	var s Server
	hz := 1e9 // 1 cycle = 1 ns
	// Work arriving at t=0 for 100 cycles finishes at 100.
	if d := s.Work(0, 100, hz); d != 100 {
		t.Errorf("dur = %d", d)
	}
	if s.FreeAt() != 100 {
		t.Errorf("freeAt = %d", s.FreeAt())
	}
	// Work arriving at t=50 queues behind the backlog.
	s.Work(50, 100, hz)
	if s.FreeAt() != 200 {
		t.Errorf("freeAt = %d, want 200 (queued)", s.FreeAt())
	}
	// Work arriving after the backlog drains starts at its arrival time.
	s.Work(1000, 100, hz)
	if s.FreeAt() != 1100 {
		t.Errorf("freeAt = %d, want 1100 (idle gap)", s.FreeAt())
	}
	if !s.Idle(2000) || s.Idle(1050) {
		t.Error("Idle wrong")
	}
}

func TestUtilizationClamped(t *testing.T) {
	if u := utilization(500, 1000); u != 0.5 {
		t.Errorf("u = %v", u)
	}
	if u := utilization(2000, 1000); u != 1 {
		t.Errorf("overload u = %v, want clamp to 1", u)
	}
	if u := utilization(10, 0); u != 0 {
		t.Errorf("zero elapsed u = %v", u)
	}
}

func TestDefaultCostModelSane(t *testing.T) {
	m := DefaultCostModel()
	if m.CoreHz != 2e9 || m.Cores != 8 {
		t.Errorf("testbed shape wrong: %+v", m)
	}
	// The calibrated orderings the figures depend on.
	if m.ScapPerByte <= m.PcapPerByte {
		t.Error("kernel reassembly must cost more per byte than a ring copy")
	}
	if m.MatchPerByte <= m.TouchPerByte {
		t.Error("matching must dominate touching")
	}
	if m.MissPerByteScattered <= m.MissPerByteGrouped {
		t.Error("scattered data must miss more than grouped data")
	}
	if m.NidsPerPacket <= m.ScapPerPacket-1000 {
		t.Error("per-packet cost ordering broken")
	}
}

func TestMetricsLossFractionConversion(t *testing.T) {
	m := Metrics{
		OfferedPackets:    1000,
		DroppedPPL:        100,
		DroppedEvents:     5,
		DroppedEventBytes: 50_000,
		AvgPayload:        1000,
	}
	// 100 PPL + 50 packet-equivalents from chunk bytes.
	if got := m.PacketLossFraction(); got != 0.15 {
		t.Errorf("loss = %v, want 0.15", got)
	}
	// Without AvgPayload, chunk count is used directly.
	m.AvgPayload = 0
	if got := m.PacketLossFraction(); got != 0.105 {
		t.Errorf("loss = %v, want 0.105", got)
	}
	// Clamped to 1.
	m.DroppedPPL = 10_000
	if got := m.PacketLossFraction(); got != 1 {
		t.Errorf("loss = %v, want 1", got)
	}
}
