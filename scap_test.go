package scap

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"scap/internal/pkt"
	"scap/internal/trace"
)

// runSocket drives a configured socket over a generated workload and waits
// for completion.
func runSocket(t *testing.T, h *Handle, gen trace.Source) {
	t.Helper()
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}
	if err := h.ReplaySource(gen, 1e9); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

func smallGen(seed int64, flows int) *trace.Generator {
	return trace.NewGenerator(trace.GenConfig{
		Seed: seed, Flows: flows, Concurrency: 8,
		MinFlowBytes: 500, MaxFlowBytes: 50 << 10, TCPFraction: 1,
	})
}

func TestFlowStatsExport(t *testing.T) {
	h, err := Create(Config{Queues: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetCutoff(0); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	type flowRec struct {
		key   FlowKey
		bytes uint64
		pkts  uint64
	}
	var flows []flowRec
	h.DispatchTermination(func(sd *Stream) {
		mu.Lock()
		defer mu.Unlock()
		flows = append(flows, flowRec{sd.Key(), sd.Stats().Bytes, sd.Stats().Pkts})
	})
	dataEvents := int32(0)
	h.DispatchData(func(sd *Stream) { atomic.AddInt32(&dataEvents, 1) })

	gen := smallGen(1, 40)
	runSocket(t, h, gen)

	mu.Lock()
	defer mu.Unlock()
	if len(flows) != 80 { // two directions per flow
		t.Errorf("terminations = %d, want 80", len(flows))
	}
	for _, f := range flows {
		if f.pkts == 0 || f.bytes == 0 {
			t.Errorf("empty stats for %v", f.key)
		}
	}
	if n := atomic.LoadInt32(&dataEvents); n != 0 {
		t.Errorf("cutoff 0 still produced %d data events", n)
	}
	st, err := h.GetStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.StreamsCreated != 80 || st.MemoryUsed != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStreamDataDelivery(t *testing.T) {
	h, _ := Create(Config{Queues: 2})
	pattern := []byte("UNIQUE-NEEDLE-0123456789")
	gen := trace.NewGenerator(trace.GenConfig{
		Seed: 2, Flows: 20, Concurrency: 4, TCPFraction: 1,
		MinFlowBytes: 2000, MaxFlowBytes: 20000,
		EmbedPatterns: [][]byte{pattern}, EmbedProb: 1,
	})
	var mu sync.Mutex
	var found int
	var total int64
	h.DispatchData(func(sd *Stream) {
		mu.Lock()
		defer mu.Unlock()
		total += int64(len(sd.Data))
		if bytes.Contains(sd.Data, pattern) {
			found++
		}
	})
	runSocket(t, h, gen)
	mu.Lock()
	defer mu.Unlock()
	if found == 0 {
		t.Error("embedded pattern never delivered")
	}
	if total == 0 {
		t.Error("no stream data delivered")
	}
}

func TestFilterAndCutoffClass(t *testing.T) {
	h, _ := Create(Config{Queues: 1})
	if err := h.SetFilter("tcp and port 80"); err != nil {
		t.Fatal(err)
	}
	// "port 80" matches both directions of web connections, so the class
	// cutoff binds the server's response stream too.
	if err := h.AddCutoffClass(128, "port 80"); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	perStream := map[uint64]int{}
	var badStream bool
	h.DispatchData(func(sd *Stream) {
		mu.Lock()
		defer mu.Unlock()
		k := sd.Key()
		if k.SrcPort != 80 && k.DstPort != 80 {
			badStream = true
		}
		perStream[sd.ID()] += len(sd.Data)
	})
	gen := trace.NewGenerator(trace.GenConfig{
		Seed: 3, Flows: 30, Concurrency: 4, TCPFraction: 1,
		MinFlowBytes: 2000, MaxFlowBytes: 8000,
		ServerPorts: []trace.PortWeight{{Port: 80, Weight: 0.5}, {Port: 443, Weight: 0.5}},
	})
	runSocket(t, h, gen)
	mu.Lock()
	defer mu.Unlock()
	if badStream {
		t.Error("filter leaked a non-port-80 stream")
	}
	for id, n := range perStream {
		if n > 128 {
			t.Errorf("stream %d delivered %d bytes beyond its class cutoff", id, n)
		}
	}
}

func TestSetFilterErrors(t *testing.T) {
	h, _ := Create(Config{})
	if err := h.SetFilter("not a ((valid filter"); err == nil {
		t.Error("bad filter accepted")
	}
	if err := h.AddCutoffClass(1, "bogus &&& expr"); err == nil {
		t.Error("bad class filter accepted")
	}
	if err := h.SetParameter(ParamBaseThreshold, 2000); err == nil {
		t.Error("bad base threshold accepted")
	}
	if err := h.AddCutoffDirection(10, Direction(9)); err == nil {
		t.Error("bad direction accepted")
	}
}

func TestConfigFrozenAfterStart(t *testing.T) {
	h, _ := Create(Config{Queues: 1})
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.SetCutoff(5); err != ErrStarted {
		t.Errorf("SetCutoff after start = %v", err)
	}
	if err := h.SetFilter("tcp"); err != ErrStarted {
		t.Errorf("SetFilter after start = %v", err)
	}
	if err := h.SetWorkerThreads(2); err != ErrStarted {
		t.Errorf("SetWorkerThreads after start = %v", err)
	}
	if err := h.StartCapture(); err != ErrStarted {
		t.Errorf("double start = %v", err)
	}
}

func TestDiscardStream(t *testing.T) {
	h, _ := Create(Config{Queues: 1})
	var mu sync.Mutex
	bytesAfterDiscard := 0
	discarded := map[uint64]bool{}
	h.DispatchData(func(sd *Stream) {
		mu.Lock()
		defer mu.Unlock()
		if discarded[sd.ID()] {
			bytesAfterDiscard += len(sd.Data)
			return
		}
		// Discard every stream after its first chunk.
		sd.Discard()
		discarded[sd.ID()] = true
	})
	h.SetParameter(ParamChunkSize, 512)
	gen := smallGen(4, 10)
	runSocket(t, h, gen)
	// Discard is asynchronous; a chunk already in flight may still arrive,
	// but the flood must stop.
	mu.Lock()
	defer mu.Unlock()
	if bytesAfterDiscard > 50*1024 {
		t.Errorf("%d bytes delivered after discard", bytesAfterDiscard)
	}
}

func TestKeepChunkMerging(t *testing.T) {
	h, _ := Create(Config{Queues: 1})
	h.SetParameter(ParamChunkSize, 256)
	var mu sync.Mutex
	var maxChunk int
	h.DispatchData(func(sd *Stream) {
		mu.Lock()
		defer mu.Unlock()
		if len(sd.Data) > maxChunk {
			maxChunk = len(sd.Data)
		}
		if !sd.Last && len(sd.Data) < 1024 {
			sd.KeepChunk()
		}
	})
	gen := trace.NewGenerator(trace.GenConfig{
		Seed: 5, Flows: 5, Concurrency: 1, TCPFraction: 1,
		MinFlowBytes: 4000, MaxFlowBytes: 8000,
	})
	runSocket(t, h, gen)
	mu.Lock()
	defer mu.Unlock()
	if maxChunk <= 256 {
		t.Errorf("max chunk %d — keep-chunk merging never grew a chunk", maxChunk)
	}
}

func TestMemoryAndBlocksSettleAfterClose(t *testing.T) {
	// Keep-heavy workload over the arena: after Close every admitted byte
	// must be released and every block back in the free pool — kept chunks,
	// lost events, and final-drain deliveries included.
	h, err := Create(Config{Queues: 2, NeedPkts: true})
	if err != nil {
		t.Fatal(err)
	}
	h.SetParameter(ParamChunkSize, 512)
	h.DispatchData(func(sd *Stream) {
		if !sd.Last && len(sd.Data) < 4096 {
			sd.KeepChunk()
		}
	})
	runSocket(t, h, smallGen(7, 40))
	if used := h.mm.Used(); used != 0 {
		t.Errorf("%d bytes still charged to stream memory after Close", used)
	}
	if n := h.mm.BlocksInUse(); n != 0 {
		t.Errorf("%d arena blocks still out of the free pool after Close", n)
	}
}

func TestPacketDelivery(t *testing.T) {
	h, _ := Create(Config{Queues: 1, NeedPkts: true})
	var mu sync.Mutex
	var pkts, withPayload int
	h.DispatchData(func(sd *Stream) {
		mu.Lock()
		defer mu.Unlock()
		for pi := sd.NextPacket(); pi != nil; pi = sd.NextPacket() {
			pkts++
			if len(pi.Payload) > 0 {
				withPayload++
			}
			if pi.WireLen == 0 {
				t.Error("empty packet record")
			}
		}
	})
	gen := smallGen(6, 10)
	runSocket(t, h, gen)
	mu.Lock()
	defer mu.Unlock()
	if pkts == 0 || withPayload == 0 {
		t.Errorf("packet records: %d total, %d with payload", pkts, withPayload)
	}
}

func TestStreamPriorityControl(t *testing.T) {
	h, _ := Create(Config{Queues: 1})
	h.SetParameter(ParamPriorities, 2)
	created := make(chan struct{}, 8)
	var sawHigh atomic.Bool
	h.DispatchCreation(func(sd *Stream) {
		if sd.Key().DstPort == 80 || sd.Key().SrcPort == 80 {
			sd.SetPriority(1)
		}
		created <- struct{}{}
	})
	h.DispatchTermination(func(sd *Stream) {
		if sd.Priority() == 1 {
			sawHigh.Store(true)
		}
	})
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}
	// Controls are applied asynchronously by the owning engine; injecting
	// the handshake first and waiting for the creation callbacks makes the
	// priority change land before the data and termination packets.
	key := FlowKey{
		SrcIP: pkt.MustAddr("10.0.0.1"), DstIP: pkt.MustAddr("10.0.0.2"),
		SrcPort: 50000, DstPort: 80, Proto: pkt.ProtoTCP,
	}
	ts := int64(0)
	send := func(frame []byte) {
		ts += 1000
		if err := h.InjectFrame(frame, ts); err != nil {
			t.Fatal(err)
		}
	}
	send(pkt.BuildTCP(pkt.TCPSpec{Key: key, Seq: 100, Flags: pkt.FlagSYN}))
	send(pkt.BuildTCP(pkt.TCPSpec{Key: key.Reverse(), Seq: 500, Ack: 101, Flags: pkt.FlagSYN | pkt.FlagACK}))
	<-created
	<-created
	// Give the engine a packet to drain the control queue with, then
	// finish the connection.
	send(pkt.BuildTCP(pkt.TCPSpec{Key: key, Seq: 101, Ack: 501, Flags: pkt.FlagACK | pkt.FlagPSH, Payload: []byte("GET /")}))
	send(pkt.BuildTCP(pkt.TCPSpec{Key: key, Seq: 106, Ack: 501, Flags: pkt.FlagFIN | pkt.FlagACK}))
	send(pkt.BuildTCP(pkt.TCPSpec{Key: key.Reverse(), Seq: 501, Ack: 107, Flags: pkt.FlagFIN | pkt.FlagACK}))
	h.Close()
	if !sawHigh.Load() {
		t.Error("priority setting never observed at termination")
	}
}

func TestPcapRoundTripThroughSocket(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewPcapWriter(f, 0)
	gen := smallGen(8, 10)
	trace.Replay(gen, 1e9, func(frame []byte, ts int64) bool {
		return w.Write(frame, ts) == nil
	})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	h, _ := Create(Config{Queues: 2})
	var terms atomic.Int32
	h.DispatchTermination(func(sd *Stream) { terms.Add(1) })
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}
	if err := h.ReplayPcap(path); err != nil {
		t.Fatal(err)
	}
	h.Close()
	if terms.Load() != 20 {
		t.Errorf("terminations from pcap = %d, want 20", terms.Load())
	}
}

func TestInjectBeforeStart(t *testing.T) {
	h, _ := Create(Config{})
	if err := h.InjectFrame([]byte{1, 2, 3}, 1); err != ErrNotStarted {
		t.Errorf("err = %v, want ErrNotStarted", err)
	}
	if err := h.ReplayPcap("/nonexistent"); err != ErrNotStarted {
		t.Errorf("err = %v, want ErrNotStarted", err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	h, _ := Create(Config{Queues: 1})
	h.StartCapture()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != ErrClosed {
		t.Errorf("second close = %v", err)
	}
}

func TestMultipleWorkers(t *testing.T) {
	h, _ := Create(Config{Queues: 4})
	if err := h.SetWorkerThreads(4); err != nil {
		t.Fatal(err)
	}
	var data atomic.Int64
	var terms atomic.Int32
	h.DispatchData(func(sd *Stream) { data.Add(int64(len(sd.Data))) })
	h.DispatchTermination(func(sd *Stream) { terms.Add(1) })
	gen := smallGen(9, 100)
	runSocket(t, h, gen)
	if terms.Load() != 200 {
		t.Errorf("terminations = %d, want 200", terms.Load())
	}
	if data.Load() == 0 {
		t.Error("no data delivered")
	}
}

func TestProcessingTimeAccumulates(t *testing.T) {
	h, _ := Create(Config{Queues: 1})
	h.SetParameter(ParamChunkSize, 256)
	var saw atomic.Bool
	h.DispatchData(func(sd *Stream) {
		if sd.Chunks() > 1 && sd.ProcessingTime() > 0 {
			saw.Store(true)
		}
		// Burn a little time so the accumulator is visibly nonzero.
		for i := 0; i < 1000; i++ {
			_ = i * i
		}
	})
	gen := trace.NewGenerator(trace.GenConfig{
		Seed: 10, Flows: 3, Concurrency: 1, TCPFraction: 1,
		MinFlowBytes: 4096, MaxFlowBytes: 8192,
	})
	runSocket(t, h, gen)
	if !saw.Load() {
		t.Error("processing time never accumulated across chunks")
	}
}
