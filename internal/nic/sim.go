package nic

import (
	"sync"
)

// Sim is the simulated capture backend: the model 82599 NIC plus the
// per-queue delivery channels that stand in for the paper's softirq→
// kernel-thread handoff. Frames enter through the injection surface
// (ReceiveAt/Poll on the embedded NIC, then Deliver), exactly the path
// the replay APIs used before the backend split, so sim behavior is
// unchanged: a slow kernel goroutine backpressures the injector through
// the bounded channel instead of dropping.
//
// Concurrency: any number of injector goroutines may call the embedded
// NIC's entry points and Deliver concurrently (the NIC mutex serializes
// steering; the channels serialize delivery). Close must not run
// concurrently with Deliver — the capture layer stops injecting before it
// tears the backend down, mirroring the old frameCh contract.
//
//scap:shared
type Sim struct {
	// NIC is the embedded controller model; its RSS, FDIR, defragmentation,
	// and balancing behavior is exactly the pre-backend-split NIC.
	*NIC
	ch   []chan []Frame
	done chan struct{}
	once sync.Once
}

// NewSim builds the simulated backend around a model NIC with cfg.
func NewSim(cfg Config) *Sim {
	n := New(cfg)
	s := &Sim{NIC: n, done: make(chan struct{})}
	s.ch = make([]chan []Frame, n.cfg.Queues)
	for q := range s.ch {
		s.ch[q] = make(chan []Frame, backendBatchCap)
	}
	return s
}

// Open activates the backend. The simulated NIC has no source goroutines —
// injectors push frames — so Open is a no-op.
func (s *Sim) Open() error { return nil }

// Batches returns queue q's delivery channel.
func (s *Sim) Batches(q int) <-chan []Frame { return s.ch[q] }

// Done is closed when Close has shut every delivery channel.
func (s *Sim) Done() <-chan struct{} { return s.done }

// Deliver hands one queue's frame batch to its kernel goroutine. The send
// is the sim backend's backpressure point: when the consumer falls behind
// by more than the channel depth, the injector parks, like the paper's
// replay blocking on a saturated capture thread.
func (s *Sim) Deliver(q int, batch []Frame) {
	//scaplint:ignore hotpathblock intentional backpressure: when a kernel goroutine falls behind, the delivery send parks the injector instead of growing an unbounded backlog
	s.ch[q] <- batch
}

// Close shuts every delivery channel so the kernel goroutines drain and
// exit. Idempotent; must not race Deliver (stop injecting first).
func (s *Sim) Close() error {
	s.once.Do(func() {
		for _, ch := range s.ch {
			close(ch)
		}
		close(s.done)
	})
	return nil
}

// Capabilities reports the modeled 82599 facilities: hardware RSS and
// FDIR tables at the configured capacities, hardware timestamps, and the
// §2.4 dynamic balancer when enabled.
func (n *NIC) Capabilities() Capabilities {
	n.mu.Lock()
	defer n.mu.Unlock()
	return Capabilities{
		RSSQueues:        n.cfg.Queues,
		PerfectFilters:   n.cfg.PerfectFilterCap,
		SignatureFilters: n.cfg.SignatureFilterCap,
		HWFilters:        true,
		HWTimestamps:     true,
		DynamicBalance:   n.lb != nil,
	}
}
