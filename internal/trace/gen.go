// Package trace synthesizes network workloads that stand in for the
// paper's 46 GB campus trace (58.7 M packets, 1.49 M flows, 95.4% TCP), and
// provides pcap file I/O plus a rate-controlled replayer.
//
// The evaluation's conclusions depend on the trace only through a few
// moments that the generator exposes as parameters: the heavy-tailed flow
// size distribution (which makes per-flow cutoffs profitable), the TCP
// share, the flow arrival concurrency, and segment-level noise
// (reordering, duplication). Flow sizes follow a bounded Pareto, the
// canonical heavy-tail model for Internet flows.
package trace

import (
	"math"
	"math/rand"
	"net/netip"
)

// Frame is one generated packet in emission order. TS is a virtual
// timestamp in nanoseconds assigned by the replayer (zero when the
// generator is used directly).
type Frame struct {
	Data []byte
	TS   int64
}

// GenConfig parametrizes the workload generator.
type GenConfig struct {
	Seed int64
	// Flows is the total number of TCP/UDP flows to synthesize.
	Flows int
	// Concurrency is how many flows are interleaved at any time.
	Concurrency int

	// Flow payload sizes (client request + server response) follow a
	// bounded Pareto with shape Alpha on [MinFlowBytes, MaxFlowBytes].
	Alpha        float64
	MinFlowBytes int
	MaxFlowBytes int

	// MSS bounds segment payloads.
	MSS int
	// TCPFraction of flows are TCP; the rest are UDP.
	TCPFraction float64
	// RequestFraction of a TCP flow's bytes flow client->server.
	RequestFraction float64

	// Perturbations, applied per data segment.
	ReorderProb   float64 // swap with the flow's next segment
	DuplicateProb float64 // emit the segment twice

	// ServerPorts are drawn with the given weights; empty selects a
	// web-heavy default mix.
	ServerPorts []PortWeight

	// EmbedPatterns, when non-empty, are spliced into stream payloads
	// near the start of flows with probability EmbedProb per flow —
	// mimicking attack strings in the first bytes of HTTP transactions.
	EmbedPatterns [][]byte
	EmbedProb     float64
}

// PortWeight weights a server port in the generated mix.
type PortWeight struct {
	Port   uint16
	Weight float64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Flows <= 0 {
		c.Flows = 1000
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 64
	}
	if c.Concurrency > c.Flows {
		c.Concurrency = c.Flows
	}
	if c.Alpha <= 0 {
		c.Alpha = 1.2 // classic heavy-tail shape for flow sizes
	}
	if c.MinFlowBytes <= 0 {
		c.MinFlowBytes = 200
	}
	if c.MaxFlowBytes <= 0 {
		c.MaxFlowBytes = 10 << 20
	}
	if c.MSS <= 0 {
		c.MSS = 1460
	}
	if c.TCPFraction <= 0 || c.TCPFraction > 1 {
		c.TCPFraction = 0.954 // the trace's TCP share
	}
	if c.RequestFraction <= 0 || c.RequestFraction >= 1 {
		c.RequestFraction = 0.12
	}
	if len(c.ServerPorts) == 0 {
		c.ServerPorts = []PortWeight{
			{80, 0.55}, {443, 0.2}, {25, 0.05}, {22, 0.05},
			{8080, 0.05}, {53, 0.05}, {1935, 0.05},
		}
	}
	return c
}

// Generator emits a packet workload one frame at a time, interleaving
// Concurrency live flows; memory use is O(Concurrency), independent of
// total trace size.
type Generator struct {
	cfg     GenConfig
	rng     *rand.Rand
	active  []*session
	started int

	// Totals, maintained as frames are emitted.
	Packets   uint64
	Bytes     uint64
	FlowsMade int
	// Embedded counts flows that actually carried an embedded pattern —
	// the ground-truth denominator for pattern-match accuracy metrics.
	Embedded int
}

// NewGenerator creates a generator.
func NewGenerator(cfg GenConfig) *Generator {
	cfg = cfg.withDefaults()
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	for g.started < cfg.Concurrency {
		g.spawn()
	}
	return g
}

// Next returns the next frame, or nil when the workload is exhausted. The
// returned slice is freshly allocated and owned by the caller.
func (g *Generator) Next() []byte {
	for len(g.active) > 0 {
		i := g.rng.Intn(len(g.active))
		ss := g.active[i]
		frame := ss.next(g)
		if frame == nil {
			// Session finished: replace it with a fresh flow if any remain.
			g.active[i] = g.active[len(g.active)-1]
			g.active = g.active[:len(g.active)-1]
			g.spawn()
			continue
		}
		g.Packets++
		g.Bytes += uint64(len(frame))
		return frame
	}
	return nil
}

func (g *Generator) spawn() {
	if g.started >= g.cfg.Flows {
		return
	}
	g.started++
	g.FlowsMade++
	g.active = append(g.active, g.newSession())
}

// paretoSize draws a bounded Pareto flow size using the inverse CDF in the
// overflow-safe form x = L·(1 − u·(1 − (L/H)^α))^(−1/α); the naive H^α
// form overflows float64 for large α (used to model constant-size flows).
func (g *Generator) paretoSize() int {
	lo := float64(g.cfg.MinFlowBytes)
	hi := float64(g.cfg.MaxFlowBytes)
	a := g.cfg.Alpha
	u := g.rng.Float64()
	r := math.Exp(a * math.Log(lo/hi)) // (L/H)^α, underflows safely to 0
	x := lo * math.Pow(1-u*(1-r), -1/a)
	if !(x >= lo) { // also catches NaN
		x = lo
	}
	if x > hi {
		x = hi
	}
	return int(x)
}

func (g *Generator) pickPort() uint16 {
	total := 0.0
	for _, pw := range g.cfg.ServerPorts {
		total += pw.Weight
	}
	r := g.rng.Float64() * total
	for _, pw := range g.cfg.ServerPorts {
		r -= pw.Weight
		if r <= 0 {
			return pw.Port
		}
	}
	return g.cfg.ServerPorts[len(g.cfg.ServerPorts)-1].Port
}

func (g *Generator) randClientAddr() netip.Addr {
	return netip.AddrFrom4([4]byte{10, byte(g.rng.Intn(256)), byte(g.rng.Intn(256)), byte(1 + g.rng.Intn(254))})
}

func (g *Generator) randServerAddr() netip.Addr {
	return netip.AddrFrom4([4]byte{203, byte(g.rng.Intn(64)), byte(g.rng.Intn(256)), byte(1 + g.rng.Intn(254))})
}

// fillPayload writes pseudo-random printable bytes.
func (g *Generator) fillPayload(b []byte) {
	const chars = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 /.:-_?&=\r\n"
	for i := range b {
		b[i] = chars[g.rng.Intn(len(chars))]
	}
}
