package core

import (
	"bytes"
	"math/rand"
	"testing"

	"scap/internal/bpf"
	"scap/internal/event"
	"scap/internal/flowtab"
	"scap/internal/mem"
	"scap/internal/nic"
	"scap/internal/pkt"
	"scap/internal/reassembly"
)

// session synthesizes one side-complete TCP conversation for tests.
type session struct {
	key     pkt.FlowKey
	seq     uint32 // client next seq
	ackSeq  uint32 // server next seq
	started bool
}

func newSession(sp, dp uint16) *session {
	return &session{
		key: pkt.FlowKey{
			SrcIP: pkt.MustAddr("10.0.0.1"), DstIP: pkt.MustAddr("172.16.0.2"),
			SrcPort: sp, DstPort: dp, Proto: pkt.ProtoTCP,
		},
		seq:    1000,
		ackSeq: 5000,
	}
}

func (ss *session) syn() []byte {
	f := pkt.BuildTCP(pkt.TCPSpec{Key: ss.key, Seq: ss.seq, Flags: pkt.FlagSYN})
	ss.seq++
	return f
}

func (ss *session) synack() []byte {
	f := pkt.BuildTCP(pkt.TCPSpec{Key: ss.key.Reverse(), Seq: ss.ackSeq, Ack: ss.seq, Flags: pkt.FlagSYN | pkt.FlagACK})
	ss.ackSeq++
	return f
}

func (ss *session) data(payload []byte) []byte {
	f := pkt.BuildTCP(pkt.TCPSpec{Key: ss.key, Seq: ss.seq, Ack: ss.ackSeq, Flags: pkt.FlagACK | pkt.FlagPSH, Payload: payload})
	ss.seq += uint32(len(payload))
	return f
}

func (ss *session) srvData(payload []byte) []byte {
	f := pkt.BuildTCP(pkt.TCPSpec{Key: ss.key.Reverse(), Seq: ss.ackSeq, Ack: ss.seq, Flags: pkt.FlagACK | pkt.FlagPSH, Payload: payload})
	ss.ackSeq += uint32(len(payload))
	return f
}

func (ss *session) fin() []byte {
	f := pkt.BuildTCP(pkt.TCPSpec{Key: ss.key, Seq: ss.seq, Ack: ss.ackSeq, Flags: pkt.FlagFIN | pkt.FlagACK})
	ss.seq++
	return f
}

func (ss *session) srvFin() []byte {
	f := pkt.BuildTCP(pkt.TCPSpec{Key: ss.key.Reverse(), Seq: ss.ackSeq, Ack: ss.seq, Flags: pkt.FlagFIN | pkt.FlagACK})
	ss.ackSeq++
	return f
}

func (ss *session) rst() []byte {
	return pkt.BuildTCP(pkt.TCPSpec{Key: ss.key, Seq: ss.seq, Flags: pkt.FlagRST})
}

// harness drives an engine and records events.
type harness struct {
	e      *Engine
	q      *event.Queue
	mm     *mem.Manager
	ts     int64
	events []event.Event
}

func newHarness(cfg Config) *harness {
	return newHarnessOpts(Options{Config: cfg})
}

func newHarnessOpts(opts Options) *harness {
	q := event.NewQueue(1 << 14)
	mm := opts.Mem
	if mm == nil {
		mm = mem.New(mem.Config{Size: 64 << 20, Priorities: opts.Config.Priorities})
	}
	opts.Mem = mm
	opts.Queue = q
	opts.Rand = rand.New(rand.NewSource(42))
	return &harness{e: NewEngine(opts), q: q, mm: mm}
}

// feed sends a frame and drains events; each data event's memory is
// released the way the user-level stub would after the callback.
func (h *harness) feed(frames ...[]byte) {
	for _, f := range frames {
		h.ts += 1000
		h.e.HandleFrame(f, h.ts)
		h.drain()
	}
}

func (h *harness) drain() {
	for {
		ev, ok := h.q.Poll()
		if !ok {
			return
		}
		if ev.Type == event.Data {
			// Copy the data and records, then hand the block back the way
			// the user-level worker would after its callback.
			ev.Data = append([]byte(nil), ev.Data...)
			ev.Pkts = append([]event.PacketRecord(nil), ev.Pkts...)
			if ev.Accounted > 0 {
				h.mm.Release(ev.Accounted)
			}
			h.mm.ReturnBlock(h.e.CoreID(), ev.Block)
			ev.Block = mem.NoBlock
		}
		h.events = append(h.events, ev)
	}
}

func (h *harness) byType(t event.Type) []event.Event {
	var out []event.Event
	for _, ev := range h.events {
		if ev.Type == t {
			out = append(out, ev)
		}
	}
	return out
}

// dataFor concatenates delivered chunks for a stream ID.
func (h *harness) dataFor(id uint64) []byte {
	var buf []byte
	for _, ev := range h.byType(event.Data) {
		if ev.Info.ID == id {
			skip := 0
			if ev.Info.OverlapSize > 0 && len(buf) > 0 {
				skip = ev.Info.OverlapSize
				if skip > len(ev.Data) {
					skip = len(ev.Data)
				}
			}
			buf = append(buf, ev.Data[skip:]...)
		}
	}
	return buf
}

func TestFullSessionLifecycle(t *testing.T) {
	h := newHarness(Config{Cutoff: CutoffUnlimited})
	ss := newSession(40000, 80)
	req := []byte("GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n")
	resp := bytes.Repeat([]byte("response-data "), 100)
	h.feed(ss.syn(), ss.synack(), ss.data(req), ss.srvData(resp), ss.fin(), ss.srvFin())

	creations := h.byType(event.Creation)
	if len(creations) != 2 {
		t.Fatalf("creation events = %d, want 2 (one per direction)", len(creations))
	}
	terms := h.byType(event.Termination)
	if len(terms) != 2 {
		t.Fatalf("termination events = %d, want 2", len(terms))
	}
	for _, ev := range terms {
		if ev.Info.Status != flowtab.StatusClosed {
			t.Errorf("termination status = %v", ev.Info.Status)
		}
	}

	var clientID, serverID uint64
	for _, ev := range creations {
		if ev.Info.Dir == pkt.DirClient {
			clientID = ev.Info.ID
		} else {
			serverID = ev.Info.ID
		}
	}
	if got := h.dataFor(clientID); !bytes.Equal(got, req) {
		t.Errorf("client stream data = %q", got)
	}
	if got := h.dataFor(serverID); !bytes.Equal(got, resp) {
		t.Errorf("server stream: got %d bytes, want %d", len(got), len(resp))
	}
	if used := h.mm.Used(); used != 0 {
		t.Errorf("memory not fully released: %d", used)
	}
	if st := h.e.Stats(); st.StreamsClosed != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestChunkingAtChunkSize(t *testing.T) {
	h := newHarness(Config{ChunkSize: 1024, Cutoff: CutoffUnlimited})
	ss := newSession(40001, 80)
	h.feed(ss.syn(), ss.synack())
	payload := bytes.Repeat([]byte("z"), 300)
	for i := 0; i < 12; i++ { // 3600 bytes -> 3 full chunks + partial
		h.feed(ss.data(payload))
	}
	data := h.byType(event.Data)
	if len(data) != 3 {
		t.Fatalf("data events = %d, want 3 full chunks before close", len(data))
	}
	for _, ev := range data {
		if len(ev.Data) != 1024 {
			t.Errorf("chunk size = %d", len(ev.Data))
		}
	}
	h.feed(ss.fin(), ss.srvFin())
	data = h.byType(event.Data)
	if len(data) != 4 {
		t.Fatalf("data events after close = %d, want 4", len(data))
	}
	last := data[3]
	if !last.Last || len(last.Data) != 3600-3*1024 {
		t.Errorf("final chunk: last=%v len=%d", last.Last, len(last.Data))
	}
}

func TestChunkOverlap(t *testing.T) {
	h := newHarness(Config{ChunkSize: 100, OverlapSize: 10, Cutoff: CutoffUnlimited})
	ss := newSession(40002, 80)
	h.feed(ss.syn(), ss.synack())
	payload := make([]byte, 250)
	for i := range payload {
		payload[i] = byte(i)
	}
	h.feed(ss.data(payload), ss.fin(), ss.srvFin())
	data := h.byType(event.Data)
	if len(data) < 2 {
		t.Fatalf("data events = %d", len(data))
	}
	// Second chunk must start with the last 10 bytes of the first.
	c0, c1 := data[0].Data, data[1].Data
	if !bytes.Equal(c1[:10], c0[len(c0)-10:]) {
		t.Errorf("overlap mismatch: %v vs %v", c1[:10], c0[len(c0)-10:])
	}
	// Reconstructed data (skipping overlaps) must equal the payload.
	var rec []byte
	rec = append(rec, data[0].Data...)
	for _, ev := range data[1:] {
		rec = append(rec, ev.Data[10:]...)
	}
	if !bytes.Equal(rec, payload) {
		t.Errorf("reconstruction failed: %d vs %d bytes", len(rec), len(payload))
	}
}

func TestCutoffDiscardsTail(t *testing.T) {
	h := newHarness(Config{Cutoff: 100, ChunkSize: 64})
	ss := newSession(40003, 80)
	h.feed(ss.syn(), ss.synack())
	h.feed(ss.data(bytes.Repeat([]byte("a"), 80)))
	h.feed(ss.data(bytes.Repeat([]byte("b"), 80))) // crosses cutoff at 100
	h.feed(ss.data(bytes.Repeat([]byte("c"), 80))) // fully discarded
	h.feed(ss.fin(), ss.srvFin())

	var clientID uint64
	for _, ev := range h.byType(event.Creation) {
		if ev.Info.Dir == pkt.DirClient {
			clientID = ev.Info.ID
		}
	}
	got := h.dataFor(clientID)
	if len(got) != 100 {
		t.Errorf("captured %d bytes, want exactly cutoff=100", len(got))
	}
	// Stats keep counting beyond the cutoff.
	term := h.byType(event.Termination)
	for _, ev := range term {
		if ev.Info.Dir == pkt.DirClient {
			if ev.Info.Stats.PayloadBytes != 240 {
				t.Errorf("payload bytes = %d, want 240", ev.Info.Stats.PayloadBytes)
			}
			if ev.Info.Stats.CapturedBytes != 100 {
				t.Errorf("captured = %d", ev.Info.Stats.CapturedBytes)
			}
		}
	}
	if st := h.e.Stats(); st.CutoffBytes != 140 {
		t.Errorf("cutoff bytes = %d, want 140", st.CutoffBytes)
	}
}

func TestZeroCutoffFlowStatsOnly(t *testing.T) {
	h := newHarness(Config{Cutoff: 0})
	ss := newSession(40004, 80)
	h.feed(ss.syn(), ss.synack())
	for i := 0; i < 5; i++ {
		h.feed(ss.data(bytes.Repeat([]byte("x"), 1000)))
	}
	h.feed(ss.fin(), ss.srvFin())
	if n := len(h.byType(event.Data)); n != 0 {
		t.Errorf("data events = %d, want 0 with zero cutoff", n)
	}
	terms := h.byType(event.Termination)
	if len(terms) != 2 {
		t.Fatalf("terminations = %d", len(terms))
	}
	for _, ev := range terms {
		if ev.Info.Dir == pkt.DirClient && ev.Info.Stats.PayloadBytes != 5000 {
			t.Errorf("stats lost under zero cutoff: %+v", ev.Info.Stats)
		}
	}
	if h.mm.Used() != 0 {
		t.Errorf("memory leak: %d", h.mm.Used())
	}
}

func TestFDIRInstallOnCutoff(t *testing.T) {
	dev := nic.New(nic.Config{Queues: 1})
	h := newHarnessOpts(Options{Config: Config{Cutoff: 10, UseFDIR: true}, NIC: dev})
	ss := newSession(40005, 80)
	h.feed(ss.syn(), ss.synack(), ss.data(bytes.Repeat([]byte("y"), 50)))
	// Cutoff reached: both drop filters for the client direction must be
	// installed.
	if p, _ := dev.FilterCount(); p != 2 {
		t.Fatalf("perfect filters = %d, want 2", p)
	}
	if st := h.e.Stats(); st.FDIRInstalled != 1 {
		t.Errorf("FDIRInstalled = %d", st.FDIRInstalled)
	}
	// Data packets now die at the NIC...
	if q := dev.Receive(ss.data([]byte("dropme")), 1); q != -1 {
		t.Error("data packet survived the FDIR filter")
	}
	// ...but FIN/RST pass and terminate the stream, removing filters.
	fin := ss.fin()
	if q := dev.Receive(fin, 2); q < 0 {
		t.Fatal("FIN dropped at NIC")
	}
	h.feed(fin, ss.srvFin())
	if p, _ := dev.FilterCount(); p != 0 {
		t.Errorf("filters after termination = %d", p)
	}
}

func TestFDIRFilterTimeoutAndReinstallDoubling(t *testing.T) {
	dev := nic.New(nic.Config{Queues: 1})
	h := newHarnessOpts(Options{Config: Config{Cutoff: 10, UseFDIR: true, InactivityTimeout: 1e9}, NIC: dev})
	ss := newSession(40006, 80)
	h.feed(ss.syn(), ss.synack(), ss.data(bytes.Repeat([]byte("y"), 50)))
	if p, _ := dev.FilterCount(); p != 2 {
		t.Fatalf("filters = %d", p)
	}
	// Advance past the filter deadline; filters are removed but the stream
	// must stay tracked (a stream silenced by its own FDIR filter is not
	// inactive). A late data packet then re-installs with doubled timeout.
	h.ts += 2e9
	h.e.CheckTimers(h.ts)
	if p, _ := dev.FilterCount(); p != 0 {
		t.Fatalf("filters not expired: %d", p)
	}
	h.feed(ss.data([]byte("tail")))
	if p, _ := dev.FilterCount(); p != 2 {
		t.Fatalf("filters not re-installed: %d", p)
	}
	if st := h.e.Stats(); st.FDIRInstalled != 2 {
		t.Errorf("FDIRInstalled = %d, want 2", st.FDIRInstalled)
	}
}

func TestInactivityExpiry(t *testing.T) {
	h := newHarness(Config{InactivityTimeout: 1e9, Cutoff: CutoffUnlimited})
	ss := newSession(40007, 8080)
	h.feed(ss.syn(), ss.synack(), ss.data([]byte("some data")))
	h.e.CheckTimers(h.ts + 5e8) // not yet
	h.drain()
	if n := len(h.byType(event.Termination)); n != 0 {
		t.Fatalf("premature expiry")
	}
	h.e.CheckTimers(h.ts + 2e9)
	h.drain()
	terms := h.byType(event.Termination)
	if len(terms) != 2 {
		t.Fatalf("terminations = %d, want 2", len(terms))
	}
	for _, ev := range terms {
		if ev.Info.Status != flowtab.StatusTimedOut {
			t.Errorf("status = %v", ev.Info.Status)
		}
	}
	// Partial data must have been flushed as a final chunk.
	found := false
	for _, ev := range h.byType(event.Data) {
		if ev.Last && bytes.Equal(ev.Data, []byte("some data")) {
			found = true
		}
	}
	if !found {
		t.Error("final flush chunk missing")
	}
	if h.mm.Used() != 0 {
		t.Errorf("memory leak: %d", h.mm.Used())
	}
}

func TestFlushTimeout(t *testing.T) {
	h := newHarness(Config{FlushTimeout: 1e6, Cutoff: CutoffUnlimited})
	ss := newSession(40008, 80)
	h.feed(ss.syn(), ss.synack(), ss.data([]byte("partial chunk")))
	if n := len(h.byType(event.Data)); n != 0 {
		t.Fatal("chunk delivered before flush timeout")
	}
	h.e.CheckTimers(h.ts + 2e6)
	h.drain()
	data := h.byType(event.Data)
	if len(data) != 1 || !bytes.Equal(data[0].Data, []byte("partial chunk")) {
		t.Fatalf("flush produced %v", data)
	}
	if data[0].Last {
		t.Error("flush chunk wrongly marked last")
	}
}

func TestRSTTerminatesImmediately(t *testing.T) {
	h := newHarness(Config{Cutoff: CutoffUnlimited})
	ss := newSession(40009, 80)
	h.feed(ss.syn(), ss.synack(), ss.data([]byte("abc")), ss.rst())
	terms := h.byType(event.Termination)
	if len(terms) != 2 {
		t.Fatalf("terminations after RST = %d", len(terms))
	}
}

func TestUDPConcatenation(t *testing.T) {
	h := newHarness(Config{Cutoff: CutoffUnlimited, InactivityTimeout: 1e9})
	key := pkt.FlowKey{
		SrcIP: pkt.MustAddr("10.0.0.9"), DstIP: pkt.MustAddr("10.0.0.10"),
		SrcPort: 5000, DstPort: 53, Proto: pkt.ProtoUDP,
	}
	h.feed(
		pkt.BuildUDP(pkt.UDPSpec{Key: key, Payload: []byte("one-")}),
		pkt.BuildUDP(pkt.UDPSpec{Key: key, Payload: []byte("two-")}),
		pkt.BuildUDP(pkt.UDPSpec{Key: key, Payload: []byte("three")}),
	)
	h.e.CheckTimers(h.ts + 2e9)
	h.drain()
	var id uint64
	for _, ev := range h.byType(event.Creation) {
		id = ev.Info.ID
	}
	if got := h.dataFor(id); string(got) != "one-two-three" {
		t.Errorf("udp stream = %q", got)
	}
}

func TestSocketFilterIgnoresStreams(t *testing.T) {
	h := newHarness(Config{Cutoff: CutoffUnlimited})
	h2 := newHarnessOpts(Options{Config: Config{Cutoff: CutoffUnlimited, Filter: mustFilter(t, "port 80")}})
	ss80 := newSession(40010, 80)
	ss443 := newSession(40011, 443)
	for _, h := range []*harness{h, h2} {
		h.feed(ss80.syn(), ss80.synack(), ss80.data([]byte("http")))
		h.feed(ss443.syn(), ss443.synack(), ss443.data([]byte("tls!")))
		ss80, ss443 = newSession(40010, 80), newSession(40011, 443)
	}
	// Unfiltered harness saw both; filtered only port 80.
	if n := len(h.byType(event.Creation)); n != 4 {
		t.Errorf("unfiltered creations = %d", n)
	}
	if n := len(h2.byType(event.Creation)); n != 2 {
		t.Errorf("filtered creations = %d, want 2", n)
	}
	for _, ev := range h2.byType(event.Creation) {
		if ev.Info.Key.SrcPort != 80 && ev.Info.Key.DstPort != 80 {
			t.Errorf("filter leaked stream %v", ev.Info.Key)
		}
	}
	if st := h2.e.Stats(); st.FilterIgnoredPkts == 0 {
		t.Error("ignored packets not counted")
	}
}

func TestCutoffClasses(t *testing.T) {
	h := newHarnessOpts(Options{Config: Config{
		Cutoff: CutoffUnlimited,
		CutoffClasses: []CutoffClass{
			{Filter: mustFilter(t, "port 443"), Cutoff: 4},
		},
	}})
	ssWeb := newSession(40012, 443)
	ssOther := newSession(40013, 8080)
	h.feed(ssWeb.syn(), ssWeb.synack(), ssWeb.data([]byte("0123456789")))
	h.feed(ssOther.syn(), ssOther.synack(), ssOther.data([]byte("0123456789")))
	h.feed(ssWeb.fin(), ssWeb.srvFin(), ssOther.fin(), ssOther.srvFin())
	var webBytes, otherBytes int
	for _, ev := range h.byType(event.Data) {
		if ev.Info.Key.DstPort == 443 {
			webBytes += len(ev.Data)
		}
		if ev.Info.Key.DstPort == 8080 {
			otherBytes += len(ev.Data)
		}
	}
	if webBytes != 4 {
		t.Errorf("class cutoff bytes = %d, want 4", webBytes)
	}
	if otherBytes != 10 {
		t.Errorf("unclassified bytes = %d, want 10", otherBytes)
	}
}

func TestPerDirectionCutoff(t *testing.T) {
	h := newHarnessOpts(Options{Config: Config{
		Cutoff:          CutoffUnlimited,
		CutoffServerSet: true,
		CutoffServer:    6,
	}})
	ss := newSession(40014, 80)
	h.feed(ss.syn(), ss.synack())
	h.feed(ss.data([]byte("client-bytes")), ss.srvData([]byte("server-bytes")))
	h.feed(ss.fin(), ss.srvFin())
	var client, server int
	for _, ev := range h.byType(event.Data) {
		if ev.Info.Dir == pkt.DirClient {
			client += len(ev.Data)
		} else {
			server += len(ev.Data)
		}
	}
	if client != len("client-bytes") {
		t.Errorf("client bytes = %d", client)
	}
	if server != 6 {
		t.Errorf("server bytes = %d, want 6", server)
	}
}

func TestMaxStreamsEvictsOldest(t *testing.T) {
	h := newHarnessOpts(Options{Config: Config{Cutoff: CutoffUnlimited}, MaxStreams: 4})
	for i := 0; i < 6; i++ {
		ss := newSession(uint16(41000+i), 80)
		h.feed(ss.syn())
	}
	if h.e.Table().Len() > 4 {
		t.Errorf("table len = %d, want <= 4", h.e.Table().Len())
	}
	if st := h.e.Stats(); st.StreamsEvicted == 0 {
		t.Error("no evictions recorded")
	}
}

func TestPPLDropsUnderMemoryPressure(t *testing.T) {
	// Small blocks and a budget with a few blocks of slack: the byte-level
	// watermarks drive the drops under test, while the low-priority stream's
	// partially filled block must not starve the high-priority stream of a
	// physical block.
	mm := mem.New(mem.Config{Size: 8192, BaseThreshold: 0.5, Priorities: 2, BlockSize: 1024})
	h := newHarnessOpts(Options{Config: Config{Cutoff: CutoffUnlimited, Priorities: 2, ChunkSize: 1 << 20}, Mem: mm})
	// Low-priority stream fills memory past the low watermark; events are
	// drained but never released, so memory stays reserved.
	low := newSession(42000, 9999)
	h.feedNoRelease(low.syn(), low.synack())
	for i := 0; i < 8; i++ {
		h.feedNoRelease(low.data(bytes.Repeat([]byte("L"), 800)))
	}
	st := h.e.Stats()
	if st.PPLDroppedPkts == 0 {
		t.Fatalf("no PPL drops despite pressure: %+v (used=%d)", st, mm.Used())
	}
	// A high-priority stream is still admitted.
	hi := newSession(42001, 80)
	h.feedNoRelease(hi.syn(), hi.synack())
	if s := h.e.Table().Lookup(hi.key); s != nil {
		h.e.Control(Ctrl{Op: OpSetPriority, Stream: s, ID: s.ID, Value: 1})
	} else {
		t.Fatal("high stream missing")
	}
	h.feedNoRelease(hi.data(bytes.Repeat([]byte("H"), 200)))
	dropped := h.e.Stats().PPLDroppedPkts
	hiStream := h.e.Table().Lookup(hi.key)
	if hiStream == nil || hiStream.Stats.DroppedPkts != 0 {
		t.Errorf("high-priority stream dropped packets: %+v", hiStream.Stats)
	}
	_ = dropped
}

// feedNoRelease feeds frames without releasing chunk memory (events are
// drained but treated as unconsumed, keeping pressure on the budget).
func (h *harness) feedNoRelease(frames ...[]byte) {
	for _, f := range frames {
		h.ts += 1000
		h.e.HandleFrame(f, h.ts)
		for {
			ev, ok := h.q.Poll()
			if !ok {
				break
			}
			h.events = append(h.events, ev)
		}
	}
}

func TestControlDiscardStream(t *testing.T) {
	h := newHarness(Config{Cutoff: CutoffUnlimited})
	ss := newSession(42002, 80)
	h.feed(ss.syn(), ss.synack(), ss.data([]byte("first")))
	s := h.e.Table().Lookup(ss.key)
	if s == nil {
		t.Fatal("stream missing")
	}
	h.e.Control(Ctrl{Op: OpDiscard, Stream: s, ID: s.ID})
	h.feed(ss.data([]byte("second")), ss.fin(), ss.srvFin())
	var clientData []byte
	for _, ev := range h.byType(event.Data) {
		if ev.Info.Dir == pkt.DirClient {
			clientData = append(clientData, ev.Data...)
		}
	}
	if bytes.Contains(clientData, []byte("second")) {
		t.Errorf("discarded stream delivered data: %q", clientData)
	}
	if h.mm.Used() != 0 {
		t.Errorf("leak after discard: %d", h.mm.Used())
	}
}

func TestControlStaleIDRejected(t *testing.T) {
	h := newHarness(Config{Cutoff: CutoffUnlimited})
	ss := newSession(42003, 80)
	h.feed(ss.syn(), ss.synack(), ss.data([]byte("x")))
	s := h.e.Table().Lookup(ss.key)
	staleID := s.ID
	h.feed(ss.rst()) // terminates and recycles
	// Stale control must be ignored (no panic, no corruption).
	h.e.Control(Ctrl{Op: OpSetCutoff, Stream: s, ID: staleID, Value: 0})
	ss2 := newSession(42004, 80)
	h.feed(ss2.syn(), ss2.synack(), ss2.data([]byte("fresh")), ss2.fin(), ss2.srvFin())
	var got []byte
	for _, ev := range h.byType(event.Data) {
		got = append(got, ev.Data...)
	}
	if !bytes.Contains(got, []byte("fresh")) {
		t.Error("fresh stream data missing after stale control")
	}
}

func TestKeepChunkMergesDeliveries(t *testing.T) {
	h := newHarness(Config{ChunkSize: 8, Cutoff: CutoffUnlimited})
	ss := newSession(42005, 80)
	h.feed(ss.syn(), ss.synack())
	// First chunk fills with "ABCDEFGH".
	h.feedNoRelease(ss.data([]byte("ABCDEFGH")))
	var first event.Event
	for _, ev := range h.events {
		if ev.Type == event.Data {
			first = ev
		}
	}
	if len(first.Data) != 8 {
		t.Fatalf("first chunk = %q", first.Data)
	}
	// Keep it: hand it back to the engine instead of releasing.
	h.e.Control(Ctrl{
		Op: OpKeepChunk, Stream: first.Stream, ID: first.Info.ID,
		Data: append([]byte(nil), first.Data...), Accounted: first.Accounted,
	})
	h.feed(ss.data([]byte("IJKLMNOP")), ss.fin(), ss.srvFin())
	// The merged delivery contains both chunks.
	var merged []byte
	for _, ev := range h.byType(event.Data) {
		if len(ev.Data) >= 16 {
			merged = ev.Data
		}
	}
	if !bytes.Equal(merged, []byte("ABCDEFGHIJKLMNOP")) {
		t.Errorf("merged chunk = %q", merged)
	}
	if h.mm.Used() != 0 {
		t.Errorf("leak after keep-chunk: %d", h.mm.Used())
	}
}

func TestStrictModeDefragmentsEvasion(t *testing.T) {
	h := newHarness(Config{Mode: reassembly.ModeStrict, Cutoff: CutoffUnlimited})
	ss := newSession(42006, 80)
	h.feed(ss.syn(), ss.synack())
	// Fragment a data packet: strict mode must reassemble and deliver.
	frame := ss.data(bytes.Repeat([]byte("EVASION-"), 200))
	frags := pkt.FragmentIPv4(frame, 576)
	// Send fragments in reverse order for good measure.
	for i := len(frags) - 1; i >= 0; i-- {
		h.feed(frags[i])
	}
	h.feed(ss.fin(), ss.srvFin())
	var got []byte
	for _, ev := range h.byType(event.Data) {
		if ev.Info.Dir == pkt.DirClient {
			got = append(got, ev.Data...)
		}
	}
	if !bytes.Equal(got, bytes.Repeat([]byte("EVASION-"), 200)) {
		t.Errorf("defragmented stream = %d bytes, want %d", len(got), 1600)
	}
}

func TestFastModeDropsFragments(t *testing.T) {
	h := newHarness(Config{Mode: reassembly.ModeFast, Cutoff: CutoffUnlimited})
	ss := newSession(42007, 80)
	h.feed(ss.syn(), ss.synack())
	frame := ss.data(bytes.Repeat([]byte("x"), 1600))
	for _, f := range pkt.FragmentIPv4(frame, 576) {
		h.feed(f)
	}
	if st := h.e.Stats(); st.FragsDropped == 0 {
		t.Error("fast mode should count dropped fragments")
	}
}

func TestPacketRecords(t *testing.T) {
	h := newHarnessOpts(Options{Config: Config{NeedPkts: true, Cutoff: CutoffUnlimited}})
	ss := newSession(42008, 80)
	h.feed(ss.syn(), ss.synack())
	h.feed(ss.data([]byte("alpha")), ss.data([]byte("beta")))
	h.feed(ss.fin(), ss.srvFin())
	var recs []event.PacketRecord
	var chunk []byte
	for _, ev := range h.byType(event.Data) {
		if ev.Info.Dir == pkt.DirClient {
			recs = append(recs, ev.Pkts...)
			chunk = ev.Data
		}
	}
	if len(recs) != 2 {
		t.Fatalf("packet records = %d, want 2", len(recs))
	}
	if string(chunk[recs[0].Off:recs[0].Off+recs[0].Len]) != "alpha" {
		t.Errorf("record 0 payload = %q", chunk[recs[0].Off:recs[0].Off+recs[0].Len])
	}
	if string(chunk[recs[1].Off:recs[1].Off+recs[1].Len]) != "beta" {
		t.Errorf("record 1 payload mismatch")
	}
	if recs[0].TS >= recs[1].TS {
		t.Error("records out of capture order")
	}
}

func TestBadHandshakeFlag(t *testing.T) {
	h := newHarness(Config{Cutoff: CutoffUnlimited})
	ss := newSession(42009, 80)
	// Data with no preceding SYN (mid-stream capture / bogus flow).
	h.feed(ss.data([]byte("no handshake")), ss.fin(), ss.srvFin())
	terms := h.byType(event.Termination)
	if len(terms) == 0 {
		t.Fatal("no termination")
	}
	found := false
	for _, ev := range terms {
		if ev.Info.Error&reassembly.FlagBadHandshake != 0 {
			found = true
		}
	}
	if !found {
		t.Error("FlagBadHandshake not set")
	}
}

func TestShutdownFlushesEverything(t *testing.T) {
	h := newHarness(Config{Cutoff: CutoffUnlimited})
	for i := 0; i < 5; i++ {
		ss := newSession(uint16(43000+i), 80)
		h.feed(ss.syn(), ss.synack(), ss.data([]byte("pending")))
	}
	h.e.Shutdown()
	h.drain()
	if n := len(h.byType(event.Termination)); n != 10 {
		t.Errorf("terminations after shutdown = %d, want 10", n)
	}
	if h.mm.Used() != 0 {
		t.Errorf("memory leak after shutdown: %d", h.mm.Used())
	}
	if h.e.Table().Len() != 0 {
		t.Errorf("table not empty: %d", h.e.Table().Len())
	}
}

func TestReorderedSegmentsDeliverInOrder(t *testing.T) {
	h := newHarness(Config{Cutoff: CutoffUnlimited})
	ss := newSession(43100, 80)
	h.feed(ss.syn(), ss.synack())
	// Build three segments, deliver 2,1,3.
	s1 := ss.data([]byte("AAAA"))
	s2 := ss.data([]byte("BBBB"))
	s3 := ss.data([]byte("CCCC"))
	h.feed(s2, s1, s3, ss.fin(), ss.srvFin())
	var got []byte
	for _, ev := range h.byType(event.Data) {
		if ev.Info.Dir == pkt.DirClient {
			got = append(got, ev.Data...)
		}
	}
	if string(got) != "AAAABBBBCCCC" {
		t.Errorf("reordered delivery = %q", got)
	}
}

func mustFilter(t *testing.T, expr string) *bpf.Filter {
	t.Helper()
	f, err := bpf.Parse(expr)
	if err != nil {
		t.Fatal(err)
	}
	return f
}
