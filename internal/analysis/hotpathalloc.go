package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// HotPathAlloc flags allocation and formatting work inside functions
// marked //scap:hotpath — the per-packet path that the paper keeps free of
// per-packet memory management: fmt formatting, time.Now (the engines run
// on virtual time), map/slice literals, make, new, closures that capture
// variables, append without a vetted preallocation, and string<->[]byte
// conversions. Vetted sites carry //scaplint:ignore hotpathalloc with a
// justification.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "no allocations, formatting, or wall-clock reads in //scap:hotpath functions",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, fd := range hotpathFuncs(p) {
		if fd.Body == nil {
			continue
		}
		name := fd.Name.Name
		flag := func(n ast.Node, format string, args ...any) {
			diags = append(diags, Diagnostic{
				Pos:      p.Fset.Position(n.Pos()),
				Analyzer: "hotpathalloc",
				Message:  fmt.Sprintf("%s: ", name) + fmt.Sprintf(format, args...),
			})
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				checkHotCall(p, node, flag)
			case *ast.CompositeLit:
				switch underlyingOf(p, node).(type) {
				case *types.Map:
					flag(node, "map literal allocates in a hot path")
				case *types.Slice:
					flag(node, "slice literal allocates in a hot path")
				}
			case *ast.FuncLit:
				if captured := capturedVars(p, node); len(captured) > 0 {
					flag(node, "closure captures %s and allocates in a hot path", captured[0])
				}
			case *ast.GoStmt:
				flag(node, "goroutine launch in a hot path")
			}
			return true
		})
	}
	return diags
}

func checkHotCall(p *Package, call *ast.CallExpr, flag func(ast.Node, string, ...any)) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if pkg := importedPackage(p, fun.X); pkg != "" {
			switch {
			case pkg == "fmt":
				flag(call, "fmt.%s formats and allocates in a hot path", fun.Sel.Name)
			case pkg == "time" && fun.Sel.Name == "Now":
				flag(call, "time.Now reads the wall clock in a hot path (use the engine's virtual time)")
			}
		}
	case *ast.Ident:
		obj := p.Info.Uses[fun]
		if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
			// A conversion T(x): allocation when crossing string/[]byte.
			if tv, ok := p.Info.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
				if conversionAllocates(p, tv.Type, call.Args[0]) {
					flag(call, "%s conversion copies its operand in a hot path", fun.Name)
				}
			}
			return
		}
		switch fun.Name {
		case "append":
			flag(call, "append may grow its backing array in a hot path (preallocate, or vet and suppress)")
		case "make":
			if len(call.Args) > 0 {
				switch underlyingOf(p, call.Args[0]).(type) {
				case *types.Map:
					flag(call, "make(map) allocates in a hot path")
				case *types.Chan:
					flag(call, "make(chan) allocates in a hot path")
				default:
					flag(call, "make allocates in a hot path")
				}
			}
		case "new":
			flag(call, "new allocates in a hot path")
		}
	}
}

// underlyingOf returns the underlying type of an expression (nil-safe).
func underlyingOf(p *Package, expr ast.Expr) types.Type {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Type == nil {
		return nil
	}
	return tv.Type.Underlying()
}

// importedPackage returns the package path when expr names an import
// (e.g. the "fmt" in fmt.Printf), else "".
func importedPackage(p *Package, expr ast.Expr) string {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// conversionAllocates reports the string<->[]byte copying conversions.
func conversionAllocates(p *Package, to types.Type, arg ast.Expr) bool {
	from := underlyingOf(p, arg)
	if from == nil {
		return false
	}
	toU := to.Underlying()
	if isString(toU) && isByteSlice(from) {
		return true
	}
	return isByteSlice(toU) && isString(from)
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.String
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// capturedVars lists outer-scope variables a function literal closes over;
// a closure capturing nothing compiles to a static function and does not
// allocate per call.
func capturedVars(p *Package, fl *ast.FuncLit) []string {
	var captured []string
	seen := make(map[types.Object]bool)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[id].(*types.Var)
		if !ok || seen[obj] || obj.IsField() {
			return true
		}
		// Package-level variables are not captures.
		if obj.Pkg() != nil && obj.Pkg().Scope().Lookup(obj.Name()) == obj {
			return true
		}
		// Declared inside the literal (params or locals) is not a capture.
		if obj.Pos() >= fl.Pos() && obj.Pos() <= fl.End() {
			return true
		}
		seen[obj] = true
		captured = append(captured, obj.Name())
		return true
	})
	return captured
}
