// Command scapbench regenerates the paper's evaluation figures on the
// simulated 10 GbE pipeline and prints each as a text table.
//
// Usage:
//
//	scapbench                 # all figures, full scale
//	scapbench -fig 6          # just Figure 6 (a,b,c)
//	scapbench -quick          # smaller sweeps for a fast smoke run
//	scapbench -flows 20000    # bigger synthetic trace
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"scap/internal/bench"
)

func main() {
	var (
		figID = flag.String("fig", "", "figure to run (3..12); empty = all")
		quick = flag.Bool("quick", false, "smaller sweeps")
		flows = flag.Int("flows", 0, "override synthetic trace flow count")
		seed  = flag.Int64("seed", 0, "override workload seed")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *flows > 0 {
		cfg.Flows = *flows
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	start := time.Now()
	fmt.Printf("generating workload (%d flows)...\n", cfg.Flows)
	r, err := bench.NewRunner(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scapbench:", err)
		os.Exit(1)
	}
	fmt.Printf("workload: %d packets, %d MB, %d flows, %d embedded patterns (%.1fs)\n\n",
		r.Generator().Packets, r.TraceBytes()>>20, r.Generator().FlowsMade,
		r.Generator().Embedded, time.Since(start).Seconds())

	var figs []*bench.Figure
	if *figID == "" {
		figs = r.All()
	} else {
		figs, err = r.ByID(*figID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scapbench:", err)
			os.Exit(1)
		}
	}
	for _, f := range figs {
		f.Print(os.Stdout)
	}
	fmt.Printf("done in %.1fs\n", time.Since(start).Seconds())
}
