package analysis

import (
	"strings"
	"testing"
)

func TestMetricRegFixtures(t *testing.T) {
	_, pkg := loadFixtures(t, "metricreg")
	diags := checkAnalyzer(t, MetricReg, pkg)

	// The diagnostic anchors on the call expression.
	for _, d := range diags {
		if !strings.Contains(d.Message, "atomic fast path") {
			t.Errorf("diagnostic should name the allowed fast path: %s", d)
		}
	}
}

func TestMetricRegSuppression(t *testing.T) {
	// Audited carries //scaplint:ignore metricreg; the raw run must find
	// it, the filtered run must not.
	_, pkg := loadFixtures(t, "metricreg")
	raw := MetricReg.Run(pkg)
	found := false
	for _, d := range raw {
		if strings.Contains(d.Message, "Audited: call to metrics.Snapshot") {
			found = true
		}
	}
	if !found {
		t.Fatal("raw run should flag engine.Audited before suppression filtering")
	}
	for _, d := range RunAll([]*Package{pkg}, []*Analyzer{MetricReg}) {
		if strings.Contains(d.Message, "Audited") {
			t.Errorf("suppressed diagnostic survived filtering: %s", d)
		}
	}
}

// TestMetricRegOnRepo pins the invariant the analyzer exists to protect:
// the real capture path (root package plus every internal package) must be
// clean. A regression that registers metrics or assembles snapshots inside
// a //scap:hotpath function fails here before it fails in CI lint.
func TestMetricRegOnRepo(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Packages("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range RunAll(pkgs, []*Analyzer{MetricReg}) {
		t.Errorf("capture path violates the metrics fast-path invariant: %s", d)
	}
}
