package analysis

import "testing"

func TestHotPathAllocFixtures(t *testing.T) {
	_, pkg := loadFixtures(t, "hotpathalloc")
	diags := checkAnalyzer(t, HotPathAlloc, pkg)

	// Exact-position checks: call diagnostics anchor on the call expression.
	if got, want := positionOf(t, diags, "fmt.Printf"), "fixtures.go:20:2"; got != want {
		t.Errorf("fmt.Printf diagnostic at %s, want %s", got, want)
	}
	if got, want := positionOf(t, diags, "time.Now"), "fixtures.go:21:8"; got != want {
		t.Errorf("time.Now diagnostic at %s, want %s", got, want)
	}
}

func TestHotPathAllocOnlyAnnotatedFuncs(t *testing.T) {
	// coldPath commits the same sins as handleBad but is not annotated:
	// every diagnostic must come from an annotated function.
	_, pkg := loadFixtures(t, "hotpathalloc")
	diags := RunAll([]*Package{pkg}, []*Analyzer{HotPathAlloc})
	if fp := firstFuncPos(pkg, "coldPath"); fp == "" {
		t.Fatal("fixture func coldPath missing")
	}
	for _, d := range diags {
		for _, bad := range []string{"coldPath", "handleGood", "pureClosure"} {
			if len(d.Message) >= len(bad) && d.Message[:len(bad)] == bad {
				t.Errorf("diagnostic from un-annotated or clean function: %s", d)
			}
		}
	}
}
