// Package unusedignores exercises stale-suppression detection: every
// //scaplint:ignore directive must name a known analyzer, justify itself,
// and actually suppress something.
package unusedignores

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

// locked's ignore names the analyzer, gives a reason, and fires: fine.
//
//scap:hotpath
func (g *guarded) locked() {
	g.mu.Lock() //scaplint:ignore hotpathlock audited: slow-path fallback taken once per epoch
	g.n++
	g.mu.Unlock()
}

// clean triggers nothing, so its directive is stale.
func (g *guarded) clean() {
	//scaplint:ignore hotpathlock nothing on this line needs suppressing // want unusedignores "stale //scaplint:ignore hotpathlock"
	g.n--
}

//scap:hotpath
func (g *guarded) bare() {
	g.mu.Lock() //scaplint:ignore // want unusedignores "bare //scaplint:ignore"
	g.n++
	g.mu.Unlock()
}

//scap:hotpath
func (g *guarded) unjustified() {
	g.mu.Lock() //scaplint:ignore hotpathlock // want unusedignores "no justification"
	g.n++
	g.mu.Unlock()
}

func (g *guarded) typo() {
	g.n-- //scaplint:ignore hotpathlok misspelled analyzer name // want unusedignores "unknown analyzer \"hotpathlok\""
}
