package scap

// The scap package is part of the audited public API surface: scaplint's
// exporteddoc analyzer requires a doc comment on every exported symbol in
// files of packages carrying this marker.
//
//scap:publicapi

// Stats aggregates socket-wide counters across the NIC and every engine
// core (scap_stats_t). It is a plain-value view over the socket's metrics
// registry; the registry itself (exposed at /metrics by Serve) additionally
// carries per-core breakdowns, windowed rates, histograms, and overload
// events.
type Stats struct {
	// NIC level.
	FramesReceived  uint64 // frames offered to the NIC
	DroppedAtNIC    uint64 // dropped by FDIR filters before reaching memory
	DroppedRing     uint64 // lost to full receive rings
	RedirectedFlows uint64 // steered by load-balancing filters

	// Kernel path.
	Packets           uint64 // packets processed by the engines
	PayloadBytes      uint64 // transport payload seen
	StoredBytes       uint64 // payload written to stream memory
	CutoffPkts        uint64 // discarded beyond stream cutoffs
	CutoffBytes       uint64
	PPLDroppedPkts    uint64 // shed by prioritized packet loss
	EventsLost        uint64 // chunks lost to full event queues
	FilterIgnoredPkts uint64 // packets of streams rejected by the BPF filter
	ArenaExhausted    uint64 // chunks diverted to heap buffers with no arena block free
	DecodeErrors      uint64

	// Streams.
	StreamsCreated uint64 // stream directions tracked
	StreamsClosed  uint64 // terminated by FIN/RST
	StreamsExpired uint64 // inactivity timeouts
	StreamsEvicted uint64 // removed under table pressure

	// Hardware filters.
	FDIRInstalled uint64
	FDIRRemoved   uint64

	// Memory.
	MemoryUsed      int64
	MemoryHighWater int64
	MemorySize      int64
}

// GetStats returns a snapshot of the overall statistics for all streams
// seen so far (scap_get_stats). Counters are collected without stopping
// the capture path; a snapshot taken mid-burst may be momentarily
// inconsistent between fields, like reading /proc counters.
//
// Post-Close contract: once Close has returned, GetStats keeps returning
// the final snapshot frozen at shutdown — after every stream was flushed
// and every queue drained — rather than racing engine teardown. Callers may
// therefore Close first and read totals afterwards.
func (h *Handle) GetStats() (Stats, error) {
	if h.final != nil {
		return *h.final, nil
	}
	if !h.started && h.engines == nil {
		return Stats{}, ErrNotStarted
	}
	return h.statsFromRegistry(), nil
}

// statsFromRegistry assembles the Stats view from one registry snapshot.
// The NIC and memory instruments are func-backed (registered in
// StartCapture), so the snapshot reads their live values; engine counters
// are summed across cores.
func (h *Handle) statsFromRegistry() Stats {
	s := h.reg.Snapshot()
	return Stats{
		FramesReceived:  s.CounterTotal("nic_frames_total"),
		DroppedAtNIC:    s.CounterTotal("nic_dropped_filter_total"),
		DroppedRing:     s.CounterTotal("nic_dropped_ring_total"),
		RedirectedFlows: s.CounterTotal("nic_redirected_total"),

		Packets:           s.CounterTotal("packets_total"),
		PayloadBytes:      s.CounterTotal("payload_bytes_total"),
		StoredBytes:       s.CounterTotal("stored_bytes_total"),
		CutoffPkts:        s.CounterTotal("cutoff_pkts_total"),
		CutoffBytes:       s.CounterTotal("cutoff_bytes_total"),
		PPLDroppedPkts:    s.CounterTotal("ppl_dropped_pkts_total"),
		EventsLost:        s.CounterTotal("events_lost_total"),
		FilterIgnoredPkts: s.CounterTotal("filter_ignored_pkts_total"),
		ArenaExhausted:    s.CounterTotal("arena_exhausted_total"),
		DecodeErrors:      s.CounterTotal("decode_errors_total"),

		StreamsCreated: s.CounterTotal("streams_created_total"),
		StreamsClosed:  s.CounterTotal("streams_closed_total"),
		StreamsExpired: s.CounterTotal("streams_expired_total"),
		StreamsEvicted: s.CounterTotal("streams_evicted_total"),

		FDIRInstalled: s.CounterTotal("fdir_installed_total"),
		FDIRRemoved:   s.CounterTotal("fdir_removed_total"),

		MemoryUsed:      s.GaugeValue("memory_used_bytes"),
		MemoryHighWater: s.GaugeValue("memory_highwater_bytes"),
		MemorySize:      s.GaugeValue("memory_size_bytes"),
	}
}
