package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// StatsSnapshot flags exported snapshot/getter methods on //scap:shared
// types that return a struct field by value while other methods of the
// same type mutate that struct's fields without synchronization — the
// Engine.Stats() data-race shape: a reader copies the counters struct
// while the kernel goroutine increments it.
var StatsSnapshot = &Analyzer{
	Name: "statssnapshot",
	Doc:  "snapshot getters on shared types must not race with counter mutations",
	Run:  runStatsSnapshot,
}

func runStatsSnapshot(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, st := range structTypes(p) {
		if !st.Shared {
			continue
		}
		methods := methodsOf(p, st.Name)
		for _, getter := range methods {
			if !getter.Name.IsExported() || getter.Body == nil {
				continue
			}
			field, ret := returnedStructField(p, getter)
			if field == "" {
				continue
			}
			// The getter is safe only if it holds a lock AND every
			// mutation of the returned struct happens under a lock too.
			getterLocked := methodAssumesLock(getter) || len(lockAcquisitions(getter, receiverName(getter))) > 0
			var firstBad *mutationSite
			mutations := 0
			for _, m := range methods {
				if m == getter || m.Body == nil {
					continue
				}
				sites := fieldMutations(p, m, field)
				mutations += len(sites)
				if len(sites) == 0 {
					continue
				}
				if methodAssumesLock(m) || len(lockAcquisitions(m, receiverName(m))) > 0 {
					continue
				}
				if firstBad == nil {
					firstBad = &sites[0]
					firstBad.method = m.Name.Name
				}
			}
			if mutations == 0 {
				continue // nothing writes the struct; a copy is safe
			}
			if getterLocked && firstBad == nil {
				continue
			}
			msg := ""
			switch {
			case firstBad != nil:
				msg = fmt.Sprintf(
					"%s.%s returns %s.%s by value while %s mutates %s.%s at %s without synchronization (use a lock on both sides or atomic counters)",
					st.Name, getter.Name.Name, receiverName(getter), field,
					firstBad.method, receiverName(getter), field,
					p.Fset.Position(firstBad.pos))
			default:
				msg = fmt.Sprintf(
					"%s.%s returns %s.%s by value without holding the lock that protects its writers",
					st.Name, getter.Name.Name, receiverName(getter), field)
			}
			diags = append(diags, Diagnostic{
				Pos:      p.Fset.Position(ret.Pos()),
				Analyzer: "statssnapshot",
				Message:  msg,
			})
		}
	}
	return diags
}

// returnedStructField detects the "return recv.field" shape where field's
// type is (or has underlying) struct, returning the field name and the
// return statement.
func returnedStructField(p *Package, fd *ast.FuncDecl) (string, *ast.ReturnStmt) {
	if fd.Type.Results == nil || len(fd.Type.Results.List) != 1 {
		return "", nil
	}
	recv := receiverName(fd)
	if recv == "" {
		return "", nil
	}
	var field string
	var ret *ast.ReturnStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if field != "" {
			return false
		}
		r, ok := n.(*ast.ReturnStmt)
		if !ok || len(r.Results) != 1 {
			return true
		}
		sel, ok := r.Results[0].(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok || base.Name != recv {
			return true
		}
		if !isStructValued(p, sel) {
			return true
		}
		field = sel.Sel.Name
		ret = r
		return false
	})
	return field, ret
}

// isStructValued reports whether expr has struct underlying type. Without
// type information (degraded load) it conservatively reports true.
func isStructValued(p *Package, expr ast.Expr) bool {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Type == nil {
		return true
	}
	_, isStruct := tv.Type.Underlying().(*types.Struct)
	return isStruct
}

type mutationSite struct {
	pos    token.Pos
	method string
}

// fieldMutations finds writes to recv.field or any recv.field.X... chain
// inside method m: assignments, compound assignments, and ++/--.
func fieldMutations(p *Package, m *ast.FuncDecl, field string) []mutationSite {
	recv := receiverName(m)
	if recv == "" {
		return nil
	}
	var sites []mutationSite
	record := func(expr ast.Expr) {
		if rootedAtField(expr, recv, field) {
			sites = append(sites, mutationSite{pos: expr.Pos()})
		}
	}
	ast.Inspect(m.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range stmt.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(stmt.X)
		}
		return true
	})
	return sites
}

// rootedAtField reports whether expr is a selector chain recv.field[.more].
func rootedAtField(expr ast.Expr, recv, field string) bool {
	for {
		sel, ok := expr.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		if base, ok := sel.X.(*ast.Ident); ok {
			return base.Name == recv && sel.Sel.Name == field
		}
		expr = sel.X
	}
}

// methodAssumesLock reports the *Locked naming convention: helpers called
// with the lock already held.
func methodAssumesLock(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	return len(name) > len("Locked") && name[len(name)-len("Locked"):] == "Locked"
}

// lockAcquisitions returns the mutex field names m for which the body
// contains recv.m.Lock() or recv.m.RLock().
func lockAcquisitions(fd *ast.FuncDecl, recv string) map[string]bool {
	out := make(map[string]bool)
	if fd.Body == nil || recv == "" {
		return out
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if base, ok := inner.X.(*ast.Ident); ok && base.Name == recv {
			out[inner.Sel.Name] = true
		}
		return true
	})
	return out
}
