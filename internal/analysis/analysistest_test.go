package analysis

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// expectation is one "// want <analyzer> \"regexp\"" comment in a fixture.
type expectation struct {
	file     string
	line     int
	analyzer string
	re       *regexp.Regexp
}

var wantRe = regexp.MustCompile(`//\s*want\s+(\w+)\s+("(?:[^"\\]|\\.)*")`)

// loadFixtures loads testdata/src/<name> with the repo loader.
func loadFixtures(t *testing.T, name string) (*Loader, *Package) {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "analysis", "testdata", "src", name)
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s has type errors: %v", name, pkg.TypeErrors)
	}
	return loader, pkg
}

// wantsOf extracts the expectations from a loaded fixture package.
func wantsOf(t *testing.T, p *Package) []expectation {
	t.Helper()
	var wants []expectation
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pattern, err := strconv.Unquote(m[2])
				if err != nil {
					t.Fatalf("bad want pattern %s: %v", m[2], err)
				}
				pos := p.Fset.Position(c.Pos())
				wants = append(wants, expectation{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: m[1],
					re:       regexp.MustCompile(pattern),
				})
			}
		}
	}
	return wants
}

// checkAnalyzer runs one analyzer over a fixture package and requires an
// exact 1:1 match between diagnostics and want comments: same file, same
// line, matching analyzer name and message.
func checkAnalyzer(t *testing.T, a *Analyzer, p *Package) []Diagnostic {
	t.Helper()
	diags := RunAll([]*Package{p}, []*Analyzer{a})
	matchWants(t, p, diags)
	return diags
}

// matchWants requires an exact 1:1 match between diags and the fixture's
// want comments: same file, same line, matching analyzer name and message.
func matchWants(t *testing.T, p *Package, diags []Diagnostic) {
	t.Helper()
	wants := wantsOf(t, p)
	matched := make([]bool, len(wants))
outer:
	for _, d := range diags {
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.analyzer != d.Analyzer {
				t.Errorf("%s: analyzer = %s, want %s", d.Pos, d.Analyzer, w.analyzer)
			}
			if !w.re.MatchString(d.Message) {
				t.Errorf("%s: message %q does not match %q", d.Pos, d.Message, w.re)
			}
			matched[i] = true
			continue outer
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.re)
		}
	}
	for _, d := range diags {
		if d.Pos.Line <= 0 || d.Pos.Column <= 0 {
			t.Errorf("diagnostic without a full position: %s", d)
		}
	}
}

// positionOf returns file:line:col for the diagnostic whose message
// contains substr, for exact-position assertions.
func positionOf(t *testing.T, diags []Diagnostic, substr string) string {
	t.Helper()
	for _, d := range diags {
		if strings.Contains(d.Message, substr) {
			return fmt.Sprintf("%s:%d:%d", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column)
		}
	}
	t.Fatalf("no diagnostic containing %q", substr)
	return ""
}

// firstFuncPos is a helper for sanity checks on fixture shape.
func firstFuncPos(p *Package, name string) string {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name {
				pos := p.Fset.Position(fd.Pos())
				return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
			}
		}
	}
	return ""
}
