package mem

import (
	"math/rand"
	"testing"
)

func TestAdmitBelowBaseThreshold(t *testing.T) {
	m := New(Config{Size: 1000, BaseThreshold: 0.9, Priorities: 2, OverloadCutoff: 10})
	// Below base threshold everything is admitted, even beyond the
	// overload cutoff and at the lowest priority.
	for i := 0; i < 8; i++ {
		if d := m.Admit(0, 1<<20, 100); d != Admit {
			t.Fatalf("admission %d = %v", i, d)
		}
	}
	if m.Used() != 800 {
		t.Errorf("used = %d", m.Used())
	}
}

func TestWatermarkSpacing(t *testing.T) {
	m := New(Config{Size: 1000, BaseThreshold: 0.8, Priorities: 4})
	want := []float64{0.85, 0.9, 0.95, 1.0}
	for p, w := range want {
		if got := m.Watermark(p); got < w-1e-9 || got > w+1e-9 {
			t.Errorf("Watermark(%d) = %v, want %v", p, got, w)
		}
	}
	// Out-of-range priorities clamp.
	if m.Watermark(99) != m.Watermark(3) || m.Watermark(-1) != m.Watermark(0) {
		t.Error("clamping broken")
	}
}

func TestLowPriorityDropsFirst(t *testing.T) {
	m := New(Config{Size: 1000, BaseThreshold: 0.5, Priorities: 2})
	// Fill to 70%: above base (50%), above low watermark (75%)? No:
	// watermark(low)=0.75, watermark(high)=1.0.
	if !m.Reserve(700) {
		t.Fatal("reserve failed")
	}
	// 700+100 = 80% > 75%: low priority drops, high admits.
	if d := m.Admit(0, 0, 100); d != DropPriority {
		t.Errorf("low-priority admission = %v, want DropPriority", d)
	}
	if d := m.Admit(1, 0, 100); d != Admit {
		t.Errorf("high-priority admission = %v, want Admit", d)
	}
}

func TestOverloadCutoffRegion(t *testing.T) {
	m := New(Config{Size: 1000, BaseThreshold: 0.5, Priorities: 1, OverloadCutoff: 4096})
	m.Reserve(600) // 60%: inside pressure region (50%..100%)
	// A packet early in its stream is admitted; one beyond the overload
	// cutoff is dropped.
	if d := m.Admit(0, 100, 50); d != Admit {
		t.Errorf("early bytes = %v", d)
	}
	if d := m.Admit(0, 8192, 50); d != DropOverloadCutoff {
		t.Errorf("late bytes = %v, want DropOverloadCutoff", d)
	}
	if s := m.Stats(); s.DroppedCutoff != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestNoMemoryDrop(t *testing.T) {
	m := New(Config{Size: 100, BaseThreshold: 0.9, Priorities: 1})
	m.Reserve(100)
	if d := m.Admit(0, 0, 1); d != DropNoMemory {
		t.Errorf("decision = %v, want DropNoMemory", d)
	}
}

func TestReleaseRestoresAdmission(t *testing.T) {
	m := New(Config{Size: 1000, BaseThreshold: 0.5, Priorities: 2})
	m.Reserve(900)
	if d := m.Admit(0, 0, 50); d != DropPriority {
		t.Fatalf("expected drop at 95%%, got %v", d)
	}
	m.Release(600) // back to 30%
	if d := m.Admit(0, 0, 50); d != Admit {
		t.Errorf("post-release decision = %v", d)
	}
}

func TestReleaseUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on underflow")
		}
	}()
	New(Config{Size: 10}).Release(1)
}

// TestPPLMonotonicity is the property test from DESIGN.md: at any occupancy,
// if a packet of priority p is admitted (ignoring cutoff), every packet of
// priority > p at the same occupancy is admitted too; and if priority p is
// dropped by watermark, every lower priority is dropped too.
func TestPPLMonotonicity(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + r.Intn(6)
		size := int64(1000)
		base := 0.3 + r.Float64()*0.6
		used := int64(r.Intn(1000))
		pktSize := 1 + r.Intn(50)
		results := make([]Decision, n)
		for p := 0; p < n; p++ {
			m := New(Config{Size: size, BaseThreshold: base, Priorities: n})
			m.Reserve(int(used))
			results[p] = m.Admit(p, 0, pktSize)
		}
		for p := 1; p < n; p++ {
			if results[p-1] == Admit && results[p] != Admit {
				t.Fatalf("trial %d: priority %d admitted but %d dropped (used=%d base=%v n=%d): %v",
					trial, p-1, p, used, base, n, results)
			}
		}
	}
}

func TestHighestPriorityDropsOnlyWhenFull(t *testing.T) {
	m := New(Config{Size: 1000, BaseThreshold: 0.5, Priorities: 3})
	m.Reserve(999)
	// Highest priority watermark is 1.0: a packet that fits is admitted.
	if d := m.Admit(2, 0, 1); d != Admit {
		t.Errorf("decision = %v", d)
	}
	if d := m.Admit(2, 0, 1); d != DropNoMemory {
		t.Errorf("decision = %v", d)
	}
}

func TestHighWaterTracking(t *testing.T) {
	m := New(Config{Size: 1000})
	m.Reserve(400)
	m.Release(100)
	m.Reserve(50)
	if m.Stats().HighWater != 400 {
		t.Errorf("highwater = %d", m.Stats().HighWater)
	}
}

func TestDefaults(t *testing.T) {
	m := New(Config{})
	if m.Size() != 1<<30 {
		t.Errorf("default size = %d", m.Size())
	}
	if w := m.Watermark(0); w != 1.0 {
		t.Errorf("single-priority watermark = %v, want 1.0", w)
	}
}
