// Quickstart: the paper's §3.3.1 flow-statistics exporter in ~20 lines.
//
// An Scap socket is created with a cutoff of zero, so the capture core
// discards every payload byte after updating statistics — no stream data
// is ever copied to user level. Per-flow statistics are read in the
// termination callback. A synthetic workload stands in for live traffic.
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	"scap"
	"scap/internal/trace"
)

func main() {
	h, err := scap.Create(scap.Config{ReassemblyMode: scap.TCPFast})
	if err != nil {
		log.Fatal(err)
	}
	if err := h.SetCutoff(0); err != nil { // statistics only
		log.Fatal(err)
	}

	var flows, packets atomic.Uint64
	h.DispatchTermination(func(sd *scap.Stream) {
		st := sd.Stats()
		flows.Add(1)
		packets.Add(st.Pkts)
		if flows.Load() <= 10 { // print the first few as a taste
			fmt.Printf("  %-48s %6d pkts %10d bytes\n", sd.Key(), st.Pkts, st.Bytes)
		}
	})

	if err := h.StartCapture(); err != nil {
		log.Fatal(err)
	}
	// Replace with h.ReplayPcap("your.pcap") for real traffic.
	gen := trace.NewGenerator(trace.GenConfig{Seed: 1, Flows: 500, Concurrency: 32})
	if err := h.ReplaySource(gen, 1e9); err != nil {
		log.Fatal(err)
	}
	h.Close()

	stats, _ := h.GetStats()
	fmt.Printf("\n%d stream directions closed, %d packets seen, %d bytes of stream memory still held\n",
		flows.Load(), packets.Load(), stats.MemoryUsed)
	fmt.Printf("payload discarded in the capture core: %d of %d bytes (cutoff 0)\n",
		stats.CutoffBytes, stats.PayloadBytes)
}
