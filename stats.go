package scap

// Stats aggregates socket-wide counters across the NIC and every engine
// core (scap_stats_t).
type Stats struct {
	// NIC level.
	FramesReceived  uint64 // frames offered to the NIC
	DroppedAtNIC    uint64 // dropped by FDIR filters before reaching memory
	DroppedRing     uint64 // lost to full receive rings
	RedirectedFlows uint64 // steered by load-balancing filters

	// Kernel path.
	Packets        uint64 // packets processed by the engines
	PayloadBytes   uint64 // transport payload seen
	StoredBytes    uint64 // payload written to stream memory
	CutoffPkts     uint64 // discarded beyond stream cutoffs
	CutoffBytes    uint64
	PPLDroppedPkts uint64 // shed by prioritized packet loss
	EventsLost     uint64 // chunks lost to full event queues
	DecodeErrors   uint64

	// Streams.
	StreamsCreated uint64 // stream directions tracked
	StreamsClosed  uint64 // terminated by FIN/RST
	StreamsExpired uint64 // inactivity timeouts
	StreamsEvicted uint64 // removed under table pressure

	// Hardware filters.
	FDIRInstalled uint64
	FDIRRemoved   uint64

	// Memory.
	MemoryUsed      int64
	MemoryHighWater int64
	MemorySize      int64
}

// GetStats returns a snapshot of the overall statistics for all streams
// seen so far (scap_get_stats). Counters are collected without stopping
// the capture path; a snapshot taken mid-burst may be momentarily
// inconsistent between fields, like reading /proc counters.
//
// Concurrency audit: h.engines, h.queues, h.nicDev, and h.mm are assigned
// in StartCapture before any capture goroutine exists and are read-only
// afterwards, so iterating them here is safe; the per-object snapshot
// calls (Engine.Stats atomics, NIC.Stats and Manager mutexes) make each
// read race-free against the running capture path.
func (h *Handle) GetStats() (Stats, error) {
	if !h.started && h.engines == nil {
		return Stats{}, ErrNotStarted
	}
	var st Stats
	ns := h.nicDev.Stats()
	st.FramesReceived = ns.Received
	st.DroppedAtNIC = ns.DroppedFilter
	st.DroppedRing = ns.DroppedRing
	st.RedirectedFlows = ns.Redirected
	for _, eng := range h.engines {
		es := eng.Stats()
		st.Packets += es.Packets
		st.PayloadBytes += es.PayloadBytes
		st.StoredBytes += es.StoredBytes
		st.CutoffPkts += es.CutoffPkts
		st.CutoffBytes += es.CutoffBytes
		st.PPLDroppedPkts += es.PPLDroppedPkts
		st.EventsLost += es.EventsLost
		st.DecodeErrors += es.DecodeErrors
		st.StreamsCreated += es.StreamsCreated
		st.StreamsClosed += es.StreamsClosed
		st.StreamsExpired += es.StreamsExpired
		st.StreamsEvicted += es.StreamsEvicted
		st.FDIRInstalled += es.FDIRInstalled
		st.FDIRRemoved += es.FDIRRemoved
	}
	st.MemoryUsed = h.mm.Used()
	st.MemoryHighWater = h.mm.Stats().HighWater
	st.MemorySize = h.mm.Size()
	return st, nil
}
