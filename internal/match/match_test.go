package match

import (
	"bytes"
	"math/rand"
	"testing"
)

// naiveFind returns all (pattern, end) occurrences by brute force.
func naiveFind(patterns [][]byte, data []byte) []Match {
	var out []Match
	for end := 1; end <= len(data); end++ {
		for pi, p := range patterns {
			if end >= len(p) && bytes.Equal(data[end-len(p):end], p) {
				out = append(out, Match{Pattern: pi, End: end})
			}
		}
	}
	return out
}

func collect(m *Matcher, data []byte) []Match {
	var out []Match
	m.Scan(data, func(mm Match) bool { out = append(out, mm); return true })
	return out
}

func sameMatches(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	seen := map[Match]int{}
	for _, m := range a {
		seen[m]++
	}
	for _, m := range b {
		seen[m]--
		if seen[m] < 0 {
			return false
		}
	}
	return true
}

func TestBasicMatching(t *testing.T) {
	m, err := NewStrings([]string{"he", "she", "his", "hers"})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(m, []byte("ushers"))
	// Classic AC example: "she" at 4, "he" at 4, "hers" at 6.
	want := []Match{{Pattern: 1, End: 4}, {Pattern: 0, End: 4}, {Pattern: 3, End: 6}}
	if !sameMatches(got, want) {
		t.Errorf("matches = %v, want %v", got, want)
	}
}

func TestOverlappingAndNested(t *testing.T) {
	m, _ := NewStrings([]string{"aa", "aaa"})
	got := collect(m, []byte("aaaa"))
	// "aa" ends at 2,3,4; "aaa" ends at 3,4.
	if len(got) != 5 {
		t.Errorf("got %d matches, want 5: %v", len(got), got)
	}
}

func TestDuplicatePatterns(t *testing.T) {
	m, _ := NewStrings([]string{"abc", "abc"})
	got := collect(m, []byte("xabcx"))
	if len(got) != 2 || got[0].Pattern == got[1].Pattern {
		t.Errorf("duplicate patterns should both report: %v", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	if _, err := New(nil); err != ErrNoPatterns {
		t.Errorf("New(nil) err = %v, want ErrNoPatterns", err)
	}
	if _, err := NewStrings([]string{"ok", ""}); err == nil {
		t.Error("empty pattern accepted")
	}
	m, _ := NewStrings([]string{"x"})
	if n := m.Count(nil); n != 0 {
		t.Errorf("Count(nil) = %d", n)
	}
}

func TestBinaryPatterns(t *testing.T) {
	m, err := New([][]byte{{0x00, 0xff}, {0xff, 0x00, 0xff}})
	if err != nil {
		t.Fatal(err)
	}
	data := []byte{0xff, 0x00, 0xff, 0x00, 0xff}
	got := collect(m, data)
	// {00 ff} ends at 3 and 5; {ff 00 ff} ends at 3 and 5.
	if len(got) != 4 {
		t.Errorf("binary matches = %v (want 4 occurrences)", got)
	}
}

func TestAgainstNaiveRandom(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	alphabet := []byte("abcd")
	for trial := 0; trial < 50; trial++ {
		np := 1 + r.Intn(8)
		patterns := make([][]byte, np)
		for i := range patterns {
			p := make([]byte, 1+r.Intn(5))
			for j := range p {
				p[j] = alphabet[r.Intn(len(alphabet))]
			}
			patterns[i] = p
		}
		data := make([]byte, r.Intn(200))
		for j := range data {
			data[j] = alphabet[r.Intn(len(alphabet))]
		}
		m, err := New(patterns)
		if err != nil {
			t.Fatal(err)
		}
		got := collect(m, data)
		want := naiveFind(patterns, data)
		if !sameMatches(got, want) {
			t.Fatalf("trial %d: patterns %q data %q: got %v want %v",
				trial, patterns, data, got, want)
		}
	}
}

func TestSparseEqualsDense(t *testing.T) {
	r := rand.New(rand.NewSource(321))
	patterns := [][]byte{[]byte("attack"), []byte("tac"), []byte("ck"), []byte("kat")}
	m, _ := New(patterns)
	if !m.Dense() {
		t.Fatal("expected dense automaton")
	}
	sparse := *m
	sparse.next = nil
	for trial := 0; trial < 100; trial++ {
		data := make([]byte, r.Intn(300))
		for j := range data {
			data[j] = "atck"[r.Intn(4)]
		}
		if !sameMatches(collect(m, data), collect(&sparse, data)) {
			t.Fatalf("dense and sparse disagree on %q", data)
		}
	}
}

func TestStreamingAcrossChunks(t *testing.T) {
	m, _ := NewStrings([]string{"boundary", "spanning"})
	data := []byte("xxboundaryyy-spanning-zz")
	for cut := 1; cut < len(data)-1; cut++ {
		var got []Match
		st := m.Resume(State{}, data[:cut], func(mm Match) bool {
			got = append(got, mm)
			return true
		})
		m.Resume(st, data[cut:], func(mm Match) bool {
			got = append(got, Match{Pattern: mm.Pattern, End: mm.End + cut})
			return true
		})
		want := collect(m, data)
		if !sameMatches(got, want) {
			t.Fatalf("cut=%d: got %v want %v", cut, got, want)
		}
	}
}

func TestEarlyStop(t *testing.T) {
	m, _ := NewStrings([]string{"a"})
	calls := 0
	m.Scan([]byte("aaaa"), func(Match) bool { calls++; return false })
	if calls != 1 {
		t.Errorf("early stop ignored: %d calls", calls)
	}
	if !m.Contains([]byte("za")) || m.Contains([]byte("zz")) {
		t.Error("Contains wrong")
	}
}

func TestLargePatternSet(t *testing.T) {
	// Mimics the paper's 2,120 web-attack strings.
	r := rand.New(rand.NewSource(2120))
	patterns := make([][]byte, 2120)
	for i := range patterns {
		p := make([]byte, 4+r.Intn(20))
		for j := range p {
			p[j] = byte('a' + r.Intn(26))
		}
		patterns[i] = p
	}
	m, err := New(patterns)
	if err != nil {
		t.Fatal(err)
	}
	// Embed a few known patterns in a payload and check they are found.
	payload := bytes.Repeat([]byte("GET /index.html HTTP/1.1 "), 50)
	payload = append(payload, patterns[7]...)
	payload = append(payload, []byte(" filler ")...)
	payload = append(payload, patterns[2000]...)
	found := map[int]bool{}
	m.Scan(payload, func(mm Match) bool { found[mm.Pattern] = true; return true })
	if !found[7] || !found[2000] {
		t.Errorf("embedded patterns not found: %v", found)
	}
}

func BenchmarkScanDense(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	patterns := make([][]byte, 2000)
	for i := range patterns {
		p := make([]byte, 6+r.Intn(12))
		for j := range p {
			p[j] = byte('a' + r.Intn(26))
		}
		patterns[i] = p
	}
	m, err := New(patterns)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 16*1024)
	for j := range data {
		data[j] = byte('a' + r.Intn(26))
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Count(data)
	}
}
