// Package analysis implements scaplint, a repo-specific static-analysis
// suite for the capture path's hot-path and concurrency invariants.
//
// The paper's performance claims rest on a disciplined split between the
// per-core kernel path (one goroutine owning each engine) and user threads
// reading snapshots. Go's race detector only checks the interleavings tests
// happen to execute; these analyzers enforce the invariants statically:
//
//   - statssnapshot: exported snapshot getters on shared types must not
//     return structs whose fields are mutated elsewhere without
//     synchronization (the Engine.Stats data-race shape).
//   - hotpathalloc: functions marked //scap:hotpath must not allocate
//     (fmt formatting, time.Now, map/slice literals, make, new, capturing
//     closures, unvetted append) on the per-packet path.
//   - hotpathlock: functions marked //scap:hotpath must not acquire a
//     sync.Mutex or sync.RWMutex — the per-packet path shares state
//     through single-writer structures and atomics, not locks.
//   - lockdiscipline: struct fields annotated "guarded by <mu>" must only
//     be touched by methods that acquire that mutex (or are *Locked
//     helpers called with it held).
//   - metricreg: functions marked //scap:hotpath may only use the
//     internal/metrics atomic fast path (Add/Inc/Set/Observe/ObserveEx/Record/Load);
//     metric registration and snapshot assembly belong in setup code.
//   - exporteddoc: packages carrying a //scap:publicapi file marker must
//     document every exported symbol.
//
// On top of the per-package checks, three whole-program analyzers walk a
// call graph spanning every loaded package (the loader shares types.Func
// identity across packages, so cross-package edges resolve):
//
//   - ownership: //scap:goroutine <role> marks goroutine entry points;
//     roles propagate over call edges and must respect //scap:owner,
//     //scap:spsc + //scap:produce///scap:consume, and //scap:onlyrole
//     constraints (single-writer engines, SPSC rings, return rings).
//   - atomicfield: a field accessed via sync/atomic anywhere must never
//     be accessed plainly elsewhere; 64-bit atomics must be 8-byte
//     aligned on 32-bit layouts; //scap:atomics structs stay all-atomic.
//   - hotpathblock: //scap:hotpath functions and their transitive
//     callees must not block (channel ops, select without default,
//     time.Sleep, syscalls, I/O).
//
// Everything is built on the stdlib go/ast + go/types + go/parser stack;
// the module stays dependency-free. Findings can be suppressed line-by-line
// with "//scaplint:ignore <analyzer> <reason>" on the flagged line or the
// line above it; Run tracks which directives actually fire so stale ones
// can be reported (scaplint -unusedignores).
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check. Per-package analyzers set Run; whole-
// program analyzers (which need the cross-package call graph) set
// RunProgram. Exactly one of the two should be non-nil.
type Analyzer struct {
	Name       string
	Doc        string
	Run        func(p *Package) []Diagnostic
	RunProgram func(prog *Program) []Diagnostic
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		StatsSnapshot, HotPathAlloc, HotPathLock, LockDiscipline, MetricReg, ExportedDoc,
		Ownership, AtomicField, HotPathBlock,
	}
}

// IgnoreInfo describes one //scaplint:ignore directive seen during a run
// and whether it suppressed anything.
type IgnoreInfo struct {
	Pos      token.Position
	Analyzer string // "" for a bare directive
	Reason   string
	Used     bool
}

// Result is the outcome of applying an analyzer suite to a package set.
type Result struct {
	// Diags holds the surviving (unsuppressed) findings, sorted by
	// position.
	Diags []Diagnostic
	// Ignores lists every suppression directive in the analyzed
	// packages, in position order, with its usage during this run.
	Ignores []IgnoreInfo
}

// Run applies the analyzers to every package (and, for whole-program
// analyzers, to all of them together), drops suppressed diagnostics, and
// reports the rest along with suppression usage.
func Run(pkgs []*Package, analyzers []*Analyzer) Result {
	sup := newSuppressionSet()
	for _, p := range pkgs {
		sup.collect(p)
	}
	prog := NewProgram(pkgs)
	var out []Diagnostic
	collect := func(ds []Diagnostic) {
		for _, d := range ds {
			if sup.matches(d) {
				continue
			}
			out = append(out, d)
		}
	}
	for _, a := range analyzers {
		if a.Run != nil {
			for _, p := range pkgs {
				collect(a.Run(p))
			}
		}
		if a.RunProgram != nil {
			collect(a.RunProgram(prog))
		}
	}
	sortDiagnostics(out)
	res := Result{Diags: out}
	for _, dir := range sup.directives {
		res.Ignores = append(res.Ignores, IgnoreInfo{
			Pos:      dir.Pos,
			Analyzer: dir.Analyzer,
			Reason:   dir.Reason,
			Used:     dir.used,
		})
	}
	sort.Slice(res.Ignores, func(i, j int) bool {
		return positionLess(res.Ignores[i].Pos, res.Ignores[j].Pos)
	})
	return res
}

// RunAll applies the analyzers to every package, drops suppressed
// diagnostics, and sorts the rest by position.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return Run(pkgs, analyzers).Diags
}

// UnusedIgnoreDiagnostics converts stale or malformed suppression
// directives of a run into diagnostics (analyzer name "unusedignores").
// Each directive yields at most one finding, most fundamental first:
// bare directives, unknown analyzer names, missing justifications, then
// directives that suppressed nothing.
func UnusedIgnoreDiagnostics(res Result, suite []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(suite))
	for _, a := range suite {
		known[a.Name] = true
	}
	var out []Diagnostic
	add := func(pos token.Position, format string, args ...any) {
		out = append(out, Diagnostic{Pos: pos, Analyzer: "unusedignores", Message: fmt.Sprintf(format, args...)})
	}
	for _, ig := range res.Ignores {
		switch {
		case ig.Analyzer == "":
			add(ig.Pos, "bare //scaplint:ignore suppresses every analyzer: name the analyzer and give a reason")
		case !known[ig.Analyzer]:
			add(ig.Pos, "//scaplint:ignore names unknown analyzer %q", ig.Analyzer)
		case ig.Reason == "":
			add(ig.Pos, "//scaplint:ignore %s has no justification: say why the finding is safe", ig.Analyzer)
		case !ig.Used:
			add(ig.Pos, "stale //scaplint:ignore %s: it no longer suppresses any diagnostic", ig.Analyzer)
		}
	}
	return out
}

func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if !positionEqual(a.Pos, b.Pos) {
			return positionLess(a.Pos, b.Pos)
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

func positionLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

func positionEqual(a, b token.Position) bool {
	return a.Filename == b.Filename && a.Line == b.Line && a.Column == b.Column
}
