GO ?= go

.PHONY: build test test-short race vet lint fmt-check bench-quick bench-flowtab bench-ctlplane serve-smoke flight-smoke ctlplane-smoke streams-smoke vet-live test-live check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -short -race ./...

vet:
	$(GO) vet ./...

# lint runs scaplint, the repo's own static-analysis suite: the
# per-package checks (hot-path allocation and locking, snapshot-getter,
# lock-discipline, metrics-registration, exported-doc invariants) plus
# the whole-program concurrency-contract analyzers (goroutine ownership,
# atomic-field discipline, hot-path blocking). -unusedignores also fails
# on stale or unjustified //scaplint:ignore directives.
lint:
	$(GO) run ./cmd/scaplint -unusedignores ./...

# bench-quick compiles and runs every benchmark for a single iteration —
# a smoke test that the bench harnesses stay buildable and terminate, not
# a measurement. Output is teed to bench-quick.txt so CI can upload it as
# a workflow artifact.
bench-quick:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./... | tee bench-quick.txt

# bench-flowtab runs the flow-table scaling suite quickly — the per-size
# lookup/miss curves (allocs/op must stay 0) and the million-concurrent-
# flow end-to-end replay — so the flat-curve claim (DESIGN.md §11,
# bench_results.txt) is tracked per-PR. 100x is a smoke iteration count:
# enough to exercise every table size including the 2^20 case, not a
# stable measurement. Output joins the bench-quick CI artifact.
bench-flowtab:
	$(GO) test -run '^$$' -bench 'BenchmarkLookup1M|BenchmarkLookupMiss' -benchtime 100x -benchmem ./internal/flowtab | tee bench-flowtab.txt
	$(GO) test -run '^$$' -bench 'BenchmarkInject1MFlows' -benchtime 100x -benchmem . | tee -a bench-flowtab.txt

# serve-smoke replays a small trace through a socket with the debug server
# enabled, scrapes /metrics over HTTP, and asserts nonzero packets_total —
# the end-to-end proof that the observability path works.
serve-smoke:
	$(GO) run ./cmd/scaptop -smoke

# flight-smoke replays a short trace with a low stream cutoff so the engines
# emit flight-recorder records, then asserts /debug/flight returns at least
# one record and a valid Chrome trace-event export.
flight-smoke:
	$(GO) run ./cmd/scaptop -flight-smoke

# ctlplane-smoke overloads a deliberately tiny socket (2 MiB memory budget,
# slow consumer callbacks) with the adaptive controller enabled, then asserts
# /debug/ctlplane shows tighten decisions and /debug/flight carries the
# matching ctl_* records — the end-to-end proof of the telemetry→decision→
# actuation loop.
ctlplane-smoke:
	$(GO) run ./cmd/scaptop -ctlplane-smoke

# streams-smoke replays a cutoff-heavy trace with the journal sampler
# effectively off, then asserts /debug/streams carries cutoff-promoted
# journals (the anomaly-promotion invariant), the chrome export has one
# named track per journal, and /debug/history accumulates sparkline points.
# Set SCAP_STREAMS_TRACE_OUT to also write the Perfetto-loadable export.
streams-smoke:
	$(GO) run ./cmd/scaptop -streams-smoke

# bench-ctlplane runs the adaptive-vs-fixed-cutoff overload replay
# (EXPERIMENTS.md §ctlplane) with the strict comparative assertions on: the
# adaptive run must beat every fixed cutoff on p99 ring→worker latency while
# delivering at least as many useful priority-0 bytes as the best fixed
# cutoff. Results are teed to bench-ctlplane.txt.
bench-ctlplane:
	SCAP_CTLPLANE_STRICT=1 $(GO) test -run TestAdaptiveVsFixedCutoff -v . | tee bench-ctlplane.txt

# vet-live type-checks the AF_PACKET/TPACKET_V3 backend, which is behind
# the "live" build tag and otherwise invisible to vet.
vet-live:
	$(GO) vet -tags live ./...

# test-live runs the live-capture conformance tests over a veth pair.
# Needs root (CAP_NET_ADMIN + CAP_NET_RAW); the tests skip themselves
# without it, so run as: sudo make test-live
test-live:
	$(GO) test -tags live -run AFPacket -v ./internal/nic/

fmt-check:
	@out=$$(gofmt -l . | grep -v '^testdata/' || true); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# check is the full CI gate.
check: build vet vet-live lint fmt-check race serve-smoke flight-smoke ctlplane-smoke streams-smoke
