// Package event implements the per-core event queues between the Scap
// kernel-path engine and the user-level worker threads (paper §5.4): stream
// creation, stream data, and stream termination events, carried in a
// single-producer single-consumer ring with wakeup support.
package event

import (
	"sync"

	"scap/internal/flowtab"
)

// Type discriminates events.
type Type uint8

const (
	// Creation fires when a new stream is tracked.
	Creation Type = iota
	// Data fires when a chunk is ready: full, flushed by timeout, cut off,
	// or final at termination.
	Data
	// Termination fires when a stream ends (FIN/RST, timeout, eviction).
	Termination
)

func (t Type) String() string {
	switch t {
	case Creation:
		return "creation"
	case Data:
		return "data"
	case Termination:
		return "termination"
	}
	return "unknown"
}

// Event is one queue entry. Data events carry the chunk payload; the slice
// is owned by the stream's chunk storage and is valid until the worker
// returns from its callback (after which the engine may recycle it).
type Event struct {
	Type Type
	// Stream is the live kernel record. Workers must not dereference it —
	// it is mutated concurrently by the engine; it serves only as an
	// opaque handle for control operations (validated against Info.ID).
	Stream *flowtab.Stream
	// Info is the consistent snapshot taken when the event was enqueued.
	Info flowtab.Info
	// Chunk fields, meaningful for Data events.
	Data       []byte
	HoleBefore bool // reassembly skipped a hole before this chunk
	Last       bool // final chunk of the stream
	// Accounted is how many bytes of Data count against the stream-memory
	// budget (overlap bytes carried from the previous chunk are not
	// counted twice); the consumer releases them after the callback.
	Accounted int
	// Pkts are the per-packet records for scap_next_stream_packet, present
	// when the socket was created with packet delivery enabled.
	Pkts []PacketRecord
}

// PacketRecord describes one captured packet of a chunk for packet-based
// delivery (paper §5.7): a capture header plus the location of the
// packet's payload bytes within the chunk.
type PacketRecord struct {
	TS      int64
	WireLen int
	CapLen  int
	Seq     uint32
	Flags   uint8
	// Off/Len locate the payload inside the chunk's Data; Len 0 means the
	// bytes are not present in this chunk (duplicate or dropped data).
	Off int32
	Len int32
}

// Queue is the per-core event ring. The kernel-path engine is the only
// producer; the worker thread is the only consumer. A mutex (not atomics)
// keeps it obviously correct; the producer and consumer touch it briefly.
//
//scap:shared
type Queue struct {
	mu   sync.Mutex
	cond *sync.Cond
	// buf is guarded by mu.
	buf []Event
	// head and n are guarded by mu.
	head, n int
	// closed is guarded by mu.
	closed bool

	// Dropped counts events discarded because the ring was full — the
	// analogue of a packet-capture buffer overflowing. Guarded by mu;
	// read it only after the producer has stopped (tests do).
	Dropped uint64
}

// DefaultQueueCap is the default ring capacity.
const DefaultQueueCap = 1 << 16

// NewQueue creates a queue with the given capacity (0 selects the default).
func NewQueue(capacity int) *Queue {
	if capacity <= 0 {
		capacity = DefaultQueueCap
	}
	q := &Queue{buf: make([]Event, capacity)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues an event; it reports false (and counts a drop) if the ring
// is full or closed.
//
//scap:hotpath
func (q *Queue) Push(e Event) bool {
	q.mu.Lock()
	if q.closed || q.n == len(q.buf) {
		if !q.closed {
			q.Dropped++
		}
		q.mu.Unlock()
		return false
	}
	q.buf[(q.head+q.n)%len(q.buf)] = e
	q.n++
	q.mu.Unlock()
	q.cond.Signal()
	return true
}

// Poll removes the next event without blocking.
func (q *Queue) Poll() (Event, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.popLocked()
}

// Wait blocks until an event is available or the queue is closed; it
// returns false only when closed and drained — the worker's poll() loop.
func (q *Queue) Wait() (Event, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.cond.Wait()
	}
	return q.popLocked()
}

func (q *Queue) popLocked() (Event, bool) {
	if q.n == 0 {
		return Event{}, false
	}
	e := q.buf[q.head]
	q.buf[q.head] = Event{}
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return e, true
}

// Len returns the number of queued events.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Close wakes all waiters; subsequent pushes fail. Pending events remain
// drainable via Poll/Wait.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
