package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram counts observations in power-of-two buckets: bucket i counts
// values v with v <= 2^i (the final bucket absorbs everything larger).
// Like counters, buckets are kept per core — each core observes into its
// own row (padded to whole cache lines), so concurrent engines never
// contend on a bucket's cache line — and rows are summed at snapshot
// time. An observation is two uncontended atomic adds (bucket + sum).
type Histogram struct {
	desc Desc
	nb   int // bucket count: le 2^0 .. 2^maxPow, plus one overflow bucket
	// rows holds one bucket row per core: slots [0..nb) are the buckets,
	// slot nb is the value sum, and the row is padded to a multiple of
	// eight slots (64 bytes) so rows do not share cache lines.
	rows [][]atomic.Uint64
	ex   exemplar
}

// exemplar is the histogram's tail exemplar: the stream behind the most
// recent highest-bucket observation since the last snapshot, so a p99 spike
// links to a concrete stream journal. It is one seqlock-guarded record;
// bucket doubles as a ratchet — only observations landing at or above the
// current exemplar's bucket replace it, and every snapshot re-arms the
// ratchet (bucket -1) while keeping the last exemplar visible.
//
//scap:atomics
type exemplar struct {
	seq    atomic.Uint64 // even = stable, odd = write in progress
	bucket atomic.Int64  // bucket index of the held exemplar; -1 = re-armed
	val    atomic.Uint64
	id     atomic.Uint64 // stream ID of the observation
	ts     atomic.Int64  // capture clock (Nanotime) at observation
}

func newHistogram(d Desc, cores, maxPow int) *Histogram {
	if maxPow < 0 {
		maxPow = 0
	}
	if cores < 1 {
		cores = 1
	}
	nb := maxPow + 2
	rowLen := (nb + 1 + 7) &^ 7
	h := &Histogram{desc: d, nb: nb, rows: make([][]atomic.Uint64, cores)}
	for i := range h.rows {
		h.rows[i] = make([]atomic.Uint64, rowLen)
	}
	h.ex.bucket.Store(-1)
	return h
}

// Desc returns the histogram's metadata.
func (h *Histogram) Desc() Desc { return h.desc }

// Observe records one observation of v on core's row. An out-of-range
// core falls back to row 0.
//
//scap:hotpath
func (h *Histogram) Observe(core int, v uint64) {
	if core < 0 || core >= len(h.rows) {
		core = 0
	}
	row := h.rows[core]
	i := 0
	if v > 1 {
		i = bits.Len64(v - 1) // smallest i with 2^i >= v
	}
	if i >= h.nb {
		i = h.nb - 1
	}
	row[i].Add(1)
	row[h.nb].Add(v)
}

// ObserveEx records one observation of v attributed to streamID, updating
// the histogram's tail exemplar when the observation lands at or above the
// exemplar's current bucket. The exemplar write is a best-effort seqlock:
// contended writers simply skip (losing an exemplar candidate, never
// blocking), so the cost over Observe stays a couple of uncontended atomics.
//
//scap:hotpath
func (h *Histogram) ObserveEx(core int, v, streamID uint64) {
	h.Observe(core, v)
	i := 0
	if v > 1 {
		i = bits.Len64(v - 1)
	}
	if i >= h.nb {
		i = h.nb - 1
	}
	if int64(i) < h.ex.bucket.Load() {
		return
	}
	// Inline seqlock write (mirrors FlightRecorder.Note's slot protocol):
	// claim via CAS to odd, store fields, publish even.
	cur := h.ex.seq.Load()
	if cur&1 == 1 || !h.ex.seq.CompareAndSwap(cur, cur+1) {
		return
	}
	h.ex.bucket.Store(int64(i))
	h.ex.val.Store(v)
	h.ex.id.Store(streamID)
	h.ex.ts.Store(Nanotime())
	h.ex.seq.Store(cur + 2)
}

// BucketSnap is one histogram bucket: the count of observations with value
// <= Le (Le 0 marks the overflow bucket).
type BucketSnap struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// ExemplarSnap is a histogram's decoded tail exemplar: the stream behind the
// most recent tail-bucket observation. Le is the upper bound of the bucket
// the exemplar landed in (0 = overflow bucket), AgeNano its age relative to
// the capture clock at snapshot time.
type ExemplarSnap struct {
	Value    uint64 `json:"value"`
	StreamID uint64 `json:"stream_id"`
	Le       uint64 `json:"le"`
	AgeNano  int64  `json:"age_nano"`
}

// HistogramSnap is one histogram's snapshot.
type HistogramSnap struct {
	Desc
	Count    uint64        `json:"count"`
	Sum      uint64        `json:"sum"`
	Buckets  []BucketSnap  `json:"buckets"`
	Exemplar *ExemplarSnap `json:"exemplar,omitempty"`
}

// QuantileFromSnap estimates the p-quantile (0 < p <= 1) of a histogram
// snapshot. Within the matched power-of-two bucket (2^(i-1), 2^i] the
// estimate interpolates log-linearly — v = lo · (hi/lo)^frac — matching the
// buckets' geometric spacing, so the estimate is never off by more than the
// bucket's 2x width and tracks the true quantile closely for smooth
// distributions. The first bucket [0, 1] interpolates linearly. When the
// quantile lands in the overflow bucket the largest finite bound is returned
// (a lower bound on the true value). A zero-count snapshot yields 0.
func QuantileFromSnap(s HistogramSnap, p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(s.Count)
	if target < 1 {
		target = 1
	}
	var cum, lo float64
	for _, b := range s.Buckets {
		if b.Le == 0 { // overflow bucket: range unknown
			return lo
		}
		hi := float64(b.Le)
		if b.Count > 0 && cum+float64(b.Count) >= target {
			frac := (target - cum) / float64(b.Count)
			if lo == 0 {
				return hi * frac
			}
			return lo * math.Pow(hi/lo, frac)
		}
		cum += float64(b.Count)
		lo = hi
	}
	return lo
}

// Snap returns a point-in-time snapshot of the histogram (buckets summed
// across cores). Cold path: the control plane and tests read quantiles from
// it via QuantileFromSnap without assembling a whole registry snapshot.
func (h *Histogram) Snap() HistogramSnap { return h.snapshot() }

func (h *Histogram) snapshot() HistogramSnap {
	s := HistogramSnap{Desc: h.desc}
	for i := 0; i < h.nb; i++ {
		var n uint64
		for _, row := range h.rows {
			n += row[i].Load()
		}
		s.Count += n
		le := uint64(1) << uint(i)
		if i == h.nb-1 {
			le = 0 // overflow bucket
		}
		s.Buckets = append(s.Buckets, BucketSnap{Le: le, Count: n})
	}
	for _, row := range h.rows {
		s.Sum += row[h.nb].Load()
	}
	s.Exemplar = h.snapExemplar()
	return s
}

// snapExemplar reads the exemplar under its seqlock and re-arms the ratchet
// so the next tail observation — in any bucket — becomes the new exemplar.
// Returns nil when no exemplar was ever recorded or the read raced a writer.
func (h *Histogram) snapExemplar() *ExemplarSnap {
	for attempt := 0; attempt < 3; attempt++ {
		seq := h.ex.seq.Load()
		if seq == 0 {
			return nil
		}
		if seq&1 == 1 {
			continue
		}
		e := ExemplarSnap{
			Value:    h.ex.val.Load(),
			StreamID: h.ex.id.Load(),
			AgeNano:  Nanotime() - h.ex.ts.Load(),
		}
		if h.ex.seq.Load() != seq {
			continue
		}
		// Le derives from the value (the ratchet word may already be
		// re-armed from a prior scrape); 0 marks the overflow bucket.
		i := 0
		if e.Value > 1 {
			i = bits.Len64(e.Value - 1)
		}
		if i < h.nb-1 {
			e.Le = uint64(1) << uint(i)
		}
		// Re-arm: any subsequent observation may claim the exemplar. The
		// exemplar fields stay readable between scrapes.
		h.ex.bucket.Store(-1)
		return &e
	}
	return nil
}
