// Command scapbench regenerates the paper's evaluation figures on the
// simulated 10 GbE pipeline and prints each as a text table.
//
// Usage:
//
//	scapbench                 # all figures, full scale
//	scapbench -fig 6          # just Figure 6 (a,b,c)
//	scapbench -quick          # smaller sweeps for a fast smoke run
//	scapbench -flows 20000    # bigger synthetic trace
//
// Live mode replays the synthetic workload through a real socket in an
// endless loop with the debug server enabled, so cmd/scaptop can watch an
// (overloadable) capture:
//
//	scapbench -live -serve 127.0.0.1:6060 -mem 8 -rate 4e9
//
// With -pcap the live socket runs the file-backed replay backend instead
// of the synthetic generator: the trace streams through the software
// RSS/filter shim and bounded per-queue rings (the PF_PACKET loss model),
// and -passes loops it with monotonic timestamps:
//
//	scapbench -live -pcap trace.pcap -passes 100 -mem 8
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"scap"
	"scap/internal/bench"
	"scap/internal/trace"
)

func main() {
	var (
		figID = flag.String("fig", "", "figure to run (3..12); empty = all")
		quick = flag.Bool("quick", false, "smaller sweeps")
		flows = flag.Int("flows", 0, "override synthetic trace flow count")
		seed  = flag.Int64("seed", 0, "override workload seed")

		live      = flag.Bool("live", false, "loop the workload through a served socket instead of running figures")
		serveAddr = flag.String("serve", "127.0.0.1:6060", "debug server address in -live mode")
		rate      = flag.Float64("rate", 4e9, "virtual replay rate in bits/s in -live mode")
		memMB     = flag.Int("mem", 64, "stream-memory budget in MiB in -live mode (shrink it to force PPL overload)")
		pcapPath  = flag.String("pcap", "", "in -live mode, replay this pcap file through the replay backend instead of the synthetic generator")
		passes    = flag.Int("passes", 1, "with -pcap, replay the file this many times with monotonic timestamps")
	)
	flag.Parse()

	if *live {
		if *pcapPath != "" {
			if err := runPcap(*serveAddr, *pcapPath, *passes, int64(*memMB)<<20); err != nil {
				fmt.Fprintln(os.Stderr, "scapbench -live -pcap:", err)
				os.Exit(1)
			}
			return
		}
		n := *flows
		if n <= 0 {
			n = 2000
		}
		if err := runLive(*serveAddr, n, *seed, *rate, int64(*memMB)<<20); err != nil {
			fmt.Fprintln(os.Stderr, "scapbench -live:", err)
			os.Exit(1)
		}
		return
	}

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *flows > 0 {
		cfg.Flows = *flows
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	start := time.Now()
	fmt.Printf("generating workload (%d flows)...\n", cfg.Flows)
	r, err := bench.NewRunner(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scapbench:", err)
		os.Exit(1)
	}
	fmt.Printf("workload: %d packets, %d MB, %d flows, %d embedded patterns (%.1fs)\n\n",
		r.Generator().Packets, r.TraceBytes()>>20, r.Generator().FlowsMade,
		r.Generator().Embedded, time.Since(start).Seconds())

	var figs []*bench.Figure
	if *figID == "" {
		figs = r.All()
	} else {
		figs, err = r.ByID(*figID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scapbench:", err)
			os.Exit(1)
		}
	}
	for _, f := range figs {
		f.Print(os.Stdout)
	}
	fmt.Printf("done in %.1fs\n", time.Since(start).Seconds())
}

// runLive drives an endless replay loop through a real capture socket with
// the debug server enabled — the workload generator reseeds each round, so
// streams keep churning and the /metrics rates stay live until interrupted.
// A small -mem budget pushes the socket into PPL pressure, making the
// overload telemetry (ppl_enter/ppl_exit events, ppl-drop rates) visible in
// scaptop.
// runPcap replays a trace file through the pcap replay capture backend —
// the source-driven path, where frames arrive from the backend's own
// reader rather than an injection loop — with the debug server up, then
// blocks until the final pass drains and prints the socket statistics.
func runPcap(addr, path string, passes int, memBytes int64) error {
	h, err := scap.Create(scap.Config{
		MemorySize:     memBytes,
		Queues:         runtime.GOMAXPROCS(0),
		ReassemblyMode: scap.TCPFast,
		Backend:        scap.BackendConfig{PcapPath: path, PcapPasses: passes},
	})
	if err != nil {
		return err
	}
	h.DispatchData(func(sd *scap.Stream) {})
	if err := h.StartCapture(); err != nil {
		return err
	}
	defer h.Close()
	srv, err := h.Serve(addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("pcap replay: %s (%d pass(es)), %d MiB stream memory\n", path, passes, memBytes>>20)
	fmt.Printf("metrics:     http://%s/metrics   (watch with: scaptop -addr %s)\n", srv.Addr(), srv.Addr())
	if err := h.WaitBackend(); err != nil {
		return err
	}
	st, err := h.GetStats()
	if err != nil {
		return err
	}
	fmt.Printf("done: frames=%d packets=%d ring-dropped=%d ppl-dropped=%d streams=%d\n",
		st.FramesReceived, st.Packets, st.DroppedRing, st.PPLDroppedPkts, st.StreamsCreated)
	return nil
}

func runLive(addr string, flows int, seed int64, bitsPerSec float64, memBytes int64) error {
	h, err := scap.Create(scap.Config{
		MemorySize:     memBytes,
		Queues:         runtime.GOMAXPROCS(0),
		ReassemblyMode: scap.TCPFast,
	})
	if err != nil {
		return err
	}
	// A do-nothing data callback keeps the workers consuming chunks, so
	// memory pressure comes from the replay rate, not from an absent app.
	h.DispatchData(func(sd *scap.Stream) {})
	if err := h.StartCapture(); err != nil {
		return err
	}
	defer h.Close()
	srv, err := h.Serve(addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("live replay: %d flows/round at %.2g bit/s, %d MiB stream memory\n",
		flows, bitsPerSec, memBytes>>20)
	fmt.Printf("metrics:     http://%s/metrics   (watch with: scaptop -addr %s)\n", srv.Addr(), srv.Addr())
	for round := 1; ; round++ {
		gen := trace.ConcurrentStreamsWorkload(seed+int64(round), flows, 256, 64, 1460)
		if err := h.ReplaySource(gen, bitsPerSec); err != nil {
			return err
		}
		st, err := h.GetStats()
		if err != nil {
			return err
		}
		fmt.Printf("round %d: packets=%d ppl-dropped=%d ring-dropped=%d mem=%d/%d\n",
			round, st.Packets, st.PPLDroppedPkts, st.DroppedRing, st.MemoryUsed, st.MemorySize)
	}
}
