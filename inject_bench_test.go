package scap

// End-to-end injection throughput: frames enter through the public replay
// API, cross the simulated NIC, the per-queue kernel goroutines, the event
// rings, and the worker dispatch loop. This is the wall-clock benchmark the
// hot-path synchronization work is judged against (the figure benchmarks in
// bench_test.go run the *modeled* pipeline in internal/sim; this one runs
// the real goroutines).
//
//	go test -bench=InjectThroughput -benchtime=2s .

import (
	"fmt"
	"sync"
	"testing"

	"scap/internal/trace"
)

var (
	injectOnce   sync.Once
	injectFrames [][]byte
	injectBytes  int64
)

func injectWorkload() [][]byte {
	injectOnce.Do(func() {
		g := trace.NewGenerator(trace.GenConfig{Seed: 11, Flows: 1 << 30, Concurrency: 128})
		injectFrames = trace.Collect(g, 8192)
		for _, f := range injectFrames {
			injectBytes += int64(len(f))
		}
	})
	return injectFrames
}

// BenchmarkInjectThroughput replays a synthetic workload through a running
// socket at several queue counts. One b.N unit is one frame.
func BenchmarkInjectThroughput(b *testing.B) {
	frames := injectWorkload()
	for _, queues := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("queues=%d", queues), func(b *testing.B) {
			h, err := Create(Config{Queues: queues, MemorySize: 1 << 30})
			if err != nil {
				b.Fatal(err)
			}
			h.DispatchData(func(sd *Stream) {})
			if err := h.StartCapture(); err != nil {
				b.Fatal(err)
			}
			src := &trace.SliceSource{Frames: frames}
			b.SetBytes(injectBytes / int64(len(frames)))
			b.ResetTimer()
			done := 0
			for done < b.N {
				src.Reset()
				if err := h.ReplaySource(src, 40e9); err != nil {
					b.Fatal(err)
				}
				done += len(frames)
			}
			b.StopTimer()
			if err := h.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
