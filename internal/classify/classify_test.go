package classify

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSniffProtocols(t *testing.T) {
	cases := []struct {
		head       string
		serverSide bool
		want       Protocol
	}{
		{"GET /index.html HTTP/1.1\r\n", false, HTTP},
		{"POST /api HTTP/1.1\r\n", false, HTTP},
		{"HTTP/1.1 200 OK\r\n", true, HTTP},
		{"SSH-2.0-OpenSSH_9.1\r\n", false, SSH},
		{"SSH-2.0-Server\r\n", true, SSH},
		{"EHLO mail.example.com\r\n", false, SMTP},
		{"MAIL FROM:<a@b>\r\n", false, SMTP},
		{"220 mx.example.com ESMTP ready\r\n", true, SMTP},
		{"220 Welcome to FTP service\r\n", true, FTP},
		{"USER anonymous\r\n", false, FTP},
		{"", false, Unknown},
		{"\x00\x01\x02\x03", false, Unknown},
		{"random text that is nothing", false, Unknown},
	}
	for _, c := range cases {
		if got := Sniff([]byte(c.head), c.serverSide); got != c.want {
			t.Errorf("Sniff(%q, server=%v) = %v, want %v", c.head, c.serverSide, got, c.want)
		}
	}
	// TLS from a real ClientHello.
	if got := Sniff(BuildClientHello("example.com", nil), false); got != TLS {
		t.Errorf("Sniff(ClientHello) = %v", got)
	}
	// RTMP: 0x03 + 1536-byte handshake chunk.
	rtmp := append([]byte{0x03}, make([]byte, 1536)...)
	if got := Sniff(rtmp, false); got != RTMP {
		t.Errorf("Sniff(rtmp) = %v", got)
	}
	if Protocol(250).String() != "unknown" {
		t.Error("String for unknown value")
	}
}

func TestParseClientHello(t *testing.T) {
	raw := BuildClientHello("www.example.org", []string{"h2", "http/1.1"})
	ch, ok := ParseClientHello(raw)
	if !ok {
		t.Fatal("parse failed")
	}
	if ch.SNI != "www.example.org" {
		t.Errorf("SNI = %q", ch.SNI)
	}
	if len(ch.ALPN) != 2 || ch.ALPN[0] != "h2" || ch.ALPN[1] != "http/1.1" {
		t.Errorf("ALPN = %v", ch.ALPN)
	}
	if ch.HelloVersion != 0x0303 {
		t.Errorf("version = %#x", ch.HelloVersion)
	}
	if len(ch.CipherSuites) != 2 || ch.CipherSuites[0] != 0x1301 {
		t.Errorf("suites = %v", ch.CipherSuites)
	}
}

func TestParseClientHelloNoExtensions(t *testing.T) {
	raw := BuildClientHello("", nil)
	ch, ok := ParseClientHello(raw)
	if !ok {
		t.Fatal("parse failed")
	}
	if ch.SNI != "" || ch.ALPN != nil {
		t.Errorf("unexpected extensions: %+v", ch)
	}
}

func TestParseClientHelloRejectsJunk(t *testing.T) {
	bad := [][]byte{
		nil,
		{0x16},
		[]byte("GET / HTTP/1.1"),
		{0x17, 0x03, 0x03, 0x00, 0x05, 1, 2, 3, 4, 5},  // app data record
		{0x16, 0x03, 0x01, 0x00, 0x04, 0x02, 0, 0, 0},  // ServerHello type
		{0x16, 0x03, 0x01, 0xff, 0xff, 0x01, 0, 0, 10}, // record longer than data
	}
	for _, b := range bad {
		if _, ok := ParseClientHello(b); ok {
			t.Errorf("accepted %v", b)
		}
	}
}

func TestParseClientHelloFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	valid := BuildClientHello("fuzz.example", []string{"h2"})
	for i := 0; i < len(valid); i++ {
		// Truncations.
		ParseClientHello(valid[:i])
		// Bit flips.
		for trial := 0; trial < 8; trial++ {
			mut := append([]byte(nil), valid...)
			mut[i] ^= byte(1 << r.Intn(8))
			ParseClientHello(mut) // must not panic
		}
	}
}

func TestParseDNSQuery(t *testing.T) {
	raw := BuildDNSQuery(0x1234, "mail.example.com", DNSTypeAAAA)
	q, ok := ParseDNSQuery(raw)
	if !ok {
		t.Fatal("parse failed")
	}
	if q.ID != 0x1234 || q.Response || q.Name != "mail.example.com" || q.Type != DNSTypeAAAA || q.Class != 1 {
		t.Errorf("query = %+v", q)
	}
}

func TestParseDNSResponseFlag(t *testing.T) {
	raw := BuildDNSQuery(7, "x.y", DNSTypeA)
	raw[2] |= 0x80 // QR
	raw[3] |= 3    // NXDOMAIN
	q, ok := ParseDNSQuery(raw)
	if !ok || !q.Response || q.RCode != 3 {
		t.Errorf("response = %+v, ok=%v", q, ok)
	}
}

func TestParseDNSQueryRejectsJunk(t *testing.T) {
	if _, ok := ParseDNSQuery(nil); ok {
		t.Error("nil accepted")
	}
	if _, ok := ParseDNSQuery(make([]byte, 11)); ok {
		t.Error("short header accepted")
	}
	// Compression pointer in question.
	raw := BuildDNSQuery(1, "a.b", DNSTypeA)
	raw[12] = 0xC0
	if _, ok := ParseDNSQuery(raw); ok {
		t.Error("compressed question accepted")
	}
	// Truncated label.
	raw2 := BuildDNSQuery(1, "abc.def", DNSTypeA)
	if _, ok := ParseDNSQuery(raw2[:14]); ok {
		t.Error("truncated label accepted")
	}
}

func TestParseDNSQueryFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	for i := 0; i < 2000; i++ {
		b := make([]byte, r.Intn(64))
		r.Read(b)
		ParseDNSQuery(b) // must not panic
	}
}

func TestDNSRoundTripNames(t *testing.T) {
	names := []string{"a", "a.b", "very.long.sub.domain.example.co.uk"}
	for _, n := range names {
		q, ok := ParseDNSQuery(BuildDNSQuery(1, n, DNSTypeTXT))
		if !ok || q.Name != n {
			t.Errorf("round trip of %q: %+v ok=%v", n, q, ok)
		}
	}
}

func TestSniffFirstLineHelper(t *testing.T) {
	if !bytes.Equal(firstLine([]byte("abc\ndef")), []byte("abc")) {
		t.Error("firstLine")
	}
	if !bytes.Equal(firstLine([]byte("abc")), []byte("abc")) {
		t.Error("firstLine no newline")
	}
}
