package trace

import "scap/internal/pkt"

// sessionPhase is the flow state machine position.
type sessionPhase uint8

const (
	phaseSYN sessionPhase = iota
	phaseSYNACK
	phaseData
	phaseFIN
	phaseFINACK
	phaseDone
)

// session holds the generation state of one flow.
type session struct {
	key      pkt.FlowKey
	tcp      bool
	phase    sessionPhase
	seq      uint32 // client next sequence
	srvSeq   uint32 // server next sequence
	reqLeft  int    // client payload bytes remaining
	respLeft int    // server payload bytes remaining
	ipid     uint16

	// pending holds delayed/duplicated frames (FIFO); nested reorder and
	// duplication decisions may queue more than one.
	pending [][]byte
	// embed is spliced into the first data segment.
	embed []byte
}

func (g *Generator) newSession() *session {
	total := g.paretoSize()
	req := int(float64(total) * g.cfg.RequestFraction)
	if req < 1 {
		req = 1
	}
	resp := total - req
	if resp < 1 {
		resp = 1
	}
	ss := &session{
		key: pkt.FlowKey{
			SrcIP:   g.randClientAddr(),
			DstIP:   g.randServerAddr(),
			SrcPort: uint16(1024 + g.rng.Intn(64000)),
			DstPort: g.pickPort(),
			Proto:   pkt.ProtoTCP,
		},
		tcp:      g.rng.Float64() < g.cfg.TCPFraction,
		seq:      g.rng.Uint32(),
		srvSeq:   g.rng.Uint32(),
		reqLeft:  req,
		respLeft: resp,
	}
	if !ss.tcp {
		ss.key.Proto = pkt.ProtoUDP
		ss.phase = phaseData
	}
	if len(g.cfg.EmbedPatterns) > 0 && g.rng.Float64() < g.cfg.EmbedProb {
		ss.embed = g.cfg.EmbedPatterns[g.rng.Intn(len(g.cfg.EmbedPatterns))]
	}
	return ss
}

// next emits the session's next frame, or nil when the session is done.
func (ss *session) next(g *Generator) []byte {
	if len(ss.pending) > 0 {
		f := ss.pending[0]
		ss.pending = ss.pending[1:]
		return f
	}
	ss.ipid++
	if !ss.tcp {
		return ss.nextUDP(g)
	}
	switch ss.phase {
	case phaseSYN:
		f := pkt.BuildTCP(pkt.TCPSpec{Key: ss.key, Seq: ss.seq, Flags: pkt.FlagSYN, IPID: ss.ipid})
		ss.seq++
		ss.phase = phaseSYNACK
		return f
	case phaseSYNACK:
		f := pkt.BuildTCP(pkt.TCPSpec{
			Key: ss.key.Reverse(), Seq: ss.srvSeq, Ack: ss.seq,
			Flags: pkt.FlagSYN | pkt.FlagACK, IPID: ss.ipid,
		})
		ss.srvSeq++
		ss.phase = phaseData
		return f
	case phaseData:
		return ss.nextTCPData(g)
	case phaseFIN:
		f := pkt.BuildTCP(pkt.TCPSpec{
			Key: ss.key, Seq: ss.seq, Ack: ss.srvSeq,
			Flags: pkt.FlagFIN | pkt.FlagACK, IPID: ss.ipid,
		})
		ss.seq++
		ss.phase = phaseFINACK
		return f
	case phaseFINACK:
		f := pkt.BuildTCP(pkt.TCPSpec{
			Key: ss.key.Reverse(), Seq: ss.srvSeq, Ack: ss.seq,
			Flags: pkt.FlagFIN | pkt.FlagACK, IPID: ss.ipid,
		})
		ss.srvSeq++
		ss.phase = phaseDone
		return f
	}
	return nil
}

func (ss *session) nextTCPData(g *Generator) []byte {
	if ss.reqLeft <= 0 && ss.respLeft <= 0 {
		ss.phase = phaseFIN
		return ss.next(g)
	}
	// Send the request first, then the response (a simple
	// transaction-shaped flow, like HTTP).
	var frame []byte
	if ss.reqLeft > 0 {
		n := minInt(ss.reqLeft, g.cfg.MSS)
		payload := ss.payload(g, n)
		frame = pkt.BuildTCP(pkt.TCPSpec{
			Key: ss.key, Seq: ss.seq, Ack: ss.srvSeq,
			Flags: pkt.FlagACK | pkt.FlagPSH, Payload: payload, IPID: ss.ipid,
		})
		ss.seq += uint32(n)
		ss.reqLeft -= n
	} else {
		n := minInt(ss.respLeft, g.cfg.MSS)
		payload := ss.payload(g, n)
		frame = pkt.BuildTCP(pkt.TCPSpec{
			Key: ss.key.Reverse(), Seq: ss.srvSeq, Ack: ss.seq,
			Flags: pkt.FlagACK | pkt.FlagPSH, Payload: payload, IPID: ss.ipid,
		})
		ss.srvSeq += uint32(n)
		ss.respLeft -= n
	}
	// Perturbations: duplication re-emits the same frame next turn;
	// reordering delays this frame one turn behind its successor.
	switch {
	case g.rng.Float64() < g.cfg.DuplicateProb:
		dup := make([]byte, len(frame))
		copy(dup, frame)
		ss.pending = append(ss.pending, dup)
	case g.rng.Float64() < g.cfg.ReorderProb && (ss.reqLeft > 0 || ss.respLeft > 0):
		// Generate the successor now and emit it first; this frame goes
		// to the front of the pending queue so nothing is lost when the
		// recursive call queued frames of its own.
		succ := ss.nextTCPData(g)
		ss.pending = append([][]byte{frame}, ss.pending...)
		return succ
	}
	return frame
}

func (ss *session) nextUDP(g *Generator) []byte {
	if ss.reqLeft <= 0 && ss.respLeft <= 0 {
		ss.phase = phaseDone
		return nil
	}
	var frame []byte
	if ss.reqLeft > 0 {
		n := minInt(ss.reqLeft, g.cfg.MSS)
		frame = pkt.BuildUDP(pkt.UDPSpec{Key: ss.key, Payload: ss.payload(g, n), IPID: ss.ipid})
		ss.reqLeft -= n
	} else {
		n := minInt(ss.respLeft, g.cfg.MSS)
		frame = pkt.BuildUDP(pkt.UDPSpec{Key: ss.key.Reverse(), Payload: ss.payload(g, n), IPID: ss.ipid})
		ss.respLeft -= n
	}
	return frame
}

// payload builds n bytes of content, splicing the embedded pattern into the
// flow's first data segment.
func (ss *session) payload(g *Generator, n int) []byte {
	b := make([]byte, n)
	g.fillPayload(b)
	if ss.embed != nil && n >= len(ss.embed) {
		copy(b, ss.embed)
		ss.embed = nil
		g.Embedded++
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ConcurrentStreamsWorkload builds the Figure 5 workload: streams of
// exactly pktsPerStream full-MSS segments, multiplexed so that `concurrent`
// streams are open simultaneously, repeated until `total` streams have been
// emitted. All streams are TCP with proper handshakes and FIN teardown.
func ConcurrentStreamsWorkload(seed int64, total, concurrent, pktsPerStream, mss int) *Generator {
	flowBytes := pktsPerStream * mss
	return NewGenerator(GenConfig{
		Seed:         seed,
		Flows:        total,
		Concurrency:  concurrent,
		Alpha:        100, // effectively constant at MinFlowBytes
		MinFlowBytes: flowBytes,
		MaxFlowBytes: flowBytes + 1,
		MSS:          mss,
		TCPFraction:  1.0,
	})
}
