package scap

import (
	"io"
	"net/http"
	"testing"

	"scap/internal/metrics"
)

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestServeMetricsEndpoint(t *testing.T) {
	h, err := Create(Config{Queues: 2})
	if err != nil {
		t.Fatal(err)
	}
	h.DispatchData(func(sd *Stream) {})
	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}
	srv, err := h.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if err := h.ReplaySource(smallGen(11, 60), 1e9); err != nil {
		t.Fatal(err)
	}

	body := getBody(t, "http://"+srv.Addr()+"/metrics")
	p, err := metrics.ParsePayload(body)
	if err != nil {
		t.Fatalf("parse /metrics: %v\n%s", err, body)
	}
	if p.Cores != 2 {
		t.Fatalf("cores = %d, want 2", p.Cores)
	}
	pk := p.Counter("packets_total")
	if pk == nil || pk.Total == 0 {
		t.Fatalf("packets_total missing or zero: %+v", pk)
	}
	if len(pk.PerCore) != 2 || pk.PerCore[0]+pk.PerCore[1] != pk.Total {
		t.Fatalf("per-core %v does not sum to total %d", pk.PerCore, pk.Total)
	}
	if p.Counter("nic_frames_total") == nil || p.Counter("mem_admitted_total") == nil {
		t.Fatal("NIC/mem func counters missing from payload")
	}
	if p.Gauge("memory_size_bytes") == nil {
		t.Fatal("memory_size_bytes gauge missing")
	}
	var hasChunkHist bool
	for _, hs := range p.Histograms {
		if hs.Name == "chunk_bytes" && hs.Count > 0 {
			hasChunkHist = true
		}
	}
	if !hasChunkHist {
		t.Fatal("chunk_bytes histogram missing or empty")
	}

	// The pprof and expvar endpoints are wired in.
	if b := getBody(t, "http://"+srv.Addr()+"/debug/pprof/cmdline"); len(b) == 0 {
		t.Fatal("pprof cmdline empty")
	}
	if b := getBody(t, "http://"+srv.Addr()+"/debug/vars"); len(b) == 0 {
		t.Fatal("expvar payload empty")
	}

	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	// Totals stay scrapeable after Close (the frozen-stats contract extends
	// to the server).
	p2, err := metrics.ParsePayload(getBody(t, "http://"+srv.Addr()+"/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Counter("packets_total"); got == nil || got.Total < pk.Total {
		t.Fatalf("post-Close packets_total = %+v, want >= %d", got, pk.Total)
	}
}

func TestGetStatsFrozenAfterClose(t *testing.T) {
	h, err := Create(Config{Queues: 2})
	if err != nil {
		t.Fatal(err)
	}
	h.DispatchTermination(func(sd *Stream) {})
	runSocket(t, h, smallGen(12, 40))

	st1, err := h.GetStats()
	if err != nil {
		t.Fatal(err)
	}
	if st1.Packets == 0 || st1.StreamsCreated == 0 {
		t.Fatalf("frozen stats empty: %+v", st1)
	}
	if st1.MemoryUsed != 0 {
		t.Fatalf("memory not fully released at close: %d", st1.MemoryUsed)
	}
	st2, err := h.GetStats()
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Fatalf("post-Close snapshots differ:\n%+v\n%+v", st1, st2)
	}
}
