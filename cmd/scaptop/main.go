// Command scaptop is a terminal viewer for a running Scap socket's debug
// server (Handle.Serve): it polls /metrics and renders totals, per-core
// rates, memory pressure, and the recent overload events — top(1) for the
// capture path.
//
// Usage:
//
//	scaptop -addr 127.0.0.1:6060             # watch a live capture
//	scaptop -addr 127.0.0.1:6060 -plain -n 3 # three plain snapshots
//	scaptop -addr 127.0.0.1:6060 -json       # one raw /metrics payload, then exit
//	scaptop -smoke                           # self-contained end-to-end check
//	scaptop -flight-smoke                    # end-to-end flight-recorder check
//	scaptop -ctlplane-smoke                  # end-to-end adaptive-controller check
//	scaptop -streams-smoke                   # end-to-end stream-journal check
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"scap"
	"scap/internal/ctlplane"
	"scap/internal/metrics"
	"scap/internal/streamscope"
	"scap/internal/trace"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:6060", "debug server address (Handle.Serve)")
		interval    = flag.Duration("interval", time.Second, "poll interval")
		count       = flag.Int("n", 0, "number of polls (0 = until interrupted)")
		plain       = flag.Bool("plain", false, "append snapshots instead of redrawing the screen")
		jsonOnce    = flag.Bool("json", false, "print one raw /metrics payload as JSON and exit")
		smoke       = flag.Bool("smoke", false, "run an in-process capture, scrape it once, and exit")
		flightSmoke = flag.Bool("flight-smoke", false, "run an in-process capture and verify /debug/flight")
		ctlSmoke    = flag.Bool("ctlplane-smoke", false, "run an in-process overloaded capture and verify /debug/ctlplane")
		strSmoke    = flag.Bool("streams-smoke", false, "run an in-process capture and verify /debug/streams and /debug/history")
	)
	flag.Parse()

	if *smoke {
		if err := runSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "scaptop -smoke:", err)
			os.Exit(1)
		}
		return
	}
	if *flightSmoke {
		if err := runFlightSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "scaptop -flight-smoke:", err)
			os.Exit(1)
		}
		return
	}
	if *ctlSmoke {
		if err := runCtlplaneSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "scaptop -ctlplane-smoke:", err)
			os.Exit(1)
		}
		return
	}
	if *strSmoke {
		if err := runStreamsSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "scaptop -streams-smoke:", err)
			os.Exit(1)
		}
		return
	}
	if *jsonOnce {
		body, err := fetchBody(*addr, "/metrics")
		if err != nil {
			fmt.Fprintln(os.Stderr, "scaptop:", err)
			os.Exit(1)
		}
		os.Stdout.Write(body)
		return
	}

	for i := 0; *count == 0 || i < *count; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		p, err := fetch(*addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scaptop:", err)
			os.Exit(1)
		}
		if !*plain {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		fmt.Print(render(p))
		// The controller line comes from its own endpoint; a server without
		// one (older binary) just renders nothing extra.
		if cs, err := fetchCtl(*addr); err == nil {
			fmt.Print(renderCtlplane(cs))
		}
		// Likewise the journal line and the history sparklines: endpoints
		// that are disabled or absent render nothing.
		if sd, err := fetchStreams(*addr); err == nil {
			fmt.Print(renderStreams(sd))
		}
		if hd, err := fetchHistory(*addr); err == nil {
			fmt.Print(renderHistory(hd))
		}
	}
}

// fetchCtl scrapes one /debug/ctlplane snapshot.
func fetchCtl(addr string) (*ctlplane.Snapshot, error) {
	body, err := fetchBody(addr, "/debug/ctlplane")
	if err != nil {
		return nil, err
	}
	var s ctlplane.Snapshot
	if err := json.Unmarshal(body, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// renderCtlplane formats the adaptive controller's one-line status: mode,
// live pressure, the active knob positions, and the last decision taken.
// Disabled controllers render nothing.
func renderCtlplane(s *ctlplane.Snapshot) string {
	if s == nil || !s.Enabled {
		return ""
	}
	var b strings.Builder
	cutoff := "none"
	if s.DynCutoff >= 0 {
		cutoff = fmt.Sprintf("%d", s.DynCutoff)
	}
	budget := fmt.Sprintf("%d", s.FDIRBudget)
	if s.FDIRBudget < 0 {
		budget = "unlimited"
	}
	ppl := "no"
	if s.UnderPPL {
		ppl = "yes"
	}
	fmt.Fprintf(&b, "ctlplane mode=%s mem=%.1f%% arena=%.1f%% ppl=%s clamp=%s fdir-budget=%s p99(ring→worker)=%s",
		s.Mode, 100*s.MemFraction, 100*s.ArenaFraction, ppl, cutoff, budget,
		time.Duration(s.P99RingWorkerNs).Round(time.Microsecond))
	if len(s.Watermarks) > 0 {
		b.WriteString(" wm=[")
		for i, w := range s.Watermarks {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.2f", w)
		}
		b.WriteByte(']')
	}
	if n := len(s.Decisions); n > 0 {
		d := s.Decisions[n-1]
		fmt.Fprintf(&b, "  last=%s(%d)@%s", d.Action, d.Value,
			time.Unix(0, d.TimeUnixNano).Format("15:04:05.000"))
	}
	b.WriteByte('\n')
	return b.String()
}

// fetchStreams scrapes one /debug/streams dump. A disabled scope serves
// {"enabled": false}, which decodes to a zero Dump (Cores 0) — callers treat
// that as nothing to render.
func fetchStreams(addr string) (*streamscope.Dump, error) {
	body, err := fetchBody(addr, "/debug/streams")
	if err != nil {
		return nil, err
	}
	var d streamscope.Dump
	if err := json.Unmarshal(body, &d); err != nil {
		return nil, err
	}
	return &d, nil
}

// fetchHistory scrapes one /debug/history dump (same disabled convention).
func fetchHistory(addr string) (*metrics.HistoryDump, error) {
	body, err := fetchBody(addr, "/debug/history")
	if err != nil {
		return nil, err
	}
	var d metrics.HistoryDump
	if err := json.Unmarshal(body, &d); err != nil {
		return nil, err
	}
	return &d, nil
}

// renderStreams formats the stream-journal status line: pool population,
// sampling stride, and the top offender — the anomalous journal with the
// most recorded events.
func renderStreams(d *streamscope.Dump) string {
	if d == nil || d.Cores == 0 {
		return ""
	}
	var top *streamscope.JournalSnap
	for i := range d.Journals {
		js := &d.Journals[i]
		if js.AnomalyMask == 0 {
			continue
		}
		if top == nil || js.TotalEvents > top.TotalEvents {
			top = js
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "streams  journals=%d sampled=%d anomalies=%d stride=1/%d",
		len(d.Journals), d.Sampled, d.Anomalies, d.SampleEvery)
	if top != nil {
		fmt.Fprintf(&b, "  top=%s [%s] events=%d", top.Key, strings.Join(top.Anomalies, ","), top.TotalEvents)
	}
	b.WriteByte('\n')
	return b.String()
}

// sparkRunes is the eight-level bar alphabet sparklines draw with.
var sparkRunes = []rune("\u2581\u2582\u2583\u2584\u2585\u2586\u2587\u2588")

// sparkline draws the last sparkWidth values scaled against their max.
const sparkWidth = 60

func sparkline(vals []float64) string {
	if len(vals) > sparkWidth {
		vals = vals[len(vals)-sparkWidth:]
	}
	maxV := 0.0
	for _, v := range vals {
		if v > maxV {
			maxV = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if maxV > 0 {
			i = int(v/maxV*float64(len(sparkRunes)-1) + 0.5)
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// renderHistory formats the sparkline block from the history ring: the
// frame-inject rate and the arena occupancy over the retained window.
func renderHistory(hd *metrics.HistoryDump) string {
	if hd == nil || len(hd.Points) == 0 {
		return ""
	}
	var inject, occ []float64
	for _, pt := range hd.Points {
		for _, c := range pt.Counters {
			if c.Name == "nic_frames_total" {
				inject = append(inject, c.Rate)
			}
		}
		var used, total float64
		for _, g := range pt.Gauges {
			switch g.Name {
			case "arena_blocks_inuse":
				used = float64(g.Value)
			case "arena_blocks_total":
				total = float64(g.Value)
			}
		}
		if total > 0 {
			occ = append(occ, used/total)
		} else {
			occ = append(occ, 0)
		}
	}
	var b strings.Builder
	if len(inject) > 0 {
		fmt.Fprintf(&b, "history  inject/s %s now=%.0f/s\n", sparkline(inject), inject[len(inject)-1])
	}
	if len(occ) > 0 {
		fmt.Fprintf(&b, "         arena%%   %s now=%.1f%%\n", sparkline(occ), 100*occ[len(occ)-1])
	}
	return b.String()
}

// fetchBody reads one debug-server endpoint's raw response body.
func fetchBody(addr, path string) ([]byte, error) {
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return body, nil
}

// fetch scrapes one /metrics payload.
func fetch(addr string) (*metrics.Payload, error) {
	body, err := fetchBody(addr, "/metrics")
	if err != nil {
		return nil, err
	}
	return metrics.ParsePayload(body)
}

// perCoreRows is the counter set shown per core, in display order.
var perCoreRows = []struct{ name, label string }{
	{"frames_total", "frames/s"},
	{"packets_total", "pkts/s"},
	{"stored_bytes_total", "stored B/s"},
	{"ppl_dropped_pkts_total", "ppl-drop/s"},
	{"cutoff_pkts_total", "cutoff/s"},
	{"events_lost_total", "ev-lost/s"},
}

// render formats one payload as the full-screen view.
func render(p *metrics.Payload) string {
	var b strings.Builder
	ts := time.Unix(0, p.TimeUnixNano).Format("15:04:05")
	fmt.Fprintf(&b, "scaptop  %s  window %.1fs  cores %d\n\n", ts, p.WindowSeconds, p.Cores)

	total := func(name string) uint64 {
		if c := p.Counter(name); c != nil {
			return c.Total
		}
		return 0
	}
	rate := func(name string) float64 {
		if c := p.Counter(name); c != nil {
			return c.Rate
		}
		return 0
	}
	fmt.Fprintf(&b, "frames   %12d  %10.0f/s    nic-ring-drop %10d  %8.0f/s\n",
		total("nic_frames_total"), rate("nic_frames_total"),
		total("nic_dropped_ring_total"), rate("nic_dropped_ring_total"))
	fmt.Fprintf(&b, "packets  %12d  %10.0f/s    nic-fdir-drop %10d  %8.0f/s\n",
		total("packets_total"), rate("packets_total"),
		total("nic_dropped_filter_total"), rate("nic_dropped_filter_total"))
	fmt.Fprintf(&b, "stored B %12d  %10.0f/s    ppl-drop      %10d  %8.0f/s\n",
		total("stored_bytes_total"), rate("stored_bytes_total"),
		total("ppl_dropped_pkts_total"), rate("ppl_dropped_pkts_total"))
	fmt.Fprintf(&b, "streams  %12d created       cutoff-pkts   %10d  %8.0f/s\n",
		total("streams_created_total"),
		total("cutoff_pkts_total"), rate("cutoff_pkts_total"))

	used, size := gaugeVal(p, "memory_used_bytes"), gaugeVal(p, "memory_size_bytes")
	pct := 0.0
	if size > 0 {
		pct = 100 * float64(used) / float64(size)
	}
	fmt.Fprintf(&b, "memory   %12d / %d bytes (%.1f%%), highwater %d\n",
		used, size, pct, gaugeVal(p, "memory_highwater_bytes"))
	fmt.Fprintf(&b, "arena    %12d / %d blocks in use (%d B/block, %d segs committed), free: global %d",
		gaugeVal(p, "arena_blocks_inuse"), gaugeVal(p, "arena_blocks_total"),
		gaugeVal(p, "arena_block_size_bytes"), gaugeVal(p, "arena_segments_committed"),
		gaugeVal(p, "arena_freelist_global"))
	for core := 0; core < p.Cores; core++ {
		fmt.Fprintf(&b, " c%d=%d", core, gaugeVal(p, fmt.Sprintf("arena_freelist_core%d", core)))
	}
	b.WriteString("\n")

	// Flow-table health: average slot groups touched per lookup (the
	// cache-line cost of a probe) and per-core occupancy/capacity.
	if lk := total("flowtab_lookups_total"); lk > 0 {
		perLookup := float64(total("flowtab_probe_groups_total")) / float64(lk)
		fmt.Fprintf(&b, "flowtab  %12d lookups (%.2f groups/lookup), swept %d groups, %d rehashes, occ:",
			lk, perLookup, total("flowtab_swept_groups_total"), total("flowtab_grows_total"))
		for core := 0; core < p.Cores; core++ {
			fmt.Fprintf(&b, " c%d=%d/%d", core,
				gaugeVal(p, fmt.Sprintf("flowtab_occupancy_core%d", core)),
				gaugeVal(p, fmt.Sprintf("flowtab_capacity_core%d", core)))
		}
		b.WriteString("\n")
	}
	// Sketch front-end: record-suppression volume and heavy-hitter counts.
	if obs := total("sketch_observed_pkts_total"); obs > 0 {
		fmt.Fprintf(&b, "sketch   %12d pkts observed, %d suppressed  %8.0f/s, heavies:",
			obs, total("sketch_suppressed_pkts_total"), rate("sketch_suppressed_pkts_total"))
		for core := 0; core < p.Cores; core++ {
			fmt.Fprintf(&b, " c%d=%d", core, gaugeVal(p, fmt.Sprintf("sketch_heavies_core%d", core)))
		}
		b.WriteString("\n")
	}
	b.WriteString(renderLatency(p))
	b.WriteString("\n")

	// Per-core rate table: one column per counter, one row per core.
	fmt.Fprintf(&b, "core")
	for _, r := range perCoreRows {
		fmt.Fprintf(&b, "  %12s", r.label)
	}
	b.WriteByte('\n')
	for core := 0; core < p.Cores; core++ {
		fmt.Fprintf(&b, "%4d", core)
		for _, r := range perCoreRows {
			v := 0.0
			if c := p.Counter(r.name); c != nil && core < len(c.PerCoreRate) {
				v = c.PerCoreRate[core]
			}
			fmt.Fprintf(&b, "  %12.0f", v)
		}
		b.WriteByte('\n')
	}

	b.WriteString(renderDrops(p))

	if len(p.Events) > 0 {
		fmt.Fprintf(&b, "\nrecent overload events (%d):\n", len(p.Events))
		evs := p.Events
		if len(evs) > 10 {
			evs = evs[len(evs)-10:]
		}
		// Newest last is natural for a log; keep payload (oldest-first)
		// order but make it explicit for readers of this code.
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].TimeUnixNano < evs[j].TimeUnixNano })
		for _, e := range evs {
			fmt.Fprintf(&b, "  %s  %-20s core=%d", time.Unix(0, e.TimeUnixNano).Format("15:04:05.000"), e.KindName, e.Core)
			if e.Value != 0 {
				fmt.Fprintf(&b, " value=%d", e.Value)
			}
			if e.Dur != 0 {
				fmt.Fprintf(&b, " dur=%s", time.Duration(e.Dur))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// latencyStages is the pipeline latency line's histogram set, in pipeline
// order (names registered by StartCapture / Create).
var latencyStages = []struct{ name, label string }{
	{"stage_ingest_engine_ns", "ingest→engine"},
	{"stage_engine_ring_ns", "engine→ring"},
	{"stage_ring_worker_ns", "ring→worker"},
	{"callback_ns", "callback"},
}

// renderLatency formats the per-stage p50/p99 latency line from the stage
// histograms; stages with no observations are skipped.
func renderLatency(p *metrics.Payload) string {
	var b strings.Builder
	for _, st := range latencyStages {
		h := p.Histogram(st.name)
		if h == nil || h.Count == 0 {
			continue
		}
		if b.Len() == 0 {
			b.WriteString("latency ")
		}
		p50 := time.Duration(metrics.QuantileFromSnap(*h, 0.50))
		p99 := time.Duration(metrics.QuantileFromSnap(*h, 0.99))
		fmt.Fprintf(&b, " %s p50=%s p99=%s", st.label, p50.Round(time.Microsecond), p99.Round(time.Microsecond))
	}
	if b.Len() > 0 {
		b.WriteByte('\n')
	}
	return b.String()
}

// renderDrops formats the drop-attribution table: one row per cause, with
// totals and windowed rates, plus per-core totals where available.
func renderDrops(p *metrics.Payload) string {
	if len(p.Drops) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("\ndrops by cause:\n")
	fmt.Fprintf(&b, "  %-16s %12s %10s  %s\n", "cause", "total", "rate/s", "per-core")
	for i := range p.Drops {
		d := &p.Drops[i]
		cause := d.Cause
		if cause == "" {
			cause = d.Name
		}
		fmt.Fprintf(&b, "  %-16s %12d %10.0f  %v\n", cause, d.Total, d.Rate, d.PerCore)
	}
	return b.String()
}

func gaugeVal(p *metrics.Payload, name string) int64 {
	if g := p.Gauge(name); g != nil {
		return g.Value
	}
	return 0
}

// runSmoke is the CI end-to-end check (make serve-smoke): replay a small
// synthetic trace through a real socket with Serve enabled, scrape /metrics
// over HTTP, and require nonzero packets_total.
func runSmoke() error {
	h, err := scap.Create(scap.Config{Queues: 2, MemorySize: 64 << 20})
	if err != nil {
		return err
	}
	h.DispatchData(func(sd *scap.Stream) {})
	if err := h.StartCapture(); err != nil {
		return err
	}
	srv, err := h.Serve("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	gen := trace.ConcurrentStreamsWorkload(1, 200, 16, 40, 1460)
	if err := h.ReplaySource(gen, 1e9); err != nil {
		return err
	}
	p, err := fetch(srv.Addr())
	if err != nil {
		return err
	}
	pk := p.Counter("packets_total")
	if pk == nil || pk.Total == 0 {
		return fmt.Errorf("packets_total missing or zero in /metrics payload")
	}
	if len(pk.PerCore) != 2 {
		return fmt.Errorf("packets_total per-core = %v, want 2 cores", pk.PerCore)
	}
	if err := h.Close(); err != nil {
		return err
	}
	fmt.Printf("serve-smoke OK: packets_total=%d per-core=%v frames=%d\n",
		pk.Total, pk.PerCore, p.Counter("nic_frames_total").Total)
	fmt.Print(render(p))
	return nil
}

// runFlightSmoke is the CI flight-recorder end-to-end check (make
// flight-smoke): replay a short trace with a low cutoff so the engines emit
// flight records, then require /debug/flight to return at least one record
// and a valid Chrome trace-event export.
func runFlightSmoke() error {
	h, err := scap.Create(scap.Config{Queues: 2, MemorySize: 64 << 20})
	if err != nil {
		return err
	}
	// Most generated flows exceed this, so cutoff records are guaranteed.
	if err := h.SetCutoff(512); err != nil {
		return err
	}
	h.DispatchData(func(sd *scap.Stream) {})
	if err := h.StartCapture(); err != nil {
		return err
	}
	srv, err := h.Serve("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	gen := trace.ConcurrentStreamsWorkload(2, 200, 16, 40, 1460)
	if err := h.ReplaySource(gen, 1e9); err != nil {
		return err
	}

	body, err := fetchBody(srv.Addr(), "/debug/flight")
	if err != nil {
		return err
	}
	var dump metrics.FlightDump
	if err := json.Unmarshal(body, &dump); err != nil {
		return fmt.Errorf("parse /debug/flight: %v", err)
	}
	if len(dump.Records) == 0 || dump.Total == 0 {
		return fmt.Errorf("no flight records after cutoff-heavy replay: total=%d", dump.Total)
	}

	body, err = fetchBody(srv.Addr(), "/debug/flight?format=chrome")
	if err != nil {
		return err
	}
	var tr metrics.ChromeTrace
	if err := json.Unmarshal(body, &tr); err != nil {
		return fmt.Errorf("parse chrome trace: %v", err)
	}
	if tr.DisplayTimeUnit != "ms" || len(tr.TraceEvents) != len(dump.Records) {
		return fmt.Errorf("chrome trace shape: unit=%q events=%d records=%d",
			tr.DisplayTimeUnit, len(tr.TraceEvents), len(dump.Records))
	}
	for _, ev := range tr.TraceEvents {
		if ev.Name == "" || ev.Cat != "flight" || (ev.Ph != "i" && ev.Ph != "X") || ev.TS < 0 {
			return fmt.Errorf("malformed trace event: %+v", ev)
		}
	}
	if err := h.Close(); err != nil {
		return err
	}
	fmt.Printf("flight-smoke OK: records=%d (total %d), chrome events=%d\n",
		len(dump.Records), dump.Total, len(tr.TraceEvents))
	return nil
}

// runCtlplaneSmoke is the CI control-plane end-to-end check (make
// ctlplane-smoke): run a capture with a deliberately tiny memory budget, a
// fast controller, and slow application callbacks so memory pressure builds
// for real, then require /debug/ctlplane to show the controller reacted (a
// recorded decision and a control-plane flight record).
func runCtlplaneSmoke() error {
	h, err := scap.Create(scap.Config{
		Queues:     2,
		MemorySize: 2 << 20, // tiny: ~2 MiB so the replay overloads it
		Sketch:     scap.SketchConfig{Enabled: true},
		Control: scap.ControlConfig{
			Enabled:       true,
			Interval:      2 * time.Millisecond,
			EnterFraction: 0.5,
			ExitFraction:  0.3,
			Cooldown:      10 * time.Millisecond,
			HoldTicks:     2,
			CutoffStart:   64 << 10,
			CutoffFloor:   16 << 10,
		},
	})
	if err != nil {
		return err
	}
	// Slow consumers: each data callback holds its chunk (and arena block)
	// for a while, so in-flight memory accumulates ahead of the replay.
	h.DispatchData(func(sd *scap.Stream) { time.Sleep(200 * time.Microsecond) })
	if err := h.StartCapture(); err != nil {
		return err
	}
	srv, err := h.Serve("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	gen := trace.ConcurrentStreamsWorkload(3, 400, 64, 60, 1460)
	if err := h.ReplaySource(gen, 1e9); err != nil {
		return err
	}

	// The controller runs on the wall clock; give it a few intervals to
	// observe the tail of the episode before scraping.
	var cs *ctlplane.Snapshot
	deadline := time.Now().Add(2 * time.Second)
	for {
		cs, err = fetchCtl(srv.Addr())
		if err != nil {
			return err
		}
		if len(cs.Decisions) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !cs.Enabled {
		return fmt.Errorf("/debug/ctlplane reports controller disabled")
	}
	if cs.Ticks == 0 {
		return fmt.Errorf("controller never ticked")
	}
	if len(cs.Decisions) == 0 {
		return fmt.Errorf("no control decisions after overload replay (mode=%s mem=%.2f arena=%.2f)",
			cs.Mode, cs.MemFraction, cs.ArenaFraction)
	}
	var tightened bool
	for _, d := range cs.Decisions {
		if d.Action == "tighten" {
			tightened = true
		}
	}
	if !tightened {
		return fmt.Errorf("controller decided %d times but never tightened: %+v", len(cs.Decisions), cs.Decisions)
	}

	// The same decisions must be visible in the flight recorder.
	body, err := fetchBody(srv.Addr(), "/debug/flight")
	if err != nil {
		return err
	}
	var dump metrics.FlightDump
	if err := json.Unmarshal(body, &dump); err != nil {
		return fmt.Errorf("parse /debug/flight: %v", err)
	}
	var ctlRecords int
	for _, r := range dump.Records {
		if strings.HasPrefix(r.KindName, "ctl_") {
			ctlRecords++
		}
	}
	if ctlRecords == 0 {
		return fmt.Errorf("no ctl_* flight records among %d records", len(dump.Records))
	}
	fmt.Print(renderCtlplane(cs))
	if err := h.Close(); err != nil {
		return err
	}
	fmt.Printf("ctlplane-smoke OK: decisions=%d ctl flight records=%d mode=%s\n",
		len(cs.Decisions), ctlRecords, cs.Mode)
	return nil
}

// runStreamsSmoke is the CI stream-journal end-to-end check (make
// streams-smoke): run a cutoff-heavy capture with the sampler effectively
// off (a huge stride), so every journal that appears must have been promoted
// by an anomaly, then require /debug/streams to carry a cutoff-promoted
// journal, the chrome export to carry one named track per journal, and
// /debug/history to accumulate points for the sparklines. When
// SCAP_STREAMS_TRACE_OUT names a file, the Perfetto-loadable chrome export
// is written there (the CI artifact).
func runStreamsSmoke() error {
	h, err := scap.Create(scap.Config{
		Queues:     2,
		MemorySize: 64 << 20,
		Streams:    scap.StreamsConfig{SampleEvery: 1 << 20},
		History:    scap.HistoryConfig{Interval: 20 * time.Millisecond},
	})
	if err != nil {
		return err
	}
	// Most generated flows exceed this, so cutoff promotions are guaranteed.
	if err := h.SetCutoff(512); err != nil {
		return err
	}
	h.DispatchData(func(sd *scap.Stream) {})
	if err := h.StartCapture(); err != nil {
		return err
	}
	srv, err := h.Serve("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	gen := trace.ConcurrentStreamsWorkload(4, 200, 16, 40, 1460)
	if err := h.ReplaySource(gen, 1e9); err != nil {
		return err
	}

	sd, err := fetchStreams(srv.Addr())
	if err != nil {
		return err
	}
	if len(sd.Journals) == 0 || sd.Anomalies == 0 {
		return fmt.Errorf("no anomaly-promoted journals after cutoff-heavy replay: %d journals, %d anomalies",
			len(sd.Journals), sd.Anomalies)
	}
	var cutoffJournals int
	for i := range sd.Journals {
		js := &sd.Journals[i]
		if js.Sampled {
			return fmt.Errorf("journal %s claims sampler origin under a 1-in-%d stride", js.Key, 1<<20)
		}
		for _, a := range js.Anomalies {
			if a == "cutoff" {
				cutoffJournals++
				break
			}
		}
	}
	if cutoffJournals == 0 {
		return fmt.Errorf("no cutoff-promoted journal among %d journals", len(sd.Journals))
	}

	body, err := fetchBody(srv.Addr(), "/debug/streams?format=chrome")
	if err != nil {
		return err
	}
	var tr streamscope.Trace
	if err := json.Unmarshal(body, &tr); err != nil {
		return fmt.Errorf("parse chrome streams trace: %v", err)
	}
	var tracks, events int
	for _, ev := range tr.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name":
			tracks++
			if name, _ := ev.Args["name"].(string); !strings.HasPrefix(name, "stream ") {
				return fmt.Errorf("track name %q lacks stream prefix", name)
			}
		case ev.Ph == "i" || ev.Ph == "X":
			events++
			if ev.TS < 0 {
				return fmt.Errorf("negative trace timestamp: %+v", ev)
			}
		}
	}
	if tracks != len(sd.Journals) || events == 0 {
		return fmt.Errorf("chrome export shape: %d named tracks (want %d), %d events",
			tracks, len(sd.Journals), events)
	}
	if out := os.Getenv("SCAP_STREAMS_TRACE_OUT"); out != "" {
		if err := os.WriteFile(out, body, 0o644); err != nil {
			return fmt.Errorf("write trace artifact: %v", err)
		}
		fmt.Printf("streams-smoke: wrote chrome trace artifact to %s (%d bytes)\n", out, len(body))
	}

	// The history ring samples on the wall clock; give it a couple of
	// intervals so the sparklines have something to draw.
	var hd *metrics.HistoryDump
	deadline := time.Now().Add(2 * time.Second)
	for {
		hd, err = fetchHistory(srv.Addr())
		if err != nil {
			return err
		}
		if len(hd.Points) >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(hd.Points) < 2 {
		return fmt.Errorf("history ring never accumulated points")
	}

	fmt.Print(renderStreams(sd))
	fmt.Print(renderHistory(hd))
	if err := h.Close(); err != nil {
		return err
	}
	fmt.Printf("streams-smoke OK: journals=%d (cutoff-promoted %d), chrome tracks=%d events=%d, history points=%d\n",
		len(sd.Journals), cutoffJournals, tracks, events, len(hd.Points))
	return nil
}
