//go:build linux && live

package nic

import (
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"

	"scap/internal/metrics"
	"scap/internal/pkt"
)

func init() { afpacketOpen = newAFPacketLinux }

// AF_PACKET / TPACKET_V3 constants the syscall package does not export.
const (
	optPacketVersion = 10 // PACKET_VERSION
	optPacketFanout  = 18 // PACKET_FANOUT
	tpacketV3        = 2  // TPACKET_V3
	fanoutHash       = 0  // PACKET_FANOUT_HASH
	tpStatusKernel   = 0  // block owned by the kernel
	tpStatusUser     = 1  // block handed to user space
	ethPAll          = 0x0003
	// retireBlockTovMs bounds block latency: the kernel retires a
	// partially filled block after this many milliseconds so light
	// traffic still surfaces promptly.
	retireBlockTovMs = 60
	// livePollTimeoutMs is the epoll timeout; it bounds how long Close
	// waits for a parked poll goroutine to notice closeCh.
	livePollTimeoutMs = 100
	// liveBatchSize caps frames per delivery batch.
	liveBatchSize = 64
	// liveFrameSize is the TPACKET_V3 advisory frame slot size.
	liveFrameSize = 2048
	// liveArenaBlock is the copy-out arena granularity.
	liveArenaBlock = 256 << 10
)

// tpacketReq3 is struct tpacket_req3 (linux/if_packet.h).
type tpacketReq3 struct {
	blockSize      uint32
	blockNr        uint32
	frameSize      uint32
	frameNr        uint32
	retireBlkTov   uint32
	sizeofPriv     uint32
	featureReqWord uint32
}

// tpacketStatsV3 is struct tpacket_stats_v3: PACKET_STATISTICS resets the
// counters on every read.
type tpacketStatsV3 struct {
	packets    uint32
	drops      uint32
	freezeQCnt uint32
}

// Byte offsets into the mmap'd TPACKET_V3 structures (linux/if_packet.h,
// all little-endian on the targets we build for).
const (
	blkStatusOff   = 8  // tpacket_block_desc.hdr.bh1.block_status
	blkNumPktsOff  = 12 // ...num_pkts
	blkFirstPktOff = 16 // ...offset_to_first_pkt
	pktNextOff     = 0  // tpacket3_hdr.tp_next_offset
	pktSecOff      = 4  // tp_sec
	pktNsecOff     = 8  // tp_nsec
	pktSnaplenOff  = 12 // tp_snaplen
	pktMacOff      = 24 // tp_mac (uint16)
)

// afQueue is one fanout socket with its mmap'd block ring. Owned
// exclusively by its poll goroutine after Open.
type afQueue struct {
	fd        int
	epfd      int
	ring      []byte
	blockSize int
	blocks    int
	nextBlock int
	// arena amortizes copy-out allocation, PcapReader-style: frames are
	// carved from blocks that are never recycled, so ownership of each
	// slice transfers to the pipeline (reassembly holds segment
	// references long after the kernel reclaims the ring block, which is
	// why frames are copied out rather than aliased).
	arena []byte
}

// afpacket is the live Linux capture backend: one AF_PACKET socket per
// queue joined into a PACKET_FANOUT_HASH group (the kernel's flow-hash
// spread standing in for hardware RSS), each with a TPACKET_V3 ring.
// Filters run in the software shim on the copy-out path; ring losses are
// harvested from the kernel's tp_drops counter.
//
//scap:shared
type afpacket struct {
	cfg   AFPacketConfig
	steer *swSteer
	qs    []*afQueue
	ch    []chan []Frame
	done  chan struct{}
	// closeCh stops the poll goroutines.
	closeCh chan struct{}
	wg      sync.WaitGroup
	// ringDrops is per-queue kernel tp_drops, updated atomically by each
	// queue's poll goroutine and read by metrics.
	ringDrops []uint64

	mu sync.Mutex
	// opened and closed are guarded by mu.
	opened bool
	closed bool
}

func newAFPacketLinux(cfg AFPacketConfig) (Backend, error) {
	if cfg.Queues <= 0 {
		cfg.Queues = 1
	}
	if cfg.BlockBytes <= 0 {
		cfg.BlockBytes = 1 << 20
	}
	if cfg.Blocks <= 0 {
		cfg.Blocks = 64
	}
	if cfg.Snaplen <= 0 {
		cfg.Snaplen = 1 << 16
	}
	pageSize := syscall.Getpagesize()
	if cfg.BlockBytes%pageSize != 0 || cfg.BlockBytes%liveFrameSize != 0 {
		return nil, fmt.Errorf("nic: afpacket BlockBytes %d must be a multiple of the page size (%d) and %d", cfg.BlockBytes, pageSize, liveFrameSize)
	}
	a := &afpacket{
		cfg:       cfg,
		steer:     newSwSteer(cfg.Queues),
		qs:        make([]*afQueue, cfg.Queues),
		ch:        make([]chan []Frame, cfg.Queues),
		done:      make(chan struct{}),
		closeCh:   make(chan struct{}),
		ringDrops: make([]uint64, cfg.Queues),
	}
	for i := range a.ch {
		a.ch[i] = make(chan []Frame, backendBatchCap)
	}
	return a, nil
}

func htons(v uint16) uint16 { return v<<8 | v>>8 }

// Open creates the fanout sockets, maps the rings, and starts one poll
// goroutine per queue. Requires CAP_NET_RAW.
func (a *afpacket) Open() error {
	a.mu.Lock()
	if a.opened || a.closed {
		a.mu.Unlock()
		return fmt.Errorf("nic: afpacket backend already opened or closed")
	}
	a.opened = true
	a.mu.Unlock()
	ifi, err := net.InterfaceByName(a.cfg.Iface)
	if err != nil {
		a.rollbackOpen()
		return fmt.Errorf("nic: afpacket: %w", err)
	}
	fanoutID := int(a.cfg.FanoutID)
	if fanoutID == 0 {
		fanoutID = os.Getpid() & 0xffff
	}
	for i := range a.qs {
		q, err := a.openQueue(ifi.Index, fanoutID)
		if err != nil {
			for _, prev := range a.qs[:i] {
				prev.teardown()
			}
			a.rollbackOpen()
			return fmt.Errorf("nic: afpacket queue %d: %w", i, err)
		}
		a.qs[i] = q
	}
	a.wg.Add(len(a.qs))
	for i := range a.qs {
		go a.poll(i)
	}
	return nil
}

// rollbackOpen clears the opened flag after a failed Open so Close does
// not wait on goroutines that never started and still closes the
// delivery channels.
func (a *afpacket) rollbackOpen() {
	a.mu.Lock()
	a.opened = false
	a.mu.Unlock()
}

func (a *afpacket) openQueue(ifindex, fanoutID int) (*afQueue, error) {
	fd, err := syscall.Socket(syscall.AF_PACKET, syscall.SOCK_RAW, int(htons(ethPAll)))
	if err != nil {
		return nil, fmt.Errorf("socket: %w", err)
	}
	q := &afQueue{fd: fd, epfd: -1, blockSize: a.cfg.BlockBytes, blocks: a.cfg.Blocks}
	if err := syscall.SetsockoptInt(fd, syscall.SOL_PACKET, optPacketVersion, tpacketV3); err != nil {
		q.teardown()
		return nil, fmt.Errorf("PACKET_VERSION: %w", err)
	}
	req := tpacketReq3{
		blockSize:    uint32(a.cfg.BlockBytes),
		blockNr:      uint32(a.cfg.Blocks),
		frameSize:    liveFrameSize,
		frameNr:      uint32(a.cfg.BlockBytes / liveFrameSize * a.cfg.Blocks),
		retireBlkTov: retireBlockTovMs,
	}
	if _, _, errno := syscall.Syscall6(syscall.SYS_SETSOCKOPT, uintptr(fd), syscall.SOL_PACKET, syscall.PACKET_RX_RING,
		uintptr(unsafe.Pointer(&req)), unsafe.Sizeof(req), 0); errno != 0 {
		q.teardown()
		return nil, fmt.Errorf("PACKET_RX_RING: %w", errno)
	}
	ring, err := syscall.Mmap(fd, 0, a.cfg.BlockBytes*a.cfg.Blocks,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		q.teardown()
		return nil, fmt.Errorf("mmap: %w", err)
	}
	q.ring = ring
	if err := syscall.Bind(fd, &syscall.SockaddrLinklayer{Protocol: htons(ethPAll), Ifindex: ifindex}); err != nil {
		q.teardown()
		return nil, fmt.Errorf("bind: %w", err)
	}
	if err := syscall.SetsockoptInt(fd, syscall.SOL_PACKET, optPacketFanout, fanoutID|fanoutHash<<16); err != nil {
		q.teardown()
		return nil, fmt.Errorf("PACKET_FANOUT: %w", err)
	}
	epfd, err := syscall.EpollCreate1(0)
	if err != nil {
		q.teardown()
		return nil, fmt.Errorf("epoll_create1: %w", err)
	}
	q.epfd = epfd
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: int32(fd)}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, fd, &ev); err != nil {
		q.teardown()
		return nil, fmt.Errorf("epoll_ctl: %w", err)
	}
	return q, nil
}

func (q *afQueue) teardown() {
	if q.ring != nil {
		syscall.Munmap(q.ring)
		q.ring = nil
	}
	if q.epfd >= 0 {
		syscall.Close(q.epfd)
		q.epfd = -1
	}
	if q.fd >= 0 {
		syscall.Close(q.fd)
		q.fd = -1
	}
}

// carve returns an owned n-byte slice from the queue's copy-out arena.
func (q *afQueue) carve(n int) []byte {
	if n > len(q.arena) {
		sz := liveArenaBlock
		if n > sz {
			sz = n
		}
		q.arena = make([]byte, sz)
	}
	b := q.arena[:n:n]
	q.arena = q.arena[n:]
	return b
}

func (a *afpacket) isClosed() bool {
	select {
	case <-a.closeCh:
		return true
	default:
		return false
	}
}

// poll is queue qi's capture loop: wait on epoll, walk every block the
// kernel handed to user space, copy surviving frames into the arena, and
// deliver them in batches. The goroutine is the sole reader of its
// queue's ring and the sole writer of its delivery channel.
//
//scap:goroutine livepoll one per fanout socket
//scap:owner livepoll afQueue after Open: ring blocks, copy-out arena, nextBlock cursor
func (a *afpacket) poll(qi int) {
	defer a.wg.Done()
	defer close(a.ch[qi])
	q := a.qs[qi]
	events := make([]syscall.EpollEvent, 1)
	for {
		if a.isClosed() {
			return
		}
		if a.drainBlocks(qi) {
			continue
		}
		if _, err := syscall.EpollWait(q.epfd, events, livePollTimeoutMs); err != nil && err != syscall.EINTR {
			return
		}
		a.harvestKernelDrops(qi)
	}
}

// drainBlocks consumes every ready ring block in order, delivering the
// frames that survive the software filters; it reports whether any block
// was consumed.
func (a *afpacket) drainBlocks(qi int) bool {
	q := a.qs[qi]
	drained := false
	for {
		base := q.nextBlock * q.blockSize
		statusPtr := (*uint32)(unsafe.Pointer(&q.ring[base+blkStatusOff]))
		if atomic.LoadUint32(statusPtr)&tpStatusUser == 0 {
			return drained
		}
		drained = true
		numPkts := int(le32(q.ring[base+blkNumPktsOff:]))
		off := base + int(le32(q.ring[base+blkFirstPktOff:]))
		ingest := metrics.Nanotime()
		batch := make([]Frame, 0, liveBatchSize)
		for i := 0; i < numPkts; i++ {
			next := int(le32(q.ring[off+pktNextOff:]))
			sec := int64(le32(q.ring[off+pktSecOff:]))
			nsec := int64(le32(q.ring[off+pktNsecOff:]))
			snap := int(le32(q.ring[off+pktSnaplenOff:]))
			mac := int(le16(q.ring[off+pktMacOff:]))
			data := q.ring[off+mac : off+mac+snap]
			if _, ok := a.steer.route(data); ok {
				cp := q.carve(len(data))
				copy(cp, data)
				batch = append(batch, Frame{Data: cp, TS: sec*1e9 + nsec, Ingest: ingest})
				if len(batch) == liveBatchSize {
					if !a.deliver(qi, batch) {
						return drained
					}
					ingest = metrics.Nanotime()
					batch = make([]Frame, 0, liveBatchSize)
				}
			}
			if next == 0 {
				break
			}
			off += next
		}
		// Release the block back to the kernel before delivering the tail
		// batch: the frames were copied out, so the kernel can refill.
		atomic.StoreUint32(statusPtr, tpStatusKernel)
		q.nextBlock = (q.nextBlock + 1) % q.blocks
		if len(batch) > 0 && !a.deliver(qi, batch) {
			return drained
		}
	}
}

// deliver sends one batch, abandoning it if the backend closes first.
func (a *afpacket) deliver(qi int, batch []Frame) bool {
	select {
	case a.ch[qi] <- batch:
		return true
	case <-a.closeCh:
		return false
	}
}

// harvestKernelDrops folds the kernel's tp_drops (frames lost because a
// ring block was full) into the backend counters. PACKET_STATISTICS
// resets on read, so the value is a delta.
func (a *afpacket) harvestKernelDrops(qi int) {
	q := a.qs[qi]
	var st tpacketStatsV3
	l := uint32(unsafe.Sizeof(st))
	if _, _, errno := syscall.Syscall6(syscall.SYS_GETSOCKOPT, uintptr(q.fd), syscall.SOL_PACKET, syscall.PACKET_STATISTICS,
		uintptr(unsafe.Pointer(&st)), uintptr(unsafe.Pointer(&l)), 0); errno != 0 {
		return
	}
	if st.drops > 0 {
		atomic.AddUint64(&a.ringDrops[qi], uint64(st.drops))
		a.steer.addRing(uint64(st.drops))
	}
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }

func (a *afpacket) Queues() int                  { return len(a.ch) }
func (a *afpacket) Batches(q int) <-chan []Frame { return a.ch[q] }
func (a *afpacket) Done() <-chan struct{}        { return a.done }
func (a *afpacket) Capabilities() Capabilities   { return a.steer.capabilities() }

func (a *afpacket) AddFilter(spec FilterSpec) (pkt.FlowKey, bool, error) {
	return a.steer.addFilter(spec)
}

func (a *afpacket) RemoveFilters(key pkt.FlowKey, signature bool) int {
	return a.steer.removeFilters(key, signature)
}

func (a *afpacket) FilterCount() (int, int) { return a.steer.filterCount() }

func (a *afpacket) Stats() Stats { return a.steer.snapshot() }

func (a *afpacket) PublishMetrics(reg *metrics.Registry) {
	publishSwMetrics(reg, a.steer, func(dst []uint64) []uint64 {
		for qi := range a.ringDrops {
			dst = append(dst, atomic.LoadUint64(&a.ringDrops[qi]))
		}
		return dst
	})
}

// Close stops the poll goroutines (they notice within the epoll timeout),
// unmaps the rings, and closes the sockets. Idempotent.
func (a *afpacket) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		<-a.done
		return nil
	}
	a.closed = true
	opened := a.opened
	a.mu.Unlock()
	close(a.closeCh)
	if !opened {
		for _, ch := range a.ch {
			close(ch)
		}
		close(a.done)
		return nil
	}
	a.wg.Wait()
	for _, q := range a.qs {
		if q != nil {
			q.teardown()
		}
	}
	close(a.done)
	return nil
}
