// Package atomicfield exercises the atomic-discipline analyzer: fields
// accessed through sync/atomic functions must never be accessed plainly,
// 64-bit atomics must be 8-byte aligned under 32-bit layout, and
// //scap:atomics structs must stay all-atomic.
package atomicfield

import "sync/atomic"

// engine reproduces the pre-PR-1 Engine.Stats data race: the packet path
// increments counters plainly while Stats reads them with sync/atomic.
type engine struct {
	frames uint64 // offset 0: aligned, but mixed plain/atomic access
	drops  uint64
	pad    uint32
	seq    uint64 // want atomicfield "not 8-byte aligned on 32-bit platforms"
}

func (e *engine) handle() {
	e.frames++ // want atomicfield "plain write to field frames"
	atomic.AddUint64(&e.drops, 1)
	atomic.AddUint64(&e.seq, 1)
}

func (e *engine) stats() (uint64, uint64) {
	return atomic.LoadUint64(&e.frames), e.drops // want atomicfield "plain read of field drops"
}

func leak(e *engine) *uint64 {
	return &e.drops // want atomicfield "address of field drops"
}

// counter is only ever accessed plainly: no atomic use, no findings.
type counter struct{ n uint64 }

func (c *counter) bump() { c.n++ }

func (c *counter) value() uint64 { return c.n }

// slot mirrors the flight recorder's all-atomic seqlock slot.
//
//scap:atomics
type slot struct {
	seq atomic.Uint64
	ts  atomic.Int64
	_   [40]byte
	n   int // want atomicfield "non-atomic type int"
}

// ringSet mirrors flightRing: padding, a typed atomic cursor, and a slice
// of all-atomic slots are all allowed.
//
//scap:atomics
type ringSet struct {
	_     [64]byte
	next  atomic.Uint64
	slots []slot
}
