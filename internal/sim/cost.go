// Package sim runs the capture systems under a discrete virtual-time
// pipeline with a calibrated CPU cycle-cost model, replacing the paper's
// 10 GbE testbed (two Xeon hosts, §6.1). The functional logic that runs is
// the real code — the Scap engine, the NIC model, the baselines' ring and
// reassembly — only the *clock* is virtual: each pipeline stage is a
// single-server queue whose service times are cycle costs divided by the
// core frequency, and packet loss emerges from bounded queues overflowing
// exactly as on real hardware.
//
// The cost constants are calibrated jointly against the paper's anchor
// points (see cost_test.go): Libnids/Snort saturate stream delivery around
// 2.5 Gbit/s while Scap reaches 5.5; YAF saturates flow export near
// 4 Gbit/s while Scap survives 6 with <10% CPU; one Scap matching worker
// handles ~1 Gbit/s vs ~0.75 for the baselines; eight workers reach
// ~5.5 Gbit/s. Absolute numbers are testbed artifacts; the model preserves
// the cost *ratios* the paper attributes to copies, early discard, and
// locality.
package sim

// CostModel prices pipeline operations in CPU cycles.
type CostModel struct {
	// CoreHz is cycles per second per core (the testbed's 2 GHz Xeons).
	CoreHz float64
	// Cores is the number of physical cores (8 in the paper's sensor).
	Cores int

	// Kernel path: the PF_PACKET handler used by the baselines.
	PcapPerPacket float64 // softirq + driver + bookkeeping
	PcapPerByte   float64 // copy into the mmap ring (after snaplen)

	// Kernel path: the Scap module.
	ScapPerPacket float64 // flow lookup, stream_t update, event plumbing
	ScapPerByte   float64 // in-kernel reassembly + write into stream region

	// User level.
	EventPerChunk   float64 // Scap stub: poll + dispatch one event
	TouchPerByte    float64 // reading delivered stream data (cache-friendly)
	RingReadPerByte float64 // baselines reading frames out of the mmap ring
	MatchPerByte    float64 // Aho-Corasick DFA step per input byte
	YafPerPacket    float64 // YAF: recv + decode + flow update
	NidsPerPacket   float64 // Libnids: recv + decode + TCB management
	SnortPerPacket  float64 // Snort/Stream5: same role, leaner packet path
	UserCopyPerByte float64 // user-level reassembly copy (the extra copy)
	ScatterPerByte  float64 // cache-miss penalty for packet-interleaved data

	// Cache model for Figure 7 (L2 misses per packet, computed
	// analytically from delivered bytes).
	MissBasePerPacket    float64
	MissPerByteGrouped   float64 // Scap: consecutive segments stored together
	MissPerByteScattered float64 // Libnids: segments scattered in memory
	MissPerByteSnort     float64
}

// DefaultCostModel returns the calibrated model. The derivation (with the
// synthetic trace's ~960-byte average frame): one Scap matching worker
// saturates near 1 Gbit/s when payload×MatchPerByte plus its 1/Cores share
// of kernel work fills a core; eight workers then saturate near 5.5 Gbit/s
// because every core also carries kernel reassembly — the paper's
// explanation for the sub-linear speedup.
func DefaultCostModel() CostModel {
	return CostModel{
		CoreHz: 2e9,
		Cores:  8,

		PcapPerPacket: 1000,
		PcapPerByte:   3.0,

		ScapPerPacket: 900,
		ScapPerByte:   7.0,

		EventPerChunk:   300,
		TouchPerByte:    2.1,
		RingReadPerByte: 1.5,
		MatchPerByte:    17,
		YafPerPacket:    3800,
		NidsPerPacket:   2000,
		SnortPerPacket:  1800,
		UserCopyPerByte: 2.5,
		ScatterPerByte:  1.5,

		MissBasePerPacket:    4,
		MissPerByteGrouped:   0.0055,
		MissPerByteScattered: 0.0140,
		MissPerByteSnort:     0.0175,
	}
}

// Server is one virtual CPU core's timeline. Kernel (softirq) and worker
// work on the same core share the timeline — Scap deliberately collocates
// each queue's kernel thread with its worker thread (paper §2.4), and the
// contention between the two is what shapes the multicore scaling curve.
// Busy time is accounted per class by the caller.
type Server struct {
	freeAt int64 // virtual ns when the current backlog drains
}

// FreeAt returns when the core next idles.
func (s *Server) FreeAt() int64 { return s.freeAt }

// Work schedules cycles of work arriving at now; it returns the busy
// duration added, for the caller's per-class accounting.
func (s *Server) Work(now int64, cycles, hz float64) int64 {
	start := now
	if s.freeAt > start {
		start = s.freeAt
	}
	dur := int64(cycles / hz * 1e9)
	s.freeAt = start + dur
	return dur
}

// Idle reports whether the core has no backlog at time now.
func (s *Server) Idle(now int64) bool { return s.freeAt <= now }

// utilization converts busy nanoseconds to a clamped fraction.
func utilization(busy, elapsed int64) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := float64(busy) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}
