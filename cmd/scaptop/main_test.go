package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"scap/internal/metrics"
)

// samplePayload is a captured /metrics response shape; the parse test pins
// the wire contract between Handle.Serve and this viewer.
const samplePayload = `{
  "time_unix_nano": 1700000001000000000,
  "window_seconds": 1,
  "cores": 2,
  "counters": [
    {"name": "frames_total", "unit": "frames", "total": 1200, "per_core": [700, 500], "rate": 1200, "per_core_rate": [700, 500]},
    {"name": "packets_total", "unit": "packets", "paper": "Fig. 7 processed packets", "total": 1000, "per_core": [600, 400], "rate": 1000, "per_core_rate": [600, 400]},
    {"name": "ppl_dropped_pkts_total", "unit": "packets", "total": 50, "per_core": [30, 20], "rate": 50, "per_core_rate": [30, 20]},
    {"name": "nic_frames_total", "unit": "frames", "total": 1300, "rate": 1300},
    {"name": "flowtab_lookups_total", "unit": "lookups", "total": 2000, "per_core": [1200, 800], "rate": 2000},
    {"name": "flowtab_probe_groups_total", "unit": "groups", "total": 2100, "per_core": [1260, 840], "rate": 2100},
    {"name": "sketch_observed_pkts_total", "unit": "packets", "total": 900, "per_core": [500, 400], "rate": 900},
    {"name": "sketch_suppressed_pkts_total", "unit": "packets", "family": "drops", "cause": "sketch", "total": 333, "per_core": [200, 133], "rate": 333}
  ],
  "gauges": [
    {"name": "memory_used_bytes", "unit": "bytes", "value": 1048576},
    {"name": "memory_size_bytes", "unit": "bytes", "value": 67108864},
    {"name": "flowtab_occupancy_core0", "unit": "streams", "value": 150},
    {"name": "flowtab_capacity_core0", "unit": "slots", "value": 1024},
    {"name": "sketch_heavies_core0", "unit": "flows", "value": 5}
  ],
  "histograms": [
    {"name": "chunk_bytes", "unit": "bytes", "count": 12, "sum": 196608,
     "buckets": [{"le": 16384, "count": 10}, {"le": 0, "count": 2}]},
    {"name": "stage_ring_worker_ns", "unit": "ns", "count": 100, "sum": 6400000,
     "buckets": [{"le": 32768, "count": 40}, {"le": 65536, "count": 59}, {"le": 131072, "count": 1}, {"le": 0, "count": 0}]},
    {"name": "callback_ns", "unit": "ns", "count": 0, "buckets": [{"le": 1024, "count": 0}, {"le": 0, "count": 0}]}
  ],
  "drops": [
    {"name": "ppl_dropped_pkts_total", "unit": "packets", "family": "drops", "cause": "ppl", "total": 50, "per_core": [30, 20], "rate": 50, "per_core_rate": [30, 20]},
    {"name": "cutoff_pkts_total", "unit": "packets", "family": "drops", "cause": "cutoff", "total": 7, "per_core": [7, 0], "rate": 7}
  ],
  "events": [
    {"kind": "ppl_enter", "time_unix_nano": 1700000000500000000, "core": 1, "value": 910},
    {"kind": "ring_full_end", "time_unix_nano": 1700000000800000000, "core": 0, "value": 42, "dur_ns": 250000000}
  ]
}`

func TestParseEndpointPayload(t *testing.T) {
	p, err := metrics.ParsePayload([]byte(samplePayload))
	if err != nil {
		t.Fatal(err)
	}
	if p.Cores != 2 || p.WindowSeconds != 1 {
		t.Fatalf("header = cores %d window %v", p.Cores, p.WindowSeconds)
	}
	pk := p.Counter("packets_total")
	if pk == nil || pk.Total != 1000 || pk.Rate != 1000 {
		t.Fatalf("packets_total = %+v", pk)
	}
	if len(pk.PerCoreRate) != 2 || pk.PerCoreRate[1] != 400 {
		t.Fatalf("per-core rates = %v", pk.PerCoreRate)
	}
	if g := p.Gauge("memory_used_bytes"); g == nil || g.Value != 1<<20 {
		t.Fatalf("memory gauge = %+v", g)
	}
	if len(p.Events) != 2 || p.Events[0].KindName != "ppl_enter" || p.Events[1].Dur != 250000000 {
		t.Fatalf("events = %+v", p.Events)
	}
	if len(p.Drops) != 2 || p.Drops[0].Cause != "ppl" || p.Drops[1].Total != 7 {
		t.Fatalf("drops table = %+v", p.Drops)
	}
	if h := p.Histogram("stage_ring_worker_ns"); h == nil || h.Count != 100 {
		t.Fatalf("stage histogram = %+v", h)
	}
}

func TestRender(t *testing.T) {
	p, err := metrics.ParsePayload([]byte(samplePayload))
	if err != nil {
		t.Fatal(err)
	}
	out := render(p)
	for _, want := range []string{
		"cores 2",
		"packets",
		"1000/s",
		"ppl_enter",
		"ring_full_end",
		"dur=250ms",
		"core=1 value=910",
		"memory",
		// Pipeline latency line: quantiles interpolated from the stage
		// histogram; the zero-count callback histogram is skipped.
		"ring→worker p50=37µs p99=66µs",
		// Drop-attribution table.
		"drops by cause:",
		"ppl",
		"cutoff                      7",
		// Flow-table probe-cost line: 2100/2000 groups per lookup.
		"(1.05 groups/lookup)",
		"c0=150/1024",
		// Sketch front-end line.
		"333 suppressed",
		"heavies: c0=5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	// Two per-core rows.
	if !strings.Contains(out, "\n   0  ") || !strings.Contains(out, "\n   1  ") {
		t.Errorf("render output missing per-core rows:\n%s", out)
	}
	if strings.Contains(out, "callback p50") {
		t.Errorf("zero-count callback histogram should be skipped:\n%s", out)
	}
}

// TestJSONOneShot covers the -json path: the raw /metrics body is passed
// through byte-for-byte (machine consumers get the server's exact payload,
// not a re-marshal).
func TestJSONOneShot(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/metrics" {
			http.NotFound(rw, req)
			return
		}
		io.WriteString(rw, samplePayload)
	}))
	defer srv.Close()

	body, err := fetchBody(strings.TrimPrefix(srv.URL, "http://"), "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != samplePayload {
		t.Fatalf("-json must print the raw payload unmodified:\n%s", body)
	}
	// What -json prints still parses as the wire format.
	if _, err := metrics.ParsePayload(body); err != nil {
		t.Fatal(err)
	}
}

// TestFetchBodyError pins the non-200 error path shared by every mode.
func TestFetchBodyError(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	if _, err := fetchBody(strings.TrimPrefix(srv.URL, "http://"), "/metrics"); err == nil {
		t.Fatal("want an error for a 404 response")
	}
}
