package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicField enforces atomic-access discipline whole-program:
//
//   - A struct field whose address is passed to a sync/atomic function
//     anywhere in the module must never be read or written plainly (or
//     have its address escape outside an atomic call) anywhere else —
//     the pre-PR-1 Engine.Stats data race, caught statically.
//   - A field reached by 64-bit atomic functions must sit at an 8-byte
//     offset within its struct, or atomic ops fault/tear on 32-bit
//     platforms (typed atomic.Int64/Uint64 self-align and are exempt).
//   - Every field of a //scap:atomics struct must be a sync/atomic type,
//     blank padding, another //scap:atomics struct, or an array/slice of
//     such — so "all access to this struct is atomic" stays true as
//     fields are added.
var AtomicField = &Analyzer{
	Name:       "atomicfield",
	Doc:        "fields accessed via sync/atomic must never be accessed plainly; 64-bit atomics must be 8-byte aligned; //scap:atomics structs stay all-atomic",
	RunProgram: runAtomicField,
}

// atomicUse records how a field is touched atomically.
type atomicUse struct {
	funcName string // e.g. "LoadUint64"
	pos      token.Position
	is64     bool
}

func runAtomicField(prog *Program) []Diagnostic {
	var diags []Diagnostic

	// Pass 1: fields whose address feeds a sync/atomic function, and the
	// selector expressions consumed by those calls (exempt from pass 2).
	atomicFields := make(map[*types.Var]atomicUse)
	consumed := make(map[*ast.SelectorExpr]bool)
	for _, p := range prog.Pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(nd ast.Node) bool {
				call, ok := nd.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeOf(p.Info, call.Fun)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					un, ok := unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					sel, ok := unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					fv := fieldOf(p.Info, sel)
					if fv == nil {
						continue
					}
					consumed[sel] = true
					if _, seen := atomicFields[fv]; !seen {
						atomicFields[fv] = atomicUse{
							funcName: fn.Name(),
							pos:      p.Fset.Position(call.Pos()),
							is64:     strings.Contains(fn.Name(), "64"),
						}
					} else if strings.Contains(fn.Name(), "64") {
						u := atomicFields[fv]
						u.is64 = true
						atomicFields[fv] = u
					}
				}
				return true
			})
		}
	}

	// Pass 2: every other access to those fields is a violation. Classify
	// the access for the message: write, address escape, or read.
	for _, p := range prog.Pkgs {
		for _, f := range p.Files {
			writes, addressed := accessKinds(f)
			ast.Inspect(f, func(nd ast.Node) bool {
				sel, ok := nd.(*ast.SelectorExpr)
				if !ok || consumed[sel] {
					return true
				}
				fv := fieldOf(p.Info, sel)
				if fv == nil {
					return true
				}
				use, ok := atomicFields[fv]
				if !ok {
					return true
				}
				verb := "plain read of"
				switch {
				case writes[sel]:
					verb = "plain write to"
				case addressed[sel]:
					verb = "address of"
				}
				msg := fmt.Sprintf("%s field %s, which is accessed via sync/atomic (%s at %s)",
					verb, fv.Name(), use.funcName, shortPos(use.pos))
				if verb == "address of" {
					msg += "; the pointer escapes the atomic protocol"
				}
				diags = append(diags, Diagnostic{
					Pos:      p.Fset.Position(sel.Pos()),
					Analyzer: "atomicfield",
					Message:  msg,
				})
				return true
			})
		}
	}

	// Pass 3: 64-bit alignment of function-style atomic fields, checked
	// under 32-bit (386) layout where structs only guarantee 4-byte
	// alignment for 8-byte words.
	sizes := types.SizesFor("gc", "386")
	for _, p := range prog.Pkgs {
		for _, ns := range structTypes(p) {
			diags = append(diags, checkAlignment(p, ns, atomicFields, sizes)...)
		}
	}

	// Pass 4: //scap:atomics struct shape.
	for _, p := range prog.Pkgs {
		marked := make(map[string]bool)
		for _, ns := range structTypes(p) {
			if _, ok := structMarkerArgs(p, ns, atomicsMarker); ok {
				marked[ns.Name] = true
			}
		}
		for _, ns := range structTypes(p) {
			if !marked[ns.Name] {
				continue
			}
			diags = append(diags, checkAtomicsShape(p, ns, marked)...)
		}
	}
	return diags
}

// fieldOf resolves sel to the struct field it selects, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

// accessKinds classifies selector expressions of f: assignment/inc-dec
// targets, and operands of & outside the atomic calls handled in pass 1.
func accessKinds(f *ast.File) (writes, addressed map[*ast.SelectorExpr]bool) {
	writes = make(map[*ast.SelectorExpr]bool)
	addressed = make(map[*ast.SelectorExpr]bool)
	mark := func(e ast.Expr, m map[*ast.SelectorExpr]bool) {
		if sel, ok := unparen(e).(*ast.SelectorExpr); ok {
			m[sel] = true
		}
	}
	ast.Inspect(f, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				mark(lhs, writes)
			}
		case *ast.IncDecStmt:
			mark(x.X, writes)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				mark(x.X, addressed)
			}
		}
		return true
	})
	return writes, addressed
}

// checkAlignment flags 64-bit atomically accessed basic fields of ns that
// land on a non-8-byte offset under 32-bit layout.
func checkAlignment(p *Package, ns namedStruct, atomicFields map[*types.Var]atomicUse, sizes types.Sizes) []Diagnostic {
	if sizes == nil {
		return nil
	}
	obj, ok := p.Info.Defs[ns.Spec.Name]
	if !ok || obj == nil {
		return nil
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok || st.NumFields() == 0 {
		return nil
	}
	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i)
	}
	offsets := sizes.Offsetsof(fields)
	var diags []Diagnostic
	for i, fv := range fields {
		use, ok := atomicFields[fv]
		if !ok || !use.is64 {
			continue
		}
		b, ok := fv.Type().Underlying().(*types.Basic)
		if !ok {
			continue
		}
		switch b.Kind() {
		case types.Int64, types.Uint64, types.Float64:
		default:
			continue
		}
		if offsets[i]%8 != 0 {
			diags = append(diags, Diagnostic{
				Pos:      p.Fset.Position(fv.Pos()),
				Analyzer: "atomicfield",
				Message: fmt.Sprintf("field %s is accessed with 64-bit sync/atomic functions (%s) but is not 8-byte aligned on 32-bit platforms (offset %d in %s); move it first or pad, or use atomic.%s",
					fv.Name(), use.funcName, offsets[i], ns.Name, typedAtomicFor(b.Kind())),
			})
		}
	}
	return diags
}

func typedAtomicFor(k types.BasicKind) string {
	if k == types.Uint64 {
		return "Uint64"
	}
	return "Int64"
}

// checkAtomicsShape verifies every field of a //scap:atomics struct is
// safe for unsynchronized concurrent access.
func checkAtomicsShape(p *Package, ns namedStruct, marked map[string]bool) []Diagnostic {
	var diags []Diagnostic
	for _, field := range ns.Struct.Fields.List {
		names := field.Names
		if len(names) == 0 {
			names = []*ast.Ident{{Name: "(embedded)", NamePos: field.Pos()}}
		}
		for _, name := range names {
			if name.Name == "_" {
				continue // padding
			}
			t := p.Info.TypeOf(field.Type)
			if t == nil || atomicsShapeOK(t, p, marked) {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:      p.Fset.Position(name.Pos()),
				Analyzer: "atomicfield",
				Message: fmt.Sprintf("field %s of //scap:atomics struct %s has non-atomic type %s (use a sync/atomic type, blank padding, or a nested //scap:atomics struct)",
					name.Name, ns.Name, t),
			})
		}
	}
	return diags
}

// atomicsShapeOK reports whether t is allowed inside a //scap:atomics
// struct: a sync/atomic named type, a same-package struct also marked
// //scap:atomics, or an array/slice of an allowed type.
func atomicsShapeOK(t types.Type, p *Package, marked map[string]bool) bool {
	switch tt := t.(type) {
	case *types.Named:
		obj := tt.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
			return true
		}
		if obj.Pkg() == p.Types && marked[obj.Name()] {
			return true
		}
		return false
	case *types.Array:
		// Blank-named padding arrays are filtered before this; a named
		// field of array type must hold allowed elements.
		return atomicsShapeOK(tt.Elem(), p, marked)
	case *types.Slice:
		return atomicsShapeOK(tt.Elem(), p, marked)
	}
	return false
}

// shortPos renders a cross-reference position compactly.
func shortPos(pos token.Position) string {
	name := pos.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, pos.Line)
}
