package pkt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Decode errors. Errors wrap ErrTruncated or ErrUnsupported so callers can
// classify failures without string matching.
var (
	ErrTruncated   = errors.New("pkt: truncated frame")
	ErrUnsupported = errors.New("pkt: unsupported protocol")
)

// Decode parses an Ethernet frame into p without allocating. Existing fields
// of p are overwritten; Data and Payload alias data. WireLen is set to
// len(data); callers capturing with a snaplen should fix it up afterwards.
//
// Fragmented IPv4 packets decode successfully with IsFragment() true and the
// transport fields left zero (the fragment payload, including the embedded
// transport header of the first fragment, is in Payload); reassembly is the
// caller's job.
func Decode(data []byte, p *Packet) error {
	*p = Packet{Timestamp: p.Timestamp, Data: data, WireLen: len(data)}
	if len(data) < EthernetHeaderLen {
		return fmt.Errorf("%w: %d bytes for ethernet", ErrTruncated, len(data))
	}
	p.EtherType = binary.BigEndian.Uint16(data[12:14])
	off := EthernetHeaderLen
	// Unwrap up to two VLAN tags (802.1Q, optionally nested in 802.1ad).
	for tags := 0; tags < 2 && (p.EtherType == EtherTypeVLAN || p.EtherType == EtherTypeQinQ); tags++ {
		if len(data) < off+4 {
			return fmt.Errorf("%w: %d bytes for vlan tag", ErrTruncated, len(data))
		}
		tci := binary.BigEndian.Uint16(data[off : off+2])
		if !p.HasVLAN {
			p.HasVLAN = true
			p.VLANID = tci & 0x0fff
		}
		p.EtherType = binary.BigEndian.Uint16(data[off+2 : off+4])
		off += 4
	}
	switch p.EtherType {
	case EtherTypeIPv4:
		return decodeIPv4(data[off:], off, p)
	case EtherTypeIPv6:
		return decodeIPv6(data[off:], off, p)
	}
	return fmt.Errorf("%w: ethertype %#04x", ErrUnsupported, p.EtherType)
}

func decodeIPv4(b []byte, base int, p *Packet) error {
	if len(b) < IPv4MinHeaderLen {
		return fmt.Errorf("%w: %d bytes for ipv4", ErrTruncated, len(b))
	}
	vihl := b[0]
	if vihl>>4 != 4 {
		return fmt.Errorf("%w: ip version %d in ipv4 frame", ErrUnsupported, vihl>>4)
	}
	ihl := int(vihl&0x0f) * 4
	if ihl < IPv4MinHeaderLen || len(b) < ihl {
		return fmt.Errorf("%w: ihl %d", ErrTruncated, ihl)
	}
	totalLen := int(binary.BigEndian.Uint16(b[2:4]))
	if totalLen < ihl || totalLen > len(b) {
		// Tolerate Ethernet padding: clamp to the frame, reject shorter
		// than the header.
		if totalLen < ihl {
			return fmt.Errorf("%w: total length %d < ihl %d", ErrTruncated, totalLen, ihl)
		}
		totalLen = len(b)
	}
	p.IPVersion = 4
	p.TTL = b[8]
	p.IPID = binary.BigEndian.Uint16(b[4:6])
	fragField := binary.BigEndian.Uint16(b[6:8])
	p.MoreFrags = fragField&0x2000 != 0
	p.FragOffset = int(fragField&0x1fff) * 8
	proto := b[9]
	src, _ := netip.AddrFromSlice(b[12:16])
	dst, _ := netip.AddrFromSlice(b[16:20])
	p.Key = FlowKey{SrcIP: src, DstIP: dst, Proto: proto}
	p.L4Offset = base + ihl
	l4 := b[ihl:totalLen]
	if p.IsFragment() {
		// Transport header only present (and only parseable) in the first
		// fragment, and streams must not consume it before defragmentation.
		p.Payload = l4
		return nil
	}
	return decodeL4(l4, p)
}

func decodeIPv6(b []byte, base int, p *Packet) error {
	if len(b) < IPv6HeaderLen {
		return fmt.Errorf("%w: %d bytes for ipv6", ErrTruncated, len(b))
	}
	if b[0]>>4 != 6 {
		return fmt.Errorf("%w: ip version %d in ipv6 frame", ErrUnsupported, b[0]>>4)
	}
	payloadLen := int(binary.BigEndian.Uint16(b[4:6]))
	if IPv6HeaderLen+payloadLen > len(b) {
		payloadLen = len(b) - IPv6HeaderLen
	}
	p.IPVersion = 6
	p.TTL = b[7]
	next := b[6]
	src, _ := netip.AddrFromSlice(b[8:24])
	dst, _ := netip.AddrFromSlice(b[24:40])
	p.Key = FlowKey{SrcIP: src, DstIP: dst}
	off := IPv6HeaderLen
	end := IPv6HeaderLen + payloadLen
	// Skip a bounded chain of extension headers.
	for i := 0; i < 8; i++ {
		switch next {
		case 0, 43, 60: // hop-by-hop, routing, destination options
			if off+8 > end {
				return fmt.Errorf("%w: ipv6 extension header", ErrTruncated)
			}
			next = b[off]
			off += int(b[off+1])*8 + 8
			if off > end {
				return fmt.Errorf("%w: ipv6 extension header length", ErrTruncated)
			}
		case 44: // fragment header
			if off+8 > end {
				return fmt.Errorf("%w: ipv6 fragment header", ErrTruncated)
			}
			fo := binary.BigEndian.Uint16(b[off+2 : off+4])
			p.FragOffset = int(fo &^ 0x7) // offset is in units of 8 bytes, low 3 bits are flags/res
			p.MoreFrags = fo&0x1 != 0
			next = b[off]
			off += 8
			if p.IsFragment() {
				p.Key.Proto = next
				p.Payload = b[off:end]
				p.L4Offset = base + off
				return nil
			}
		default:
			p.Key.Proto = next
			p.L4Offset = base + off
			return decodeL4(b[off:end], p)
		}
	}
	return fmt.Errorf("%w: ipv6 extension header chain too long", ErrUnsupported)
}

// DecodeTransport parses a transport header (selected by p.Key.Proto) from
// b into p, as Decode would. It exists for defragmentation: after IP
// fragments are merged, the reassembled datagram's payload starts with the
// transport header, which was unparseable per-fragment.
func DecodeTransport(b []byte, p *Packet) error {
	return decodeL4(b, p)
}

func decodeL4(b []byte, p *Packet) error {
	switch p.Key.Proto {
	case ProtoTCP:
		if len(b) < TCPMinHeaderLen {
			return fmt.Errorf("%w: %d bytes for tcp", ErrTruncated, len(b))
		}
		p.Key.SrcPort = binary.BigEndian.Uint16(b[0:2])
		p.Key.DstPort = binary.BigEndian.Uint16(b[2:4])
		p.Seq = binary.BigEndian.Uint32(b[4:8])
		p.Ack = binary.BigEndian.Uint32(b[8:12])
		dataOff := int(b[12]>>4) * 4
		if dataOff < TCPMinHeaderLen || dataOff > len(b) {
			return fmt.Errorf("%w: tcp data offset %d", ErrTruncated, dataOff)
		}
		p.TCPFlags = b[13] & 0x3f
		p.Window = binary.BigEndian.Uint16(b[14:16])
		p.Payload = b[dataOff:]
		return nil
	case ProtoUDP:
		if len(b) < UDPHeaderLen {
			return fmt.Errorf("%w: %d bytes for udp", ErrTruncated, len(b))
		}
		p.Key.SrcPort = binary.BigEndian.Uint16(b[0:2])
		p.Key.DstPort = binary.BigEndian.Uint16(b[2:4])
		ulen := int(binary.BigEndian.Uint16(b[4:6]))
		if ulen < UDPHeaderLen || ulen > len(b) {
			ulen = len(b)
		}
		p.Payload = b[UDPHeaderLen:ulen]
		return nil
	default:
		// Other transports carry no ports; deliver the raw payload.
		p.Payload = b
		return nil
	}
}
