package classify

import (
	"encoding/binary"
	"strings"
)

// DNSQuery is the first question of a DNS message.
type DNSQuery struct {
	ID       uint16
	Response bool
	OpCode   uint8
	RCode    uint8
	Name     string
	Type     uint16
	Class    uint16
	// Counts from the header.
	QDCount, ANCount uint16
}

// Well-known DNS record types.
const (
	DNSTypeA     = 1
	DNSTypeNS    = 2
	DNSTypeCNAME = 5
	DNSTypeSOA   = 6
	DNSTypePTR   = 12
	DNSTypeMX    = 15
	DNSTypeTXT   = 16
	DNSTypeAAAA  = 28
)

// ParseDNSQuery parses a DNS message header and its first question from a
// UDP payload. It does not follow compression pointers in the question
// section (questions are never compressed in practice).
func ParseDNSQuery(b []byte) (*DNSQuery, bool) {
	if len(b) < 12 {
		return nil, false
	}
	q := &DNSQuery{
		ID:       binary.BigEndian.Uint16(b[0:2]),
		QDCount:  binary.BigEndian.Uint16(b[4:6]),
		ANCount:  binary.BigEndian.Uint16(b[6:8]),
		Response: b[2]&0x80 != 0,
		OpCode:   (b[2] >> 3) & 0x0f,
		RCode:    b[3] & 0x0f,
	}
	if q.QDCount == 0 {
		return q, true
	}
	// Question: QNAME (labels) QTYPE(2) QCLASS(2)
	var labels []string
	i := 12
	for {
		if i >= len(b) {
			return nil, false
		}
		l := int(b[i])
		if l == 0 {
			i++
			break
		}
		if l >= 0xC0 { // compression pointer: not valid in a question
			return nil, false
		}
		if i+1+l > len(b) || len(labels) > 127 {
			return nil, false
		}
		labels = append(labels, string(b[i+1:i+1+l]))
		i += 1 + l
	}
	if i+4 > len(b) {
		return nil, false
	}
	q.Name = strings.Join(labels, ".")
	q.Type = binary.BigEndian.Uint16(b[i : i+2])
	q.Class = binary.BigEndian.Uint16(b[i+2 : i+4])
	return q, true
}

// BuildDNSQuery constructs a minimal query message for tests and workload
// generation.
func BuildDNSQuery(id uint16, name string, qtype uint16) []byte {
	b := make([]byte, 12)
	binary.BigEndian.PutUint16(b[0:2], id)
	b[2] = 0x01 // RD
	binary.BigEndian.PutUint16(b[4:6], 1)
	for _, label := range strings.Split(name, ".") {
		b = append(b, byte(len(label)))
		b = append(b, label...)
	}
	b = append(b, 0)
	b = binary.BigEndian.AppendUint16(b, qtype)
	b = binary.BigEndian.AppendUint16(b, 1) // IN
	return b
}
