package flowtab

import (
	"scap/internal/pkt"
	"scap/internal/reassembly"
)

// Info is a value-copy of a stream descriptor taken by the kernel-path
// engine right before an event is enqueued. The paper maintains a second
// stream_t instance for exactly this reason (§5.4): the kernel keeps
// mutating the live record while user level reads, so each event carries a
// consistent snapshot instead.
type Info struct {
	ID     uint64
	Key    pkt.FlowKey
	Dir    pkt.Direction
	Status Status
	Error  reassembly.Flags
	Stats  Stats

	Cutoff       int64
	Priority     int
	ChunkSize    int
	OverlapSize  int
	FlushTimeout int64

	// Chunks is the number of data chunks delivered so far (including the
	// one carried by the current event, for data events).
	Chunks uint64
	// OppositeID is the ID of the reverse-direction stream, 0 if untracked.
	OppositeID uint64
	// HWFilter reports that packets of this stream are being dropped at
	// the NIC by an FDIR filter pair.
	HWFilter bool
	// EstimatedBytes is the flow size estimate: the payload counter, or —
	// when an FDIR filter suppressed the flow's middle — the span implied
	// by the FIN sequence number (paper §5.5).
	EstimatedBytes uint64
}

// Snapshot captures the current descriptor state. chunks is the delivered
// chunk count maintained by the engine.
func (s *Stream) Snapshot(chunks uint64) Info {
	info := Info{
		EstimatedBytes: s.EstimatedBytes(),
		ID:             s.ID,
		Key:            s.Key,
		Dir:            s.Dir,
		Status:         s.Status,
		Error:          s.Error,
		Stats:          s.Stats,
		Cutoff:         s.Cutoff,
		Priority:       s.Priority,
		ChunkSize:      s.ChunkSize,
		OverlapSize:    s.OverlapSize,
		FlushTimeout:   s.FlushTimeout,
		Chunks:         chunks,
		HWFilter:       s.HWFilter,
	}
	if s.Asm != nil {
		info.Error |= s.Asm.Flags()
	}
	if s.Opposite != nil {
		info.OppositeID = s.Opposite.ID
	}
	return info
}
