package event

import (
	"runtime"
	"sync"
	"testing"
)

// mutexQueue is the pre-desynchronization event queue (mutex + cond),
// embedded here as the benchmark reference so BenchmarkEventRing compares
// the lock-free ring against exactly what it replaced. PushBatch/PopBatch
// give the mutex its best case: one lock acquisition per batch.
type mutexQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	buf     []Event
	head, n int
	closed  bool
}

func newMutexQueue(capacity int) *mutexQueue {
	q := &mutexQueue{buf: make([]Event, capacity)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *mutexQueue) Push(e Event) bool {
	q.mu.Lock()
	if q.closed || q.n == len(q.buf) {
		q.mu.Unlock()
		return false
	}
	q.buf[(q.head+q.n)%len(q.buf)] = e
	q.n++
	q.mu.Unlock()
	q.cond.Signal()
	return true
}

func (q *mutexQueue) PushBatch(evs []Event) int {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return 0
	}
	k := len(q.buf) - q.n
	if k > len(evs) {
		k = len(evs)
	}
	for i := 0; i < k; i++ {
		q.buf[(q.head+q.n)%len(q.buf)] = evs[i]
		q.n++
	}
	q.mu.Unlock()
	if k > 0 {
		q.cond.Signal()
	}
	return k
}

func (q *mutexQueue) Poll() (Event, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.popLocked()
}

func (q *mutexQueue) PopBatch(dst []Event) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	k := 0
	for k < len(dst) {
		e, ok := q.popLocked()
		if !ok {
			break
		}
		dst[k] = e
		k++
	}
	return k
}

func (q *mutexQueue) Wait() (Event, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.cond.Wait()
	}
	return q.popLocked()
}

func (q *mutexQueue) popLocked() (Event, bool) {
	if q.n == 0 {
		return Event{}, false
	}
	e := q.buf[q.head]
	q.buf[q.head] = Event{}
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return e, true
}

func (q *mutexQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// benchQueue is the surface both implementations share.
type benchQueue interface {
	Push(Event) bool
	Poll() (Event, bool)
	PushBatch([]Event) int
	PopBatch([]Event) int
	Wait() (Event, bool)
	Close()
}

// benchPingPong measures the raw per-op enqueue+dequeue cost with no
// second goroutine (no scheduler noise): push one, poll one.
func benchPingPong(b *testing.B, q benchQueue) {
	ev := Event{Type: Data}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(ev)
		q.Poll()
	}
}

// benchSPSC streams b.N events through the queue to a consumer goroutine
// parking in Wait — the capture path's actual shape.
func benchSPSC(b *testing.B, q benchQueue) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, ok := q.Wait(); !ok {
				return
			}
		}
	}()
	ev := Event{Type: Data}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for !q.Push(ev) {
			runtime.Gosched()
		}
	}
	q.Close()
	<-done
}

// benchSPSCBatch streams b.N events in batches of 64 on both sides.
func benchSPSCBatch(b *testing.B, q benchQueue) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		dst := make([]Event, 64)
		for {
			if n := q.PopBatch(dst); n == 0 {
				if _, ok := q.Wait(); !ok {
					return
				}
			}
		}
	}()
	batch := make([]Event, 64)
	for i := range batch {
		batch[i] = Event{Type: Data}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for pushed := 0; pushed < b.N; {
		n := len(batch)
		if rem := b.N - pushed; rem < n {
			n = rem
		}
		acc := q.PushBatch(batch[:n])
		pushed += acc
		if acc < n {
			runtime.Gosched()
		}
	}
	q.Close()
	<-done
}

// BenchmarkEventRing compares the lock-free SPSC ring against the
// mutex+cond queue it replaced, per-event and batched.
func BenchmarkEventRing(b *testing.B) {
	const capacity = 4096
	b.Run("pingpong/mutex", func(b *testing.B) { benchPingPong(b, newMutexQueue(capacity)) })
	b.Run("pingpong/ring", func(b *testing.B) { benchPingPong(b, NewQueue(capacity)) })
	b.Run("spsc/mutex", func(b *testing.B) { benchSPSC(b, newMutexQueue(capacity)) })
	b.Run("spsc/ring", func(b *testing.B) { benchSPSC(b, NewQueue(capacity)) })
	b.Run("spsc-batch64/mutex", func(b *testing.B) { benchSPSCBatch(b, newMutexQueue(capacity)) })
	b.Run("spsc-batch64/ring", func(b *testing.B) { benchSPSCBatch(b, NewQueue(capacity)) })
}
