package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram counts observations in power-of-two buckets: bucket i counts
// values v with v <= 2^i (the final bucket absorbs everything larger).
// Like counters, buckets are kept per core — each core observes into its
// own row (padded to whole cache lines), so concurrent engines never
// contend on a bucket's cache line — and rows are summed at snapshot
// time. An observation is two uncontended atomic adds (bucket + sum).
type Histogram struct {
	desc Desc
	nb   int // bucket count: le 2^0 .. 2^maxPow, plus one overflow bucket
	// rows holds one bucket row per core: slots [0..nb) are the buckets,
	// slot nb is the value sum, and the row is padded to a multiple of
	// eight slots (64 bytes) so rows do not share cache lines.
	rows [][]atomic.Uint64
}

func newHistogram(d Desc, cores, maxPow int) *Histogram {
	if maxPow < 0 {
		maxPow = 0
	}
	if cores < 1 {
		cores = 1
	}
	nb := maxPow + 2
	rowLen := (nb + 1 + 7) &^ 7
	h := &Histogram{desc: d, nb: nb, rows: make([][]atomic.Uint64, cores)}
	for i := range h.rows {
		h.rows[i] = make([]atomic.Uint64, rowLen)
	}
	return h
}

// Desc returns the histogram's metadata.
func (h *Histogram) Desc() Desc { return h.desc }

// Observe records one observation of v on core's row. An out-of-range
// core falls back to row 0.
//
//scap:hotpath
func (h *Histogram) Observe(core int, v uint64) {
	if core < 0 || core >= len(h.rows) {
		core = 0
	}
	row := h.rows[core]
	i := 0
	if v > 1 {
		i = bits.Len64(v - 1) // smallest i with 2^i >= v
	}
	if i >= h.nb {
		i = h.nb - 1
	}
	row[i].Add(1)
	row[h.nb].Add(v)
}

// BucketSnap is one histogram bucket: the count of observations with value
// <= Le (Le 0 marks the overflow bucket).
type BucketSnap struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSnap is one histogram's snapshot.
type HistogramSnap struct {
	Desc
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Buckets []BucketSnap `json:"buckets"`
}

// QuantileFromSnap estimates the p-quantile (0 < p <= 1) of a histogram
// snapshot. Within the matched power-of-two bucket (2^(i-1), 2^i] the
// estimate interpolates log-linearly — v = lo · (hi/lo)^frac — matching the
// buckets' geometric spacing, so the estimate is never off by more than the
// bucket's 2x width and tracks the true quantile closely for smooth
// distributions. The first bucket [0, 1] interpolates linearly. When the
// quantile lands in the overflow bucket the largest finite bound is returned
// (a lower bound on the true value). A zero-count snapshot yields 0.
func QuantileFromSnap(s HistogramSnap, p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(s.Count)
	if target < 1 {
		target = 1
	}
	var cum, lo float64
	for _, b := range s.Buckets {
		if b.Le == 0 { // overflow bucket: range unknown
			return lo
		}
		hi := float64(b.Le)
		if b.Count > 0 && cum+float64(b.Count) >= target {
			frac := (target - cum) / float64(b.Count)
			if lo == 0 {
				return hi * frac
			}
			return lo * math.Pow(hi/lo, frac)
		}
		cum += float64(b.Count)
		lo = hi
	}
	return lo
}

// Snap returns a point-in-time snapshot of the histogram (buckets summed
// across cores). Cold path: the control plane and tests read quantiles from
// it via QuantileFromSnap without assembling a whole registry snapshot.
func (h *Histogram) Snap() HistogramSnap { return h.snapshot() }

func (h *Histogram) snapshot() HistogramSnap {
	s := HistogramSnap{Desc: h.desc}
	for i := 0; i < h.nb; i++ {
		var n uint64
		for _, row := range h.rows {
			n += row[i].Load()
		}
		s.Count += n
		le := uint64(1) << uint(i)
		if i == h.nb-1 {
			le = 0 // overflow bucket
		}
		s.Buckets = append(s.Buckets, BucketSnap{Le: le, Count: n})
	}
	for _, row := range h.rows {
		s.Sum += row[h.nb].Load()
	}
	return s
}
