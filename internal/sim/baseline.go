package sim

import (
	"scap/internal/baseline"
	"scap/internal/match"
	"scap/internal/pcapring"
	"scap/internal/pkt"
	"scap/internal/trace"
)

// BaselineKind selects the comparison system.
type BaselineKind uint8

const (
	// KindYAF is the flow meter (96-byte snaplen, no reassembly).
	KindYAF BaselineKind = iota
	// KindLibnids is the user-level reassembly library.
	KindLibnids
	// KindSnort is the Stream5-style preprocessor.
	KindSnort
)

func (k BaselineKind) String() string {
	switch k {
	case KindYAF:
		return "yaf"
	case KindLibnids:
		return "libnids"
	case KindSnort:
		return "snort"
	}
	return "baseline"
}

// BaselineConfig describes one baseline run.
type BaselineConfig struct {
	Model     CostModel
	Kind      BaselineKind
	App       AppKind
	Matcher   *match.Matcher
	RingBytes int   // PF_PACKET ring size (512 MB in the paper)
	MaxFlows  int   // connection-table limit
	Cutoff    int64 // user-level cutoff (Figure 8); -1 = unlimited
	ChunkSize int   // Stream5 flush point
}

// BaselineSim drives a baseline through the kernel-ring-user pipeline.
type BaselineSim struct {
	cfg  BaselineConfig
	ring *pcapring.Ring
	nids *baseline.UserReassembler
	yaf  *baseline.YAF
	// cores are shared per-core timelines: softirq work lands on the core
	// RSS steered the frame to; the single-threaded application runs on
	// core 0 and contends with that core's softirq share.
	cores      []Server
	kernelBusy []int64
	workerBusy int64
	met        Metrics

	matchStates map[*baseline.UserStream]match.State
	matchedFlow map[*baseline.UserStream]bool
	dataFlows   map[pkt.FlowKey]struct{}
	lastTS      int64
	lastExpire  int64
	snaplen     int
	dec         pkt.Packet
	pendingUser float64 // cycles accumulated by callbacks during ProcessFrame
}

// NewBaselineSim builds the pipeline.
func NewBaselineSim(cfg BaselineConfig) *BaselineSim {
	if cfg.Model.CoreHz == 0 {
		cfg.Model = DefaultCostModel()
	}
	if cfg.RingBytes <= 0 {
		cfg.RingBytes = 512 << 20
	}
	if cfg.Cutoff == 0 {
		cfg.Cutoff = baseline.CutoffUnlimited
	}
	b := &BaselineSim{
		cfg:         cfg,
		cores:       make([]Server, cfg.Model.Cores),
		kernelBusy:  make([]int64, cfg.Model.Cores),
		matchStates: make(map[*baseline.UserStream]match.State),
		matchedFlow: make(map[*baseline.UserStream]bool),
		dataFlows:   make(map[pkt.FlowKey]struct{}),
	}
	b.snaplen = 0
	onData := func(s *baseline.UserStream, data []byte) {
		b.met.DeliveredBytes += uint64(len(data))
		if len(data) > 0 {
			ck, _ := s.Key.Canonical()
			b.dataFlows[ck] = struct{}{}
		}
		if cfg.App == AppMatch {
			b.pendingUser += cfg.Model.MatchPerByte * float64(len(data))
			if cfg.Matcher != nil {
				st := b.matchStates[s]
				st = cfg.Matcher.Resume(st, data, func(match.Match) bool {
					b.met.Matches++
					if !b.matchedFlow[s] {
						b.matchedFlow[s] = true
						b.met.MatchedFlows++
					}
					return true
				})
				b.matchStates[s] = st
			}
		}
		if s.Closed {
			delete(b.matchStates, s)
		}
	}
	switch cfg.Kind {
	case KindYAF:
		b.snaplen = baseline.YAFSnaplen
		b.yaf = baseline.NewYAF(0, nil)
	case KindLibnids:
		b.nids = baseline.NewLibnids(cfg.MaxFlows, cfg.Cutoff, onData)
	case KindSnort:
		chunk := cfg.ChunkSize
		if chunk <= 0 {
			chunk = 16 << 10
		}
		b.nids = baseline.NewStream5(cfg.MaxFlows, chunk, cfg.Cutoff, onData)
	}
	b.ring = pcapring.New(cfg.RingBytes, b.snaplen)
	return b
}

// Run replays the source and returns metrics.
func (b *BaselineSim) Run(src trace.Source, bitsPerSec float64) Metrics {
	frames, end := trace.Replay(src, bitsPerSec, func(frame []byte, ts int64) bool {
		b.met.OfferedBytes += uint64(len(frame))
		b.arrive(frame, ts)
		return true
	})
	b.met.OfferedPackets = frames
	b.finish(end)
	return b.met
}

func (b *BaselineSim) arrive(frame []byte, ts int64) {
	b.lastTS = ts
	// Periodic flow expiry, like the libraries' timer callbacks.
	if ts-b.lastExpire >= int64(1e9) {
		b.lastExpire = ts
		if b.nids != nil {
			b.nids.Expire(ts)
		}
		if b.yaf != nil {
			b.yaf.Expire(ts)
		}
	}
	// User application catches up first: it frees ring space.
	b.drainUser(ts)

	// Kernel stage: the softirq runs on whichever core RSS steered the
	// frame to; a cheap hash spreads the work like the paper's multi-queue
	// interrupt handling.
	coreIdx := int((uint64(ts)*2654435761 + uint64(len(frame))) % uint64(len(b.cores)))
	capLen := len(frame)
	if b.snaplen > 0 && capLen > b.snaplen {
		capLen = b.snaplen
	}
	cycles := b.cfg.Model.PcapPerPacket + b.cfg.Model.PcapPerByte*float64(capLen)
	b.kernelBusy[coreIdx] += b.cores[coreIdx].Work(ts, cycles, b.cfg.Model.CoreHz)

	b.ring.Push(frame, ts) // drops internally when full
}

// drainUser lets the single application thread (on core 0) consume ring
// frames until its clock passes ts.
func (b *BaselineSim) drainUser(ts int64) {
	srv := &b.cores[0]
	for srv.FreeAt() <= ts {
		f, ok := b.ring.Pop()
		if !ok {
			return
		}
		cycles := b.userCost(f)
		b.workerBusy += srv.Work(max64(srv.FreeAt(), f.TS), cycles, b.cfg.Model.CoreHz)
	}
}

// userCost runs the real per-frame application work and prices it.
func (b *BaselineSim) userCost(f pcapring.Frame) float64 {
	b.pendingUser = 0
	var cycles float64
	switch b.cfg.Kind {
	case KindYAF:
		b.yaf.ProcessFrame(f)
		cycles = b.cfg.Model.YafPerPacket
	case KindLibnids, KindSnort:
		before := b.nids.Counters()
		b.nids.ProcessFrame(f)
		after := b.nids.Counters()
		perPkt := b.cfg.Model.NidsPerPacket
		if b.cfg.Kind == KindSnort {
			perPkt = b.cfg.Model.SnortPerPacket
		}
		copied := float64(after.ReassemblyCopy - before.ReassemblyCopy)
		cycles = perPkt +
			b.cfg.Model.UserCopyPerByte*copied +
			b.cfg.Model.RingReadPerByte*float64(len(f.Data)) +
			b.cfg.Model.ScatterPerByte*copied
	}
	return cycles + b.pendingUser
}

func (b *BaselineSim) finish(end int64) {
	// Drain whatever the app can still read, then flush flow state.
	b.drainUser(int64(1) << 62)
	switch b.cfg.Kind {
	case KindYAF:
		b.yaf.Close()
	default:
		b.nids.Close()
	}
	elapsed := end
	if elapsed <= 0 {
		elapsed = 1
	}
	b.met.ElapsedNs = elapsed
	rs := b.ring.Stats()
	b.met.DroppedRing = rs.Dropped
	var kernelBusy int64
	for _, kb := range b.kernelBusy {
		kernelBusy += kb
	}
	b.met.KernelBusyNs = kernelBusy
	b.met.Softirq = float64(kernelBusy) / (float64(elapsed) * float64(b.cfg.Model.Cores))
	b.met.WorkerBusyNs = b.workerBusy
	b.met.CPUUser = utilization(b.workerBusy, elapsed)
	if b.nids != nil {
		c := b.nids.Counters()
		b.met.StreamsCreated = c.StreamsTracked * 2
		// StreamsLost is finalized by the harness, which knows how many
		// connections the workload actually contained: lost = offered −
		// (tracked − evicted). Here we record the evictions.
		b.met.StreamsLost = int(c.StreamsEvicted)
	}
	b.met.FlowsWithData = len(b.dataFlows)
}

// Reassembler exposes the userland reassembler (tests).
func (b *BaselineSim) Reassembler() *baseline.UserReassembler { return b.nids }
