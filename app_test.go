package scap

import (
	"sync"
	"testing"

	"scap/internal/trace"
)

// TestMultipleApplicationsShareCapture exercises §5.6: two apps with
// different filters and cutoffs share one socket; the kernel keeps the
// union (largest cutoff, streams matching either filter) and each app sees
// only its own subset.
func TestMultipleApplicationsShareCapture(t *testing.T) {
	h, err := Create(Config{Queues: 2})
	if err != nil {
		t.Fatal(err)
	}

	web, err := h.NewApp("web-monitor")
	if err != nil {
		t.Fatal(err)
	}
	if err := web.SetFilter("port 80"); err != nil {
		t.Fatal(err)
	}
	if err := web.SetCutoff(100); err != nil {
		t.Fatal(err)
	}

	mail, err := h.NewApp("mail-monitor")
	if err != nil {
		t.Fatal(err)
	}
	if err := mail.SetFilter("port 25"); err != nil {
		t.Fatal(err)
	}
	if err := mail.SetCutoff(CutoffUnlimited); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	webBytes := map[uint64]int{}
	mailBytes := map[uint64]int{}
	var webWrongPort, mailWrongPort bool
	web.DispatchData(func(sd *Stream) {
		mu.Lock()
		defer mu.Unlock()
		if sd.Key().SrcPort != 80 && sd.Key().DstPort != 80 {
			webWrongPort = true
		}
		webBytes[sd.ID()] += len(sd.Data)
	})
	mail.DispatchData(func(sd *Stream) {
		mu.Lock()
		defer mu.Unlock()
		if sd.Key().SrcPort != 25 && sd.Key().DstPort != 25 {
			mailWrongPort = true
		}
		mailBytes[sd.ID()] += len(sd.Data)
	})
	var webTerms, mailTerms int
	web.DispatchTermination(func(sd *Stream) { mu.Lock(); webTerms++; mu.Unlock() })
	mail.DispatchTermination(func(sd *Stream) { mu.Lock(); mailTerms++; mu.Unlock() })

	if err := h.StartCapture(); err != nil {
		t.Fatal(err)
	}
	gen := trace.NewGenerator(trace.GenConfig{
		Seed: 31, Flows: 60, Concurrency: 8, TCPFraction: 1,
		MinFlowBytes: 1000, MaxFlowBytes: 20000,
		ServerPorts: []trace.PortWeight{
			{Port: 80, Weight: 0.4}, {Port: 25, Weight: 0.3}, {Port: 443, Weight: 0.3},
		},
	})
	if err := h.ReplaySource(gen, 1e9); err != nil {
		t.Fatal(err)
	}
	h.Close()

	mu.Lock()
	defer mu.Unlock()
	if webWrongPort || mailWrongPort {
		t.Error("an app received a stream outside its filter")
	}
	if len(webBytes) == 0 || len(mailBytes) == 0 {
		t.Fatalf("apps starved: web=%d mail=%d streams", len(webBytes), len(mailBytes))
	}
	for id, n := range webBytes {
		if n > 100 {
			t.Errorf("web app stream %d got %d bytes beyond its 100-byte cutoff", id, n)
		}
	}
	// The mail app is uncut: it must see large streams in full.
	maxMail := 0
	for _, n := range mailBytes {
		if n > maxMail {
			maxMail = n
		}
	}
	if maxMail <= 100 {
		t.Errorf("mail app max stream %d bytes — union cutoff not applied in kernel", maxMail)
	}
	if webTerms == 0 || mailTerms == 0 {
		t.Error("termination events missing for apps")
	}
	// 443-only streams matched neither filter: the kernel discarded them.
	stats, _ := h.GetStats()
	if stats.Packets == 0 {
		t.Error("no packets processed")
	}
}

func TestAppUnfilteredDisablesKernelFilter(t *testing.T) {
	h, _ := Create(Config{Queues: 1})
	all, _ := h.NewApp("see-everything")
	var mu sync.Mutex
	ports := map[uint16]bool{}
	all.DispatchTermination(func(sd *Stream) {
		mu.Lock()
		ports[sd.Key().DstPort] = true
		ports[sd.Key().SrcPort] = true
		mu.Unlock()
	})
	filtered, _ := h.NewApp("web-only")
	filtered.SetFilter("port 80")

	h.StartCapture()
	gen := trace.NewGenerator(trace.GenConfig{
		Seed: 32, Flows: 30, Concurrency: 4, TCPFraction: 1,
		MinFlowBytes: 500, MaxFlowBytes: 2000,
		ServerPorts: []trace.PortWeight{{Port: 80, Weight: 0.5}, {Port: 9999, Weight: 0.5}},
	})
	h.ReplaySource(gen, 1e9)
	h.Close()
	mu.Lock()
	defer mu.Unlock()
	if !ports[9999] {
		t.Error("unfiltered app did not see non-web streams — kernel filter too narrow")
	}
}

func TestNewAppAfterStartFails(t *testing.T) {
	h, _ := Create(Config{Queues: 1})
	h.StartCapture()
	defer h.Close()
	if _, err := h.NewApp("late"); err != ErrStarted {
		t.Errorf("err = %v, want ErrStarted", err)
	}
}
