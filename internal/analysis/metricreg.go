package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// MetricReg enforces the registration/update split of internal/metrics on
// the per-packet path: functions marked //scap:hotpath may only touch the
// metrics package through its atomic fast path (Cell.Add/Inc, Gauge.Set/
// Add, Histogram.Observe, EventLog.Record, and the Load readers). Metric
// registration (NewCounter, NewGauge, NewHistogram, ...) and snapshot
// assembly take the registry mutex and allocate; both belong in setup
// code, before the capture loop starts.
var MetricReg = &Analyzer{
	Name: "metricreg",
	Doc:  "only atomic metrics-package operations in //scap:hotpath functions",
	Run:  runMetricReg,
}

// metricsFastPath is the allowlist of metrics-package operations that are
// a single atomic op (or an edge-triggered event append) and therefore
// safe on the per-packet path. Note is the flight recorder's fixed-size
// no-alloc encoder; ObserveEx is Observe plus a best-effort seqlock
// exemplar write (a few uncontended atomics, never blocking); Nanotime is
// the alloc-free capture clock.
var metricsFastPath = map[string]bool{
	"Add":       true,
	"Inc":       true,
	"Set":       true,
	"Observe":   true,
	"ObserveEx": true,
	"Record":    true,
	"Load":      true,
	"Note":      true,
	"Nanotime":  true,
}

func runMetricReg(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, fd := range hotpathFuncs(p) {
		if fd.Body == nil {
			continue
		}
		fname := fd.Name.Name
		if fd.Recv != nil && len(fd.Recv.List) > 0 {
			if tn := receiverTypeName(fd); tn != "" {
				fname = tn + "." + fname
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, recv := metricsCallee(p, call)
			if callee == "" || metricsFastPath[callee] {
				return true
			}
			msg := fmt.Sprintf(
				"%s: call to metrics.%s in a hot path (register metrics and take snapshots at setup; the per-packet path may only use the atomic fast path: Add/Inc/Set/Observe/ObserveEx/Record/Load/Note/Nanotime)",
				fname, callee)
			if recv == "FlightRecorder" {
				// Flight-record emission in hot-path code may only use the
				// fixed-size no-alloc encoder; decoding belongs to readers.
				msg = fmt.Sprintf(
					"%s: call to metrics.FlightRecorder.%s in a hot path (flight records in //scap:hotpath code may only be emitted with the fixed-size no-alloc encoder FlightRecorder.Note; Snapshot/Dump/Total are cold read paths)",
					fname, callee)
			}
			diags = append(diags, Diagnostic{
				Pos:      p.Fset.Position(call.Pos()),
				Analyzer: "metricreg",
				Message:  msg,
			})
			return true
		})
	}
	return diags
}

// metricsCallee returns the name of the metrics-package function or method
// a call resolves to (plus its receiver type name, "" for package-level
// functions), or "" when the callee is not from internal/metrics. Both
// method calls (via the selection) and package-qualified function calls
// (via object uses) are resolved through the type checker, so local types
// with coincidentally matching method names are not flagged.
func metricsCallee(p *Package, call *ast.CallExpr) (name, recv string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	var fn *types.Func
	if s, ok := p.Info.Selections[sel]; ok {
		fn, _ = s.Obj().(*types.Func)
	} else if obj, ok := p.Info.Uses[sel.Sel]; ok {
		fn, _ = obj.(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil || !isMetricsPkgPath(fn.Pkg().Path()) {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			recv = named.Obj().Name()
		}
	}
	return fn.Name(), recv
}

// isMetricsPkgPath matches the metrics package by path suffix so the
// analyzer also works on testdata fixtures loaded outside the module.
func isMetricsPkgPath(path string) bool {
	return path == "scap/internal/metrics" || strings.HasSuffix(path, "/internal/metrics")
}
