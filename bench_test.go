package scap

// This file holds the benchmark entry points that regenerate the paper's
// evaluation: one benchmark per figure (Figures 3–12; Table 1 is the API
// itself), plus the ablation benchmarks for the design decisions called
// out in DESIGN.md §5. Each figure benchmark runs the corresponding
// experiment sweep at reduced ("quick") scale and reports the headline
// numbers as custom metrics; `cmd/scapbench` runs the full-scale sweeps
// and prints every series.
//
//	go test -bench=Fig -benchmem            # all figures
//	go test -bench=BenchmarkFig6 -v         # one figure
//	go test -bench=Ablation                 # design ablations

import (
	"fmt"
	"sync"
	"testing"

	"scap/internal/baseline"
	"scap/internal/bench"
	"scap/internal/core"
	"scap/internal/event"
	"scap/internal/mem"
	"scap/internal/pcapring"
	"scap/internal/reassembly"
	"scap/internal/sim"
	"scap/internal/trace"
)

var (
	benchOnce   sync.Once
	benchRunner *bench.Runner
)

func runner(b *testing.B) *bench.Runner {
	benchOnce.Do(func() {
		r, err := bench.NewRunner(bench.QuickConfig())
		if err != nil {
			panic(err)
		}
		benchRunner = r
	})
	return benchRunner
}

// BenchmarkFig3FlowStatsExport — paper Figure 3: flow statistics export
// for Libnids, YAF, and Scap with/without FDIR across rates.
func BenchmarkFig3FlowStatsExport(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		figs := r.Fig3()
		b.ReportMetric(figs[0].Value("Libnids", 6), "libnids-loss%@6G")
		b.ReportMetric(figs[0].Value("Scap w/o FDIR", 6), "scap-loss%@6G")
		b.ReportMetric(figs[2].Value("Scap with FDIR", 6), "scap-fdir-irq%@6G")
	}
}

// BenchmarkFig4StreamDelivery — paper Figure 4: delivering reassembled
// streams to user level (Libnids, Snort, Scap).
func BenchmarkFig4StreamDelivery(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		figs := r.Fig4()
		b.ReportMetric(figs[0].Value("Scap", 4), "scap-loss%@4G")
		b.ReportMetric(figs[0].Value("Libnids", 4), "libnids-loss%@4G")
	}
}

// BenchmarkFig5ConcurrentStreams — paper Figure 5: scaling with the number
// of concurrent streams against fixed-size baseline flow tables.
func BenchmarkFig5ConcurrentStreams(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		figs := r.Fig5()
		xs := figs[0].Xs()
		top := xs[len(xs)-1]
		b.ReportMetric(figs[0].Value("Libnids", top), "libnids-lost%@max")
		b.ReportMetric(figs[0].Value("Scap", top), "scap-lost%@max")
	}
}

// BenchmarkFig6PatternMatching — paper Figure 6: pattern matching loss,
// match accuracy, and lost streams.
func BenchmarkFig6PatternMatching(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		figs := r.Fig6()
		b.ReportMetric(figs[1].Value("Scap", 6), "scap-matched%@6G")
		b.ReportMetric(figs[1].Value("Libnids", 6), "libnids-matched%@6G")
		b.ReportMetric(figs[2].Value("Scap", 6), "scap-lost-streams%@6G")
	}
}

// BenchmarkFig7CacheMisses — paper Figure 7: modeled L2 misses per packet.
func BenchmarkFig7CacheMisses(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		fig := r.Fig7()
		xs := fig.Xs()
		b.ReportMetric(fig.Value("Scap", xs[0]), "scap-misses/pkt")
		b.ReportMetric(fig.Value("Libnids", xs[0]), "libnids-misses/pkt")
		b.ReportMetric(fig.Value("Snort", xs[0]), "snort-misses/pkt")
	}
}

// BenchmarkFig8CutoffSweep — paper Figure 8: stream size cutoffs at
// 4 Gbit/s, kernel/NIC enforcement vs user-level.
func BenchmarkFig8CutoffSweep(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		figs := r.Fig8()
		b.ReportMetric(figs[0].Value("Scap w/o FDIR", 10), "scap-loss%@10KB")
		b.ReportMetric(figs[0].Value("Libnids", 10), "libnids-loss%@10KB")
		b.ReportMetric(figs[1].Value("Scap w/o FDIR", 10), "scap-cpu%@10KB")
	}
}

// BenchmarkFig9Priorities — paper Figure 9: PPL high- vs low-priority loss.
func BenchmarkFig9Priorities(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		fig := r.Fig9()
		b.ReportMetric(fig.Value("High-priority streams", 6), "high-loss%@6G")
		b.ReportMetric(fig.Value("Low-priority streams", 6), "low-loss%@6G")
	}
}

// BenchmarkFig10Multicore — paper Figure 10: worker scaling.
func BenchmarkFig10Multicore(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		figs := r.Fig10()
		b.ReportMetric(figs[1].Value("Max loss-free rate", 1), "Gbps@1worker")
		b.ReportMetric(figs[1].Value("Max loss-free rate", 8), "Gbps@8workers")
	}
}

// BenchmarkFig11Analytic — paper Figure 11: M/M/1/N loss probabilities.
func BenchmarkFig11Analytic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := bench.Fig11()
		b.ReportMetric(fig.Value("rho=0.9", 150), "P(loss)rho0.9N150")
	}
}

// BenchmarkFig12Analytic — paper Figure 12: multi-priority chain.
func BenchmarkFig12Analytic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := bench.Fig12()
		b.ReportMetric(fig.Value("High-priority", 20), "P(loss)highN20")
	}
}

// --- Ablation benchmarks (DESIGN.md §5) ---

// BenchmarkAblationEngineOnly measures the raw kernel-path engine: decode,
// flow tracking, reassembly, chunking — no virtual time, no workers.
func BenchmarkAblationEngineOnly(b *testing.B) {
	g := trace.NewGenerator(trace.GenConfig{Seed: 1, Flows: 1 << 30, Concurrency: 64})
	frames := trace.Collect(g, 4096)
	eng := core.NewEngine(core.Options{
		Config: core.Config{Cutoff: core.CutoffUnlimited, Mode: reassembly.ModeFast},
		Mem:    mem.New(mem.Config{Size: 1 << 30}),
		Queue:  event.NewQueue(1 << 10),
	})
	q := eng.Queue()
	var bytes int64
	for _, f := range frames {
		bytes += int64(len(f))
	}
	b.SetBytes(bytes / int64(len(frames)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := frames[i%len(frames)]
		eng.HandleFrame(f, int64(i)*1000)
		for {
			ev, ok := q.Poll()
			if !ok {
				break
			}
			if ev.Accounted > 0 {
				// Release through the engine's manager implicitly: the
				// queue consumer role.
				_ = ev
			}
		}
	}
}

// BenchmarkAblationCopyPath drives the one-copy path (engine writing
// payload straight into stream chunks) and the two-copy path (ring copy
// plus user-level reassembly copy) on identical traffic. Note it measures
// the wall-clock of *these Go implementations* — the engine does strictly
// more per frame (chunking, events, accounting) than the lean baseline —
// not the modeled kernel/user costs behind Figure 4, which live in
// internal/sim's calibrated model.
func BenchmarkAblationCopyPath(b *testing.B) {
	g := trace.NewGenerator(trace.GenConfig{Seed: 2, Flows: 1 << 30, Concurrency: 64})
	frames := trace.Collect(g, 4096)

	b.Run("scap-one-copy", func(b *testing.B) {
		mm := mem.New(mem.Config{Size: 1 << 30})
		q := event.NewQueue(1 << 12)
		eng := core.NewEngine(core.Options{
			Config: core.Config{Cutoff: core.CutoffUnlimited, Mode: reassembly.ModeFast},
			Mem:    mm, Queue: q,
		})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.HandleFrame(frames[i%len(frames)], int64(i)*1000)
			for {
				ev, ok := q.Poll()
				if !ok {
					break
				}
				if ev.Accounted > 0 {
					mm.Release(ev.Accounted)
				}
			}
		}
	})
	b.Run("userland-two-copies", func(b *testing.B) {
		ring := pcapring.New(64<<20, 0)
		nids := baseline.NewLibnids(0, baseline.CutoffUnlimited, nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ring.Push(frames[i%len(frames)], int64(i)*1000) {
				f, _ := ring.Pop()
				nids.ProcessFrame(f)
			}
		}
	})
}

// BenchmarkAblationCutoffPlacement measures how much kernel work a 10 KB
// cutoff saves inside the engine (discard-early) versus processing
// everything — the mechanism behind Figure 8.
func BenchmarkAblationCutoffPlacement(b *testing.B) {
	g := trace.NewGenerator(trace.GenConfig{
		Seed: 3, Flows: 1 << 30, Concurrency: 32,
		Alpha: 0.8, MaxFlowBytes: 20 << 20,
	})
	frames := trace.Collect(g, 8192)
	for _, tc := range []struct {
		name   string
		cutoff int64
	}{
		{"no-cutoff", core.CutoffUnlimited},
		{"cutoff-10KB", 10 << 10},
		{"cutoff-0", 0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			mm := mem.New(mem.Config{Size: 1 << 30})
			q := event.NewQueue(1 << 12)
			eng := core.NewEngine(core.Options{
				Config: core.Config{Cutoff: tc.cutoff, Mode: reassembly.ModeFast},
				Mem:    mm, Queue: q,
			})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.HandleFrame(frames[i%len(frames)], int64(i)*1000)
				for {
					ev, ok := q.Poll()
					if !ok {
						break
					}
					if ev.Accounted > 0 {
						mm.Release(ev.Accounted)
					}
				}
			}
		})
	}
}

// BenchmarkAblationChunkSize sweeps the chunk size (the paper fixes it at
// 16 KB): small chunks pay per-event overhead, huge chunks delay delivery.
func BenchmarkAblationChunkSize(b *testing.B) {
	g := trace.NewGenerator(trace.GenConfig{Seed: 5, Flows: 1 << 30, Concurrency: 32})
	frames := trace.Collect(g, 8192)
	for _, size := range []int{1 << 10, 4 << 10, 16 << 10, 64 << 10} {
		b.Run(fmtKB(size), func(b *testing.B) {
			mm := mem.New(mem.Config{Size: 1 << 30})
			q := event.NewQueue(1 << 12)
			eng := core.NewEngine(core.Options{
				Config: core.Config{Cutoff: core.CutoffUnlimited, Mode: reassembly.ModeFast, ChunkSize: size},
				Mem:    mm, Queue: q,
			})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.HandleFrame(frames[i%len(frames)], int64(i)*1000)
				for {
					ev, ok := q.Poll()
					if !ok {
						break
					}
					if ev.Accounted > 0 {
						mm.Release(ev.Accounted)
					}
				}
			}
		})
	}
}

// BenchmarkAblationStrictVsFast compares the reassembly disciplines on
// mildly reordered traffic.
func BenchmarkAblationStrictVsFast(b *testing.B) {
	g := trace.NewGenerator(trace.GenConfig{
		Seed: 6, Flows: 1 << 30, Concurrency: 32, ReorderProb: 0.05,
	})
	frames := trace.Collect(g, 8192)
	for _, mode := range []reassembly.Mode{reassembly.ModeFast, reassembly.ModeStrict} {
		b.Run(mode.String(), func(b *testing.B) {
			mm := mem.New(mem.Config{Size: 1 << 30})
			q := event.NewQueue(1 << 12)
			eng := core.NewEngine(core.Options{
				Config: core.Config{Cutoff: core.CutoffUnlimited, Mode: mode},
				Mem:    mm, Queue: q,
			})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.HandleFrame(frames[i%len(frames)], int64(i)*1000)
				for {
					ev, ok := q.Poll()
					if !ok {
						break
					}
					if ev.Accounted > 0 {
						mm.Release(ev.Accounted)
					}
				}
			}
		})
	}
}

func fmtKB(n int) string {
	return fmt.Sprintf("%dKB", n>>10)
}

// BenchmarkAblationSimulatedNIC prices the simulated NIC's receive path
// (RSS + FDIR lookup) on its own.
func BenchmarkAblationSimulatedNIC(b *testing.B) {
	s := sim.NewScapSim(sim.ScapConfig{
		Engine: core.Config{Cutoff: core.CutoffUnlimited, Mode: reassembly.ModeFast},
	})
	_ = s // pipeline construction cost only; the NIC micro-bench lives in internal/nic
	g := trace.NewGenerator(trace.GenConfig{Seed: 4, Flows: 1 << 30, Concurrency: 64})
	frames := trace.Collect(g, 2048)
	b.ResetTimer()
	src := &trace.SliceSource{Frames: frames}
	for i := 0; i < b.N; i++ {
		src.Reset()
		sim.NewScapSim(sim.ScapConfig{
			Engine:  core.Config{Cutoff: core.CutoffUnlimited, Mode: reassembly.ModeFast},
			Workers: 1,
		}).Run(src, 1e9)
	}
}
