package scap

import (
	"fmt"
	"sync"

	"scap/internal/bpf"
	"scap/internal/pkt"
)

// App is one of several applications sharing a single capture socket
// (paper §5.6). All apps share one stream memory buffer and one in-kernel
// reassembly pass; the capture core is configured with the union of their
// requirements (the largest cutoff, streams matching at least one filter),
// and each app's own filter and cutoff are applied at delivery, marking
// which applications receive each stream.
//
// Create apps with Handle.NewApp before StartCapture. When at least one
// app exists, the socket-level Dispatch* callbacks are not used.
type App struct {
	h      *Handle
	name   string
	filter *bpf.Filter
	expr   string
	// cutoff is this app's view; negative means unlimited.
	cutoff    int64
	hasCutoff bool

	onCreate Handler
	onData   Handler
	onClose  Handler

	// delivered tracks per-stream bytes handed to this app, enforcing the
	// app cutoff at delivery. Guarded by mu: streams from different
	// worker goroutines may land here.
	mu        sync.Mutex
	delivered map[uint64]int64
}

// NewApp registers a new application on the socket.
func (h *Handle) NewApp(name string) (*App, error) {
	if h.started {
		return nil, ErrStarted
	}
	a := &App{h: h, name: name, cutoff: CutoffUnlimited, delivered: make(map[uint64]int64)}
	h.apps = append(h.apps, a)
	return a, nil
}

// SetFilter restricts this app to streams matching the expression.
func (a *App) SetFilter(expr string) error {
	if a.h.started {
		return ErrStarted
	}
	f, err := bpf.Parse(expr)
	if err != nil {
		return err
	}
	a.filter, a.expr = f, expr
	return nil
}

// SetCutoff bounds how much of each stream this app receives. The capture
// core keeps collecting up to the largest cutoff any app requested.
func (a *App) SetCutoff(cutoff int64) error {
	if a.h.started {
		return ErrStarted
	}
	a.cutoff, a.hasCutoff = cutoff, true
	return nil
}

// DispatchCreation registers this app's stream-creation callback.
func (a *App) DispatchCreation(fn Handler) { a.onCreate = fn }

// DispatchData registers this app's stream-data callback.
func (a *App) DispatchData(fn Handler) { a.onData = fn }

// DispatchTermination registers this app's stream-termination callback.
func (a *App) DispatchTermination(fn Handler) { a.onClose = fn }

// Name returns the app's registration name.
func (a *App) Name() string { return a.name }

// matches reports whether the app wants the stream (either direction).
func (a *App) matches(key FlowKey) bool {
	if a.filter == nil {
		return true
	}
	p := &pkt.Packet{Key: key, IPVersion: ipVersionOf(key)}
	if a.filter.Match(p) {
		return true
	}
	p.Key = key.Reverse()
	return a.filter.Match(p)
}

func ipVersionOf(key FlowKey) uint8 {
	if key.SrcIP.Is4() {
		return 4
	}
	return 6
}

// resolveApps folds the apps' requirements into the engine configuration:
// the kernel keeps the superset, apps subset at delivery.
func (h *Handle) resolveApps() error {
	if len(h.apps) == 0 {
		return nil
	}
	// Cutoff: the largest requested (unlimited wins).
	maxCutoff := int64(0)
	unlimited := false
	allSet := true
	for _, a := range h.apps {
		if !a.hasCutoff {
			allSet = false
			break
		}
		if a.cutoff < 0 {
			unlimited = true
		} else if a.cutoff > maxCutoff {
			maxCutoff = a.cutoff
		}
	}
	switch {
	case !allSet || unlimited:
		h.engCfg.Cutoff = CutoffUnlimited
	default:
		h.engCfg.Cutoff = maxCutoff
	}
	// Filter: streams matching at least one app filter are kept; if any
	// app is unfiltered the kernel filter is dropped entirely. The union
	// is built by composing the original expressions.
	expr := ""
	for _, a := range h.apps {
		if a.filter == nil {
			h.engCfg.Filter = nil
			return nil
		}
		if expr != "" {
			expr += " or "
		}
		expr += "(" + a.expr + ")"
	}
	f, err := bpf.Parse(expr)
	if err != nil {
		return fmt.Errorf("scap: composing app filters: %w", err)
	}
	h.engCfg.Filter = f
	return nil
}

// appEventKind mirrors the event types for app fan-out without importing
// the internal event package into the type's public surface.
type appEventKind uint8

const (
	appEvCreation appEventKind = iota
	appEvData
	appEvTermination
)

// dispatchApps fans one event out to every matching app.
func (h *Handle) dispatchApps(kind appEventKind, sd *Stream) {
	for _, a := range h.apps {
		if !a.matches(sd.Key()) {
			continue
		}
		switch kind {
		case appEvCreation:
			if a.onCreate != nil {
				a.onCreate(sd)
			}
		case appEvData:
			a.deliver(sd, a.onData)
		case appEvTermination:
			a.mu.Lock()
			delete(a.delivered, sd.ID())
			a.mu.Unlock()
			if a.onClose != nil {
				a.onClose(sd)
			}
		}
	}
}

// deliver applies the app's own cutoff to a data event and invokes fn.
func (a *App) deliver(sd *Stream, fn Handler) {
	if fn == nil {
		return
	}
	data := sd.Data
	if a.cutoff >= 0 {
		a.mu.Lock()
		seen := a.delivered[sd.ID()]
		remain := a.cutoff - seen
		if remain <= 0 {
			a.mu.Unlock()
			return
		}
		if int64(len(data)) > remain {
			data = data[:remain]
		}
		a.delivered[sd.ID()] = seen + int64(len(data))
		a.mu.Unlock()
	}
	// Hand the app a view with its truncated data; other fields shared.
	view := *sd
	view.Data = data
	fn(&view)
	if view.keep {
		sd.keep = true // any app keeping the chunk keeps it for all
	}
}
