package analysis

import (
	"strings"
	"testing"
)

func TestHotPathLockFixtures(t *testing.T) {
	_, pkg := loadFixtures(t, "hotpathlock")
	diags := checkAnalyzer(t, HotPathLock, pkg)

	// Exact-position checks: the diagnostic anchors on the call expression
	// of the acquisition.
	if got, want := positionOf(t, diags, "ring.Push: r.mu.Lock"), "fixtures.go:17:2"; got != want {
		t.Errorf("ring.Push diagnostic at %s, want %s", got, want)
	}
	if got, want := positionOf(t, diags, "ring.Snapshot: r.rw.RLock"), "fixtures.go:26:2"; got != want {
		t.Errorf("ring.Snapshot diagnostic at %s, want %s", got, want)
	}
	if got, want := positionOf(t, diags, "ring.TryPush: r.mu.TryLock"), "fixtures.go:35:5"; got != want {
		t.Errorf("ring.TryPush diagnostic at %s, want %s", got, want)
	}
	if got, want := positionOf(t, diags, "padded.Bump: p.Lock"), "fixtures.go:53:2"; got != want {
		t.Errorf("padded.Bump diagnostic at %s, want %s", got, want)
	}
}

func TestHotPathLockSuppression(t *testing.T) {
	// The Audited method carries //scaplint:ignore hotpathlock; the raw run
	// must find it, the filtered run must not.
	_, pkg := loadFixtures(t, "hotpathlock")
	raw := HotPathLock.Run(pkg)
	found := false
	for _, d := range raw {
		if d.Analyzer == "hotpathlock" && strings.Contains(d.Message, "ring.Audited") {
			found = true
		}
	}
	if !found {
		t.Fatal("raw run should flag ring.Audited before suppression filtering")
	}
	filtered := RunAll([]*Package{pkg}, []*Analyzer{HotPathLock})
	for _, d := range filtered {
		if strings.Contains(d.Message, "ring.Audited") {
			t.Errorf("suppressed diagnostic survived filtering: %s", d)
		}
	}
}
