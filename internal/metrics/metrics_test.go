package metrics

import (
	"fmt"
	"sync"
	"testing"
)

func TestCounterPerCoreTotals(t *testing.T) {
	r := NewRegistry(4)
	c := r.NewCounter(Desc{Name: "packets_total", Unit: "packets"})
	for core := 0; core < 4; core++ {
		cell := c.Cell(core)
		for i := 0; i <= core; i++ {
			cell.Inc()
		}
	}
	if got := c.Total(); got != 1+2+3+4 {
		t.Fatalf("Total = %d, want 10", got)
	}
	pc := c.PerCore(nil)
	want := []uint64{1, 2, 3, 4}
	for i, v := range want {
		if pc[i] != v {
			t.Fatalf("PerCore = %v, want %v", pc, want)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry(1)
	r.NewCounter(Desc{Name: "x"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewGauge(Desc{Name: "x"})
}

// TestRegistryConcurrency hammers cells, gauges, histograms, and the event
// log from many goroutines while another takes snapshots; the -race run is
// the real assertion.
func TestRegistryConcurrency(t *testing.T) {
	const cores = 4
	const iters = 2000
	r := NewRegistry(cores)
	c := r.NewCounter(Desc{Name: "frames_total"})
	g := r.NewGauge(Desc{Name: "inflight"})
	h := r.NewHistogram(Desc{Name: "batch"}, 8)
	var wg sync.WaitGroup
	for core := 0; core < cores; core++ {
		wg.Add(1)
		go func(core int) {
			defer wg.Done()
			cell := c.Cell(core)
			for i := 0; i < iters; i++ {
				cell.Add(2)
				g.Add(1)
				h.Observe(core, uint64(i%300))
				if i%512 == 0 {
					r.Events().Record(Event{Kind: EvRingFull, Core: core})
				}
			}
		}(core)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	s := r.Snapshot()
	if got := s.CounterTotal("frames_total"); got != cores*iters*2 {
		t.Fatalf("frames_total = %d, want %d", got, cores*iters*2)
	}
	if got := s.GaugeValue("inflight"); got != cores*iters {
		t.Fatalf("inflight = %d, want %d", got, cores*iters)
	}
	var hcount uint64
	for _, hs := range s.Histograms {
		if hs.Name == "batch" {
			hcount = hs.Count
		}
	}
	if hcount != cores*iters {
		t.Fatalf("histogram count = %d, want %d", hcount, cores*iters)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram(Desc{Name: "h"}, 2, 4) // le 1,2,4,8,16 + overflow
	for i, v := range []uint64{0, 1, 2, 3, 4, 5, 16, 17, 1000} {
		h.Observe(i%2, v) // spread over both rows; snapshot must merge them
	}
	s := h.snapshot()
	if s.Count != 9 {
		t.Fatalf("count = %d, want 9", s.Count)
	}
	if s.Sum != 0+1+2+3+4+5+16+17+1000 {
		t.Fatalf("sum = %d", s.Sum)
	}
	wantLe := []uint64{1, 2, 4, 8, 16, 0}
	wantN := []uint64{2, 1, 2, 1, 1, 2} // {0,1} {2} {3,4} {5} {16} {17,1000}
	if len(s.Buckets) != len(wantLe) {
		t.Fatalf("buckets = %d, want %d", len(s.Buckets), len(wantLe))
	}
	for i := range wantLe {
		if s.Buckets[i].Le != wantLe[i] || s.Buckets[i].Count != wantN[i] {
			t.Fatalf("bucket %d = {le:%d n:%d}, want {le:%d n:%d}",
				i, s.Buckets[i].Le, s.Buckets[i].Count, wantLe[i], wantN[i])
		}
	}
}

func TestEventLogWraparound(t *testing.T) {
	clock := int64(0)
	now := func() int64 { clock++; return clock }
	l := newEventLog(4, &now)
	for i := 0; i < 10; i++ {
		l.Record(Event{Kind: EvFDIRInstall, Value: int64(i)})
	}
	if l.Total() != 10 {
		t.Fatalf("total = %d, want 10", l.Total())
	}
	evs := l.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(evs))
	}
	for i, e := range evs {
		if want := int64(6 + i); e.Value != want {
			t.Fatalf("event %d value = %d, want %d (oldest-first order)", i, e.Value, want)
		}
		if e.KindName != "fdir_install" {
			t.Fatalf("kind name = %q", e.KindName)
		}
		if e.TimeUnixNano == 0 {
			t.Fatal("event not timestamped")
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvPPLEnter, EvPPLExit, EvRingFull, EvRingFullEnd,
		EvEventRingOverflow, EvFDIRInstall, EvFDIRRemove}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Fatalf("kind %d has bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if EventKind(200).String() != "unknown" {
		t.Fatal("out-of-range kind should stringify as unknown")
	}
}

func TestSlabExhaustionPanics(t *testing.T) {
	r := NewRegistry(1)
	for i := 0; i < slabSlots; i++ {
		r.NewCounter(Desc{Name: fmt.Sprintf("c%d", i)})
	}
	defer func() {
		if recover() == nil {
			t.Fatal("slab exhaustion did not panic")
		}
	}()
	r.NewCounter(Desc{Name: "one_too_many"})
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry(1)
	v := uint64(7)
	r.NewCounterFunc(Desc{Name: "ext_total"}, func() uint64 { return v })
	r.NewGaugeFunc(Desc{Name: "ext_now"}, func() int64 { return int64(v) * 2 })
	s := r.Snapshot()
	if s.CounterTotal("ext_total") != 7 || s.GaugeValue("ext_now") != 14 {
		t.Fatalf("func metrics: counter=%d gauge=%d", s.CounterTotal("ext_total"), s.GaugeValue("ext_now"))
	}
}
