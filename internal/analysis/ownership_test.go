package analysis

import (
	"strings"
	"testing"
)

func TestOwnership(t *testing.T) {
	_, pkg := loadFixtures(t, "ownership")
	diags := checkAnalyzer(t, Ownership, pkg)

	// Exact positions: the wrong-role push inside consumeLoop (line 57)
	// and the transitive one inside helperPush.
	if got := positionOf(t, diags, "consumeLoop → ring.push"); got != "fixtures.go:57:8" {
		t.Errorf("direct violation at %s, want fixtures.go:57:8", got)
	}
	if got := positionOf(t, diags, "helperPush → ring.push"); got != "fixtures.go:65:8" {
		t.Errorf("transitive violation at %s, want fixtures.go:65:8", got)
	}

	// The transitive chain names every hop from the entry point.
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "consumeLoop → helperPush → ring.push") {
			found = true
		}
	}
	if !found {
		t.Errorf("no diagnostic carries the transitive chain consumeLoop → helperPush → ring.push:\n%v", diags)
	}
}

// TestOwnershipRolePropagation pins the graph semantics the contracts
// rely on: go statements and plain references do not leak roles.
func TestOwnershipRolePropagation(t *testing.T) {
	_, pkg := loadFixtures(t, "ownership")
	diags := RunAll([]*Package{pkg}, []*Analyzer{Ownership})
	for _, d := range diags {
		// produceLoop launches consumeLoop with go; if go edges leaked
		// the producer role, pop would be flagged producer-side.
		if strings.Contains(d.Message, "ring.pop") {
			t.Errorf("role leaked across a go statement or reference: %s", d)
		}
		// setup touches everything but is unrooted: never a violation.
		if strings.Contains(d.Message, "setup") {
			t.Errorf("unrooted setup code was flagged: %s", d)
		}
	}
}
