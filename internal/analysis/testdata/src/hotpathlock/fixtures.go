// Package fixtures exercises the hotpathlock analyzer: mutex acquisition
// inside //scap:hotpath functions.
package fixtures

import "sync"

type ring struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// Push locks a plain mutex on the per-event path.
//
//scap:hotpath
func (r *ring) Push(v int) {
	r.mu.Lock() // want hotpathlock "ring.Push: r.mu.Lock acquires a sync.Mutex"
	r.n = v
	r.mu.Unlock()
}

// Snapshot read-locks an RWMutex on the hot path.
//
//scap:hotpath
func (r *ring) Snapshot() int {
	r.rw.RLock() // want hotpathlock "ring.Snapshot: r.rw.RLock acquires a sync.RWMutex"
	defer r.rw.RUnlock()
	return r.n
}

// TryPush still serializes when the TryLock succeeds.
//
//scap:hotpath
func (r *ring) TryPush(v int) bool {
	if r.mu.TryLock() { // want hotpathlock "ring.TryPush: r.mu.TryLock acquires a sync.Mutex"
		r.n = v
		r.mu.Unlock()
		return true
	}
	return false
}

// padded embeds its mutex; the promoted method must still be resolved.
type padded struct {
	sync.Mutex
	n int
}

// Bump locks through the embedded mutex.
//
//scap:hotpath
func (p *padded) Bump() {
	p.Lock() // want hotpathlock "padded.Bump: p.Lock acquires a sync.Mutex"
	p.n++
	p.Unlock()
}

// Cold is unmarked: locking is fine off the hot path.
func (r *ring) Cold() {
	r.mu.Lock()
	r.n = 0
	r.mu.Unlock()
}

// Audited documents a vetted exception with a justification.
//
//scap:hotpath
func (r *ring) Audited() {
	r.mu.Lock() //scaplint:ignore hotpathlock audited: uncontended startup-only fallback
	r.n++
	r.mu.Unlock()
}

// fakeLock has Lock/Unlock methods but is not a sync mutex; acquiring it
// must not be flagged.
type fakeLock struct{ held bool }

func (f *fakeLock) Lock()   { f.held = true }
func (f *fakeLock) Unlock() { f.held = false }

// Fake locks a non-sync type on the hot path: no diagnostic.
//
//scap:hotpath
func Fake(f *fakeLock) {
	f.Lock()
	f.Unlock()
}
