// Command tracegen synthesizes a network workload and writes it as a pcap
// file, standing in for the paper's 46 GB campus trace. The flow-size
// distribution is a bounded Pareto; see internal/trace for the knobs.
//
// Usage:
//
//	tracegen -o trace.pcap -flows 5000 -rate 1e9
package main

import (
	"flag"
	"fmt"
	"os"

	"scap/internal/trace"
)

func main() {
	var (
		out     = flag.String("o", "trace.pcap", "output pcap path")
		flows   = flag.Int("flows", 5000, "number of flows")
		conc    = flag.Int("concurrency", 128, "concurrent flows")
		seed    = flag.Int64("seed", 1, "random seed")
		alpha   = flag.Float64("alpha", 0.8, "Pareto shape for flow sizes")
		minB    = flag.Int("min", 400, "min flow payload bytes")
		maxB    = flag.Int("max", 20<<20, "max flow payload bytes")
		tcp     = flag.Float64("tcp", 0.954, "TCP fraction of flows")
		rate    = flag.Float64("rate", 1e9, "timestamp pacing in bits/s")
		reorder = flag.Float64("reorder", 0, "per-segment reorder probability")
		dup     = flag.Float64("dup", 0, "per-segment duplication probability")
	)
	flag.Parse()

	g := trace.NewGenerator(trace.GenConfig{
		Seed:          *seed,
		Flows:         *flows,
		Concurrency:   *conc,
		Alpha:         *alpha,
		MinFlowBytes:  *minB,
		MaxFlowBytes:  *maxB,
		TCPFraction:   *tcp,
		ReorderProb:   *reorder,
		DuplicateProb: *dup,
	})
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	defer f.Close()
	w := trace.NewPcapWriter(f, 0)
	frames, end := trace.Replay(g, *rate, func(frame []byte, ts int64) bool {
		if err := w.Write(frame, ts); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return true
	})
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d packets, %d MB, %d flows, %.2fs of virtual time\n",
		*out, frames, g.Bytes>>20, g.FlowsMade, float64(end)/1e9)
}
