// Package flowtab implements the Scap kernel module's flow table as a
// cache-line-conscious open-addressing table: a flat array of slot groups
// (one cache line each: eight control bytes, eight generation stamps, eight
// record indices) probed with SWAR fingerprint scans, stream_t records in
// paged never-moving slabs (pointers stay valid across growth), seed
// randomization against algorithmic-complexity attacks, dynamic growth so
// the number of tracked streams is never artificially limited (the property
// behind Figure 5), and generation-based age classes replacing the paper's
// exact LRU list: incremental sweeps from the idle path expire stale
// streams (§5.2) and eviction under memory pressure picks a victim from the
// oldest populated age class ("always stores newer streams").
package flowtab

import (
	"scap/internal/pkt"
	"scap/internal/reassembly"
)

// Status describes a stream's lifecycle state, mirroring sd->status.
type Status uint8

const (
	// StatusActive: the stream is open and collecting.
	StatusActive Status = iota
	// StatusClosed: terminated by FIN or RST.
	StatusClosed
	// StatusTimedOut: expired by the inactivity timeout.
	StatusTimedOut
	// StatusCutoff: the stream exceeded its cutoff; statistics are still
	// maintained but no further data is collected.
	StatusCutoff
	// StatusEvicted: removed to make room for newer streams.
	StatusEvicted
)

func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusClosed:
		return "closed"
	case StatusTimedOut:
		return "timed-out"
	case StatusCutoff:
		return "cutoff"
	case StatusEvicted:
		return "evicted"
	}
	return "unknown"
}

// Stats are the per-stream counters exposed through the API (paper §3.2).
type Stats struct {
	Pkts           uint64 // packets seen for this direction
	Bytes          uint64 // wire bytes seen
	PayloadBytes   uint64 // transport payload bytes seen
	CapturedBytes  uint64 // payload bytes actually stored
	DiscardedPkts  uint64 // dropped on purpose (cutoff, filter, discard)
	DiscardedBytes uint64
	DroppedPkts    uint64 // lost involuntarily (overload / PPL)
	DroppedBytes   uint64
	Start          int64 // timestamp of the first packet
	End            int64 // timestamp of the most recent packet
}

// Stream is the stream_t record: one direction of one transport-layer flow.
type Stream struct {
	// ID is unique per direction; the two directions of a connection have
	// distinct IDs and point at each other through Opposite.
	ID  uint64
	Key pkt.FlowKey
	// Dir is DirClient for the connection initiator's direction.
	Dir      pkt.Direction
	Opposite *Stream

	Status Status
	Error  reassembly.Flags
	Stats  Stats

	// Per-stream tunables (scap_set_stream_*). Cutoff < 0 means inherit
	// the socket default at creation time; the engine resolves it.
	Cutoff            int64
	Priority          int
	ChunkSize         int
	OverlapSize       int
	FlushTimeout      int64
	InactivityTimeout int64

	// SawSYN/SawHandshake drive FlagBadHandshake and the decision to
	// always capture handshake packets.
	SawSYN       bool
	SawHandshake bool
	// FINSeq is the sequence number carried by a FIN/RST, used to estimate
	// flow size when the NIC dropped the middle of the flow (paper §5.5).
	FINSeq   uint32
	HasFIN   bool
	Asm      *reassembly.Assembler
	HWFilter bool // an FDIR drop-filter pair is installed for this direction

	// Engine-owned chunk state (opaque to this package).
	Chunk any
	// User cookie (sd->user).
	User any

	// Table-owned placement state. ref is the record's index in the
	// table's paged record store, assigned once at page allocation and
	// preserved across Recycle; hash is the mixed 64-bit key hash and slot
	// the record's current slot index (group*slotsPerGroup+lane), both
	// valid only while inTable.
	ref        uint32
	slot       uint64
	hash       uint64
	lastAccess int64
	inTable    bool
}

// LastAccess returns the virtual time of the stream's most recent packet.
func (s *Stream) LastAccess() int64 { return s.lastAccess }

// InTable reports whether the stream is currently tracked.
func (s *Stream) InTable() bool { return s.inTable }

// Duration returns End-Start.
func (s *Stream) Duration() int64 { return s.Stats.End - s.Stats.Start }

// EstimatedBytes returns the best available flow size: the payload byte
// counter, or — when a hardware filter suppressed the middle of the flow —
// the span implied by the FIN sequence number (paper §5.5).
func (s *Stream) EstimatedBytes() uint64 {
	if s.HasFIN && s.Asm != nil && s.Asm.Initialized() {
		if span := int64(int32(s.FINSeq - s.Asm.NextSeq())); span > 0 {
			return s.Stats.PayloadBytes + uint64(span)
		}
	}
	return s.Stats.PayloadBytes
}
