// Package event implements the per-core event queues between the Scap
// kernel-path engine and the user-level worker threads (paper §5.4): stream
// creation, stream data, and stream termination events, carried in a
// single-producer single-consumer lock-free ring with slow-path parking.
package event

import (
	"sync/atomic"

	"scap/internal/flowtab"
	"scap/internal/mem"
)

// Type discriminates events.
type Type uint8

const (
	// Creation fires when a new stream is tracked.
	Creation Type = iota
	// Data fires when a chunk is ready: full, flushed by timeout, cut off,
	// or final at termination.
	Data
	// Termination fires when a stream ends (FIN/RST, timeout, eviction).
	Termination
)

func (t Type) String() string {
	switch t {
	case Creation:
		return "creation"
	case Data:
		return "data"
	case Termination:
		return "termination"
	}
	return "unknown"
}

// Event is one queue entry. Data events carry the chunk payload; the slice
// is owned by the stream's chunk storage and is valid until the worker
// returns from its callback (after which the engine may recycle it).
type Event struct {
	Type Type
	// Stream is the live kernel record. Workers must not dereference it —
	// it is mutated concurrently by the engine; it serves only as an
	// opaque handle for control operations (validated against Info.ID).
	Stream *flowtab.Stream
	// Info is the consistent snapshot taken when the event was enqueued.
	Info flowtab.Info
	// Chunk fields, meaningful for Data events.
	Data       []byte
	HoleBefore bool // reassembly skipped a hole before this chunk
	Last       bool // final chunk of the stream
	// Accounted is how many bytes of Data count against the stream-memory
	// budget (overlap bytes carried from the previous chunk are not
	// counted twice); the consumer releases them after the callback.
	Accounted int
	// Block is the arena block backing Data (and the Pkts slab). The
	// consumer owns it for the callback's duration, then either returns it
	// to the block pool (mem.ReturnBlocks) or hands it back to the engine
	// via a KeepChunk control message. The zero value means no block (e.g.
	// creation/termination events).
	Block mem.Handle
	// Pkts are the per-packet records for scap_next_stream_packet, present
	// when the socket was created with packet delivery enabled.
	Pkts []PacketRecord
	// EnqueueNS is the capture-clock (metrics.Nanotime) stamp taken when the
	// engine published the event to the ring; the worker diffs it at pop time
	// into the ring→worker stage-latency histogram. Zero means unstamped.
	EnqueueNS int64
}

// PacketRecord describes one captured packet of a chunk for packet-based
// delivery (paper §5.7): a capture header plus the location of the
// packet's payload bytes within the chunk.
type PacketRecord struct {
	TS      int64
	WireLen int
	CapLen  int
	Seq     uint32
	Flags   uint8
	// Off/Len locate the payload inside the chunk's Data; Len 0 means the
	// bytes are not present in this chunk (duplicate or dropped data).
	Off int32
	Len int32
}

// Queue is the per-core event ring: a lock-free single-producer
// single-consumer ring buffer. The kernel-path engine is the only producer;
// the worker thread draining a given queue is the only consumer (Close and
// the read-only accessors may be called from anywhere).
//
// Memory model: the producer writes buf slots and then publishes them with
// tail.Store; the consumer observes tail.Load before reading the slots, so
// the atomic pair carries the happens-before edge. Symmetrically the
// consumer zeroes a drained slot before head.Store, and the producer checks
// head.Load before reusing it. head and tail are free-running uint64
// cursors (they never wrap in practice); capacity is a power of two so slot
// indexing is a mask, and tail-head is the queue length. Each side keeps a
// cached snapshot of the other side's cursor (headCache, tailCache) and
// refreshes it only when the cached value implies full/empty, which keeps
// the fast path free of cross-core cache-line traffic.
//
// Blocking is slow-path-only: Wait advertises the consumer as parked
// (parked.Store), re-polls to close the race with a concurrent publish, and
// only then blocks on the wake channel. The producer wakes it only on a
// parked→unparked transition instead of signaling per event. With Go's
// sequentially consistent atomics, either the parked consumer's re-poll
// observes the producer's tail.Store, or the producer's parked.Load
// observes parked=true and sends the wakeup — a lost sleep is impossible.
// Spurious tokens (producer observed parked just as the consumer unparked
// itself) merely cause one extra loop iteration.
//
//scap:shared
//scap:spsc producer=engine consumer=worker
type Queue struct {
	buf  []Event
	mask uint64

	// Producer-owned cache line: the write cursor and the producer's
	// snapshot of the consumer cursor.
	_         [64]byte
	tail      atomic.Uint64
	headCache uint64

	// Consumer-owned cache line: the read cursor and the consumer's
	// snapshot of the producer cursor.
	_         [64]byte
	head      atomic.Uint64
	tailCache uint64

	// Shared cold state: touched only on overflow, park, and shutdown.
	_       [64]byte
	dropped atomic.Uint64
	closed  atomic.Bool
	parked  atomic.Bool
	wake    chan struct{}
}

// DefaultQueueCap is the default ring capacity.
const DefaultQueueCap = 1 << 16

// NewQueue creates a queue with at least the given capacity (0 selects the
// default). Capacity is rounded up to a power of two; Cap reports the
// actual value.
func NewQueue(capacity int) *Queue {
	if capacity <= 0 {
		capacity = DefaultQueueCap
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Queue{
		buf:  make([]Event, n),
		mask: uint64(n - 1),
		wake: make(chan struct{}, 1),
	}
}

// wakeConsumer unparks the consumer if it advertised itself as parked. The
// CAS guarantees at most one side sends the token for a given park, and the
// buffered channel makes the send non-blocking.
func (q *Queue) wakeConsumer() {
	if q.parked.Load() && q.parked.CompareAndSwap(true, false) {
		select {
		case q.wake <- struct{}{}:
		default:
		}
	}
}

// Push enqueues an event; it reports false if the ring is full (counting a
// drop) or closed. Producer side only.
//
//scap:hotpath
//scap:produce
func (q *Queue) Push(e Event) bool {
	if q.closed.Load() {
		return false
	}
	t := q.tail.Load()
	if t-q.headCache >= uint64(len(q.buf)) {
		q.headCache = q.head.Load()
		if t-q.headCache >= uint64(len(q.buf)) {
			q.dropped.Add(1)
			return false
		}
	}
	q.buf[t&q.mask] = e
	q.tail.Store(t + 1)
	q.wakeConsumer()
	return true
}

// PushBatch enqueues as many of evs as fit and returns how many were
// accepted (0 if the queue is closed). Events beyond the accepted prefix
// are counted as drops; the caller unwinds their accounting. One tail
// publication and at most one wakeup cover the whole batch. Producer side
// only.
//
//scap:hotpath
//scap:produce
func (q *Queue) PushBatch(evs []Event) int {
	if len(evs) == 0 || q.closed.Load() {
		return 0
	}
	t := q.tail.Load()
	free := uint64(len(q.buf)) - (t - q.headCache)
	if free < uint64(len(evs)) {
		q.headCache = q.head.Load()
		free = uint64(len(q.buf)) - (t - q.headCache)
	}
	k := uint64(len(evs))
	if k > free {
		q.dropped.Add(k - free)
		k = free
	}
	for i := uint64(0); i < k; i++ {
		q.buf[(t+i)&q.mask] = evs[i]
	}
	if k > 0 {
		q.tail.Store(t + k)
		q.wakeConsumer()
	}
	return int(k)
}

// Poll removes the next event without blocking. Consumer side only.
//
//scap:consume
func (q *Queue) Poll() (Event, bool) {
	h := q.head.Load()
	if h == q.tailCache {
		q.tailCache = q.tail.Load()
		if h == q.tailCache {
			return Event{}, false
		}
	}
	i := h & q.mask
	e := q.buf[i]
	q.buf[i] = Event{}
	q.head.Store(h + 1)
	return e, true
}

// PopBatch drains up to len(dst) events into dst and returns the count —
// the worker's drain-a-batch-per-wakeup path. Consumer side only.
//
//scap:consume
func (q *Queue) PopBatch(dst []Event) int {
	if len(dst) == 0 {
		return 0
	}
	h := q.head.Load()
	avail := q.tailCache - h
	if avail < uint64(len(dst)) {
		// The cached tail can't fill the whole batch; refresh it so one
		// wakeup drains as much as the producer has published.
		q.tailCache = q.tail.Load()
		avail = q.tailCache - h
		if avail == 0 {
			return 0
		}
	}
	k := uint64(len(dst))
	if k > avail {
		k = avail
	}
	for i := uint64(0); i < k; i++ {
		idx := (h + i) & q.mask
		dst[i] = q.buf[idx]
		q.buf[idx] = Event{}
	}
	q.head.Store(h + k)
	return int(k)
}

// Wait blocks until an event is available or the queue is closed; it
// returns false only when closed and drained — the worker's poll() loop.
// Consumer side only.
//
//scap:consume
func (q *Queue) Wait() (Event, bool) {
	for {
		if e, ok := q.Poll(); ok {
			return e, true
		}
		if q.closed.Load() {
			// A push may have raced ahead of Close; drain it.
			return q.Poll()
		}
		q.parked.Store(true)
		// Re-poll after advertising the park: a producer that published
		// before seeing parked=true is caught here, so the block below
		// can never miss its wakeup.
		if e, ok := q.Poll(); ok {
			q.parked.Store(false)
			return e, true
		}
		if q.closed.Load() {
			q.parked.Store(false)
			return q.Poll()
		}
		<-q.wake
	}
}

// Len returns the number of queued events (a racy snapshot when the queue
// is in motion).
func (q *Queue) Len() int {
	t := q.tail.Load()
	h := q.head.Load()
	if h >= t {
		return 0
	}
	return int(t - h)
}

// Cap returns the ring capacity (the requested capacity rounded up to a
// power of two).
func (q *Queue) Cap() int { return len(q.buf) }

// Dropped returns the number of events discarded because the ring was full
// — the analogue of a packet-capture buffer overflowing.
func (q *Queue) Dropped() uint64 { return q.dropped.Load() }

// Close wakes a parked consumer; subsequent pushes fail. Pending events
// remain drainable via Poll/Wait. Safe to call from any goroutine.
func (q *Queue) Close() {
	q.closed.Store(true)
	// Unconditional token: the consumer may be between advertising the
	// park and blocking, so the parked flag alone cannot be trusted here.
	select {
	case q.wake <- struct{}{}:
	default:
	}
}
