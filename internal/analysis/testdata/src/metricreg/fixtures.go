// Package fixtures exercises the metricreg analyzer: only the atomic
// metrics fast path is allowed inside //scap:hotpath functions.
package fixtures

import "scap/internal/metrics"

// engine mirrors the real per-core engine shape: cells and histograms are
// bound at setup, only atomic updates happen per packet.
type engine struct {
	reg     *metrics.Registry
	packets *metrics.Cell
	memUsed *metrics.Gauge
	batch   *metrics.Histogram
	events  *metrics.EventLog
	counter *metrics.Counter
	flight  *metrics.FlightRecorder
}

// setup registers metrics outside the hot path: never flagged.
func setup(cores int) *engine {
	reg := metrics.NewRegistry(cores)
	c := reg.NewCounter(metrics.Desc{Name: "packets_total", Unit: "packets"})
	return &engine{
		reg:     reg,
		packets: c.Cell(0),
		memUsed: reg.NewGauge(metrics.Desc{Name: "mem_used", Unit: "bytes"}),
		batch:   reg.NewHistogram(metrics.Desc{Name: "batch", Unit: "events"}, 8),
		events:  reg.Events(),
		counter: c,
		flight:  reg.Flight(),
	}
}

// FastPath uses only allowlisted atomic operations: no diagnostics.
//
//scap:hotpath
func (e *engine) FastPath(n uint64) uint64 {
	e.packets.Add(n)
	e.packets.Inc()
	e.memUsed.Set(int64(n))
	e.memUsed.Add(1)
	e.batch.Observe(0, n)
	e.batch.ObserveEx(0, n, 7)
	e.events.Record(metrics.Event{Kind: metrics.EvPPLEnter, Value: int64(n)})
	e.flight.Note(0, metrics.FlightCutoff, int64(n), 0)
	e.batch.Observe(0, uint64(metrics.Nanotime()))
	return e.packets.Load()
}

// RegisterHot registers a counter per packet: flagged.
//
//scap:hotpath
func (e *engine) RegisterHot() {
	c := e.reg.NewCounter(metrics.Desc{Name: "oops", Unit: "packets"}) // want metricreg "RegisterHot: call to metrics.NewCounter in a hot path"
	c.Cell(0).Inc()                                                    // want metricreg "RegisterHot: call to metrics.Cell in a hot path"
}

// ConstructHot builds a whole registry on the packet path: flagged.
//
//scap:hotpath
func ConstructHot(cores int) *metrics.Registry {
	return metrics.NewRegistry(cores) // want metricreg "ConstructHot: call to metrics.NewRegistry in a hot path"
}

// SnapshotHot assembles a snapshot (registry mutex + allocation) per
// packet: flagged, including the cold Counter.Total read loop.
//
//scap:hotpath
func (e *engine) SnapshotHot() uint64 {
	s := e.reg.Snapshot() // want metricreg "SnapshotHot: call to metrics.Snapshot in a hot path"
	_ = s
	return e.counter.Total() // want metricreg "SnapshotHot: call to metrics.Total in a hot path"
}

// Cold is unmarked: registration and snapshots are fine off the hot path.
func (e *engine) Cold() uint64 {
	g := e.reg.NewGauge(metrics.Desc{Name: "cold", Unit: "bytes"})
	g.Set(1)
	s := e.reg.Snapshot()
	return s.CounterTotal("packets_total")
}

// Audited documents a vetted exception with a justification.
//
//scap:hotpath
func (e *engine) Audited() []metrics.Event {
	return e.events.Snapshot() //scaplint:ignore metricreg audited: drained only on the shutdown edge
}

// FlightDumpHot decodes the flight-recorder rings on the packet path:
// flagged with the flight-specific guidance (only the fixed-size no-alloc
// encoder Note may run here).
//
//scap:hotpath
func (e *engine) FlightDumpHot() []metrics.FlightRecord {
	_ = e.flight.Total()       // want metricreg "FlightDumpHot: call to metrics.FlightRecorder.Total in a hot path"
	return e.flight.Snapshot() // want metricreg "FlightDumpHot: call to metrics.FlightRecorder.Snapshot in a hot path"
}

// localMetrics is a non-metrics type whose method names collide with the
// registration surface; calling it on the hot path must not be flagged.
type localMetrics struct{ n uint64 }

func (l *localMetrics) NewCounter() uint64 { return l.n }
func (l *localMetrics) Snapshot() uint64   { return l.n }

// Lookalike calls same-named methods on a local type: no diagnostics.
//
//scap:hotpath
func Lookalike(l *localMetrics) uint64 {
	return l.NewCounter() + l.Snapshot()
}
