package scap

import (
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"
	"sync"
	"time"

	"scap/internal/core"
	"scap/internal/event"
	"scap/internal/trace"
)

// captureState owns the running goroutines of a started socket: one kernel
// goroutine per NIC queue and the configured number of worker goroutines —
// the user-space equivalent of the paper's per-core kernel thread plus
// worker thread pairs.
//
// Concurrency model: each engine is owned by its kernel goroutine (frames
// reach it only through its frameCh); workers touch streams only via the
// per-engine ctrl queue; injectors serialize on injectMu; everything else
// a foreign goroutine may read (engine counters, NIC stats, memory
// accounting) is protected at its source.
type captureState struct {
	h *Handle

	mu sync.Mutex
	// frameCh hands frames from the NIC to the kernel goroutines. It is
	// written once in start, before any goroutine runs, and is read-only
	// afterwards (the channels themselves provide the synchronization).
	frameCh []chan frameIn
	// stopped is guarded by mu, making stop idempotent.
	stopped  bool
	kernelWG sync.WaitGroup
	workerWG sync.WaitGroup

	injectMu sync.Mutex
	// lastTS is guarded by injectMu: concurrent injectors and the timer
	// tick agree on a strictly increasing virtual clock through it.
	lastTS    int64
	timerStop chan struct{}
}

type frameIn struct {
	data []byte
	ts   int64
}

func newCaptureState(h *Handle) *captureState {
	return &captureState{h: h, timerStop: make(chan struct{})}
}

func (c *captureState) start() {
	h := c.h
	c.frameCh = make([]chan frameIn, h.cfg.Queues)
	for q := range c.frameCh {
		c.frameCh[q] = make(chan frameIn, 1024)
	}
	// Kernel goroutines: one per queue, each owning its engine.
	for q := 0; q < h.cfg.Queues; q++ {
		c.kernelWG.Add(1)
		go c.kernelLoop(q)
	}
	// Worker goroutines.
	for w := 0; w < h.workers; w++ {
		c.workerWG.Add(1)
		go c.workerLoop(w)
	}
}

// kernelLoop is one core's softirq-equivalent: it pulls frames for its
// queue and drives the engine, running timer work between frames.
func (c *captureState) kernelLoop(q int) {
	defer c.kernelWG.Done()
	eng := c.h.engines[q]
	ticker := time.NewTicker(50 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case f, ok := <-c.frameCh[q]:
			if !ok {
				return
			}
			eng.HandleFrame(f.data, f.ts)
		case <-ticker.C:
			eng.CheckTimers(c.currentTS())
		}
	}
}

// workerLoop polls the worker's event queues, dispatching callbacks
// (the Scap stub's event-dispatch loop, §5.8).
func (c *captureState) workerLoop(w int) {
	defer c.workerWG.Done()
	h := c.h
	procTime := make(map[uint64]time.Duration)
	kept := make(map[uint64][]byte)
	var qs []*event.Queue
	var engs []*core.Engine
	for q := w; q < len(h.queues); q += h.workers {
		qs = append(qs, h.queues[q])
		engs = append(engs, h.engines[q])
	}
	if len(qs) == 0 {
		return
	}
	live := len(qs)
	closed := make([]bool, len(qs))
	for live > 0 {
		progressed := false
		for i, q := range qs {
			if closed[i] {
				continue
			}
			ev, ok := q.Poll()
			if !ok {
				continue
			}
			progressed = true
			c.dispatch(engs[i], &ev, procTime, kept)
		}
		if !progressed {
			// Block on the first open queue; others are polled again
			// after it yields (single-queue-per-worker is the common
			// configuration, where Wait alone drives the loop).
			i := firstOpen(closed)
			if i < 0 {
				return
			}
			ev, ok := qs[i].Wait()
			if !ok {
				closed[i] = true
				live--
				continue
			}
			c.dispatch(engs[i], &ev, procTime, kept)
		}
	}
}

func firstOpen(closed []bool) int {
	for i, c := range closed {
		if !c {
			return i
		}
	}
	return -1
}

// dispatch runs one event's callback with a Stream view. Kept chunks are
// merged in the stub: scap_keep_stream_chunk promises that the next
// invocation receives the previous and the new chunk together, which the
// worker guarantees locally since it sees each stream's events in order.
func (c *captureState) dispatch(eng *core.Engine, ev *event.Event, procTime map[uint64]time.Duration, kept map[uint64][]byte) {
	h := c.h
	sd := &Stream{
		info:    ev.Info,
		handle:  h,
		engine:  eng,
		raw:     ev.Stream,
		procCum: procTime[ev.Info.ID],
	}
	var fn Handler
	var kind appEventKind
	switch ev.Type {
	case event.Creation:
		fn, kind = h.onCreate, appEvCreation
	case event.Data:
		sd.Data = ev.Data
		if prev, ok := kept[ev.Info.ID]; ok {
			sd.Data = append(prev, ev.Data...)
			delete(kept, ev.Info.ID)
		}
		sd.HoleBefore = ev.HoleBefore
		sd.Last = ev.Last
		sd.pkts = ev.Pkts
		fn, kind = h.onData, appEvData
	case event.Termination:
		fn, kind = h.onClose, appEvTermination
	}
	start := time.Now()
	if len(h.apps) > 0 {
		h.dispatchApps(kind, sd)
		procTime[ev.Info.ID] = sd.procCum + time.Since(start)
	} else if fn != nil {
		fn(sd)
		procTime[ev.Info.ID] = sd.procCum + time.Since(start)
	}
	switch ev.Type {
	case event.Data:
		if sd.keep && !ev.Last {
			// Stash a copy for the next delivery; the chunk's budget
			// reservation is released normally — the kept copy is the
			// application's memory, not stream memory.
			cp := make([]byte, len(sd.Data))
			copy(cp, sd.Data)
			kept[ev.Info.ID] = cp
		}
		if ev.Accounted > 0 {
			h.mm.Release(ev.Accounted)
		}
		if ev.Last {
			delete(procTime, ev.Info.ID)
			delete(kept, ev.Info.ID)
		}
	case event.Termination:
		delete(procTime, ev.Info.ID)
		delete(kept, ev.Info.ID)
	}
}

func (c *captureState) currentTS() int64 {
	c.injectMu.Lock()
	defer c.injectMu.Unlock()
	return c.lastTS
}

// inject routes one frame through the NIC to its kernel goroutine.
func (c *captureState) inject(data []byte, ts int64) {
	c.injectMu.Lock()
	if ts <= c.lastTS {
		ts = c.lastTS + 1
	}
	c.lastTS = ts
	c.injectMu.Unlock()
	q := c.h.nicDev.Receive(data, ts)
	if q < 0 {
		return
	}
	f, ok := c.h.nicDev.Poll(q)
	if !ok {
		return
	}
	c.frameCh[q] <- frameIn{data: f.Data, ts: f.TS}
}

// stop flushes everything and joins the goroutines.
func (c *captureState) stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	c.mu.Unlock()

	for _, ch := range c.frameCh {
		close(ch)
	}
	c.kernelWG.Wait()
	// Final flush: expire and terminate every stream, then close queues
	// so workers drain and exit.
	for _, eng := range c.h.engines {
		eng.Shutdown()
	}
	for _, q := range c.h.queues {
		q.Close()
	}
	c.workerWG.Wait()
}

// --- Frame input paths ---

// InjectFrame feeds one raw Ethernet frame with a virtual timestamp
// (nanoseconds, strictly increasing per socket). This is the lowest-level
// input path; ReplayPcap and ReplaySource are built on it.
func (h *Handle) InjectFrame(data []byte, ts int64) error {
	if !h.started {
		return ErrNotStarted
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	h.capture.inject(cp, ts)
	return nil
}

// ReplaySource feeds every frame from a workload source, pacing virtual
// timestamps at the given rate in bits/s (wall-clock runs as fast as the
// pipeline allows, like the paper's trace replay). It blocks until the
// source is exhausted.
func (h *Handle) ReplaySource(src trace.Source, bitsPerSec float64) error {
	if !h.started {
		return ErrNotStarted
	}
	trace.Replay(src, bitsPerSec, func(frame []byte, ts int64) bool {
		cp := make([]byte, len(frame))
		copy(cp, frame)
		h.capture.inject(cp, ts)
		return true
	})
	return nil
}

// ReplayPcap feeds a pcap file, preserving its timestamps.
func (h *Handle) ReplayPcap(path string) error {
	if !h.started {
		return ErrNotStarted
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := trace.NewPcapReader(f)
	for {
		frame, ts, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		h.capture.inject(frame, ts)
	}
}

// parsePrefix parses a CIDR or bare address into a netip.Prefix.
func parsePrefix(s string) (netip.Prefix, error) {
	if p, err := netip.ParsePrefix(s); err == nil {
		return p, nil
	}
	a, err := netip.ParseAddr(s)
	if err != nil {
		return netip.Prefix{}, fmt.Errorf("scap: bad prefix %q: %w", s, err)
	}
	return a.Prefix(a.BitLen())
}
