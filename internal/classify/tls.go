package classify

import "encoding/binary"

// ClientHello is the subset of a TLS ClientHello that monitoring
// applications care about.
type ClientHello struct {
	// LegacyVersion is the record-layer version; HelloVersion the
	// handshake's client_version field (0x0303 = TLS 1.2 wire format,
	// also used by TLS 1.3).
	LegacyVersion uint16
	HelloVersion  uint16
	// SNI is the server_name extension's first host_name entry.
	SNI string
	// ALPN lists the application protocols offered, in order.
	ALPN []string
	// CipherSuites are the offered suites.
	CipherSuites []uint16
}

// ParseClientHello parses a TLS ClientHello from the first bytes of a
// client stream (possibly spanning multiple records is NOT supported: the
// hello must fit the first record, which is true for all realistic
// clients). It returns false for anything that is not a well-formed
// ClientHello prefix.
func ParseClientHello(b []byte) (*ClientHello, bool) {
	// TLSPlaintext: type(1) version(2) length(2)
	if len(b) < 5 || b[0] != 0x16 || b[1] != 0x03 {
		return nil, false
	}
	recLen := int(binary.BigEndian.Uint16(b[3:5]))
	rec := b[5:]
	if recLen < 4 || len(rec) < recLen {
		return nil, false
	}
	rec = rec[:recLen]
	// Handshake: msg_type(1)=1 length(3)
	if rec[0] != 0x01 {
		return nil, false
	}
	hsLen := int(rec[1])<<16 | int(rec[2])<<8 | int(rec[3])
	body := rec[4:]
	if len(body) < hsLen {
		return nil, false
	}
	body = body[:hsLen]

	ch := &ClientHello{LegacyVersion: binary.BigEndian.Uint16(b[1:3])}
	// client_version(2) random(32)
	if len(body) < 34 {
		return nil, false
	}
	ch.HelloVersion = binary.BigEndian.Uint16(body[0:2])
	body = body[34:]
	// session_id
	if len(body) < 1 {
		return nil, false
	}
	sidLen := int(body[0])
	if len(body) < 1+sidLen {
		return nil, false
	}
	body = body[1+sidLen:]
	// cipher_suites
	if len(body) < 2 {
		return nil, false
	}
	csLen := int(binary.BigEndian.Uint16(body[0:2]))
	if csLen%2 != 0 || len(body) < 2+csLen {
		return nil, false
	}
	for i := 0; i < csLen; i += 2 {
		ch.CipherSuites = append(ch.CipherSuites, binary.BigEndian.Uint16(body[2+i:4+i]))
	}
	body = body[2+csLen:]
	// compression_methods
	if len(body) < 1 {
		return nil, false
	}
	cmLen := int(body[0])
	if len(body) < 1+cmLen {
		return nil, false
	}
	body = body[1+cmLen:]
	// extensions (optional)
	if len(body) < 2 {
		return ch, true
	}
	extLen := int(binary.BigEndian.Uint16(body[0:2]))
	exts := body[2:]
	if len(exts) < extLen {
		return nil, false
	}
	exts = exts[:extLen]
	for len(exts) >= 4 {
		typ := binary.BigEndian.Uint16(exts[0:2])
		l := int(binary.BigEndian.Uint16(exts[2:4]))
		if len(exts) < 4+l {
			break
		}
		data := exts[4 : 4+l]
		switch typ {
		case 0: // server_name
			ch.SNI = parseSNI(data)
		case 16: // ALPN
			ch.ALPN = parseALPN(data)
		}
		exts = exts[4+l:]
	}
	return ch, true
}

// parseSNI extracts the first host_name from a server_name extension body.
func parseSNI(b []byte) string {
	if len(b) < 2 {
		return ""
	}
	listLen := int(binary.BigEndian.Uint16(b[0:2]))
	list := b[2:]
	if len(list) < listLen {
		return ""
	}
	list = list[:listLen]
	for len(list) >= 3 {
		nameType := list[0]
		l := int(binary.BigEndian.Uint16(list[1:3]))
		if len(list) < 3+l {
			return ""
		}
		if nameType == 0 {
			return string(list[3 : 3+l])
		}
		list = list[3+l:]
	}
	return ""
}

// parseALPN extracts the protocol list from an ALPN extension body.
func parseALPN(b []byte) []string {
	if len(b) < 2 {
		return nil
	}
	listLen := int(binary.BigEndian.Uint16(b[0:2]))
	list := b[2:]
	if len(list) < listLen {
		return nil
	}
	list = list[:listLen]
	var out []string
	for len(list) >= 1 {
		l := int(list[0])
		if len(list) < 1+l {
			break
		}
		out = append(out, string(list[1:1+l]))
		list = list[1+l:]
	}
	return out
}

// BuildClientHello constructs a minimal well-formed ClientHello record for
// tests and workload generation.
func BuildClientHello(sni string, alpn []string) []byte {
	var ext []byte
	if sni != "" {
		name := []byte(sni)
		entry := make([]byte, 0, 3+len(name))
		entry = append(entry, 0) // host_name
		entry = binary.BigEndian.AppendUint16(entry, uint16(len(name)))
		entry = append(entry, name...)
		body := binary.BigEndian.AppendUint16(nil, uint16(len(entry)))
		body = append(body, entry...)
		ext = binary.BigEndian.AppendUint16(ext, 0) // extension type
		ext = binary.BigEndian.AppendUint16(ext, uint16(len(body)))
		ext = append(ext, body...)
	}
	if len(alpn) > 0 {
		var list []byte
		for _, p := range alpn {
			list = append(list, byte(len(p)))
			list = append(list, p...)
		}
		body := binary.BigEndian.AppendUint16(nil, uint16(len(list)))
		body = append(body, list...)
		ext = binary.BigEndian.AppendUint16(ext, 16)
		ext = binary.BigEndian.AppendUint16(ext, uint16(len(body)))
		ext = append(ext, body...)
	}

	hello := binary.BigEndian.AppendUint16(nil, 0x0303) // client_version
	hello = append(hello, make([]byte, 32)...)          // random
	hello = append(hello, 0)                            // session_id empty
	hello = binary.BigEndian.AppendUint16(hello, 4)     // two suites
	hello = binary.BigEndian.AppendUint16(hello, 0x1301)
	hello = binary.BigEndian.AppendUint16(hello, 0x1302)
	hello = append(hello, 1, 0) // compression: null
	hello = binary.BigEndian.AppendUint16(hello, uint16(len(ext)))
	hello = append(hello, ext...)

	hs := []byte{0x01, byte(len(hello) >> 16), byte(len(hello) >> 8), byte(len(hello))}
	hs = append(hs, hello...)

	rec := []byte{0x16, 0x03, 0x01}
	rec = binary.BigEndian.AppendUint16(rec, uint16(len(hs)))
	return append(rec, hs...)
}
