// Command scaplint runs the repo's custom static analyzers over the
// module: statssnapshot (racy snapshot getters on shared types),
// hotpathalloc (allocations on the //scap:hotpath per-packet path),
// hotpathlock (sync.Mutex/RWMutex acquisition on that same path), and
// lockdiscipline ("guarded by mu" field access outside the mutex).
//
// Usage:
//
//	go run ./cmd/scaplint ./...          # whole module (the default)
//	go run ./cmd/scaplint ./internal/core ./internal/event
//	go run ./cmd/scaplint -list          # print the analyzer suite
//
// scaplint exits 1 when it reports findings and 2 on usage or load errors.
// Suppress an individual finding with a justification:
//
//	x = append(x, y) //scaplint:ignore hotpathalloc appends into preallocated capacity
package main

import (
	"flag"
	"fmt"
	"os"

	"scap/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	verbose := flag.Bool("v", false, "print progress and type-load warnings")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Packages(patterns...)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		for _, p := range pkgs {
			fmt.Fprintf(os.Stderr, "scaplint: loaded %s (%d files, %d type warnings)\n",
				p.Path, len(p.Files), len(p.TypeErrors))
			for _, te := range p.TypeErrors {
				fmt.Fprintf(os.Stderr, "scaplint: \ttype warning: %v\n", te)
			}
		}
	}
	diags := analysis.RunAll(pkgs, analysis.All())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "scaplint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scaplint:", err)
	os.Exit(2)
}
