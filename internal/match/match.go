// Package match implements Aho-Corasick multi-pattern string matching as
// used by the paper's pattern-matching evaluation application (Section 6.5).
//
// The automaton is built in two stages: a trie with failure links
// (Aho & Corasick, CACM 1975), then — when the state count permits — a dense
// DFA whose rows are full 256-entry transition tables, so the scan loop is a
// single table lookup per input byte. Large pattern sets fall back to
// failure-link traversal with identical semantics.
package match

import (
	"errors"
	"sort"
)

// Match reports one pattern occurrence. End is the index one past the last
// byte of the occurrence within the scanned slice (plus any streamed prefix
// tracked by the caller).
type Match struct {
	Pattern int // index into the pattern set
	End     int
}

// State carries the automaton position across chunk boundaries when
// scanning a stream incrementally. The zero State is the start state.
type State struct{ s int32 }

// denseLimit bounds the memory spent on the dense DFA (states × 256 × 4 B).
// Above it the matcher uses failure links.
const denseLimit = 1 << 17

// Matcher is an immutable Aho-Corasick automaton, safe for concurrent use.
type Matcher struct {
	patterns [][]byte

	// Trie representation.
	children []map[byte]int32
	fail     []int32
	// out[s] lists pattern indices ending at state s (including via
	// dictionary suffix links, flattened at build time).
	out [][]int32

	// Dense DFA, nil when the automaton is too large.
	next []int32 // states × 256
}

// ErrNoPatterns is returned when compiling an empty pattern set.
var ErrNoPatterns = errors.New("match: no patterns")

// New compiles the pattern set. Patterns are matched as raw byte strings;
// empty patterns are rejected. Duplicate patterns are allowed and report
// their own indices.
func New(patterns [][]byte) (*Matcher, error) {
	if len(patterns) == 0 {
		return nil, ErrNoPatterns
	}
	m := &Matcher{patterns: patterns}
	m.children = append(m.children, map[byte]int32{})
	m.out = append(m.out, nil)
	for idx, p := range patterns {
		if len(p) == 0 {
			return nil, errors.New("match: empty pattern")
		}
		s := int32(0)
		for _, b := range p {
			nxt, ok := m.children[s][b]
			if !ok {
				nxt = int32(len(m.children))
				m.children[s][b] = nxt
				m.children = append(m.children, map[byte]int32{})
				m.out = append(m.out, nil)
			}
			s = nxt
		}
		m.out[s] = append(m.out[s], int32(idx))
	}
	m.buildFailLinks()
	if len(m.children) <= denseLimit {
		m.buildDense()
	}
	return m, nil
}

// NewStrings is New for string literals.
func NewStrings(patterns []string) (*Matcher, error) {
	bs := make([][]byte, len(patterns))
	for i, p := range patterns {
		bs[i] = []byte(p)
	}
	return New(bs)
}

func (m *Matcher) buildFailLinks() {
	n := len(m.children)
	m.fail = make([]int32, n)
	queue := make([]int32, 0, n)
	for _, c := range m.children[0] {
		queue = append(queue, c)
	}
	for head := 0; head < len(queue); head++ {
		s := queue[head]
		// Deterministic iteration keeps builds reproducible; map order
		// does not affect correctness but sorted order aids debugging.
		bytes := make([]int, 0, len(m.children[s]))
		for b := range m.children[s] {
			bytes = append(bytes, int(b))
		}
		sort.Ints(bytes)
		for _, bi := range bytes {
			b := byte(bi)
			c := m.children[s][b]
			queue = append(queue, c)
			f := m.fail[s]
			for f != 0 {
				if nxt, ok := m.children[f][b]; ok {
					f = nxt
					goto linked
				}
				f = m.fail[f]
			}
			if nxt, ok := m.children[0][b]; ok && nxt != c {
				f = nxt
			} else {
				f = 0
			}
		linked:
			m.fail[c] = f
			// Flatten dictionary links: every match reachable through the
			// failure chain is reported directly from c.
			if len(m.out[f]) > 0 {
				m.out[c] = append(m.out[c], m.out[f]...)
			}
		}
	}
}

func (m *Matcher) buildDense() {
	n := len(m.children)
	m.next = make([]int32, n*256)
	for b := 0; b < 256; b++ {
		if c, ok := m.children[0][byte(b)]; ok {
			m.next[b] = c
		}
	}
	// BFS order guarantees fail state rows are complete before dependents.
	queue := []int32{}
	for _, c := range m.children[0] {
		queue = append(queue, c)
	}
	for head := 0; head < len(queue); head++ {
		s := queue[head]
		row := m.next[s*256 : s*256+256]
		failRow := m.next[m.fail[s]*256 : m.fail[s]*256+256]
		for b := 0; b < 256; b++ {
			if c, ok := m.children[s][byte(b)]; ok {
				row[b] = c
				queue = append(queue, c)
			} else {
				row[b] = failRow[b]
			}
		}
	}
}

// NumStates returns the automaton size, exposed for cost models and tests.
func (m *Matcher) NumStates() int { return len(m.children) }

// Dense reports whether the dense DFA is in use.
func (m *Matcher) Dense() bool { return m.next != nil }

// Pattern returns the idx'th pattern.
func (m *Matcher) Pattern(idx int) []byte { return m.patterns[idx] }

// NumPatterns returns the size of the pattern set.
func (m *Matcher) NumPatterns() int { return len(m.patterns) }

// Scan finds every occurrence of every pattern in data, invoking fn for
// each. Scanning stops early if fn returns false. Overlapping and nested
// occurrences are all reported.
func (m *Matcher) Scan(data []byte, fn func(Match) bool) {
	m.Resume(State{}, data, fn)
}

// Resume continues a streaming scan from a saved state and returns the
// state after consuming data. Match.End values are relative to this chunk;
// a match that started in a previous chunk reports End < len(pattern).
func (m *Matcher) Resume(st State, data []byte, fn func(Match) bool) State {
	s := st.s
	if m.next != nil {
		for i, b := range data {
			s = m.next[s*256+int32(b)]
			if len(m.out[s]) > 0 {
				for _, pid := range m.out[s] {
					if !fn(Match{Pattern: int(pid), End: i + 1}) {
						return State{s}
					}
				}
			}
		}
		return State{s}
	}
	for i, b := range data {
		for {
			if nxt, ok := m.children[s][b]; ok {
				s = nxt
				break
			}
			if s == 0 {
				break
			}
			s = m.fail[s]
		}
		for _, pid := range m.out[s] {
			if !fn(Match{Pattern: int(pid), End: i + 1}) {
				return State{s}
			}
		}
	}
	return State{s}
}

// Count returns the total number of occurrences in data.
func (m *Matcher) Count(data []byte) int {
	n := 0
	m.Scan(data, func(Match) bool { n++; return true })
	return n
}

// Contains reports whether any pattern occurs in data.
func (m *Matcher) Contains(data []byte) bool {
	found := false
	m.Scan(data, func(Match) bool { found = true; return false })
	return found
}
